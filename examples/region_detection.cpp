// Walk through the paper's Figure 2: build the nested-loop hierarchy from
// §2.2, run region detection, show the inserted ON/OFF instructions before
// and after redundant-marker elimination, and print each loop's decision.
//
//   $ ./build/examples/region_detection
#include <cstdio>

#include "analysis/marker_elimination.h"
#include "analysis/region_detection.h"
#include "ir/builder.h"
#include "ir/printer.h"

using namespace selcache;

namespace {

// Figure 2(a): a level-1 loop enclosing three level-2 nests. The first
// reaches level 4 and is irregular; the second (level 3) is irregular; the
// third is a regular array nest.
ir::Program figure2() {
  ir::ProgramBuilder b("figure2");
  const auto A = b.array("A", {32, 32});
  const auto H = b.chase_pool("H", 256, 16);

  b.begin_loop("level1", 0, 2);

  b.begin_loop("level2_top", 0, 4);
  b.begin_loop("level3_top", 0, 4);
  b.begin_loop("level4", 0, 4);
  b.stmt({ir::chase(H), ir::chase(H)}, 1, "irregular_deep");
  b.end_loop();
  b.end_loop();
  b.end_loop();

  b.begin_loop("level2_mid", 0, 4);
  b.begin_loop("level3_bot", 0, 4);
  b.stmt({ir::chase(H)}, 1, "irregular_mid");
  b.end_loop();
  b.end_loop();

  const auto i = b.begin_loop("level2_bot", 0, 8);
  const auto j = b.begin_loop("level3_reg", 0, 8);
  b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)}),
          ir::store_array(A, {b.sub(i), b.sub(j)})},
         1, "regular");
  b.end_loop();
  b.end_loop();

  b.end_loop();
  return b.finish();
}

}  // namespace

int main() {
  // Step 1: per-loop decisions, innermost -> outermost.
  ir::Program analyzed = figure2();
  const auto ra = analysis::analyze_regions(analyzed);
  std::printf("--- per-loop decisions (section 2.2 walk) ---\n");
  for (const auto* loop : analyzed.loops())
    std::printf("  %-12s -> %s\n",
                analyzed.var_names()[loop->var].c_str(),
                to_string(ra.decision(*loop)));

  // Step 2: marker insertion (Figure 2(b)).
  ir::Program marked = figure2();
  const auto ins = analysis::detect_and_mark(marked);
  std::printf("\n--- after ON/OFF insertion: %zu markers (Figure 2(b)) "
              "---\n%s",
              ins.markers_inserted, ir::print(marked).c_str());

  // Step 3: redundant-marker elimination (Figure 2(c)).
  const std::size_t removed = analysis::eliminate_redundant_markers(marked);
  std::printf("\n--- after eliminating %zu redundant markers "
              "(Figure 2(c)) ---\n%s",
              removed, ir::print(marked).c_str());
  return 0;
}
