// Run the TPC-D query kernels (Q1, Q3, Q6) through all five simulated
// versions on the Table 1 machine — a miniature of the paper's §5 study on
// the decision-support benchmarks.
//
//   $ ./build/examples/tpcd_query
#include <cstdio>

#include "core/report.h"
#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

int main() {
  const core::MachineConfig machine = core::base_machine();
  std::printf("%s\n", core::format_machine(machine).c_str());

  for (const char* name : {"TPC-D,Q1", "TPC-D,Q3", "TPC-D,Q6"}) {
    const auto& w = workloads::workload(name);
    const core::RunResult base =
        core::run_version(w, machine, core::Version::Base);
    std::printf("%s (%s): base %llu cycles, %s instructions, L1 miss "
                "%.2f%%, L2 miss %.2f%%\n",
                w.name.c_str(), to_string(w.category),
                static_cast<unsigned long long>(base.cycles),
                selcache::TextTable::count(base.instructions).c_str(),
                100.0 * base.l1_miss_rate, 100.0 * base.l2_miss_rate);
    for (core::Version v : core::kEvaluatedVersions) {
      const core::RunResult r = core::run_version(w, machine, v);
      std::printf("  %-14s %+7.2f%%  (%llu toggles)\n", to_string(v),
                  improvement_pct(base.cycles, r.cycles),
                  static_cast<unsigned long long>(r.toggles));
    }
    std::printf("\n");
  }
  return 0;
}
