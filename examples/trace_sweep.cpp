// Record a workload's instruction/memory trace once, then replay it across
// every machine configuration — the cheap way to sweep hardware parameters
// when the code product is fixed.
//
//   $ ./build/examples/trace_sweep
#include <cstdio>

#include "codegen/trace_engine.h"
#include "codegen/trace_io.h"
#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

int main() {
  // Record TPC-C's selective product on the base machine.
  const auto& w = workloads::workload("TPC-C");
  const core::MachineConfig base = core::base_machine();
  ir::Program product = core::prepare_program(
      w.build(), core::Version::Selective, transform::OptimizeOptions{});

  codegen::Trace trace;
  {
    memsys::Hierarchy h(base.hierarchy);
    auto scheme = core::make_scheme(hw::SchemeKind::Bypass, base);
    h.attach_hw(scheme.get());
    hw::Controller ctl(scheme.get());
    cpu::TimingModel cpu(base.cpu, h, ctl);
    cpu.set_trace_sink(&trace);
    codegen::DataEnv env(product);
    codegen::TraceEngine eng(product, env, cpu);
    eng.run();
  }
  std::printf("recorded %zu events from %s (Selective product)\n\n",
              trace.size(), w.name.c_str());

  // Replay everywhere.
  TextTable t({"Machine", "Cycles", "L1 miss [%]", "L2 miss [%]"});
  for (const auto& m : core::all_machines()) {
    memsys::Hierarchy h(m.hierarchy);
    auto scheme = core::make_scheme(hw::SchemeKind::Bypass, m);
    h.attach_hw(scheme.get());
    hw::Controller ctl(scheme.get());
    cpu::TimingModel cpu(m.cpu, h, ctl);
    codegen::replay_trace(trace, cpu);
    t.add_row({m.name, TextTable::count(cpu.cycles()),
               TextTable::num(100.0 * h.l1_miss_rate()),
               TextTable::num(100.0 * h.l2_miss_rate())});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}
