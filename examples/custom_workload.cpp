// Build your own workload and machine: the full public API end to end.
//
// A sparse matrix-vector product (CSR-flavored): an irregular gather phase
// over column indices plus a regular vector update — wired into the
// selective framework on a customized machine (small L1, slow memory).
//
//   $ ./build/examples/custom_workload
#include <cstdio>

#include "core/report.h"
#include "core/runner.h"
#include "ir/builder.h"
#include "ir/printer.h"

using namespace selcache;

namespace {

ir::Program build_spmv() {
  constexpr std::int64_t kRows = 4096;
  constexpr std::int64_t kNnzPerRow = 8;
  constexpr std::int64_t kNnz = kRows * kNnzPerRow;

  ir::ProgramBuilder b("spmv");
  const auto vals = b.array("vals", {kNnz});
  const auto xvec = b.array("x", {kRows});
  const auto yvec = b.array("y", {kRows});
  // Column indices: clustered irregularity, as a banded sparse matrix has.
  const auto colidx = b.index_array("colidx", kNnz,
                                    ir::ArrayDecl::Content::Mesh,
                                    /*hop=*/64, kRows);

  b.begin_loop("iter", 0, 8);
  {
    const auto r = b.begin_loop("row", 0, kRows);
    const auto k = b.begin_loop("nz", ir::x(r) * kNnzPerRow,
                                ir::x(r) * kNnzPerRow + kNnzPerRow);
    // y[r] += vals[k] * x[colidx[k]] — the gather is not analyzable.
    b.stmt({ir::load_array(vals, {b.sub(k)}),
            ir::load_array(xvec, {ir::Subscript::indexed(colidx, ir::x(k))}),
            ir::load_array(yvec, {b.sub(r)}),
            ir::store_array(yvec, {b.sub(r)})},
           3, "gather");
    b.end_loop();
    b.end_loop();
  }
  {
    // Regular vector scale (compiler region).
    const auto r = b.begin_loop("scale", 0, kRows);
    b.stmt({ir::load_array(yvec, {b.sub(r)}),
            ir::store_array(yvec, {b.sub(r)})},
           2, "scale");
    b.end_loop();
  }
  b.end_loop();
  return b.finish();
}

}  // namespace

int main() {
  // A custom machine: half-size L1, embedded-class memory.
  core::MachineConfig machine = core::base_machine();
  machine.name = "custom (16K L1, 150-cycle memory)";
  machine.hierarchy.l1d.size_bytes = 16 * 1024;
  machine.hierarchy.mem.access_latency = 150;

  const workloads::WorkloadInfo info{"spmv", "synthetic banded matrix",
                                     workloads::Category::Mixed, build_spmv,
                                     0, 0, 0};

  std::printf("%s\n", core::format_machine(machine).c_str());
  const core::ImprovementRow row = core::improvements_for(info, machine);
  std::printf("spmv: base %llu cycles\n",
              static_cast<unsigned long long>(row.base_cycles));
  for (core::Version v : core::kEvaluatedVersions)
    std::printf("  %-14s %+7.2f%%\n", to_string(v), row.pct.at(v));

  // The gather statement is 3/4 analyzable references, so at the default
  // threshold 0.5 the whole kernel is a compiler region and Selective never
  // engages the hardware. Raising the threshold reclassifies the gather
  // loop as a hardware region (section 2.3's knob in action).
  core::RunOptions strict;
  strict.optimize.threshold = 0.8;
  const core::RunResult base_r =
      core::run_version(info, machine, core::Version::Base, strict);
  const core::RunResult sel_strict =
      core::run_version(info, machine, core::Version::Selective, strict);
  std::printf("  %-14s %+7.2f%%  (threshold 0.8: %llu toggles)\n",
              "Selective*", improvement_pct(base_r.cycles, sel_strict.cycles),
              static_cast<unsigned long long>(sel_strict.toggles));

  // Peek under the hood: detailed statistics of the threshold-0.8 run.
  const core::RunResult sel = sel_strict;
  std::printf("\nselective-run counters (excerpt):\n");
  for (const char* key :
       {"l1d.hits", "l1d.misses", "l2.misses", "bypass.bypasses",
        "bypass_buffer.hits", "controller.toggles_executed",
        "cpu.mem_stall_cycles"})
    std::printf("  %-28s %llu\n", key,
                static_cast<unsigned long long>(sel.stats.get(key)));
  return 0;
}
