// Quickstart: build a tiny mixed program, run region detection, apply the
// compiler pipeline, and simulate all five versions on the Table 1 machine.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "analysis/marker_elimination.h"
#include "analysis/region_detection.h"
#include "codegen/trace_engine.h"
#include "core/report.h"
#include "core/runner.h"
#include "ir/builder.h"
#include "ir/printer.h"

using namespace selcache;

namespace {

// A miniature mixed workload: a regular stencil (compiler-friendly) followed
// by a pointer-chasing phase (hardware-friendly), inside one outer loop.
ir::Program make_demo() {
  constexpr std::int64_t N = 256;
  ir::ProgramBuilder b("demo");
  const auto A = b.array("A", {N, N});
  const auto B = b.array("B", {N, N});
  const auto list = b.chase_pool("list", 8192, 32);

  b.begin_loop("t", 0, 4);
  {
    const auto j = b.begin_loop("j", 0, N);
    const auto i = b.begin_loop("i", 0, N);
    b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)}),
            ir::store_array(B, {b.sub(i), b.sub(j)})},
           2, "stencil");
    b.end_loop();
    b.end_loop();
  }
  {
    b.begin_loop("walk", 0, 20000);
    b.stmt({ir::chase(list, 0), ir::chase(list, 8)}, 2, "chase");
    b.end_loop();
  }
  b.end_loop();
  return b.finish();
}

}  // namespace

int main() {
  // 1. Show what region detection does to the program.
  ir::Program marked = make_demo();
  auto regions = analysis::detect_and_mark(marked);
  const std::size_t removed = analysis::eliminate_redundant_markers(marked);
  std::printf("--- program after region detection (+%zu markers, -%zu "
              "redundant) ---\n%s\n",
              regions.markers_inserted, removed, ir::print(marked).c_str());

  // 2. Simulate the five versions on the base machine.
  workloads::WorkloadInfo demo{"demo", "synthetic", workloads::Category::Mixed,
                               make_demo, 0, 0, 0};
  const core::MachineConfig machine = core::base_machine();
  std::printf("%s\n", core::format_machine(machine).c_str());

  const core::RunResult base =
      core::run_version(demo, machine, core::Version::Base);
  std::printf("%-14s %12llu cycles  (L1 %.2f%%  L2 %.2f%%)\n", "Base",
              static_cast<unsigned long long>(base.cycles),
              100.0 * base.l1_miss_rate, 100.0 * base.l2_miss_rate);
  for (core::Version v : core::kEvaluatedVersions) {
    const core::RunResult r = core::run_version(demo, machine, v);
    std::printf("%-14s %12llu cycles  (%+.2f%%, %llu toggles)\n",
                to_string(v), static_cast<unsigned long long>(r.cycles),
                improvement_pct(base.cycles, r.cycles),
                static_cast<unsigned long long>(r.toggles));
  }
  return 0;
}
