// Deterministic corpus fuzzing of the three untrusted-input readers:
//
//   * ir::parse_program      — text workloads from the CLI (run-file)
//   * tape::load_tape        — binary trace tapes from disk
//   * store::ResultStore     — persistent result-store cell files
//
// Each target gets a small committed/canonical corpus; a seed-driven
// mutator (splitmix64, fixed seed list — byte-identical across runs and
// platforms) derives a few hundred corrupted variants per corpus entry.
// The contract under fuzz is the readers' documented trust edge:
//
//   * parse_program / load_tape: return a value or throw std::logic_error
//     with a message — never crash, hang, or throw anything else;
//   * the store read path: corruption is a MISS (nullopt) or, when the
//     mutation missed the validated region, the original value — never an
//     exception, never a different value (the embedded checksum gates it).
//
// This is not coverage-guided fuzzing; it is a deterministic regression
// harness over known-interesting corpora, cheap enough for every CI run.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ir/parser.h"
#include "store/store.h"
#include "tape/tape.h"

#ifndef SELCACHE_CORPORA_DIR
#error "build must define SELCACHE_CORPORA_DIR"
#endif

namespace selcache {
namespace {

namespace fs = std::filesystem;

// -- deterministic mutator ---------------------------------------------------

struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

/// Apply 1..8 structural mutations to `data`: single-byte smashes, bit
/// flips, truncations, insertions, chunk duplication, and chunk zeroing —
/// the corruption shapes torn writes and bad media actually produce.
std::string mutate(const std::string& data, std::uint64_t seed) {
  SplitMix64 rng{seed * 0x9E3779B97F4A7C15ULL + 1};
  std::string out = data;
  const std::uint64_t n_mut = 1 + rng.below(8);
  for (std::uint64_t m = 0; m < n_mut; ++m) {
    if (out.empty()) {
      out.push_back(static_cast<char>(rng.next() & 0xFF));
      continue;
    }
    switch (rng.below(6)) {
      case 0:  // smash one byte
        out[rng.below(out.size())] = static_cast<char>(rng.next() & 0xFF);
        break;
      case 1:  // flip one bit
        out[rng.below(out.size())] ^=
            static_cast<char>(1u << rng.below(8));
        break;
      case 2:  // truncate
        out.resize(rng.below(out.size()));
        break;
      case 3:  // insert a byte
        out.insert(out.begin() +
                       static_cast<std::ptrdiff_t>(rng.below(out.size() + 1)),
                   static_cast<char>(rng.next() & 0xFF));
        break;
      case 4: {  // duplicate a chunk onto a random position
        const std::size_t len = 1 + rng.below(16);
        const std::size_t src = rng.below(out.size());
        const std::size_t take = std::min(len, out.size() - src);
        out.insert(rng.below(out.size()), out.substr(src, take));
        break;
      }
      case 5: {  // zero a chunk
        const std::size_t len = 1 + rng.below(16);
        const std::size_t at = rng.below(out.size());
        for (std::size_t i = at; i < out.size() && i < at + len; ++i)
          out[i] = 0;
        break;
      }
    }
  }
  return out;
}

constexpr std::uint64_t kSeedsPerEntry = 200;

TEST(FuzzMutator, IsDeterministic) {
  const std::string base = "the quick brown fox";
  for (std::uint64_t s = 0; s < 32; ++s)
    EXPECT_EQ(mutate(base, s), mutate(base, s)) << "seed " << s;
}

// -- ir::parse_program -------------------------------------------------------

std::vector<fs::path> ir_corpus() {
  std::vector<fs::path> files;
  for (const auto& e :
       fs::directory_iterator(fs::path(SELCACHE_CORPORA_DIR) / "ir"))
    if (e.path().extension() == ".loop") files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

TEST(FuzzIrParser, SeedCorporaAreValid) {
  const auto files = ir_corpus();
  ASSERT_GE(files.size(), 4u) << "committed corpus went missing";
  for (const auto& p : files)
    EXPECT_NO_THROW(ir::parse_program(slurp(p))) << p;
}

TEST(FuzzIrParser, MutatedCorporaNeverEscapeLogicError) {
  for (const auto& p : ir_corpus()) {
    const std::string base = slurp(p);
    for (std::uint64_t seed = 0; seed < kSeedsPerEntry; ++seed) {
      const std::string text = mutate(base, seed);
      try {
        (void)ir::parse_program(text);  // accepting a mutant is fine
      } catch (const std::logic_error& e) {
        EXPECT_NE(std::string(e.what()), "")
            << p << " seed " << seed << ": diagnostic must not be empty";
      } catch (...) {
        FAIL() << p << " seed " << seed
               << ": parse_program threw something other than logic_error";
      }
    }
  }
}

// -- tape::load_tape ---------------------------------------------------------

class FuzzFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("selcache_fuzz_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_raw(const std::string& path, const std::string& bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

/// Canonical tape corpus: exercises every record kind including Loop runs
/// (strided iteration bodies long enough for the run detector to fire).
tape::Tape corpus_tape() {
  tape::TapeBuilder b;
  for (int it = 0; it < 64; ++it) {
    b.ifetch(0x1000, 4);
    b.load(0x80000 + static_cast<Addr>(it) * 64, false);
    b.compute(3);
    b.store(0xA0000 + static_cast<Addr>(it) * 8);
    b.branch(0x1000, it + 1 < 64);
  }
  b.toggle(true, 2);
  b.load(0xF0000, true);  // dependent (pointer-chase) load
  b.toggle(false, 2);
  return b.take();
}

/// Drain every record through the replay decoder — where truncated varints
/// and corrupt opcodes surface.
struct CountingSink {
  std::uint64_t ops = 0;
  void load(Addr, bool) { ++ops; }
  void store(Addr) { ++ops; }
  void touch_code(Addr, std::uint32_t) { ++ops; }
  void branch(Addr, bool) { ++ops; }
  void compute(std::uint64_t) { ++ops; }
  void toggle(bool, std::int32_t) { ++ops; }
};

TEST_F(FuzzFileTest, TapeSeedRoundTrips) {
  const tape::Tape t = corpus_tape();
  const std::string path = dir_ + "/seed.tape";
  ASSERT_TRUE(tape::save_tape(t, path));
  const tape::Tape back = tape::load_tape(path);
  EXPECT_EQ(back, t);
  CountingSink sink;
  tape::replay_into(back, sink);
  EXPECT_GT(sink.ops, 0u);
}

TEST_F(FuzzFileTest, MutatedTapesNeverEscapeLogicError) {
  const tape::Tape t = corpus_tape();
  const std::string seed_path = dir_ + "/seed.tape";
  ASSERT_TRUE(tape::save_tape(t, seed_path));
  const std::string base = slurp(seed_path);
  const std::string path = dir_ + "/mutant.tape";
  for (std::uint64_t seed = 0; seed < kSeedsPerEntry; ++seed) {
    write_raw(path, mutate(base, seed));
    try {
      const tape::Tape loaded = tape::load_tape(path);
      CountingSink sink;
      tape::replay_into(loaded, sink);  // decode the whole stream too
    } catch (const std::logic_error&) {
      // Rejected with a diagnostic: the expected outcome for corruption.
    } catch (...) {
      FAIL() << "seed " << seed
             << ": tape reader threw something other than logic_error";
    }
  }
}

// Regression for a weakness this harness exposed: a Loop record's rep
// count is an untrusted varint, so a crafted tape could claim few ops in
// the header yet encode a near-2^64-iteration loop — turning load_tape's
// validation decode into a hang. The decode budget must reject it fast.
TEST_F(FuzzFileTest, GiantLoopRepCountIsRejectedNotDecoded) {
  tape::Tape t;
  // Loop record: opcode Loop (6) with 2 slots inline in the nibble, then
  // reps as a varint, then the two slot templates (Load + Store, addr 0,
  // stride 0).
  t.bytes.push_back(0x26);  // op=Loop, nibble=2 slots
  tape::put_varint(t.bytes, (1ULL << 62));  // reps: absurd
  t.bytes.push_back(0x00);  // slot: Load, inline val 0
  tape::put_varint(t.bytes, 0);  // addr
  tape::put_varint(t.bytes, 0);  // stride
  t.bytes.push_back(0x01);  // slot: Store
  tape::put_varint(t.bytes, 0);
  tape::put_varint(t.bytes, 0);
  t.stats.loads = 4;  // header claims 8 ops; the loop encodes 2^63
  t.stats.stores = 4;
  const std::string path = dir_ + "/giant.tape";
  ASSERT_TRUE(tape::save_tape(t, path));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(tape::load_tape(path), std::logic_error);
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(dt).count(), 5)
      << "rejection must come from the decode budget, not loop exhaustion";
}

// -- store cell reader -------------------------------------------------------

TEST_F(FuzzFileTest, MutatedStoreCellsAreMissesNeverErrors) {
  store::StoredResult r;
  r.cycles = 123456;
  r.instructions = 654321;
  r.l1_miss_rate = 0.125;
  r.l2_miss_rate = 0.5;
  r.conflict_share = 0.25;
  r.toggles = 9;
  r.stats.add("l1d.hits", 4096);
  r.stats.add("cpu.cycles", 123456);

  const std::string key = "fuzz/cell/key";
  std::string cell_path;
  std::string base;
  {
    store::ResultStore s(dir_ + "/store");
    s.save(key, r);
    const auto entries = s.entries();
    ASSERT_EQ(entries.size(), 1u);
    cell_path = entries[0].path;
    base = slurp(cell_path);
  }

  for (std::uint64_t seed = 0; seed < kSeedsPerEntry; ++seed) {
    write_raw(cell_path, mutate(base, seed));
    store::ResultStore s(dir_ + "/store");
    std::optional<store::StoredResult> got;
    try {
      got = s.load(key);
    } catch (...) {
      FAIL() << "seed " << seed << ": store read path must never throw";
    }
    if (got.has_value()) {
      // The embedded checksum gates acceptance: a surviving load means the
      // mutation missed the validated region, so the value is unchanged.
      EXPECT_EQ(got->cycles, r.cycles) << "seed " << seed;
      EXPECT_EQ(got->instructions, r.instructions) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace selcache
