// Deeper semantic tests of the region machinery: propagation overrides,
// nested mixed regions, threshold extremes, and marker interaction with
// other node kinds.
#include <gtest/gtest.h>

#include "analysis/marker_elimination.h"
#include "analysis/region_detection.h"
#include "ir/builder.h"
#include "transform/fusion.h"
#include "transform/pipeline.h"

namespace selcache::analysis {
namespace {

using ir::chase;
using ir::load_array;
using ir::LoopNode;
using ir::NodeKind;
using ir::Program;
using ir::ProgramBuilder;
using ir::store_array;

TEST(RegionSemantics, ParentInheritsUnanimousChildEvenAgainstOwnRefs) {
  // §2.2 steps 2-3: "if there are memory references inside the loop at
  // level 3 but outside the loop at level 4, they will also be optimized
  // using hardware" — the child's method propagates regardless of the
  // parent's direct references.
  ProgramBuilder b("t");
  const auto A = b.array("A", {64});
  const auto H = b.chase_pool("H", 64, 16);
  const auto o = b.begin_loop("outer", 0, 8);
  // Direct statement: fully analyzable.
  b.stmt({load_array(A, {b.sub(o)})}, 1, "direct");
  b.begin_loop("inner", 0, 8);
  b.stmt({chase(H)}, 1, "irregular");
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  const RegionAnalysis ra = analyze_regions(p);
  const auto loops = p.loops();
  EXPECT_EQ(ra.decision(*loops[0]), RegionDecision::Hardware);  // inherited
  EXPECT_EQ(ra.decision(*loops[1]), RegionDecision::Hardware);
}

TEST(RegionSemantics, MixedInsideMixedRecursion) {
  // A mixed loop nested inside another mixed loop: markers land at the
  // innermost uniform subtrees on both levels.
  ProgramBuilder b("t");
  const auto A = b.array("A", {64, 64});
  const auto H = b.chase_pool("H", 64, 16);
  b.begin_loop("L1", 0, 2);
  {
    b.begin_loop("L2mixed", 0, 2);
    b.begin_loop("hw1", 0, 8);
    b.stmt({chase(H)}, 1);
    b.end_loop();
    const auto i = b.begin_loop("sw1", 0, 8);
    b.stmt({load_array(A, {b.sub(i), b.csub(0)})}, 1);
    b.end_loop();
    b.end_loop();
  }
  {
    b.begin_loop("hw2", 0, 8);
    b.stmt({chase(H)}, 1);
    b.end_loop();
  }
  b.end_loop();
  Program p = b.finish();
  const RegionAnalysis ra = analyze_regions(p);
  const auto loops = p.loops();
  // Pre-order: L1, L2mixed, hw1, sw1, hw2.
  EXPECT_EQ(ra.decision(*loops[0]), RegionDecision::Mixed);
  EXPECT_EQ(ra.decision(*loops[1]), RegionDecision::Mixed);
  EXPECT_EQ(ra.decision(*loops[2]), RegionDecision::Hardware);
  EXPECT_EQ(ra.decision(*loops[3]), RegionDecision::Compiler);
  EXPECT_EQ(ra.decision(*loops[4]), RegionDecision::Hardware);

  detect_and_mark(p);
  eliminate_redundant_markers(p);
  EXPECT_EQ(count_markers(p) % 2, 0u);
  EXPECT_GE(count_markers(p), 2u);
}

TEST(RegionSemantics, ThresholdExtremes) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {64});
  const auto H = b.chase_pool("H", 64, 16);
  const auto i = b.begin_loop("i", 0, 8);
  b.stmt({load_array(A, {b.sub(i)}), chase(H)}, 1);  // ratio 0.5
  b.end_loop();
  Program p = b.finish();
  {
    // Threshold 0: everything is compiler territory.
    const RegionAnalysis ra = analyze_regions(p, 0.0);
    EXPECT_EQ(ra.decision(*p.loops()[0]), RegionDecision::Compiler);
  }
  {
    // Threshold just above 1: only reference-free loops stay compiler.
    const RegionAnalysis ra = analyze_regions(p, 1.01);
    EXPECT_EQ(ra.decision(*p.loops()[0]), RegionDecision::Hardware);
  }
}

TEST(RegionSemantics, DetectAndMarkIsIdempotentAfterCleanup) {
  // Running detection+cleanup twice must not double-bracket regions
  // (toggles don't count as references, so decisions are unchanged).
  ProgramBuilder b("t");
  const auto H = b.chase_pool("H", 64, 16);
  b.begin_loop("w", 0, 8);
  b.stmt({chase(H)}, 1);
  b.end_loop();
  Program p = b.finish();
  detect_and_mark(p);
  eliminate_redundant_markers(p);
  const std::size_t first = count_markers(p);
  detect_and_mark(p);
  eliminate_redundant_markers(p);
  EXPECT_EQ(count_markers(p), first);
}

TEST(RegionSemantics, TogglesBlockFusionAdjacency) {
  // A marker between two loops is executable state: fusion must not reach
  // across it.
  ProgramBuilder b("t");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({store_array(A, {b.sub(i)})}, 1);
  b.end_loop();
  b.toggle(true);
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({store_array(B, {b.sub(j)})}, 1);
  b.end_loop();
  b.toggle(false);
  Program p = b.finish();
  EXPECT_EQ(transform::apply_fusion(p), 0u);
  EXPECT_EQ(p.top().size(), 4u);
}

TEST(RegionSemantics, SelectiveMarkersSurviveOptimization) {
  // The pipeline inserts markers BEFORE restructuring; transformations on
  // compiler regions must not displace the hardware brackets.
  ProgramBuilder b("t");
  const auto A = b.array("A", {128, 128});
  const auto H = b.chase_pool("H", 256, 16);
  const auto j = b.begin_loop("j", 0, 128);
  const auto i = b.begin_loop("i", 0, 128);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         1);
  b.end_loop();
  b.end_loop();
  b.begin_loop("w", 0, 64);
  b.stmt({chase(H)}, 1);
  b.end_loop();
  Program p = b.finish();

  transform::OptimizeOptions opt;
  opt.insert_markers = true;
  const auto rep = transform::optimize_program(p, opt);
  EXPECT_EQ(rep.markers_final, 2u);
  // Order: (optimized) compiler nest, ON, hw loop, OFF.
  ASSERT_EQ(p.top().size(), 4u);
  EXPECT_EQ(p.top()[0]->kind, NodeKind::Loop);
  EXPECT_EQ(p.top()[1]->kind, NodeKind::Toggle);
  EXPECT_EQ(p.top()[2]->kind, NodeKind::Loop);
  EXPECT_EQ(p.top()[3]->kind, NodeKind::Toggle);
}

TEST(RegionSemantics, EmptyProgramHandledGracefully) {
  ProgramBuilder b("empty");
  b.stmt({}, 1);
  Program p = b.finish();
  const RegionAnalysis ra = analyze_regions(p);
  EXPECT_TRUE(ra.compiler_roots.empty());
  detect_and_mark(p);
  eliminate_redundant_markers(p);
  EXPECT_EQ(count_markers(p), 0u);
}

}  // namespace
}  // namespace selcache::analysis
