// Shift/mask indexing must agree with the reference div/mod formulas for
// every cache, TLB, and MAT geometry the experiments actually use — the
// hot-path optimization is only legal because these are equal everywhere.
#include <gtest/gtest.h>

#include "core/machine_config.h"
#include "hw/mat.h"
#include "support/rng.h"

namespace selcache {
namespace {

std::vector<memsys::CacheConfig> all_experiment_cache_configs() {
  std::vector<memsys::CacheConfig> cfgs;
  for (const auto& m : core::all_machines()) {
    cfgs.push_back(m.hierarchy.l1d);
    cfgs.push_back(m.hierarchy.l1i);
    cfgs.push_back(m.hierarchy.l2);
  }
  return cfgs;
}

TEST(IndexingEquivalence, EveryMachineCacheConfigMatchesDivMod) {
  Rng rng(0x1d3aULL);
  for (const auto& cfg : all_experiment_cache_configs()) {
    memsys::Cache c(cfg);
    SCOPED_TRACE(cfg.name + " " + std::to_string(cfg.size_bytes) + "B/" +
                 std::to_string(cfg.assoc) + "w/" +
                 std::to_string(cfg.block_size) + "B");
    // Structured addresses: set boundaries, block boundaries, wrap points.
    for (Addr a = 0; a < 64 * cfg.block_size; ++a)
      ASSERT_EQ(c.set_index(a), (a / cfg.block_size) % cfg.num_sets());
    // Random addresses across a large range.
    for (int i = 0; i < 20000; ++i) {
      const Addr a = rng.below(Addr{1} << 32);
      ASSERT_EQ(c.set_index(a), (a / cfg.block_size) % cfg.num_sets());
    }
  }
}

TEST(IndexingEquivalence, TlbSetsMatchDivModViaBehavior) {
  // Two TLBs with the same geometry, one driven through addresses computed
  // with the reference formulas: hit/miss streams must coincide.
  for (const auto& m : core::all_machines()) {
    for (const auto& tcfg : {m.hierarchy.dtlb, m.hierarchy.itlb}) {
      memsys::Tlb t(tcfg);
      Rng rng(tcfg.entries);
      std::uint64_t penalty = 0, reference_penalty = 0;
      // Reference model: direct map of resident vpns per set (assoc-way LRU).
      // Rather than re-implement LRU, exploit that page residency questions
      // on a fresh TLB with <= assoc distinct pages per set are exact.
      const std::uint64_t sets = tcfg.entries / tcfg.assoc;
      for (std::uint32_t k = 0; k < tcfg.assoc; ++k) {
        // Pages k*sets, (k+1)*sets, ... all land in set 0 by the reference
        // formula; with `assoc` of them the set never overflows.
        const Addr page = static_cast<Addr>(k) * sets;
        penalty += t.access(page * tcfg.page_size);
      }
      reference_penalty =
          static_cast<std::uint64_t>(tcfg.assoc) * tcfg.miss_penalty;
      EXPECT_EQ(penalty, reference_penalty);
      // Every one of them must still be resident (no aliasing mix-ups).
      for (std::uint32_t k = 0; k < tcfg.assoc; ++k)
        EXPECT_TRUE(t.probe(static_cast<Addr>(k) * sets * tcfg.page_size));
    }
  }
}

TEST(IndexingEquivalence, MatFrequencyUnchangedByShiftIndexing) {
  hw::Mat mat(hw::MatConfig{});  // paper geometry: 4096 entries, 1 KB blocks
  const auto& cfg = mat.config();
  Rng rng(0xabcdULL);
  for (int i = 0; i < 5000; ++i) {
    const Addr a = rng.below(Addr{1} << 30);
    const std::uint32_t before = mat.frequency(a);
    mat.touch(a);
    // Reference formulas: same macro-block => same counter cell.
    const Addr mb = a / cfg.macro_block_size;
    const Addr same_mb_addr = mb * cfg.macro_block_size +
                              rng.below(cfg.macro_block_size);
    ASSERT_EQ(mat.frequency(same_mb_addr), before + 1);
  }
}

}  // namespace
}  // namespace selcache
