// Unit + parameterized property tests for caches, victim caches, TLBs and
// the three-C miss classifier.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "memsys/cache.h"
#include "memsys/main_memory.h"
#include "memsys/miss_classifier.h"
#include "memsys/tlb.h"
#include "memsys/victim_cache.h"
#include "support/rng.h"

namespace selcache::memsys {
namespace {

CacheConfig tiny_cache(std::uint32_t assoc = 2) {
  return CacheConfig{.name = "t",
                     .size_bytes = 256,
                     .assoc = assoc,
                     .block_size = 32,
                     .latency = 2};
}

TEST(Cache, MissThenFillThenHit) {
  Cache c(tiny_cache());
  EXPECT_FALSE(c.access(0x100, false));
  c.fill(0x100, false);
  EXPECT_TRUE(c.access(0x100, false));
  EXPECT_TRUE(c.access(0x11f, false));   // same 32B block
  EXPECT_FALSE(c.access(0x120, false));  // next block
}

TEST(Cache, ConfigGeometry) {
  CacheConfig cfg = tiny_cache(2);
  EXPECT_EQ(cfg.num_blocks(), 8u);
  EXPECT_EQ(cfg.num_sets(), 4u);
  CacheConfig bad = cfg;
  bad.block_size = 24;
  EXPECT_THROW(bad.validate(), std::logic_error);
}

TEST(Cache, LruEvictsOldest) {
  Cache c(tiny_cache(2));  // 4 sets x 2 ways
  // Three blocks in set 0 (set stride = 4 blocks x 32B = 128B).
  c.fill(0 * 128, false);
  c.fill(4 * 128, false);
  c.access(0 * 128, false);  // refresh block 0 -> block 4*128 is LRU
  auto ev = c.fill(8 * 128, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->block_addr, 4u * 128);
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(4 * 128));
}

TEST(Cache, VictimPreviewMatchesFill) {
  Cache c(tiny_cache(2));
  EXPECT_EQ(c.victim_for(0), std::nullopt);  // free way
  c.fill(0, false);
  EXPECT_EQ(c.victim_for(128), std::nullopt);  // still one free way
  c.fill(128, false);
  auto preview = c.victim_for(256);
  ASSERT_TRUE(preview.has_value());
  auto ev = c.fill(256, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->block_addr, *preview);
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  Cache c(tiny_cache(1));  // direct-mapped: 8 sets
  c.fill(0, /*dirty=*/true);
  auto ev = c.fill(0 + 256, false);  // same set (8 blocks * 32B = 256)
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, WriteMarksDirty) {
  Cache c(tiny_cache(1));
  c.fill(0, false);
  c.access(0, /*is_write=*/true);
  auto ev = c.fill(256, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, InvalidateRemoves) {
  Cache c(tiny_cache());
  c.fill(0x40, true);
  auto dirty = c.invalidate(0x40);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(*dirty);
  EXPECT_FALSE(c.probe(0x40));
  EXPECT_EQ(c.invalidate(0x40), std::nullopt);
}

TEST(Cache, DoubleFillRejected) {
  Cache c(tiny_cache());
  c.fill(0, false);
  EXPECT_THROW(c.fill(0, false), std::logic_error);
}

TEST(Cache, FlushKeepsStats) {
  Cache c(tiny_cache());
  c.access(0, false);
  c.fill(0, false);
  c.flush();
  EXPECT_EQ(c.resident_blocks(), 0u);
  EXPECT_EQ(c.demand_stats().misses, 1u);
}

// Property sweep: residency never exceeds capacity, and an immediate
// re-access of a filled block always hits, across geometries.
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(CacheGeometry, ResidencyBoundedAndRefillHits) {
  const auto [size, assoc] = GetParam();
  Cache c(CacheConfig{.name = "p",
                      .size_bytes = size,
                      .assoc = assoc,
                      .block_size = 32,
                      .latency = 1});
  Rng rng(size * 31 + assoc);
  for (int i = 0; i < 4000; ++i) {
    const Addr a = rng.below(1 << 20);
    if (!c.access(a, rng.chance(0.3))) {
      c.fill(a, false);
      EXPECT_TRUE(c.probe(a));
    }
    ASSERT_LE(c.resident_blocks(), c.config().num_blocks());
  }
  EXPECT_EQ(c.demand_stats().accesses(), 4000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(1024, 4096, 32768),
                       ::testing::Values(1u, 2u, 4u, 8u)));

// Fully-associative LRU equivalence: a cache with assoc == num_blocks must
// behave exactly like an LRU list.
TEST(Cache, FullyAssociativeIsLru) {
  Cache c(CacheConfig{.name = "fa",
                      .size_bytes = 128,
                      .assoc = 4,
                      .block_size = 32,
                      .latency = 1});
  for (Addr a = 0; a < 4; ++a) c.fill(a * 32, false);
  c.access(0, false);  // 0 MRU; LRU order now 32,64,96,0
  auto ev = c.fill(4 * 32, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->block_addr, 32u);
}

// The fused single-scan lookup must be observationally identical to the
// two-scan access() + victim_for() sequence it replaces, on any stream.
TEST(Cache, AccessWithVictimMatchesTwoScanSequence) {
  Cache fused(tiny_cache(2));
  Cache reference(tiny_cache(2));
  Rng rng(0xfeedULL);
  for (int i = 0; i < 20000; ++i) {
    const Addr a = rng.below(1 << 14);
    const bool w = rng.chance(0.3);

    const std::optional<Addr> ref_victim =
        reference.probe(a) ? std::nullopt : reference.victim_for(a);
    const bool ref_hit = reference.access(a, w);
    const Cache::LookupResult lr = fused.access_with_victim(a, w);

    ASSERT_EQ(lr.hit, ref_hit) << "access " << i;
    if (!ref_hit) {
      ASSERT_EQ(lr.victim, ref_victim) << "access " << i;
      auto ev_f = fused.fill(a, w);
      auto ev_r = reference.fill(a, w);
      ASSERT_EQ(ev_f.has_value(), ev_r.has_value());
      if (ev_f) {
        ASSERT_EQ(ev_f->block_addr, ev_r->block_addr);
        ASSERT_EQ(ev_f->dirty, ev_r->dirty);
      }
    }
  }
  EXPECT_EQ(fused.demand_stats().hits, reference.demand_stats().hits);
  EXPECT_EQ(fused.demand_stats().misses, reference.demand_stats().misses);
  EXPECT_EQ(fused.writebacks(), reference.writebacks());
}

TEST(Cache, AccessWithVictimUpdatesLruAndDirtyOnHit) {
  Cache c(tiny_cache(2));
  c.fill(0, false);
  c.fill(128, false);  // same set; LRU order: 0, 128
  auto lr = c.access_with_victim(0, /*is_write=*/true);
  EXPECT_TRUE(lr.hit);  // hit refreshes 0 -> 128 becomes the victim
  auto miss = c.access_with_victim(256, false);
  EXPECT_FALSE(miss.hit);
  ASSERT_TRUE(miss.victim.has_value());
  EXPECT_EQ(*miss.victim, 128u);
  auto ev = c.fill(256, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->block_addr, 128u);
}

TEST(Cache, SetIndexMatchesDivModReference) {
  for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
    Cache c(tiny_cache(assoc));
    const auto& cfg = c.config();
    for (Addr a = 0; a < (1 << 14); a += 7)
      ASSERT_EQ(c.set_index(a), (a / cfg.block_size) % cfg.num_sets())
          << "assoc=" << assoc << " addr=" << a;
  }
}

TEST(Tlb, NonPow2PageSizeStillTranslates) {
  // The shift fast path must fall back to division for odd page sizes.
  Tlb t(TlbConfig{.name = "odd", .entries = 8, .assoc = 2, .page_size = 3000,
                  .miss_penalty = 5});
  EXPECT_EQ(t.access(0), 5u);
  EXPECT_EQ(t.access(2999), 0u);   // same page
  EXPECT_EQ(t.access(3000), 5u);   // next page
  EXPECT_TRUE(t.probe(3000));
}

TEST(VictimCache, InsertExtractRoundtrip) {
  VictimCache v("v", 4, 32);
  EXPECT_EQ(v.insert(0x100, true), std::nullopt);
  EXPECT_TRUE(v.probe(0x110));  // same block
  auto dirty = v.extract(0x110);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(*dirty);
  EXPECT_FALSE(v.probe(0x100));  // extraction removes
  EXPECT_EQ(v.occupancy(), 0u);
}

TEST(VictimCache, LruDisplacement) {
  VictimCache v("v", 2, 32);
  v.insert(0x000, true);
  v.insert(0x020, false);
  auto displaced = v.insert(0x040, false);  // pushes out 0x000 (dirty)
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->block_addr, 0x000u);
  EXPECT_TRUE(displaced->dirty);
  EXPECT_FALSE(v.probe(0x000));
  EXPECT_TRUE(v.probe(0x020));
  EXPECT_TRUE(v.probe(0x040));
}

TEST(VictimCache, ReinsertRefreshesRecency) {
  VictimCache v("v", 2, 32);
  v.insert(0x000, false);
  v.insert(0x020, false);
  v.insert(0x000, true);   // refresh + dirty merge
  v.insert(0x040, false);  // should displace 0x020, not 0x000
  EXPECT_TRUE(v.probe(0x000));
  EXPECT_FALSE(v.probe(0x020));
  auto d = v.extract(0x000);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d);  // dirtiness merged on reinsert
}

TEST(VictimCache, StatsCountProbes) {
  VictimCache v("v", 2, 32);
  v.insert(0x0, false);
  v.extract(0x0);
  v.extract(0x0);
  EXPECT_EQ(v.stats().hits, 1u);
  EXPECT_EQ(v.stats().misses, 1u);
}

TEST(Tlb, MissFillsTranslation) {
  Tlb t(TlbConfig{.name = "t", .entries = 8, .assoc = 2, .page_size = 4096,
                  .miss_penalty = 30});
  EXPECT_EQ(t.access(0x1000), 30u);
  EXPECT_EQ(t.access(0x1fff), 0u);  // same page
  EXPECT_EQ(t.access(0x2000), 30u);
  EXPECT_EQ(t.stats().misses, 2u);
  EXPECT_EQ(t.stats().hits, 1u);
}

TEST(Tlb, CapacityEviction) {
  Tlb t(TlbConfig{.name = "t", .entries = 4, .assoc = 4, .page_size = 4096,
                  .miss_penalty = 10});
  for (Addr p = 0; p < 5; ++p) t.access(p * 4096);
  EXPECT_FALSE(t.probe(0));  // LRU page evicted
  EXPECT_TRUE(t.probe(4 * 4096));
}

TEST(MainMemory, BurstLatency) {
  MainMemory m(MemoryConfig{.access_latency = 100, .bus_width = 8});
  EXPECT_EQ(m.fetch_latency(8), 100u);
  EXPECT_EQ(m.fetch_latency(128), 100u + 15u);
  EXPECT_EQ(m.reads(), 2u);
}

TEST(MissClassifier, ThreeCs) {
  MissClassifier mc(/*capacity_blocks=*/2, /*block_size=*/32);
  // First touch: compulsory.
  EXPECT_EQ(mc.classify_miss(0), MissKind::Compulsory);
  mc.note_access(0);
  mc.note_access(32);
  mc.note_access(64);  // evicts block 0 from the 2-entry shadow
  // Block 0 was seen but fell out of the same-capacity LRU: capacity miss.
  EXPECT_EQ(mc.classify_miss(0), MissKind::Capacity);
  mc.note_access(0);
  // Block 0 is in the shadow now: a real-cache miss on it would be conflict.
  EXPECT_EQ(mc.classify_miss(0), MissKind::Conflict);
  EXPECT_EQ(mc.total(), 3u);
  EXPECT_NEAR(mc.conflict_share(), 1.0 / 3.0, 1e-12);
}

TEST(MissClassifier, ConflictDetectedAgainstSetPressure) {
  // A direct-mapped cache with 8 blocks thrashes on a 2-block ping-pong that
  // a fully-associative one keeps; the classifier must call those conflicts.
  Cache c(CacheConfig{.name = "dm",
                      .size_bytes = 256,
                      .assoc = 1,
                      .block_size = 32,
                      .latency = 1});
  MissClassifier mc(8, 32);
  std::uint64_t conflicts = 0;
  for (int round = 0; round < 20; ++round) {
    for (Addr a : {Addr{0}, Addr{256}}) {  // same set, direct-mapped
      if (!c.access(a, false)) {
        if (mc.classify_miss(a) == MissKind::Conflict) ++conflicts;
        c.fill(a, false);
      }
      mc.note_access(a);
    }
  }
  EXPECT_GT(conflicts, 30u);  // nearly every repeat miss is a conflict
}

// --- LRU stamp wrap ------------------------------------------------------
//
// The 32-bit recency stamps renormalize (order-preserving) when the counter
// reaches UINT32_MAX. These tests force the counter to the boundary via the
// debug hook and prove the replacement order across the wrap is exactly the
// order of an identical cache whose counter is nowhere near it.

TEST(Cache, StampWrapPreservesExactRecencyOrder) {
  // Twin caches, identical access sequence; `forced` crosses the wrap
  // boundary mid-sequence. Every access outcome and every victim choice
  // must match the unforced twin.
  Cache forced(tiny_cache(4));
  Cache normal(tiny_cache(4));
  const std::uint64_t set_span = 4 * 32;  // assoc-4, 2 sets of 32B blocks
  // Fill one set with 4 blocks in a known recency order: a b c d.
  const Addr a = 0x000, b = a + 2 * set_span, c = a + 4 * set_span,
             d = a + 6 * set_span, e = a + 8 * set_span;
  for (Addr x : {a, b, c, d}) {
    forced.fill(x, false);
    normal.fill(x, false);
  }
  // Park the forced twin's counter so the second touch renormalizes.
  forced.debug_set_stamp(std::numeric_limits<std::uint32_t>::max() - 1);
  // Touch a and b across the boundary: recency becomes c d a b.
  for (Addr x : {a, b}) {
    EXPECT_TRUE(forced.access(x, false));
    EXPECT_TRUE(normal.access(x, false));
  }
  // Renormalization ranks the 8 blocks 1..8 and continues from there.
  EXPECT_LT(forced.debug_stamp(), 20u) << "counter must have wrapped";
  // Both twins must now victimize c (the true LRU), not a or b.
  EXPECT_EQ(forced.victim_for(e), normal.victim_for(e));
  EXPECT_EQ(forced.victim_for(e), forced.block_base_of(c));
  // And the stamps must be strictly distinct after renormalization —
  // a collapsed (all-equal) stamp set would also "pass" a single victim
  // probe by accident of scan order.
  std::vector<std::uint32_t> stamps;
  for (Addr x : {a, b, c, d}) {
    const auto s = forced.debug_lru_of(x);
    ASSERT_TRUE(s.has_value());
    stamps.push_back(*s);
  }
  std::sort(stamps.begin(), stamps.end());
  EXPECT_TRUE(std::adjacent_find(stamps.begin(), stamps.end()) ==
              stamps.end())
      << "renormalized stamps must stay strictly ordered";
  // Continue past the wrap with fresh blocks: each fill must evict the
  // same victim in both twins (c, then d, then a — exact LRU order).
  const Addr f = a + 10 * set_span, g = a + 12 * set_span;
  const Addr expected_victims[] = {c, d, a};
  int vi = 0;
  for (Addr x : {e, f, g}) {
    const auto fv = forced.fill(x, false);
    const auto nv = normal.fill(x, false);
    ASSERT_TRUE(fv.has_value());
    ASSERT_TRUE(nv.has_value());
    EXPECT_EQ(fv->block_addr, nv->block_addr);
    EXPECT_EQ(fv->block_addr, forced.block_base_of(expected_victims[vi++]));
  }
}

TEST(Cache, StampWrapLockstepUnderRandomTraffic) {
  // Differential fuzz across the boundary: thousands of mixed accesses and
  // fills, every hit/miss and eviction compared against the unforced twin.
  Cache forced(tiny_cache(4));
  Cache normal(tiny_cache(4));
  forced.debug_set_stamp(std::numeric_limits<std::uint32_t>::max() - 500);
  Rng rng(0xace5);
  for (int i = 0; i < 4000; ++i) {
    const Addr addr = (rng.next() % 64) * 32;  // 64 blocks over 2 sets
    const bool write = (rng.next() & 1) != 0;
    const bool fh = forced.access(addr, write);
    const bool nh = normal.access(addr, write);
    ASSERT_EQ(fh, nh) << "hit/miss diverged at access " << i;
    if (!fh) {
      const auto fe = forced.fill(addr, write);
      const auto ne = normal.fill(addr, write);
      ASSERT_EQ(fe.has_value(), ne.has_value()) << "eviction diverged " << i;
      if (fe.has_value()) {
        ASSERT_EQ(fe->block_addr, ne->block_addr) << "victim diverged " << i;
        ASSERT_EQ(fe->dirty, ne->dirty) << "dirtiness diverged " << i;
      }
    }
  }
  EXPECT_EQ(forced.demand_stats().hits, normal.demand_stats().hits);
  EXPECT_EQ(forced.writebacks(), normal.writebacks());
}

TEST(Tlb, StampWrapPreservesExactRecencyOrder) {
  // Same differential scheme for the TLB's independent stamp counter.
  TlbConfig cfg{.name = "t", .entries = 8, .assoc = 4, .page_size = 4096,
                .miss_penalty = 30};
  Tlb forced(cfg);
  Tlb normal(cfg);
  forced.debug_set_stamp(std::numeric_limits<std::uint32_t>::max() - 100);
  Rng rng(0x71b);
  for (int i = 0; i < 2000; ++i) {
    const Addr addr = (rng.next() % 12) * 4096 * 2;  // 12 pages, one set
    const Cycle fc = forced.access(addr);
    const Cycle nc = normal.access(addr);
    ASSERT_EQ(fc, nc) << "hit/miss diverged at access " << i;
  }
  EXPECT_LT(forced.debug_stamp(), 3000u) << "counter must have wrapped";
  EXPECT_EQ(forced.stats().hits, normal.stats().hits);
  EXPECT_EQ(forced.stats().misses, normal.stats().misses);
}

}  // namespace
}  // namespace selcache::memsys
