// Tests for the compiler analyses: §2.3 classification, method selection,
// the §2.2 region-detection walk on the paper's Figure 2 structure,
// redundant ON/OFF elimination (Figure 2(b) -> 2(c)), reuse analysis and
// dependence testing.
#include <gtest/gtest.h>

#include "analysis/dependence.h"
#include "analysis/marker_elimination.h"
#include "analysis/region_detection.h"
#include "analysis/reuse.h"
#include "ir/builder.h"

namespace selcache::analysis {
namespace {

using ir::AffineExpr;
using ir::chase;
using ir::load_array;
using ir::load_field;
using ir::load_scalar;
using ir::LoopNode;
using ir::NodeKind;
using ir::Program;
using ir::ProgramBuilder;
using ir::store_array;
using ir::Subscript;
using ir::ToggleNode;
using ir::Var;
using ir::x;

// ---- §2.3 classification --------------------------------------------------

TEST(Classify, PaperExamples) {
  ProgramBuilder b("t");
  const auto B = b.array("B", {8});
  const auto C = b.array("C", {8, 8});
  const auto D = b.array("D", {8, 8});
  const auto E = b.array("E", {8});
  const auto F = b.array("F", {8, 8});
  const auto G = b.array("G", {8});
  const auto IP = b.index_array("IP", 8, ir::ArrayDecl::Content::Identity);
  const auto A = b.scalar("A");
  const auto H = b.chase_pool("H", 8, 16);
  const auto J = b.record_pool("J", 8, 32);
  const Var i{b.program().add_var("i")}, j{b.program().add_var("j")},
      k{b.program().add_var("k")};

  // Analyzable: scalar A; affine B[i], C[i+j][k-1].
  EXPECT_TRUE(is_analyzable(load_scalar(A)));
  EXPECT_TRUE(is_analyzable(load_array(B, {Subscript::affine(x(i))})));
  EXPECT_TRUE(is_analyzable(load_array(
      C, {Subscript::affine(x(i) + x(j)), Subscript::affine(x(k) - 1)})));

  // Non-analyzable: D[i*i][j], E[i/j], F[3][i*j], G[IP[j]+2], *H, J.field.
  EXPECT_FALSE(is_analyzable(load_array(
      D, {Subscript::product(x(i), x(i)), Subscript::affine(x(j))})));
  EXPECT_FALSE(is_analyzable(load_array(E, {Subscript::divide(x(i), x(j))})));
  EXPECT_FALSE(is_analyzable(load_array(
      F, {Subscript::affine(AffineExpr::constant(3)),
          Subscript::product(x(i), x(j))})));
  EXPECT_FALSE(
      is_analyzable(load_array(G, {Subscript::indexed(IP, x(j), 2)})));
  EXPECT_FALSE(is_analyzable(chase(H)));
  EXPECT_FALSE(is_analyzable(load_field(J, Subscript::affine(x(i)), 8)));
}

TEST(Classify, CountsOverSubtree) {
  ProgramBuilder b("t");
  const auto B = b.array("B", {8});
  const auto H = b.chase_pool("H", 8, 16);
  const auto i = b.begin_loop("i", 0, 8);
  b.stmt({load_array(B, {b.sub(i)}), chase(H), chase(H)}, 1);
  b.end_loop();
  Program p = b.finish();
  const RefCounts c = count_refs(*p.top()[0]);
  EXPECT_EQ(c.total, 3u);
  EXPECT_EQ(c.analyzable, 1u);
  EXPECT_NEAR(c.ratio(), 1.0 / 3.0, 1e-12);
}

TEST(Classify, EmptyLoopCountsAsCompilerFriendly) {
  ProgramBuilder b("t");
  b.begin_loop("i", 0, 8);
  b.stmt({}, 1);
  b.end_loop();
  Program p = b.finish();
  EXPECT_DOUBLE_EQ(count_refs(*p.top()[0]).ratio(), 1.0);
}

// ---- method selection -------------------------------------------------

TEST(MethodSelection, ThresholdBoundary) {
  ProgramBuilder b("t");
  const auto B = b.array("B", {8});
  const auto H = b.chase_pool("H", 8, 16);
  const auto i = b.begin_loop("i", 0, 8);
  b.stmt({load_array(B, {b.sub(i)}), chase(H)}, 1);  // ratio exactly 0.5
  b.end_loop();
  Program p = b.finish();
  const auto& loop = static_cast<const LoopNode&>(*p.top()[0]);
  EXPECT_EQ(select_method(loop, 0.5), Method::Compiler);   // >= threshold
  EXPECT_EQ(select_method(loop, 0.51), Method::Hardware);  // below
}

// ---- region detection on the Figure 2 structure -------------------------

/// Build the paper's Figure 2(a): an outer loop (level 1) containing three
/// level-2 nests; the first reaches depth 4 (hardware), the second is
/// hardware, the third is compiler-friendly.
Program figure2_program() {
  ProgramBuilder b("fig2");
  const auto A = b.array("A", {64, 64});
  const auto H = b.chase_pool("H", 64, 16);

  b.begin_loop("L1", 0, 2);

  b.begin_loop("L2a", 0, 4);
  b.begin_loop("L3a", 0, 4);
  b.begin_loop("L4a", 0, 4);
  b.stmt({chase(H), chase(H)}, 1, "hw_deep");  // irregular innermost
  b.end_loop();
  b.end_loop();
  b.end_loop();

  b.begin_loop("L2b", 0, 4);
  b.begin_loop("L3b", 0, 4);
  b.stmt({chase(H)}, 1, "hw_mid");
  b.end_loop();
  b.end_loop();

  const auto i = b.begin_loop("L2c", 0, 8);
  const auto j = b.begin_loop("L3c", 0, 8);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         1, "sw");
  b.end_loop();
  b.end_loop();

  b.end_loop();  // L1
  return b.finish();
}

TEST(RegionDetection, Figure2Decisions) {
  Program p = figure2_program();
  const RegionAnalysis ra = analyze_regions(p);
  const auto loops = p.loops();
  ASSERT_EQ(loops.size(), 8u);
  // Pre-order: L1, L2a, L3a, L4a, L2b, L3b, L2c, L3c.
  EXPECT_EQ(ra.decision(*loops[0]), RegionDecision::Mixed);     // L1
  EXPECT_EQ(ra.decision(*loops[1]), RegionDecision::Hardware);  // L2a
  EXPECT_EQ(ra.decision(*loops[2]), RegionDecision::Hardware);  // L3a
  EXPECT_EQ(ra.decision(*loops[3]), RegionDecision::Hardware);  // L4a
  EXPECT_EQ(ra.decision(*loops[4]), RegionDecision::Hardware);  // L2b
  EXPECT_EQ(ra.decision(*loops[6]), RegionDecision::Compiler);  // L2c
  // The compiler root is the outermost compiler loop, not its child.
  ASSERT_EQ(ra.compiler_roots.size(), 1u);
  EXPECT_EQ(ra.compiler_roots[0], loops[6]);
}

TEST(RegionDetection, Figure2MarkersAfterElimination) {
  Program p = figure2_program();
  detect_and_mark(p);
  const std::size_t removed = eliminate_redundant_markers(p);
  // Figure 2(c): inside L1 the two adjacent hardware nests share one ON/OFF
  // bracket; the OFF-ON pair between them is eliminated.
  EXPECT_GE(removed, 2u);
  EXPECT_EQ(count_markers(p), 2u);

  // And they sit inside L1: ON before L2a, OFF after L2b.
  const auto& l1 = static_cast<const LoopNode&>(*p.top()[0]);
  ASSERT_GE(l1.body.size(), 4u);
  EXPECT_EQ(l1.body[0]->kind, NodeKind::Toggle);
  EXPECT_TRUE(static_cast<const ToggleNode&>(*l1.body[0]).on);
  EXPECT_EQ(l1.body[3]->kind, NodeKind::Toggle);
  EXPECT_FALSE(static_cast<const ToggleNode&>(*l1.body[3]).on);
}

TEST(RegionDetection, UniformProgramGetsNoInternalSwitches) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {16, 16});
  const auto i = b.begin_loop("i", 0, 16);
  const auto j = b.begin_loop("j", 0, 16);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)})}, 1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  detect_and_mark(p);
  eliminate_redundant_markers(p);
  EXPECT_EQ(count_markers(p), 0u);  // all-compiler: hardware stays off
}

TEST(RegionDetection, AllHardwareBracketsWholeNest) {
  ProgramBuilder b("t");
  const auto H = b.chase_pool("H", 8, 16);
  b.begin_loop("i", 0, 8);
  b.stmt({chase(H)}, 1);
  b.end_loop();
  Program p = b.finish();
  detect_and_mark(p);
  eliminate_redundant_markers(p);
  EXPECT_EQ(count_markers(p), 2u);
  EXPECT_EQ(p.top()[0]->kind, NodeKind::Toggle);  // ON before the loop
}

TEST(RegionDetection, SandwichedStatementTreatedAsImaginaryLoop) {
  // §2.2: statements between two nests with different schemes are decided by
  // their own references.
  ProgramBuilder b("t");
  const auto A = b.array("A", {8, 8});
  const auto H = b.chase_pool("H", 8, 16);
  b.begin_loop("outer", 0, 2);
  b.begin_loop("hw", 0, 8);
  b.stmt({chase(H)}, 1);
  b.end_loop();
  b.stmt({chase(H), chase(H)}, 1, "sandwiched_irregular");
  const auto i = b.begin_loop("sw", 0, 8);
  b.stmt({load_array(A, {b.sub(i), b.csub(0)})}, 1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  detect_and_mark(p);
  eliminate_redundant_markers(p);
  // The irregular sandwiched statement is folded into the hardware bracket
  // of the preceding nest: exactly one ON...OFF pair remains.
  EXPECT_EQ(count_markers(p), 2u);
}

TEST(MarkerElimination, IdempotentAndStateEquivalent) {
  Program p = figure2_program();
  detect_and_mark(p);
  eliminate_redundant_markers(p);
  const std::size_t markers = count_markers(p);
  EXPECT_EQ(eliminate_redundant_markers(p), 0u);  // fixpoint reached
  EXPECT_EQ(count_markers(p), markers);
}

TEST(MarkerElimination, RemovesBackToBackDuplicates) {
  ProgramBuilder b("t");
  b.toggle(true);
  b.toggle(true);   // redundant
  b.stmt({}, 1);
  b.toggle(false);
  b.toggle(false);  // redundant
  Program p = b.finish();
  EXPECT_EQ(eliminate_redundant_markers(p), 2u);
  EXPECT_EQ(count_markers(p), 2u);
}

TEST(MarkerElimination, InitialOffIsRedundant) {
  ProgramBuilder b("t");
  b.toggle(false);  // machine starts OFF
  b.stmt({}, 1);
  Program p = b.finish();
  EXPECT_EQ(eliminate_redundant_markers(p), 1u);
  EXPECT_EQ(count_markers(p), 0u);
}

TEST(MarkerElimination, LoopCarriedStateIsConservative) {
  // ON at the top of a loop body is NOT redundant on re-entry if the body
  // ends OFF: state at the back edge differs from fall-in.
  ProgramBuilder b("t");
  b.toggle(true);
  b.begin_loop("i", 0, 4);
  b.toggle(true);  // entry state: meet(On, Off) = Unknown -> must stay
  b.stmt({}, 1);
  b.toggle(false);
  b.end_loop();
  Program p = b.finish();
  eliminate_redundant_markers(p);
  // The in-loop ON must survive; the in-loop OFF must survive; the leading
  // ON may or may not be folded but state behavior must be preserved:
  const auto& loop = static_cast<const LoopNode&>(
      *p.top()[p.top().size() - 1]);
  std::size_t in_loop = 0;
  for (const auto& n : loop.body)
    if (n->kind == NodeKind::Toggle) ++in_loop;
  EXPECT_EQ(in_loop, 2u);
}

// ---- reuse ---------------------------------------------------------------

TEST(Reuse, TemporalSpatialNone) {
  ProgramBuilder b("t");
  const auto U = b.array("U", {8});
  const auto V = b.array("V", {8, 8});
  const Var i{b.program().add_var("i")}, j{b.program().add_var("j")};
  const Program& p = b.program();

  // U[j] w.r.t. i: temporal (the paper's running example).
  EXPECT_EQ(ref_reuse(p, load_array(U, {Subscript::affine(x(j))}), i.id),
            ReuseKind::Temporal);
  // V[j][i] w.r.t. i: spatial (i on the fastest dim of a row-major array).
  EXPECT_EQ(ref_reuse(p,
                      load_array(V, {Subscript::affine(x(j)),
                                     Subscript::affine(x(i))}),
                      i.id),
            ReuseKind::Spatial);
  // V[i][j] w.r.t. i: none (column walk).
  EXPECT_EQ(ref_reuse(p,
                      load_array(V, {Subscript::affine(x(i)),
                                     Subscript::affine(x(j))}),
                      i.id),
            ReuseKind::None);
}

TEST(Reuse, LayoutChangesSpatialDirection) {
  ProgramBuilder b("t");
  const auto V = b.array("V", {8, 8});
  const Var i{b.program().add_var("i")}, j{b.program().add_var("j")};
  b.program().array(V).layout = ir::Layout::ColMajor;
  // Under column-major, V[i][j] w.r.t. i IS spatial.
  EXPECT_EQ(ref_reuse(b.program(),
                      load_array(V, {Subscript::affine(x(i)),
                                     Subscript::affine(x(j))}),
                      i.id),
            ReuseKind::Spatial);
}

TEST(Reuse, LargeStrideIsNotSpatial) {
  ProgramBuilder b("t");
  const auto V = b.array("V", {8, 8});
  const Var i{b.program().add_var("i")};
  EXPECT_EQ(ref_reuse(b.program(),
                      load_array(V, {Subscript::affine(AffineExpr::constant(0)),
                                     Subscript::affine(4 * x(i))}),
                      i.id),
            ReuseKind::None);
}

// ---- dependence ------------------------------------------------------------

TEST(Dependence, ConstantDistanceStencil) {
  // A[i][j] = A[i-1][j+1]: distance (1,-1), canonicalized lexicographically
  // positive.
  ProgramBuilder b("t");
  const auto A = b.array("A", {8, 8});
  const Var i{b.program().add_var("i")}, j{b.program().add_var("j")};
  const auto w = store_array(A, {Subscript::affine(x(i)),
                                 Subscript::affine(x(j))});
  const auto r = load_array(A, {Subscript::affine(x(i) - 1),
                                Subscript::affine(x(j) + 1)});
  bool ok = true;
  const auto dep = ref_dependence(w, r, {i.id, j.id}, &ok);
  EXPECT_TRUE(ok);
  ASSERT_TRUE(dep.has_value());
  EXPECT_EQ(dep->distance, (std::vector<std::int64_t>{1, -1}));
}

TEST(Dependence, IndependentDims) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {8, 8});
  const Var i{b.program().add_var("i")};
  // A[0][i] vs A[1][i]: constant dims differ -> no dependence.
  const auto w = store_array(A, {Subscript::affine(AffineExpr::constant(0)),
                                 Subscript::affine(x(i))});
  const auto r = load_array(A, {Subscript::affine(AffineExpr::constant(1)),
                                Subscript::affine(x(i))});
  bool ok = true;
  EXPECT_EQ(ref_dependence(w, r, {i.id}, &ok), std::nullopt);
  EXPECT_TRUE(ok);
}

TEST(Dependence, CoupledSubscriptIsUnanalyzable) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {8});
  const Var i{b.program().add_var("i")}, j{b.program().add_var("j")};
  const auto w = store_array(A, {Subscript::affine(x(i) + x(j))});
  const auto r = load_array(A, {Subscript::affine(x(i) + x(j) + 1)});
  bool ok = true;
  ref_dependence(w, r, {i.id, j.id}, &ok);
  EXPECT_FALSE(ok);
}

TEST(Dependence, GcdExcludesNonIntegralDistance) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {16});
  const Var i{b.program().add_var("i")};
  // A[2i] vs A[2i+1]: even vs odd elements never meet.
  const auto w = store_array(A, {Subscript::affine(2 * x(i))});
  const auto r = load_array(A, {Subscript::affine(2 * x(i) + 1)});
  bool ok = true;
  EXPECT_EQ(ref_dependence(w, r, {i.id}, &ok), std::nullopt);
  EXPECT_TRUE(ok);
}

TEST(Dependence, PermutationLegality) {
  DependenceSet deps;
  deps.deps.push_back(Dependence{{1, -1}});
  EXPECT_TRUE(permutation_legal(deps, {0, 1}));   // identity
  EXPECT_FALSE(permutation_legal(deps, {1, 0}));  // (-1,1): illegal
  DependenceSet ok_deps;
  ok_deps.deps.push_back(Dependence{{0, 1}});
  EXPECT_TRUE(permutation_legal(ok_deps, {1, 0}));  // (1,0): fine
}

TEST(Dependence, UnknownBlocksEverythingButIdentity) {
  DependenceSet deps;
  deps.unknown = true;
  EXPECT_TRUE(permutation_legal(deps, {0, 1, 2}));
  EXPECT_FALSE(permutation_legal(deps, {0, 2, 1}));
}

TEST(Dependence, CollectFindsWriteReadPairs) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {8, 8});
  const auto i = b.begin_loop("i", 1, 8);
  const auto j = b.begin_loop("j", 0, 8);
  b.stmt({load_array(A, {b.sub(i, -1), b.sub(j)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  const auto& root = static_cast<const LoopNode&>(*p.top()[0]);
  const auto deps = collect_dependences(
      root, {root.var, static_cast<const LoopNode&>(*root.body[0]).var});
  EXPECT_FALSE(deps.unknown);
  ASSERT_EQ(deps.deps.size(), 1u);
  EXPECT_EQ(deps.deps[0].distance, (std::vector<std::int64_t>{1, 0}));
}

}  // namespace
}  // namespace selcache::analysis
