// Persistent result store tests: entry round-trip, the trust contract
// (truncated / corrupted / mis-keyed entries are misses, never errors),
// read-only and gc behavior, tape persistence, and the runner integration
// (warm loads bit-identical to cold simulation; armed runs bypass).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "ir/builder.h"
#include "store/store.h"
#include "tape/cache.h"

namespace selcache::store {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("selcache_store_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

StoredResult sample_result() {
  StoredResult r;
  r.cycles = 123456789;
  r.instructions = 987654321;
  r.l1_miss_rate = 0.0625;
  r.l2_miss_rate = 0.25;
  r.conflict_share = 0.5;
  r.toggles = 7;
  r.stats.add("l1d.hits", 1000);
  r.stats.add("l1d.misses", 64);
  r.stats.add("cpu.cycles", 123456789);
  return r;
}

void expect_equal(const StoredResult& a, const StoredResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l1_miss_rate, b.l1_miss_rate);
  EXPECT_EQ(a.l2_miss_rate, b.l2_miss_rate);
  EXPECT_EQ(a.conflict_share, b.conflict_share);
  EXPECT_EQ(a.toggles, b.toggles);
  EXPECT_EQ(a.stats.all(), b.stats.all());
}

/// Path of the single .cell file in the store (fails the test if != 1).
std::string only_cell(const std::string& dir) {
  std::vector<std::string> cells;
  for (const auto& e : fs::directory_iterator(fs::path(dir) / "cells"))
    cells.push_back(e.path().string());
  EXPECT_EQ(cells.size(), 1u);
  return cells.empty() ? std::string() : cells.front();
}

TEST_F(StoreTest, RoundTripsResultWithFullStatSet) {
  ResultStore s(dir_);
  const StoredResult r = sample_result();
  s.save("cell/a", r);
  const auto back = s.load("cell/a");
  ASSERT_TRUE(back.has_value());
  expect_equal(*back, r);
  const auto c = s.counters();
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 0u);
}

TEST_F(StoreTest, AbsentKeyIsMiss) {
  ResultStore s(dir_);
  EXPECT_FALSE(s.load("never/written").has_value());
  const auto c = s.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.corrupt, 0u);
}

TEST_F(StoreTest, TruncatedEntryIsMissNotError) {
  ResultStore s(dir_);
  s.save("cell/a", sample_result());
  const std::string path = only_cell(dir_);
  // Truncate at every prefix length: header cut, payload cut, checksum cut.
  std::ifstream in(path, std::ios::binary);
  std::string whole((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, std::size_t{12},
                           whole.size() / 2, whole.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(whole.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(s.load("cell/a").has_value()) << "kept " << keep;
  }
  EXPECT_GE(s.counters().corrupt, 5u);
  // A rewrite heals the entry.
  s.save("cell/a", sample_result());
  EXPECT_TRUE(s.load("cell/a").has_value());
}

TEST_F(StoreTest, BitFlippedEntryIsMiss) {
  ResultStore s(dir_);
  s.save("cell/a", sample_result());
  const std::string path = only_cell(dir_);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(fs::file_size(path)) / 2);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-1, std::ios::cur);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();
  EXPECT_FALSE(s.load("cell/a").has_value());
  EXPECT_EQ(s.counters().corrupt, 1u);
}

TEST_F(StoreTest, FilenameCollisionDegradesToMiss) {
  // Force the "collision" by copying key A's file onto key B's path: the
  // embedded key no longer matches, so B must miss instead of serving A's
  // result.
  ResultStore s(dir_);
  s.save("cell/a", sample_result());
  const std::string a_path = only_cell(dir_);
  s.save("cell/b", sample_result());
  // Find b's path (the one that is not a_path) and clobber it with a's file.
  std::string b_path;
  for (const auto& e : fs::directory_iterator(fs::path(dir_) / "cells"))
    if (e.path().string() != a_path) b_path = e.path().string();
  ASSERT_FALSE(b_path.empty());
  fs::copy_file(a_path, b_path, fs::copy_options::overwrite_existing);
  EXPECT_TRUE(s.load("cell/a").has_value());
  EXPECT_FALSE(s.load("cell/b").has_value());
  EXPECT_EQ(s.counters().corrupt, 1u);
}

TEST_F(StoreTest, ReadOnlyServesHitsButNeverWrites) {
  {
    ResultStore w(dir_);
    w.save("cell/a", sample_result());
  }
  ResultStore ro(dir_, ResultStore::Options{.read_only = true});
  EXPECT_TRUE(ro.read_only());
  EXPECT_TRUE(ro.load("cell/a").has_value());
  ro.save("cell/b", sample_result());
  EXPECT_EQ(ro.counters().writes, 0u);
  EXPECT_FALSE(ro.load("cell/b").has_value());
  EXPECT_EQ(ro.entries().size(), 1u);
}

TEST_F(StoreTest, EntriesAndGcOldestFirst) {
  ResultStore s(dir_);
  s.save("cell/a", sample_result());
  s.save("cell/b", sample_result());
  s.save("cell/c", sample_result());
  auto entries = s.entries();
  ASSERT_EQ(entries.size(), 3u);
  for (const auto& e : entries) {
    EXPECT_GT(e.bytes, 0u);
    EXPECT_FALSE(e.key.empty());
  }
  const std::uint64_t total = s.total_bytes();
  EXPECT_GT(total, 0u);
  // Age "cell/a"'s file so gc must pick it first.
  for (const auto& e : entries)
    if (e.key == "cell/a")
      fs::last_write_time(e.path, fs::file_time_type::clock::now() -
                                      std::chrono::hours(24));
  const std::uint64_t keep_two = total - entries.front().bytes / 2;
  EXPECT_EQ(s.gc(keep_two), 1u);
  EXPECT_FALSE(s.load("cell/a").has_value());
  EXPECT_TRUE(s.load("cell/b").has_value());
  EXPECT_TRUE(s.load("cell/c").has_value());
  EXPECT_EQ(s.gc(0), 2u);
  EXPECT_EQ(s.total_bytes(), 0u);
}

TEST_F(StoreTest, ClearEmptiesTheStore) {
  ResultStore s(dir_);
  s.save("cell/a", sample_result());
  s.save("cell/b", sample_result());
  s.clear();
  EXPECT_EQ(s.entries().size(), 0u);
  EXPECT_FALSE(s.load("cell/a").has_value());
}

TEST_F(StoreTest, PersistsAndPreloadsTapes) {
  tape::TapeCache cache;
  bool recorded = false;
  cache.get_or_record(
      "tape/x",
      [] {
        tape::TapeBuilder b;
        b.load(0x1000, false);
        b.store(0x2000);
        b.compute(3);
        return b.take();
      },
      &recorded);
  ASSERT_TRUE(recorded);
  {
    ResultStore s(dir_);
    EXPECT_EQ(s.persist_tapes(cache), 1u);
    // Second persist is a no-op (the tape is already on disk).
    EXPECT_EQ(s.persist_tapes(cache), 0u);
  }
  ResultStore s(dir_);
  tape::TapeCache warm;
  EXPECT_EQ(s.preload_tapes(warm), 1u);
  bool re_recorded = false;
  const auto t = warm.get_or_record(
      "tape/x",
      []() -> tape::Tape {
        ADD_FAILURE() << "preloaded tape must not re-record";
        return tape::TapeBuilder().take();
      },
      &re_recorded);
  EXPECT_FALSE(re_recorded);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->stats.data_accesses(), 2u);
}

TEST_F(StoreTest, CorruptTapeIsSkippedOnPreload) {
  tape::TapeCache cache;
  cache.get_or_record("tape/x", [] {
    tape::TapeBuilder b;
    b.load(0x1000, false);
    return b.take();
  });
  ResultStore s(dir_);
  ASSERT_EQ(s.persist_tapes(cache), 1u);
  // Truncate the tape body; its .key sidecar stays intact.
  for (const auto& e : fs::directory_iterator(fs::path(dir_) / "tapes"))
    if (e.path().extension() == ".tape")
      fs::resize_file(e.path(), fs::file_size(e.path()) / 2);
  tape::TapeCache warm;
  EXPECT_EQ(s.preload_tapes(warm), 0u);
}

// --- runner integration ---------------------------------------------------

ir::Program store_demo() {
  ir::ProgramBuilder b("storedemo");
  const auto A = b.array("A", {64, 64});
  const auto j = b.begin_loop("j", 0, 64);
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)}),
          ir::store_array(A, {b.sub(i), b.sub(j)})},
         2);
  b.end_loop();
  b.end_loop();
  return b.finish();
}

workloads::WorkloadInfo store_demo_info() {
  return {"storedemo", "synthetic", workloads::Category::Regular, store_demo,
          1.0, 1.0, 1.0};
}

void expect_equal_runs(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l1_miss_rate, b.l1_miss_rate);
  EXPECT_EQ(a.l2_miss_rate, b.l2_miss_rate);
  EXPECT_EQ(a.conflict_share, b.conflict_share);
  EXPECT_EQ(a.toggles, b.toggles);
  EXPECT_EQ(a.stats.all(), b.stats.all());
}

TEST_F(StoreTest, WarmRunVersionIsBitIdenticalToCold) {
  ResultStore s(dir_);
  core::RunOptions opt;
  opt.result_store = &s;
  opt.classify_misses = true;  // exercise the classifier counters too
  const auto w = store_demo_info();
  const auto m = core::base_machine();

  const core::RunResult cold =
      core::run_version(w, m, core::Version::Selective, opt);
  EXPECT_EQ(s.counters().misses, 1u);
  EXPECT_EQ(s.counters().writes, 1u);

  const core::RunResult warm =
      core::run_version(w, m, core::Version::Selective, opt);
  EXPECT_EQ(s.counters().hits, 1u);
  expect_equal_runs(cold, warm);

  // An un-stored reference run confirms the cold pass itself was untainted.
  core::RunOptions plain;
  plain.classify_misses = true;
  const core::RunResult ref =
      core::run_version(w, m, core::Version::Selective, plain);
  expect_equal_runs(ref, cold);
}

TEST_F(StoreTest, StoreKeySeparatesMachinesSchemesAndVersions) {
  const auto w = store_demo_info();
  core::RunOptions opt;
  const std::string base =
      core::store_key(w, core::base_machine(), core::Version::Base, opt);
  EXPECT_EQ(core::store_key(w, core::base_machine(), core::Version::Base, opt),
            base)
      << "key must be deterministic";
  EXPECT_NE(core::store_key(w, core::higher_mem_latency(), core::Version::Base,
                            opt),
            base);
  EXPECT_NE(
      core::store_key(w, core::base_machine(), core::Version::Selective, opt),
      base);
  core::RunOptions victim = opt;
  victim.scheme = hw::SchemeKind::Victim;
  EXPECT_NE(core::store_key(w, core::base_machine(), core::Version::Base,
                            victim),
            base);
  core::RunOptions classify = opt;
  classify.classify_misses = true;
  EXPECT_NE(core::store_key(w, core::base_machine(), core::Version::Base,
                            classify),
            base);
  core::RunOptions seeded = opt;
  seeded.data_seed ^= 1;
  EXPECT_NE(core::store_key(w, core::base_machine(), core::Version::Base,
                            seeded),
            base);
}

TEST_F(StoreTest, ArmedRunsBypassTheStore) {
  ResultStore s(dir_);
  const auto w = store_demo_info();
  const auto m = core::base_machine();

  core::RunOptions watched;
  watched.result_store = &s;
  watched.watchdog_accesses = 1'000'000'000;  // armed but never fires
  core::run_version(w, m, core::Version::Base, watched);

  core::RunOptions faulted;
  faulted.result_store = &s;
  faulted.fault.kind = fault::FaultKind::CounterFlip;
  faulted.fault.rate = 1e-4;
  core::run_version(w, m, core::Version::Base, faulted);

  const auto c = s.counters();
  EXPECT_EQ(c.hits + c.misses + c.writes, 0u)
      << "armed runs must never touch the store";
  EXPECT_EQ(s.entries().size(), 0u);
}

TEST_F(StoreTest, CorruptStoredCellResimulates) {
  ResultStore s(dir_);
  core::RunOptions opt;
  opt.result_store = &s;
  const auto w = store_demo_info();
  const auto m = core::base_machine();
  const auto cold = core::run_version(w, m, core::Version::Base, opt);
  // Smash the cell; the next run must re-simulate and heal it.
  for (const auto& e : fs::directory_iterator(fs::path(dir_) / "cells"))
    fs::resize_file(e.path(), 10);
  const auto resim = core::run_version(w, m, core::Version::Base, opt);
  expect_equal_runs(cold, resim);
  EXPECT_EQ(s.counters().corrupt, 1u);
  EXPECT_EQ(s.counters().writes, 2u);
  const auto warm = core::run_version(w, m, core::Version::Base, opt);
  expect_equal_runs(cold, warm);
}

// -- failing filesystem ------------------------------------------------------
// ENOSPC/EIO on the write path must be counted and diagnosable, never
// silent, and must degrade to a miss on the next load — the same trust
// contract corruption follows.

TEST_F(StoreTest, FailedWriteIsCountedAndDiagnosable) {
  ResultStore s(dir_);
  support::write_fault_hook() = [](const std::string&, const char* stage) {
    return std::strcmp(stage, "write") == 0;
  };
  s.save("cell-key-1", sample_result());
  support::write_fault_hook() = nullptr;

  const auto c = s.counters();
  EXPECT_EQ(c.write_errors, 1u);
  EXPECT_EQ(c.writes, 0u) << "a failed save is not a completed write";
  EXPECT_NE(s.last_write_error().find("write"), std::string::npos)
      << "diagnostic must name the failing stage: " << s.last_write_error();

  // A failed save leaves no entry behind: the load is a clean miss, so the
  // cell re-simulates next run instead of reading garbage.
  EXPECT_FALSE(s.load("cell-key-1").has_value());
  EXPECT_TRUE(s.entries().empty());
}

TEST_F(StoreTest, WriteRecoversWhenFilesystemHeals) {
  ResultStore s(dir_);
  support::write_fault_hook() = [](const std::string&, const char* stage) {
    return std::strcmp(stage, "rename") == 0;
  };
  s.save("cell-key-2", sample_result());
  support::write_fault_hook() = nullptr;
  EXPECT_EQ(s.counters().write_errors, 1u);

  s.save("cell-key-2", sample_result());
  EXPECT_EQ(s.counters().write_errors, 1u) << "healed save must not count";
  const auto r = s.load("cell-key-2");
  ASSERT_TRUE(r.has_value());
  expect_equal(*r, sample_result());
}

}  // namespace
}  // namespace selcache::store
