// The batched multi-config replay contract: decoding a tape ONCE and
// fanning its batches out to N machine configurations (multi_replay_tape /
// sweep_axis_shared_decode) is bit-identical to N separate per-config
// replays — same RunResults and merged StatSets, same phase-trace JSONL,
// same persistent-store fingerprints — at any thread count, any batch
// size, and under the forced-scalar kernels.
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <string>
#include <vector>

#include "core/runner.h"
#include "memsys/probe_kernels.h"
#include "store/store.h"
#include "tape/cache.h"
#include "trace/jsonl.h"

namespace selcache::core {
namespace {

std::vector<MachineConfig> axis_machines() {
  return {base_machine(), higher_mem_latency(), larger_l2(),
          higher_l1_assoc()};
}

void expect_results_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l1_miss_rate, b.l1_miss_rate);
  EXPECT_EQ(a.l2_miss_rate, b.l2_miss_rate);
  EXPECT_EQ(a.conflict_share, b.conflict_share);
  EXPECT_EQ(a.toggles, b.toggles);
  EXPECT_EQ(a.stats.all(), b.stats.all());
}

void expect_rows_identical(const std::vector<ImprovementRow>& a,
                           const std::vector<ImprovementRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].benchmark);
    EXPECT_EQ(a[i].benchmark, b[i].benchmark);
    EXPECT_EQ(a[i].base_cycles, b[i].base_cycles);
    EXPECT_EQ(a[i].pct, b[i].pct);
    EXPECT_EQ(a[i].accesses, b[i].accesses);
    EXPECT_EQ(a[i].stats.all(), b[i].stats.all());
  }
}

/// The headline criterion: every cell of the 13x5 matrix, fanned across a
/// 4-machine axis with one decode, matches per-config replay bit for bit
/// at --threads 1, 4, and 8.
TEST(MultiReplay, FullMatrixMatchesPerConfigReplayAtEveryThreadCount) {
  const std::vector<MachineConfig> machines = axis_machines();
  const RunOptions opt;
  for (const auto& w : workloads::all_workloads()) {
    SCOPED_TRACE(w.name);
    for (Version v : kAllVersions) {
      SCOPED_TRACE(to_string(v));
      const tape::Tape t = record_tape(w, base_machine(), v, opt);
      std::vector<RunResult> solo;
      for (const MachineConfig& m : machines)
        solo.push_back(replay_tape(t, m, v, opt));
      for (const unsigned threads : {1u, 4u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const std::vector<RunResult> fanned = multi_replay_tape(
            t, machines, v, opt,
            ParallelSweepOptions{.num_threads = threads});
        ASSERT_EQ(fanned.size(), machines.size());
        for (std::size_t i = 0; i < machines.size(); ++i)
          expect_results_identical(solo[i], fanned[i]);
      }
    }
  }
}

/// Batch size must be invisible in the results: a tiny batch (heavy
/// fan-out traffic, partial final batch) and a huge one (a single batch
/// covering the whole tape) both reproduce the per-config replay.
TEST(MultiReplay, BatchSizeNeverChangesResults) {
  const auto& w = workloads::all_workloads().front();
  const std::vector<MachineConfig> machines = axis_machines();
  const tape::Tape t = record_tape(w, base_machine(), Version::Selective);

  std::vector<RunResult> solo;
  for (const MachineConfig& m : machines)
    solo.push_back(replay_tape(t, m, Version::Selective));

  for (const std::uint32_t batch : {1u, 7u, 512u, 1u << 22}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    RunOptions opt;
    opt.batch = batch;
    const std::vector<RunResult> fanned =
        multi_replay_tape(t, machines, Version::Selective, opt,
                          ParallelSweepOptions{.num_threads = 4});
    for (std::size_t i = 0; i < machines.size(); ++i)
      expect_results_identical(solo[i], fanned[i]);
  }
}

/// The trace layer rides along: a traced fan-out records, per machine, the
/// exact epochs and events of a solo traced replay — compared both as
/// structures and as the serialized JSONL bytes the CLI emits.
TEST(MultiReplay, TracedFanOutMatchesSoloTraceJsonl) {
  const auto& w = workloads::all_workloads().front();
  const std::vector<MachineConfig> machines = axis_machines();
  RunOptions opt;
  opt.trace_epoch = 2000;  // several epochs per run
  const tape::Tape t = record_tape(w, base_machine(), Version::Selective, opt);

  std::vector<trace::Recording> solo(machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i)
    (void)replay_tape(t, machines[i], Version::Selective, opt, &solo[i]);

  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<trace::Recording> fanned(machines.size());
    std::vector<trace::Recording*> sinks;
    for (auto& r : fanned) sinks.push_back(&r);
    (void)multi_replay_tape(t, machines, Version::Selective, opt,
                            ParallelSweepOptions{.num_threads = threads},
                            &sinks);
    for (std::size_t i = 0; i < machines.size(); ++i) {
      SCOPED_TRACE("machine " + std::to_string(i));
      ASSERT_FALSE(fanned[i].epochs.empty());
      EXPECT_EQ(solo[i], fanned[i]);
      const trace::SimTag tag{.workload = w.name, .version = "selective"};
      EXPECT_EQ(trace::events_jsonl(solo[i], tag),
                trace::events_jsonl(fanned[i], tag));
      EXPECT_EQ(trace::metrics_jsonl(solo[i], tag),
                trace::metrics_jsonl(fanned[i], tag));
    }
  }
}

/// Forcing the scalar kernels (the --no-simd path / SELCACHE_NO_SIMD lane)
/// must leave every fan-out result byte-identical to the vectorized run.
TEST(MultiReplay, ForcedScalarKernelsProduceIdenticalResults) {
  const auto& w = workloads::all_workloads()[workloads::all_workloads().size() / 2];
  const std::vector<MachineConfig> machines = axis_machines();
  const tape::Tape t = record_tape(w, base_machine(), Version::Combined);

  const std::vector<RunResult> vectored = multi_replay_tape(
      t, machines, Version::Combined, RunOptions{},
      ParallelSweepOptions{.num_threads = 4});

  memsys::kernels::force_scalar(true);
  const std::vector<RunResult> scalar = multi_replay_tape(
      t, machines, Version::Combined, RunOptions{},
      ParallelSweepOptions{.num_threads = 4});
  memsys::kernels::force_scalar(false);

  ASSERT_EQ(vectored.size(), scalar.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    SCOPED_TRACE("machine " + std::to_string(i));
    expect_results_identical(vectored[i], scalar[i]);
  }
}

/// The shared-decode axis engine is the sweep-level wrapper: rows for each
/// machine point must equal the per-point sweep_suite rows — and the
/// result-store cells it persists must carry the exact same fingerprinted
/// payloads, so a store warmed by either engine serves the other.
TEST(MultiReplay, SharedDecodeAxisMatchesPerPointSweepAndStoreCells) {
  const std::vector<MachineConfig> machines = axis_machines();

  // Per-point reference: one reuse_tape sweep_suite per machine, writing
  // into its own store directory.
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string solo_dir = (tmp / "selcache_mr_solo_store").string();
  const std::string axis_dir = (tmp / "selcache_mr_axis_store").string();
  std::filesystem::remove_all(solo_dir);
  std::filesystem::remove_all(axis_dir);

  tape::TapeCache solo_cache;
  store::ResultStore solo_store(solo_dir);
  RunOptions solo_opt;
  solo_opt.reuse_tape = true;
  solo_opt.tape_cache = &solo_cache;
  solo_opt.result_store = &solo_store;
  std::vector<std::vector<ImprovementRow>> per_point;
  for (const MachineConfig& m : machines)
    per_point.push_back(sweep_suite(m, solo_opt));

  for (const unsigned threads : {1u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::filesystem::remove_all(axis_dir);
    tape::TapeCache axis_cache;
    store::ResultStore axis_store(axis_dir);
    RunOptions axis_opt;
    axis_opt.reuse_tape = true;
    axis_opt.tape_cache = &axis_cache;
    axis_opt.result_store = &axis_store;
    const auto shared = sweep_axis_shared_decode(
        machines, axis_opt, ParallelSweepOptions{.num_threads = threads});
    ASSERT_EQ(shared.size(), machines.size());
    for (std::size_t i = 0; i < machines.size(); ++i) {
      SCOPED_TRACE("machine " + std::to_string(i));
      expect_rows_identical(per_point[i], shared[i]);
    }

    // Store equivalence: same cell keys, and for every key the shared-
    // decode engine stored a payload the per-point store reproduces.
    for (const MachineConfig& m : machines) {
      for (const auto& w : workloads::all_workloads()) {
        for (Version v : kAllVersions) {
          const std::string key = store_key(w, m, v, axis_opt);
          const auto a = axis_store.load(key);
          const auto b = solo_store.load(key);
          ASSERT_TRUE(a.has_value()) << key;
          ASSERT_TRUE(b.has_value()) << key;
          EXPECT_EQ(a->cycles, b->cycles) << key;
          EXPECT_EQ(a->instructions, b->instructions) << key;
          EXPECT_EQ(a->toggles, b->toggles) << key;
          EXPECT_EQ(a->stats.all(), b->stats.all()) << key;
        }
      }
    }
  }

  std::filesystem::remove_all(solo_dir);
  std::filesystem::remove_all(axis_dir);
}

}  // namespace
}  // namespace selcache::core
