// Unit tests for the hardware locality schemes: MAT, SLDT, bypass buffer,
// bypass scheme, victim scheme, ON/OFF controller.
#include <gtest/gtest.h>

#include "hw/bypass_scheme.h"
#include "hw/controller.h"
#include "hw/victim_scheme.h"
#include "trace/recorder.h"

namespace selcache::hw {
namespace {

using memsys::FillDecision;
using memsys::Level;

TEST(Mat, FrequencyAccumulates) {
  Mat m(MatConfig{.entries = 16, .macro_block_size = 1024, .counter_max = 255,
                  .decay_interval = 0});
  EXPECT_EQ(m.frequency(0), 0u);
  for (int i = 0; i < 5; ++i) m.touch(100 + i);  // same macro-block
  EXPECT_EQ(m.frequency(0), 5u);
  EXPECT_EQ(m.frequency(512), 5u);   // same 1 KB macro-block
  EXPECT_EQ(m.frequency(1024), 0u);  // next macro-block
}

TEST(Mat, DirectMappedReplacementResets) {
  Mat m(MatConfig{.entries = 4, .macro_block_size = 1024, .counter_max = 255,
                  .decay_interval = 0});
  m.touch(0);  // macro-block 0 -> entry 0
  m.touch(0);
  m.touch(4 * 1024);  // macro-block 4 -> entry 0 too: replaces
  EXPECT_EQ(m.replacements(), 1u);
  EXPECT_EQ(m.frequency(4 * 1024), 1u);
  EXPECT_EQ(m.frequency(0), 0u);  // history lost
}

TEST(Mat, DecayHalvesAllCounters) {
  Mat m(MatConfig{.entries = 16, .macro_block_size = 1024, .counter_max = 255,
                  .decay_interval = 8});
  for (int i = 0; i < 7; ++i) m.touch(0);
  EXPECT_EQ(m.frequency(0), 7u);
  m.touch(0);  // 8th touch triggers decay after increment
  EXPECT_EQ(m.frequency(0), 4u);
  EXPECT_EQ(m.decays(), 1u);
}

TEST(Mat, PunishDecrements) {
  Mat m(MatConfig{.entries = 16, .macro_block_size = 1024, .counter_max = 255,
                  .decay_interval = 0});
  for (int i = 0; i < 4; ++i) m.touch(0);
  m.punish(0);
  EXPECT_EQ(m.frequency(0), 3u);
  m.punish(2048);  // untracked macro-block: no effect
  EXPECT_EQ(m.frequency(2048), 0u);
}

TEST(Mat, CounterSaturates) {
  Mat m(MatConfig{.entries = 4, .macro_block_size = 64, .counter_max = 3,
                  .decay_interval = 0});
  for (int i = 0; i < 10; ++i) m.touch(0);
  EXPECT_EQ(m.frequency(0), 3u);
}

TEST(Sldt, DetectsSequentialStream) {
  Sldt s(SldtConfig{.entries = 64, .block_size = 32, .macro_block_size = 1024,
                    .counter_entries = 64, .counter_max = 15,
                    .counter_initial = 0});
  EXPECT_FALSE(s.spatial(0));
  for (Addr a = 0; a < 32 * 40; a += 32) s.note(a);
  EXPECT_TRUE(s.spatial(32 * 20));
  EXPECT_GT(s.spatial_hits(), 30u);
}

TEST(Sldt, IsolatedAccessesDecayCounter) {
  Sldt s(SldtConfig{.entries = 64, .block_size = 32, .macro_block_size = 1024,
                    .counter_entries = 4, .counter_max = 15,
                    .counter_initial = 8});
  // Far-apart touches within one macro-block counter bucket.
  for (int i = 0; i < 12; ++i) s.note(static_cast<Addr>(i) * 64 * 1024);
  EXPECT_FALSE(s.spatial(0));
}

TEST(Sldt, RetouchingSameBlockNeutral) {
  Sldt s(SldtConfig{.entries = 64, .block_size = 32, .macro_block_size = 1024,
                    .counter_entries = 4, .counter_max = 15,
                    .counter_initial = 8});
  for (int i = 0; i < 20; ++i) s.note(0);  // same block repeatedly
  EXPECT_EQ(s.spatial_hits(), 0u);
  EXPECT_EQ(s.spatial_misses(), 1u);  // only the first isolated touch
}

TEST(BypassBuffer, LruAtBlockGranularity) {
  BypassBuffer buf(2, 32);
  buf.insert(0x00, false);
  buf.insert(0x40, false);
  EXPECT_TRUE(buf.access(0x1f, false));  // same 32B block as 0x00
  buf.insert(0x80, true);                // displaces 0x40 (LRU)
  EXPECT_FALSE(buf.probe(0x40));
  EXPECT_TRUE(buf.probe(0x00));
  EXPECT_TRUE(buf.probe(0x80));
  EXPECT_EQ(buf.occupancy(), 2u);
}

TEST(BypassBuffer, DirtyDisplacementCountsWriteback) {
  BypassBuffer buf(1, 32);
  buf.insert(0x00, true);
  buf.insert(0x40, false);
  EXPECT_EQ(buf.writebacks(), 1u);
}

TEST(BypassBuffer, WriteHitMarksDirty) {
  BypassBuffer buf(2, 32);
  buf.insert(0x00, false);
  EXPECT_TRUE(buf.access(0x00, /*is_write=*/true));
  buf.insert(0x40, false);
  buf.insert(0x80, false);  // displaces 0x00, now dirty
  EXPECT_EQ(buf.writebacks(), 1u);
}

BypassSchemeConfig test_bypass_config() {
  BypassSchemeConfig cfg;
  cfg.mat.decay_interval = 0;
  cfg.mat.counter_max = 255;
  cfg.bypass_bias = 1.5;
  cfg.min_victim_freq = 4;
  return cfg;
}

TEST(BypassScheme, FillsWhenNoVictim) {
  BypassScheme s(test_bypass_config());
  s.set_active(true);
  EXPECT_EQ(s.fill_decision(Level::L1D, 0, std::nullopt), FillDecision::Fill);
}

TEST(BypassScheme, BypassesColdIncomingAgainstHotVictim) {
  BypassScheme s(test_bypass_config());
  s.set_active(true);
  const Addr hot = 0, cold = 64 * 1024;
  for (int i = 0; i < 100; ++i) s.on_access(Level::L1D, hot, false, true);
  // cold incoming (freq 0) vs hot victim (freq 100): bypass.
  EXPECT_EQ(s.fill_decision(Level::L1D, cold, hot), FillDecision::Bypass);
  EXPECT_EQ(s.bypasses(), 1u);
  // hot incoming vs cold victim: fill.
  EXPECT_EQ(s.fill_decision(Level::L1D, hot, cold), FillDecision::Fill);
}

TEST(BypassScheme, NeedsMarginAndFloor) {
  BypassScheme s(test_bypass_config());
  s.set_active(true);
  const Addr a = 0, b = 64 * 1024;
  for (int i = 0; i < 3; ++i) s.on_access(Level::L1D, a, false, true);
  // victim freq 3 < floor 4: no bypass even though incoming is colder.
  EXPECT_EQ(s.fill_decision(Level::L1D, b, a), FillDecision::Fill);
  // victim 13 vs incoming 10: above the floor but below the 1.5x margin.
  for (int i = 0; i < 10; ++i) s.on_access(Level::L1D, a, false, true);
  for (int i = 0; i < 10; ++i) s.on_access(Level::L1D, b, false, true);
  EXPECT_EQ(s.fill_decision(Level::L1D, b, a), FillDecision::Fill);
}

TEST(BypassScheme, BypassedDataServedFromBuffer) {
  BypassScheme s(test_bypass_config());
  s.set_active(true);
  EXPECT_EQ(s.service_miss(Level::L1D, 0x123, false), std::nullopt);
  s.on_bypassed(Level::L1D, 0x123, false);
  auto aux = s.service_miss(Level::L1D, 0x123, false);
  ASSERT_TRUE(aux.has_value());
  EXPECT_FALSE(aux->promote);  // bypassed data never enters the main cache
}

TEST(BypassScheme, L2AlwaysFills) {
  BypassScheme s(test_bypass_config());
  s.set_active(true);
  EXPECT_EQ(s.fill_decision(Level::L2, 0, Addr{128}), FillDecision::Fill);
  EXPECT_EQ(s.service_miss(Level::L2, 0, false), std::nullopt);
}

TEST(BypassScheme, FetchWidthFollowsSldt) {
  BypassScheme s(test_bypass_config());
  s.set_active(true);
  // Build up a sequential stream so the SLDT flags spatial locality.
  for (Addr a = 0; a < 32 * 64; a += 32) s.on_access(Level::L1D, a, false, true);
  EXPECT_EQ(s.fetch_width(Level::L1D, 32 * 32), 2u);
  EXPECT_EQ(s.fetch_width(Level::L2, 32 * 32), 1u);
}

TEST(VictimScheme, CapturesEvictionsAndSwapsBack) {
  VictimScheme s(VictimSchemeConfig{.l1_entries = 4, .l2_entries = 4,
                                    .l1_block_size = 32, .l2_block_size = 128,
                                    .swap_latency = 1});
  s.set_active(true);
  EXPECT_EQ(s.service_miss(Level::L1D, 0x100, false), std::nullopt);
  s.on_eviction(Level::L1D, 0x100, /*dirty=*/true);
  auto aux = s.service_miss(Level::L1D, 0x100, false);
  ASSERT_TRUE(aux.has_value());
  EXPECT_TRUE(aux->promote);
  EXPECT_TRUE(aux->dirty);
  EXPECT_EQ(aux->extra_latency, 1u);
  // Extraction removed it: a second probe misses.
  EXPECT_EQ(s.service_miss(Level::L1D, 0x100, false), std::nullopt);
}

TEST(VictimScheme, LevelsAreSeparate) {
  VictimSchemeConfig cfg;
  VictimScheme s(cfg);
  s.set_active(true);
  s.on_eviction(Level::L1D, 0x1000, false);
  EXPECT_EQ(s.service_miss(Level::L2, 0x1000, false), std::nullopt);
  EXPECT_TRUE(s.service_miss(Level::L1D, 0x1000, false).has_value());
}

TEST(VictimScheme, NeverBypasses) {
  VictimScheme s(VictimSchemeConfig{});
  s.set_active(true);
  EXPECT_EQ(s.fill_decision(Level::L1D, 0, Addr{64}), FillDecision::Fill);
  EXPECT_EQ(s.fetch_width(Level::L1D, 0), 1u);
}

TEST(Controller, TogglesAndCounts) {
  VictimScheme s(VictimSchemeConfig{});
  Controller c(&s);
  EXPECT_FALSE(c.active());
  c.toggle(true);
  EXPECT_TRUE(c.active());
  c.toggle(true);  // redundant: executed but not effective
  c.toggle(false);
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.toggles_executed(), 3u);
  EXPECT_EQ(c.effective_toggles(), 2u);
}

TEST(Controller, NullSchemeIsSafe) {
  Controller c(nullptr);
  c.toggle(true);
  c.force(true);
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.toggles_executed(), 1u);
}

TEST(Controller, ForceOverridesState) {
  BypassScheme s(test_bypass_config());
  Controller c(&s);
  c.force(true);
  EXPECT_TRUE(c.active());
  EXPECT_EQ(c.toggles_executed(), 0u);  // force is not an instruction
}

TEST(Mat, CountsTouchesEvenWithDecayDisabled) {
  // The energy model charges per table update, so touches must be counted
  // even when decay_interval = 0 skips the decay bookkeeping entirely.
  Mat m(MatConfig{.entries = 16, .macro_block_size = 1024, .counter_max = 255,
                  .decay_interval = 0});
  for (int i = 0; i < 10; ++i) m.touch(i * 64);
  EXPECT_EQ(m.touches(), 10u);
  StatSet s;
  m.export_stats(s);
  EXPECT_EQ(s.get("mat.touches"), 10u);
  EXPECT_EQ(s.get("mat.decays"), 0u);
}

TEST(Mat, EpochSnapshotsAccumulateDeltasNotTotals) {
  // The epoch recorder snapshots cumulative export_stats repeatedly; the
  // aggregate must equal the latest cumulative value, not the sum of every
  // snapshot (which plain merge() would produce).
  Mat m(MatConfig{.entries = 16, .macro_block_size = 1024, .counter_max = 255,
                  .decay_interval = 4});
  StatSet agg, wrong;

  for (int i = 0; i < 8; ++i) m.touch(0);  // epoch 1: 2 decays
  StatSet cum1;
  m.export_stats(cum1);
  agg.merge_snapshot(cum1, "");
  wrong.merge(cum1, "");
  EXPECT_EQ(agg.get("mat.decays"), 2u);

  for (int i = 0; i < 4; ++i) m.touch(0);  // epoch 2: 1 more decay
  StatSet cum2;
  m.export_stats(cum2);
  EXPECT_EQ(cum2.delta_from(cum1).get("mat.decays"), 1u);
  EXPECT_EQ(cum2.delta_from(cum1).get("mat.touches"), 4u);
  agg.merge_snapshot(cum2, "");
  wrong.merge(cum2, "");

  EXPECT_EQ(agg.get("mat.decays"), m.decays());
  EXPECT_EQ(agg.get("mat.touches"), m.touches());
  EXPECT_EQ(wrong.get("mat.decays"), 5u);  // the double-count this replaces
}

TEST(Mat, DecayEmitsTraceEvent) {
  trace::Recording out;
  trace::MemorySink sink(out);
  trace::Recorder rec(sink, 1000);
  Mat m(MatConfig{.entries = 16, .macro_block_size = 1024, .counter_max = 255,
                  .decay_interval = 4});
  m.set_trace(&rec);
  for (int i = 0; i < 8; ++i) m.touch(0);
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].kind, trace::EventKind::MatDecay);
  EXPECT_EQ(out.events[1].kind, trace::EventKind::MatDecay);
}

TEST(Controller, EmitsToggleEventsWithRegionProvenance) {
  trace::Recording out;
  trace::MemorySink sink(out);
  trace::Recorder rec(sink, 1000);
  VictimScheme s(VictimSchemeConfig{});
  Controller c(&s);
  c.set_trace(&rec);
  c.force(true);      // synthetic event so the timeline knows initial state
  c.toggle(false, 7);  // instruction toggle carries its source region
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].kind, trace::EventKind::Toggle);
  EXPECT_TRUE(out.events[0].on);
  EXPECT_EQ(out.events[0].region, -1);  // force has no region provenance
  EXPECT_EQ(out.events[1].kind, trace::EventKind::Toggle);
  EXPECT_FALSE(out.events[1].on);
  EXPECT_EQ(out.events[1].region, 7);
}

TEST(BypassScheme, BypassEmitsTraceEventWithAddress) {
  trace::Recording out;
  trace::MemorySink sink(out);
  trace::Recorder rec(sink, 1000);
  BypassScheme s(test_bypass_config());
  s.set_trace(&rec);
  s.set_active(true);
  const Addr hot = 0, cold = 64 * 1024;
  for (int i = 0; i < 100; ++i) s.on_access(Level::L1D, hot, false, true);
  EXPECT_EQ(s.fill_decision(Level::L1D, cold, hot), FillDecision::Bypass);
  ASSERT_FALSE(out.events.empty());
  const trace::Event& e = out.events.back();
  EXPECT_EQ(e.kind, trace::EventKind::BypassDecision);
  EXPECT_EQ(e.addr, cold);
  EXPECT_EQ(e.level, 0u);  // L1D
}

TEST(VictimScheme, PromotionEmitsTraceEvent) {
  trace::Recording out;
  trace::MemorySink sink(out);
  trace::Recorder rec(sink, 1000);
  VictimScheme s(VictimSchemeConfig{});
  s.set_trace(&rec);
  s.set_active(true);
  s.on_eviction(Level::L1D, 0x400, false);
  auto aux = s.service_miss(Level::L1D, 0x400, false);
  ASSERT_TRUE(aux.has_value());
  EXPECT_TRUE(aux->promote);
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].kind, trace::EventKind::VictimPromotion);
  EXPECT_EQ(out.events[0].addr, 0x400u);
}

}  // namespace
}  // namespace selcache::hw
