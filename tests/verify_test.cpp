// Positive verification suite: the full workload matrix must come out of
// the optimizer clean, and the diagnostics plumbing must behave.
#include <gtest/gtest.h>

#include "core/versions.h"
#include "verify/verifier.h"
#include "workloads/registry.h"

namespace selcache {
namespace {

using verify::Report;
using verify::Severity;

TEST(Diagnostics, CountsAndRendering) {
  Report r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.str(), "no diagnostics\n");

  r.set_pass("structural");
  r.add(Severity::Error, "SV-SUB-RANK", "loop i/stmt", "rank mismatch");
  r.add(Severity::Warning, "SV-LOOP-EMPTY", "loop j", "empty body");
  EXPECT_EQ(r.errors(), 1u);
  EXPECT_EQ(r.warnings(), 1u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics()[0].pass, "structural");

  const std::string text = r.str();
  EXPECT_NE(text.find("SV-SUB-RANK"), std::string::npos);
  EXPECT_NE(text.find("rank mismatch"), std::string::npos);
}

TEST(Diagnostics, CsvEscapesSeparators) {
  Report r;
  r.add(Severity::Error, "X-RULE", "loc", "message, with \"quotes\"");
  const std::string csv = r.csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "severity,rule,pass,location,message");
  EXPECT_NE(csv.find("\"message, with \"\"quotes\"\"\""), std::string::npos);
}

TEST(Verifier, CleanBaseProgramsHaveNoDiagnostics) {
  for (const auto& w : workloads::all_workloads()) {
    Report report;
    verify::verify_program(w.build(), nullptr, report);
    EXPECT_TRUE(report.empty()) << w.name << " (base)\n" << report.str();
  }
}

/// The acceptance matrix: all 13 workloads x 5 versions through the
/// pipeline with after-each-stage verification plus final structural,
/// marker, and transformation-legality certification — zero diagnostics.
TEST(Verifier, AllWorkloadsAllVersionsVerifyClean) {
  for (const auto& w : workloads::all_workloads()) {
    for (core::Version v : core::kAllVersions) {
      transform::TransformLog log;
      Report report;
      transform::OptimizeOptions opt;
      verify::enable_pipeline_verification(opt, log, report);
      const ir::Program product = core::prepare_program(w.build(), v, opt);
      verify::verify_program(product, &log, report);
      EXPECT_TRUE(report.empty())
          << w.name << " / " << to_string(v) << "\n"
          << report.str();
    }
  }
}

/// The optimizer records its transforms when asked: across the suite at
/// least one of each loop-transform kind must appear, and each record must
/// carry a pre-image.
TEST(Verifier, TransformLogIsPopulatedAcrossSuite) {
  std::size_t interchanges = 0, tilings = 0, unrolls = 0, fusions = 0;
  for (const auto& w : workloads::all_workloads()) {
    transform::TransformLog log;
    transform::OptimizeOptions opt;
    opt.log = &log;
    ir::Program p = w.build();
    transform::optimize_program(p, opt);
    for (const auto& rec : log.records) {
      ASSERT_NE(rec.pre_image, nullptr);
      switch (rec.kind) {
        case transform::TransformKind::Interchange: ++interchanges; break;
        case transform::TransformKind::Tiling: ++tilings; break;
        case transform::TransformKind::UnrollJam: ++unrolls; break;
        case transform::TransformKind::Fusion: ++fusions; break;
      }
    }
  }
  EXPECT_GT(interchanges, 0u);
  EXPECT_GT(tilings, 0u);
  EXPECT_GT(unrolls, 0u);
}

/// The recorded counts must agree with the pipeline's own report.
TEST(Verifier, TransformLogMatchesOptimizeReport) {
  for (const auto& w : workloads::all_workloads()) {
    transform::TransformLog log;
    transform::OptimizeOptions opt;
    opt.log = &log;
    ir::Program p = w.build();
    const auto report = transform::optimize_program(p, opt);
    std::size_t interchanges = 0, tilings = 0, unrolls = 0, fusions = 0;
    for (const auto& rec : log.records) {
      switch (rec.kind) {
        case transform::TransformKind::Interchange: ++interchanges; break;
        case transform::TransformKind::Tiling: ++tilings; break;
        case transform::TransformKind::UnrollJam: ++unrolls; break;
        case transform::TransformKind::Fusion: ++fusions; break;
      }
    }
    EXPECT_EQ(interchanges, report.interchanged) << w.name;
    EXPECT_EQ(tilings, report.tiled) << w.name;
    EXPECT_EQ(unrolls, report.unrolled) << w.name;
    EXPECT_EQ(fusions, report.fused) << w.name;
  }
}

}  // namespace
}  // namespace selcache
