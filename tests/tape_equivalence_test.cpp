// The trace-tape contract: replaying a recorded tape is bit-identical to
// interpreting the IR — same cycles, same merged stat counters, same phase
// traces — for every (workload, version) cell and for ANY machine point,
// including machines other than the one the tape was recorded on. Fault-
// armed runs must bypass the tape path entirely and match the plain faulted
// run, and the reuse_tape sweep stays deterministic at every thread count.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "tape/cache.h"

namespace selcache::core {
namespace {

void expect_rows_identical(const std::vector<ImprovementRow>& a,
                           const std::vector<ImprovementRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].benchmark);
    EXPECT_EQ(a[i].benchmark, b[i].benchmark);
    EXPECT_EQ(a[i].category, b[i].category);
    EXPECT_EQ(a[i].base_cycles, b[i].base_cycles);
    ASSERT_EQ(a[i].pct.size(), b[i].pct.size());
    for (const auto& [v, pct] : a[i].pct) {
      ASSERT_TRUE(b[i].pct.count(v)) << to_string(v);
      EXPECT_EQ(pct, b[i].pct.at(v)) << to_string(v);
    }
    EXPECT_EQ(a[i].accesses, b[i].accesses);
    // Bit-identical includes every merged simulator counter.
    EXPECT_EQ(a[i].stats.all(), b[i].stats.all());
  }
}

void expect_results_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l1_miss_rate, b.l1_miss_rate);
  EXPECT_EQ(a.l2_miss_rate, b.l2_miss_rate);
  EXPECT_EQ(a.conflict_share, b.conflict_share);
  EXPECT_EQ(a.toggles, b.toggles);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.degradations, b.degradations);
  EXPECT_EQ(a.stats.all(), b.stats.all());
}

/// The headline criterion: across the full 13x5 matrix, the recording pass
/// and the replaying pass of a reuse_tape sweep are both bit-identical to
/// the plain interpreted sweep.
TEST(TapeEquivalence, FullMatrixRecordAndReplayMatchInterpret) {
  const MachineConfig m = base_machine();
  RunOptions plain;
  const auto interpreted = sweep_suite(m, plain);

  tape::TapeCache cache;
  RunOptions taped = plain;
  taped.reuse_tape = true;
  taped.tape_cache = &cache;

  // First pass: every cell records (cache is empty). Results come from the
  // instrumented interpretation, so they must match exactly.
  const auto recorded = sweep_suite(m, taped);
  expect_rows_identical(interpreted, recorded);
  EXPECT_EQ(cache.size(), interpreted.size() * kAllVersions.size());

  // Second pass: every cell replays from the cache. Same machine, and the
  // replay must reproduce the interpreted run bit for bit.
  const auto replayed = sweep_suite(m, taped);
  expect_rows_identical(interpreted, replayed);
  EXPECT_EQ(cache.size(), interpreted.size() * kAllVersions.size())
      << "replay pass must not record new tapes";
}

/// Machine invariance — the property record-once/replay-many rests on: a
/// tape recorded on the BASE machine replays bit-identically on machines
/// with different memory latency, cache sizes, associativity, and I-cache
/// block-expansion behavior.
TEST(TapeEquivalence, TapeRecordedOnBaseReplaysOnEveryOtherMachine) {
  tape::TapeCache cache;
  RunOptions taped;
  taped.reuse_tape = true;
  taped.tape_cache = &cache;

  const auto& workloads = workloads::all_workloads();
  // Three workloads spanning the pointer/index/array categories keep this
  // cross-machine pass affordable; the full matrix is covered on the base
  // machine above.
  const workloads::WorkloadInfo* picks[] = {&workloads.front(),
                                            &workloads[workloads.size() / 2],
                                            &workloads.back()};

  // Populate the cache by recording every picked cell on the base machine.
  for (const auto* w : picks)
    for (Version v : kAllVersions) (void)run_version(*w, base_machine(), v, taped);

  const MachineConfig machines[] = {higher_mem_latency(), larger_l2(),
                                    larger_l1(), higher_l2_assoc(),
                                    higher_l1_assoc()};
  for (const auto& m : machines) {
    for (const auto* w : picks) {
      SCOPED_TRACE(w->name);
      for (Version v : kAllVersions) {
        SCOPED_TRACE(to_string(v));
        const RunResult interp = run_version(*w, m, v, RunOptions{});
        const RunResult replay = run_version(*w, m, v, taped);
        expect_results_identical(interp, replay);
      }
    }
  }
  EXPECT_EQ(cache.size(), std::size(picks) * kAllVersions.size())
      << "cross-machine replays must reuse the base-machine tapes";
}

/// The bit-identical contract extends to the phase-trace layer: a traced
/// replay produces the same epochs and events as a traced interpretation.
TEST(TapeEquivalence, TracedReplayRecordsIdenticalPhases) {
  const MachineConfig m = base_machine();
  const auto& w = workloads::all_workloads().front();
  RunOptions opt;
  opt.trace_epoch = 2000;  // small epochs so several snapshots land

  trace::Recording interp;
  (void)run_version(w, m, Version::Selective, opt, &interp);
  ASSERT_FALSE(interp.epochs.empty());

  tape::TapeCache cache;
  RunOptions taped = opt;
  taped.reuse_tape = true;
  taped.tape_cache = &cache;

  trace::Recording from_record;
  const RunResult r1 =
      run_version(w, m, Version::Selective, taped, &from_record);
  trace::Recording from_replay;
  const RunResult r2 =
      run_version(w, m, Version::Selective, taped, &from_replay);
  (void)r1;
  (void)r2;
  EXPECT_EQ(interp, from_record);
  EXPECT_EQ(interp, from_replay);
}

/// Fault-armed runs never touch the tape machinery: they fall back to plain
/// interpretation (bit-identical to a run without reuse_tape) and leave the
/// cache untouched, so a perturbed stream can never be recorded or replayed.
TEST(TapeEquivalence, FaultArmedRunsFallBackToInterpretation) {
  const MachineConfig m = base_machine();
  const auto& w = workloads::all_workloads().front();

  RunOptions faulted;
  faulted.fault.kind = fault::FaultKind::ToggleDrop;
  faulted.fault.rate = 0.5;
  faulted.fault.seed = 99;
  const RunResult plain = run_version(w, m, Version::Selective, faulted);

  tape::TapeCache cache;
  RunOptions taped = faulted;
  taped.reuse_tape = true;
  taped.tape_cache = &cache;
  const RunResult fallback = run_version(w, m, Version::Selective, taped);
  expect_results_identical(plain, fallback);
  EXPECT_EQ(cache.size(), 0u) << "fault-armed runs must not record tapes";

  // Same rule for an armed watchdog.
  RunOptions watched;
  watched.watchdog_accesses = 1'000'000'000;  // never fires, but armed
  watched.reuse_tape = true;
  watched.tape_cache = &cache;
  (void)run_version(w, m, Version::Base, watched);
  EXPECT_EQ(cache.size(), 0u);

  // record_tape itself refuses a fault campaign outright.
  EXPECT_THROW((void)record_tape(w, m, Version::Selective, faulted),
               std::logic_error);
}

/// The determinism contract holds through the tape path: a parallel
/// reuse_tape sweep (workers racing on the once-per-key claims) is
/// bit-identical to the serial reuse_tape sweep and to plain interpretation.
TEST(TapeEquivalence, ParallelReuseTapeSweepIsBitIdentical) {
  const MachineConfig m = base_machine();
  const auto interpreted = sweep_suite(m, RunOptions{});

  tape::TapeCache cache;
  RunOptions taped;
  taped.reuse_tape = true;
  taped.tape_cache = &cache;
  const auto parallel_recorded =
      sweep_suite(m, taped, ParallelSweepOptions{.num_threads = 4});
  expect_rows_identical(interpreted, parallel_recorded);

  const auto parallel_replayed =
      sweep_suite(m, taped, ParallelSweepOptions{.num_threads = 4});
  expect_rows_identical(interpreted, parallel_replayed);
}

/// tape_key separates streams that differ in anything the recording depends
/// on (seed, optimization settings) and ignores what it does not (machine
/// is absent by design; the scheme only affects the hierarchy's response).
TEST(TapeEquivalence, TapeKeyTracksStreamInputsOnly) {
  const auto& w = workloads::all_workloads().front();
  const RunOptions base_opt;

  RunOptions other_seed = base_opt;
  other_seed.data_seed ^= 1;
  RunOptions other_tile = base_opt;
  other_tile.optimize.tiling.tile += 1;
  RunOptions other_scheme = base_opt;
  other_scheme.scheme = hw::SchemeKind::Victim;

  const std::string k = tape_key(w, Version::Selective, base_opt);
  EXPECT_NE(k, tape_key(w, Version::Base, base_opt));
  EXPECT_NE(k, tape_key(w, Version::Selective, other_seed));
  EXPECT_NE(k, tape_key(w, Version::Selective, other_tile));
  EXPECT_EQ(k, tape_key(w, Version::Selective, other_scheme))
      << "machine/scheme must not fragment the tape cache";
}

/// record_tape's stats line up with the simulated hierarchy: every recorded
/// load/store is one L1D demand access on a Base run (no scheme routing).
TEST(TapeEquivalence, RecordedTapeStatsMatchTheSimulation) {
  const MachineConfig m = base_machine();
  const auto& w = workloads::all_workloads().front();
  RunResult r;
  const tape::Tape t = record_tape(w, m, Version::Base, RunOptions{}, &r);
  EXPECT_GT(t.stats.data_accesses(), 0u);
  EXPECT_EQ(t.stats.data_accesses(),
            r.stats.get("l1d.hits") + r.stats.get("l1d.misses"));
  EXPECT_GT(t.stats.ifetch_batches, 0u);
  EXPECT_GT(t.stats.branches, 0u);
  EXPECT_LT(t.bytes_per_access(), 8.0) << "density regression";

  // And replaying that exact tape object reproduces the recording run.
  const RunResult replay = replay_tape(t, m, Version::Base);
  expect_results_identical(r, replay);
}

}  // namespace
}  // namespace selcache::core
