// Tape format unit tests: varint/zigzag primitives, encode/decode
// round-trips (directed and randomized), file save/load validation, and the
// TapeCache once-per-key population contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "tape/cache.h"
#include "tape/tape.h"

namespace selcache::tape {
namespace {

// --- primitives -----------------------------------------------------------

TEST(Varint, RoundTripsEdgeValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 0x7F,
                                 0x80,
                                 0x3FFF,
                                 0x4000,
                                 1ULL << 32,
                                 (1ULL << 63) - 1,
                                 ~0ULL};
  for (std::uint64_t v : cases) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    const std::uint8_t* p = buf.data();
    EXPECT_EQ(get_varint(&p, p + buf.size()), v);
    EXPECT_EQ(p, buf.data() + buf.size()) << "decoder must consume exactly";
  }
}

TEST(Varint, RejectsTruncation) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1ULL << 40);
  buf.pop_back();  // drop the terminating byte
  const std::uint8_t* p = buf.data();
  EXPECT_THROW(get_varint(&p, buf.data() + buf.size()), std::logic_error);
}

TEST(Varint, RejectsOverlongEncoding) {
  // 11 continuation bytes exceed the 64-bit shift budget.
  std::vector<std::uint8_t> buf(11, 0x80);
  buf.push_back(0x00);
  const std::uint8_t* p = buf.data();
  EXPECT_THROW(get_varint(&p, buf.data() + buf.size()), std::logic_error);
}

TEST(Varint, TenByteMaxEncodingRoundTrips) {
  // UINT64_MAX legitimately needs ten bytes: nine full continuation bytes
  // plus a final 0x01 carrying only bit 63.
  std::vector<std::uint8_t> buf;
  put_varint(buf, ~0ULL);
  ASSERT_EQ(buf.size(), 10u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(buf[i], 0xFF);
  EXPECT_EQ(buf[9], 0x01);
  const std::uint8_t* p = buf.data();
  EXPECT_EQ(get_varint(&p, p + buf.size()), ~0ULL);
}

TEST(Varint, RejectsTenthBytePayloadBeyondBit63) {
  // A 10th byte may only contribute bit 63. 0x7F there would silently
  // shift 6 of its 7 payload bits past the top of the value — that is
  // corruption masquerading as a tiny number, and must throw instead.
  std::vector<std::uint8_t> buf(9, 0x80);
  buf.push_back(0x7F);
  const std::uint8_t* p = buf.data();
  EXPECT_THROW(get_varint(&p, buf.data() + buf.size()), std::logic_error);
  // 0x02 (bit 64) is equally out of range; 0x01 (bit 63) is the only
  // acceptable payload.
  buf[9] = 0x02;
  p = buf.data();
  EXPECT_THROW(get_varint(&p, buf.data() + buf.size()), std::logic_error);
  buf[9] = 0x01;
  p = buf.data();
  EXPECT_EQ(get_varint(&p, buf.data() + buf.size()), 1ULL << 63);
}

TEST(Varint, RejectsTruncationAtEveryPrefixOfMaxEncoding) {
  // Every strict prefix of the maximal encoding must fail as structured
  // corruption (logic_error), never decode to a wrong value.
  std::vector<std::uint8_t> buf;
  put_varint(buf, ~0ULL);
  for (std::size_t keep = 0; keep < buf.size(); ++keep) {
    const std::uint8_t* p = buf.data();
    EXPECT_THROW(get_varint(&p, buf.data() + keep), std::logic_error)
        << "prefix of " << keep << " bytes decoded";
  }
}

TEST(Zigzag, MaximalDeltasRoundTripThroughVarint) {
  // Address deltas of both extreme signs exercise the full varint width:
  // INT64_MIN zigzags to UINT64_MAX (the ten-byte encoding above).
  for (std::int64_t v : {INT64_MIN, INT64_MAX, INT64_MIN + 1}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, zigzag(v));
    const std::uint8_t* p = buf.data();
    EXPECT_EQ(unzigzag(get_varint(&p, p + buf.size())), v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(Zigzag, RoundTripsSignedRange) {
  const std::int64_t cases[] = {0,  1,  -1, 63, -64, 1'000'000, -1'000'000,
                                INT64_MAX, INT64_MIN};
  for (std::int64_t v : cases) EXPECT_EQ(unzigzag(zigzag(v)), v);
  // Small magnitudes must encode small (that is the density argument).
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

// --- encode/decode round-trip --------------------------------------------

/// Reference event list a tape should reproduce, and the Sink that
/// re-collects it from replay_into.
struct Event {
  int kind;  // 0 load, 1 store, 2 ifetch, 3 branch, 4 compute, 5 toggle
  std::uint64_t a = 0;  // address / count / region
  std::uint64_t b = 0;  // ifetch n_instr
  bool flag = false;    // dependent / taken / on

  bool operator==(const Event&) const = default;
};

struct Collector {
  std::vector<Event> events;
  void load(Addr a, bool dep) { events.push_back({0, a, 0, dep}); }
  void store(Addr a) { events.push_back({1, a, 0, false}); }
  void touch_code(Addr pc, std::uint32_t n) { events.push_back({2, pc, n}); }
  void branch(Addr pc, bool taken) { events.push_back({3, pc, 0, taken}); }
  void compute(std::uint64_t n) { events.push_back({4, n}); }
  void toggle(bool on, std::int32_t region) {
    events.push_back(
        {5, static_cast<std::uint64_t>(static_cast<std::int64_t>(region)), 0,
         on});
  }
};

TEST(TapeRoundTrip, DirectedStreamIncludingNibbleEscapes) {
  TapeBuilder b;
  std::vector<Event> ref;
  auto load = [&](Addr a, bool dep) {
    b.load(a, dep);
    ref.push_back({0, a, 0, dep});
  };
  auto store = [&](Addr a) {
    b.store(a);
    ref.push_back({1, a, 0, false});
  };
  auto ifetch = [&](Addr pc, std::uint32_t n) {
    b.ifetch(pc, n);
    ref.push_back({2, pc, n});
  };
  auto branch = [&](Addr pc, bool taken) {
    b.branch(pc, taken);
    ref.push_back({3, pc, 0, taken});
  };
  auto compute = [&](std::uint64_t n) {
    b.compute(n);
    ref.push_back({4, n});
  };
  auto toggle = [&](bool on, std::int32_t region) {
    b.toggle(on, region);
    ref.push_back(
        {5, static_cast<std::uint64_t>(static_cast<std::int64_t>(region)), 0,
         on});
  };

  ifetch(0x400000, 3);         // first code address: large delta from 0
  load(0x10000, false);        // first data address
  load(0x10008, true);         // +8 dependent
  store(0x10008);              // zero delta
  load(0x0, false);            // negative delta
  branch(0x400010, true);
  branch(0x400010, false);     // not-taken flag
  compute(0);                  // nibble floor
  compute(14);                 // largest inline nibble
  compute(15);                 // first escaped value
  compute(1'000'000);          // large escape
  ifetch(0x400020, 14);        // inline count
  ifetch(0x400040, 200);       // escaped count
  toggle(true, -1);            // unattributed region encodes as nibble 0
  toggle(false, 13);           // largest inline region (13+1 = 14)
  toggle(true, 14);            // first escaped region (14+1 = 15)
  toggle(true, 1000);          // large escaped region

  const Tape t = b.take();
  EXPECT_EQ(t.stats.loads, 3u);
  EXPECT_EQ(t.stats.stores, 1u);
  EXPECT_EQ(t.stats.ifetch_batches, 3u);
  EXPECT_EQ(t.stats.branches, 2u);
  EXPECT_EQ(t.stats.computes, 4u);
  EXPECT_EQ(t.stats.toggles, 4u);

  Collector c;
  replay_into(t, c);
  EXPECT_EQ(c.events, ref);
}

TEST(TapeRoundTrip, RandomizedStreamsAreLossless) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    TapeBuilder b;
    std::vector<Event> ref;
    Addr data = rng() % (1ULL << 40);
    Addr code = 0x400000;
    const int n = 1 + static_cast<int>(rng() % 2000);
    for (int i = 0; i < n; ++i) {
      switch (rng() % 6) {
        case 0: {
          data += static_cast<Addr>(static_cast<std::int64_t>(rng() % 4096) -
                                    2048);
          const bool dep = rng() % 4 == 0;
          b.load(data, dep);
          ref.push_back({0, data, 0, dep});
          break;
        }
        case 1: {
          data += rng() % 64;
          b.store(data);
          ref.push_back({1, data, 0, false});
          break;
        }
        case 2: {
          code += rng() % 256;
          const auto cnt = static_cast<std::uint32_t>(rng() % 40);
          b.ifetch(code, cnt);
          ref.push_back({2, code, cnt});
          break;
        }
        case 3: {
          const bool taken = rng() % 2 == 0;
          b.branch(code, taken);
          ref.push_back({3, code, 0, taken});
          break;
        }
        case 4: {
          const std::uint64_t cnt = rng() % 100;
          b.compute(cnt);
          ref.push_back({4, cnt});
          break;
        }
        default: {
          const auto region = static_cast<std::int32_t>(rng() % 32) - 1;
          const bool on = rng() % 2 == 0;
          b.toggle(on, region);
          ref.push_back({5,
                         static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(region)),
                         0, on});
          break;
        }
      }
    }
    const Tape t = b.take();
    EXPECT_EQ(t.stats.ops(), ref.size());
    Collector c;
    replay_into(t, c);
    ASSERT_EQ(c.events, ref) << "trial " << trial;
  }
}

TEST(TapeRoundTrip, DensityStaysUnderFourBytesPerAccess) {
  // A stride-1 access stream — the common case — must encode near the
  // 2-byte floor (1 opcode byte + 1 delta byte), far below the 16-byte
  // flat-trace event.
  TapeBuilder b;
  for (Addr a = 0x1000; a < 0x1000 + 8 * 4096; a += 8) b.load(a, false);
  const Tape t = b.take();
  EXPECT_EQ(t.stats.data_accesses(), 4096u);
  EXPECT_LT(t.bytes_per_access(), 4.0);
  EXPECT_GE(t.bytes_per_access(), 2.0);
}

TEST(TapeRoundTrip, RejectsCorruptOpcodeAndVersion) {
  TapeBuilder b;
  b.compute(1);
  Tape t = b.take();

  Tape bad_version = t;
  bad_version.version = kTapeVersion + 1;
  Collector c;
  EXPECT_THROW(replay_into(bad_version, c), std::logic_error);

  Tape bad_opcode = t;
  bad_opcode.bytes[0] = 0x07;  // Op value 7 is unassigned
  EXPECT_THROW(replay_into(bad_opcode, c), std::logic_error);

  Tape bad_loop = t;
  bad_loop.bytes[0] = 0x06;  // Op::Loop with a zero-slot body is malformed
  EXPECT_THROW(replay_into(bad_loop, c), std::logic_error);

  Tape truncated = t;
  truncated.bytes = {0x00};  // Load opcode with no delta varint
  EXPECT_THROW(replay_into(truncated, c), std::logic_error);
}

// --- file round-trip ------------------------------------------------------

class TapeFileTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "selcache_tape_test.tape")
                          .string();
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".tmp", ec);
  }
};

TEST_F(TapeFileTest, SaveLoadRoundTrip) {
  TapeBuilder b;
  b.ifetch(0x400000, 5);
  for (Addr a = 0; a < 1000; ++a) b.load(0x2000 + a * 16, a % 3 == 0);
  b.store(0x2000);
  b.toggle(true, 2);
  b.compute(42);
  b.branch(0x400100, true);
  const Tape t = b.take();

  ASSERT_TRUE(save_tape(t, path_));
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"))
      << "writer must clean up its temp sibling";
  const Tape loaded = load_tape(path_);
  EXPECT_EQ(loaded, t);
}

TEST_F(TapeFileTest, RejectsBadMagicTruncationAndStatMismatch) {
  TapeBuilder b;
  for (int i = 0; i < 100; ++i) b.load(0x1000 + i * 8, false);
  const Tape t = b.take();
  ASSERT_TRUE(save_tape(t, path_));

  // Missing file.
  EXPECT_THROW(load_tape(path_ + ".missing"), std::logic_error);

  auto rewrite = [&](auto mutate) {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<std::uint8_t> raw(std::filesystem::file_size(path_));
    ASSERT_EQ(std::fread(raw.data(), 1, raw.size(), f), raw.size());
    std::fclose(f);
    mutate(raw);
    f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(raw.data(), 1, raw.size(), f), raw.size());
    std::fclose(f);
  };

  rewrite([](std::vector<std::uint8_t>& raw) { raw[0] ^= 0xFF; });
  EXPECT_THROW(load_tape(path_), std::logic_error);
  rewrite([](std::vector<std::uint8_t>& raw) { raw[0] ^= 0xFF; });  // restore

  // Truncate the payload: header byte count no longer matches.
  rewrite([](std::vector<std::uint8_t>& raw) { raw.resize(raw.size() - 5); });
  EXPECT_THROW(load_tape(path_), std::logic_error);

  ASSERT_TRUE(save_tape(t, path_));
  // Corrupt the first payload byte (offset 72 = 8 magic + 64 header) into an
  // unassigned opcode: the load-time decode sweep must reject the stream.
  rewrite([](std::vector<std::uint8_t>& raw) { raw[72] = 0x07; });
  EXPECT_THROW(load_tape(path_), std::logic_error);

  // A header that claims a body far larger than the file must be rejected
  // BEFORE the body buffer is sized from it (a lying n_bytes used to drive
  // a multi-gigabyte resize). n_bytes lives at offset 64 (8 magic + 56).
  ASSERT_TRUE(save_tape(t, path_));
  rewrite([](std::vector<std::uint8_t>& raw) {
    raw[64] = 0xFF;
    raw[65] = 0xFF;
    raw[66] = 0xFF;
    raw[67] = 0xFF;  // n_bytes low word -> ~4 GB
  });
  EXPECT_THROW(load_tape(path_), std::logic_error);

  // Truncated tail: every strict prefix of a valid file is structured
  // corruption (logic_error), never a short-but-successful load.
  ASSERT_TRUE(save_tape(t, path_));
  std::vector<std::uint8_t> whole(std::filesystem::file_size(path_));
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fread(whole.data(), 1, whole.size(), f), whole.size());
    std::fclose(f);
  }
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                           std::size_t{40}, std::size_t{71},
                           whole.size() - 1}) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(whole.data(), 1, keep, f), keep);
    std::fclose(f);
    EXPECT_THROW(load_tape(path_), std::logic_error) << "kept " << keep;
  }
}

TEST_F(TapeFileTest, ExtremeAddressDeltasRoundTripThroughDisk) {
  // Jumps between opposite ends of the 64-bit address space force maximal
  // zigzag varints through the real encoder, the file layer, and replay.
  TapeBuilder b;
  b.load(0, false);
  b.load(~0ULL & ~31ULL, true);  // +MAX-ish delta
  b.store(32);                   // huge negative delta
  b.load(1ULL << 63, false);     // bit-63 delta (the ten-byte encoding)
  b.compute(~0ULL);              // maximal count varint
  const Tape t = b.take();
  ASSERT_TRUE(save_tape(t, path_));
  const Tape loaded = load_tape(path_);
  EXPECT_EQ(loaded, t);
}

// --- TapeCache ------------------------------------------------------------

Tape tiny_tape(std::uint64_t n) {
  TapeBuilder b;
  for (std::uint64_t i = 0; i < n; ++i) b.load(0x1000 + i * 8, false);
  return b.take();
}

TEST(TapeCacheTest, RecordsOncePerKeyAcrossThreads) {
  TapeCache cache;
  std::atomic<int> recordings{0};
  constexpr int kThreads = 8;
  std::vector<TapeCache::TapePtr> got(kThreads);
  {
    std::vector<std::thread> workers;
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&, i] {
        got[i] = cache.get_or_record("k", [&] {
          ++recordings;
          return tiny_tape(64);
        });
      });
    }
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(recordings.load(), 1);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(got[i], nullptr);
    EXPECT_EQ(got[i], got[0]) << "all callers share one tape object";
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.total_data_accesses(), 64u);
  EXPECT_EQ(cache.total_bytes(), got[0]->size_bytes());
}

TEST(TapeCacheTest, RecordedHereReportedOnlyToTheRecorder) {
  TapeCache cache;
  bool first = false, second = true;
  cache.get_or_record("k", [] { return tiny_tape(4); }, &first);
  cache.get_or_record("k", [] { return tiny_tape(4); }, &second);
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(TapeCacheTest, FailedRecordingReleasesTheClaim) {
  TapeCache cache;
  EXPECT_THROW(cache.get_or_record(
                   "k", []() -> Tape { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_EQ(cache.find("k"), nullptr);
  // A later call retries and succeeds.
  const auto t = cache.get_or_record("k", [] { return tiny_tape(2); });
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->stats.loads, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TapeCacheTest, SnapshotIsKeyOrderedAndClearEmpties) {
  TapeCache cache;
  cache.get_or_record("b", [] { return tiny_tape(1); });
  cache.get_or_record("a", [] { return tiny_tape(2); });
  cache.get_or_record("c", [] { return tiny_tape(3); });
  const auto snap = cache.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
  EXPECT_EQ(snap[2].first, "c");
  EXPECT_EQ(snap[0].second->stats.loads, 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find("a"), nullptr);
}

}  // namespace
}  // namespace selcache::tape
