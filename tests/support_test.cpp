// Unit tests for the support library: RNG, saturating counters, stats,
// tables, bit utilities.
#include <gtest/gtest.h>

#include <set>

#include "support/bitutil.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/saturating.h"
#include "support/stats.h"
#include "support/table.h"

namespace selcache {
namespace {

TEST(Check, ThrowsWithLocation) {
  EXPECT_THROW(SELCACHE_CHECK(1 == 2), std::logic_error);
  EXPECT_NO_THROW(SELCACHE_CHECK(1 == 1));
  try {
    SELCACHE_CHECK_MSG(false, "context");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("context"), std::string::npos);
  }
}

TEST(Bitutil, Pow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(32), 5u);
}

TEST(Bitutil, AlignAndBlocks) {
  EXPECT_EQ(align_up(0, 4096), 0u);
  EXPECT_EQ(align_up(1, 4096), 4096u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(block_of(127, 32), 3u);
  EXPECT_EQ(block_base(127, 32), 96u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, PermutationIsBijection) {
  Rng r(11);
  const auto p = r.permutation(257);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, ZipfSkewsLow) {
  Rng r(13);
  std::uint64_t low = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i)
    if (r.zipf(1000, 0.9) < 100) ++low;
  // With strong skew, far more than 10% of draws land in the lowest decile.
  EXPECT_GT(low, kDraws / 4);
}

TEST(Rng, ZipfZeroThetaUniform) {
  Rng r(15);
  std::uint64_t low = 0;
  for (int i = 0; i < 20000; ++i)
    if (r.zipf(1000, 0.0) < 100) ++low;
  EXPECT_NEAR(static_cast<double>(low) / 20000.0, 0.1, 0.02);
}

TEST(Rng, ForkIndependent) {
  Rng a(3);
  Rng fork1 = a.fork(1);
  Rng a2(3);
  a2.next();  // fork consumed one draw
  // The fork stream should not equal the parent's continuation.
  EXPECT_NE(fork1.next(), a2.next());
}

TEST(Saturating, IncrementSaturates) {
  SaturatingCounter<std::uint32_t> c(3, 0);
  for (int i = 0; i < 10; ++i) c.increment();
  EXPECT_EQ(c.value(), 3u);
  EXPECT_TRUE(c.saturated());
}

TEST(Saturating, DecrementFloorsAtZero) {
  SaturatingCounter<std::uint32_t> c(7, 2);
  c.decrement(5);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Saturating, DecayHalves) {
  SaturatingCounter<std::uint32_t> c(255, 200);
  c.decay();
  EXPECT_EQ(c.value(), 100u);
}

TEST(Saturating, UpperHalf) {
  Counter2Bit c(3, 2);
  EXPECT_TRUE(c.upper_half());
  c.decrement();
  EXPECT_FALSE(c.upper_half());
}

// threshold() = ceil(max/2): exhaustive upper_half() partition over odd and
// even ceilings. The even-max cases are the regression: `value > max/2`
// would demote the midpoint (e.g. max=4, value=2).
struct UpperHalfCase {
  std::uint32_t max;
  std::uint32_t threshold;  ///< first value in the upper half
};

class SaturatingThreshold : public ::testing::TestWithParam<UpperHalfCase> {};

TEST_P(SaturatingThreshold, PartitionMatchesThreshold) {
  const UpperHalfCase p = GetParam();
  SaturatingCounter<std::uint32_t> c(p.max, 0);
  EXPECT_EQ(c.threshold(), p.threshold);
  for (std::uint32_t v = 0; v <= p.max; ++v) {
    c.reset(v);
    EXPECT_EQ(c.upper_half(), v >= p.threshold)
        << "max=" << p.max << " value=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddAndEvenMax, SaturatingThreshold,
    ::testing::Values(UpperHalfCase{1, 1},    // 1-bit
                      UpperHalfCase{2, 1},    // even: midpoint 1 included
                      UpperHalfCase{3, 2},    // 2-bit bimodal
                      UpperHalfCase{4, 2},    // even: midpoint 2 included
                      UpperHalfCase{15, 8},   // SLDT default
                      UpperHalfCase{16, 8},   // even SLDT-style ceiling
                      UpperHalfCase{255, 128}));

TEST(Saturating, ThresholdDoesNotOverflowAtTypeMax) {
  SaturatingCounter<std::uint8_t> c(255, 0);
  EXPECT_EQ(c.threshold(), 128);  // (max+1)/2 would wrap uint8 to 0
  c.reset(128);
  EXPECT_TRUE(c.upper_half());
  c.reset(127);
  EXPECT_FALSE(c.upper_half());
}

TEST(Saturating, IncrementByAmountSaturates) {
  SaturatingCounter<std::uint32_t> c(10, 8);
  c.increment(5);
  EXPECT_EQ(c.value(), 10u);
}

TEST(Stats, HitMissRates) {
  HitMiss hm;
  EXPECT_DOUBLE_EQ(hm.miss_rate(), 0.0);
  hm.record(true);
  hm.record(true);
  hm.record(false);
  EXPECT_EQ(hm.accesses(), 3u);
  EXPECT_NEAR(hm.miss_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(hm.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Stats, HitMissAccumulate) {
  HitMiss a, b;
  a.record(true);
  b.record(false);
  a += b;
  EXPECT_EQ(a.hits, 1u);
  EXPECT_EQ(a.misses, 1u);
}

TEST(Stats, StatSetMergePrefix) {
  StatSet a, b;
  a.counter("x") = 1;
  b.counter("x") = 2;
  b.counter("y") = 3;
  a.merge(b, "sub.");
  EXPECT_EQ(a.get("x"), 1u);
  EXPECT_EQ(a.get("sub.x"), 2u);
  EXPECT_EQ(a.get("sub.y"), 3u);
  EXPECT_FALSE(a.has("z"));
}

TEST(Stats, ImprovementPct) {
  EXPECT_DOUBLE_EQ(improvement_pct(100, 80), 20.0);
  EXPECT_DOUBLE_EQ(improvement_pct(100, 120), -20.0);
  EXPECT_DOUBLE_EQ(improvement_pct(100, 100), 0.0);
}

// A zero-cycle baseline (empty workload) must not crash a sweep: it reports
// 0.0 and bumps the degenerate-call counter so the caller can warn.
TEST(Stats, ImprovementPctZeroBaselineIsDegenerateNotFatal) {
  const std::uint64_t before = improvement_pct_degenerate_count().load();
  EXPECT_DOUBLE_EQ(improvement_pct(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(improvement_pct(0, 0), 0.0);
  EXPECT_EQ(improvement_pct_degenerate_count().load(), before + 2);
}

TEST(Stats, MergeSnapshotAccumulatesDeltasNotTotals) {
  StatSet live;  // stands in for a component's cumulative counters
  live.counter("decays") = 3;
  live.counter("hits") = 10;

  StatSet agg;
  agg.merge_snapshot(live, "mat.");
  EXPECT_EQ(agg.get("mat.decays"), 3u);

  // The component keeps counting; a second snapshot of the SAME prefix must
  // add only the movement. Plain merge() would re-add the cumulative 5 and
  // report 8.
  live.counter("decays") = 5;
  live.counter("hits") = 25;
  agg.merge_snapshot(live, "mat.");
  EXPECT_EQ(agg.get("mat.decays"), 5u);
  EXPECT_EQ(agg.get("mat.hits"), 25u);

  // A counter that moved backwards (component reset) contributes nothing.
  live.counter("hits") = 4;
  agg.merge_snapshot(live, "mat.");
  EXPECT_EQ(agg.get("mat.hits"), 25u);
}

TEST(Stats, DeltaFromReportsPerIntervalMovement) {
  StatSet prev, now;
  prev.counter("a") = 10;
  now.counter("a") = 17;
  now.counter("b") = 4;  // new key: whole value is the delta
  const StatSet d = now.delta_from(prev);
  EXPECT_EQ(d.get("a"), 7u);
  EXPECT_EQ(d.get("b"), 4u);
  // Backwards movement clamps to 0 rather than underflowing.
  StatSet later;
  later.counter("a") = 5;
  EXPECT_EQ(later.delta_from(now).get("a"), 0u);
}

TEST(Table, FormatsAligned) {
  TextTable t({"A", "Longer"});
  t.add_row({"hello", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| A     | Longer |"), std::string::npos);
  EXPECT_NE(s.find("| hello | 1      |"), std::string::npos);
}

TEST(Table, RejectsWrongWidth) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), std::logic_error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::count(0), "0");
  EXPECT_EQ(TextTable::count(1234567), "1,234,567");
}

TEST(CsvField, PlainFieldsPassThroughUnquoted) {
  EXPECT_EQ(csv_field("Swim"), "Swim");
  EXPECT_EQ(csv_field(""), "");
  EXPECT_EQ(csv_field("a b"), "a b");  // interior space needs no quoting
  EXPECT_EQ(csv_field("3.14"), "3.14");
}

TEST(CsvField, QuotesDelimitersAndDoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_field("TPC-D,Q6"), "\"TPC-D,Q6\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("\""), "\"\"\"\"");
}

TEST(CsvField, QuotesCrLfAndEdgeWhitespacePerRfc4180) {
  // Embedded line breaks — bare LF, bare CR, and a CRLF pair — must be
  // quoted or the row structure is destroyed.
  EXPECT_EQ(csv_field("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(csv_field("carriage\rreturn"), "\"carriage\rreturn\"");
  EXPECT_EQ(csv_field("dos\r\nending"), "\"dos\r\nending\"");
  EXPECT_EQ(csv_field("\n"), "\"\n\"");
  // Leading/trailing whitespace is significant per RFC 4180; quote it so
  // trimming consumers cannot eat it.
  EXPECT_EQ(csv_field(" padded"), "\" padded\"");
  EXPECT_EQ(csv_field("padded "), "\"padded \"");
  EXPECT_EQ(csv_field("\ttabbed"), "\"\ttabbed\"");
  EXPECT_EQ(csv_field("tabbed\t"), "\"tabbed\t\"");
  EXPECT_EQ(csv_field(" "), "\" \"");
  // Combined: CRLF + comma + quote in one field.
  EXPECT_EQ(csv_field("a,\r\n\"b\""), "\"a,\r\n\"\"b\"\"\"");
}

}  // namespace
}  // namespace selcache
