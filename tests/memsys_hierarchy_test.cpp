// Integration tests for the two-level hierarchy: latency composition,
// write-allocate semantics, instruction path, miss classification.
#include <gtest/gtest.h>

#include "memsys/hierarchy.h"
#include "support/rng.h"

namespace selcache::memsys {
namespace {

HierarchyConfig small_config() {
  HierarchyConfig cfg;
  cfg.l1d = {.name = "l1d", .size_bytes = 1024, .assoc = 2, .block_size = 32,
             .latency = 2};
  cfg.l1i = {.name = "l1i", .size_bytes = 1024, .assoc = 2, .block_size = 32,
             .latency = 2};
  cfg.l2 = {.name = "l2", .size_bytes = 8192, .assoc = 4, .block_size = 128,
            .latency = 10};
  cfg.dtlb = {.name = "dtlb", .entries = 64, .assoc = 4, .page_size = 4096,
              .miss_penalty = 30};
  cfg.itlb = {.name = "itlb", .entries = 64, .assoc = 4, .page_size = 4096,
              .miss_penalty = 30};
  cfg.mem = {.access_latency = 100, .bus_width = 8};
  return cfg;
}

TEST(Hierarchy, ColdMissPaysFullPath) {
  Hierarchy h(small_config());
  // TLB miss 30 + L1 2 + L2 10 + memory(128B) 100+15.
  EXPECT_EQ(h.access(0x0, AccessKind::Load), 30u + 2 + 10 + 115);
}

TEST(Hierarchy, L1HitIsCheap) {
  Hierarchy h(small_config());
  h.access(0x0, AccessKind::Load);
  EXPECT_EQ(h.access(0x8, AccessKind::Load), 2u);  // same block, same page
}

TEST(Hierarchy, L2HitSkipsMemory) {
  Hierarchy h(small_config());
  h.access(0x0, AccessKind::Load);  // fills both levels (and dtlb page)
  // Evict the L1 block with two conflicting fills (L1: 16 sets... compute
  // set stride = 1024B/2-way/32B = 16 sets -> stride 512B).
  h.access(0x0 + 512, AccessKind::Load);
  h.access(0x0 + 1024, AccessKind::Load);
  // 0x0 now out of L1 but still in L2 (same 128B L2 block as 0..127).
  const Cycle lat = h.access(0x0, AccessKind::Load);
  EXPECT_EQ(lat, 2u + 10u);
}

TEST(Hierarchy, StoreAllocatesAndWritesBack) {
  Hierarchy h(small_config());
  h.access(0x0, AccessKind::Store);
  EXPECT_TRUE(h.l1d().probe(0x0));
  // Evict the dirty block: writeback counter increments.
  h.access(0x0 + 512, AccessKind::Store);
  h.access(0x0 + 1024, AccessKind::Store);
  EXPECT_EQ(h.l1d().writebacks(), 1u);
}

TEST(Hierarchy, IFetchUsesInstructionPath) {
  Hierarchy h(small_config());
  h.access(0x400000, AccessKind::IFetch);
  EXPECT_TRUE(h.l1i().probe(0x400000));
  EXPECT_FALSE(h.l1d().probe(0x400000));
  EXPECT_EQ(h.itlb().stats().misses, 1u);
  EXPECT_EQ(h.dtlb().stats().misses, 0u);
  EXPECT_EQ(h.access(0x400004, AccessKind::IFetch), 2u);
}

TEST(Hierarchy, CombinedMissRateMixesBothL1s) {
  Hierarchy h(small_config());
  h.access(0, AccessKind::Load);      // D miss
  h.access(0, AccessKind::Load);      // D hit
  h.access(0x400000, AccessKind::IFetch);  // I miss
  EXPECT_NEAR(h.l1_miss_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Hierarchy, ClassifierTracksL1DMisses) {
  HierarchyConfig cfg = small_config();
  cfg.classify_misses = true;
  Hierarchy h(cfg);
  h.access(0, AccessKind::Load);
  h.access(64, AccessKind::Load);
  ASSERT_NE(h.classifier(), nullptr);
  EXPECT_EQ(h.classifier()->compulsory(), 2u);
}

TEST(Hierarchy, ExportStatsHasAllComponents) {
  Hierarchy h(small_config());
  h.access(0, AccessKind::Load);
  h.access(0x400000, AccessKind::IFetch);
  StatSet s;
  h.export_stats(s);
  for (const char* key : {"l1d.misses", "l1i.misses", "l2.misses",
                          "dtlb.misses", "itlb.misses", "mem.reads"})
    EXPECT_TRUE(s.has(key)) << key;
}

TEST(Hierarchy, MoreWaysNeverMoreMisses) {
  // Property: adding ways at a fixed set count cannot increase the L1D miss
  // count on any trace (per-set LRU stack inclusion).
  auto run = [](std::uint64_t l1_size, std::uint32_t assoc) {
    HierarchyConfig cfg = small_config();
    cfg.l1d.size_bytes = l1_size;
    cfg.l1d.assoc = assoc;
    Hierarchy h(cfg);
    Rng rng(99);
    for (int i = 0; i < 20000; ++i)
      h.access(rng.below(1 << 15), rng.chance(0.25) ? AccessKind::Store
                                                    : AccessKind::Load);
    return h.l1d().demand_stats().misses;
  };
  const auto small = run(1024, 2);   // 16 sets x 2 ways
  const auto medium = run(2048, 4);  // 16 sets x 4 ways
  const auto large = run(4096, 8);   // 16 sets x 8 ways
  EXPECT_GE(small, medium);
  EXPECT_GE(medium, large);
}

}  // namespace
}  // namespace selcache::memsys
