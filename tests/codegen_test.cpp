// Tests for address layout, the data environment, and the trace engine.
#include <gtest/gtest.h>

#include <set>

#include "codegen/trace_engine.h"
#include "hw/victim_scheme.h"
#include "ir/builder.h"

namespace selcache::codegen {
namespace {

using ir::ArrayDecl;
using ir::load_array;
using ir::ProgramBuilder;
using ir::store_array;
using ir::Subscript;
using ir::x;

ArrayDecl decl_2d(std::int64_t r, std::int64_t c, ir::Layout layout,
                  std::int64_t pad = 0) {
  ArrayDecl d;
  d.name = "A";
  d.dims = {r, c};
  d.elem_size = 8;
  d.layout = layout;
  d.pad_elems = pad;
  return d;
}

TEST(ArrayLayout, RowMajorAddressing) {
  ArrayLayout l(decl_2d(4, 8, ir::Layout::RowMajor), 0x1000);
  const std::int64_t i00[] = {0, 0}, i01[] = {0, 1}, i10[] = {1, 0};
  EXPECT_EQ(l.element_addr(i00), 0x1000u);
  EXPECT_EQ(l.element_addr(i01), 0x1000u + 8);
  EXPECT_EQ(l.element_addr(i10), 0x1000u + 8 * 8);
}

TEST(ArrayLayout, ColMajorAddressing) {
  ArrayLayout l(decl_2d(4, 8, ir::Layout::ColMajor), 0);
  const std::int64_t i01[] = {0, 1}, i10[] = {1, 0};
  EXPECT_EQ(l.element_addr(i10), 8u);       // rows contiguous
  EXPECT_EQ(l.element_addr(i01), 4u * 8);   // column stride = 4 rows
}

TEST(ArrayLayout, PaddingWidensFastestDim) {
  ArrayLayout l(decl_2d(4, 8, ir::Layout::RowMajor, /*pad=*/2), 0);
  const std::int64_t i10[] = {1, 0};
  EXPECT_EQ(l.element_addr(i10), (8u + 2) * 8);
  EXPECT_EQ(l.footprint_bytes(), 4u * 10 * 8);
}

TEST(ArrayLayout, OutOfRangeWraps) {
  ArrayLayout l(decl_2d(4, 8, ir::Layout::RowMajor), 0);
  const std::int64_t over[] = {1, 9};   // j wraps to 1
  const std::int64_t in[] = {1, 1};
  EXPECT_EQ(l.element_addr(over), l.element_addr(in));
  const std::int64_t neg[] = {-1, 0};   // wraps to row 3
  const std::int64_t row3[] = {3, 0};
  EXPECT_EQ(l.element_addr(neg), l.element_addr(row3));
}

TEST(DataEnv, AllocationsDisjointAndAligned) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {64, 64});
  const auto B = b.array("B", {64});
  b.scalar("s");
  b.chase_pool("P", 128, 32);
  b.stmt({}, 1);
  const ir::Program p = b.finish();
  DataEnv env(p);
  const auto& la = env.array_layout(A);
  const auto& lb = env.array_layout(B);
  EXPECT_EQ(la.base() % 4096, 0u);
  EXPECT_EQ(lb.base() % 4096, 0u);
  EXPECT_GE(lb.base(), la.base() + la.footprint_bytes());
  EXPECT_GT(env.total_footprint(), 0u);
}

TEST(DataEnv, IndexContentsRespectRange) {
  ProgramBuilder b("t");
  const auto U = b.index_array("U", 512, ArrayDecl::Content::Uniform, 0, 37);
  const auto Z = b.index_array("Z", 512, ArrayDecl::Content::Zipf, 0.9, 37);
  const auto I = b.index_array("I", 512, ArrayDecl::Content::Identity, 0, 0);
  const auto M = b.index_array("M", 512, ArrayDecl::Content::Mesh, 8, 37);
  b.stmt({}, 1);
  const ir::Program p = b.finish();
  DataEnv env(p);
  for (std::int64_t k = 0; k < 512; ++k) {
    EXPECT_GE(env.index_value(U, k), 0);
    EXPECT_LT(env.index_value(U, k), 37);
    EXPECT_LT(env.index_value(Z, k), 37);
    EXPECT_LT(env.index_value(M, k), 37);
    EXPECT_EQ(env.index_value(I, k), k % 512);
  }
  // Position wraps.
  EXPECT_EQ(env.index_value(U, 512), env.index_value(U, 0));
  EXPECT_EQ(env.index_value(U, -1), env.index_value(U, 511));
}

TEST(DataEnv, PermutationContentIsBijective) {
  ProgramBuilder b("t");
  const auto P = b.index_array("P", 128, ArrayDecl::Content::Permutation);
  b.stmt({}, 1);
  const ir::Program p = b.finish();
  DataEnv env(p);
  std::set<std::int64_t> seen;
  for (std::int64_t k = 0; k < 128; ++k) seen.insert(env.index_value(P, k));
  EXPECT_EQ(seen.size(), 128u);
}

TEST(DataEnv, DeterministicAcrossInstances) {
  ProgramBuilder b("t");
  const auto U = b.index_array("U", 64, ArrayDecl::Content::Uniform, 0, 1000);
  b.stmt({}, 1);
  const ir::Program p = b.finish();
  DataEnv e1(p), e2(p);
  for (std::int64_t k = 0; k < 64; ++k)
    EXPECT_EQ(e1.index_value(U, k), e2.index_value(U, k));
}

TEST(DataEnv, ChaseVisitsAllNodesInACycle) {
  ProgramBuilder b("t");
  const auto P = b.chase_pool("P", 64, 32, /*shuffled=*/true);
  b.stmt({}, 1);
  const ir::Program p = b.finish();
  DataEnv env(p);
  std::set<Addr> nodes;
  for (int k = 0; k < 64; ++k) nodes.insert(env.chase_next(P, 0));
  EXPECT_EQ(nodes.size(), 64u);  // Hamiltonian cycle covers the pool
  // The next lap revisits the same nodes in the same order.
  env.reset_walks();
  EXPECT_NE(nodes.find(env.chase_next(P, 0)), nodes.end());
}

TEST(DataEnv, SequentialChaseIsAddressOrdered) {
  ProgramBuilder b("t");
  const auto P = b.chase_pool("P", 8, 32, /*shuffled=*/false);
  b.stmt({}, 1);
  const ir::Program p = b.finish();
  DataEnv env(p);
  Addr prev = env.chase_next(P, 0);
  for (int k = 1; k < 7; ++k) {
    const Addr cur = env.chase_next(P, 0);
    EXPECT_EQ(cur, prev + 32);
    prev = cur;
  }
}

TEST(DataEnv, RecordAddrWrapsAndOffsets) {
  ProgramBuilder b("t");
  const auto R = b.record_pool("R", 10, 64);
  b.stmt({}, 1);
  const ir::Program p = b.finish();
  DataEnv env(p);
  EXPECT_EQ(env.record_addr(R, 3, 16) - env.record_addr(R, 3, 0), 16u);
  EXPECT_EQ(env.record_addr(R, 13, 0), env.record_addr(R, 3, 0));
  EXPECT_EQ(env.record_addr(R, -1, 0), env.record_addr(R, 9, 0));
}

// ---- trace engine -----------------------------------------------------------

struct Rig {
  memsys::Hierarchy hierarchy;
  hw::Controller controller;
  cpu::TimingModel cpu;

  Rig() : hierarchy(memsys::HierarchyConfig{}), controller(nullptr),
          cpu(cpu::CpuConfig{}, hierarchy, controller) {}
};

TEST(TraceEngine, ExecutesIterationSpace) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {16, 16});
  const auto i = b.begin_loop("i", 0, 16);
  const auto j = b.begin_loop("j", 0, 16);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         2);
  b.end_loop();
  b.end_loop();
  const ir::Program p = b.finish();
  Rig rig;
  DataEnv env(p);
  TraceEngine eng(p, env, rig.cpu);
  eng.run();
  EXPECT_EQ(eng.iterations_executed(), 16u + 16 * 16);
  EXPECT_EQ(eng.loads_executed(), 256u);
  EXPECT_EQ(eng.stores_executed(), 256u);
  // Instructions: per inner iter 2 refs + 2 ops + 2 loop overhead, plus the
  // outer loop's 2 per iteration.
  EXPECT_EQ(rig.cpu.instructions(), 256u * 6 + 16 * 2);
}

TEST(TraceEngine, TriangularBoundsEvaluated) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {32});
  const auto i = b.begin_loop("i", 0, 8);
  const auto j = b.begin_loop("j", x(i), ir::AffineExpr::constant(8));
  b.stmt({load_array(A, {b.sub(j)})}, 1);
  b.end_loop();
  b.end_loop();
  const ir::Program p = b.finish();
  Rig rig;
  DataEnv env(p);
  TraceEngine eng(p, env, rig.cpu);
  eng.run();
  EXPECT_EQ(eng.loads_executed(), 8u + 7 + 6 + 5 + 4 + 3 + 2 + 1);
}

TEST(TraceEngine, IndexedSubscriptEmitsIndexLoad) {
  ProgramBuilder b("t");
  const auto G = b.array("G", {64});
  const auto IP = b.index_array("IP", 64, ArrayDecl::Content::Identity);
  const auto i = b.begin_loop("i", 0, 10);
  b.stmt({load_array(G, {Subscript::indexed(IP, x(i), 0)})}, 1);
  b.end_loop();
  const ir::Program p = b.finish();
  Rig rig;
  DataEnv env(p);
  TraceEngine eng(p, env, rig.cpu);
  eng.run();
  EXPECT_EQ(eng.loads_executed(), 20u);  // 10 index loads + 10 gathers
}

TEST(TraceEngine, TogglesReachController) {
  ProgramBuilder b("t");
  b.toggle(true);
  b.stmt({}, 1);
  b.toggle(false);
  const ir::Program p = b.finish();

  memsys::Hierarchy h((memsys::HierarchyConfig()));
  hw::VictimScheme scheme((hw::VictimSchemeConfig()));
  h.attach_hw(&scheme);
  hw::Controller ctl(&scheme);
  cpu::TimingModel cpu(cpu::CpuConfig{}, h, ctl);
  DataEnv env(p);
  TraceEngine eng(p, env, cpu);
  eng.run();
  EXPECT_EQ(ctl.toggles_executed(), 2u);
  EXPECT_FALSE(ctl.active());
}

TEST(TraceEngine, DeterministicCycles) {
  ProgramBuilder b("t");
  const auto P = b.chase_pool("P", 256, 32);
  b.begin_loop("i", 0, 500);
  b.stmt({ir::chase(P)}, 1);
  b.end_loop();
  const ir::Program p = b.finish();
  auto run = [&p] {
    Rig rig;
    DataEnv env(p);
    TraceEngine eng(p, env, rig.cpu);
    eng.run();
    return rig.cpu.cycles();
  };
  EXPECT_EQ(run(), run());
}

TEST(TraceEngine, LayoutAffectsAddressStream) {
  // The same program with a column-major array must produce different cache
  // behavior (more hits for a column walk).
  ProgramBuilder b("t");
  const auto A = b.array("A", {256, 256});
  const auto j = b.begin_loop("j", 0, 256);
  const auto i = b.begin_loop("i", 0, 256);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)})}, 1);
  b.end_loop();
  b.end_loop();
  ir::Program p = b.finish();

  auto misses = [](const ir::Program& prog) {
    Rig rig;
    DataEnv env(prog);
    TraceEngine eng(prog, env, rig.cpu);
    eng.run();
    return rig.hierarchy.l1d().demand_stats().misses;
  };
  const auto row_misses = misses(p);
  p.array(A).layout = ir::Layout::ColMajor;
  const auto col_misses = misses(p);
  EXPECT_GE(row_misses, 4 * col_misses);  // column-major fixes the walk
}

}  // namespace
}  // namespace selcache::codegen
