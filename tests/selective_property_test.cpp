// Cross-cutting property tests on real suite members (the small ones, to
// keep the test suite fast): the paper's qualitative claims must hold for
// every (workload, scheme) combination tested.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace selcache::core {
namespace {

struct Case {
  const char* workload;
  hw::SchemeKind scheme;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n = info.param.workload;
  for (char& c : n)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  return n + "_" + hw::to_string(info.param.scheme);
}

class SelectiveProperty : public ::testing::TestWithParam<Case> {
 protected:
  ImprovementRow row() const {
    RunOptions opt;
    opt.scheme = GetParam().scheme;
    return improvements_for(workloads::workload(GetParam().workload),
                            base_machine(), opt);
  }
};

TEST_P(SelectiveProperty, SelectiveAtLeastMatchesCombined) {
  // The paper's central claim ("better or at least the same performance for
  // all the benchmarks"), with a small tolerance for toggle overhead.
  const ImprovementRow r = row();
  EXPECT_GE(r.pct.at(Version::Selective), r.pct.at(Version::Combined) - 0.5);
}

TEST_P(SelectiveProperty, SelectiveAtLeastMatchesPureSoftware) {
  const ImprovementRow r = row();
  EXPECT_GE(r.pct.at(Version::Selective),
            r.pct.at(Version::PureSoftware) - 0.5);
}

TEST_P(SelectiveProperty, AllVersionsReturnFiniteImprovements) {
  const ImprovementRow r = row();
  for (const auto& [v, pct] : r.pct) {
    EXPECT_GT(pct, -100.0) << to_string(v);
    EXPECT_LT(pct, 100.0) << to_string(v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallSuite, SelectiveProperty,
    ::testing::Values(Case{"Perl", hw::SchemeKind::Bypass},
                      Case{"Perl", hw::SchemeKind::Victim},
                      Case{"TPC-C", hw::SchemeKind::Bypass},
                      Case{"TPC-C", hw::SchemeKind::Victim},
                      Case{"TPC-D,Q6", hw::SchemeKind::Bypass},
                      Case{"TPC-D,Q6", hw::SchemeKind::Victim},
                      Case{"TPC-D,Q1", hw::SchemeKind::Bypass},
                      Case{"TPC-D,Q3", hw::SchemeKind::Victim}),
    case_name);

class VictimNeverHurts : public ::testing::TestWithParam<const char*> {};

TEST_P(VictimNeverHurts, PureHardwareVictimNonNegative) {
  // §5.2: "victim caches performed always better than the base
  // configuration."
  RunOptions opt;
  opt.scheme = hw::SchemeKind::Victim;
  const ImprovementRow r =
      improvements_for(workloads::workload(GetParam()), base_machine(), opt);
  EXPECT_GE(r.pct.at(Version::PureHardware), -0.1);
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, VictimNeverHurts,
                         ::testing::Values("Perl", "TPC-C", "TPC-D,Q6"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

TEST(SelectiveScaling, HigherMemoryLatencySlowsEveryBaseRun) {
  // Figure 5's precondition: doubling memory latency must slow every
  // benchmark's base run (sanity of the machine-variation plumbing).
  for (const char* name : {"Perl", "TPC-C", "TPC-D,Q6"}) {
    const auto& w = workloads::workload(name);
    const RunResult fast = run_version(w, base_machine(), Version::Base);
    const RunResult slow =
        run_version(w, higher_mem_latency(), Version::Base);
    EXPECT_GT(slow.cycles, fast.cycles) << name;
  }
}

TEST(SelectiveScaling, HigherAssociativityShrinksHardwareValue) {
  // Figures 8/9: more associativity removes the conflict misses the
  // hardware schemes target, so their benefit shrinks.
  const auto& w = workloads::workload("Perl");
  RunOptions opt;
  opt.scheme = hw::SchemeKind::Bypass;
  const ImprovementRow base = improvements_for(w, base_machine(), opt);
  const ImprovementRow assoc = improvements_for(w, higher_l1_assoc(), opt);
  EXPECT_LE(assoc.pct.at(Version::PureHardware),
            base.pct.at(Version::PureHardware) + 1.0);
}

}  // namespace
}  // namespace selcache::core
