// End-to-end integration tests: the paper's qualitative claims on synthetic
// programs engineered to trigger each mechanism, plus cross-version
// invariants on real (small) suite members.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "ir/builder.h"

namespace selcache::core {
namespace {

using workloads::Category;
using workloads::WorkloadInfo;

// A program with a strong phase structure: a hot pointer workload whose
// working set the hardware protects, alternating with a regular streaming
// phase that pollutes MAT state when the mechanism stays on.
ir::Program phase_demo() {
  ir::ProgramBuilder b("phase");
  const auto A = b.array("A", {128, 128});
  const auto B = b.array("B", {128, 128});
  const auto H = b.chase_pool("H", 1024, 32);
  const auto R = b.record_pool("R", 512, 64);
  const auto idx = b.index_array("ridx", 2048,
                                 ir::ArrayDecl::Content::Zipf, 0.9, 512);
  b.begin_loop("t", 0, 4);
  // Irregular phase.
  {
    const auto w = b.begin_loop("w", 0, 4000);
    b.stmt({ir::chase(H),
            ir::load_field(R, ir::Subscript::indexed(idx, ir::x(w)), 0)},
           3);
    b.end_loop();
  }
  // Regular phase (hostile in base; optimizable).
  {
    const auto j = b.begin_loop("j", 0, 128);
    const auto i = b.begin_loop("i", 0, 128);
    b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)}),
            ir::load_array(B, {b.sub(i), b.sub(j)}),
            ir::store_array(B, {b.sub(i), b.sub(j)})},
           2);
    b.end_loop();
    b.end_loop();
  }
  b.end_loop();
  return b.finish();
}

WorkloadInfo phase_info() {
  return {"phase", "synthetic", Category::Mixed, phase_demo, 1, 1, 1};
}

TEST(Integration, SoftwareOptimizationBeatsBaseOnHostileCode) {
  const ImprovementRow row = improvements_for(phase_info(), base_machine());
  EXPECT_GT(row.pct.at(Version::PureSoftware), 3.0);
}

TEST(Integration, SelectiveAtLeastMatchesCombinedBypass) {
  RunOptions opt;
  opt.scheme = hw::SchemeKind::Bypass;
  const ImprovementRow row =
      improvements_for(phase_info(), base_machine(), opt);
  EXPECT_GE(row.pct.at(Version::Selective),
            row.pct.at(Version::Combined) - 0.25);
}

TEST(Integration, SelectiveAtLeastMatchesCombinedVictim) {
  RunOptions opt;
  opt.scheme = hw::SchemeKind::Victim;
  const ImprovementRow row =
      improvements_for(phase_info(), base_machine(), opt);
  EXPECT_GE(row.pct.at(Version::Selective),
            row.pct.at(Version::Combined) - 0.25);
}

TEST(Integration, VictimCacheNeverBelowBase) {
  // §5.2: "victim caches performed always better than the base".
  RunOptions opt;
  opt.scheme = hw::SchemeKind::Victim;
  const ImprovementRow row =
      improvements_for(phase_info(), base_machine(), opt);
  EXPECT_GE(row.pct.at(Version::PureHardware), -0.1);
}

TEST(Integration, HigherMemoryLatencyRaisesBaseCycles) {
  const RunResult base100 =
      run_version(phase_info(), base_machine(), Version::Base);
  const RunResult base200 =
      run_version(phase_info(), higher_mem_latency(), Version::Base);
  EXPECT_GT(base200.cycles, base100.cycles);
}

TEST(Integration, LargerL1ReducesMissRate) {
  const RunResult small =
      run_version(phase_info(), base_machine(), Version::Base);
  const RunResult big =
      run_version(phase_info(), larger_l1(), Version::Base);
  EXPECT_LE(big.l1_miss_rate, small.l1_miss_rate + 1e-9);
}

TEST(Integration, SelectiveTogglesScaleWithPhases) {
  const RunResult r =
      run_version(phase_info(), base_machine(), Version::Selective);
  // 4 timesteps x ON+OFF per irregular phase.
  EXPECT_EQ(r.toggles, 8u);
}

// Real suite members (the two smallest) run end-to-end across versions.

TEST(Integration, PerlSelectiveMatchesPureHardwareShape) {
  const auto& w = workloads::workload("Perl");
  const ImprovementRow row = improvements_for(w, base_machine());
  // Perl is all-hardware: selective ~ pure hardware (within toggle noise).
  EXPECT_NEAR(row.pct.at(Version::Selective),
              row.pct.at(Version::PureHardware), 1.0);
  // And software alone does nothing for it.
  EXPECT_NEAR(row.pct.at(Version::PureSoftware), 0.0, 0.5);
}

TEST(Integration, Q6SelectiveCombinesBothWorlds) {
  const auto& w = workloads::workload("TPC-D,Q6");
  const ImprovementRow row = improvements_for(w, base_machine());
  EXPECT_GE(row.pct.at(Version::Selective),
            row.pct.at(Version::PureSoftware) - 0.25);
  EXPECT_GE(row.pct.at(Version::Selective),
            row.pct.at(Version::Combined) - 0.25);
}

}  // namespace
}  // namespace selcache::core
