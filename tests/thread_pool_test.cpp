#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace selcache::support {
namespace {

TEST(ThreadPool, ReturnsSubmittedResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);  // one failure must not poison the pool
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++done;
      });
    // No .get(): destruction itself must complete every queued task.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

// Regression: a throwing task queued right before destruction must keep
// its exception in the future across the destructor's drain, not unwind a
// worker thread. (The drain runs every queued task; an unprotected task()
// call there would std::terminate the whole process on the first throw.)
TEST(ThreadPool, ThrowingTaskQueuedAtDestructionIsRetainedInFuture) {
  std::future<int> bad;
  std::future<int> good;
  {
    ThreadPool pool(1);
    // Park the worker so both tasks are still queued when the destructor
    // starts draining.
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    bad = pool.submit(
        []() -> int { throw std::runtime_error("late failure"); });
    good = pool.submit([] { return 11; });
  }
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 11);
}

// Regression: spawning worker k can throw (std::system_error on resource
// exhaustion). Before the constructor hardening, the k-1 already-started
// workers were joinable when the half-built pool unwound, so ~thread called
// std::terminate. Now the constructor stops and joins them first.
TEST(ThreadPool, PartialSpawnFailureCleansUpStartedWorkers) {
  ThreadPool::spawn_fault_hook() = [](std::size_t worker) {
    if (worker == 2) throw std::runtime_error("no more threads");
  };
  EXPECT_THROW(ThreadPool pool(4), std::runtime_error);
  ThreadPool::spawn_fault_hook() = nullptr;

  // The process survived (no std::terminate) and pools still work.
  ThreadPool pool(4);
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
  EXPECT_EQ(pool.stray_exceptions(), 0u);
}

// -- cooperative cancellation ------------------------------------------------
// The drain path graceful shutdown rides on: request_stop() must discard
// queued tasks promptly (futures resolve, never hang), keep in-flight tasks
// intact, and leave the pool joinable.

TEST(ThreadPool, RequestStopDiscardsQueuedTasksAsBrokenPromise) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Park the single worker so everything else stays queued.
  auto in_flight = pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    ++ran;
    return 7;
  });
  std::vector<std::future<int>> queued;
  for (int i = 0; i < 8; ++i)
    queued.push_back(pool.submit([&ran] { ++ran; return 1; }));

  // Only stop once the parked task is genuinely in flight — a stop racing
  // the worker's first dequeue would discard it along with the queue.
  while (!started.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pool.request_stop();
  EXPECT_TRUE(pool.stop_requested());
  release.store(true);

  // The in-flight task finishes normally; every queued task is discarded
  // with broken_promise — resolved, never a hang.
  EXPECT_EQ(in_flight.get(), 7);
  for (auto& f : queued) {
    try {
      f.get();
      FAIL() << "discarded task's future must not produce a value";
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
    }
  }
  EXPECT_EQ(ran.load(), 1) << "no queued task may run after request_stop";
}

TEST(ThreadPool, SubmitAfterStopIsDroppedImmediately) {
  ThreadPool pool(2);
  pool.request_stop();
  auto f = pool.submit([] { return 3; });
  EXPECT_THROW(f.get(), std::future_error);
}

TEST(ThreadPool, RequestStopIsIdempotentAndCallableFromATask) {
  // A task cancelling its own pool (how the checkpoint engine reacts to the
  // first suspended cell) must not deadlock or terminate.
  ThreadPool pool(2);
  auto self_stop = pool.submit([&pool] {
    pool.request_stop();
    pool.request_stop();  // idempotent
    return 1;
  });
  EXPECT_EQ(self_stop.get(), 1);
  EXPECT_TRUE(pool.stop_requested());
}

TEST(ThreadPool, CompletedFuturesSurviveStopAndDestruction) {
  std::future<int> done;
  {
    ThreadPool pool(2);
    done = pool.submit([] { return 42; });
    EXPECT_EQ(done.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    pool.request_stop();
    // Destructor joins promptly: nothing left to drain.
  }
  EXPECT_EQ(done.get(), 42);
}

TEST(ThreadPool, StopWithLargeQueueResolvesEveryFuture) {
  ThreadPool pool(2);
  std::atomic<int> parked_count{0};
  std::atomic<bool> release{false};
  std::vector<std::future<void>> parked;
  for (int i = 0; i < 2; ++i)
    parked.push_back(pool.submit([&] {
      ++parked_count;
      while (!release.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }));
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 500; ++i)
    queued.push_back(pool.submit([] {}));
  // Both workers must be parked before the stop, or the discard could race
  // a dequeue and let some queued task through.
  while (parked_count.load() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pool.request_stop();
  release.store(true);
  for (auto& f : parked) f.get();
  std::size_t dropped = 0;
  for (auto& f : queued) {
    try {
      f.get();
    } catch (const std::future_error&) {
      ++dropped;
    }
  }
  // Every future resolved one way or the other; with both workers parked
  // until after the stop, all 500 queued tasks were discarded.
  EXPECT_EQ(dropped, 500u);
}

TEST(ThreadPool, ManySmallTasksAcrossWorkers) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(1000);
  for (int i = 1; i <= 1000; ++i)
    futures.push_back(pool.submit([i, &sum] { sum += i; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500500u);
}

}  // namespace
}  // namespace selcache::support
