#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace selcache::support {
namespace {

TEST(ThreadPool, ReturnsSubmittedResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);  // one failure must not poison the pool
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++done;
      });
    // No .get(): destruction itself must complete every queued task.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

// Regression: a throwing task queued right before destruction must keep
// its exception in the future across the destructor's drain, not unwind a
// worker thread. (The drain runs every queued task; an unprotected task()
// call there would std::terminate the whole process on the first throw.)
TEST(ThreadPool, ThrowingTaskQueuedAtDestructionIsRetainedInFuture) {
  std::future<int> bad;
  std::future<int> good;
  {
    ThreadPool pool(1);
    // Park the worker so both tasks are still queued when the destructor
    // starts draining.
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    bad = pool.submit(
        []() -> int { throw std::runtime_error("late failure"); });
    good = pool.submit([] { return 11; });
  }
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 11);
}

// Regression: spawning worker k can throw (std::system_error on resource
// exhaustion). Before the constructor hardening, the k-1 already-started
// workers were joinable when the half-built pool unwound, so ~thread called
// std::terminate. Now the constructor stops and joins them first.
TEST(ThreadPool, PartialSpawnFailureCleansUpStartedWorkers) {
  ThreadPool::spawn_fault_hook() = [](std::size_t worker) {
    if (worker == 2) throw std::runtime_error("no more threads");
  };
  EXPECT_THROW(ThreadPool pool(4), std::runtime_error);
  ThreadPool::spawn_fault_hook() = nullptr;

  // The process survived (no std::terminate) and pools still work.
  ThreadPool pool(4);
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
  EXPECT_EQ(pool.stray_exceptions(), 0u);
}

TEST(ThreadPool, ManySmallTasksAcrossWorkers) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(1000);
  for (int i = 1; i <= 1000; ++i)
    futures.push_back(pool.submit([i, &sum] { sum += i; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500500u);
}

}  // namespace
}  // namespace selcache::support
