// Tests for the extension schemes: stride prefetcher and the
// bypass+victim composite.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "hw/composite_scheme.h"
#include "hw/stride_prefetcher.h"
#include "support/rng.h"

namespace selcache::hw {
namespace {

using memsys::FillDecision;
using memsys::Level;

TEST(StridePrefetcher, ConfirmsSequentialMissStream) {
  StridePrefetcher p(StridePrefetcherConfig{.streams = 4, .block_size = 32,
                                            .confirm = 2, .degree = 2});
  p.set_active(true);
  // Misses at blocks 0,1,2: by the third the stream is confirmed.
  p.on_access(Level::L1D, 0, false, /*hit=*/false);
  EXPECT_EQ(p.fetch_width(Level::L1D, 0), 1u);
  p.on_access(Level::L1D, 32, false, false);
  p.on_access(Level::L1D, 64, false, false);
  EXPECT_EQ(p.confirmed_streams(), 1u);
  EXPECT_EQ(p.fetch_width(Level::L1D, 64), 2u);
}

TEST(StridePrefetcher, HitsDoNotTrain) {
  StridePrefetcher p(StridePrefetcherConfig{});
  p.set_active(true);
  for (Addr a = 0; a < 32 * 8; a += 32) p.on_access(Level::L1D, a, false,
                                                    /*hit=*/true);
  EXPECT_EQ(p.confirmed_streams(), 0u);
}

TEST(StridePrefetcher, RandomMissesNeverConfirm) {
  StridePrefetcher p(StridePrefetcherConfig{.streams = 4, .block_size = 32,
                                            .confirm = 2, .degree = 2});
  p.set_active(true);
  Rng rng(1);
  for (int i = 0; i < 200; ++i)
    p.on_access(Level::L1D, rng.below(1 << 20) * 64 * 7, false, false);
  EXPECT_EQ(p.confirmed_streams(), 0u);
}

TEST(StridePrefetcher, TracksMultipleStreams) {
  StridePrefetcher p(StridePrefetcherConfig{.streams = 4, .block_size = 32,
                                            .confirm = 2, .degree = 2});
  p.set_active(true);
  // Two interleaved streams, far apart.
  for (int k = 0; k < 4; ++k) {
    p.on_access(Level::L1D, static_cast<Addr>(k) * 32, false, false);
    p.on_access(Level::L1D, 0x100000 + static_cast<Addr>(k) * 32, false,
                false);
  }
  EXPECT_EQ(p.confirmed_streams(), 2u);
}

TEST(StridePrefetcher, NeutralOnOtherHooks) {
  StridePrefetcher p(StridePrefetcherConfig{});
  p.set_active(true);
  EXPECT_EQ(p.service_miss(Level::L1D, 0, false), std::nullopt);
  EXPECT_EQ(p.fill_decision(Level::L1D, 0, Addr{64}), FillDecision::Fill);
}

CompositeSchemeConfig composite_cfg() {
  CompositeSchemeConfig cfg;
  cfg.bypass.mat.decay_interval = 0;
  return cfg;
}

TEST(CompositeScheme, VictimSideCapturesEvictions) {
  CompositeScheme s(composite_cfg());
  s.set_active(true);
  s.on_eviction(Level::L1D, 0x1000, true);
  auto aux = s.service_miss(Level::L1D, 0x1000, false);
  ASSERT_TRUE(aux.has_value());
  EXPECT_TRUE(aux->promote);  // came from the victim cache
}

TEST(CompositeScheme, BypassBufferHasPriority) {
  CompositeScheme s(composite_cfg());
  s.set_active(true);
  s.on_eviction(Level::L1D, 0x2000, false);  // in victim cache
  s.on_bypassed(Level::L1D, 0x2000, false);  // and in bypass buffer
  auto aux = s.service_miss(Level::L1D, 0x2000, false);
  ASSERT_TRUE(aux.has_value());
  EXPECT_FALSE(aux->promote);  // bypass buffer answered first
}

TEST(CompositeScheme, MatDrivesFillDecisions) {
  CompositeScheme s(composite_cfg());
  s.set_active(true);
  const Addr hot = 0, cold = 1 << 20;
  for (int i = 0; i < 64; ++i) s.on_access(Level::L1D, hot, false, true);
  EXPECT_EQ(s.fill_decision(Level::L1D, cold, hot), FillDecision::Bypass);
}

TEST(CompositeScheme, ExportsBothStatGroups) {
  CompositeScheme s(composite_cfg());
  s.set_active(true);
  StatSet out;
  s.export_stats(out);
  EXPECT_TRUE(out.has("bypass.bypasses"));
  EXPECT_TRUE(out.has("victim_l1.hits"));
}

TEST(SchemeFactory, BuildsAllKinds) {
  const core::MachineConfig m = core::base_machine();
  EXPECT_EQ(core::make_scheme(SchemeKind::Prefetch, m)->name(), "prefetch");
  EXPECT_EQ(core::make_scheme(SchemeKind::Composite, m)->name(),
            "bypass+victim");
}

TEST(SchemeFactory, AllSchemesRunTheRunner) {
  const auto& w = workloads::workload("TPC-D,Q6");
  for (SchemeKind k : {SchemeKind::Bypass, SchemeKind::Victim,
                       SchemeKind::Prefetch, SchemeKind::Composite}) {
    core::RunOptions opt;
    opt.scheme = k;
    const auto r = core::run_version(w, core::base_machine(),
                                     core::Version::PureHardware, opt);
    EXPECT_GT(r.cycles, 0u) << to_string(k);
  }
}

TEST(SchemeFactory, PrefetcherHelpsSequentialScans) {
  // Q6 is a sequential table scan: a stream prefetcher must not hurt it.
  const auto& w = workloads::workload("TPC-D,Q6");
  core::RunOptions opt;
  opt.scheme = SchemeKind::Prefetch;
  const auto base =
      core::run_version(w, core::base_machine(), core::Version::Base, opt);
  const auto pf = core::run_version(w, core::base_machine(),
                                    core::Version::PureHardware, opt);
  EXPECT_LE(pf.cycles, base.cycles + base.cycles / 100);
}

}  // namespace
}  // namespace selcache::hw
