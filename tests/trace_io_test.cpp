// Tests for trace capture, save/load and replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "codegen/trace_engine.h"
#include "codegen/trace_io.h"
#include "ir/builder.h"

namespace selcache::codegen {
namespace {

struct Rig {
  memsys::Hierarchy hierarchy;
  hw::Controller controller;
  cpu::TimingModel cpu;
  Rig() : hierarchy(memsys::HierarchyConfig{}), controller(nullptr),
          cpu(cpu::CpuConfig{}, hierarchy, controller) {}
};

ir::Program demo_program() {
  ir::ProgramBuilder b("t");
  const auto A = b.array("A", {64, 64});
  const auto P = b.chase_pool("P", 256, 32);
  b.toggle(true);
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)}),
          ir::store_array(A, {b.sub(j), b.sub(i)})},
         2);
  b.end_loop();
  b.end_loop();
  b.toggle(false);
  b.begin_loop("w", 0, 500);
  b.stmt({ir::chase(P)}, 1);
  b.end_loop();
  return b.finish();
}

Trace record_demo(Cycle* cycles_out = nullptr) {
  const ir::Program p = demo_program();
  Rig rig;
  Trace trace;
  rig.cpu.set_trace_sink(&trace);
  DataEnv env(p);
  TraceEngine eng(p, env, rig.cpu);
  eng.run();
  if (cycles_out != nullptr) *cycles_out = rig.cpu.cycles();
  return trace;
}

TEST(TraceIo, RecordsAllEventKinds) {
  const Trace t = record_demo();
  bool kinds[6] = {};
  for (const auto& e : t) kinds[static_cast<int>(e.kind)] = true;
  EXPECT_TRUE(kinds[static_cast<int>(TraceEvent::Kind::Compute)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceEvent::Kind::Load)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceEvent::Kind::Store)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceEvent::Kind::Branch)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceEvent::Kind::Toggle)]);
  EXPECT_TRUE(kinds[static_cast<int>(TraceEvent::Kind::Ifetch)]);
  // Dependent flags survive on the pointer-chase loads.
  bool dependent_seen = false;
  for (const auto& e : t)
    if (e.kind == TraceEvent::Kind::Load && (e.flags & 1)) dependent_seen = true;
  EXPECT_TRUE(dependent_seen);
}

TEST(TraceIo, ReplayMatchesOriginalTiming) {
  Cycle original = 0;
  const Trace t = record_demo(&original);

  Rig replay_rig;
  replay_trace(t, replay_rig.cpu);
  EXPECT_EQ(replay_rig.cpu.cycles(), original);
  EXPECT_GT(original, 0u);
}

TEST(TraceIo, ReplayOnDifferentMachineDiffers) {
  const Trace t = record_demo();
  memsys::HierarchyConfig slow;
  slow.mem.access_latency = 400;
  memsys::Hierarchy h(slow);
  hw::Controller ctl(nullptr);
  cpu::TimingModel cpu(cpu::CpuConfig{}, h, ctl);
  replay_trace(t, cpu);

  Rig base;
  replay_trace(t, base.cpu);
  EXPECT_GT(cpu.cycles(), base.cpu.cycles());
}

TEST(TraceIo, SaveLoadRoundtrip) {
  const Trace t = record_demo();
  const std::string path = ::testing::TempDir() + "/demo.sctrace";
  ASSERT_TRUE(save_trace(t, path));
  const Trace back = load_trace(path);
  ASSERT_EQ(back.size(), t.size());
  EXPECT_TRUE(std::equal(t.begin(), t.end(), back.begin()));
}

TEST(TraceIo, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.sctrace";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace";
  }
  EXPECT_THROW(load_trace(path), std::logic_error);
  EXPECT_THROW(load_trace(::testing::TempDir() + "/missing.sctrace"),
               std::logic_error);
}

TEST(TraceIo, SinkCanBeDetached) {
  Rig rig;
  Trace t;
  rig.cpu.set_trace_sink(&t);
  rig.cpu.compute(4);
  rig.cpu.set_trace_sink(nullptr);
  rig.cpu.compute(4);
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace selcache::codegen
