// Tests for the branch predictor and the interval timing model.
#include <gtest/gtest.h>

#include "cpu/timing_model.h"
#include "hw/victim_scheme.h"
#include "support/rng.h"

namespace selcache::cpu {
namespace {

TEST(Bimodal, LearnsAlwaysTaken) {
  BimodalPredictor p(64);
  for (int i = 0; i < 100; ++i) p.predict_and_train(0x40, true);
  // After warmup the always-taken branch is always predicted.
  EXPECT_GT(p.accuracy(), 0.95);
}

TEST(Bimodal, LoopExitMispredictsOncePerTrip) {
  BimodalPredictor p(64);
  std::uint64_t wrong = 0;
  for (int trip = 0; trip < 50; ++trip) {
    for (int i = 0; i < 9; ++i)
      if (!p.predict_and_train(0x80, true)) ++wrong;
    if (!p.predict_and_train(0x80, false)) ++wrong;  // exit
  }
  // Roughly one mispredict per loop exit once the counter saturates taken.
  EXPECT_LE(wrong, 60u);
  EXPECT_GE(wrong, 45u);
}

TEST(Bimodal, DistinctPcsDistinctCounters) {
  BimodalPredictor p(1024);
  for (int i = 0; i < 10; ++i) {
    p.predict_and_train(0x100, true);
    p.predict_and_train(0x200, false);
  }
  // Both learned their own direction: next predictions are correct.
  EXPECT_TRUE(p.predict_and_train(0x100, true));
  EXPECT_TRUE(p.predict_and_train(0x200, false));
}

struct Machine {
  memsys::Hierarchy hierarchy;
  hw::Controller controller;
  TimingModel cpu;

  explicit Machine(CpuConfig cfg = {})
      : hierarchy(memsys::HierarchyConfig{}),
        controller(nullptr),
        cpu(cfg, hierarchy, controller) {}
};

TEST(Timing, IssueWidthBoundsComputeThroughput) {
  Machine m;
  m.cpu.compute(400);
  EXPECT_EQ(m.cpu.cycles(), 100u);  // width 4
  EXPECT_EQ(m.cpu.instructions(), 400u);
}

TEST(Timing, IssueRoundsUp) {
  Machine m;
  m.cpu.compute(5);
  EXPECT_EQ(m.cpu.cycles(), 2u);
}

TEST(Timing, L1HitsAddNoStall) {
  Machine m;
  m.cpu.load(0);  // cold: stalls
  const Cycle after_cold = m.cpu.cycles();
  for (int i = 0; i < 100; ++i) m.cpu.load(0);
  // 100 more instructions at width 4 = 25 issue cycles, no extra stall.
  EXPECT_EQ(m.cpu.cycles(), after_cold + 25);
}

TEST(Timing, DependentMissesSerialize) {
  CpuConfig cfg;
  Machine dep(cfg), indep(cfg);
  // Two cold misses to far-apart lines.
  dep.cpu.load(0, /*dependent=*/true);
  dep.cpu.load(1 << 20, /*dependent=*/true);
  indep.cpu.load(0, false);
  indep.cpu.load(1 << 20, false);
  // The dependent chain must be strictly slower than the overlapped pair.
  EXPECT_GT(dep.cpu.cycles(), indep.cpu.cycles());
  EXPECT_EQ(dep.cpu.memory_stall_cycles(),
            dep.cpu.cycles() - 1);  // 2 instrs = 1 issue cycle
}

TEST(Timing, OverlapCapturesMlp) {
  Machine m;
  // A burst of independent misses: the first pays, the second overlaps at
  // the bandwidth floor.
  m.cpu.load(0 * (1 << 20), false);
  const Cycle first = m.cpu.memory_stall_cycles();
  m.cpu.load(1 * (1 << 20), false);
  const Cycle second = m.cpu.memory_stall_cycles() - first;
  EXPECT_GT(first, 50u);  // cold: TLB + memory exposed
  EXPECT_LE(second, m.cpu.config().overlap_bandwidth_cycles);
}

TEST(Timing, MispredictChargesPenalty) {
  Machine m;
  // Train not-taken, then surprise it.
  for (int i = 0; i < 8; ++i) m.cpu.branch(0x10, false);
  const Cycle before = m.cpu.branch_penalty_cycles();
  m.cpu.branch(0x10, true);
  EXPECT_EQ(m.cpu.branch_penalty_cycles() - before,
            m.cpu.config().mispredict_penalty);
}

TEST(Timing, ToggleCostsInstructionAndCycle) {
  Machine m;
  m.cpu.toggle(true);
  EXPECT_EQ(m.cpu.instructions(), 1u);
  EXPECT_GE(m.cpu.cycles(), 2u);  // 1 issue + 1 toggle stall
}

TEST(Timing, TogglesDriveController) {
  memsys::Hierarchy h((memsys::HierarchyConfig()));
  hw::VictimScheme scheme((hw::VictimSchemeConfig()));
  hw::Controller ctl(&scheme);
  TimingModel cpu(CpuConfig{}, h, ctl);
  cpu.toggle(true);
  EXPECT_TRUE(ctl.active());
  cpu.toggle(false);
  EXPECT_FALSE(ctl.active());
  EXPECT_EQ(ctl.toggles_executed(), 2u);
}

TEST(Timing, IFetchTouchesICache) {
  Machine m;
  m.cpu.touch_code(0x400000, 8);  // 32 bytes: one I-block
  EXPECT_EQ(m.hierarchy.l1i().demand_stats().accesses(), 1u);
  m.cpu.touch_code(0x400000, 16);  // 64 bytes: two blocks, first now hot
  EXPECT_EQ(m.hierarchy.l1i().demand_stats().hits, 1u);
}

TEST(Timing, IFetchCanBeDisabled) {
  CpuConfig cfg;
  cfg.model_ifetch = false;
  Machine m(cfg);
  m.cpu.touch_code(0x400000, 8);
  EXPECT_EQ(m.hierarchy.l1i().demand_stats().accesses(), 0u);
}

TEST(Timing, MonotoneInMemoryLatency) {
  // Property: raising memory latency cannot make any access trace faster.
  auto run = [](Cycle mem_lat) {
    memsys::HierarchyConfig hc;
    hc.mem.access_latency = mem_lat;
    memsys::Hierarchy h(hc);
    hw::Controller ctl(nullptr);
    TimingModel cpu(CpuConfig{}, h, ctl);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
      cpu.load(rng.below(1 << 24), rng.chance(0.2));
    return cpu.cycles();
  };
  const Cycle c100 = run(100);
  const Cycle c200 = run(200);
  const Cycle c400 = run(400);
  EXPECT_LT(c100, c200);
  EXPECT_LT(c200, c400);
}

TEST(Timing, StatsExportComplete) {
  Machine m;
  m.cpu.load(0);
  m.cpu.branch(4, true);
  StatSet s;
  m.cpu.export_stats(s);
  EXPECT_EQ(s.get("cpu.instructions"), 2u);
  EXPECT_TRUE(s.has("cpu.mem_stall_cycles"));
  EXPECT_TRUE(s.has("bpred.correct"));
}

}  // namespace
}  // namespace selcache::cpu
