// Tests for the phase-resolved observability layer: epoch recorder
// semantics, event stamping, JSONL/CSV serialization, timeline post-pass,
// and the end-to-end determinism contract (traced parallel sweeps are
// bit-identical to serial ones, and tracing never perturbs results).
#include <gtest/gtest.h>

#include "core/runner.h"
#include "ir/builder.h"
#include "trace/jsonl.h"
#include "trace/recorder.h"
#include "trace/timeline.h"

namespace selcache::trace {
namespace {

// ---------------------------------------------------------------------------
// Recorder unit semantics.

TEST(Recorder, EmitsDeltaEncodedEpochsAtBoundaries) {
  Recording out;
  MemorySink sink(out);
  Recorder rec(sink, 10);
  std::uint64_t live = 0;  // a component's cumulative counter
  rec.register_source([&live](StatSet& s) { s.add("x.count", live); });

  for (int i = 0; i < 25; ++i) {
    live += 2;
    rec.note_access();
  }
  rec.finish();  // flush the 5-access tail

  ASSERT_EQ(out.epochs.size(), 3u);
  EXPECT_EQ(out.epochs[0].index, 0u);
  EXPECT_EQ(out.epochs[0].start_access, 0u);
  EXPECT_EQ(out.epochs[0].end_access, 10u);
  EXPECT_EQ(out.epochs[1].start_access, 10u);
  EXPECT_EQ(out.epochs[1].end_access, 20u);
  EXPECT_EQ(out.epochs[2].end_access, 25u);  // partial tail epoch
  // Deltas are per-interval, not cumulative.
  EXPECT_EQ(out.epochs[0].deltas.get("x.count"), 20u);
  EXPECT_EQ(out.epochs[1].deltas.get("x.count"), 20u);
  EXPECT_EQ(out.epochs[2].deltas.get("x.count"), 10u);
}

TEST(Recorder, FinishWithoutTailEmitsNothingExtra) {
  Recording out;
  MemorySink sink(out);
  Recorder rec(sink, 5);
  rec.register_source([](StatSet& s) { s.add("x", 1); });
  for (int i = 0; i < 10; ++i) rec.note_access();
  rec.finish();  // exactly on a boundary: no empty tail epoch
  EXPECT_EQ(out.epochs.size(), 2u);
}

TEST(Recorder, FinishOnEmptyRunEmitsOneEpoch) {
  // A zero-access run (empty workload) still produces one epoch so drains
  // and end-of-run counters have somewhere to land.
  Recording out;
  MemorySink sink(out);
  Recorder rec(sink, 100);
  rec.finish();
  ASSERT_EQ(out.epochs.size(), 1u);
  EXPECT_EQ(out.epochs[0].end_access, 0u);
}

TEST(Recorder, StampsEventsWithAccessIndexAndEpoch) {
  Recording out;
  MemorySink sink(out);
  Recorder rec(sink, 10);
  rec.event({.kind = EventKind::Toggle, .on = true});
  for (int i = 0; i < 13; ++i) rec.note_access();
  rec.event({.kind = EventKind::MatDecay});
  rec.finish();

  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].access, 0u);
  EXPECT_EQ(out.events[0].epoch, 0u);
  EXPECT_EQ(out.events[1].access, 13u);
  EXPECT_EQ(out.events[1].epoch, 1u);
}

// ---------------------------------------------------------------------------
// Timeline post-pass.

Recording synthetic_recording() {
  Recording rec;
  EpochRecord e0;
  e0.index = 0;
  e0.start_access = 0;
  e0.end_access = 100;
  e0.deltas.counter("l1d.hits") = 90;
  e0.deltas.counter("l1d.misses") = 10;
  e0.deltas.counter("l1d.fills") = 6;
  e0.deltas.counter("bypass.bypasses") = 4;
  EpochRecord e1;
  e1.index = 1;
  e1.start_access = 100;
  e1.end_access = 200;
  e1.deltas.counter("l1d.hits") = 100;
  rec.epochs = {e0, e1};
  rec.events = {
      {.kind = EventKind::Toggle, .access = 5, .epoch = 0, .region = 2,
       .on = true},
      {.kind = EventKind::Toggle, .access = 150, .epoch = 1, .region = 2,
       .on = false},
  };
  return rec;
}

TEST(Timeline, ThreadsRegionAndHwStateAcrossEpochs) {
  const std::vector<TimelineRow> rows = build_timeline(synthetic_recording());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].hw_on);
  EXPECT_EQ(rows[0].region, 2);
  EXPECT_EQ(rows[0].toggles, 1u);
  EXPECT_DOUBLE_EQ(rows[0].l1d_miss_rate(), 0.1);
  EXPECT_DOUBLE_EQ(rows[0].bypass_fraction(), 0.4);
  // The OFF toggle in epoch 1 flips hw state; the last ON region sticks.
  EXPECT_FALSE(rows[1].hw_on);
  EXPECT_EQ(rows[1].region, 2);
  EXPECT_DOUBLE_EQ(rows[1].l1d_miss_rate(), 0.0);
}

TEST(Timeline, CsvQuotesWorkloadNamesContainingCommas) {
  const std::vector<TimelineRow> rows = build_timeline(synthetic_recording());
  const std::string csv = timeline_csv(rows, "TPC-D,Q3", "selective");
  // RFC-4180 quoting: the comma inside the name must not add a column.
  EXPECT_NE(csv.find("\"TPC-D,Q3\",selective,0,"), std::string::npos);
  const std::string header = timeline_csv_header();
  const auto cols = [](const std::string& line) {
    std::size_t n = 1;
    bool quoted = false;
    for (char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++n;
    }
    return n;
  };
  EXPECT_EQ(cols(csv.substr(0, csv.find('\n'))),
            cols(header.substr(0, header.find('\n'))));
}

TEST(Jsonl, EmitsOneTaggedLinePerRecord) {
  const Recording rec = synthetic_recording();
  const SimTag tag{.workload = "demo", .version = "selective"};
  const std::string ev = events_jsonl(rec, tag);
  const std::string me = metrics_jsonl(rec, tag);
  const auto lines = [](const std::string& s) {
    return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
  };
  EXPECT_EQ(lines(ev), rec.events.size());
  EXPECT_EQ(lines(me), rec.epochs.size());
  EXPECT_NE(ev.find("\"workload\":\"demo\""), std::string::npos);
  EXPECT_NE(ev.find("\"kind\":\"toggle\""), std::string::npos);
  EXPECT_NE(ev.find("\"region\":2"), std::string::npos);
  EXPECT_NE(me.find("\"l1d.misses\":10"), std::string::npos);
}

TEST(Jsonl, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny"), "x\\ny");
}

// ---------------------------------------------------------------------------
// End-to-end: traced simulations.

ir::Program mixed_demo() {
  ir::ProgramBuilder b("demo");
  const auto A = b.array("A", {96, 96});
  const auto H = b.chase_pool("H", 2048, 32);
  b.begin_loop("t", 0, 2);
  {
    const auto j = b.begin_loop("j", 0, 96);
    const auto i = b.begin_loop("i", 0, 96);
    b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)}),
            ir::store_array(A, {b.sub(i), b.sub(j)})},
           2);
    b.end_loop();
    b.end_loop();
  }
  b.begin_loop("w", 0, 3000);
  b.stmt({ir::chase(H)}, 2);
  b.end_loop();
  b.end_loop();
  return b.finish();
}

workloads::WorkloadInfo demo_info() {
  return {"demo", "synthetic", workloads::Category::Mixed, mixed_demo,
          1.0, 1.0, 1.0};
}

TEST(TracedRun, EpochDeltasSumToFinalAggregates) {
  core::RunOptions opt;
  opt.trace_epoch = 5000;
  Recording rec;
  const core::RunResult r = core::run_version(
      demo_info(), core::base_machine(), core::Version::Selective, opt, &rec);

  ASSERT_GT(rec.epochs.size(), 1u);  // the demo spans multiple epochs
  // Delta encoding must partition every cumulative counter exactly: the
  // per-epoch movements of each key sum back to the end-of-run aggregate.
  StatSet summed;
  for (const EpochRecord& er : rec.epochs)
    for (const auto& [key, value] : er.deltas.all())
      summed.counter(key) += value;
  for (const auto& [key, value] : r.stats.all())
    EXPECT_EQ(summed.get(key), value) << "counter " << key;
}

TEST(TracedRun, SelectiveToggleEventsCarryRegionProvenance) {
  core::RunOptions opt;
  opt.trace_epoch = 5000;
  Recording rec;
  core::run_version(demo_info(), core::base_machine(),
                    core::Version::Selective, opt, &rec);

  // First event is the synthetic force that documents the initial OFF state.
  ASSERT_FALSE(rec.events.empty());
  EXPECT_EQ(rec.events[0].kind, EventKind::Toggle);
  EXPECT_EQ(rec.events[0].access, 0u);
  EXPECT_FALSE(rec.events[0].on);
  EXPECT_EQ(rec.events[0].region, -1);
  // Instruction toggles inserted by region detection carry real region ids.
  bool saw_region_on = false;
  for (const Event& e : rec.events)
    if (e.kind == EventKind::Toggle && e.on && e.region >= 0)
      saw_region_on = true;
  EXPECT_TRUE(saw_region_on);
}

TEST(TracedRun, TracingDoesNotPerturbSimulationResults) {
  const core::RunOptions opt;
  const core::RunResult plain = core::run_version(
      demo_info(), core::base_machine(), core::Version::Combined, opt);
  Recording rec;
  const core::RunResult traced =
      core::run_version(demo_info(), core::base_machine(),
                        core::Version::Combined, opt, &rec);
  EXPECT_EQ(plain.cycles, traced.cycles);
  EXPECT_EQ(plain.instructions, traced.instructions);
  EXPECT_EQ(plain.toggles, traced.toggles);
  EXPECT_EQ(plain.stats.all(), traced.stats.all());
  EXPECT_FALSE(rec.epochs.empty());
}

TEST(TracedRun, ParallelTracesBitIdenticalToSerial) {
  core::RunOptions opt;
  opt.trace_epoch = 5000;
  std::vector<core::TraceCapture> serial, parallel;
  core::improvements_for(demo_info(), core::base_machine(), opt,
                         {.num_threads = 1}, &serial);
  core::improvements_for(demo_info(), core::base_machine(), opt,
                         {.num_threads = 4}, &parallel);

  ASSERT_EQ(serial.size(), core::kAllVersions.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].workload, parallel[i].workload);
    EXPECT_EQ(serial[i].version, parallel[i].version);
    EXPECT_EQ(serial[i].recording, parallel[i].recording) << "capture " << i;
  }
  // And the serialized form (what --trace-dir writes) is byte-identical.
  std::string a, b;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const SimTag tag{serial[i].workload,
                     core::to_string(serial[i].version)};
    a += events_jsonl(serial[i].recording, tag) +
         metrics_jsonl(serial[i].recording, tag);
    b += events_jsonl(parallel[i].recording, tag) +
         metrics_jsonl(parallel[i].recording, tag);
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace selcache::trace
