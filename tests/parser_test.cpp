// Tests for the IR text-format parser.
#include <gtest/gtest.h>

#include "codegen/trace_engine.h"
#include "hw/controller.h"
#include "ir/parser.h"
#include "ir/printer.h"

namespace selcache::ir {
namespace {

TEST(Parser, MinimalProgram) {
  const Program p = parse_program(R"(
    program tiny
    array A 16
    for i = 0 .. 16 {
      load A[i]
    }
  )");
  EXPECT_EQ(p.name(), "tiny");
  ASSERT_EQ(p.loops().size(), 1u);
  EXPECT_EQ(p.static_ref_count(), 1u);
}

TEST(Parser, TwoDimensionalAndAttributes) {
  const Program p = parse_program(R"(
    program attrs
    array A 8x16 elem=4 pad=2 col-major
    for i = 0 .. 8 {
      for j = 0 .. 16 {
        store A[i][j+1] ops=3
      }
    }
  )");
  const ArrayDecl& a = p.arrays()[0];
  EXPECT_EQ(a.dims, (std::vector<std::int64_t>{8, 16}));
  EXPECT_EQ(a.elem_size, 4u);
  EXPECT_EQ(a.pad_elems, 2);
  EXPECT_EQ(a.layout, Layout::ColMajor);
  // The statement carries ops=3 and a write ref.
  bool found = false;
  p.visit([&](const Node& n) {
    if (n.kind != NodeKind::Stmt) return;
    const auto& s = static_cast<const StmtNode&>(n).stmt;
    EXPECT_EQ(s.compute_ops, 3u);
    EXPECT_TRUE(s.refs[0].is_write);
    found = true;
  });
  EXPECT_TRUE(found);
}

TEST(Parser, AllReferenceForms) {
  const Program p = parse_program(R"(
    program refs
    array A 64
    array D 8x8
    index IP 64 permutation
    scalar s
    chase H 16 32
    records R 32 64
    for i = 0 .. 8 {
      for j = 1 .. 8 {
        stmt ld:A[IP[j]+2], ld:D[i*j][j], ld:D[i/j][i], ld:*H+8, ld:R[i].f16, st:s ops=2
      }
    }
  )");
  std::vector<const Reference*> refs;
  for (const auto& n : p.top()) collect_refs(*n, refs);
  ASSERT_EQ(refs.size(), 6u);
  EXPECT_TRUE(refs[3]->is_pointer());
  EXPECT_TRUE(refs[4]->is_field());
  EXPECT_TRUE(refs[5]->is_scalar());
  EXPECT_TRUE(refs[5]->is_write);
  // Round-trip through the printer mentions the indexed form.
  EXPECT_NE(print(p).find("IP[j]+2"), std::string::npos);
}

TEST(Parser, MarkersAndStepsAndAffineBounds) {
  const Program p = parse_program(R"(
    program m
    array A 64
    on
    for i = 0 .. 64 step 4 {
      for j = i .. 64 {
        load A[j]
      }
    }
    off
  )");
  EXPECT_EQ(p.top().size(), 3u);
  EXPECT_EQ(p.top()[0]->kind, NodeKind::Toggle);
  const auto& outer = static_cast<const LoopNode&>(*p.top()[1]);
  EXPECT_EQ(outer.step, 4);
  const auto& inner = static_cast<const LoopNode&>(*outer.body[0]);
  EXPECT_TRUE(inner.lower.uses(outer.var));  // triangular bound
}

TEST(Parser, ParsedProgramExecutes) {
  const Program p = parse_program(R"(
    program exec
    array A 32
    scalar acc
    for i = 0 .. 32 {
      stmt ld:A[i], st:acc ops=1
    }
  )");
  memsys::Hierarchy h((memsys::HierarchyConfig()));
  hw::Controller ctl(nullptr);
  cpu::TimingModel cpu(cpu::CpuConfig{}, h, ctl);
  codegen::DataEnv env(p);
  codegen::TraceEngine eng(p, env, cpu);
  eng.run();
  EXPECT_EQ(eng.loads_executed(), 32u);
  EXPECT_EQ(eng.stores_executed(), 32u);
}

TEST(Parser, CommentsAndBlanksIgnored) {
  const Program p = parse_program(R"(
    # leading comment
    program c   # trailing comment

    array A 8  # with sizes
    for i = 0 .. 8 {
      load A[i]   # body
    }
  )");
  EXPECT_EQ(p.static_ref_count(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      parse_program(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("array A 8\n", "program");
  expect_error("program x\nfor i = 0 .. 8 {\n", "unclosed");
  expect_error("program x\n}\n", "unmatched");
  expect_error("program x\narray A 8\nfor i = 0 .. 8 {\nload B[i]\n}\n",
               "unknown");
  expect_error("program x\nbogus directive\n", "unrecognized");
  expect_error("program x\narray A 8\nload A[q]\n", "unknown variable");
}

TEST(Parser, ZipfAndMeshContents) {
  const Program p = parse_program(R"(
    program z
    index Z 128 zipf 85 range=1000
    index M 128 mesh 16 range=500
    array G 1000
    for i = 0 .. 128 {
      load G[Z[i]]
      load G[M[i]]
    }
  )");
  EXPECT_EQ(p.arrays()[0].content, ArrayDecl::Content::Zipf);
  EXPECT_NEAR(p.arrays()[0].content_param, 0.85, 1e-9);
  EXPECT_EQ(p.arrays()[0].content_range, 1000);
  EXPECT_EQ(p.arrays()[1].content, ArrayDecl::Content::Mesh);
}

}  // namespace
}  // namespace selcache::ir
