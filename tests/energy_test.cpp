// Tests for the energy extension.
#include <gtest/gtest.h>

#include "core/energy.h"
#include "core/runner.h"

namespace selcache::core {
namespace {

TEST(Energy, CountsTranslateToComponents) {
  StatSet s;
  s.counter("l1d.hits") = 100;
  s.counter("l1d.misses") = 10;
  s.counter("l1i.hits") = 50;
  s.counter("l2.hits") = 8;
  s.counter("l2.misses") = 2;
  s.counter("mem.reads") = 2;
  s.counter("cpu.instructions") = 200;
  EnergyParams p;
  const EnergyBreakdown e = estimate_energy(s, p);
  EXPECT_DOUBLE_EQ(e.l1, p.l1_access * 160);
  EXPECT_DOUBLE_EQ(e.l2, p.l2_access * 10);
  EXPECT_DOUBLE_EQ(e.memory, p.memory_access * 2);
  EXPECT_DOUBLE_EQ(e.core, p.instruction * 200);
  EXPECT_DOUBLE_EQ(e.total(), e.l1 + e.l2 + e.memory + e.tlb + e.aux + e.core);
}

TEST(Energy, EmptyStatsZeroEnergy) {
  EXPECT_DOUBLE_EQ(estimate_energy(StatSet{}).total(), 0.0);
}

TEST(Energy, MissierRunCostsMore) {
  // Same workload, machine with a smaller L1: more L2/memory events, more
  // energy.
  const auto& w = workloads::workload("TPC-D,Q6");
  const RunResult big = run_version(w, larger_l1(), Version::Base);
  const RunResult base = run_version(w, base_machine(), Version::Base);
  EXPECT_GE(estimate_energy(base.stats).total(),
            estimate_energy(big.stats).total());
}

TEST(Energy, ChargesMatPerTableUpdateNotPerBypass) {
  // The MAT spends energy on every table update. bypass.bypasses (the old
  // proxy) can be zero for a well-cached phase even though the table was
  // touched millions of times — the charge must follow mat.touches.
  StatSet s;
  s.counter("mat.touches") = 1000000;
  s.counter("bypass.bypasses") = 0;
  const EnergyParams p;
  const EnergyBreakdown e = estimate_energy(s, p);
  EXPECT_DOUBLE_EQ(e.aux, p.mat_touch * 1e6);
}

TEST(Energy, CounterExclusivityHoldsInRealRuns) {
  // The energy sum charges each tier once per event that actually reached
  // it. That is only sound if the counters partition: an L1D miss is
  // serviced by EXACTLY ONE of the bypass buffer, the L1 victim cache, or
  // an L2 probe; an L2 miss by EXACTLY ONE of the L2 victim cache or
  // memory. Pin the two invariants on full runs of both hardware schemes.
  const auto& w = workloads::workload("Chaos");
  for (const hw::SchemeKind kind :
       {hw::SchemeKind::Bypass, hw::SchemeKind::Victim,
        hw::SchemeKind::Composite}) {
    RunOptions opt;
    opt.scheme = kind;
    const RunResult r =
        run_version(w, base_machine(), Version::Combined, opt);
    const StatSet& s = r.stats;
    EXPECT_EQ(s.get("l2.hits") + s.get("l2.misses"),
              s.get("l1d.misses") + s.get("l1i.misses") -
                  s.get("bypass_buffer.hits") - s.get("victim_l1.hits"))
        << "L2-probe exclusivity, scheme " << static_cast<int>(kind);
    EXPECT_EQ(s.get("mem.reads"),
              s.get("l2.misses") - s.get("victim_l2.hits"))
        << "memory exclusivity, scheme " << static_cast<int>(kind);
  }
}

TEST(Energy, SoftwareOptimizationSavesEnergy) {
  // Fewer memory-system events after locality optimization -> less energy.
  const auto& w = workloads::workload("Vpenta");
  const RunResult base = run_version(w, base_machine(), Version::Base);
  const RunResult sw = run_version(w, base_machine(), Version::PureSoftware);
  EXPECT_LT(estimate_energy(sw.stats).l2 + estimate_energy(sw.stats).memory,
            estimate_energy(base.stats).l2 +
                estimate_energy(base.stats).memory);
}

}  // namespace
}  // namespace selcache::core
