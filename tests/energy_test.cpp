// Tests for the energy extension.
#include <gtest/gtest.h>

#include "core/energy.h"
#include "core/runner.h"

namespace selcache::core {
namespace {

TEST(Energy, CountsTranslateToComponents) {
  StatSet s;
  s.counter("l1d.hits") = 100;
  s.counter("l1d.misses") = 10;
  s.counter("l1i.hits") = 50;
  s.counter("l2.hits") = 8;
  s.counter("l2.misses") = 2;
  s.counter("mem.reads") = 2;
  s.counter("cpu.instructions") = 200;
  EnergyParams p;
  const EnergyBreakdown e = estimate_energy(s, p);
  EXPECT_DOUBLE_EQ(e.l1, p.l1_access * 160);
  EXPECT_DOUBLE_EQ(e.l2, p.l2_access * 10);
  EXPECT_DOUBLE_EQ(e.memory, p.memory_access * 2);
  EXPECT_DOUBLE_EQ(e.core, p.instruction * 200);
  EXPECT_DOUBLE_EQ(e.total(), e.l1 + e.l2 + e.memory + e.tlb + e.aux + e.core);
}

TEST(Energy, EmptyStatsZeroEnergy) {
  EXPECT_DOUBLE_EQ(estimate_energy(StatSet{}).total(), 0.0);
}

TEST(Energy, MissierRunCostsMore) {
  // Same workload, machine with a smaller L1: more L2/memory events, more
  // energy.
  const auto& w = workloads::workload("TPC-D,Q6");
  const RunResult big = run_version(w, larger_l1(), Version::Base);
  const RunResult base = run_version(w, base_machine(), Version::Base);
  EXPECT_GE(estimate_energy(base.stats).total(),
            estimate_energy(big.stats).total());
}

TEST(Energy, SoftwareOptimizationSavesEnergy) {
  // Fewer memory-system events after locality optimization -> less energy.
  const auto& w = workloads::workload("Vpenta");
  const RunResult base = run_version(w, base_machine(), Version::Base);
  const RunResult sw = run_version(w, base_machine(), Version::PureSoftware);
  EXPECT_LT(estimate_energy(sw.stats).l2 + estimate_energy(sw.stats).memory,
            estimate_energy(base.stats).l2 +
                estimate_energy(base.stats).memory);
}

}  // namespace
}  // namespace selcache::core
