// Tests for loop fusion and distribution.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "transform/fusion.h"
#include "transform/pipeline.h"

namespace selcache::transform {
namespace {

using ir::load_array;
using ir::load_scalar;
using ir::LoopNode;
using ir::NodeKind;
using ir::Program;
using ir::ProgramBuilder;
using ir::StmtNode;
using ir::store_array;
using ir::store_scalar;

TEST(Fusion, MergesIndependentLoops) {
  ProgramBuilder b("f");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({store_array(A, {b.sub(i)})}, 1, "s1");
  b.end_loop();
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({store_array(B, {b.sub(j)})}, 1, "s2");
  b.end_loop();
  Program p = b.finish();

  EXPECT_EQ(apply_fusion(p), 1u);
  ASSERT_EQ(p.top().size(), 1u);
  const auto& fused = static_cast<const LoopNode&>(*p.top()[0]);
  ASSERT_EQ(fused.body.size(), 2u);
  // The second statement's references were renamed to the fused variable.
  const auto& s2 = static_cast<const StmtNode&>(*fused.body[1]).stmt;
  EXPECT_TRUE(s2.refs[0].uses(fused.var));
}

TEST(Fusion, ProducerConsumerSameIndexIsLegal) {
  // for i: A[i] = ...; for j: B[j] = A[j]  -> distance 0: fusable.
  ProgramBuilder b("f");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({store_array(A, {b.sub(i)})}, 1);
  b.end_loop();
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({load_array(A, {b.sub(j)}), store_array(B, {b.sub(j)})}, 1);
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_fusion(p), 1u);
}

TEST(Fusion, ForwardConsumptionIsIllegal) {
  // for i: A[i] = ...; for j: B[j] = A[j+1]  -> the consumer would read an
  // element the fused producer has not written yet.
  ProgramBuilder b("f");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({store_array(A, {b.sub(i)})}, 1);
  b.end_loop();
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({load_array(A, {b.sub(j, 1)}), store_array(B, {b.sub(j)})}, 1);
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_fusion(p), 0u);
  EXPECT_EQ(p.top().size(), 2u);
}

TEST(Fusion, BackwardConsumptionIsLegal) {
  // Reading A[j-1] after fusion still sees a value written in an earlier
  // iteration: legal.
  ProgramBuilder b("f");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({store_array(A, {b.sub(i)})}, 1);
  b.end_loop();
  const auto j = b.begin_loop("j", 1, 64);
  b.stmt({load_array(A, {b.sub(j, -1)}), store_array(B, {b.sub(j)})}, 1);
  b.end_loop();
  Program p = b.finish();
  // Bounds differ ([0,64) vs [1,64)): fusion must refuse on that alone.
  EXPECT_EQ(apply_fusion(p), 0u);

  // With matching bounds it becomes legal.
  ProgramBuilder b2("f2");
  const auto A2 = b2.array("A", {64});
  const auto B2 = b2.array("B", {64});
  const auto i2 = b2.begin_loop("i", 1, 64);
  b2.stmt({store_array(A2, {b2.sub(i2)})}, 1);
  b2.end_loop();
  const auto j2 = b2.begin_loop("j", 1, 64);
  b2.stmt({load_array(A2, {b2.sub(j2, -1)}), store_array(B2, {b2.sub(j2)})},
          1);
  b2.end_loop();
  Program p2 = b2.finish();
  EXPECT_EQ(apply_fusion(p2), 1u);
}

TEST(Fusion, ScalarCarriedAcrossLoopsBlocks) {
  // for i: s = A[i]; for j: B[j] = s  -> B must see the FINAL s.
  ProgramBuilder b("f");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto s = b.scalar("s");
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({load_array(A, {b.sub(i)}), store_scalar(s)}, 1);
  b.end_loop();
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({load_scalar(s), store_array(B, {b.sub(j)})}, 1);
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_fusion(p), 0u);
}

TEST(Fusion, PointerBodiesBlock) {
  ProgramBuilder b("f");
  const auto H = b.chase_pool("H", 16, 16);
  const auto A = b.array("A", {64});
  b.begin_loop("i", 0, 64);
  b.stmt({ir::chase(H)}, 1);
  b.end_loop();
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({store_array(A, {b.sub(j)})}, 1);
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_fusion(p), 0u);
}

TEST(Fusion, ChainsAcrossThreeLoops) {
  ProgramBuilder b("f");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto C = b.array("C", {64});
  for (int k = 0; k < 3; ++k) {
    const auto v = b.begin_loop("v" + std::to_string(k), 0, 64);
    b.stmt({store_array(k == 0 ? A : (k == 1 ? B : C), {b.sub(v)})}, 1);
    b.end_loop();
  }
  Program p = b.finish();
  EXPECT_EQ(apply_fusion(p), 2u);
  ASSERT_EQ(p.top().size(), 1u);
  EXPECT_EQ(static_cast<const LoopNode&>(*p.top()[0]).body.size(), 3u);
}

TEST(Fusion, ReducesExecutedInstructions) {
  // The fused program runs fewer loop-overhead instructions; the pipeline
  // picks this up automatically inside compiler regions.
  ProgramBuilder b("f");
  const auto A = b.array("A", {256});
  const auto B = b.array("B", {256});
  b.begin_loop("outer", 0, 4);
  const auto i = b.begin_loop("i", 0, 256);
  b.stmt({store_array(A, {b.sub(i)})}, 1);
  b.end_loop();
  const auto j = b.begin_loop("j", 0, 256);
  b.stmt({store_array(B, {b.sub(j)})}, 1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  OptimizeOptions opt;
  const OptimizeReport rep = optimize_program(p, opt);
  EXPECT_EQ(rep.fused, 1u);
}

TEST(Distribution, SplitsIndependentStatements) {
  ProgramBuilder b("d");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({store_array(A, {b.sub(i)})}, 1, "sa");
  b.stmt({store_array(B, {b.sub(i)})}, 1, "sb");
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_distribution(p, p.top(), 0), 2u);
  ASSERT_EQ(p.top().size(), 2u);
  for (const auto& n : p.top()) {
    ASSERT_EQ(n->kind, NodeKind::Loop);
    EXPECT_EQ(static_cast<const LoopNode&>(*n).body.size(), 1u);
  }
  // Distinct induction variables, both spanning [0,64).
  const auto& l0 = static_cast<const LoopNode&>(*p.top()[0]);
  const auto& l1 = static_cast<const LoopNode&>(*p.top()[1]);
  EXPECT_NE(l0.var, l1.var);
  EXPECT_EQ(l1.upper.constant_term(), 64);
}

TEST(Distribution, RefusesWhenStatementsCommunicate) {
  ProgramBuilder b("d");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({store_array(A, {b.sub(i)})}, 1);
  b.stmt({load_array(A, {b.sub(i)}), store_array(B, {b.sub(i)})}, 1);
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_distribution(p, p.top(), 0), 1u);
  EXPECT_EQ(p.top().size(), 1u);
}

TEST(Distribution, FusionInverts) {
  // distribute then fuse returns to one loop (for independent statements).
  ProgramBuilder b("d");
  const auto A = b.array("A", {64});
  const auto B = b.array("B", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({store_array(A, {b.sub(i)})}, 1);
  b.stmt({store_array(B, {b.sub(i)})}, 1);
  b.end_loop();
  Program p = b.finish();
  ASSERT_EQ(apply_distribution(p, p.top(), 0), 2u);
  EXPECT_EQ(apply_fusion(p), 1u);
  EXPECT_EQ(p.top().size(), 1u);
}

}  // namespace
}  // namespace selcache::transform
