// Tests for the loop-nest IR: affine expressions, subscripts, references,
// programs, builder, printer.
#include <gtest/gtest.h>

#include <algorithm>

#include "ir/builder.h"
#include "ir/printer.h"

namespace selcache::ir {
namespace {

TEST(AffineExpr, ConstructionAndEval) {
  const AffineExpr e = x(Var{0}) * 2 + x(Var{1}) - 3;
  const std::int64_t vals[] = {5, 7};
  EXPECT_EQ(e.eval(vals), 10 + 7 - 3);
  EXPECT_EQ(e.coeff(0), 2);
  EXPECT_EQ(e.coeff(1), 1);
  EXPECT_EQ(e.coeff(2), 0);
  EXPECT_EQ(e.constant_term(), -3);
}

TEST(AffineExpr, ConstantExpr) {
  const AffineExpr c = AffineExpr::constant(42);
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.uses(0));
  EXPECT_EQ(c.eval({}), 42);
}

TEST(AffineExpr, ZeroCoefficientsPruned) {
  const AffineExpr e = x(Var{0}) - x(Var{0});
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e, AffineExpr::constant(0));
}

TEST(AffineExpr, MultiplyByZero) {
  const AffineExpr e = (x(Var{0}) + 5) * 0;
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant_term(), 0);
}

TEST(AffineExpr, Substitution) {
  // i -> it + 4 applied to 2*i + j + 1 gives 2*it + j + 9.
  const AffineExpr e = 2 * x(Var{0}) + x(Var{1}) + 1;
  const AffineExpr sub = e.substituted(0, x(Var{2}) + 4);
  EXPECT_EQ(sub.coeff(0), 0);
  EXPECT_EQ(sub.coeff(2), 2);
  EXPECT_EQ(sub.constant_term(), 9);
}

TEST(AffineExpr, SubstitutionNoOpWhenAbsent) {
  const AffineExpr e = x(Var{1}) + 1;
  EXPECT_EQ(e.substituted(0, AffineExpr::constant(99)), e);
}

TEST(AffineExpr, Printing) {
  const std::vector<std::string> names = {"i", "j"};
  EXPECT_EQ((2 * x(Var{0}) + x(Var{1}) - 1).str(names), "2*i + j - 1");
  EXPECT_EQ((x(Var{0}) * -1).str(names), "-i");
  EXPECT_EQ(AffineExpr::constant(7).str(names), "7");
}

TEST(Subscript, KindsAndUses) {
  const Subscript aff = Subscript::affine(x(Var{0}));
  EXPECT_TRUE(aff.is_affine());
  EXPECT_TRUE(aff.uses(0));
  EXPECT_FALSE(aff.uses(1));

  const Subscript prod = Subscript::product(x(Var{0}), x(Var{1}));
  EXPECT_FALSE(prod.is_affine());
  EXPECT_TRUE(prod.uses(1));

  const Subscript idx = Subscript::indexed(0, x(Var{1}), 2);
  EXPECT_TRUE(idx.is_indexed());
  EXPECT_TRUE(idx.uses(1));
  EXPECT_FALSE(idx.uses(0));
}

TEST(Subscript, Substitution) {
  Subscript s = Subscript::product(x(Var{0}), x(Var{1}));
  s = s.substituted(0, x(Var{0}) + 1);
  const auto& p = std::get<Subscript::Product>(s.value);
  EXPECT_EQ(p.lhs.constant_term(), 1);
}

TEST(Reference, HelpersSetDirection) {
  EXPECT_FALSE(load_scalar(0).is_write);
  EXPECT_TRUE(store_scalar(0).is_write);
  EXPECT_TRUE(store_array(1, {Subscript::affine(x(Var{0}))}).is_write);
  EXPECT_TRUE(chase(0).is_pointer());
  EXPECT_TRUE(load_field(0, Subscript::affine(x(Var{0}))).is_field());
}

TEST(Reference, UsesLooksThroughSubscripts) {
  const Reference r = load_array(0, {Subscript::affine(x(Var{0})),
                                     Subscript::affine(x(Var{1}) + 2)});
  EXPECT_TRUE(r.uses(0));
  EXPECT_TRUE(r.uses(1));
  EXPECT_FALSE(r.uses(2));
  EXPECT_FALSE(chase(0).uses(0));
}

TEST(Builder, BuildsNestedStructure) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {8, 8});
  const auto i = b.begin_loop("i", 0, 8);
  const auto j = b.begin_loop("j", 0, 8);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)})}, 1, "s");
  b.end_loop();
  b.end_loop();
  Program p = b.finish();

  ASSERT_EQ(p.top().size(), 1u);
  ASSERT_EQ(p.top()[0]->kind, NodeKind::Loop);
  const auto& li = static_cast<const LoopNode&>(*p.top()[0]);
  ASSERT_EQ(li.body.size(), 1u);
  const auto& lj = static_cast<const LoopNode&>(*li.body[0]);
  ASSERT_EQ(lj.body.size(), 1u);
  EXPECT_EQ(lj.body[0]->kind, NodeKind::Stmt);
  EXPECT_EQ(p.var_names()[li.var], "i");
  EXPECT_EQ(p.var_names()[lj.var], "j");
}

TEST(Builder, RejectsUnbalancedLoops) {
  ProgramBuilder b("t");
  b.begin_loop("i", 0, 4);
  EXPECT_THROW(b.finish(), std::logic_error);
}

TEST(Builder, RejectsEndWithoutBegin) {
  ProgramBuilder b("t");
  EXPECT_THROW(b.end_loop(), std::logic_error);
}

TEST(Builder, AssignsDistinctCodeAddresses) {
  ProgramBuilder b("t");
  b.begin_loop("i", 0, 4);
  b.stmt({}, 2, "a");
  b.stmt({}, 2, "b");
  b.end_loop();
  Program p = b.finish();
  std::vector<std::uint64_t> addrs;
  p.visit([&](const Node& n) {
    if (n.kind == NodeKind::Stmt)
      addrs.push_back(static_cast<const StmtNode&>(n).stmt.code_addr);
    if (n.kind == NodeKind::Loop)
      addrs.push_back(static_cast<const LoopNode&>(n).code_addr);
  });
  ASSERT_EQ(addrs.size(), 3u);
  std::sort(addrs.begin(), addrs.end());
  EXPECT_EQ(std::unique(addrs.begin(), addrs.end()), addrs.end());
  EXPECT_GT(addrs.front(), 0u);
}

TEST(Program, CloneIsDeep) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {4});
  b.begin_loop("i", 0, 4);
  b.stmt({store_array(A, {b.sub(Var{0})})}, 1);
  b.end_loop();
  Program p = b.finish();
  Program q = p.clone();
  // Mutating the clone must not affect the original.
  static_cast<LoopNode&>(*q.top()[0]).step = 2;
  q.array(A).layout = Layout::ColMajor;
  EXPECT_EQ(static_cast<LoopNode&>(*p.top()[0]).step, 1);
  EXPECT_EQ(p.array(A).layout, Layout::RowMajor);
  EXPECT_EQ(q.loops().size(), p.loops().size());
}

TEST(Program, StaticRefCount) {
  ProgramBuilder b("t");
  const auto A = b.array("A", {4});
  b.begin_loop("i", 0, 4);
  b.stmt({load_array(A, {b.sub(Var{0})}), store_array(A, {b.sub(Var{0})})},
         1);
  b.end_loop();
  b.stmt({load_array(A, {b.csub(0)})}, 1);
  EXPECT_EQ(b.finish().static_ref_count(), 3u);
}

TEST(Program, PerfectNestDetection) {
  ProgramBuilder b("t");
  b.begin_loop("i", 0, 4);
  b.begin_loop("j", 0, 4);
  b.stmt({}, 1);
  b.end_loop();
  b.end_loop();
  b.begin_loop("k", 0, 4);
  b.stmt({}, 1);
  b.begin_loop("l", 0, 4);
  b.stmt({}, 1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  auto* perfect = static_cast<LoopNode*>(p.top()[0].get());
  auto* imperfect = static_cast<LoopNode*>(p.top()[1].get());
  EXPECT_TRUE(is_perfect_nest(*perfect));
  EXPECT_FALSE(is_perfect_nest(*imperfect));
  EXPECT_EQ(perfect_nest_band(*perfect).size(), 2u);
  EXPECT_EQ(perfect_nest_band(*imperfect).size(), 1u);
}

TEST(Program, ArrayFootprint) {
  ArrayDecl d;
  d.name = "A";
  d.dims = {10, 20};
  d.elem_size = 8;
  d.pad_elems = 5;
  EXPECT_EQ(d.elements(), 200);
  EXPECT_EQ(d.footprint_bytes(), (200 + 5) * 8);
}

TEST(Printer, RendersRefsAndMarkers) {
  ProgramBuilder b("demo");
  const auto A = b.array("A", {4, 4});
  const auto IP = b.index_array("IP", 4, ArrayDecl::Content::Permutation);
  const auto H = b.chase_pool("H", 8, 16);
  b.toggle(true);
  const auto i = b.begin_loop("i", 0, 4);
  b.stmt({load_array(A, {b.sub(i), Subscript::indexed(IP, x(i), 2)}),
          chase(H)},
         1, "s0");
  b.end_loop();
  b.toggle(false);
  Program p = b.finish();
  const std::string out = print(p);
  EXPECT_NE(out.find("HW_ON;"), std::string::npos);
  EXPECT_NE(out.find("HW_OFF;"), std::string::npos);
  EXPECT_NE(out.find("A[i][IP[i]+2]"), std::string::npos);
  EXPECT_NE(out.find("*H"), std::string::npos);
  EXPECT_NE(out.find("for i in [0, 4)"), std::string::npos);
}

}  // namespace
}  // namespace selcache::ir
