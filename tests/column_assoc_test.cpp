// Tests for the column-associative cache ([1]) plus a randomized oracle
// comparison: its miss rate must land between direct-mapped and 2-way
// set-associative LRU on conflict-prone traces.
#include <gtest/gtest.h>

#include <algorithm>

#include "memsys/cache.h"
#include "memsys/column_assoc.h"
#include "support/rng.h"

namespace selcache::memsys {
namespace {

TEST(ColumnAssoc, BasicHitMissAndLatency) {
  ColumnAssociativeCache c("ca", 256, 32, /*latency=*/1);
  auto r = c.access(0x0, false);
  EXPECT_FALSE(r.hit);
  r = c.access(0x0, false);
  EXPECT_TRUE(r.hit);
  EXPECT_FALSE(r.second_probe);
  EXPECT_EQ(r.latency, 1u);
}

TEST(ColumnAssoc, ConflictPairCoexists) {
  // Two blocks mapping to the same primary set both stay resident —
  // the defining improvement over direct-mapped.
  ColumnAssociativeCache c("ca", 256, 32);  // 8 sets
  const Addr a = 0, b = 8 * 32;             // same primary index
  c.access(a, false);
  c.access(b, false);  // rehashes a (or uses the alternate slot)
  EXPECT_TRUE(c.probe(a));
  EXPECT_TRUE(c.probe(b));
  // Ping-pong now hits (one side pays the second-probe cycle).
  std::uint64_t miss_before = c.misses();
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(c.access(a, false).hit);
    EXPECT_TRUE(c.access(b, false).hit);
  }
  EXPECT_EQ(c.misses(), miss_before);
}

TEST(ColumnAssoc, SecondProbeCostsExtraCycle) {
  ColumnAssociativeCache c("ca", 256, 32, 2);
  const Addr a = 0, b = 8 * 32;
  c.access(a, false);
  c.access(b, false);
  // One of the pair now lives in its alternate slot.
  const auto ra = c.access(a, false);
  const auto rb = c.access(b, false);
  EXPECT_TRUE(ra.hit);
  EXPECT_TRUE(rb.hit);
  EXPECT_TRUE(ra.second_probe || rb.second_probe);
  EXPECT_EQ(std::max(ra.latency, rb.latency), 3u);
}

TEST(ColumnAssoc, SwapPromotesHotBlock) {
  ColumnAssociativeCache c("ca", 256, 32);
  const Addr a = 0, b = 8 * 32;
  c.access(a, false);
  c.access(b, false);
  // Repeated access to the rehashed block swaps it to first-probe position.
  const Addr rehashed = c.access(a, false).second_probe ? a : b;
  c.access(rehashed, false);  // swap happened during this or previous access
  const auto again = c.access(rehashed, false);
  EXPECT_TRUE(again.hit);
  EXPECT_FALSE(again.second_probe);
}

TEST(ColumnAssoc, RejectsNonPow2) {
  EXPECT_THROW(ColumnAssociativeCache("x", 300, 32), std::logic_error);
}

double direct_mapped_missrate(const std::vector<Addr>& trace) {
  Cache c(CacheConfig{.name = "dm",
                      .size_bytes = 4096,
                      .assoc = 1,
                      .block_size = 32,
                      .latency = 1});
  for (Addr a : trace)
    if (!c.access(a, false)) c.fill(a, false);
  return c.demand_stats().miss_rate();
}

double two_way_missrate(const std::vector<Addr>& trace) {
  Cache c(CacheConfig{.name = "2w",
                      .size_bytes = 4096,
                      .assoc = 2,
                      .block_size = 32,
                      .latency = 1});
  for (Addr a : trace)
    if (!c.access(a, false)) c.fill(a, false);
  return c.demand_stats().miss_rate();
}

TEST(ColumnAssoc, OracleLandsBetweenDirectMappedAndTwoWay) {
  // Conflict-heavy trace: hot pairs plus background noise.
  Rng rng(17);
  std::vector<Addr> trace;
  for (int k = 0; k < 60000; ++k) {
    if (rng.chance(0.7)) {
      const Addr base = (rng.below(8)) * 32;   // 8 hot blocks
      trace.push_back(base + (rng.chance(0.5) ? 0 : 4096));  // conflict pair
    } else {
      trace.push_back(rng.below(1 << 18));
    }
  }
  ColumnAssociativeCache ca("ca", 4096, 32);
  for (Addr a : trace) ca.access(a, false);

  const double dm = direct_mapped_missrate(trace);
  const double w2 = two_way_missrate(trace);
  EXPECT_LT(ca.miss_rate(), dm);        // beats direct-mapped
  EXPECT_LT(ca.miss_rate(), w2 * 1.5);  // near 2-way
  EXPECT_GT(ca.second_probe_hits(), 0u);
}

// Randomized oracle for the plain set-associative cache: a cache with
// assoc == blocks must match an exact LRU reference model on any trace.
TEST(CacheOracle, FullyAssociativeMatchesReferenceLru) {
  constexpr std::uint32_t kBlocks = 16;
  Cache c(CacheConfig{.name = "fa",
                      .size_bytes = kBlocks * 32,
                      .assoc = kBlocks,
                      .block_size = 32,
                      .latency = 1});
  std::vector<Addr> lru;  // back = most recent (reference model)
  Rng rng(23);
  for (int k = 0; k < 50000; ++k) {
    const Addr frame = rng.below(64);
    const Addr addr = frame * 32;
    const bool model_hit =
        std::find(lru.begin(), lru.end(), frame) != lru.end();
    const bool cache_hit = c.access(addr, false);
    ASSERT_EQ(cache_hit, model_hit) << "at access " << k;
    if (!cache_hit) c.fill(addr, false);
    // Update reference LRU.
    if (model_hit) lru.erase(std::find(lru.begin(), lru.end(), frame));
    lru.push_back(frame);
    if (lru.size() > kBlocks) lru.erase(lru.begin());
  }
}

}  // namespace
}  // namespace selcache::memsys
