// Fault-injection subsystem: injector determinism, per-kind behavior,
// corrupted-state observability (integrity checks), controller degradation,
// watchdog enforcement, and the FailureReport serializations.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/runner.h"
#include "fault/injector.h"
#include "fault/report.h"
#include "hw/bypass_scheme.h"
#include "hw/controller.h"
#include "hw/mat.h"
#include "hw/sldt.h"
#include "trace/jsonl.h"
#include "trace/recorder.h"
#include "trace/sink.h"

namespace selcache::fault {
namespace {

FaultConfig cfg(FaultKind kind, double rate, std::uint64_t seed = 42) {
  FaultConfig c;
  c.kind = kind;
  c.rate = rate;
  c.seed = seed;
  return c;
}

TEST(TaskSeed, DeterministicAndSensitiveToEveryField) {
  const std::uint64_t s = task_seed(7, "Swim", 3, 0);
  EXPECT_EQ(s, task_seed(7, "Swim", 3, 0));
  std::set<std::uint64_t> distinct{s};
  distinct.insert(task_seed(8, "Swim", 3, 0));   // base seed
  distinct.insert(task_seed(7, "Chaos", 3, 0));  // workload
  distinct.insert(task_seed(7, "Swim", 4, 0));   // version index
  distinct.insert(task_seed(7, "Swim", 3, 1));   // retry attempt
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(Injector, SameConfigSameDecisionStream) {
  Injector a(cfg(FaultKind::CounterFlip, 0.5));
  Injector b(cfg(FaultKind::CounterFlip, 0.5));
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.corrupt_counter(5, 255, CounterSite::Mat),
              b.corrupt_counter(5, 255, CounterSite::Mat));
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_GT(a.injected(), 0u);
}

TEST(Injector, RateZeroOrKindNoneNeverFires) {
  Injector zero(cfg(FaultKind::CounterFlip, 0.0));
  Injector none(cfg(FaultKind::None, 1.0));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(zero.corrupt_counter(5, 255, CounterSite::Mat), std::nullopt);
    EXPECT_EQ(none.corrupt_counter(5, 255, CounterSite::Sldt), std::nullopt);
    EXPECT_FALSE(none.should_invalidate(BufferSite::BypassBuffer));
  }
  EXPECT_EQ(zero.injected(), 0u);
  EXPECT_EQ(none.injected(), 0u);
}

TEST(Injector, CounterResetZeroesAndFlipTouchesOneBit) {
  Injector reset(cfg(FaultKind::CounterReset, 1.0));
  EXPECT_EQ(reset.corrupt_counter(200, 255, CounterSite::Mat),
            std::optional<std::uint32_t>(0));

  Injector flip(cfg(FaultKind::CounterFlip, 1.0));
  bool exceeded_max = false;
  for (int i = 0; i < 64; ++i) {
    const auto raw = flip.corrupt_counter(255, 255, CounterSite::Mat);
    ASSERT_TRUE(raw.has_value());
    const std::uint32_t diff = *raw ^ 255u;
    EXPECT_NE(diff, 0u);
    EXPECT_EQ(diff & (diff - 1), 0u) << "exactly one bit flipped";
    if (*raw > 255u) exceeded_max = true;
  }
  // The guard bit guarantees flips can land above the ceiling, which is
  // what makes the corruption visible to integrity checks.
  EXPECT_TRUE(exceeded_max);
}

TEST(Injector, ToggleDropAndDupAtRateOne) {
  bool out[2];
  Injector drop(cfg(FaultKind::ToggleDrop, 1.0));
  EXPECT_EQ(drop.transform_toggle(true, out), 0);

  Injector dup(cfg(FaultKind::ToggleDup, 1.0));
  ASSERT_EQ(dup.transform_toggle(false, out), 2);
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(Injector, ToggleReorderHoldsThenDeliversSwappedPair) {
  bool out[2];
  Injector inj(cfg(FaultKind::ToggleReorder, 1.0));
  EXPECT_EQ(inj.transform_toggle(true, out), 0);  // ON held back
  ASSERT_EQ(inj.transform_toggle(false, out), 2);
  EXPECT_FALSE(out[0]);  // OFF arrives first
  EXPECT_TRUE(out[1]);   // held ON arrives second — pair swapped
}

TEST(Injector, PassthroughWhenKindDoesNotListen) {
  bool out[2];
  Injector inj(cfg(FaultKind::CounterFlip, 1.0));
  ASSERT_EQ(inj.transform_toggle(true, out), 1);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(inj.should_invalidate(BufferSite::L1Victim));
}

TEST(Injector, WatchdogThrowsPastBudgetRegardlessOfKind) {
  Injector inj(cfg(FaultKind::None, 0.0), /*watchdog_accesses=*/3);
  inj.on_access();
  inj.on_access();
  inj.on_access();
  EXPECT_THROW(inj.on_access(), WatchdogExceeded);
}

TEST(Injector, TaskCrashThrowsInjectedCrash) {
  Injector inj(cfg(FaultKind::TaskCrash, 1.0));
  EXPECT_THROW(inj.on_access(), InjectedCrash);
}

TEST(Injector, ExportStatsCarriesFaultCounters) {
  Injector inj(cfg(FaultKind::ToggleDrop, 1.0));
  bool out[2];
  inj.transform_toggle(true, out);
  StatSet s;
  inj.export_stats(s);
  EXPECT_EQ(s.get("fault.injected"), 1u);
  EXPECT_EQ(s.get("fault.toggles_dropped"), 1u);
  EXPECT_EQ(s.get("fault.counters_corrupted"), 0u);
}

// --- corrupted state must be observable through integrity checks ---------

TEST(Integrity, MatDetectsInjectedCounterCorruption) {
  hw::Mat mat(hw::MatConfig{.entries = 16, .macro_block_size = 1024,
                            .counter_max = 255, .decay_interval = 0});
  EXPECT_TRUE(mat.check_integrity());
  Injector inj(cfg(FaultKind::CounterFlip, 1.0));
  mat.set_fault(&inj);
  // Rate-1 flips with a guard bit: within a few dozen touches one lands
  // above counter_max (deterministic for this seed).
  for (int i = 0; i < 64 && mat.check_integrity(); ++i) mat.touch(0x1000);
  EXPECT_FALSE(mat.check_integrity());
}

TEST(Integrity, SldtDetectsInjectedCounterCorruption) {
  hw::Sldt sldt(hw::SldtConfig{});
  EXPECT_TRUE(sldt.check_integrity());
  Injector inj(cfg(FaultKind::CounterFlip, 1.0));
  sldt.set_fault(&inj);
  for (int i = 0; i < 256 && sldt.check_integrity(); ++i)
    sldt.note(static_cast<Addr>(i) * 32);
  EXPECT_FALSE(sldt.check_integrity());
}

// --- controller degradation ----------------------------------------------

hw::BypassSchemeConfig test_bypass_config() {
  hw::BypassSchemeConfig c;
  c.mat.decay_interval = 0;
  return c;
}

TEST(Degradation, FaultBudgetDemotesToSafeMode) {
  hw::BypassScheme scheme(test_bypass_config());
  hw::Controller ctl(&scheme);
  Injector inj(cfg(FaultKind::ToggleDrop, 1.0));
  ctl.set_fault(&inj);
  ctl.set_degrade_policy(hw::DegradePolicy{.fault_budget = 2});
  ctl.force(true);

  ctl.toggle(true);   // dropped, injected = 1
  ctl.toggle(false);  // dropped, injected = 2
  EXPECT_FALSE(ctl.degraded());
  ctl.toggle(true);  // injected = 3 > budget -> demote
  EXPECT_TRUE(ctl.degraded());
  EXPECT_EQ(ctl.degrade_reason(), hw::DegradeReason::FaultBudget);
  EXPECT_EQ(ctl.degradations(), 1u);
  EXPECT_FALSE(scheme.active()) << "safe mode forces the scheme OFF";

  // Sticky: markers and force(true) cannot re-enable a degraded run.
  ctl.toggle(true);
  EXPECT_FALSE(scheme.active());
  ctl.force(true);
  EXPECT_FALSE(scheme.active());
  EXPECT_EQ(ctl.degradations(), 1u) << "demotion happens exactly once";
}

struct BrokenScheme final : memsys::HwScheme {
  std::string_view name() const override { return "broken"; }
  bool check_integrity() const override { return false; }
  void on_access(memsys::Level, Addr, bool, bool) override {}
  std::optional<AuxHit> service_miss(memsys::Level, Addr, bool) override {
    return std::nullopt;
  }
  memsys::FillDecision fill_decision(memsys::Level, Addr,
                                     std::optional<Addr>) override {
    return memsys::FillDecision::Fill;
  }
  void on_bypassed(memsys::Level, Addr, bool) override {}
  void on_eviction(memsys::Level, Addr, bool) override {}
  std::uint32_t fetch_width(memsys::Level, Addr) override { return 1; }
  void export_stats(StatSet&) const override {}
};

TEST(Degradation, PeriodicIntegrityCheckDemotes) {
  BrokenScheme scheme;
  hw::Controller ctl(&scheme);
  ctl.set_degrade_policy(
      hw::DegradePolicy{.integrity_checks = true, .check_interval = 4});
  ctl.force(true);
  for (int i = 0; i < 3; ++i) ctl.tick();
  EXPECT_FALSE(ctl.degraded());
  ctl.tick();  // 4th access -> periodic check -> integrity fails
  EXPECT_TRUE(ctl.degraded());
  EXPECT_EQ(ctl.degrade_reason(), hw::DegradeReason::IntegrityCheck);
  EXPECT_FALSE(scheme.active());
}

TEST(Degradation, EmitsStructuredTraceEvent) {
  BrokenScheme scheme;
  hw::Controller ctl(&scheme);
  trace::Recording rec;
  trace::MemorySink sink(rec);
  trace::Recorder recorder(sink, 1000);
  ctl.set_trace(&recorder);
  ctl.set_degrade_policy(
      hw::DegradePolicy{.integrity_checks = true, .check_interval = 1});
  ctl.tick();
  ASSERT_TRUE(ctl.degraded());

  ASSERT_FALSE(rec.events.empty());
  const trace::Event& e = rec.events.back();
  EXPECT_EQ(e.kind, trace::EventKind::Degradation);
  EXPECT_EQ(e.addr,
            static_cast<Addr>(hw::DegradeReason::IntegrityCheck));
  const std::string line =
      trace::events_jsonl(rec, {.workload = "w", .version = "v"});
  EXPECT_NE(line.find("\"kind\":\"degradation\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"integrity\""), std::string::npos);
}

TEST(Degradation, StatKeysOnlyExistWhenPolicyArmed) {
  hw::BypassScheme scheme(test_bypass_config());
  hw::Controller plain(&scheme);
  StatSet s;
  plain.export_stats(s);
  EXPECT_EQ(s.all().count("controller.degradations"), 0u);
  EXPECT_EQ(s.all().count("controller.safe_mode"), 0u);

  hw::Controller armed(&scheme);
  armed.set_degrade_policy(hw::DegradePolicy{.fault_budget = 1});
  StatSet t;
  armed.export_stats(t);
  EXPECT_EQ(t.all().count("controller.degradations"), 1u);
  EXPECT_EQ(t.all().count("controller.safe_mode"), 1u);
}

// --- end-to-end run hooks ------------------------------------------------

TEST(RunVersion, WatchdogKillsRunawaySimulation) {
  const core::MachineConfig m = core::base_machine();
  const auto& w = workloads::all_workloads().front();
  core::RunOptions opt;
  opt.watchdog_accesses = 100;
  EXPECT_THROW(core::run_version(w, m, core::Version::Base, opt),
               WatchdogExceeded);
}

TEST(RunVersion, FaultCampaignReportsInjections) {
  const core::MachineConfig m = core::base_machine();
  const auto& w = workloads::all_workloads().front();
  core::RunOptions opt;
  opt.fault = cfg(FaultKind::CounterFlip, 0.01);
  opt.degrade = hw::DegradePolicy{.integrity_checks = true,
                                  .check_interval = 256};
  const core::RunResult r =
      core::run_version(w, m, core::Version::Selective, opt);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_EQ(r.stats.get("fault.injected"), r.faults_injected);
  // Identical campaign, identical result: the whole model is seed-driven.
  const core::RunResult again =
      core::run_version(w, m, core::Version::Selective, opt);
  EXPECT_EQ(r.cycles, again.cycles);
  EXPECT_EQ(r.faults_injected, again.faults_injected);
  EXPECT_EQ(r.degradations, again.degradations);
}

TEST(RunVersion, UnfaultedRunExportsNoFaultKeys) {
  const core::MachineConfig m = core::base_machine();
  const auto& w = workloads::all_workloads().front();
  const core::RunResult r =
      core::run_version(w, m, core::Version::Selective, core::RunOptions{});
  for (const auto& [key, value] : r.stats.all()) {
    EXPECT_EQ(key.rfind("fault.", 0), std::string::npos) << key;
    EXPECT_NE(key, "controller.degradations");
    EXPECT_NE(key, "controller.safe_mode");
  }
}

// --- FailureReport serializations ----------------------------------------

FailureReport sample_report() {
  FailureReport r;
  r.cells.push_back({"Swim", "base", CellOutcome::Status::Ok, 1, 11, 0, 0,
                     ""});
  r.cells.push_back({"Swim", "selective", CellOutcome::Status::Degraded, 1,
                     22, 9, 1, ""});
  r.cells.push_back({"Chaos", "combined", CellOutcome::Status::Failed, 3, 33,
                     0, 0, "boom, with \"quotes\""});
  return r;
}

TEST(FailureReportFormat, CountsAndTable) {
  const FailureReport r = sample_report();
  EXPECT_EQ(r.failed_cells(), 1u);
  EXPECT_EQ(r.degraded_cells(), 1u);
  const std::string t = r.table();
  EXPECT_NE(t.find("Chaos"), std::string::npos);
  EXPECT_NE(t.find("failed"), std::string::npos);
  EXPECT_NE(t.find("degraded"), std::string::npos);
}

TEST(FailureReportFormat, CsvEscapesAndRoundTripsFields) {
  const std::string csv = sample_report().csv();
  EXPECT_EQ(csv.rfind("workload,version,status,attempts,fault_seed,"
                      "faults_injected,degradations,error\n", 0), 0u);
  EXPECT_NE(csv.find("Swim,selective,degraded,1,22,9,1,"), std::string::npos);
  // RFC 4180: embedded comma and quotes force a quoted, doubled field.
  EXPECT_NE(csv.find("\"boom, with \"\"quotes\"\"\""), std::string::npos);
}

TEST(FailureReportFormat, JsonlOneObjectPerCell) {
  const std::string j = sample_report().jsonl();
  EXPECT_NE(j.find("\"workload\":\"Chaos\""), std::string::npos);
  EXPECT_NE(j.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(j.find("\"error\":\"boom, with \\\"quotes\\\"\""),
            std::string::npos);
  std::size_t lines = 0;
  for (char c : j) lines += c == '\n';
  EXPECT_EQ(lines, 3u);
}

}  // namespace
}  // namespace selcache::fault
