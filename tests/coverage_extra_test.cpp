// Additional coverage: non-affine subscript evaluation, hierarchy+scheme
// integration paths, port exhaustion in the timing model, CSV export, and
// code-product equivalences.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "codegen/trace_engine.h"
#include "analysis/marker_elimination.h"
#include "core/report.h"
#include "core/runner.h"
#include "hw/bypass_scheme.h"
#include "hw/victim_scheme.h"
#include "ir/builder.h"
#include "ir/printer.h"

namespace selcache {
namespace {

using ir::load_array;
using ir::ProgramBuilder;
using ir::store_array;
using ir::Subscript;
using ir::x;

struct Rig {
  memsys::Hierarchy hierarchy;
  hw::Controller controller;
  cpu::TimingModel cpu;
  explicit Rig(memsys::HierarchyConfig cfg = {})
      : hierarchy(cfg), controller(nullptr),
        cpu(cpu::CpuConfig{}, hierarchy, controller) {}
};

TEST(EngineSubscripts, ProductAndDivideEvaluate) {
  ProgramBuilder b("pd");
  const auto D = b.array("D", {64, 64});
  const auto i = b.begin_loop("i", 1, 5);
  const auto j = b.begin_loop("j", 1, 5);
  b.stmt({load_array(D, {Subscript::product(x(i), x(j)),
                         Subscript::divide(x(i), x(j))})},
         1);
  b.end_loop();
  b.end_loop();
  const ir::Program p = b.finish();
  Rig rig;
  codegen::DataEnv env(p);
  codegen::TraceEngine eng(p, env, rig.cpu);
  eng.run();
  EXPECT_EQ(eng.loads_executed(), 16u);
  // Spot-check the address math: i=2, j=3 touches D[6][0].
  const std::int64_t idx[] = {6, 0};
  EXPECT_GE(env.array_layout(D).element_addr(idx), env.array_layout(D).base());
}

TEST(EngineSubscripts, DivideByZeroFallsBackToNumerator) {
  ProgramBuilder b("dz");
  const auto D = b.array("D", {64});
  const auto i = b.begin_loop("i", 0, 4);  // j=0 in the divisor
  b.stmt({load_array(D, {Subscript::divide(x(i) + 8,
                                           ir::AffineExpr::constant(0))})},
         1);
  b.end_loop();
  const ir::Program p = b.finish();
  Rig rig;
  codegen::DataEnv env(p);
  codegen::TraceEngine eng(p, env, rig.cpu);
  EXPECT_NO_THROW(eng.run());
  EXPECT_EQ(eng.loads_executed(), 4u);
}

TEST(EngineSubscripts, IndexedFieldIsDependentLoad) {
  // A record selected through an index array serializes like a gather.
  ProgramBuilder b("fld");
  const auto R = b.record_pool("R", 1024, 64);
  const auto IP = b.index_array("IP", 256, ir::ArrayDecl::Content::Uniform,
                                0, 1024);
  const auto i = b.begin_loop("i", 0, 256);
  b.stmt({ir::load_field(R, Subscript::indexed(IP, x(i)), 8)}, 1);
  b.end_loop();
  const ir::Program p = b.finish();
  Rig rig;
  codegen::DataEnv env(p);
  codegen::TraceEngine eng(p, env, rig.cpu);
  eng.run();
  EXPECT_EQ(eng.loads_executed(), 512u);  // index load + gather per iter
  StatSet s;
  rig.cpu.export_stats(s);
  EXPECT_GT(s.get("cpu.serialized_misses"), 0u);
}

TEST(HierarchyIntegration, BypassedBlockServedFromBufferEndToEnd) {
  memsys::HierarchyConfig cfg;
  memsys::Hierarchy h(cfg);
  hw::BypassSchemeConfig bcfg;
  bcfg.mat.decay_interval = 0;
  hw::BypassScheme scheme(bcfg);
  h.attach_hw(&scheme);
  scheme.set_active(true);

  // Make one 32 KB region hot so its macro-blocks dominate the MAT, with
  // enough pressure that a cold fill must evict a hot block.
  for (int round = 0; round < 64; ++round)
    for (Addr a = 0; a < 32 * 1024; a += 32)
      h.access(a, memsys::AccessKind::Load);
  // A cold block mapping onto the hot set: its fill should be bypassed.
  const Addr cold = 1 << 20;
  h.access(cold, memsys::AccessKind::Load);
  EXPECT_GT(scheme.bypasses(), 0u);
  EXPECT_FALSE(h.l1d().probe(cold));      // not in the cache...
  EXPECT_TRUE(scheme.buffer().probe(cold));  // ...but in the buffer
  // Re-access: served without another L2 trip.
  const auto l2_before = h.l2().demand_stats().accesses();
  h.access(cold + 8, memsys::AccessKind::Load);
  EXPECT_EQ(h.l2().demand_stats().accesses(), l2_before);
}

TEST(HierarchyIntegration, VictimSwapEndToEnd) {
  memsys::HierarchyConfig cfg;
  cfg.l1d.size_bytes = 1024;
  cfg.l1d.assoc = 1;  // 32 sets, direct-mapped: easy conflicts
  memsys::Hierarchy h(cfg);
  hw::VictimScheme scheme(hw::VictimSchemeConfig{.l1_entries = 8,
                                                 .l2_entries = 8,
                                                 .l1_block_size = 32,
                                                 .l2_block_size = 128,
                                                 .swap_latency = 1});
  h.attach_hw(&scheme);
  scheme.set_active(true);

  const Addr a = 0, b = 1024;  // same L1 set
  h.access(a, memsys::AccessKind::Load);
  h.access(b, memsys::AccessKind::Load);  // evicts a into the victim cache
  const auto l2_before = h.l2().demand_stats().accesses();
  const Cycle lat = h.access(a, memsys::AccessKind::Load);  // victim swap
  EXPECT_EQ(h.l2().demand_stats().accesses(), l2_before);  // no L2 trip
  EXPECT_EQ(lat, cfg.l1d.latency + 1);                     // swap_latency
  EXPECT_TRUE(h.l1d().probe(a));
  EXPECT_TRUE(scheme.l1_victims().probe(b));  // b displaced into the victims
}

TEST(Timing, PortExhaustionSerializes) {
  Rig rig;
  // Three far-apart independent misses: ports=2, so the third waits.
  rig.cpu.load(0 << 22);
  rig.cpu.load(1 << 22);
  const Cycle before = rig.cpu.memory_stall_cycles();
  rig.cpu.load(2 << 22);
  // The third miss pays more than the bandwidth floor (it had to drain).
  EXPECT_GT(rig.cpu.memory_stall_cycles() - before,
            rig.cpu.config().overlap_bandwidth_cycles);
}

TEST(Report, CsvHasHeaderAndAllRows) {
  std::vector<core::ImprovementRow> rows(2);
  rows[0].benchmark = "A";
  rows[1].benchmark = "B";
  for (auto& r : rows)
    for (core::Version v : core::kEvaluatedVersions) r.pct[v] = 1.5;
  const std::string csv = core::figure_csv(rows);
  EXPECT_NE(csv.find("benchmark,category"), std::string::npos);
  EXPECT_NE(csv.find("A,"), std::string::npos);
  EXPECT_NE(csv.find("B,"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Report, WriteTextFileRoundtrip) {
  const std::string path = ::testing::TempDir() + "/selcache_csv_test.csv";
  EXPECT_TRUE(core::write_text_file(path, "x,y\n1,2\n"));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, "x,y\n1,2\n");
}

TEST(CodeProducts, CombinedAndPureSoftwareShareCode) {
  // §4.4: "the pure software approach, the combined approach, and the
  // selective approach all use the same optimized code" (selective adds
  // only markers).
  const auto& w = workloads::workload("Chaos");
  const ir::Program base = w.build();
  transform::OptimizeOptions opt;
  const ir::Program sw =
      core::prepare_program(base, core::Version::PureSoftware, opt);
  const ir::Program comb =
      core::prepare_program(base, core::Version::Combined, opt);
  const ir::Program sel =
      core::prepare_program(base, core::Version::Selective, opt);
  EXPECT_EQ(ir::print(sw), ir::print(comb));
  EXPECT_EQ(sw.static_ref_count(), sel.static_ref_count());
  EXPECT_GT(analysis::count_markers(sel), 0u);
}

TEST(Printer, ProductDivideForms) {
  ProgramBuilder b("pf");
  const auto D = b.array("D", {8, 8});
  const auto i = b.begin_loop("i", 0, 8);
  b.stmt({load_array(D, {Subscript::product(x(i), x(i)),
                         Subscript::divide(x(i), x(i) + 1)})},
         1);
  b.end_loop();
  const std::string out = ir::print(b.finish());
  EXPECT_NE(out.find("(i)*(i)"), std::string::npos);
  EXPECT_NE(out.find("(i)/(i + 1)"), std::string::npos);
}

}  // namespace
}  // namespace selcache
