// Tests for the core framework: machine configurations (Table 1 + §5
// variations), version preparation (§4.4 code products), scheme factory,
// and the experiment runner.
#include <gtest/gtest.h>

#include "analysis/marker_elimination.h"
#include "core/report.h"
#include "core/runner.h"
#include "ir/builder.h"

namespace selcache::core {
namespace {

TEST(MachineConfig, Table1Baseline) {
  const MachineConfig m = base_machine();
  EXPECT_EQ(m.cpu.issue_width, 4u);
  EXPECT_EQ(m.hierarchy.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(m.hierarchy.l1d.assoc, 4u);
  EXPECT_EQ(m.hierarchy.l1d.block_size, 32u);
  EXPECT_EQ(m.hierarchy.l1d.latency, 2u);
  EXPECT_EQ(m.hierarchy.l2.size_bytes, 512u * 1024);
  EXPECT_EQ(m.hierarchy.l2.block_size, 128u);
  EXPECT_EQ(m.hierarchy.l2.latency, 10u);
  EXPECT_EQ(m.hierarchy.mem.access_latency, 100u);
  EXPECT_EQ(m.hierarchy.mem.bus_width, 8u);
  EXPECT_EQ(m.cpu.memory_ports, 2u);
  EXPECT_EQ(m.cpu.ruu_entries, 64u);
  EXPECT_EQ(m.cpu.lsq_entries, 32u);
  EXPECT_EQ(m.cpu.bimodal_entries, 2048u);
}

TEST(MachineConfig, VariationsDifferOnlyWhereStated) {
  EXPECT_EQ(higher_mem_latency().hierarchy.mem.access_latency, 200u);
  EXPECT_EQ(larger_l2().hierarchy.l2.size_bytes, 1024u * 1024);
  EXPECT_EQ(larger_l1().hierarchy.l1d.size_bytes, 64u * 1024);
  EXPECT_EQ(higher_l2_assoc().hierarchy.l2.assoc, 8u);
  EXPECT_EQ(higher_l1_assoc().hierarchy.l1d.assoc, 8u);
  // Unrelated parameters stay at Table 1 values.
  EXPECT_EQ(higher_mem_latency().hierarchy.l2.size_bytes, 512u * 1024);
  EXPECT_EQ(larger_l2().hierarchy.mem.access_latency, 100u);
  EXPECT_EQ(all_machines().size(), 6u);
}

TEST(Versions, NamesAndHwPolicy) {
  EXPECT_STREQ(to_string(Version::Selective), "Selective");
  EXPECT_TRUE(hw_always_on(Version::PureHardware));
  EXPECT_TRUE(hw_always_on(Version::Combined));
  EXPECT_FALSE(hw_always_on(Version::Selective));
  EXPECT_FALSE(hw_always_on(Version::PureSoftware));
}

TEST(Versions, MakeSchemeKinds) {
  const MachineConfig m = base_machine();
  EXPECT_EQ(make_scheme(hw::SchemeKind::None, m), nullptr);
  auto bypass = make_scheme(hw::SchemeKind::Bypass, m);
  ASSERT_NE(bypass, nullptr);
  EXPECT_EQ(bypass->name(), "bypass");
  auto victim = make_scheme(hw::SchemeKind::Victim, m);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->name(), "victim");
}

ir::Program mixed_demo() {
  ir::ProgramBuilder b("demo");
  const auto A = b.array("A", {96, 96});
  const auto H = b.chase_pool("H", 2048, 32);
  b.begin_loop("t", 0, 2);
  {
    const auto j = b.begin_loop("j", 0, 96);
    const auto i = b.begin_loop("i", 0, 96);
    b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)}),
            ir::store_array(A, {b.sub(i), b.sub(j)})},
           2);
    b.end_loop();
    b.end_loop();
  }
  b.begin_loop("w", 0, 3000);
  b.stmt({ir::chase(H)}, 2);
  b.end_loop();
  b.end_loop();
  return b.finish();
}

TEST(Versions, PrepareProducesThreeCodeProducts) {
  const ir::Program base = mixed_demo();
  transform::OptimizeOptions opt;

  ir::Program base_code = prepare_program(base, Version::Base, opt);
  ir::Program hw_code = prepare_program(base, Version::PureHardware, opt);
  ir::Program sw_code = prepare_program(base, Version::PureSoftware, opt);
  ir::Program sel_code = prepare_program(base, Version::Selective, opt);

  // Base and PureHardware share the untouched code: no markers.
  EXPECT_EQ(analysis::count_markers(base_code), 0u);
  EXPECT_EQ(analysis::count_markers(hw_code), 0u);
  // PureSoftware is optimized but unmarked; Selective adds ON/OFF.
  EXPECT_EQ(analysis::count_markers(sw_code), 0u);
  EXPECT_GE(analysis::count_markers(sel_code), 2u);
  // The original is never mutated.
  EXPECT_EQ(analysis::count_markers(base), 0u);
}

workloads::WorkloadInfo demo_info() {
  return {"demo", "synthetic", workloads::Category::Mixed, mixed_demo,
          1.0, 1.0, 1.0};
}

TEST(Runner, BaseRunProducesCyclesAndRates) {
  const RunResult r =
      run_version(demo_info(), base_machine(), Version::Base);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.l1_miss_rate, 0.0);
  EXPECT_EQ(r.toggles, 0u);
  EXPECT_TRUE(r.stats.has("cpu.cycles"));
}

TEST(Runner, SelectiveExecutesToggles) {
  const RunResult r =
      run_version(demo_info(), base_machine(), Version::Selective);
  EXPECT_GT(r.toggles, 0u);
}

TEST(Runner, RunsAreReproducible) {
  const RunResult a =
      run_version(demo_info(), base_machine(), Version::Combined);
  const RunResult b =
      run_version(demo_info(), base_machine(), Version::Combined);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Runner, ImprovementRowCoversAllVersions) {
  const ImprovementRow row =
      improvements_for(demo_info(), base_machine());
  EXPECT_EQ(row.pct.size(), 4u);
  EXPECT_GT(row.base_cycles, 0u);
  // The hostile column-walk makes software optimization clearly positive.
  EXPECT_GT(row.pct.at(Version::PureSoftware), 5.0);
  // Selective must not lose to Combined (the paper's core claim).
  EXPECT_GE(row.pct.at(Version::Selective),
            row.pct.at(Version::Combined) - 0.5);
}

TEST(Runner, EmptyWorkloadSweepIsDegenerateNotFatal) {
  // A workload that executes zero cycles (empty program) used to crash the
  // whole sweep via the improvement_pct() zero-baseline check. It now
  // reports 0% for every version and bumps the degenerate-call counter.
  const workloads::WorkloadInfo w{
      "empty", "none", workloads::Category::Mixed,
      [] {
        ir::ProgramBuilder b("empty");
        return b.finish();
      },
      0.0, 0.0, 0.0};
  const std::uint64_t before = improvement_pct_degenerate_count().load();
  ImprovementRow row;
  ASSERT_NO_THROW(row = improvements_for(w, base_machine()));
  EXPECT_EQ(row.base_cycles, 0u);
  for (const auto& [v, pct] : row.pct) EXPECT_DOUBLE_EQ(pct, 0.0);
  EXPECT_GT(improvement_pct_degenerate_count().load(), before);
}

TEST(Runner, AverageImprovementFilters) {
  std::vector<ImprovementRow> rows(2);
  rows[0].category = workloads::Category::Regular;
  rows[0].pct[Version::Selective] = 10.0;
  rows[1].category = workloads::Category::Mixed;
  rows[1].pct[Version::Selective] = 20.0;
  EXPECT_DOUBLE_EQ(average_improvement(rows, Version::Selective), 15.0);
  const workloads::Category reg = workloads::Category::Regular;
  EXPECT_DOUBLE_EQ(average_improvement(rows, Version::Selective, &reg), 10.0);
}

TEST(Report, FormatsMachineAndFigure) {
  const std::string m = format_machine(base_machine());
  EXPECT_NE(m.find("bi-modal with 2048 entries"), std::string::npos);

  std::vector<ImprovementRow> rows(1);
  rows[0].benchmark = "demo";
  rows[0].category = workloads::Category::Mixed;
  for (Version v : kEvaluatedVersions) rows[0].pct[v] = 1.0;
  const std::string f = format_figure("Fig", rows);
  EXPECT_NE(f.find("demo"), std::string::npos);
  EXPECT_NE(f.find("Selective"), std::string::npos);
}

}  // namespace
}  // namespace selcache::core
