// Static locality analyzer: reuse vectors, miss estimates, the measurement
// probe, the SP cross-check on real workloads, and the prediction-driven
// classification hook.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "analysis/region_detection.h"
#include "codegen/layout.h"
#include "core/versions.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "locality/analyzer.h"
#include "locality/crosscheck.h"
#include "locality/measure.h"
#include "locality/predictor.h"
#include "transform/pipeline.h"
#include "workloads/registry.h"

namespace selcache {
namespace {

using ir::ProgramBuilder;
using locality::LocalityOptions;
using locality::ProgramPrediction;
using locality::RefPrediction;
using locality::Reuse;
using locality::Verdict;

const RefPrediction& ref_named(const ProgramPrediction& pred,
                               const std::string& rendered) {
  for (const auto& r : pred.refs)
    if (r.ref == rendered || r.ref.substr(3) == rendered) return r;
  ADD_FAILURE() << "no prediction entry for '" << rendered << "'";
  static RefPrediction dummy;
  return dummy;
}

// The analyzer recomputes array strides from the declaration instead of
// asking codegen (no DataEnv exists at prediction time). This guard pins
// the two implementations together: the per-level stride the analyzer
// reports must equal the address delta the real layout produces.
TEST(LayoutGuard, StrideMatchesElementAddr) {
  ProgramBuilder b("layout");
  auto A = b.array("A", {16, 48}, /*elem_size=*/8, /*pad_elems=*/5);
  auto i = b.begin_loop("i", 0, 16);
  auto j = b.begin_loop("j", 0, 48);
  b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)})});
  b.end_loop();
  b.end_loop();
  ir::Program p = b.finish();

  const ProgramPrediction pred = locality::predict(p);
  ASSERT_EQ(pred.refs.size(), 1u);
  const auto& levels = pred.refs[0].levels;
  ASSERT_EQ(levels.size(), 2u);

  const codegen::ArrayLayout layout(p.array(A), /*base=*/0);
  const std::array<std::int64_t, 2> origin{0, 0};
  const std::array<std::int64_t, 2> di{1, 0};
  const std::array<std::int64_t, 2> dj{0, 1};
  EXPECT_EQ(static_cast<std::int64_t>(levels[0].stride_bytes),
            static_cast<std::int64_t>(layout.element_addr(di)) -
                static_cast<std::int64_t>(layout.element_addr(origin)));
  EXPECT_EQ(static_cast<std::int64_t>(levels[1].stride_bytes),
            static_cast<std::int64_t>(layout.element_addr(dj)) -
                static_cast<std::int64_t>(layout.element_addr(origin)));
}

TEST(Verdicts, IrregularReferencesAreNonAnalyzable) {
  ProgramBuilder b("irregular");
  auto A = b.array("A", {64});
  auto F = b.array("F", {64, 64});
  auto idx = b.index_array("idx", 64, ir::ArrayDecl::Content::Permutation);
  auto P = b.chase_pool("P", 32, 64);
  auto i = b.begin_loop("i", 0, 8);
  auto j = b.begin_loop("j", 0, 8);
  b.stmt({ir::load_array(F, {b.sub(i), ir::Subscript::product(ir::x(i),
                                                              ir::x(j))}),
          ir::load_array(A, {ir::Subscript::indexed(idx, ir::x(j))}),
          ir::chase(P)});
  b.end_loop();
  b.end_loop();
  ir::Program p = b.finish();

  const ProgramPrediction pred = locality::predict(p);
  // F (product), idx (synthetic index load), A (indexed), P (chase).
  ASSERT_EQ(pred.refs.size(), 4u);
  EXPECT_EQ(pred.refs[0].verdict, Verdict::NonAnalyzable);
  EXPECT_EQ(pred.refs[0].reason, "product subscript");
  EXPECT_EQ(pred.refs[1].verdict, Verdict::Analyzable);  // idx[j] itself
  EXPECT_EQ(pred.refs[1].entity, "idx");
  EXPECT_EQ(pred.refs[2].verdict, Verdict::NonAnalyzable);
  EXPECT_EQ(pred.refs[2].reason, "subscripted subscript");
  EXPECT_EQ(pred.refs[3].verdict, Verdict::NonAnalyzable);
  EXPECT_EQ(pred.refs[3].reason, "pointer chase");

  EXPECT_EQ(pred.verdict(), Verdict::NonAnalyzable);
  EXPECT_LT(pred.analyzable_fraction(), 0.5);
  // Verdict extraction must agree with the full prediction, entry for entry.
  const auto verdicts = locality::ref_verdicts(p);
  ASSERT_EQ(verdicts.size(), pred.refs.size());
  for (std::size_t k = 0; k < verdicts.size(); ++k)
    EXPECT_EQ(verdicts[k], pred.refs[k].verdict) << k;
}

TEST(TripCounts, TriangularLoopIsEstimatedNotExact) {
  ProgramBuilder b("tri");
  auto A = b.array("A", {64, 64});
  auto i = b.begin_loop("i", 0, 64);
  auto j = b.begin_loop("j", ir::AffineExpr::constant(0), ir::x(i));
  b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)})});
  b.end_loop();
  b.end_loop();
  ir::Program p = b.finish();

  const ProgramPrediction pred = locality::predict(p);
  ASSERT_EQ(pred.refs.size(), 1u);
  EXPECT_FALSE(pred.refs[0].accesses_exact);
  EXPECT_FALSE(pred.total_accesses_exact);
  // Midpoint estimate: 64 * ~32 accesses; exact sum is 2016.
  EXPECT_GT(pred.total_accesses, 1000.0);
  EXPECT_LT(pred.total_accesses, 4000.0);
}

TEST(MissModel, StreamingTemporalAndTransposedAccess) {
  constexpr std::int64_t kN = 1024;  // a column sweep spans 1024 lines,
                                     // 32 KiB -- over effective L1 capacity
  ProgramBuilder b("model");
  auto S = b.array("S", {kN, kN});  // streamed row-major
  auto T = b.array("T", {kN, kN});  // streamed column-major (transposed)
  auto H = b.array("H", {64});      // 512 B: survives in L1 across rounds
  auto r = b.begin_loop("r", 0, 4);
  auto i = b.begin_loop("i", 0, kN);
  auto j = b.begin_loop("j", 0, kN);
  b.stmt({ir::load_array(S, {b.sub(i), b.sub(j)}),
          ir::load_array(T, {b.sub(j), b.sub(i)})});
  b.end_loop();
  b.end_loop();
  auto k = b.begin_loop("k", 0, 64);
  b.stmt({ir::load_array(H, {b.sub(k)})});
  b.end_loop();
  b.end_loop();
  (void)r;
  ir::Program p = b.finish();

  const LocalityOptions opt;  // 32 KiB L1, 32 B blocks
  const ProgramPrediction pred = locality::predict(p, opt);

  // Row-major stream: pure self-spatial, one miss per 32B block = ratio 1/4.
  const auto& s = ref_named(pred, "S[i][j]");
  ASSERT_TRUE(s.l1_misses.has_value());
  EXPECT_NEAR(*s.l1_misses / s.accesses, 0.25, 0.01);
  EXPECT_EQ(s.levels.back().reuse, Reuse::SelfSpatial);

  // Transposed stream: the spatial reuse along i is separated by a full
  // column sweep whose lines overflow effective L1 capacity, so every
  // access misses.
  const auto& t = ref_named(pred, "T[j][i]");
  ASSERT_TRUE(t.l1_misses.has_value());
  EXPECT_NEAR(*t.l1_misses / t.accesses, 1.0, 0.01);

  // Small hot array: the repeat loop's temporal reuse is realized, so the
  // total misses stay near the array's line count regardless of rounds.
  const auto& h = ref_named(pred, "H[k]");
  ASSERT_TRUE(h.l1_misses.has_value());
  EXPECT_LT(*h.l1_misses, 4.0 * 64.0 * 0.25 + 1.0);
  bool has_temporal = false;
  for (const auto& l : h.levels) has_temporal |= l.reuse == Reuse::SelfTemporal;
  EXPECT_TRUE(has_temporal);
}

TEST(GroupReuse, SameIterationFollowerPaysNothing) {
  ProgramBuilder b("group");
  auto A = b.array("A", {4096});
  auto i = b.begin_loop("i", 0, 4096);
  b.stmt({ir::load_array(A, {b.sub(i)}),
          ir::load_array(A, {b.sub(i, 1)}),
          ir::store_array(A, {b.sub(i)})});
  b.end_loop();
  ir::Program p = b.finish();

  const ProgramPrediction pred = locality::predict(p);
  ASSERT_EQ(pred.refs.size(), 3u);
  const auto& leader = pred.refs[0];
  const auto& spatial = pred.refs[1];   // A[i+1]: one element ahead
  const auto& temporal = pred.refs[2];  // st A[i]: same address
  EXPECT_NEAR(*leader.l1_misses / leader.accesses, 0.25, 0.01);
  EXPECT_EQ(*spatial.l1_misses, 0.0);
  EXPECT_EQ(spatial.levels.back().reuse, Reuse::GroupSpatial);
  EXPECT_EQ(*temporal.l1_misses, 0.0);
  EXPECT_EQ(temporal.levels.back().reuse, Reuse::GroupTemporal);
}

TEST(GroupReuse, CrossIterationStencilNeighborRidesPreviousRow) {
  constexpr std::int64_t kN = 128;  // 128x128x8B = 128 KiB, rows fit L1
  ProgramBuilder b("stencil");
  auto Y = b.array("Y", {kN, kN});
  auto i = b.begin_loop("i", 1, kN);
  auto j = b.begin_loop("j", 0, kN);
  b.stmt({ir::load_array(Y, {b.sub(i), b.sub(j)}),
          ir::load_array(Y, {b.sub(i, -1), b.sub(j)})});
  b.end_loop();
  b.end_loop();
  ir::Program p = b.finish();

  const ProgramPrediction pred = locality::predict(p);
  const auto& lead = ref_named(pred, "Y[i][j]");
  const auto& foll = ref_named(pred, "Y[i - 1][j]");
  EXPECT_NEAR(*lead.l1_misses / lead.accesses, 0.25, 0.01);
  // Y[i-1][j] touches the row Y[i][j] fetched one i-iteration earlier; a
  // couple of rows fit easily, so only the cold first iteration pays.
  EXPECT_LT(*foll.l1_misses, *lead.l1_misses * 0.02);
  bool group = false;
  for (const auto& l : foll.levels)
    group |= l.reuse == Reuse::GroupTemporal || l.reuse == Reuse::GroupSpatial;
  EXPECT_TRUE(group);
}

TEST(TiledBounds, TileLoopCarriesTheAdvanceOfItsPointLoop) {
  // it selects a 64-element tile, i walks it: the subscript never mentions
  // `it`, yet each it-iteration advances the footprint by a whole tile.
  // Claiming temporal reuse at the tile level is the bug this test pins.
  constexpr std::int64_t kTiles = 64, kTile = 64;
  ProgramBuilder b("tiled");
  auto A = b.array("A", {kTiles * kTile});  // 32 K elements, 256 KiB
  auto it = b.begin_loop("it", 0, kTiles);
  auto i = b.begin_loop("i", ir::x(it) * kTile, ir::x(it) * kTile + kTile);
  b.stmt({ir::load_array(A, {b.sub(i)})});
  b.end_loop();
  b.end_loop();
  ir::Program p = b.finish();

  const ProgramPrediction pred = locality::predict(p);
  ASSERT_EQ(pred.refs.size(), 1u);
  const auto& r = pred.refs[0];
  EXPECT_NE(r.levels[0].reuse, Reuse::SelfTemporal);
  EXPECT_EQ(static_cast<std::int64_t>(r.levels[0].stride_bytes), kTile * 8);
  // Cold sequential scan: ratio 1/4, not 1/(4*kTiles).
  EXPECT_NEAR(*r.l1_misses / r.accesses, 0.25, 0.01);
}

TEST(Measure, VpentaAttributesEveryAccessToAnEntity) {
  const auto& w = workloads::workload("Vpenta");
  const ir::Program p =
      core::prepare_program(w.build(), core::Version::Base, {});
  const locality::MeasuredProfile meas = locality::measure_program(p);
  EXPECT_GT(meas.l1d_accesses, 0u);
  EXPECT_GT(meas.l1d_misses, 0u);
  EXPECT_EQ(meas.unattributed, 0u);
  std::uint64_t sum = 0;
  for (const auto& [name, c] : meas.entities) sum += c.accesses;
  EXPECT_EQ(sum, meas.l1d_accesses);
}

TEST(Crosscheck, CleanOnRealWorkloadAndTripsOnTampering) {
  const auto& w = workloads::workload("Vpenta");
  const ir::Program p =
      core::prepare_program(w.build(), core::Version::Base, {});
  const ProgramPrediction pred = locality::predict(p);
  const locality::MeasuredProfile meas = locality::measure_program(p);

  verify::Report clean;
  EXPECT_EQ(locality::crosscheck(p, pred, meas, clean), 0u) << clean.str();
  EXPECT_TRUE(clean.ok());

  // Any forged access total must trip the lint (exact counts, no slack).
  ProgramPrediction forged = locality::predict(p);
  forged.total_accesses += 1.0;
  verify::Report dirty;
  EXPECT_GT(locality::crosscheck(p, forged, meas, dirty), 0u);
  EXPECT_FALSE(dirty.ok());
}

// ---- prediction-driven classification ------------------------------------

TEST(PredictClassify, DefaultPolicyIsBitIdentical) {
  for (const char* name : {"Vpenta", "Chaos", "Compress", "Swim"}) {
    const auto& w = workloads::workload(name);
    ir::Program a = w.build();
    ir::Program b2 = w.build();
    analysis::detect_and_mark(a);
    analysis::detect_and_mark(b2, analysis::MethodPolicy{});
    EXPECT_EQ(ir::print(a), ir::print(b2)) << name;
  }
}

TEST(PredictClassify, PredictorOverridesInnermostDecisions) {
  const auto& w = workloads::workload("Chaos");
  ir::Program p = w.build();
  analysis::MethodPolicy all_hw;
  all_hw.loop_predictor = [](const ir::LoopNode&) {
    return analysis::Method::Hardware;
  };
  const auto regions = analysis::analyze_regions(p, all_hw);
  for (const auto& [loop, decision] : regions.decisions) {
    (void)loop;
    EXPECT_NE(decision, analysis::RegionDecision::Compiler);
  }
  EXPECT_TRUE(regions.compiler_roots.empty());
}

TEST(PredictClassify, LocalityPredictorRunsThroughThePipeline) {
  const auto& w = workloads::workload("Chaos");
  locality::PredictorOptions popt;
  transform::OptimizeOptions oopt;
  oopt.method_predictor = locality::make_method_predictor(popt);
  oopt.method_predictor_fingerprint =
      locality::method_predictor_fingerprint(popt);
  const ir::Program marked =
      core::prepare_program(w.build(), core::Version::Selective, oopt);
  // The predictor-driven program still verifies and simulates: measure it.
  const locality::MeasuredProfile meas = locality::measure_program(marked);
  EXPECT_GT(meas.l1d_accesses, 0u);
}

TEST(PredictClassify, FingerprintIsStableNonZeroAndConfigSensitive) {
  locality::PredictorOptions a;
  locality::PredictorOptions b2;
  b2.dynamic_threshold = a.dynamic_threshold + 0.125;
  locality::PredictorOptions c;
  c.locality.l1.size_bytes *= 2;
  const auto fa = locality::method_predictor_fingerprint(a);
  EXPECT_NE(fa, 0u);
  EXPECT_EQ(fa, locality::method_predictor_fingerprint(a));
  EXPECT_NE(fa, locality::method_predictor_fingerprint(b2));
  EXPECT_NE(fa, locality::method_predictor_fingerprint(c));
}

}  // namespace
}  // namespace selcache
