// Atomic-writer hardening tests: the all-or-nothing contract (target keeps
// old contents or atomically gains complete new contents), structured
// stage/errno reporting, .tmp cleanup on failure, and the process-global
// fault hook every failing-filesystem regression test rides on.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/io.h"

namespace selcache::support {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("selcache_io_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ + "/target.txt";
  }
  void TearDown() override {
    write_fault_hook() = nullptr;
    fs::remove_all(dir_);
  }

  std::string read_back() const {
    std::ifstream f(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f), {});
  }

  /// True if any .tmp sibling of the target is left in the directory.
  bool tmp_left_behind() const {
    for (const auto& e : fs::directory_iterator(dir_))
      if (e.path().string().find(".tmp") != std::string::npos) return true;
    return false;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(IoTest, SuccessWritesCompleteContents) {
  const WriteStatus st = write_file_atomic(path_, "hello journal\n");
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(static_cast<bool>(st));
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(read_back(), "hello journal\n");
  EXPECT_FALSE(tmp_left_behind());
}

TEST_F(IoTest, SyncOptionStillSucceeds) {
  const WriteStatus st =
      write_file_atomic(path_, "synced", WriteOptions{.sync = true});
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(read_back(), "synced");
}

TEST_F(IoTest, OverwriteReplacesAtomically) {
  ASSERT_TRUE(write_file_atomic(path_, "old contents"));
  ASSERT_TRUE(write_file_atomic(path_, "new"));
  EXPECT_EQ(read_back(), "new");
}

TEST_F(IoTest, UnwritableDirectoryReportsOpenStage) {
  const WriteStatus st =
      write_file_atomic("/nonexistent-dir/selcache/x.txt", "data");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.stage, "open");
  EXPECT_FALSE(st.error.empty());
  EXPECT_NE(st.message().find("open: "), std::string::npos);
}

// Each stage of the pipeline must fail cleanly: structured status naming
// the stage, target untouched (old contents preserved), no .tmp litter.
TEST_F(IoTest, EveryStageFailureLeavesTargetUntouched) {
  ASSERT_TRUE(write_file_atomic(path_, "precious"));
  const std::vector<const char*> stages = {"open", "write", "flush", "fsync",
                                           "rename"};
  for (const char* stage : stages) {
    write_fault_hook() = [stage](const std::string&, const char* s) {
      return std::strcmp(s, stage) == 0;
    };
    // sync=true so the "fsync" stage actually runs.
    const WriteStatus st =
        write_file_atomic(path_, "clobber", WriteOptions{.sync = true});
    EXPECT_FALSE(st.ok()) << stage;
    EXPECT_EQ(st.stage, stage);
    EXPECT_FALSE(st.error.empty()) << stage;
    EXPECT_EQ(read_back(), "precious") << stage;
    EXPECT_FALSE(tmp_left_behind()) << stage;
  }
  write_fault_hook() = nullptr;
  // The writer recovers completely once the "filesystem" heals.
  EXPECT_TRUE(write_file_atomic(path_, "healed"));
  EXPECT_EQ(read_back(), "healed");
}

TEST_F(IoTest, FsyncStageSkippedWithoutSyncOption) {
  write_fault_hook() = [](const std::string&, const char* s) {
    return std::strcmp(s, "fsync") == 0;
  };
  // Without opt.sync the fsync stage never runs, so the hook never fires.
  const WriteStatus st = write_file_atomic(path_, "no-sync");
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(read_back(), "no-sync");
}

TEST_F(IoTest, HookSeesTargetPath) {
  std::vector<std::string> seen;
  write_fault_hook() = [&seen](const std::string& p, const char*) {
    seen.push_back(p);
    return false;
  };
  ASSERT_TRUE(write_file_atomic(path_, "x"));
  ASSERT_FALSE(seen.empty());
  for (const auto& p : seen) EXPECT_EQ(p, path_);
}

TEST_F(IoTest, FailedFirstWriteLeavesTargetAbsent) {
  write_fault_hook() = [](const std::string&, const char* s) {
    return std::strcmp(s, "rename") == 0;
  };
  const WriteStatus st = write_file_atomic(path_, "never lands");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(fs::exists(path_)) << "failed write must not create target";
  EXPECT_FALSE(tmp_left_behind());
}

}  // namespace
}  // namespace selcache::support
