// Tests for the 13-benchmark suite: registry integrity, structural
// properties, and the region classification each benchmark is designed to
// trigger (§4.1: irregular regions are 90-100% irregular and vice versa).
#include <gtest/gtest.h>

#include "analysis/marker_elimination.h"
#include "analysis/region_detection.h"
#include "codegen/trace_engine.h"
#include "workloads/registry.h"
#include "workloads/workloads.h"

namespace selcache::workloads {
namespace {

TEST(Registry, ThirteenBenchmarksInTable2Order) {
  const auto& all = all_workloads();
  ASSERT_EQ(all.size(), 13u);
  EXPECT_EQ(all.front().name, "Perl");
  EXPECT_EQ(all.back().name, "TPC-D,Q6");
  EXPECT_EQ(workload("Swim").category, Category::Regular);
  EXPECT_EQ(workload("Chaos").category, Category::Mixed);
  EXPECT_THROW(workload("nonesuch"), std::logic_error);
}

TEST(Registry, CategoriesMatchPaper) {
  int regular = 0, irregular = 0, mixed = 0;
  for (const auto& w : all_workloads()) {
    switch (w.category) {
      case Category::Regular: ++regular; break;
      case Category::Irregular: ++irregular; break;
      case Category::Mixed: ++mixed; break;
    }
  }
  EXPECT_EQ(regular, 4);    // Swim, Mgrid, Vpenta, Adi
  EXPECT_EQ(irregular, 4);  // Perl, Compress, Li, Applu
  EXPECT_EQ(mixed, 5);      // Chaos, TPC-C, Q1, Q3, Q6
}

TEST(Registry, PaperReferenceNumbersPresent) {
  for (const auto& w : all_workloads()) {
    EXPECT_GT(w.paper_instructions_m, 0.0) << w.name;
    EXPECT_GT(w.paper_l1_miss, 0.0) << w.name;
    EXPECT_GT(w.paper_l2_miss, 0.0) << w.name;
  }
}

class EveryWorkload : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryWorkload, BuildsWithLoopsAndRefs) {
  const auto& w = workload(GetParam());
  const ir::Program p = w.build();
  EXPECT_EQ(p.name().empty(), false);
  EXPECT_GT(p.loops().size(), 0u);
  EXPECT_GT(p.static_ref_count(), 0u);
}

TEST_P(EveryWorkload, BuildIsDeterministic) {
  const auto& w = workload(GetParam());
  const ir::Program a = w.build();
  const ir::Program b = w.build();
  EXPECT_EQ(a.static_ref_count(), b.static_ref_count());
  EXPECT_EQ(a.loops().size(), b.loops().size());
  EXPECT_EQ(a.arrays().size(), b.arrays().size());
}

TEST_P(EveryWorkload, EnvironmentAllocates) {
  const auto& w = workload(GetParam());
  const ir::Program p = w.build();
  codegen::DataEnv env(p);
  EXPECT_GT(env.total_footprint(), 4096u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload,
    ::testing::Values("Perl", "Compress", "Li", "Swim", "Applu", "Mgrid",
                      "Chaos", "Vpenta", "Adi", "TPC-C", "TPC-D,Q1",
                      "TPC-D,Q3", "TPC-D,Q6"),
    [](const auto& info) {
      std::string n = info.param;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

// Region-structure expectations per benchmark class.

std::size_t count_decisions(ir::Program& p, analysis::RegionDecision want) {
  const auto ra = analysis::analyze_regions(p);
  std::size_t n = 0;
  for (const auto& [loop, d] : ra.decisions)
    if (d == want) ++n;
  return n;
}

TEST(Regions, RegularCodesAreAllCompiler) {
  for (const char* name : {"Swim", "Mgrid", "Vpenta", "Adi"}) {
    ir::Program p = workload(name).build();
    EXPECT_EQ(count_decisions(p, analysis::RegionDecision::Hardware), 0u)
        << name;
    EXPECT_GT(count_decisions(p, analysis::RegionDecision::Compiler), 0u)
        << name;
  }
}

TEST(Regions, IrregularCodesAreHardwareDominated) {
  for (const char* name : {"Perl", "Compress", "Li"}) {
    ir::Program p = workload(name).build();
    EXPECT_EQ(count_decisions(p, analysis::RegionDecision::Compiler), 0u)
        << name;
    EXPECT_GT(count_decisions(p, analysis::RegionDecision::Hardware), 0u)
        << name;
  }
}

TEST(Regions, MixedCodesHaveBothKinds) {
  for (const char* name : {"Applu", "Chaos", "TPC-C", "TPC-D,Q1", "TPC-D,Q3",
                           "TPC-D,Q6"}) {
    ir::Program p = workload(name).build();
    EXPECT_GT(count_decisions(p, analysis::RegionDecision::Hardware), 0u)
        << name;
    EXPECT_GT(count_decisions(p, analysis::RegionDecision::Compiler), 0u)
        << name;
  }
}

TEST(Regions, MarkedProgramsKeepEvenMarkerCount) {
  for (const auto& w : all_workloads()) {
    ir::Program p = w.build();
    analysis::detect_and_mark(p);
    analysis::eliminate_redundant_markers(p);
    EXPECT_EQ(analysis::count_markers(p) % 2, 0u) << w.name;
  }
}

// Execution smoke tests on the three smallest benchmarks (the full suite is
// exercised by the bench harness; tests stay fast).

TEST(Execution, PerlRunsWithinInstructionBudget) {
  const ir::Program p = build_perl();
  memsys::Hierarchy h((memsys::HierarchyConfig()));
  hw::Controller ctl(nullptr);
  cpu::TimingModel cpu(cpu::CpuConfig{}, h, ctl);
  codegen::DataEnv env(p);
  codegen::TraceEngine eng(p, env, cpu);
  eng.run();
  EXPECT_GT(cpu.instructions(), 100'000u);
  EXPECT_LT(cpu.instructions(), 1'000'000u);
  EXPECT_GT(eng.loads_executed(), 0u);
  EXPECT_GT(eng.stores_executed(), 0u);
}

TEST(Execution, Q6ScalarAccumulatorIsHot) {
  const ir::Program p = build_tpcd_q6();
  memsys::Hierarchy h((memsys::HierarchyConfig()));
  hw::Controller ctl(nullptr);
  cpu::TimingModel cpu(cpu::CpuConfig{}, h, ctl);
  codegen::DataEnv env(p);
  codegen::TraceEngine eng(p, env, cpu);
  eng.run();
  // The revenue scalar is touched every row: the L1 must be mostly hitting.
  EXPECT_LT(h.l1d().demand_stats().miss_rate(), 0.30);
}

}  // namespace
}  // namespace selcache::workloads
