// The probe kernels' contract: the vector paths (SSE2/NEON) and the scalar
// fallback implement the exact same first-match / first-free / min-LRU
// semantics on the shared 16-byte slot layout, so forcing either path can
// never change which way a probe hits or which way a miss fills. The tests
// pin both paths against each other on randomized sets and on the edge
// geometries the hot path never stresses (odd associativity tails, invalid
// slots with stale matching keys, UINT32_MAX LRU stamps).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "memsys/probe_kernels.h"

namespace selcache::memsys::kernels {
namespace {

/// Local mirror of the shared slot layout (Cache::Block / Tlb::Entry are
/// private to their classes; the kernels only see bytes anyway).
struct Slot {
  std::uint64_t key = 0;
  std::uint32_t lru = 0;
  bool valid = false;
  bool dirty = false;
};
static_assert(sizeof(Slot) == kSlotBytes);
static_assert(offsetof(Slot, key) == kSlotKeyOff);
static_assert(offsetof(Slot, lru) == kSlotLruOff);
static_assert(offsetof(Slot, valid) == kSlotValidOff);

/// Reference implementation: one obvious pass, no cleverness.
std::uint32_t ref_match(const std::vector<Slot>& set, std::uint64_t key) {
  for (std::uint32_t w = 0; w < set.size(); ++w)
    if (set[w].valid && set[w].key == key) return w;
  return kNoWay;
}

VictimWay ref_victim(const std::vector<Slot>& set) {
  for (std::uint32_t w = 0; w < set.size(); ++w)
    if (!set[w].valid) return {.way = w, .free = true};
  std::uint32_t best = 0;
  for (std::uint32_t w = 1; w < set.size(); ++w)
    if (set[w].lru < set[best].lru) best = w;
  return {.way = best, .free = false};
}

/// Restores the startup kernel selection even if an EXPECT fails.
struct ScalarGuard {
  explicit ScalarGuard(bool on) { force_scalar(on); }
  ~ScalarGuard() { force_scalar(false); }
};

/// Random set with key collisions likely (small key range), a mix of valid
/// and invalid slots, and strictly distinct LRU stamps among the valid
/// slots (the invariant Cache/Tlb maintain via their bump counters).
std::vector<Slot> random_set(std::mt19937_64& rng, std::uint32_t n) {
  std::uniform_int_distribution<std::uint64_t> key(0, 7);
  std::uniform_int_distribution<int> coin(0, 9);
  std::vector<std::uint32_t> stamps(n);
  for (std::uint32_t w = 0; w < n; ++w) stamps[w] = w + 1;
  std::shuffle(stamps.begin(), stamps.end(), rng);
  std::vector<Slot> set(n);
  for (std::uint32_t w = 0; w < n; ++w) {
    set[w].key = key(rng);
    set[w].lru = stamps[w];
    set[w].valid = coin(rng) < 7;
  }
  return set;
}

TEST(ProbeKernels, MatchWayAgreesWithReferenceOnBothPaths) {
  std::mt19937_64 rng(0xC0FFEE);
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u}) {
    for (int trial = 0; trial < 500; ++trial) {
      const std::vector<Slot> set = random_set(rng, n);
      for (std::uint64_t key = 0; key < 9; ++key) {
        const std::uint32_t want = ref_match(set, key);
        EXPECT_EQ(match_way(set.data(), n, key), want) << "simd n=" << n;
        ScalarGuard scalar(true);
        EXPECT_EQ(match_way(set.data(), n, key), want) << "scalar n=" << n;
      }
    }
  }
}

TEST(ProbeKernels, VictimWayAgreesWithReference) {
  std::mt19937_64 rng(0xBADF00D);
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 5u, 8u}) {
    for (int trial = 0; trial < 500; ++trial) {
      const std::vector<Slot> set = random_set(rng, n);
      const VictimWay want = ref_victim(set);
      const VictimWay got = victim_way(set.data(), n);
      EXPECT_EQ(got.way, want.way) << "n=" << n;
      EXPECT_EQ(got.free, want.free) << "n=" << n;
    }
  }
}

/// probe_way is the fused demand-path scan: on every input it must equal
/// the composition of match_way and victim_way — under both kernels.
TEST(ProbeKernels, ProbeWayEqualsComposedKernelsOnBothPaths) {
  std::mt19937_64 rng(0x5EED);
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 5u, 8u}) {
    for (int trial = 0; trial < 500; ++trial) {
      const std::vector<Slot> set = random_set(rng, n);
      for (std::uint64_t key = 0; key < 9; ++key) {
        const std::uint32_t mw = ref_match(set, key);
        const VictimWay vw = ref_victim(set);
        for (const bool scalar : {false, true}) {
          ScalarGuard guard(scalar);
          const ProbeResult pr = probe_way(set.data(), n, key);
          if (mw != kNoWay) {
            EXPECT_TRUE(pr.hit);
            EXPECT_EQ(pr.way, mw);
          } else {
            EXPECT_FALSE(pr.hit);
            EXPECT_EQ(pr.way, vw.way);
            EXPECT_EQ(pr.free, vw.free);
          }
        }
      }
    }
  }
}

/// A stale key in an invalidated slot must never count as a hit — and that
/// freed slot is exactly where the subsequent fill lands.
TEST(ProbeKernels, InvalidSlotWithMatchingKeyIsAMissIntoThatSlot) {
  std::vector<Slot> set(4);
  for (std::uint32_t w = 0; w < 4; ++w)
    set[w] = {.key = 0x40 + w, .lru = w + 1, .valid = true};
  set[2].valid = false;  // invalidate, key 0x42 left behind
  for (const bool scalar : {false, true}) {
    ScalarGuard guard(scalar);
    EXPECT_EQ(match_way(set.data(), 4, 0x42), kNoWay);
    const ProbeResult pr = probe_way(set.data(), 4, 0x42);
    EXPECT_FALSE(pr.hit);
    EXPECT_TRUE(pr.free);
    EXPECT_EQ(pr.way, 2u);
  }
}

/// First-free beats min-LRU, and among several invalid ways the FIRST wins
/// (fill() scans in way order; the kernels must agree with it exactly).
TEST(ProbeKernels, FirstInvalidWayWinsOverLowerLru) {
  std::vector<Slot> set(4);
  set[0] = {.key = 1, .lru = 10, .valid = true};
  set[1] = {.key = 2, .lru = 0, .valid = false};
  set[2] = {.key = 3, .lru = 1, .valid = true};  // lowest valid stamp
  set[3] = {.key = 4, .lru = 0, .valid = false};
  for (const bool scalar : {false, true}) {
    ScalarGuard guard(scalar);
    const ProbeResult pr = probe_way(set.data(), 4, 99);
    EXPECT_FALSE(pr.hit);
    EXPECT_TRUE(pr.free);
    EXPECT_EQ(pr.way, 1u) << "first invalid way, not the lowest-LRU one";
  }
}

/// UINT32_MAX is a legal stamp, not a sentinel: a full set where one way
/// carries it must still pick the true minimum (victim_way widens its best
/// tracker to 64 bits precisely so this cannot collide).
TEST(ProbeKernels, MaxLruStampIsNotASentinel) {
  std::vector<Slot> set(4);
  set[0] = {.key = 1, .lru = 0xFFFFFFFFu, .valid = true};
  set[1] = {.key = 2, .lru = 7, .valid = true};
  set[2] = {.key = 3, .lru = 5, .valid = true};
  set[3] = {.key = 4, .lru = 6, .valid = true};
  for (const bool scalar : {false, true}) {
    ScalarGuard guard(scalar);
    const VictimWay v = victim_way(set.data(), 4);
    EXPECT_FALSE(v.free);
    EXPECT_EQ(v.way, 2u);
    const ProbeResult pr = probe_way(set.data(), 4, 99);
    EXPECT_FALSE(pr.hit);
    EXPECT_FALSE(pr.free);
    EXPECT_EQ(pr.way, 2u);
  }

  // And the all-max corner: every stamp equal picks way 0 on both paths.
  for (Slot& s : set) s.lru = 0xFFFFFFFFu;
  for (const bool scalar : {false, true}) {
    ScalarGuard guard(scalar);
    EXPECT_EQ(probe_way(set.data(), 4, 99).way, 0u);
  }
}

TEST(ProbeKernels, ForceScalarTogglesTheActiveKernel) {
  // Startup selection: compiled capability unless SELCACHE_NO_SIMD is set
  // (the scalar CI lane runs this very test under that variable).
  const char* env = std::getenv("SELCACHE_NO_SIMD");
  const bool env_off =
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  const bool startup = simd_active();
  EXPECT_EQ(startup, simd_compiled() && !env_off);
  EXPECT_STREQ(active_kernel(), startup ? simd_isa() : "scalar");

  force_scalar(true);
  EXPECT_FALSE(simd_active());
  EXPECT_STREQ(active_kernel(), "scalar");

  force_scalar(false);
  EXPECT_EQ(simd_active(), startup);
  EXPECT_STREQ(active_kernel(), startup ? simd_isa() : "scalar");
}

}  // namespace
}  // namespace selcache::memsys::kernels
