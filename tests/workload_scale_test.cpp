// Scale regression guards: each benchmark's simulated instruction count
// must stay within a loose band of its documented 1/50 scale target, and
// its base miss regime must stay on the documented side. These catch
// accidental workload edits that would silently invalidate EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace selcache::workloads {
namespace {

class ScaleGuard : public ::testing::TestWithParam<const char*> {};

TEST_P(ScaleGuard, InstructionCountNearScaledTarget) {
  const auto& w = workload(GetParam());
  const core::RunResult r = core::run_version(w, core::base_machine(),
                                              core::Version::Base);
  const double target = w.paper_instructions_m * 1e6 / 50.0;
  EXPECT_GT(static_cast<double>(r.instructions), target / 3.5) << w.name;
  EXPECT_LT(static_cast<double>(r.instructions), target * 3.5) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ScaleGuard,
    ::testing::Values("Perl", "Compress", "Li", "Mgrid", "Chaos", "Vpenta",
                      "Adi", "TPC-C", "TPC-D,Q1", "TPC-D,Q3", "TPC-D,Q6"),
    [](const auto& info) {
      std::string n = info.param;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(ScaleGuard, VpentaStaysTheWorstL1Citizen) {
  // Table 2's defining feature: Vpenta's base L1 miss rate dwarfs the rest.
  const core::RunResult vpenta = core::run_version(
      workload("Vpenta"), core::base_machine(), core::Version::Base);
  for (const char* other : {"Perl", "Li", "Mgrid", "TPC-D,Q6"}) {
    const core::RunResult r = core::run_version(
        workload(other), core::base_machine(), core::Version::Base);
    EXPECT_GT(vpenta.l1_miss_rate, 2.0 * r.l1_miss_rate) << other;
  }
}

TEST(ScaleGuard, ChaosKeepsL2ResidentWorkingSet) {
  // Chaos is the "high L1 miss, low L2 miss" archetype (Table 2: 7.33/1.82).
  const core::RunResult r = core::run_version(
      workload("Chaos"), core::base_machine(), core::Version::Base);
  EXPECT_GT(r.l1_miss_rate, 0.08);
  EXPECT_LT(r.l2_miss_rate, 0.15);
}

TEST(ScaleGuard, RegularCodesGetDoubleDigitSoftwareWins) {
  // The pure-software story must not silently regress.
  for (const char* name : {"Vpenta", "Adi"}) {
    const auto row =
        core::improvements_for(workload(name), core::base_machine());
    EXPECT_GT(row.pct.at(core::Version::PureSoftware), 30.0) << name;
  }
}

TEST(ScaleGuard, PerlKeepsItsHardwareWin) {
  const auto row =
      core::improvements_for(workload("Perl"), core::base_machine());
  EXPECT_GT(row.pct.at(core::Version::PureHardware), 3.0);
}

}  // namespace
}  // namespace selcache::workloads
