// Negative verification suite: deliberately broken IR and forged transform
// records, each asserting the exact rule ID the analyzers must report.
#include <gtest/gtest.h>

#include <iterator>
#include <utility>

#include "ir/builder.h"
#include "locality/analyzer.h"
#include "locality/crosscheck.h"
#include "locality/measure.h"
#include "verify/verifier.h"

namespace selcache {
namespace {

using ir::AffineExpr;
using ir::LoopNode;
using ir::ProgramBuilder;
using ir::Subscript;
using transform::TransformKind;
using transform::TransformLog;
using transform::TransformRecord;
using verify::MarkerCheckOptions;
using verify::Report;
using verify::Severity;

bool has_rule(const Report& r, const std::string& rule) {
  for (const auto& d : r.diagnostics())
    if (d.rule == rule) return true;
  return false;
}

std::string rules_of(const Report& r) {
  std::string out;
  for (const auto& d : r.diagnostics()) out += d.rule + " ";
  return out;
}

// ---- structural family (SV-*) ---------------------------------------------

TEST(StructuralNegative, RankMismatchedSubscript) {
  ProgramBuilder b("bad");
  auto U = b.array("U", {8, 8});
  auto i = b.begin_loop("i", 0, 8);
  b.stmt({ir::load_array(U, {b.sub(i)})});  // rank 2, one subscript
  b.end_loop();
  ir::Program p = b.finish();

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-SUB-RANK")) << rules_of(r);
  EXPECT_GE(r.errors(), 1u);
}

TEST(StructuralNegative, UndeclaredArrayScalarPool) {
  ProgramBuilder b("bad");
  auto i = b.begin_loop("i", 0, 4);
  b.stmt({ir::load_array(99, {b.sub(i)})});
  b.stmt({ir::load_scalar(7)});
  b.stmt({ir::chase(3)});
  b.end_loop();
  ir::Program p = b.finish();

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-REF-ARRAY")) << rules_of(r);
  EXPECT_TRUE(has_rule(r, "SV-REF-SCALAR")) << rules_of(r);
  EXPECT_TRUE(has_rule(r, "SV-REF-POOL")) << rules_of(r);
}

TEST(StructuralNegative, SubscriptUsesOutOfScopeVariable) {
  ProgramBuilder b("bad");
  auto U = b.array("U", {8});
  auto i = b.begin_loop("i", 0, 8);
  b.stmt({ir::load_array(U, {b.sub(i)})});
  b.end_loop();
  // A second loop whose body indexes with the *first* loop's variable.
  b.begin_loop("j", 0, 8);
  b.stmt({ir::load_array(U, {b.sub(i)})});
  b.end_loop();
  ir::Program p = b.finish();

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-SUB-VAR")) << rules_of(r);
}

TEST(StructuralNegative, IndexedSubscriptThroughUndeclaredArray) {
  ProgramBuilder b("bad");
  auto G = b.array("G", {64});
  auto j = b.begin_loop("j", 0, 8);
  b.stmt({ir::load_array(G, {Subscript::indexed(42, ir::x(j), 2)})});
  b.end_loop();
  ir::Program p = b.finish();

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-SUB-INDEX-ARRAY")) << rules_of(r);
}

TEST(StructuralNegative, NonPositiveStepAndShadowedVariable) {
  ProgramBuilder b("bad");
  auto U = b.array("U", {8, 8});
  auto i = b.begin_loop("i", 0, 8);
  auto j = b.begin_loop("j", 0, 8);
  b.stmt({ir::load_array(U, {b.sub(i), b.sub(j)})});
  b.end_loop();
  b.end_loop();
  ir::Program p = b.finish();

  auto& outer = static_cast<LoopNode&>(*p.top()[0]);
  outer.step = 0;  // SV-LOOP-STEP
  auto& inner = static_cast<LoopNode&>(*outer.body[0]);
  inner.var = outer.var;  // SV-LOOP-SHADOW

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-LOOP-STEP")) << rules_of(r);
  EXPECT_TRUE(has_rule(r, "SV-LOOP-SHADOW")) << rules_of(r);
}

TEST(StructuralNegative, BoundUsesUnboundOrUndeclaredVariable) {
  ProgramBuilder b("bad");
  auto U = b.array("U", {8});
  auto i = b.begin_loop("i", 0, 8);
  b.stmt({ir::load_array(U, {b.sub(i)})});
  b.end_loop();
  // Sibling loop bounded by the (closed) first loop's variable.
  auto j = b.begin_loop("j", AffineExpr::constant(0), ir::x(i));
  b.stmt({ir::load_array(U, {b.sub(j)})});
  b.end_loop();
  ir::Program p = b.finish();

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-BOUND-VAR")) << rules_of(r);
}

TEST(StructuralNegative, UndeclaredInductionVariable) {
  ProgramBuilder b("bad");
  b.begin_loop("i", 0, 4);
  b.stmt({}, 1);
  b.end_loop();
  ir::Program p = b.finish();
  static_cast<LoopNode&>(*p.top()[0]).var = 999;

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-LOOP-VAR")) << rules_of(r);
}

TEST(StructuralNegative, ScalarDefinedTwiceInOneStatement) {
  ProgramBuilder b("bad");
  auto s = b.scalar("acc");
  b.begin_loop("i", 0, 4);
  b.stmt({ir::store_scalar(s), ir::store_scalar(s)});
  b.end_loop();
  ir::Program p = b.finish();

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-SCALAR-MULTIDEF")) << rules_of(r);
}

TEST(StructuralNegative, DegenerateShapesAreWarnings) {
  ProgramBuilder b("bad");
  b.begin_loop("i", 4, 4);  // zero-trip
  b.end_loop();             // and empty
  b.stmt({}, 0);            // no refs, no compute
  ir::Program p = b.finish();

  Report r;
  verify::verify_structure(p, r);
  EXPECT_TRUE(has_rule(r, "SV-TRIP-ZERO")) << rules_of(r);
  EXPECT_TRUE(has_rule(r, "SV-LOOP-EMPTY")) << rules_of(r);
  EXPECT_TRUE(has_rule(r, "SV-STMT-EMPTY")) << rules_of(r);
  EXPECT_EQ(r.errors(), 0u);  // all three are warnings
  EXPECT_EQ(r.warnings(), 3u);
}

// ---- marker family (MK-*) --------------------------------------------------

TEST(MarkerNegative, UnpairedActivate) {
  ProgramBuilder b("bad");
  b.toggle(true);
  b.stmt({}, 2);
  ir::Program p = b.finish();

  Report r;
  verify::verify_markers(p, r);
  EXPECT_TRUE(has_rule(r, "MK-UNCLOSED")) << rules_of(r);
}

TEST(MarkerNegative, DoubleActivate) {
  ProgramBuilder b("bad");
  b.toggle(true);
  b.stmt({}, 2);
  b.toggle(true);
  b.stmt({}, 2);
  b.toggle(false);
  ir::Program p = b.finish();

  Report r;
  verify::verify_markers(p, r);
  EXPECT_TRUE(has_rule(r, "MK-DOUBLE-ON")) << rules_of(r);
  EXPECT_FALSE(has_rule(r, "MK-UNCLOSED"));
}

TEST(MarkerNegative, DoubleDeactivate) {
  ProgramBuilder b("bad");
  b.toggle(false);  // program starts in software mode already
  b.stmt({}, 2);
  ir::Program p = b.finish();

  Report r;
  verify::verify_markers(p, r);
  EXPECT_TRUE(has_rule(r, "MK-DOUBLE-OFF")) << rules_of(r);
}

TEST(MarkerNegative, LoopBodyFlipsState) {
  ProgramBuilder b("bad");
  b.begin_loop("i", 0, 4);
  b.toggle(true);
  b.stmt({}, 2);
  b.end_loop();
  ir::Program p = b.finish();

  Report r;
  verify::verify_markers(p, r);
  EXPECT_TRUE(has_rule(r, "MK-LOOP-UNBALANCED")) << rules_of(r);
}

TEST(MarkerNegative, AdjacentPairSurvivedElimination) {
  ProgramBuilder b("bad");
  b.stmt({}, 2);
  b.toggle(true);
  b.toggle(false);
  b.stmt({}, 2);
  ir::Program p = b.finish();

  Report minimal;
  verify::verify_markers(p, minimal);
  EXPECT_TRUE(has_rule(minimal, "MK-REDUNDANT")) << rules_of(minimal);

  // Between insertion and elimination the pair is expected.
  Report raw;
  MarkerCheckOptions opt;
  opt.expect_minimal = false;
  verify::verify_markers(p, raw, opt);
  EXPECT_FALSE(has_rule(raw, "MK-REDUNDANT")) << rules_of(raw);
}

// ---- legality family (TL-*) ------------------------------------------------

/// for i in [0,8) for j in [0,8): A[i][j] = A[i-1][j+1] — dependence
/// distance (1,-1): interchanging, tiling, or jamming the pair is illegal.
ir::Program skewed_nest(ir::ArrayId* out_array) {
  ProgramBuilder b("skew");
  auto A = b.array("A", {8, 8});
  auto i = b.begin_loop("i", 0, 8);
  auto j = b.begin_loop("j", 0, 8);
  b.stmt({ir::store_array(A, {b.sub(i), b.sub(j)}),
          ir::load_array(A, {b.sub(i, -1), b.sub(j, 1)})});
  b.end_loop();
  b.end_loop();
  if (out_array != nullptr) *out_array = A;
  return b.finish();
}

TransformRecord record_of(TransformKind kind, const ir::Program& p) {
  TransformRecord rec;
  rec.kind = kind;
  rec.site = "test-site";
  rec.pre_image = p.top()[0]->clone();
  const auto& outer = static_cast<const LoopNode&>(*p.top()[0]);
  const auto& inner = static_cast<const LoopNode&>(*outer.body[0]);
  rec.band_vars = {outer.var, inner.var};
  return rec;
}

TEST(LegalityNegative, IllegalInterchangePermutation) {
  ir::Program p = skewed_nest(nullptr);
  TransformLog log;
  log.records.push_back(record_of(TransformKind::Interchange, p));
  log.records.back().perm = {1, 0};

  Report r;
  verify::verify_legality(p, log, r);
  EXPECT_TRUE(has_rule(r, "TL-INTERCHANGE")) << rules_of(r);
}

TEST(LegalityNegative, TilingRequiresFullPermutability) {
  ir::Program p = skewed_nest(nullptr);
  TransformLog log;
  log.records.push_back(record_of(TransformKind::Tiling, p));
  log.records.back().tile_outer = 4;
  log.records.back().tile_inner = 4;

  Report r;
  verify::verify_legality(p, log, r);
  EXPECT_TRUE(has_rule(r, "TL-TILE")) << rules_of(r);
}

TEST(LegalityNegative, TileSizeMustDivideTripCount) {
  ProgramBuilder b("clean");
  auto A = b.array("A", {8, 8});
  auto i = b.begin_loop("i", 0, 8);
  auto j = b.begin_loop("j", 0, 8);
  b.stmt({ir::store_array(A, {b.sub(i), b.sub(j)})});
  b.end_loop();
  b.end_loop();
  ir::Program p = b.finish();

  TransformLog log;
  log.records.push_back(record_of(TransformKind::Tiling, p));
  log.records.back().tile_outer = 3;  // 8 % 3 != 0: iterations dropped
  log.records.back().tile_inner = 4;

  Report r;
  verify::verify_legality(p, log, r);
  EXPECT_TRUE(has_rule(r, "TL-TILE")) << rules_of(r);
}

TEST(LegalityNegative, IllegalUnrollJamAndNonDividingFactor) {
  ir::Program skew = skewed_nest(nullptr);
  TransformLog log;
  log.records.push_back(record_of(TransformKind::UnrollJam, skew));
  log.records.back().factor = 2;

  Report r;
  verify::verify_legality(skew, log, r);
  EXPECT_TRUE(has_rule(r, "TL-UNROLL")) << rules_of(r);
  EXPECT_FALSE(has_rule(r, "TL-UNROLL-DIV"));  // 8 % 2 == 0

  log.records.back().factor = 3;  // 8 % 3 != 0
  Report r2;
  verify::verify_legality(skew, log, r2);
  EXPECT_TRUE(has_rule(r2, "TL-UNROLL-DIV")) << rules_of(r2);
}

TEST(LegalityNegative, FusionWithBackwardDependence) {
  ProgramBuilder b("fuse");
  auto A = b.array("A", {16});
  auto i = b.begin_loop("i", 0, 8);
  b.stmt({ir::store_array(A, {b.sub(i)})});
  b.end_loop();
  auto j = b.begin_loop("j", 0, 8);
  b.stmt({ir::load_array(A, {b.sub(j, 1)})});  // consumes A[j+1]: backward
  b.end_loop();
  ir::Program p = b.finish();

  TransformLog log;
  TransformRecord rec;
  rec.kind = TransformKind::Fusion;
  rec.site = "loops (i, j)";
  rec.pre_image = p.top()[0]->clone();
  rec.pre_image_b = p.top()[1]->clone();
  log.records.push_back(std::move(rec));

  Report r;
  verify::verify_legality(p, log, r);
  EXPECT_TRUE(has_rule(r, "TL-FUSION")) << rules_of(r);
}

TEST(LegalityNegative, FusionWithMismatchedBounds) {
  ProgramBuilder b("fuse");
  auto A = b.array("A", {16});
  auto i = b.begin_loop("i", 0, 8);
  b.stmt({ir::store_array(A, {b.sub(i)})});
  b.end_loop();
  auto j = b.begin_loop("j", 0, 12);
  b.stmt({ir::load_array(A, {b.sub(j)})});
  b.end_loop();
  ir::Program p = b.finish();

  TransformLog log;
  TransformRecord rec;
  rec.kind = TransformKind::Fusion;
  rec.pre_image = p.top()[0]->clone();
  rec.pre_image_b = p.top()[1]->clone();
  log.records.push_back(std::move(rec));

  Report r;
  verify::verify_legality(p, log, r);
  EXPECT_TRUE(has_rule(r, "TL-FUSE-BOUNDS")) << rules_of(r);
}

TEST(LegalityNegative, HoistedReferenceUsesLoopVariable) {
  ProgramBuilder b("hoist");
  auto A = b.array("A", {8});
  auto i = b.begin_loop("i", 0, 8);
  b.stmt({ir::store_array(A, {b.sub(i)})});
  b.end_loop();
  ir::Program p = b.finish();

  // Forge a "hoisted" prologue that still depends on the loop variable.
  ir::Stmt s;
  s.refs = {ir::load_array(A, {b.sub(i)})};
  s.compute_ops = 0;
  s.label = "hoist_pre";
  p.top().insert(p.top().begin(),
                 std::make_unique<ir::StmtNode>(std::move(s)));

  TransformLog log;
  Report r;
  verify::verify_legality(p, log, r);
  EXPECT_TRUE(has_rule(r, "TL-HOIST")) << rules_of(r);
}

TEST(LegalityNegative, MalformedRecord) {
  ProgramBuilder b("empty");
  b.stmt({}, 1);
  ir::Program p = b.finish();

  TransformLog log;
  TransformRecord rec;
  rec.kind = TransformKind::Interchange;  // no pre-image attached
  log.records.push_back(std::move(rec));

  Report r;
  verify::verify_legality(p, log, r);
  EXPECT_TRUE(has_rule(r, "TL-RECORD")) << rules_of(r);
}

// ---- locality cross-check family (SP-*) ------------------------------------
//
// Each fixture takes an honest prediction of a real (tiny) program, forges
// exactly one aspect, and asserts the lint names the forgery. The honest
// prediction itself must stay clean (asserted first in every test), so a
// fixture can only pass because of its own tampering.

/// Two streamed arrays: A dominates the access count, B is large enough
/// that per-entity miss tampering clears the absolute-error floor.
ir::Program locality_fixture() {
  ir::ProgramBuilder b("spfix");
  auto A = b.array("A", {65536});
  auto B = b.array("B", {16384});
  auto i = b.begin_loop("i", 0, 65536);
  b.stmt({ir::load_array(A, {b.sub(i)})});
  b.end_loop();
  auto j = b.begin_loop("j", 0, 16384);
  b.stmt({ir::load_array(B, {b.sub(j)})});
  b.end_loop();
  return b.finish();
}

struct SpFixture {
  ir::Program p = locality_fixture();
  locality::ProgramPrediction pred = locality::predict(p);
  locality::MeasuredProfile meas = locality::measure_program(p);

  SpFixture() {
    Report baseline;
    EXPECT_EQ(locality::crosscheck(p, pred, meas, baseline), 0u)
        << baseline.str();
  }

  Report check() {
    Report r;
    locality::crosscheck(p, pred, meas, r);
    return r;
  }

  locality::EntityPrediction& entity(const std::string& name) {
    for (auto& e : pred.entities)
      if (e.entity == name) return e;
    ADD_FAILURE() << "no entity " << name;
    return pred.entities.front();
  }
};

TEST(LocalityNegative, SanityCatchesMissEstimateAboveAccessCount) {
  SpFixture f;
  f.pred.refs[0].l1_misses = f.pred.refs[0].accesses * 2.0;
  const Report r = f.check();
  EXPECT_TRUE(has_rule(r, "SP-SANITY")) << rules_of(r);
}

TEST(LocalityNegative, SanityCatchesTotalsDisagreeingWithRefSum) {
  SpFixture f;
  f.pred.total_accesses += 64.0;  // refs no longer sum to the total
  const Report r = f.check();
  EXPECT_TRUE(has_rule(r, "SP-SANITY")) << rules_of(r);
}

TEST(LocalityNegative, VerdictMustRederiveFromTheIr) {
  SpFixture f;
  f.pred.refs[0].verdict = locality::Verdict::NonAnalyzable;
  f.pred.refs[0].reason = "forged";
  // Keep the per-ref/total sums consistent so only the verdict is wrong.
  f.pred.analyzable_accesses -= f.pred.refs[0].accesses;
  const Report r = f.check();
  EXPECT_TRUE(has_rule(r, "SP-VERDICT")) << rules_of(r);
}

TEST(LocalityNegative, AccessTotalMustMatchSimulationExactly) {
  SpFixture f;
  // Coherent forgery: ref, entity-free total, and analyzable sum all agree,
  // so SP-SANITY stays quiet and only the simulator comparison can object.
  f.pred.refs[0].accesses += 128.0;
  f.pred.total_accesses += 128.0;
  f.pred.analyzable_accesses += 128.0;
  const Report r = f.check();
  EXPECT_TRUE(has_rule(r, "SP-ACCESS")) << rules_of(r);
  EXPECT_FALSE(has_rule(r, "SP-SANITY")) << rules_of(r);
}

TEST(LocalityNegative, PerEntityAccessCountMustMatch) {
  SpFixture f;
  f.entity("B").accesses += 128.0;
  const Report r = f.check();
  EXPECT_TRUE(has_rule(r, "SP-ACCESS-ENTITY")) << rules_of(r);
}

TEST(LocalityNegative, CoverageCatchesPhantomMissingAndUnattributed) {
  SpFixture phantom;
  locality::EntityPrediction ghost;
  ghost.entity = "ghost";
  ghost.accesses = 512.0;
  phantom.pred.entities.push_back(ghost);
  EXPECT_TRUE(has_rule(phantom.check(), "SP-COVERAGE"));

  SpFixture missing;
  missing.pred.entities.erase(missing.pred.entities.begin());
  EXPECT_TRUE(has_rule(missing.check(), "SP-COVERAGE"));

  SpFixture unattributed;
  unattributed.meas.unattributed = 7;
  EXPECT_TRUE(has_rule(unattributed.check(), "SP-COVERAGE"));
}

TEST(LocalityNegative, ProgramMissRatioBeyondToleranceIsFlagged) {
  SpFixture f;
  // Triple every miss estimate coherently: ratio 0.25 -> 0.75, far past
  // the 0.15 absolute tolerance.
  for (auto& ref : f.pred.refs)
    if (ref.l1_misses) *ref.l1_misses *= 3.0;
  for (auto& e : f.pred.entities)
    if (e.l1_misses) *e.l1_misses *= 3.0;
  *f.pred.l1_misses *= 3.0;
  const Report r = f.check();
  EXPECT_TRUE(has_rule(r, "SP-MISS")) << rules_of(r);
}

TEST(LocalityNegative, EntityMissCountBeyondToleranceIsFlagged) {
  SpFixture f;
  // Forge only B (1/5 of the accesses): the program-level ratio moves by
  // 0.12 < 0.15 so SP-MISS stays quiet, but B's own error is over 2x its
  // measured count and clears the absolute floor.
  const double extra = f.entity("B").accesses * 0.6;
  *f.entity("B").l1_misses += extra;
  for (auto& ref : f.pred.refs)
    if (ref.entity == "B" && ref.l1_misses) *ref.l1_misses += extra;
  *f.pred.l1_misses += extra;
  const Report r = f.check();
  EXPECT_TRUE(has_rule(r, "SP-MISS-ENTITY")) << rules_of(r);
  EXPECT_FALSE(has_rule(r, "SP-MISS")) << rules_of(r);
}

/// The acceptance criterion asks for >= 10 distinct rule IDs across the
/// three analyzer families; this meta-test documents the coverage.
TEST(NegativeSuite, CoversAtLeastTenDistinctRules) {
  const char* const covered[] = {
      "SV-SUB-RANK",    "SV-REF-ARRAY",   "SV-REF-SCALAR",
      "SV-REF-POOL",    "SV-SUB-VAR",     "SV-SUB-INDEX-ARRAY",
      "SV-LOOP-STEP",   "SV-LOOP-SHADOW", "SV-BOUND-VAR",
      "SV-LOOP-VAR",    "SV-SCALAR-MULTIDEF", "SV-TRIP-ZERO",
      "SV-LOOP-EMPTY",  "SV-STMT-EMPTY",  "MK-UNCLOSED",
      "MK-DOUBLE-ON",   "MK-DOUBLE-OFF",  "MK-LOOP-UNBALANCED",
      "MK-REDUNDANT",   "TL-INTERCHANGE", "TL-TILE",
      "TL-UNROLL",      "TL-UNROLL-DIV",  "TL-FUSION",
      "TL-FUSE-BOUNDS", "TL-HOIST",       "TL-RECORD",
      "SP-SANITY",      "SP-VERDICT",     "SP-ACCESS",
      "SP-ACCESS-ENTITY", "SP-COVERAGE",  "SP-MISS",
      "SP-MISS-ENTITY",
  };
  EXPECT_GE(std::size(covered), 10u);
}

}  // namespace
}  // namespace selcache
