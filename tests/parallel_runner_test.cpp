// Determinism contract of the parallel experiment engine: a sweep fanned out
// over N worker threads must be bit-identical to the serial sweep — same
// cycles, same improvement percentages, same merged stat counters — for
// every hardware scheme.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace selcache::core {
namespace {

void expect_rows_identical(const std::vector<ImprovementRow>& serial,
                           const std::vector<ImprovementRow>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].benchmark);
    EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
    EXPECT_EQ(serial[i].category, parallel[i].category);
    EXPECT_EQ(serial[i].base_cycles, parallel[i].base_cycles);
    ASSERT_EQ(serial[i].pct.size(), parallel[i].pct.size());
    for (const auto& [v, pct] : serial[i].pct) {
      ASSERT_TRUE(parallel[i].pct.count(v)) << to_string(v);
      // Bit-identical, not approximately equal: both paths must compute the
      // percentage from the same integer cycle counts.
      EXPECT_EQ(pct, parallel[i].pct.at(v)) << to_string(v);
    }
    EXPECT_EQ(serial[i].accesses, parallel[i].accesses);
    EXPECT_EQ(serial[i].stats.all(), parallel[i].stats.all());
  }
}

class SweepDeterminism : public ::testing::TestWithParam<hw::SchemeKind> {};

TEST_P(SweepDeterminism, ParallelSweepMatchesSerialBitForBit) {
  const MachineConfig m = base_machine();
  RunOptions opt;
  opt.scheme = GetParam();

  const auto serial = sweep_suite(m, opt);
  const auto parallel =
      sweep_suite(m, opt, ParallelSweepOptions{.num_threads = 4});
  expect_rows_identical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, SweepDeterminism,
                         ::testing::Values(hw::SchemeKind::Bypass,
                                           hw::SchemeKind::Victim),
                         [](const auto& info) {
                           return std::string(hw::to_string(info.param));
                         });

TEST(SweepDeterminism, SingleWorkloadParallelMatchesSerial) {
  const MachineConfig m = base_machine();
  const auto& w = workloads::all_workloads().front();
  const ImprovementRow serial = improvements_for(w, m);
  const ImprovementRow parallel =
      improvements_for(w, m, RunOptions{},
                       ParallelSweepOptions{.num_threads = 3});
  expect_rows_identical({serial}, {parallel});
}

TEST(SweepDeterminism, RowsCarryAccessCountsAndPrefixedStats) {
  const MachineConfig m = base_machine();
  const auto& w = workloads::all_workloads().front();
  const ImprovementRow row = improvements_for(w, m);
  EXPECT_GT(row.accesses, 0u);
  EXPECT_GT(row.stats.get("base.l1d.hits") + row.stats.get("base.l1d.misses"),
            0u);
  EXPECT_GT(row.stats.get("selective.cpu.instructions"), 0u);
}

}  // namespace
}  // namespace selcache::core
