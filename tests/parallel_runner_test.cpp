// Determinism contract of the parallel experiment engine: a sweep fanned out
// over N worker threads must be bit-identical to the serial sweep — same
// cycles, same improvement percentages, same merged stat counters — for
// every hardware scheme.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace selcache::core {
namespace {

void expect_rows_identical(const std::vector<ImprovementRow>& serial,
                           const std::vector<ImprovementRow>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].benchmark);
    EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
    EXPECT_EQ(serial[i].category, parallel[i].category);
    EXPECT_EQ(serial[i].base_cycles, parallel[i].base_cycles);
    ASSERT_EQ(serial[i].pct.size(), parallel[i].pct.size());
    for (const auto& [v, pct] : serial[i].pct) {
      ASSERT_TRUE(parallel[i].pct.count(v)) << to_string(v);
      // Bit-identical, not approximately equal: both paths must compute the
      // percentage from the same integer cycle counts.
      EXPECT_EQ(pct, parallel[i].pct.at(v)) << to_string(v);
    }
    EXPECT_EQ(serial[i].accesses, parallel[i].accesses);
    EXPECT_EQ(serial[i].stats.all(), parallel[i].stats.all());
  }
}

class SweepDeterminism : public ::testing::TestWithParam<hw::SchemeKind> {};

TEST_P(SweepDeterminism, ParallelSweepMatchesSerialBitForBit) {
  const MachineConfig m = base_machine();
  RunOptions opt;
  opt.scheme = GetParam();

  const auto serial = sweep_suite(m, opt);
  const auto parallel =
      sweep_suite(m, opt, ParallelSweepOptions{.num_threads = 4});
  expect_rows_identical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, SweepDeterminism,
                         ::testing::Values(hw::SchemeKind::Bypass,
                                           hw::SchemeKind::Victim),
                         [](const auto& info) {
                           return std::string(hw::to_string(info.param));
                         });

TEST(SweepDeterminism, SingleWorkloadParallelMatchesSerial) {
  const MachineConfig m = base_machine();
  const auto& w = workloads::all_workloads().front();
  const ImprovementRow serial = improvements_for(w, m);
  const ImprovementRow parallel =
      improvements_for(w, m, RunOptions{},
                       ParallelSweepOptions{.num_threads = 3});
  expect_rows_identical({serial}, {parallel});
}

TEST(SweepDeterminism, RowsCarryAccessCountsAndPrefixedStats) {
  const MachineConfig m = base_machine();
  const auto& w = workloads::all_workloads().front();
  const ImprovementRow row = improvements_for(w, m);
  EXPECT_GT(row.accesses, 0u);
  EXPECT_GT(row.stats.get("base.l1d.hits") + row.stats.get("base.l1d.misses"),
            0u);
  EXPECT_GT(row.stats.get("selective.cpu.instructions"), 0u);
}

// --- failure-isolated (resilient) engine ---------------------------------

FaultSweepOptions toggle_drop_campaign() {
  FaultSweepOptions fopt;
  fopt.fault.kind = fault::FaultKind::ToggleDrop;
  fopt.fault.rate = 0.5;
  fopt.fault.seed = 2026;
  return fopt;
}

/// The determinism contract extended to faults: the same sweep-level fault
/// seed must yield a bit-identical ResilientSweep — rows, FailureReport,
/// and trace captures — at every thread count.
TEST(ResilientDeterminism, FaultedSweepBitIdenticalAcrossThreadCounts) {
  const MachineConfig m = base_machine();
  RunOptions opt;
  const FaultSweepOptions fopt = toggle_drop_campaign();

  std::vector<TraceCapture> serial_traces;
  const ResilientSweep serial = sweep_suite_resilient(
      m, opt, ParallelSweepOptions{.num_threads = 1}, fopt, &serial_traces);
  for (unsigned threads : {4u, 8u}) {
    SCOPED_TRACE(threads);
    std::vector<TraceCapture> traces;
    const ResilientSweep parallel = sweep_suite_resilient(
        m, opt, ParallelSweepOptions{.num_threads = threads}, fopt, &traces);
    expect_rows_identical(serial.rows, parallel.rows);
    EXPECT_EQ(serial.report, parallel.report);
    ASSERT_EQ(serial_traces.size(), traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      EXPECT_EQ(serial_traces[i].workload, traces[i].workload);
      EXPECT_EQ(serial_traces[i].version, traces[i].version);
      EXPECT_EQ(serial_traces[i].recording, traces[i].recording);
    }
  }
  // The rendered report is part of the contract too.
  EXPECT_EQ(serial.report.csv(),
            sweep_suite_resilient(m, opt, ParallelSweepOptions{.num_threads = 4},
                                  fopt)
                .report.csv());
}

/// An injected per-task crash must fail only its own cell: the sweep
/// completes, the cell lands in the FailureReport with its retry count and
/// per-attempt fault seed, and every surviving cell matches the unfaulted
/// sweep bit for bit.
TEST(ResilientDeterminism, InjectedCrashQuarantinesOnlyItsCell) {
  const MachineConfig m = base_machine();
  RunOptions opt;
  FaultSweepOptions fopt;
  fopt.fault.kind = fault::FaultKind::TaskCrash;
  fopt.fault.rate = 1e-7;  // rare: some cells crash, most survive
  fopt.fault.seed = 7;
  fopt.max_retries = 2;

  const ResilientSweep rs = sweep_suite_resilient(m, opt, {}, fopt);
  ASSERT_EQ(rs.report.cells.size(),
            workloads::all_workloads().size() * kAllVersions.size());
  const std::size_t failed = rs.report.failed_cells();
  ASSERT_GT(failed, 0u) << "campaign must actually crash something";
  ASSERT_LT(failed, rs.report.cells.size()) << "and spare something";

  for (const auto& cell : rs.report.cells) {
    SCOPED_TRACE(cell.workload + "/" + cell.version);
    if (cell.status == fault::CellOutcome::Status::Failed) {
      EXPECT_EQ(cell.attempts, fopt.max_retries + 1);
      EXPECT_NE(cell.error.find("injected crash"), std::string::npos);
      std::uint32_t vi = 0;
      while (version_key(kAllVersions[vi]) != cell.version) ++vi;
      EXPECT_EQ(cell.fault_seed,
                fault::task_seed(fopt.fault.seed, cell.workload, vi,
                                 fopt.max_retries));
    } else {
      EXPECT_EQ(cell.status, fault::CellOutcome::Status::Ok);
    }
  }

  // Surviving cells carry the same numbers an unfaulted sweep produces
  // (TaskCrash perturbs nothing unless it kills the run).
  const auto clean = sweep_suite(m, opt);
  ASSERT_EQ(rs.rows.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    bool row_failed = false;
    for (const auto& cell : rs.report.cells)
      if (cell.workload == clean[i].benchmark &&
          cell.status == fault::CellOutcome::Status::Failed)
        row_failed = true;
    if (row_failed) continue;
    SCOPED_TRACE(clean[i].benchmark);
    EXPECT_EQ(rs.rows[i].base_cycles, clean[i].base_cycles);
    for (const auto& [v, pct] : clean[i].pct)
      EXPECT_EQ(rs.rows[i].pct.at(v), pct) << to_string(v);
  }
}

TEST(ResilientDeterminism, RetrySeedsDifferPerAttempt) {
  const std::uint64_t a0 = fault::task_seed(9, "Swim", 4, 0);
  const std::uint64_t a1 = fault::task_seed(9, "Swim", 4, 1);
  EXPECT_NE(a0, a1) << "each retry must see a fresh fault stream";
}

TEST(ResilientDeterminism, WatchdogAloneQuarantinesEveryCell) {
  const auto& w = workloads::all_workloads().front();
  FaultSweepOptions fopt;
  fopt.watchdog_accesses = 50;  // far below any real run
  fopt.max_retries = 0;
  const ResilientSweep rs =
      improvements_for_resilient(w, base_machine(), {}, {}, fopt);
  ASSERT_EQ(rs.report.cells.size(), kAllVersions.size());
  for (const auto& cell : rs.report.cells) {
    EXPECT_EQ(cell.status, fault::CellOutcome::Status::Failed);
    EXPECT_EQ(cell.attempts, 1u);
    EXPECT_NE(cell.error.find("watchdog"), std::string::npos);
  }
}

}  // namespace
}  // namespace selcache::core
