// Tests for the compiler transformations: interchange, tiling,
// unroll-and-jam, scalar replacement, layout selection, and the pipeline.
#include <gtest/gtest.h>

#include "analysis/region_detection.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "transform/interchange.h"
#include "transform/layout_selection.h"
#include "transform/pipeline.h"
#include "transform/scalar_replacement.h"
#include "transform/tiling.h"
#include "transform/unroll_jam.h"

namespace selcache::transform {
namespace {

using ir::load_array;
using ir::load_scalar;
using ir::LoopNode;
using ir::NodeKind;
using ir::Program;
using ir::ProgramBuilder;
using ir::StmtNode;
using ir::store_array;
using ir::Subscript;
using ir::x;

LoopNode& root_loop(Program& p, std::size_t idx = 0) {
  return static_cast<LoopNode&>(*p.top()[idx]);
}

// ---- interchange ----------------------------------------------------------

TEST(Interchange, PaperExampleMovesTemporalReuseInnermost) {
  // The §3.2 example: U[j] += V[j][i] * W[i][j] with i outer, j inner.
  // U[j] has temporal reuse in i, so i should end up innermost.
  ProgramBuilder b("ex");
  const auto U = b.array("U", {64});
  const auto V = b.array("V", {64, 64});
  const auto W = b.array("W", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({load_array(U, {b.sub(j)}),
          load_array(V, {b.sub(j), b.sub(i)}),
          load_array(W, {b.sub(i), b.sub(j)}),
          store_array(U, {b.sub(j)})},
         2);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();

  EXPECT_TRUE(apply_interchange(p, root_loop(p)));
  const auto band = ir::perfect_nest_band(root_loop(p));
  EXPECT_EQ(p.var_names()[band[0]->var], "j");  // j now outer
  EXPECT_EQ(p.var_names()[band[1]->var], "i");  // i innermost
}

TEST(Interchange, FixesColumnWalk) {
  ProgramBuilder b("col");
  const auto A = b.array("A", {64, 64});
  const auto j = b.begin_loop("j", 0, 64);
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)})}, 1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  EXPECT_TRUE(apply_interchange(p, root_loop(p)));
  const auto band = ir::perfect_nest_band(root_loop(p));
  EXPECT_EQ(p.var_names()[band[1]->var], "j");  // row walk restored
}

TEST(Interchange, RefusesIllegalReordering) {
  // A[i][j] = A[i-1][j+1]: distance (1,-1); interchange would flip it.
  ProgramBuilder b("dep");
  const auto A = b.array("A", {64, 64});
  const auto j = b.begin_loop("j", 0, 63);
  const auto i = b.begin_loop("i", 1, 64);
  b.stmt({load_array(A, {b.sub(i, -1), b.sub(j, 1)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  // Wait: band order is (j,i); the dependence in (j,i) coordinates is
  // (-1,1) -> canonicalized (1,-1). Desired swap to (i,j) gives (-1,1):
  // illegal, so interchange must decline.
  EXPECT_FALSE(apply_interchange(p, root_loop(p)));
  EXPECT_EQ(p.var_names()[ir::perfect_nest_band(root_loop(p))[0]->var], "j");
}

TEST(Interchange, SkipsTriangularBounds) {
  ProgramBuilder b("tri");
  const auto A = b.array("A", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", x(i), ir::AffineExpr::constant(64));
  b.stmt({load_array(A, {b.sub(j), b.sub(i)})}, 1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  EXPECT_FALSE(apply_interchange(p, root_loop(p)));
}

TEST(Interchange, SingleLoopNoOp) {
  ProgramBuilder b("one");
  const auto A = b.array("A", {64});
  const auto i = b.begin_loop("i", 0, 64);
  b.stmt({load_array(A, {b.sub(i)})}, 1);
  b.end_loop();
  Program p = b.finish();
  EXPECT_FALSE(apply_interchange(p, root_loop(p)));
}

// ---- tiling ----------------------------------------------------------------

Program big_nest(std::int64_t n = 256) {
  ProgramBuilder b("tile");
  const auto A = b.array("A", {n, n});
  const auto B = b.array("B", {n, n});
  const auto i = b.begin_loop("i", 0, n);
  const auto j = b.begin_loop("j", 0, n);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)}),
          load_array(B, {b.sub(j), b.sub(i)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         1);
  b.end_loop();
  b.end_loop();
  return b.finish();
}

TEST(Tiling, FootprintEstimate) {
  Program p = big_nest(256);
  // Two 256x256 f64 arrays = 1 MB.
  EXPECT_EQ(estimate_footprint(p, root_loop(p)), 2u * 256 * 256 * 8);
}

TEST(Tiling, ProducesFourLoopStructure) {
  Program p = big_nest(256);
  TilingOptions opt;
  opt.tile = 32;
  opt.cache_bytes = 32 * 1024;
  ASSERT_TRUE(apply_tiling(p, root_loop(p), opt));
  const auto band = ir::perfect_nest_band(root_loop(p));
  ASSERT_EQ(band.size(), 4u);
  EXPECT_EQ(p.var_names()[band[0]->var], "it");
  EXPECT_EQ(p.var_names()[band[1]->var], "jt");
  EXPECT_EQ(p.var_names()[band[2]->var], "i");
  EXPECT_EQ(p.var_names()[band[3]->var], "j");
  EXPECT_EQ(band[0]->step, 32);
  EXPECT_EQ(band[2]->step, 1);
  // Inner bounds are tile-relative: i in [it, it+32).
  EXPECT_EQ(band[2]->lower.coeff(band[0]->var), 1);
  EXPECT_EQ(band[2]->upper.constant_term(), 32);
}

TEST(Tiling, SkipsSmallFootprint) {
  Program p = big_nest(16);  // 4 KB: fits in cache
  TilingOptions opt;
  opt.cache_bytes = 32 * 1024;
  EXPECT_FALSE(apply_tiling(p, root_loop(p), opt));
}

TEST(Tiling, SkipsDegenerateTileSizes) {
  Program p = big_nest(254);  // 254 = 2 * 127: largest divisor <= 32 is 2
  TilingOptions opt;
  opt.tile = 32;
  opt.min_tile = 8;
  opt.cache_bytes = 1024;
  EXPECT_FALSE(apply_tiling(p, root_loop(p), opt));
}

TEST(Tiling, IterationCountPreserved) {
  // Property: tiling must not change the iteration space size.
  Program p = big_nest(128);
  TilingOptions opt;
  opt.cache_bytes = 1024;
  ASSERT_TRUE(apply_tiling(p, root_loop(p), opt));
  const auto band = ir::perfect_nest_band(root_loop(p));
  std::int64_t total = 1;
  // Trip counts: (128/32)*(128/32)*32*32 = 128*128.
  total = (128 / band[0]->step) * (128 / band[1]->step) *
          (band[2]->upper.constant_term() - 0) *
          (band[3]->upper.constant_term() - 0);
  EXPECT_EQ(total, 128 * 128);
}

// ---- unroll-and-jam --------------------------------------------------------

TEST(UnrollJam, ReplicatesWithSubstitution) {
  ProgramBuilder b("uj");
  const auto A = b.array("A", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({store_array(A, {b.sub(i), b.sub(j)})}, 1, "s");
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_unroll_jam(p, root_loop(p), 4), 4u);
  const auto band = ir::perfect_nest_band(root_loop(p));
  EXPECT_EQ(band[0]->step, 4);
  ASSERT_EQ(band[1]->body.size(), 4u);
  // Copy k accesses A[i+k][j].
  const auto& copy2 =
      static_cast<const StmtNode&>(*band[1]->body[2]).stmt.refs[0];
  const auto& arr = std::get<ir::Reference::Array>(copy2.target);
  EXPECT_EQ(std::get<Subscript::Affine>(arr.subs[0].value)
                .expr.constant_term(),
            2);
}

TEST(UnrollJam, ShrinksToDivisor) {
  ProgramBuilder b("uj");
  const auto A = b.array("A", {66, 64});
  const auto i = b.begin_loop("i", 0, 66);  // 66 % 4 != 0, 66 % 3 == 0
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({store_array(A, {b.sub(i), b.sub(j)})}, 1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_unroll_jam(p, root_loop(p), 4), 3u);
}

TEST(UnrollJam, RefusesNegativeDistance) {
  // A[i][j] = A[i-1][j+1]: pair not fully permutable -> no jam.
  ProgramBuilder b("uj");
  const auto A = b.array("A", {64, 64});
  const auto i = b.begin_loop("i", 1, 64);
  const auto j = b.begin_loop("j", 0, 63);
  b.stmt({load_array(A, {b.sub(i, -1), b.sub(j, 1)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  EXPECT_EQ(apply_unroll_jam(p, root_loop(p), 4), 1u);
}

// ---- scalar replacement ----------------------------------------------------

TEST(ScalarReplacement, HoistsInvariantLoad) {
  ProgramBuilder b("sr");
  const auto A = b.array("A", {64, 64});
  const auto C = b.array("C", {64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  // C[i] is j-invariant: hoisted to a prologue of the j loop.
  b.stmt({load_array(C, {b.sub(i)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  const auto rep = apply_scalar_replacement(p, root_loop(p));
  EXPECT_EQ(rep.hoisted_loads, 1u);
  // The i-loop body now holds: prologue stmt + j-loop.
  auto& iloop = root_loop(p);
  ASSERT_EQ(iloop.body.size(), 2u);
  EXPECT_EQ(iloop.body[0]->kind, NodeKind::Stmt);
  EXPECT_EQ(static_cast<const StmtNode&>(*iloop.body[0]).stmt.label,
            "hoist_pre");
  // The inner statement lost the load.
  const auto& inner = static_cast<const LoopNode&>(*iloop.body[1]);
  EXPECT_EQ(static_cast<const StmtNode&>(*inner.body[0]).stmt.refs.size(),
            1u);
}

TEST(ScalarReplacement, ReductionGetsPrologueAndEpilogue) {
  ProgramBuilder b("sr");
  const auto S = b.array("S", {64});
  const auto A = b.array("A", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  // S[i] += A[i][j]: the S[i] load and store are both j-invariant.
  b.stmt({load_array(S, {b.sub(i)}), load_array(A, {b.sub(i), b.sub(j)}),
          store_array(S, {b.sub(i)})},
         1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  const auto rep = apply_scalar_replacement(p, root_loop(p));
  EXPECT_EQ(rep.hoisted_stores, 1u);
  auto& iloop = root_loop(p);
  ASSERT_EQ(iloop.body.size(), 3u);  // prologue, j loop, epilogue
  EXPECT_EQ(static_cast<const StmtNode&>(*iloop.body[2]).stmt.label,
            "hoist_post");
  EXPECT_TRUE(
      static_cast<const StmtNode&>(*iloop.body[2]).stmt.refs[0].is_write);
}

TEST(ScalarReplacement, RespectsAliasingStores) {
  ProgramBuilder b("sr");
  const auto A = b.array("A", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  // A[0][0] is invariant, but A[i][j] writes the same array with a
  // different pattern: hoisting would be unsound.
  b.stmt({load_array(A, {b.csub(0), b.csub(0)}),
          store_array(A, {b.sub(i), b.sub(j)})},
         1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  const auto rep = apply_scalar_replacement(p, root_loop(p));
  EXPECT_EQ(rep.hoisted_loads, 0u);
}

TEST(ScalarReplacement, DeduplicatesJammedRefs) {
  ProgramBuilder b("sr");
  const auto A = b.array("A", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({load_array(A, {b.sub(i), b.sub(j)})}, 1, "a");
  b.stmt({load_array(A, {b.sub(i), b.sub(j)}),
          store_array(A, {b.sub(i), b.sub(j, 1)})},
         1, "b");
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  const auto rep = apply_scalar_replacement(p, root_loop(p));
  EXPECT_EQ(rep.deduplicated, 1u);
}

TEST(ScalarReplacement, RefsEqualSemantics) {
  const auto r1 = load_array(0, {Subscript::affine(x(ir::Var{0}))});
  auto r2 = r1;
  EXPECT_TRUE(refs_equal(r1, r2));
  r2.is_write = true;
  EXPECT_FALSE(refs_equal(r1, r2));
  // Pointer chases never compare equal (each advances the walk).
  EXPECT_FALSE(refs_equal(ir::chase(0), ir::chase(0)));
}

// ---- layout selection -------------------------------------------------------

TEST(LayoutSelection, FlipsColumnWalkedArray) {
  ProgramBuilder b("ls");
  const auto V = b.array("V", {64, 64});
  const auto W = b.array("W", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  // Innermost j: V[i][j] row walk (keep row-major), W[j][i] column walk
  // (flip to column-major) — the paper's V/W example.
  b.stmt({load_array(V, {b.sub(i), b.sub(j)}),
          load_array(W, {b.sub(j), b.sub(i)})},
         1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  LoopNode* root = &root_loop(p);
  EXPECT_EQ(select_layouts(p, std::span<LoopNode* const>(&root, 1)), 1u);
  EXPECT_EQ(p.array(V).layout, ir::Layout::RowMajor);
  EXPECT_EQ(p.array(W).layout, ir::Layout::ColMajor);
}

TEST(LayoutSelection, MajorityVoteAcrossRefs) {
  ProgramBuilder b("ls");
  const auto W = b.array("W", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({load_array(W, {b.sub(j), b.sub(i)}),
          load_array(W, {b.sub(j), b.sub(i, 1)}),
          store_array(W, {b.sub(i), b.sub(j)})},
         1);
  b.end_loop();
  b.end_loop();
  Program p = b.finish();
  LoopNode* root = &root_loop(p);
  select_layouts(p, std::span<LoopNode* const>(&root, 1));
  EXPECT_EQ(p.array(W).layout, ir::Layout::ColMajor);  // 2 col vs 1 row
}

// ---- whole pipeline ---------------------------------------------------------

TEST(Pipeline, OptimizesCompilerRegionsOnly) {
  ProgramBuilder b("pipe");
  const auto A = b.array("A", {128, 128});
  const auto H = b.chase_pool("H", 64, 16);
  // Compiler-friendly hostile nest.
  {
    const auto j = b.begin_loop("j", 0, 128);
    const auto i = b.begin_loop("i", 0, 128);
    b.stmt({load_array(A, {b.sub(i), b.sub(j)}),
            store_array(A, {b.sub(i), b.sub(j)})},
           1);
    b.end_loop();
    b.end_loop();
  }
  // Hardware loop.
  b.begin_loop("w", 0, 64);
  b.stmt({ir::chase(H)}, 1);
  b.end_loop();
  Program p = b.finish();

  OptimizeOptions opt;
  opt.insert_markers = true;
  const OptimizeReport rep = optimize_program(p, opt);
  EXPECT_EQ(rep.compiler_regions, 1u);
  EXPECT_EQ(rep.interchanged, 1u);
  EXPECT_EQ(rep.markers_final, 2u);
  EXPECT_GE(rep.markers_inserted, 2u);
  // The hardware loop is untouched: still a single chase statement.
  const auto& hw_loop = static_cast<const LoopNode&>(*p.top()[2]);
  EXPECT_EQ(hw_loop.body.size(), 1u);
}

TEST(Pipeline, FlagsDisablePasses) {
  Program p = big_nest(256);
  OptimizeOptions opt;
  opt.enable_interchange = false;
  opt.enable_tiling = false;
  opt.enable_unroll_jam = false;
  opt.enable_scalar_replacement = false;
  opt.enable_layout_selection = false;
  const OptimizeReport rep = optimize_program(p, opt);
  EXPECT_EQ(rep.interchanged + rep.tiled + rep.unrolled + rep.hoisted_refs +
                rep.layouts_changed,
            0u);
}

}  // namespace
}  // namespace selcache::transform
