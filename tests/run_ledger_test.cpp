// Run-ledger tests: journal framing (escaping, torn tails, checksum
// corruption), run identity (RunSpec fingerprint round-trip + tamper
// rejection), deterministic retry backoff, and the checkpoint engine
// itself — fresh runs match the plain sweep engine, suspension leaves a
// resumable journal, and resume trusts `done` records only when the stored
// result round-trips with a matching fingerprint.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "run/checkpoint.h"
#include "run/journal.h"
#include "run/spec.h"
#include "workloads/registry.h"

namespace selcache::run {
namespace {

namespace fs = std::filesystem;

// -- journal framing ---------------------------------------------------------

TEST(Journal, RecordEncodeDecodeRoundTrip) {
  JournalRecord rec("started");
  rec.add("cell", "TPC-D,Q6/selective").add("attempt", std::uint64_t{2});
  const std::string payload = encode_record(rec);
  JournalRecord back;
  ASSERT_TRUE(decode_record(payload, &back));
  EXPECT_EQ(back.type, "started");
  ASSERT_EQ(back.fields.size(), 2u);
  EXPECT_EQ(back.get("cell"), "TPC-D,Q6/selective");
  EXPECT_EQ(back.get_u64("attempt"), 2u);
}

TEST(Journal, EscapingCoversEveryFramingByte) {
  // The five escaped bytes — %, TAB, LF, CR, '=' — in both keys and values,
  // plus a value that looks like an escape sequence itself.
  JournalRecord rec("failed");
  rec.add("rea=son", "a\tb\nc\rd%e=f");
  rec.add("pct", "100%25");  // literal "%25" must survive, not decode twice
  JournalRecord back;
  ASSERT_TRUE(decode_record(encode_record(rec), &back));
  EXPECT_EQ(back.get("rea=son"), "a\tb\nc\rd%e=f");
  EXPECT_EQ(back.get("pct"), "100%25");
}

TEST(Journal, DecodeRejectsMalformedPayloads) {
  JournalRecord out;
  EXPECT_FALSE(decode_record("", &out));
  EXPECT_FALSE(decode_record("type\tno-equals-field", &out));
}

TEST(Journal, MissingFileReadsAsEmpty) {
  const auto r = read_journal("/nonexistent/selcache/journal.wal");
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.corrupt);
}

class JournalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("selcache_journal_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".wal"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  void append_n(int n) {
    JournalWriter w(path_, /*sync_each=*/false);
    ASSERT_TRUE(w.ok());
    for (int i = 0; i < n; ++i) {
      JournalRecord rec("planned");
      rec.add("cell", "w/" + std::to_string(i));
      ASSERT_TRUE(w.append(rec));
    }
  }

  std::string path_;
};

TEST_F(JournalFileTest, AppendReadRoundTrip) {
  append_n(3);
  const auto r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[2].get("cell"), "w/2");
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.corrupt);
}

TEST_F(JournalFileTest, TornTailIsDroppedNotFatal) {
  append_n(3);
  // Chop bytes off the final frame: every truncation point must drop only
  // the tail record and keep the first two intact.
  const auto full = fs::file_size(path_);
  for (std::uintmax_t cut = 1; cut < 12; ++cut) {
    fs::resize_file(path_, full - cut);
    const auto r = read_journal(path_);
    EXPECT_EQ(r.records.size(), 2u) << "cut=" << cut;
    EXPECT_TRUE(r.torn_tail) << "cut=" << cut;
    EXPECT_FALSE(r.corrupt) << "cut=" << cut;
    EXPECT_GT(r.bytes_dropped, 0u) << "cut=" << cut;
    fs::remove(path_);
    append_n(3);
  }
}

TEST_F(JournalFileTest, ChecksumCorruptionAtTailIsATornTail) {
  append_n(2);
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xff');
  }
  const auto r = read_journal(path_);
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_FALSE(r.corrupt);
}

TEST_F(JournalFileTest, MidFileCorruptionFlagsCorruptAndKeepsPrefix) {
  append_n(1);
  const auto first = fs::file_size(path_);
  {
    JournalWriter w(path_, false);
    JournalRecord rec("done");
    rec.add("cell", "w/9");
    ASSERT_TRUE(w.append(rec));
    ASSERT_TRUE(w.append(rec));
  }
  {
    // Smash a byte inside the SECOND record — corruption before the tail.
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(first) + 14, std::ios::beg);
    f.put('\xee');
  }
  const auto r = read_journal(path_);
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_TRUE(r.corrupt);
  EXPECT_GT(r.bytes_dropped, 0u);
}

TEST_F(JournalFileTest, WriterSurvivesReopenAndAppends) {
  append_n(2);
  append_n(1);  // second writer appends, never truncates
  EXPECT_EQ(read_journal(path_).records.size(), 3u);
}

// -- run identity ------------------------------------------------------------

RunSpec demo_spec() {
  RunSpec s;
  s.kind = "sweep";
  s.workload = "TPC-D,Q6";
  s.machine = "base";
  s.scheme = "bypass";
  s.reuse_tape = false;
  s.machine_fp = core::machine_fingerprint(core::base_machine());
  s.stream_fp = core::stream_fingerprint({});
  return s;
}

TEST(RunSpec, IdIsStableAndSensitiveToInputs) {
  const RunSpec a = demo_spec();
  EXPECT_EQ(run_id(a), run_id(a)) << "id must be a pure function of the spec";
  EXPECT_EQ(run_id(a).size(), 16u);

  RunSpec b = a;
  b.workload = "Chaos";
  EXPECT_NE(run_id(a), run_id(b));
  RunSpec c = a;
  c.machine = "memlat";
  EXPECT_NE(run_id(a), run_id(c));
  RunSpec d = a;
  d.reuse_tape = true;
  EXPECT_NE(run_id(a), run_id(d));
  RunSpec e = a;
  e.machine_fp ^= 1;
  EXPECT_NE(run_id(a), run_id(e));
}

TEST(RunSpec, OutputPathsAreNotIdentity) {
  // Where the CSV lands does not change what the run IS: a run dir moved to
  // a machine with different output paths must still resume.
  RunSpec a = demo_spec();
  RunSpec b = a;
  b.csv_out = "/tmp/other.csv";
  b.jsonl_out = "/tmp/other.jsonl";
  EXPECT_EQ(run_id(a), run_id(b));
}

TEST(RunSpec, RecordRoundTripAndTamperRejection) {
  const RunSpec a = demo_spec();
  const JournalRecord rec = to_record(a);
  const auto back = from_record(rec);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(run_id(*back), run_id(a));
  EXPECT_EQ(back->workload, a.workload);
  EXPECT_EQ(back->kind, a.kind);

  // An edited header (workload swapped, id left stale) must be rejected —
  // this is the franken-run guard.
  JournalRecord tampered = rec;
  for (auto& [k, v] : tampered.fields)
    if (k == "workload") v = "Chaos";
  EXPECT_FALSE(from_record(tampered).has_value());

  JournalRecord wrong_type("planned");
  EXPECT_FALSE(from_record(wrong_type).has_value());
}

// -- retry backoff -----------------------------------------------------------

TEST(RetryBackoff, DeterministicBoundedAndCapped) {
  // Attempt 0 (the first try) never waits.
  EXPECT_EQ(retry_backoff_delay_ms(50, "w", 0, 0), 0u);
  // Zero base = no waiting at any attempt.
  EXPECT_EQ(retry_backoff_delay_ms(0, "w", 0, 3), 0u);

  // Deterministic: same inputs, same delay.
  EXPECT_EQ(retry_backoff_delay_ms(50, "Vpenta", 2, 1),
            retry_backoff_delay_ms(50, "Vpenta", 2, 1));
  // Jitter de-correlates sibling cells.
  bool any_differ = false;
  for (std::size_t vi = 1; vi < 5; ++vi)
    any_differ |= retry_backoff_delay_ms(50, "Vpenta", vi, 1) !=
                  retry_backoff_delay_ms(50, "Vpenta", 0, 1);
  EXPECT_TRUE(any_differ);

  // Bounds: base*2^(k-1) <= delay < base*2^(k-1) + base, exponent capped.
  for (std::uint32_t k = 1; k <= 12; ++k) {
    const std::uint64_t delay = retry_backoff_delay_ms(10, "w", 1, k);
    const std::uint64_t expo = std::uint64_t{1} << (k - 1 < 6 ? k - 1 : 6);
    EXPECT_GE(delay, 10 * expo) << "attempt " << k;
    EXPECT_LT(delay, 10 * expo + 10) << "attempt " << k;
  }
}

// -- checkpoint engine -------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("selcache_ckpt_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

void expect_rows_equal(const core::ImprovementRow& a,
                       const core::ImprovementRow& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.base_cycles, b.base_cycles);
  ASSERT_EQ(a.pct.size(), b.pct.size());
  for (const auto& [v, pct] : a.pct) {
    auto it = b.pct.find(v);
    ASSERT_NE(it, b.pct.end());
    EXPECT_EQ(pct, it->second) << core::version_key(v);
  }
  EXPECT_EQ(a.accesses, b.accesses);
}

TEST_F(CheckpointTest, FreshCompleteRunMatchesPlainEngine) {
  const auto out = run_checkpointed(dir_, demo_spec(), {});
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_TRUE(out.complete);
  EXPECT_FALSE(out.suspended);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.cells_done, out.cells.size());
  EXPECT_EQ(out.cells_quarantined, 0u);

  const auto& w = workloads::workload("TPC-D,Q6");
  const auto plain = core::improvements_for(w, core::base_machine(), {});
  expect_rows_equal(out.rows[0], plain);

  // The journal records the whole lifecycle and ends complete.
  const auto st = inspect_run(dir_);
  ASSERT_TRUE(st.error.empty()) << st.error;
  EXPECT_TRUE(st.complete);
  EXPECT_FALSE(st.suspended);
  EXPECT_EQ(st.id, out.id);
  for (const auto& c : st.cells) EXPECT_EQ(c.status, "done") << c.workload;
}

TEST_F(CheckpointTest, PreTrippedStopTokenSuspendsBeforeAnyCell) {
  std::atomic<int> stop{1};
  CheckpointOptions opts;
  opts.stop = &stop;
  const auto out = run_checkpointed(dir_, demo_spec(), opts);
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_TRUE(out.suspended);
  EXPECT_FALSE(out.complete);
  EXPECT_EQ(out.cells_done, 0u);

  const auto st = inspect_run(dir_);
  EXPECT_TRUE(st.suspended);
  EXPECT_FALSE(st.complete);

  // Resume with the token cleared: finishes and matches the plain engine.
  stop.store(0);
  const auto res = resume_checkpointed(dir_, opts);
  ASSERT_TRUE(res.error.empty()) << res.error;
  EXPECT_TRUE(res.complete);
  ASSERT_EQ(res.rows.size(), 1u);
  const auto& w = workloads::workload("TPC-D,Q6");
  expect_rows_equal(res.rows[0],
                    core::improvements_for(w, core::base_machine(), {}));
}

TEST_F(CheckpointTest, ResumeOfCompleteRunLoadsEverythingFromStore) {
  const auto first = run_checkpointed(dir_, demo_spec(), {});
  ASSERT_TRUE(first.complete);
  const auto again = resume_checkpointed(dir_, {});
  ASSERT_TRUE(again.error.empty()) << again.error;
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(again.cells_done, 0u) << "nothing should re-simulate";
  EXPECT_EQ(again.cells_from_store, first.cells.size());
  ASSERT_EQ(again.rows.size(), 1u);
  expect_rows_equal(again.rows[0], first.rows[0]);
}

TEST_F(CheckpointTest, TamperedStoreDegradesToReRunNotWrongOutput) {
  const auto first = run_checkpointed(dir_, demo_spec(), {});
  ASSERT_TRUE(first.complete);
  // Smash every stored cell: the journal still promises `done`, but the
  // store can no longer substantiate it — resume must re-simulate.
  for (const auto& e :
       fs::directory_iterator(fs::path(dir_) / "store" / "cells"))
    fs::resize_file(e.path(), 8);
  const auto res = resume_checkpointed(dir_, {});
  ASSERT_TRUE(res.error.empty()) << res.error;
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.cells_from_store, 0u);
  EXPECT_EQ(res.cells_done, first.cells.size());
  ASSERT_EQ(res.rows.size(), 1u);
  expect_rows_equal(res.rows[0], first.rows[0]);
}

TEST_F(CheckpointTest, SpecMismatchIsRejected) {
  ASSERT_TRUE(run_checkpointed(dir_, demo_spec(), {}).error.empty());
  RunSpec other = demo_spec();
  other.workload = "Chaos";
  const auto out = run_checkpointed(dir_, other, {});
  EXPECT_FALSE(out.error.empty())
      << "a run dir must refuse a different spec";
}

TEST_F(CheckpointTest, ResumeWithoutJournalIsAnError) {
  fs::create_directories(dir_);
  const auto out = resume_checkpointed(dir_, {});
  EXPECT_FALSE(out.error.empty());
  const auto st = inspect_run(dir_);
  EXPECT_FALSE(st.error.empty());
}

TEST_F(CheckpointTest, ParallelRunIsByteIdenticalToSerial) {
  const auto serial = run_checkpointed(dir_, demo_spec(), {});
  ASSERT_TRUE(serial.complete);
  const std::string dir2 = dir_ + "_par";
  fs::remove_all(dir2);
  CheckpointOptions opts;
  opts.threads = 4;
  const auto par = run_checkpointed(dir2, demo_spec(), opts);
  fs::remove_all(dir2);
  ASSERT_TRUE(par.complete);
  ASSERT_EQ(par.rows.size(), serial.rows.size());
  expect_rows_equal(par.rows[0], serial.rows[0]);
}

TEST_F(CheckpointTest, ExpiredRunDeadlineSuspendsResumably) {
  CheckpointOptions opts;
  opts.run_deadline_ms = 1;  // expires before the first cell finishes
  const auto out = run_checkpointed(dir_, demo_spec(), opts);
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_TRUE(out.suspended);
  EXPECT_FALSE(out.complete);

  const auto res = resume_checkpointed(dir_, {});
  ASSERT_TRUE(res.error.empty()) << res.error;
  EXPECT_TRUE(res.complete);
  const auto& w = workloads::workload("TPC-D,Q6");
  expect_rows_equal(res.rows[0],
                    core::improvements_for(w, core::base_machine(), {}));
}

}  // namespace
}  // namespace selcache::run
