# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/memsys_cache_test[1]_include.cmake")
include("/root/repo/build/tests/memsys_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/selective_property_test[1]_include.cmake")
include("/root/repo/build/tests/hw_extra_schemes_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/column_assoc_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_extra_test[1]_include.cmake")
include("/root/repo/build/tests/workload_scale_test[1]_include.cmake")
include("/root/repo/build/tests/region_semantics_test[1]_include.cmake")
