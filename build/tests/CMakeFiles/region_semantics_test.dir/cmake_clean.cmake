file(REMOVE_RECURSE
  "CMakeFiles/region_semantics_test.dir/region_semantics_test.cpp.o"
  "CMakeFiles/region_semantics_test.dir/region_semantics_test.cpp.o.d"
  "region_semantics_test"
  "region_semantics_test.pdb"
  "region_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
