# Empty dependencies file for region_semantics_test.
# This may be replaced when dependencies are built.
