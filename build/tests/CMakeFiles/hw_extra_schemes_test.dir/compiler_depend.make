# Empty compiler generated dependencies file for hw_extra_schemes_test.
# This may be replaced when dependencies are built.
