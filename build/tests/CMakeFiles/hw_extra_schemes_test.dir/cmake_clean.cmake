file(REMOVE_RECURSE
  "CMakeFiles/hw_extra_schemes_test.dir/hw_extra_schemes_test.cpp.o"
  "CMakeFiles/hw_extra_schemes_test.dir/hw_extra_schemes_test.cpp.o.d"
  "hw_extra_schemes_test"
  "hw_extra_schemes_test.pdb"
  "hw_extra_schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_extra_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
