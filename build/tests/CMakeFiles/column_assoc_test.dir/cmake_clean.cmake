file(REMOVE_RECURSE
  "CMakeFiles/column_assoc_test.dir/column_assoc_test.cpp.o"
  "CMakeFiles/column_assoc_test.dir/column_assoc_test.cpp.o.d"
  "column_assoc_test"
  "column_assoc_test.pdb"
  "column_assoc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_assoc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
