# Empty compiler generated dependencies file for column_assoc_test.
# This may be replaced when dependencies are built.
