file(REMOVE_RECURSE
  "CMakeFiles/memsys_cache_test.dir/memsys_cache_test.cpp.o"
  "CMakeFiles/memsys_cache_test.dir/memsys_cache_test.cpp.o.d"
  "memsys_cache_test"
  "memsys_cache_test.pdb"
  "memsys_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsys_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
