# Empty compiler generated dependencies file for memsys_cache_test.
# This may be replaced when dependencies are built.
