file(REMOVE_RECURSE
  "CMakeFiles/selective_property_test.dir/selective_property_test.cpp.o"
  "CMakeFiles/selective_property_test.dir/selective_property_test.cpp.o.d"
  "selective_property_test"
  "selective_property_test.pdb"
  "selective_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
