# Empty dependencies file for selective_property_test.
# This may be replaced when dependencies are built.
