file(REMOVE_RECURSE
  "CMakeFiles/memsys_hierarchy_test.dir/memsys_hierarchy_test.cpp.o"
  "CMakeFiles/memsys_hierarchy_test.dir/memsys_hierarchy_test.cpp.o.d"
  "memsys_hierarchy_test"
  "memsys_hierarchy_test.pdb"
  "memsys_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsys_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
