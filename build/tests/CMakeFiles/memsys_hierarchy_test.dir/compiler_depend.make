# Empty compiler generated dependencies file for memsys_hierarchy_test.
# This may be replaced when dependencies are built.
