file(REMOVE_RECURSE
  "CMakeFiles/workload_scale_test.dir/workload_scale_test.cpp.o"
  "CMakeFiles/workload_scale_test.dir/workload_scale_test.cpp.o.d"
  "workload_scale_test"
  "workload_scale_test.pdb"
  "workload_scale_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
