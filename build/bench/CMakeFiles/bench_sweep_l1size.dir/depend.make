# Empty dependencies file for bench_sweep_l1size.
# This may be replaced when dependencies are built.
