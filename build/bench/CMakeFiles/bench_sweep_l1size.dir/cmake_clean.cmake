file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_l1size.dir/bench_sweep_l1size.cpp.o"
  "CMakeFiles/bench_sweep_l1size.dir/bench_sweep_l1size.cpp.o.d"
  "bench_sweep_l1size"
  "bench_sweep_l1size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_l1size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
