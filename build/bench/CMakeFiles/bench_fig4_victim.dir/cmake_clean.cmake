file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_victim.dir/bench_fig4_victim.cpp.o"
  "CMakeFiles/bench_fig4_victim.dir/bench_fig4_victim.cpp.o.d"
  "bench_fig4_victim"
  "bench_fig4_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
