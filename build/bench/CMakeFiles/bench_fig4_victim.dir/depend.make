# Empty dependencies file for bench_fig4_victim.
# This may be replaced when dependencies are built.
