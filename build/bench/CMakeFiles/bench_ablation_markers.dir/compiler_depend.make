# Empty compiler generated dependencies file for bench_ablation_markers.
# This may be replaced when dependencies are built.
