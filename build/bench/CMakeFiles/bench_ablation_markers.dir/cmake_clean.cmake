file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_markers.dir/bench_ablation_markers.cpp.o"
  "CMakeFiles/bench_ablation_markers.dir/bench_ablation_markers.cpp.o.d"
  "bench_ablation_markers"
  "bench_ablation_markers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_markers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
