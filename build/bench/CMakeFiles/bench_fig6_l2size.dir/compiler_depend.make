# Empty compiler generated dependencies file for bench_fig6_l2size.
# This may be replaced when dependencies are built.
