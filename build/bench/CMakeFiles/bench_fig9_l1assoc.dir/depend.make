# Empty dependencies file for bench_fig9_l1assoc.
# This may be replaced when dependencies are built.
