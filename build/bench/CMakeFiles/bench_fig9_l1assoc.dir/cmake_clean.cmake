file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_l1assoc.dir/bench_fig9_l1assoc.cpp.o"
  "CMakeFiles/bench_fig9_l1assoc.dir/bench_fig9_l1assoc.cpp.o.d"
  "bench_fig9_l1assoc"
  "bench_fig9_l1assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_l1assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
