file(REMOVE_RECURSE
  "CMakeFiles/bench_inspect.dir/bench_inspect.cpp.o"
  "CMakeFiles/bench_inspect.dir/bench_inspect.cpp.o.d"
  "bench_inspect"
  "bench_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
