# Empty compiler generated dependencies file for bench_fig5_memlat.
# This may be replaced when dependencies are built.
