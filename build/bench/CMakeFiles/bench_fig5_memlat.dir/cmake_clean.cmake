file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_memlat.dir/bench_fig5_memlat.cpp.o"
  "CMakeFiles/bench_fig5_memlat.dir/bench_fig5_memlat.cpp.o.d"
  "bench_fig5_memlat"
  "bench_fig5_memlat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_memlat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
