file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_base.dir/bench_fig4_base.cpp.o"
  "CMakeFiles/bench_fig4_base.dir/bench_fig4_base.cpp.o.d"
  "bench_fig4_base"
  "bench_fig4_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
