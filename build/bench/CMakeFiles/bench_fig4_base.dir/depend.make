# Empty dependencies file for bench_fig4_base.
# This may be replaced when dependencies are built.
