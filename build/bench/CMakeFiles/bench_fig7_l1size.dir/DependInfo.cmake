
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_l1size.cpp" "bench/CMakeFiles/bench_fig7_l1size.dir/bench_fig7_l1size.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_l1size.dir/bench_fig7_l1size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
