# Empty dependencies file for bench_fig7_l1size.
# This may be replaced when dependencies are built.
