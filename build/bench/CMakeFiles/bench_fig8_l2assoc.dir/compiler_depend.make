# Empty compiler generated dependencies file for bench_fig8_l2assoc.
# This may be replaced when dependencies are built.
