file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_l2assoc.dir/bench_fig8_l2assoc.cpp.o"
  "CMakeFiles/bench_fig8_l2assoc.dir/bench_fig8_l2assoc.cpp.o.d"
  "bench_fig8_l2assoc"
  "bench_fig8_l2assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_l2assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
