file(REMOVE_RECURSE
  "CMakeFiles/tpcd_query.dir/tpcd_query.cpp.o"
  "CMakeFiles/tpcd_query.dir/tpcd_query.cpp.o.d"
  "tpcd_query"
  "tpcd_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
