# Empty dependencies file for tpcd_query.
# This may be replaced when dependencies are built.
