file(REMOVE_RECURSE
  "CMakeFiles/region_detection.dir/region_detection.cpp.o"
  "CMakeFiles/region_detection.dir/region_detection.cpp.o.d"
  "region_detection"
  "region_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
