# Empty compiler generated dependencies file for region_detection.
# This may be replaced when dependencies are built.
