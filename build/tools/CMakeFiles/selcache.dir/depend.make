# Empty dependencies file for selcache.
# This may be replaced when dependencies are built.
