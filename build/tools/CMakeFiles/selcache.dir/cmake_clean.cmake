file(REMOVE_RECURSE
  "CMakeFiles/selcache.dir/selcache_cli.cpp.o"
  "CMakeFiles/selcache.dir/selcache_cli.cpp.o.d"
  "selcache"
  "selcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
