file(REMOVE_RECURSE
  "CMakeFiles/selcache_ir.dir/ir/builder.cpp.o"
  "CMakeFiles/selcache_ir.dir/ir/builder.cpp.o.d"
  "CMakeFiles/selcache_ir.dir/ir/expr.cpp.o"
  "CMakeFiles/selcache_ir.dir/ir/expr.cpp.o.d"
  "CMakeFiles/selcache_ir.dir/ir/parser.cpp.o"
  "CMakeFiles/selcache_ir.dir/ir/parser.cpp.o.d"
  "CMakeFiles/selcache_ir.dir/ir/printer.cpp.o"
  "CMakeFiles/selcache_ir.dir/ir/printer.cpp.o.d"
  "CMakeFiles/selcache_ir.dir/ir/program.cpp.o"
  "CMakeFiles/selcache_ir.dir/ir/program.cpp.o.d"
  "CMakeFiles/selcache_ir.dir/ir/ref.cpp.o"
  "CMakeFiles/selcache_ir.dir/ir/ref.cpp.o.d"
  "CMakeFiles/selcache_ir.dir/ir/stmt.cpp.o"
  "CMakeFiles/selcache_ir.dir/ir/stmt.cpp.o.d"
  "libselcache_ir.a"
  "libselcache_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
