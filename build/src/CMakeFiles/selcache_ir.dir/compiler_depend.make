# Empty compiler generated dependencies file for selcache_ir.
# This may be replaced when dependencies are built.
