file(REMOVE_RECURSE
  "libselcache_ir.a"
)
