
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/selcache_ir.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/selcache_ir.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/selcache_ir.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/selcache_ir.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/CMakeFiles/selcache_ir.dir/ir/parser.cpp.o" "gcc" "src/CMakeFiles/selcache_ir.dir/ir/parser.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/selcache_ir.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/selcache_ir.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/CMakeFiles/selcache_ir.dir/ir/program.cpp.o" "gcc" "src/CMakeFiles/selcache_ir.dir/ir/program.cpp.o.d"
  "/root/repo/src/ir/ref.cpp" "src/CMakeFiles/selcache_ir.dir/ir/ref.cpp.o" "gcc" "src/CMakeFiles/selcache_ir.dir/ir/ref.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/CMakeFiles/selcache_ir.dir/ir/stmt.cpp.o" "gcc" "src/CMakeFiles/selcache_ir.dir/ir/stmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
