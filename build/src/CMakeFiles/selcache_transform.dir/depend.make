# Empty dependencies file for selcache_transform.
# This may be replaced when dependencies are built.
