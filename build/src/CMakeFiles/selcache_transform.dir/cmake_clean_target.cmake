file(REMOVE_RECURSE
  "libselcache_transform.a"
)
