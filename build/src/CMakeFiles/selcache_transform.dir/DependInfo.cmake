
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/fusion.cpp" "src/CMakeFiles/selcache_transform.dir/transform/fusion.cpp.o" "gcc" "src/CMakeFiles/selcache_transform.dir/transform/fusion.cpp.o.d"
  "/root/repo/src/transform/interchange.cpp" "src/CMakeFiles/selcache_transform.dir/transform/interchange.cpp.o" "gcc" "src/CMakeFiles/selcache_transform.dir/transform/interchange.cpp.o.d"
  "/root/repo/src/transform/layout_selection.cpp" "src/CMakeFiles/selcache_transform.dir/transform/layout_selection.cpp.o" "gcc" "src/CMakeFiles/selcache_transform.dir/transform/layout_selection.cpp.o.d"
  "/root/repo/src/transform/pipeline.cpp" "src/CMakeFiles/selcache_transform.dir/transform/pipeline.cpp.o" "gcc" "src/CMakeFiles/selcache_transform.dir/transform/pipeline.cpp.o.d"
  "/root/repo/src/transform/scalar_replacement.cpp" "src/CMakeFiles/selcache_transform.dir/transform/scalar_replacement.cpp.o" "gcc" "src/CMakeFiles/selcache_transform.dir/transform/scalar_replacement.cpp.o.d"
  "/root/repo/src/transform/tiling.cpp" "src/CMakeFiles/selcache_transform.dir/transform/tiling.cpp.o" "gcc" "src/CMakeFiles/selcache_transform.dir/transform/tiling.cpp.o.d"
  "/root/repo/src/transform/unroll_jam.cpp" "src/CMakeFiles/selcache_transform.dir/transform/unroll_jam.cpp.o" "gcc" "src/CMakeFiles/selcache_transform.dir/transform/unroll_jam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
