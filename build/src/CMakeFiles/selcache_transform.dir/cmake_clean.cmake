file(REMOVE_RECURSE
  "CMakeFiles/selcache_transform.dir/transform/fusion.cpp.o"
  "CMakeFiles/selcache_transform.dir/transform/fusion.cpp.o.d"
  "CMakeFiles/selcache_transform.dir/transform/interchange.cpp.o"
  "CMakeFiles/selcache_transform.dir/transform/interchange.cpp.o.d"
  "CMakeFiles/selcache_transform.dir/transform/layout_selection.cpp.o"
  "CMakeFiles/selcache_transform.dir/transform/layout_selection.cpp.o.d"
  "CMakeFiles/selcache_transform.dir/transform/pipeline.cpp.o"
  "CMakeFiles/selcache_transform.dir/transform/pipeline.cpp.o.d"
  "CMakeFiles/selcache_transform.dir/transform/scalar_replacement.cpp.o"
  "CMakeFiles/selcache_transform.dir/transform/scalar_replacement.cpp.o.d"
  "CMakeFiles/selcache_transform.dir/transform/tiling.cpp.o"
  "CMakeFiles/selcache_transform.dir/transform/tiling.cpp.o.d"
  "CMakeFiles/selcache_transform.dir/transform/unroll_jam.cpp.o"
  "CMakeFiles/selcache_transform.dir/transform/unroll_jam.cpp.o.d"
  "libselcache_transform.a"
  "libselcache_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
