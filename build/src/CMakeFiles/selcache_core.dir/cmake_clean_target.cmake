file(REMOVE_RECURSE
  "libselcache_core.a"
)
