file(REMOVE_RECURSE
  "CMakeFiles/selcache_core.dir/core/energy.cpp.o"
  "CMakeFiles/selcache_core.dir/core/energy.cpp.o.d"
  "CMakeFiles/selcache_core.dir/core/machine_config.cpp.o"
  "CMakeFiles/selcache_core.dir/core/machine_config.cpp.o.d"
  "CMakeFiles/selcache_core.dir/core/report.cpp.o"
  "CMakeFiles/selcache_core.dir/core/report.cpp.o.d"
  "CMakeFiles/selcache_core.dir/core/runner.cpp.o"
  "CMakeFiles/selcache_core.dir/core/runner.cpp.o.d"
  "CMakeFiles/selcache_core.dir/core/versions.cpp.o"
  "CMakeFiles/selcache_core.dir/core/versions.cpp.o.d"
  "libselcache_core.a"
  "libselcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
