# Empty dependencies file for selcache_core.
# This may be replaced when dependencies are built.
