
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy.cpp" "src/CMakeFiles/selcache_core.dir/core/energy.cpp.o" "gcc" "src/CMakeFiles/selcache_core.dir/core/energy.cpp.o.d"
  "/root/repo/src/core/machine_config.cpp" "src/CMakeFiles/selcache_core.dir/core/machine_config.cpp.o" "gcc" "src/CMakeFiles/selcache_core.dir/core/machine_config.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/selcache_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/selcache_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/selcache_core.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/selcache_core.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/versions.cpp" "src/CMakeFiles/selcache_core.dir/core/versions.cpp.o" "gcc" "src/CMakeFiles/selcache_core.dir/core/versions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
