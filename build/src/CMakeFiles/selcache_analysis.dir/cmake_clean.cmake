file(REMOVE_RECURSE
  "CMakeFiles/selcache_analysis.dir/analysis/classify.cpp.o"
  "CMakeFiles/selcache_analysis.dir/analysis/classify.cpp.o.d"
  "CMakeFiles/selcache_analysis.dir/analysis/dependence.cpp.o"
  "CMakeFiles/selcache_analysis.dir/analysis/dependence.cpp.o.d"
  "CMakeFiles/selcache_analysis.dir/analysis/marker_elimination.cpp.o"
  "CMakeFiles/selcache_analysis.dir/analysis/marker_elimination.cpp.o.d"
  "CMakeFiles/selcache_analysis.dir/analysis/method_selection.cpp.o"
  "CMakeFiles/selcache_analysis.dir/analysis/method_selection.cpp.o.d"
  "CMakeFiles/selcache_analysis.dir/analysis/region_detection.cpp.o"
  "CMakeFiles/selcache_analysis.dir/analysis/region_detection.cpp.o.d"
  "CMakeFiles/selcache_analysis.dir/analysis/reuse.cpp.o"
  "CMakeFiles/selcache_analysis.dir/analysis/reuse.cpp.o.d"
  "libselcache_analysis.a"
  "libselcache_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
