# Empty dependencies file for selcache_analysis.
# This may be replaced when dependencies are built.
