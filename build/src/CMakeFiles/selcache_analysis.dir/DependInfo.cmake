
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/classify.cpp" "src/CMakeFiles/selcache_analysis.dir/analysis/classify.cpp.o" "gcc" "src/CMakeFiles/selcache_analysis.dir/analysis/classify.cpp.o.d"
  "/root/repo/src/analysis/dependence.cpp" "src/CMakeFiles/selcache_analysis.dir/analysis/dependence.cpp.o" "gcc" "src/CMakeFiles/selcache_analysis.dir/analysis/dependence.cpp.o.d"
  "/root/repo/src/analysis/marker_elimination.cpp" "src/CMakeFiles/selcache_analysis.dir/analysis/marker_elimination.cpp.o" "gcc" "src/CMakeFiles/selcache_analysis.dir/analysis/marker_elimination.cpp.o.d"
  "/root/repo/src/analysis/method_selection.cpp" "src/CMakeFiles/selcache_analysis.dir/analysis/method_selection.cpp.o" "gcc" "src/CMakeFiles/selcache_analysis.dir/analysis/method_selection.cpp.o.d"
  "/root/repo/src/analysis/region_detection.cpp" "src/CMakeFiles/selcache_analysis.dir/analysis/region_detection.cpp.o" "gcc" "src/CMakeFiles/selcache_analysis.dir/analysis/region_detection.cpp.o.d"
  "/root/repo/src/analysis/reuse.cpp" "src/CMakeFiles/selcache_analysis.dir/analysis/reuse.cpp.o" "gcc" "src/CMakeFiles/selcache_analysis.dir/analysis/reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
