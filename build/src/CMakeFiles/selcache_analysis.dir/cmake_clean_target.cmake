file(REMOVE_RECURSE
  "libselcache_analysis.a"
)
