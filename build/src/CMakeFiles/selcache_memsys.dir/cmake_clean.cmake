file(REMOVE_RECURSE
  "CMakeFiles/selcache_memsys.dir/memsys/cache.cpp.o"
  "CMakeFiles/selcache_memsys.dir/memsys/cache.cpp.o.d"
  "CMakeFiles/selcache_memsys.dir/memsys/column_assoc.cpp.o"
  "CMakeFiles/selcache_memsys.dir/memsys/column_assoc.cpp.o.d"
  "CMakeFiles/selcache_memsys.dir/memsys/hierarchy.cpp.o"
  "CMakeFiles/selcache_memsys.dir/memsys/hierarchy.cpp.o.d"
  "CMakeFiles/selcache_memsys.dir/memsys/main_memory.cpp.o"
  "CMakeFiles/selcache_memsys.dir/memsys/main_memory.cpp.o.d"
  "CMakeFiles/selcache_memsys.dir/memsys/miss_classifier.cpp.o"
  "CMakeFiles/selcache_memsys.dir/memsys/miss_classifier.cpp.o.d"
  "CMakeFiles/selcache_memsys.dir/memsys/tlb.cpp.o"
  "CMakeFiles/selcache_memsys.dir/memsys/tlb.cpp.o.d"
  "CMakeFiles/selcache_memsys.dir/memsys/victim_cache.cpp.o"
  "CMakeFiles/selcache_memsys.dir/memsys/victim_cache.cpp.o.d"
  "libselcache_memsys.a"
  "libselcache_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
