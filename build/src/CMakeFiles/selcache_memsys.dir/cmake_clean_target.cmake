file(REMOVE_RECURSE
  "libselcache_memsys.a"
)
