
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsys/cache.cpp" "src/CMakeFiles/selcache_memsys.dir/memsys/cache.cpp.o" "gcc" "src/CMakeFiles/selcache_memsys.dir/memsys/cache.cpp.o.d"
  "/root/repo/src/memsys/column_assoc.cpp" "src/CMakeFiles/selcache_memsys.dir/memsys/column_assoc.cpp.o" "gcc" "src/CMakeFiles/selcache_memsys.dir/memsys/column_assoc.cpp.o.d"
  "/root/repo/src/memsys/hierarchy.cpp" "src/CMakeFiles/selcache_memsys.dir/memsys/hierarchy.cpp.o" "gcc" "src/CMakeFiles/selcache_memsys.dir/memsys/hierarchy.cpp.o.d"
  "/root/repo/src/memsys/main_memory.cpp" "src/CMakeFiles/selcache_memsys.dir/memsys/main_memory.cpp.o" "gcc" "src/CMakeFiles/selcache_memsys.dir/memsys/main_memory.cpp.o.d"
  "/root/repo/src/memsys/miss_classifier.cpp" "src/CMakeFiles/selcache_memsys.dir/memsys/miss_classifier.cpp.o" "gcc" "src/CMakeFiles/selcache_memsys.dir/memsys/miss_classifier.cpp.o.d"
  "/root/repo/src/memsys/tlb.cpp" "src/CMakeFiles/selcache_memsys.dir/memsys/tlb.cpp.o" "gcc" "src/CMakeFiles/selcache_memsys.dir/memsys/tlb.cpp.o.d"
  "/root/repo/src/memsys/victim_cache.cpp" "src/CMakeFiles/selcache_memsys.dir/memsys/victim_cache.cpp.o" "gcc" "src/CMakeFiles/selcache_memsys.dir/memsys/victim_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
