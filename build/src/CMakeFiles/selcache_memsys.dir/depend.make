# Empty dependencies file for selcache_memsys.
# This may be replaced when dependencies are built.
