file(REMOVE_RECURSE
  "CMakeFiles/selcache_cpu.dir/cpu/branch_predictor.cpp.o"
  "CMakeFiles/selcache_cpu.dir/cpu/branch_predictor.cpp.o.d"
  "CMakeFiles/selcache_cpu.dir/cpu/timing_model.cpp.o"
  "CMakeFiles/selcache_cpu.dir/cpu/timing_model.cpp.o.d"
  "libselcache_cpu.a"
  "libselcache_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
