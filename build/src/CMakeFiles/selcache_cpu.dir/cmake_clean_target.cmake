file(REMOVE_RECURSE
  "libselcache_cpu.a"
)
