# Empty compiler generated dependencies file for selcache_cpu.
# This may be replaced when dependencies are built.
