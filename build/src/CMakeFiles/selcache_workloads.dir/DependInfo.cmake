
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adi.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/adi.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/adi.cpp.o.d"
  "/root/repo/src/workloads/applu.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/applu.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/applu.cpp.o.d"
  "/root/repo/src/workloads/chaos.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/chaos.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/chaos.cpp.o.d"
  "/root/repo/src/workloads/compress.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/compress.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/compress.cpp.o.d"
  "/root/repo/src/workloads/li.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/li.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/li.cpp.o.d"
  "/root/repo/src/workloads/mgrid.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/mgrid.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/mgrid.cpp.o.d"
  "/root/repo/src/workloads/perl.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/perl.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/perl.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/swim.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/swim.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/swim.cpp.o.d"
  "/root/repo/src/workloads/tpcc.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/tpcc.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/tpcc.cpp.o.d"
  "/root/repo/src/workloads/tpcd.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/tpcd.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/tpcd.cpp.o.d"
  "/root/repo/src/workloads/vpenta.cpp" "src/CMakeFiles/selcache_workloads.dir/workloads/vpenta.cpp.o" "gcc" "src/CMakeFiles/selcache_workloads.dir/workloads/vpenta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
