file(REMOVE_RECURSE
  "CMakeFiles/selcache_workloads.dir/workloads/adi.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/adi.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/applu.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/applu.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/chaos.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/chaos.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/compress.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/compress.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/li.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/li.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/mgrid.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/mgrid.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/perl.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/perl.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/registry.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/registry.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/swim.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/swim.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/tpcc.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/tpcc.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/tpcd.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/tpcd.cpp.o.d"
  "CMakeFiles/selcache_workloads.dir/workloads/vpenta.cpp.o"
  "CMakeFiles/selcache_workloads.dir/workloads/vpenta.cpp.o.d"
  "libselcache_workloads.a"
  "libselcache_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
