# Empty dependencies file for selcache_workloads.
# This may be replaced when dependencies are built.
