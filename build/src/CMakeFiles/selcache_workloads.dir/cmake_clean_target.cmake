file(REMOVE_RECURSE
  "libselcache_workloads.a"
)
