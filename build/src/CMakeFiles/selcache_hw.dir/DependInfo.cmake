
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/bypass_buffer.cpp" "src/CMakeFiles/selcache_hw.dir/hw/bypass_buffer.cpp.o" "gcc" "src/CMakeFiles/selcache_hw.dir/hw/bypass_buffer.cpp.o.d"
  "/root/repo/src/hw/bypass_scheme.cpp" "src/CMakeFiles/selcache_hw.dir/hw/bypass_scheme.cpp.o" "gcc" "src/CMakeFiles/selcache_hw.dir/hw/bypass_scheme.cpp.o.d"
  "/root/repo/src/hw/composite_scheme.cpp" "src/CMakeFiles/selcache_hw.dir/hw/composite_scheme.cpp.o" "gcc" "src/CMakeFiles/selcache_hw.dir/hw/composite_scheme.cpp.o.d"
  "/root/repo/src/hw/controller.cpp" "src/CMakeFiles/selcache_hw.dir/hw/controller.cpp.o" "gcc" "src/CMakeFiles/selcache_hw.dir/hw/controller.cpp.o.d"
  "/root/repo/src/hw/mat.cpp" "src/CMakeFiles/selcache_hw.dir/hw/mat.cpp.o" "gcc" "src/CMakeFiles/selcache_hw.dir/hw/mat.cpp.o.d"
  "/root/repo/src/hw/sldt.cpp" "src/CMakeFiles/selcache_hw.dir/hw/sldt.cpp.o" "gcc" "src/CMakeFiles/selcache_hw.dir/hw/sldt.cpp.o.d"
  "/root/repo/src/hw/stride_prefetcher.cpp" "src/CMakeFiles/selcache_hw.dir/hw/stride_prefetcher.cpp.o" "gcc" "src/CMakeFiles/selcache_hw.dir/hw/stride_prefetcher.cpp.o.d"
  "/root/repo/src/hw/victim_scheme.cpp" "src/CMakeFiles/selcache_hw.dir/hw/victim_scheme.cpp.o" "gcc" "src/CMakeFiles/selcache_hw.dir/hw/victim_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
