file(REMOVE_RECURSE
  "libselcache_hw.a"
)
