file(REMOVE_RECURSE
  "CMakeFiles/selcache_hw.dir/hw/bypass_buffer.cpp.o"
  "CMakeFiles/selcache_hw.dir/hw/bypass_buffer.cpp.o.d"
  "CMakeFiles/selcache_hw.dir/hw/bypass_scheme.cpp.o"
  "CMakeFiles/selcache_hw.dir/hw/bypass_scheme.cpp.o.d"
  "CMakeFiles/selcache_hw.dir/hw/composite_scheme.cpp.o"
  "CMakeFiles/selcache_hw.dir/hw/composite_scheme.cpp.o.d"
  "CMakeFiles/selcache_hw.dir/hw/controller.cpp.o"
  "CMakeFiles/selcache_hw.dir/hw/controller.cpp.o.d"
  "CMakeFiles/selcache_hw.dir/hw/mat.cpp.o"
  "CMakeFiles/selcache_hw.dir/hw/mat.cpp.o.d"
  "CMakeFiles/selcache_hw.dir/hw/sldt.cpp.o"
  "CMakeFiles/selcache_hw.dir/hw/sldt.cpp.o.d"
  "CMakeFiles/selcache_hw.dir/hw/stride_prefetcher.cpp.o"
  "CMakeFiles/selcache_hw.dir/hw/stride_prefetcher.cpp.o.d"
  "CMakeFiles/selcache_hw.dir/hw/victim_scheme.cpp.o"
  "CMakeFiles/selcache_hw.dir/hw/victim_scheme.cpp.o.d"
  "libselcache_hw.a"
  "libselcache_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
