# Empty dependencies file for selcache_hw.
# This may be replaced when dependencies are built.
