file(REMOVE_RECURSE
  "libselcache_codegen.a"
)
