file(REMOVE_RECURSE
  "CMakeFiles/selcache_codegen.dir/codegen/data_env.cpp.o"
  "CMakeFiles/selcache_codegen.dir/codegen/data_env.cpp.o.d"
  "CMakeFiles/selcache_codegen.dir/codegen/layout.cpp.o"
  "CMakeFiles/selcache_codegen.dir/codegen/layout.cpp.o.d"
  "CMakeFiles/selcache_codegen.dir/codegen/trace_engine.cpp.o"
  "CMakeFiles/selcache_codegen.dir/codegen/trace_engine.cpp.o.d"
  "CMakeFiles/selcache_codegen.dir/codegen/trace_io.cpp.o"
  "CMakeFiles/selcache_codegen.dir/codegen/trace_io.cpp.o.d"
  "libselcache_codegen.a"
  "libselcache_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
