# Empty compiler generated dependencies file for selcache_codegen.
# This may be replaced when dependencies are built.
