
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/data_env.cpp" "src/CMakeFiles/selcache_codegen.dir/codegen/data_env.cpp.o" "gcc" "src/CMakeFiles/selcache_codegen.dir/codegen/data_env.cpp.o.d"
  "/root/repo/src/codegen/layout.cpp" "src/CMakeFiles/selcache_codegen.dir/codegen/layout.cpp.o" "gcc" "src/CMakeFiles/selcache_codegen.dir/codegen/layout.cpp.o.d"
  "/root/repo/src/codegen/trace_engine.cpp" "src/CMakeFiles/selcache_codegen.dir/codegen/trace_engine.cpp.o" "gcc" "src/CMakeFiles/selcache_codegen.dir/codegen/trace_engine.cpp.o.d"
  "/root/repo/src/codegen/trace_io.cpp" "src/CMakeFiles/selcache_codegen.dir/codegen/trace_io.cpp.o" "gcc" "src/CMakeFiles/selcache_codegen.dir/codegen/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selcache_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
