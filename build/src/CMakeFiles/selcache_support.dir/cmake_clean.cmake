file(REMOVE_RECURSE
  "CMakeFiles/selcache_support.dir/support/rng.cpp.o"
  "CMakeFiles/selcache_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/selcache_support.dir/support/stats.cpp.o"
  "CMakeFiles/selcache_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/selcache_support.dir/support/table.cpp.o"
  "CMakeFiles/selcache_support.dir/support/table.cpp.o.d"
  "libselcache_support.a"
  "libselcache_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selcache_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
