# Empty dependencies file for selcache_support.
# This may be replaced when dependencies are built.
