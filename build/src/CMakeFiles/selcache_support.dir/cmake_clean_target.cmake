file(REMOVE_RECURSE
  "libselcache_support.a"
)
