#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over src/ using the
# CMake compilation database.
#
#   tools/run_clang_tidy.sh [build-dir] [paths...]
#
# Defaults: build-dir `build/`, paths `src/`. Registered as an optional
# ctest; exits 77 (the test's SKIP_RETURN_CODE) when clang-tidy is not
# installed so suites on toolchains without it report SKIP, not FAIL.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

build_dir="${1:-build}"
shift || true
paths=("$@")
if [ "${#paths[@]}" -eq 0 ]; then paths=(src); fi

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "run_clang_tidy: clang-tidy not installed; skipping"
  exit 77
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -B "$build_dir" -S . > /dev/null
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json under $build_dir" >&2
  exit 1
fi

mapfile -t files < <(find "${paths[@]}" -name '*.cpp' | sort)
echo "run_clang_tidy: checking ${#files[@]} files with $tidy"
status=0
for f in "${files[@]}"; do
  "$tidy" -p "$build_dir" --quiet "$f" || status=1
done
if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: warnings found"
  exit 1
fi
echo "run_clang_tidy: clean"
