#!/usr/bin/env bash
# End-to-end failure isolation: run a small sweep under an injected
# per-task crash campaign and assert the engine quarantines exactly the
# crashed cells — the sweep exits 0, failed cells land in the FailureReport
# with their retry count and per-attempt fault seed, surviving cells still
# produce rows, and the whole report is reproducible across reruns and
# thread counts.
#
# Usage: run_crash_sweep_test.sh path/to/selcache
set -u

BIN="${1:?usage: run_crash_sweep_test.sh path/to/selcache}"
# 5e-7 against the default seed crashes some (not all) of the 5 Chaos
# cells — deterministic because the whole fault model is seed-driven.
ARGS=(sweep --workload Chaos --scheme bypass --inject-faults
      --fault-kind task-crash --fault-rate 5e-7 --max-retries 1)

fail() { echo "FAIL: $1" >&2; exit 1; }

out=$("$BIN" "${ARGS[@]}" --threads 4 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "sweep exited $rc (want 0 despite injected crashes): $out"

echo "$out" | grep -q 'injected crash at access' \
  || fail "no quarantined cell in the failure report: $out"
echo "$out" | grep -q '| ok ' \
  || fail "campaign crashed every cell; surviving cells expected: $out"
# max-retries 1 => a failed cell records 2 attempts.
echo "$out" | grep 'failed' | grep -q '| 2 ' \
  || fail "failed cell does not record its retry count: $out"
echo "$out" | grep -q 'fault report: 5 cells' \
  || fail "report does not cover all 5 cells: $out"

# Reproducibility: same campaign, any thread count, byte-identical output.
for threads in 1 8; do
  again=$("$BIN" "${ARGS[@]}" --threads "$threads" 2>&1) \
    || fail "rerun with --threads $threads exited nonzero"
  [ "$out" = "$again" ] \
    || fail "output differs at --threads $threads (determinism contract)"
done

echo "OK: crash sweep quarantined failing cells, exit 0, reproducible"
