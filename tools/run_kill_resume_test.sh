#!/usr/bin/env bash
# Crash-safe checkpointed sweeps, end to end:
#
#   * an uninterrupted checkpointed run is byte-identical to the plain
#     sweep engine on stdout (and emits the figure CSV/JSONL);
#   * SIGKILL at several distinct cell counts (via the deterministic
#     SELCACHE_CRASH_AFTER_CELLS hook) exits 137 and leaves a journal that
#     `selcache resume` — at any thread count — replays to stdout, CSV,
#     and JSONL byte-identical to the uninterrupted golden run;
#   * resuming an already-complete run re-emits identical output purely
#     from the ledger (no re-simulation);
#   * SIGINT mid-suite shuts down gracefully (exit 130, `suspended` state,
#     no torn artifacts) and resumes to the uninterrupted suite's bytes;
#   * --deadline-ms expiry suspends with exit 124 and resumes cleanly;
#   * a run directory refuses a conflicting spec (franken-run guard);
#   * trace directories are flushed before the failure ledger on faulted
#     runs (the flush-ordering contract), both on the same run.
#
# Usage: run_kill_resume_test.sh path/to/selcache
set -u

BIN="${1:?usage: run_kill_resume_test.sh path/to/selcache}"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

W=Chaos

# -- golden: plain engine vs uninterrupted checkpointed run -------------------
"$BIN" sweep --workload "$W" > "$work/plain.txt" 2>/dev/null \
  || fail "plain sweep failed"
"$BIN" sweep --workload "$W" --run-dir "$work/golden" \
    --csv-out "$work/golden.csv" --jsonl-out "$work/golden.jsonl" \
    > "$work/golden.txt" 2>/dev/null \
  || fail "uninterrupted checkpointed sweep failed"
diff "$work/plain.txt" "$work/golden.txt" >/dev/null \
  || fail "checkpointed stdout differs from the plain engine"
[ -s "$work/golden.csv" ] || fail "checkpointed run wrote no CSV"
[ -s "$work/golden.jsonl" ] || fail "checkpointed run wrote no JSONL"

# -- SIGKILL at distinct cells; resume at several thread counts ---------------
kill_points=(1 2 4)
resume_threads=(1 4 8)
for i in 0 1 2; do
  cells="${kill_points[$i]}"
  t="${resume_threads[$i]}"
  dir="$work/kill$cells"
  SELCACHE_CRASH_AFTER_CELLS="$cells" "$BIN" sweep --workload "$W" \
      --run-dir "$dir" --csv-out "$dir.csv" --jsonl-out "$dir.jsonl" \
      >/dev/null 2>&1
  rc=$?
  [ "$rc" -eq 137 ] || fail "kill at cell $cells exited $rc (want 137)"
  [ -e "$dir.csv" ] && fail "killed run must not have written its CSV yet"

  "$BIN" resume "$dir" --status 2>/dev/null | grep -q 'state: in progress' \
    || fail "status after kill at cell $cells is not 'in progress'"

  "$BIN" resume "$dir" --threads "$t" > "$work/resumed$cells.txt" 2>/dev/null \
    || fail "resume after kill at cell $cells failed"
  diff "$work/golden.txt" "$work/resumed$cells.txt" >/dev/null \
    || fail "stdout differs after kill at cell $cells (threads $t)"
  diff "$work/golden.csv" "$dir.csv" >/dev/null \
    || fail "CSV differs after kill at cell $cells"
  diff "$work/golden.jsonl" "$dir.jsonl" >/dev/null \
    || fail "JSONL differs after kill at cell $cells"

  # Resuming the now-complete run replays from the ledger, byte-identically.
  "$BIN" resume "$dir" > "$work/again$cells.txt" 2>"$work/again$cells.err" \
    || fail "resume of a complete run failed"
  diff "$work/golden.txt" "$work/again$cells.txt" >/dev/null \
    || fail "re-resume of complete run differs at cell $cells"
  grep -q ' 0 cells simulated' "$work/again$cells.err" \
    || fail "re-resume of complete run re-simulated cells"
done
echo "kill/resume: 3 kill points byte-identical to uninterrupted run"

# -- whole-run deadline: suspend with exit 124, then resume -------------------
"$BIN" sweep --workload "$W" --run-dir "$work/dl" --deadline-ms 1 \
    >/dev/null 2>&1
rc=$?
[ "$rc" -eq 124 ] || fail "deadline expiry exited $rc (want 124)"
"$BIN" resume "$work/dl" --status 2>/dev/null | grep -q 'state: suspended' \
  || fail "deadline-suspended run not reported as suspended"
"$BIN" resume "$work/dl" > "$work/dl.txt" 2>/dev/null \
  || fail "resume after deadline failed"
diff "$work/plain.txt" "$work/dl.txt" >/dev/null \
  || fail "stdout differs after deadline suspension"
echo "deadline: exit 124, suspended, resumed byte-identical"

# -- franken-run guard: a run dir refuses a conflicting spec ------------------
"$BIN" sweep --workload Vpenta --run-dir "$work/golden" >/dev/null 2>&1
[ $? -eq 2 ] || fail "run dir accepted a conflicting workload spec"
"$BIN" resume "$work/nonexistent-run" >/dev/null 2>&1
[ $? -eq 2 ] || fail "resume of a journal-less dir did not exit 2"
echo "spec guard: conflicting spec and missing journal rejected"

# -- SIGINT mid-suite: graceful shutdown, resume at another thread count ------
"$BIN" suite --run-dir "$work/suite_golden" > "$work/suite_golden.txt" \
    2>/dev/null || fail "uninterrupted checkpointed suite failed"
"$BIN" suite --run-dir "$work/suite_int" > /dev/null 2>&1 &
pid=$!
sleep 1
kill -INT "$pid" 2>/dev/null
wait "$pid"
rc=$?
[ "$rc" -eq 130 ] || fail "SIGINT suite exited $rc (want 130)"
"$BIN" resume "$work/suite_int" --status 2>/dev/null \
    | grep -q 'state: suspended' \
  || fail "interrupted suite not reported as suspended"
"$BIN" resume "$work/suite_int" --threads 8 > "$work/suite_resumed.txt" \
    2>/dev/null || fail "resume of interrupted suite failed"
diff "$work/suite_golden.txt" "$work/suite_resumed.txt" >/dev/null \
  || fail "suite stdout differs after SIGINT + threaded resume"
echo "SIGINT: exit 130, graceful suspend, resume byte-identical at --threads 8"

# -- flush ordering: traces land before the failure ledger --------------------
out=$("$BIN" sweep --workload "$W" --inject-faults --fault-kind task-crash \
      --fault-rate 5e-7 --max-retries 1 --trace-dir "$work/traces" 2>&1) \
  || fail "faulted traced sweep exited nonzero"
echo "$out" | awk '/phase traces:/{t=NR} /fault report:/{f=NR}
                   END{exit !(t && f && t<f)}' \
  || fail "trace flush must be reported before the fault report: $out"
[ -d "$work/traces" ] || fail "trace dir missing on faulted run"
echo "flush order: traces before failure ledger on a faulted run"

echo "OK: kill/resume, deadline, SIGINT, spec-guard, flush-order all hold"
