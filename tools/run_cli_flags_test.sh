#!/usr/bin/env bash
# CLI contract for the predict subcommands plus the replay-engine flags
# (--batch / --no-simd / tape --stat): unknown flags and malformed
# invocations must exit 2 (same as every other subcommand), good runs 0,
# and a failed cross-check 1.
#
#   tools/run_cli_flags_test.sh path/to/selcache
set -u

cli="$1"
fails=0

expect() {
  local want="$1"; shift
  "$@" > /dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: '$*' exited $got, expected $want"
    fails=$((fails + 1))
  fi
}

# Unknown flags exit 2 before any work happens.
expect 2 "$cli" predict Vpenta base --bogus
expect 2 "$cli" predict Vpenta base --machine        # value flag, no value
expect 2 "$cli" predict-matrix --bogus
expect 2 "$cli" predict-matrix --workload            # value flag, no value

# Malformed positionals / values also exit 2.
expect 2 "$cli" predict Vpenta                       # missing VERSION
expect 2 "$cli" predict NoSuchWorkload base
expect 2 "$cli" predict Vpenta nosuchversion
expect 2 "$cli" predict Vpenta base --threshold abc
expect 2 "$cli" predict Vpenta base --capacity-fraction -1

# Healthy invocations exit 0 (static-only is fast; --check simulates).
expect 0 "$cli" predict Vpenta base
expect 0 "$cli" predict Vpenta base --csv
expect 0 "$cli" predict Perl base                    # non-analyzable is not an error
expect 0 "$cli" predict Vpenta base --check
expect 0 "$cli" predict Vpenta base --check --predict-classify

# Replay-engine flags: a --batch value that does not parse as a plain
# number must fail loudly (not silently flip the engine), and --no-simd /
# tape --stat are ordinary healthy invocations.
expect 2 "$cli" sweep --workload Perl --batch abc
expect 2 "$cli" sweep --workload Perl --batch -1
expect 2 "$cli" sweep --workload Perl --batch            # value flag, no value
expect 2 "$cli" suite --batch 1e9
expect 2 "$cli" tape Perl base --stat --bogus
expect 0 "$cli" sweep --workload Perl --reuse-tape --batch 512 --no-simd
expect 0 "$cli" sweep --workload Perl --no-simd
expect 0 "$cli" tape Perl base --stat

if [ "$fails" -ne 0 ]; then
  echo "cli flag contract: $fails failure(s)"
  exit 1
fi
echo "cli flag contract: all exit codes as specified"
