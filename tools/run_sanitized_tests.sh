#!/usr/bin/env bash
# Configure, build, and run the full test suite under ASan+UBSan.
#
#   tools/run_sanitized_tests.sh [extra ctest args...]
#
# Uses the `asan-ubsan` CMake preset (build-asan/). Any extra arguments are
# forwarded to ctest, e.g. `tools/run_sanitized_tests.sh -R verify` to run
# only the verification tests.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"
