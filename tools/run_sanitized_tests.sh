#!/usr/bin/env bash
# Configure, build, and run the full test suite under ASan+UBSan, then
# exercise one traced sweep serial vs. parallel and diff the trace output
# (the observability layer's determinism contract, under sanitizers).
#
#   tools/run_sanitized_tests.sh [extra ctest args...]
#
# Uses the `asan-ubsan` CMake preset (build-asan/). Any extra arguments are
# forwarded to ctest, e.g. `tools/run_sanitized_tests.sh -R verify` to run
# only the verification tests.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"

# Traced serial-vs-parallel sweep: the JSONL/CSV trace directories must be
# byte-identical regardless of thread count.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
cli="build-asan/tools/selcache"
"$cli" sweep --workload Compress --threads 1 --trace-dir "$tracedir/serial"
"$cli" sweep --workload Compress --threads 4 --trace-dir "$tracedir/parallel"
diff -r "$tracedir/serial" "$tracedir/parallel"
echo "traced sweep: serial and parallel outputs identical"
