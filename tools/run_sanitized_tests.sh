#!/usr/bin/env bash
# Configure, build, and run the full test suite under ASan+UBSan, then
# exercise one traced sweep serial vs. parallel and diff the trace output
# (the observability layer's determinism contract, under sanitizers).
#
#   tools/run_sanitized_tests.sh [extra ctest args...]
#
# Uses the `asan-ubsan` CMake preset (build-asan/). Any extra arguments are
# forwarded to ctest, e.g. `tools/run_sanitized_tests.sh -R verify` to run
# only the verification tests.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"

# Traced serial-vs-parallel sweep: the JSONL/CSV trace directories must be
# byte-identical regardless of thread count.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
cli="build-asan/tools/selcache"
"$cli" sweep --workload Compress --threads 1 --trace-dir "$tracedir/serial"
"$cli" sweep --workload Compress --threads 4 --trace-dir "$tracedir/parallel"
diff -r "$tracedir/serial" "$tracedir/parallel"
echo "traced sweep: serial and parallel outputs identical"

# Same contract under fault injection: a faulted sweep's figure output,
# FailureReport, and captured traces must not depend on the thread count —
# diffed here under the sanitizers so races in the resilient fan-out or the
# injector hooks cannot hide.
fault_flags=(--inject-faults --fault-kind toggle-drop --fault-rate 0.5
             --fault-seed 2026 --integrity-checks --fault-budget 64)
"$cli" sweep --workload Compress --threads 1 "${fault_flags[@]}" \
  --trace-dir "$tracedir/fserial" --failures-out "$tracedir/fserial.csv" \
  | sed "s|$tracedir/fserial|TRACEDIR|" > "$tracedir/fserial.txt"
"$cli" sweep --workload Compress --threads 4 "${fault_flags[@]}" \
  --trace-dir "$tracedir/fparallel" --failures-out "$tracedir/fparallel.csv" \
  | sed "s|$tracedir/fparallel|TRACEDIR|" > "$tracedir/fparallel.txt"
diff -r "$tracedir/fserial" "$tracedir/fparallel"
diff "$tracedir/fserial.csv" "$tracedir/fparallel.csv"
diff "$tracedir/fserial.txt" "$tracedir/fparallel.txt"
echo "faulted sweep: serial and parallel outputs identical"

# Scalar-kernel equivalence under sanitizers: forcing the probe kernels to
# the scalar fallback (--no-simd) must leave a traced sweep byte-identical
# (the vector and scalar paths read the same slot bytes; a stray lane or
# overread in either would surface here).
"$cli" sweep --workload Compress --threads 1 --no-simd \
  --trace-dir "$tracedir/scalar"
diff -r "$tracedir/serial" "$tracedir/scalar"
echo "scalar-kernel sweep: vectorized and forced-scalar outputs identical"

# Batched multi-config replay under sanitizers: a shared-decode sweep
# (--reuse-tape --batch) must be byte-identical to the classic streaming
# replay (the batch fan-out is where a lifetime bug would hide).
"$cli" sweep --workload Compress --threads 1 --reuse-tape --batch 512 \
  --trace-dir "$tracedir/batched" > /dev/null
diff -r "$tracedir/serial" "$tracedir/batched"
echo "batched sweep: streaming and batched replay outputs identical"

# Tape replay equivalence under sanitizers: a traced sweep must be
# byte-identical whether each cell is interpreted or replayed from its
# recorded tape (encoder/decoder memory errors would surface here).
"$cli" sweep --workload Compress --threads 1 --reuse-tape \
  --trace-dir "$tracedir/taped" \
  | sed "s|$tracedir/taped|TRACEDIR|" > "$tracedir/taped.txt"
"$cli" sweep --workload Compress --threads 1 \
  --trace-dir "$tracedir/interp" \
  | sed "s|$tracedir/interp|TRACEDIR|" > "$tracedir/interp.txt"
diff -r "$tracedir/serial" "$tracedir/taped"
diff -r "$tracedir/interp" "$tracedir/taped"
diff "$tracedir/interp.txt" "$tracedir/taped.txt"
echo "taped sweep: interpreted and replayed outputs identical"

# Persistent-store round trip under sanitizers: a warm sweep served from
# the store must be byte-identical to the cold run that filled it, and a
# truncated cell must degrade to a miss (re-simulated, healed, same rows).
storedir="$tracedir/store"
"$cli" sweep --workload Compress --threads 1 --store "$storedir" \
  > "$tracedir/store_cold.txt"
"$cli" sweep --workload Compress --threads 4 --store "$storedir" \
  > "$tracedir/store_warm.txt"
diff "$tracedir/store_cold.txt" "$tracedir/store_warm.txt"
victim="$(ls "$storedir/cells" | head -1)"
head -c 10 "$storedir/cells/$victim" > "$storedir/trunc.tmp"
mv "$storedir/trunc.tmp" "$storedir/cells/$victim"
"$cli" sweep --workload Compress --threads 1 --store "$storedir" \
  > "$tracedir/store_healed.txt"
diff "$tracedir/store_cold.txt" "$tracedir/store_healed.txt"
echo "stored sweep: cold, warm, and healed outputs identical"

# Record-once/replay-many figure sweep, also under sanitizers.
tools/run_tape_figure_test.sh build-asan/bench/bench_fig5_memlat

# End-to-end failure isolation (injected crashes quarantine only their
# cells), also under sanitizers.
tools/run_crash_sweep_test.sh "$cli"

# Crash-safe checkpointing (SIGKILL / SIGINT / deadline + resume) under
# sanitizers: the journal writer, signal path, and pool drain are exactly
# where a latent race or lifetime bug would hide.
tools/run_kill_resume_test.sh "$cli"
