#!/bin/sh
# End-to-end persistent-store contract: a suite served entirely from a warm
# store must publish byte-identical stdout to the cold run that filled it,
# at any thread count; damaged entries (truncated or bit-flipped) must be
# treated as misses — re-simulated and healed, never an error and never a
# wrong row; and the store subcommand must report/prune the same directory.
#
# Usage: run_store_roundtrip_test.sh path/to/selcache
set -eu

BIN="${1:?usage: run_store_roundtrip_test.sh path/to/selcache}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
STORE="$TMP/store"

fail() { echo "FAIL: $1" >&2; exit 1; }

# --- cold fill -------------------------------------------------------------
"$BIN" suite --store "$STORE" --threads 1 \
  > "$TMP/cold.txt" 2> "$TMP/cold.err" \
  || fail "cold suite exited nonzero"
grep -q '^store: ' "$TMP/cold.err" || fail "no store ledger on stderr"
grep -q ' 65 cells written' "$TMP/cold.err" \
  || fail "cold run did not write 65 cells: $(cat "$TMP/cold.err")"

# --- warm runs are byte-identical at 1/4/8 threads -------------------------
for t in 1 4 8; do
  "$BIN" suite --store "$STORE" --threads "$t" \
    > "$TMP/warm$t.txt" 2> "$TMP/warm$t.err" \
    || fail "warm suite (threads=$t) exited nonzero"
  cmp -s "$TMP/cold.txt" "$TMP/warm$t.txt" || {
    diff -u "$TMP/cold.txt" "$TMP/warm$t.txt" | head -40 >&2
    fail "warm suite stdout (threads=$t) differs from cold"
  }
  grep -q ' 65 hits, 0 misses (0 corrupt), 0 cells written' "$TMP/warm$t.err" \
    || fail "warm run (threads=$t) was not all-hits: $(cat "$TMP/warm$t.err")"
done

# --- a truncated entry is a miss, not an error -----------------------------
victim=$(ls "$STORE/cells" | head -1)
head -c 10 "$STORE/cells/$victim" > "$TMP/trunc" \
  && mv "$TMP/trunc" "$STORE/cells/$victim"
"$BIN" suite --store "$STORE" --threads 4 \
  > "$TMP/healed.txt" 2> "$TMP/healed.err" \
  || fail "suite with truncated entry exited nonzero"
cmp -s "$TMP/cold.txt" "$TMP/healed.txt" \
  || fail "truncated-entry run published different rows"
grep -q ' 64 hits, 1 misses (1 corrupt), 1 cells written' "$TMP/healed.err" \
  || fail "truncated entry not treated as one corrupt miss: $(cat "$TMP/healed.err")"

# --- a bit-flipped entry is a miss, not a wrong result ---------------------
victim=$(ls "$STORE/cells" | head -1)
# Flip bytes in the middle of the payload (past magic + length header).
printf 'XXXX' | dd of="$STORE/cells/$victim" bs=1 seek=40 conv=notrunc 2>/dev/null
"$BIN" suite --store "$STORE" --threads 1 \
  > "$TMP/flipped.txt" 2> "$TMP/flipped.err" \
  || fail "suite with corrupted entry exited nonzero"
cmp -s "$TMP/cold.txt" "$TMP/flipped.txt" \
  || fail "corrupted-entry run published different rows"
grep -q '(1 corrupt)' "$TMP/flipped.err" \
  || fail "bit-flipped entry not counted corrupt: $(cat "$TMP/flipped.err")"

# --- read-only mode serves hits but never writes ---------------------------
victim=$(ls "$STORE/cells" | head -1)
head -c 10 "$STORE/cells/$victim" > "$TMP/trunc" \
  && mv "$TMP/trunc" "$STORE/cells/$victim"
"$BIN" suite --store "$STORE" --store-readonly --threads 1 \
  > "$TMP/ro.txt" 2> "$TMP/ro.err" \
  || fail "read-only suite exited nonzero"
cmp -s "$TMP/cold.txt" "$TMP/ro.txt" || fail "read-only run differs"
grep -q ' 0 cells written' "$TMP/ro.err" \
  || fail "read-only run wrote cells: $(cat "$TMP/ro.err")"

# --- store subcommand: stats / ls / gc -------------------------------------
"$BIN" store stats --store "$STORE" > "$TMP/stats.txt" \
  || fail "store stats exited nonzero"
grep -q ' cells, ' "$TMP/stats.txt" || fail "stats output malformed"
n_ls=$("$BIN" store ls --store "$STORE" | wc -l)
[ "$n_ls" -ge 64 ] || fail "store ls listed only $n_ls entries"
"$BIN" store gc --store "$STORE" --max-bytes 0 > "$TMP/gc.txt" \
  || fail "store gc exited nonzero"
grep -q '0 bytes remain' "$TMP/gc.txt" || fail "gc did not empty the store"
"$BIN" store stats --store "$STORE" | grep -q '^.*: 0 cells, 0 tapes' \
  || fail "store not empty after gc --max-bytes 0"

# --- flag contract ---------------------------------------------------------
"$BIN" suite --store-readonly > /dev/null 2>&1 && rc=0 || rc=$?
[ "$rc" -eq 2 ] || fail "--store-readonly without --store should exit 2 (got $rc)"
"$BIN" store bogus --store "$STORE" > /dev/null 2>&1 && rc=0 || rc=$?
[ "$rc" -eq 2 ] || fail "unknown store action should exit 2 (got $rc)"

echo "store_roundtrip OK: warm suite byte-identical (threads 1/4/8)," \
     "damaged entries healed as misses, stats/ls/gc clean"
