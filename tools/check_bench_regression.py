#!/usr/bin/env python3
"""Compare a fresh bench_throughput JSON against the committed baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.15]

Fails (exit 1) when:
  * either file is missing expected schema keys (a truncated or stale
    bench_throughput run would otherwise sail through the ratio checks),
  * the fresh run is not deterministic (parallel rows differed from serial),
  * serial accesses/sec dropped more than --tolerance below the baseline,
  * parallel speedup dropped more than --tolerance below the baseline —
    only checked when both hosts have more than one hardware thread, since
    a single-core host cannot exhibit parallel speedup.

Absolute wall-clock is NOT compared (hosts differ); throughput ratios are.
"""
import argparse
import json
import sys


# Every key bench_throughput emits; a result file missing any of them is
# malformed (truncated write, or produced by an older binary).
EXPECTED_KEYS = frozenset({
    "benchmark",
    "deterministic",
    "hardware_threads",
    "parallel_accesses_per_sec",
    "parallel_seconds",
    "scheme",
    "serial_accesses_per_sec",
    "serial_seconds",
    "simulated_accesses",
    "speedup",
    "threads",
    "workloads",
})


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"error: {path}: expected a JSON object, got "
              f"{type(data).__name__}", file=sys.stderr)
        sys.exit(2)
    return data


def check_schema(path, data):
    missing = sorted(EXPECTED_KEYS - data.keys())
    if missing:
        return [f"{path}: missing expected keys: {', '.join(missing)}"]
    return []


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drop (default 0.15 = 15%%)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    failures = []

    failures += check_schema(args.baseline, base)
    failures += check_schema(args.fresh, fresh)
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1

    if not fresh.get("deterministic", False):
        failures.append("fresh run was NOT deterministic "
                        "(parallel rows differed from serial)")

    floor = 1.0 - args.tolerance
    b_aps = base.get("serial_accesses_per_sec", 0)
    f_aps = fresh.get("serial_accesses_per_sec", 0)
    if b_aps > 0:
        ratio = f_aps / b_aps
        print(f"serial accesses/sec: baseline {b_aps:.0f}, "
              f"fresh {f_aps:.0f} ({ratio:.2f}x)")
        if ratio < floor:
            failures.append(
                f"serial throughput regressed: {ratio:.2f}x of baseline "
                f"(floor {floor:.2f}x)")

    b_threads = base.get("hardware_threads", 1)
    f_threads = fresh.get("hardware_threads", 1)
    if b_threads > 1 and f_threads > 1:
        b_sp = base.get("speedup", 0)
        f_sp = fresh.get("speedup", 0)
        print(f"parallel speedup: baseline {b_sp:.2f}x, fresh {f_sp:.2f}x")
        if b_sp > 0 and f_sp < b_sp * floor:
            failures.append(
                f"parallel speedup regressed: {f_sp:.2f}x vs baseline "
                f"{b_sp:.2f}x (floor {b_sp * floor:.2f}x)")
    else:
        print(f"parallel speedup check skipped "
              f"(hardware_threads: baseline={b_threads}, fresh={f_threads})")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK: no benchmark regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
