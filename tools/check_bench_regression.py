#!/usr/bin/env python3
"""Compare a fresh bench_throughput JSON against the committed baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.15]
    check_bench_regression.py --self-test

Fails (exit 1) when:
  * either file is missing expected schema keys (a truncated or stale
    bench_throughput run would otherwise sail through the ratio checks),
  * a compared metric is zero, negative, NaN, infinite, or non-numeric in
    either file — a zero baseline means the baseline itself is broken and
    must never silently disable the check,
  * the fresh run is not deterministic (parallel rows differed from serial),
  * the fresh run's warm-store suite was not faster than its cold-fill one
    (the store served nothing — incremental sweeps are broken),
  * serial accesses/sec dropped more than --tolerance below the baseline
    (same direction-aware check for the scalar-kernel serial pass and the
    batched multi-config replay throughput),
  * the shared-decode figure sweep was slower than the per-point sweep of
    the SAME run by more than --tolerance (both times come from one
    process, so this is host-independent),
  * simd_probe is not one of the kernels the dispatcher can actually name
    (sse2 / neon / scalar) — a garbled field means the bench and the
    kernels disagree about what ran,
  * parallel speedup dropped more than --tolerance below the baseline —
    only checked when both hosts have more than one hardware thread, since
    a single-core host cannot exhibit parallel speedup. The multi-replay
    throughput comparison is likewise skipped when the two runs fanned out
    over different thread counts (multi_replay_threads_used).

Absolute wall-clock is NOT compared (hosts differ); throughput ratios are.

`--self-test` exercises the comparison logic against synthetic fixtures
(zero baselines, flipped better-direction, schema gaps) and exits non-zero
if any scenario misbehaves; CI runs it so the checker cannot rot.
"""
import argparse
import json
import math
import os
import sys
import tempfile


# Every key bench_throughput emits; a result file missing any of them is
# malformed (truncated write, or produced by an older binary).
EXPECTED_KEYS = frozenset({
    "benchmark",
    "deterministic",
    "fig5_per_point_seconds",
    "fig5_shared_decode_seconds",
    "fig5_shared_decode_speedup",
    "hardware_threads",
    "multi_replay_accesses_per_sec",
    "multi_replay_points",
    "multi_replay_threads_used",
    "parallel_accesses_per_sec",
    "parallel_seconds",
    "parallel_threads_used",
    "scalar_serial_accesses_per_sec",
    "scalar_serial_seconds",
    "scheme",
    "serial_accesses_per_sec",
    "serial_seconds",
    "serial_threads_used",
    "simd_probe",
    "simd_probe_speedup",
    "simulated_accesses",
    "speedup",
    "store_cold_suite_seconds",
    "store_warm_suite_seconds",
    "tape_bytes_per_access",
    "tape_record_accesses_per_sec",
    "tape_replay_accesses_per_sec",
    "threads",
    "workloads",
})

# What the kernel dispatcher can actually report for simd_probe.
KNOWN_KERNELS = frozenset({"sse2", "neon", "scalar"})


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"error: {path}: expected a JSON object, got "
              f"{type(data).__name__}", file=sys.stderr)
        sys.exit(2)
    return data


def check_schema(path, data):
    missing = sorted(EXPECTED_KEYS - data.keys())
    if missing:
        return [f"{path}: missing expected keys: {', '.join(missing)}"]
    return []


def _positive_number(value):
    """True for FINITE int/float > 0; bools are not numbers here.

    NaN and Infinity must be rejected explicitly: ``float("inf") > 0`` is
    True, so without the isfinite() gate an Inf metric (a zero-time divide
    in the bench) would sail through every ratio check.
    """
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value) and value > 0)


def check_ratio(failures, log, name, baseline, fresh, tolerance,
                higher_is_better=True):
    """Compare one strictly-positive metric between baseline and fresh.

    A zero / negative / non-numeric value on EITHER side is a hard failure:
    the old behavior of skipping the comparison when the baseline was 0 let
    a corrupt baseline (or a fresh run reporting 0) pass silently.
    `higher_is_better` selects the regression direction: throughput-style
    metrics regress downward, latency-style metrics regress upward.
    """
    if not _positive_number(baseline):
        failures.append(f"{name}: baseline value {baseline!r} is not a "
                        f"positive number (rebuild the baseline)")
        return
    if not _positive_number(fresh):
        failures.append(f"{name}: fresh value {fresh!r} is not a "
                        f"positive number")
        return
    ratio = fresh / baseline
    log.append(f"{name}: baseline {baseline:.2f}, fresh {fresh:.2f} "
               f"({ratio:.2f}x)")
    if higher_is_better:
        floor = 1.0 - tolerance
        if ratio < floor:
            failures.append(f"{name} regressed: {ratio:.2f}x of baseline "
                            f"(floor {floor:.2f}x)")
    else:
        ceiling = 1.0 + tolerance
        if ratio > ceiling:
            failures.append(f"{name} regressed: {ratio:.2f}x of baseline "
                            f"(ceiling {ceiling:.2f}x)")


def evaluate(base, fresh, tolerance, base_path="baseline",
             fresh_path="fresh"):
    """Pure comparison: returns (failures, log_lines)."""
    failures = []
    log = []

    failures += check_schema(base_path, base)
    failures += check_schema(fresh_path, fresh)
    if failures:
        return failures, log

    if not fresh.get("deterministic", False):
        failures.append("fresh run was NOT deterministic "
                        "(parallel rows differed from serial)")

    # Intra-file direction check: the warm-store pass serves every cell from
    # disk, so it must beat the cold fill OF THE SAME RUN. This is
    # host-independent (both times come from one process), so no tolerance —
    # warm >= cold means the store served nothing.
    for path, data in ((fresh_path, fresh), (base_path, base)):
        cold = data.get("store_cold_suite_seconds")
        warm = data.get("store_warm_suite_seconds")
        if not _positive_number(cold) or not _positive_number(warm):
            failures.append(f"{path}: store suite seconds not positive "
                            f"finite numbers (cold={cold!r}, warm={warm!r})")
        elif warm >= cold:
            failures.append(f"{path}: warm store suite ({warm:.3f}s) not "
                            f"faster than cold fill ({cold:.3f}s) — the "
                            f"result store served nothing")
        else:
            log.append(f"{path}: store warm {warm:.3f}s vs cold {cold:.3f}s "
                       f"({cold / warm:.1f}x)")

    # Intra-file direction check: the shared-decode figure sweep decodes
    # each cell's tape once instead of once per machine point, so it must
    # not lose to the per-point sweep OF THE SAME RUN by more than the
    # tolerance (the decode saving is a few percent of an S-dominated
    # sweep, so noise can eat it — but a big loss means the fan-out engine
    # itself regressed).
    for path, data in ((fresh_path, fresh), (base_path, base)):
        per_point = data.get("fig5_per_point_seconds")
        shared = data.get("fig5_shared_decode_seconds")
        if not _positive_number(per_point) or not _positive_number(shared):
            failures.append(f"{path}: fig5 sweep seconds not positive finite "
                            f"numbers (per_point={per_point!r}, "
                            f"shared={shared!r})")
        elif shared > per_point * (1.0 + tolerance):
            failures.append(f"{path}: shared-decode fig5 sweep "
                            f"({shared:.3f}s) slower than per-point "
                            f"({per_point:.3f}s) beyond tolerance — the "
                            f"batched fan-out engine regressed")
        else:
            log.append(f"{path}: fig5 shared-decode {shared:.3f}s vs "
                       f"per-point {per_point:.3f}s "
                       f"({per_point / shared:.2f}x)")

    # simd_probe names the kernel that actually ran; a value the
    # dispatcher cannot produce means the bench and the kernels drifted
    # apart. Baseline and fresh may legitimately differ (hosts differ in
    # ISA, or one lane forces scalar) — log, never fail, on a mismatch.
    for path, data in ((fresh_path, fresh), (base_path, base)):
        kernel = data.get("simd_probe")
        if kernel not in KNOWN_KERNELS:
            failures.append(f"{path}: simd_probe {kernel!r} is not a known "
                            f"kernel ({', '.join(sorted(KNOWN_KERNELS))})")
    # The in-process SIMD-vs-scalar A/B ratio is only comparable when both
    # runs exercised the same vector kernel (a scalar-lane run reports a
    # trivial ~1.0 and would mask a real vector regression).
    if base.get("simd_probe") == fresh.get("simd_probe"):
        check_ratio(failures, log, "simd probe speedup",
                    base.get("simd_probe_speedup"),
                    fresh.get("simd_probe_speedup"), tolerance,
                    higher_is_better=True)
    elif not failures:
        log.append(f"simd probe speedup check skipped (kernel differs: "
                   f"baseline={base.get('simd_probe')}, "
                   f"fresh={fresh.get('simd_probe')})")

    check_ratio(failures, log, "serial accesses/sec",
                base.get("serial_accesses_per_sec"),
                fresh.get("serial_accesses_per_sec"), tolerance,
                higher_is_better=True)

    check_ratio(failures, log, "scalar serial accesses/sec",
                base.get("scalar_serial_accesses_per_sec"),
                fresh.get("scalar_serial_accesses_per_sec"), tolerance,
                higher_is_better=True)

    check_ratio(failures, log, "tape record accesses/sec",
                base.get("tape_record_accesses_per_sec"),
                fresh.get("tape_record_accesses_per_sec"), tolerance,
                higher_is_better=True)

    check_ratio(failures, log, "tape replay accesses/sec",
                base.get("tape_replay_accesses_per_sec"),
                fresh.get("tape_replay_accesses_per_sec"), tolerance,
                higher_is_better=True)

    # Tape density is a size metric, not a timing one: it regresses UPWARD
    # (a fatter encoding), and it is host-independent so the same tolerance
    # is conservative for it.
    check_ratio(failures, log, "tape bytes/access",
                base.get("tape_bytes_per_access"),
                fresh.get("tape_bytes_per_access"), tolerance,
                higher_is_better=False)

    b_threads = base.get("hardware_threads", 1)
    f_threads = fresh.get("hardware_threads", 1)
    if b_threads > 1 and f_threads > 1:
        check_ratio(failures, log, "parallel speedup",
                    base.get("speedup"), fresh.get("speedup"), tolerance,
                    higher_is_better=True)
    else:
        log.append(f"parallel speedup check skipped "
                   f"(hardware_threads: baseline={b_threads}, "
                   f"fresh={f_threads})")

    # Multi-replay throughput scales with how many threads the fan-out
    # used, so the cross-file ratio only means something when both runs
    # fanned out the same way.
    b_mrt = base.get("multi_replay_threads_used")
    f_mrt = fresh.get("multi_replay_threads_used")
    if b_mrt == f_mrt:
        check_ratio(failures, log, "multi-replay accesses/sec",
                    base.get("multi_replay_accesses_per_sec"),
                    fresh.get("multi_replay_accesses_per_sec"), tolerance,
                    higher_is_better=True)
    else:
        log.append(f"multi-replay throughput check skipped "
                   f"(threads used: baseline={b_mrt}, fresh={f_mrt})")

    return failures, log


def _fixture(**overrides):
    base = {
        "benchmark": "bench_throughput",
        "deterministic": True,
        "fig5_per_point_seconds": 22.8,
        "fig5_shared_decode_seconds": 22.0,
        "fig5_shared_decode_speedup": 1.04,
        "hardware_threads": 8,
        "multi_replay_accesses_per_sec": 2.9e7,
        "multi_replay_points": 4,
        "multi_replay_threads_used": 8,
        "parallel_accesses_per_sec": 8.0e7,
        "parallel_seconds": 1.0,
        "parallel_threads_used": 8,
        "scalar_serial_accesses_per_sec": 1.9e7,
        "scalar_serial_seconds": 4.2,
        "scheme": "bypass",
        "serial_accesses_per_sec": 2.0e7,
        "serial_seconds": 4.0,
        "serial_threads_used": 1,
        "simd_probe": "sse2",
        "simd_probe_speedup": 1.05,
        "simulated_accesses": 80000000,
        "speedup": 4.0,
        "store_cold_suite_seconds": 4.2,
        "store_warm_suite_seconds": 0.3,
        "tape_bytes_per_access": 2.5,
        "tape_record_accesses_per_sec": 1.8e7,
        "tape_replay_accesses_per_sec": 2.6e7,
        "threads": 8,
        "workloads": 13,
    }
    base.update(overrides)
    return base


def self_test():
    """Fixture-driven regression tests for the comparison logic itself."""
    # (name, base overrides, fresh overrides, tolerance, expect_failures)
    scenarios = [
        ("identical runs pass", {}, {}, 0.15, False),
        ("drop within tolerance passes",
         {}, {"serial_accesses_per_sec": 1.8e7}, 0.15, False),
        ("serial throughput regression fails",
         {}, {"serial_accesses_per_sec": 1.0e7}, 0.15, True),
        ("zero BASELINE throughput fails (was silently skipped)",
         {"serial_accesses_per_sec": 0}, {}, 0.15, True),
        ("zero fresh throughput fails",
         {}, {"serial_accesses_per_sec": 0}, 0.15, True),
        ("negative baseline fails",
         {"serial_accesses_per_sec": -5.0}, {}, 0.15, True),
        ("boolean metric value fails",
         {"serial_accesses_per_sec": True}, {}, 0.15, True),
        ("nondeterministic fresh run fails",
         {}, {"deterministic": False}, 0.15, True),
        ("zero baseline speedup on multicore fails (was silently skipped)",
         {"speedup": 0}, {}, 0.15, True),
        ("speedup regression fails",
         {}, {"speedup": 2.0}, 0.15, True),
        ("tape replay throughput regression fails",
         {}, {"tape_replay_accesses_per_sec": 1.0e7}, 0.15, True),
        ("tape record throughput regression fails",
         {}, {"tape_record_accesses_per_sec": 1.0e7}, 0.15, True),
        ("tape encoding bloat fails (lower-is-better direction)",
         {}, {"tape_bytes_per_access": 4.0}, 0.15, True),
        ("tape encoding shrink passes",
         {}, {"tape_bytes_per_access": 1.0}, 0.15, False),
        ("zero tape bytes/access fails",
         {}, {"tape_bytes_per_access": 0}, 0.15, True),
        ("single-core host skips speedup without failing",
         {"hardware_threads": 1, "speedup": 0},
         {"hardware_threads": 1, "speedup": 0}, 0.15, False),
        ("missing schema key fails",
         {}, "drop-speedup", 0.15, True),
        ("NaN baseline metric fails",
         {"serial_accesses_per_sec": float("nan")}, {}, 0.15, True),
        ("Inf fresh metric fails (inf > 0 would pass a naive check)",
         {}, {"tape_replay_accesses_per_sec": float("inf")}, 0.15, True),
        ("Inf store cold seconds fails",
         {}, {"store_cold_suite_seconds": float("inf")}, 0.15, True),
        ("warm store slower than cold fill fails",
         {}, {"store_warm_suite_seconds": 5.0}, 0.15, True),
        ("warm store equal to cold fill fails",
         {}, {"store_warm_suite_seconds": 4.2}, 0.15, True),
        ("zero warm store seconds fails",
         {}, {"store_warm_suite_seconds": 0}, 0.15, True),
        ("missing store keys fails (schema drift)",
         {}, "drop-store-keys", 0.15, True),
        ("multi-replay throughput regression fails",
         {}, {"multi_replay_accesses_per_sec": 1.0e7}, 0.15, True),
        ("zero multi-replay throughput fails",
         {}, {"multi_replay_accesses_per_sec": 0}, 0.15, True),
        ("NaN multi-replay throughput fails",
         {}, {"multi_replay_accesses_per_sec": float("nan")}, 0.15, True),
        ("missing multi-replay key fails (schema drift)",
         {}, "drop-multi-replay", 0.15, True),
        ("different fan-out thread counts skip multi-replay without failing",
         {"multi_replay_threads_used": 8, "multi_replay_accesses_per_sec":
          2.9e7},
         {"multi_replay_threads_used": 1, "multi_replay_accesses_per_sec":
          9.0e6}, 0.15, False),
        ("scalar serial throughput regression fails",
         {}, {"scalar_serial_accesses_per_sec": 1.0e7}, 0.15, True),
        ("shared decode slower than per-point beyond tolerance fails",
         {}, {"fig5_shared_decode_seconds": 30.0}, 0.15, True),
        ("shared decode slightly slower than per-point passes (noise)",
         {}, {"fig5_shared_decode_seconds": 23.5}, 0.15, False),
        ("NaN fig5 seconds fails",
         {}, {"fig5_per_point_seconds": float("nan")}, 0.15, True),
        ("Inf fig5 shared seconds fails",
         {}, {"fig5_shared_decode_seconds": float("inf")}, 0.15, True),
        ("unknown simd_probe kernel fails",
         {}, {"simd_probe": "avx512-imaginary"}, 0.15, True),
        ("scalar-lane baseline vs simd fresh passes (kernel may differ)",
         {"simd_probe": "scalar"}, {"simd_probe": "sse2"}, 0.15, False),
        ("simd probe speedup regression fails",
         {}, {"simd_probe_speedup": 0.5}, 0.15, True),
        ("NaN simd probe speedup fails",
         {}, {"simd_probe_speedup": float("nan")}, 0.15, True),
    ]
    problems = []
    for name, b_over, f_over, tol, expect_fail in scenarios:
        base = _fixture(**b_over) if isinstance(b_over, dict) else _fixture()
        if isinstance(f_over, dict):
            fresh = _fixture(**f_over)
        elif f_over == "drop-store-keys":
            fresh = _fixture()
            del fresh["store_cold_suite_seconds"]
            del fresh["store_warm_suite_seconds"]
        elif f_over == "drop-multi-replay":
            fresh = _fixture()
            del fresh["multi_replay_accesses_per_sec"]
        else:  # "drop-speedup": remove a key to trigger the schema check
            fresh = _fixture()
            del fresh["speedup"]
        failures, _ = evaluate(base, fresh, tol)
        if bool(failures) != expect_fail:
            problems.append(f"scenario '{name}': expected "
                            f"{'failures' if expect_fail else 'no failures'},"
                            f" got {failures!r}")

    # Direction flip: a latency-style metric regresses UPWARD.
    failures, _ = [], []
    check_ratio(failures, [], "latency-style metric", 100.0, 130.0, 0.15,
                higher_is_better=False)
    if not failures:
        problems.append("lower-is-better metric increase was not flagged")
    failures = []
    check_ratio(failures, [], "latency-style metric", 100.0, 80.0, 0.15,
                higher_is_better=False)
    if failures:
        problems.append(f"lower-is-better improvement was flagged: "
                        f"{failures!r}")

    # Truncated result files must hard-fail at load (exit 2). A crash-killed
    # bench run used to leave partial JSON; the writers are atomic now, but
    # the checker is the last line of defense against any truncated file.
    def expect_load_exit2(name, content):
        fd, path = tempfile.mkstemp(suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(content)
            try:
                load(path)
                problems.append(f"{name}: load() accepted the file")
            except SystemExit as e:
                if e.code != 2:
                    problems.append(f"{name}: exit {e.code}, want 2")
        finally:
            os.unlink(path)

    expect_load_exit2("truncated JSON (cut mid-key)",
                      '{"benchmark": "bench_throughput", "serial_acc')
    expect_load_exit2("empty file", "")
    expect_load_exit2("valid JSON but not an object", "[1, 2, 3]")

    if problems:
        for p in problems:
            print(f"SELF-TEST FAIL: {p}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(scenarios) + 5} scenarios)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drop (default 0.15 = 15%%)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the checker's own fixture tests and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.fresh is None:
        ap.error("BASELINE and FRESH are required unless --self-test")

    base = load(args.baseline)
    fresh = load(args.fresh)
    failures, log = evaluate(base, fresh, args.tolerance,
                             args.baseline, args.fresh)
    for line in log:
        print(line)
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK: no benchmark regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
