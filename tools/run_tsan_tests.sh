#!/usr/bin/env bash
# Build and run the multi-threaded portions of the suite under
# ThreadSanitizer: the parallel sweep runner, the thread pool, tape
# record/replay under concurrency, and the fault-resilient sweep.
#
#   tools/run_tsan_tests.sh [extra ctest args...]
#
# Uses the `tsan` CMake preset (build-tsan/). Skips with exit 0 and a clear
# message when the toolchain cannot link -fsanitize=thread (some container
# images ship gcc without libtsan) so CI lanes without TSan stay green.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

# Probe: can this toolchain actually produce a TSan binary?
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cc" <<'EOF'
#include <thread>
int main() {
  int x = 0;
  std::thread t([&] { x = 1; });
  t.join();
  return x - 1;
}
EOF
cxx="${CXX:-c++}"
if ! "$cxx" -fsanitize=thread -o "$probe_dir/probe" "$probe_dir/probe.cc" \
    > "$probe_dir/probe.log" 2>&1 || ! "$probe_dir/probe"; then
  echo "run_tsan_tests: toolchain cannot build/run -fsanitize=thread" \
       "binaries; skipping (see $probe_dir/probe.log if still present)"
  exit 0
fi

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target \
  parallel_runner_test thread_pool_test tape_test tape_equivalence_test \
  multi_replay_test fault_test selcache

# The concurrency-heavy tests: parallel sweep determinism, the pool itself,
# tape record/replay equivalence (shared tape cache), the batched
# multi-config fan-out (one task per sink per batch), and the resilient
# sweep's failure isolation. The two suite-scale MultiReplay cases (full
# 13x5 matrix, shared-decode axis) are excluded — minutes each under TSan;
# the remaining MultiReplay cases drive the same fan-out code at
# --threads 4, and the big ones run in the plain and ASan lanes.
ctest --preset tsan -j 2 \
  -R 'ParallelSweep|ThreadPool|Tape|MultiReplay|Resilient|FaultSweep|parallel' \
  -E 'MultiReplay.FullMatrix|MultiReplay.SharedDecode' "$@"

# A real multi-threaded sweep end to end (4 workers over the full matrix),
# plus the same under fault injection: the paths where sweep tasks share
# the tape cache, trace sinks, and the failure report.
build-tsan/tools/selcache sweep --workload Compress --threads 4 > /dev/null
build-tsan/tools/selcache sweep --workload Compress --threads 4 \
  --inject-faults --fault-kind toggle-drop --fault-rate 0.5 \
  --fault-seed 2026 --fault-budget 64 > /dev/null
echo "run_tsan_tests: all thread-sanitized tests passed"
