#!/bin/sh
# End-to-end tape smoke: a figure sweep's published output must be
# byte-identical whether the machine points are interpreted directly or
# replayed from the tape recorded at the first point. Any drift here means
# the record/replay contract broke somewhere between the IR walker and the
# stats printer. Truncated to 2 machine points so the test stays fast.
set -eu

BENCH="${1:?usage: run_tape_figure_test.sh PATH_TO_bench_fig5_memlat}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Wall-clock footers ("simulated in Ns, ..., replayed" / "axis total: ...")
# legitimately differ between the two modes; everything else must not.
strip_timing() {
  grep -v -e '^(simulated in ' -e '^axis total: ' "$1" > "$2"
}

"$BENCH" --max-points 2 --threads 1 > "$TMP/tape_raw.txt"
"$BENCH" --max-points 2 --threads 1 --no-reuse-tape > "$TMP/interp_raw.txt"
strip_timing "$TMP/tape_raw.txt" "$TMP/tape.txt"
strip_timing "$TMP/interp_raw.txt" "$TMP/interp.txt"

if ! cmp -s "$TMP/interp.txt" "$TMP/tape.txt"; then
  echo "FAIL: tape-replay figure output differs from interpreted output" >&2
  diff -u "$TMP/interp.txt" "$TMP/tape.txt" | head -40 >&2
  exit 1
fi

echo "tape_figure_smoke OK: fig5 (2 points) byte-identical with tape reuse"
