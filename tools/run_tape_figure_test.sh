#!/bin/sh
# End-to-end tape smoke: a figure sweep's published output must be
# byte-identical whether the machine points are interpreted directly or
# replayed from the tape recorded at the first point. Any drift here means
# the record/replay contract broke somewhere between the IR walker and the
# stats printer. Truncated to 2 machine points so the test stays fast.
set -eu

BENCH="${1:?usage: run_tape_figure_test.sh PATH_TO_bench_fig5_memlat}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Wall-clock footers ("simulated in Ns, ..., replayed" / "axis total: ...")
# legitimately differ between the two modes; everything else must not.
strip_timing() {
  grep -v -e '^(simulated in ' -e '^axis total: ' "$1" > "$2"
}

# Default mode: shared decode (one decode per cell, batched fan-out to all
# machine points).
"$BENCH" --max-points 2 --threads 1 > "$TMP/tape_raw.txt"
"$BENCH" --max-points 2 --threads 1 --no-reuse-tape > "$TMP/interp_raw.txt"
# Classic per-point replay (the pre-batching engine).
"$BENCH" --max-points 2 --threads 1 --batch 0 > "$TMP/perpoint_raw.txt"
# Shared decode on the scalar probe kernels (vectorization force-disabled).
"$BENCH" --max-points 2 --threads 1 --no-simd > "$TMP/scalar_raw.txt"
for mode in tape interp perpoint scalar; do
  strip_timing "$TMP/${mode}_raw.txt" "$TMP/${mode}.txt"
done

for mode in tape perpoint scalar; do
  if ! cmp -s "$TMP/interp.txt" "$TMP/$mode.txt"; then
    echo "FAIL: $mode figure output differs from interpreted output" >&2
    diff -u "$TMP/interp.txt" "$TMP/$mode.txt" | head -40 >&2
    exit 1
  fi
done

echo "tape_figure_smoke OK: fig5 (2 points) byte-identical across" \
     "interpreted / per-point replay / shared-decode / scalar kernels"
