// selcache — command-line driver for the simulator.
//
//   selcache list                               # workloads & machines
//   selcache run --workload Swim [--machine base] [--version selective]
//                [--scheme bypass] [--threshold 0.5] [--stats]
//   selcache sweep --workload Swim [--machine base] [--scheme bypass]
//   selcache suite [--machine base] [--scheme bypass] [--threads N]
//   selcache show --workload Swim [--optimized] [--marked]
//   selcache run-file PROGRAM.loop [--machine M] [--version V] [--scheme S]
//   selcache trace WORKLOAD VERSION [--machine M] [--scheme S] [--epoch N]
//                [--events-out FILE] [--metrics-out FILE] [--csv-out FILE]
//   selcache trace-record --workload NAME --out FILE [--version V]
//   selcache trace-replay FILE [--machine M] [--scheme S]
//   selcache tape WORKLOAD VERSION [--machine M] [--scheme S] [--out FILE]
//   selcache verify [FILE.loop] [--workload NAME] [--version V] [--csv]
//   selcache predict WORKLOAD VERSION [--machine M] [--csv] [--check]
//                [--predict-classify] [--threshold T] [--capacity-fraction F]
//   selcache predict-matrix [--machine M] [--workload NAME] [--csv]
//   selcache faultsim WORKLOAD VERSION [--fault-kind K] [--fault-rate R]
//                [--fault-seed N] [--rates R1,R2,..] [--fault-budget N]
//                [--integrity-checks] [--watchdog-accesses N] [--stats]
//   selcache store ACTION --store DIR [--max-bytes N]   # stats | ls | gc
//   selcache resume RUN_DIR [--threads N] [--status]
//
// sweep/suite accept --store DIR (persistent result store: cells hit on
// disk skip simulation entirely), --store-readonly, --store-clear. Store
// accounting prints to stderr so stdout stays byte-identical cold vs warm.
//
// sweep/suite accept --run-dir DIR: the run becomes crash-safe and
// checkpointed (write-ahead journal + per-cell result store in DIR). A run
// killed at any point — SIGKILL included — is picked up by `selcache
// resume DIR`, whose output is byte-identical to an uninterrupted run at
// any --threads. SIGINT/SIGTERM suspend gracefully at a cell boundary
// (exit 130/143); --deadline-ms suspends the same way when the wall-clock
// budget expires (exit 124). --run-dir is mutually exclusive with fault
// injection, tracing, and an external --store (the run directory has its
// own store and ledger).
//
// Exit code 0 on success, 1 when verification reports diagnostics or a
// single faultsim run dies to an injected fault, 2 on usage errors
// (including missing/unreadable/malformed input files — every file-handling
// path prints a one-line diagnostic instead of letting an exception
// escape), 124 when a checkpointed run suspends on its --deadline-ms,
// 128+signo after a graceful signal suspension. Unknown subcommands and
// malformed flags get a one-line diagnostic on stderr.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/marker_elimination.h"
#include <fstream>

#include "codegen/trace_engine.h"
#include "tape/tape.h"
#include "codegen/trace_io.h"
#include "core/report.h"
#include "core/runner.h"
#include "ir/parser.h"
#include "locality/crosscheck.h"
#include "memsys/probe_kernels.h"
#include "tape/multi_replayer.h"
#include "locality/format.h"
#include "locality/predictor.h"
#include "ir/printer.h"
#include "run/checkpoint.h"
#include "store/store.h"
#include "support/signal_guard.h"
#include "support/table.h"
#include "tape/cache.h"
#include "trace/jsonl.h"
#include "trace/timeline.h"
#include "transform/pipeline.h"
#include "verify/verifier.h"

using namespace selcache;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  selcache list\n"
               "  selcache run   --workload NAME [--machine M] [--version V]"
               " [--scheme S] [--threshold T] [--stats]\n"
               "  selcache sweep --workload NAME [--machine M] [--scheme S]"
               " [--threads N]\n"
               "                 [--trace-dir DIR] [--epoch N] [--reuse-tape]"
               " [--batch N] [--no-simd]\n"
               "                 [--store DIR] [--store-readonly]"
               " [--store-clear]\n"
               "                 [--run-dir DIR] [--deadline-ms N]"
               " [--cell-deadline-ms N]\n"
               "                 [--cell-retries N] [--retry-backoff-ms N]"
               " [--csv-out F] [--jsonl-out F]\n"
               "  selcache suite [--machine M] [--scheme S] [--threads N]"
               " [--verify-pipeline] [--trace-dir DIR] [--epoch N]"
               " [--reuse-tape]\n"
               "                 [--batch N] [--no-simd]\n"
               "                 [--store DIR] [--store-readonly]"
               " [--store-clear]\n"
               "                 [--run-dir DIR] [--deadline-ms N]"
               " [--cell-deadline-ms N]\n"
               "                 [--cell-retries N] [--retry-backoff-ms N]"
               " [--csv-out F] [--jsonl-out F]\n"
               "  selcache store ACTION --store DIR [--max-bytes N]"
               "   # ACTION: stats ls gc\n"
               "  selcache resume RUN_DIR [--threads N] [--deadline-ms N]"
               " [--status]\n"
               "  selcache show  --workload NAME [--optimized] [--marked]\n"
               "  selcache run-file FILE.loop [--machine M] [--version V]"
               " [--scheme S]\n"
               "  selcache trace WORKLOAD VERSION [--machine M] [--scheme S]"
               " [--epoch N]\n"
               "                 [--events-out F] [--metrics-out F]"
               " [--csv-out F]\n"
               "  selcache trace-record --workload NAME --out FILE"
               " [--version V] [--scheme S]\n"
               "  selcache trace-replay FILE [--machine M] [--scheme S]\n"
               "  selcache tape  WORKLOAD VERSION [--machine M] [--scheme S]"
               " [--out FILE] [--stat]\n"
               "  selcache verify [FILE.loop] [--workload NAME] [--version V]"
               " [--csv]\n"
               "  selcache predict WORKLOAD VERSION [--machine M] [--csv]"
               " [--check]\n"
               "                 [--predict-classify] [--threshold T]"
               " [--capacity-fraction F]\n"
               "  selcache predict-matrix [--machine M] [--workload NAME]"
               " [--csv]\n"
               "  selcache faultsim WORKLOAD VERSION [--machine M]"
               " [--scheme S] [--fault-kind K]\n"
               "                 [--fault-rate R] [--fault-seed N]"
               " [--rates R1,R2,..]\n"
               "                 [--fault-budget N] [--integrity-checks]"
               " [--watchdog-accesses N] [--stats]\n"
               "  sweep/suite fault flags: --inject-faults --fault-kind K"
               " --fault-rate R --fault-seed N\n"
               "                 --max-retries N --watchdog-accesses N"
               " --fault-budget N --integrity-checks\n"
               "                 --failures-out F.csv --failures-jsonl F\n"
               "machines: base memlat l2size l1size l2assoc l1assoc\n"
               "versions: base purehw puresw combined selective\n"
               "schemes:  bypass victim none\n"
               "faults:   counter-flip counter-reset toggle-drop toggle-dup"
               " toggle-reorder entry-invalidate task-crash\n");
  return 2;
}

/// Per-command flag allowlist: anything else is a malformed invocation and
/// gets a one-line diagnostic instead of the full usage dump.
struct CommandSpec {
  const char* name;
  std::set<std::string> value_flags;
  std::set<std::string> bool_flags;
};

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start,
                                               const CommandSpec& spec,
                                               bool* ok) {
  std::map<std::string, std::string> flags;
  *ok = true;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "selcache: unexpected argument '%s' for '%s'\n",
                   arg.c_str(), spec.name);
      *ok = false;
      return flags;
    }
    const std::string a = arg.substr(2);
    if (spec.bool_flags.count(a)) {
      flags[a] = "1";
    } else if (spec.value_flags.count(a)) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "selcache: flag '--%s' expects a value\n",
                     a.c_str());
        *ok = false;
        return flags;
      }
      flags[a] = argv[++i];
    } else {
      std::fprintf(stderr, "selcache: unknown flag '--%s' for '%s'\n",
                   a.c_str(), spec.name);
      *ok = false;
      return flags;
    }
  }
  return flags;
}

/// Strict base-10 unsigned parse: whole string, no sign, no overflow.
/// (std::stoull would accept "  12x" prefixes via stol semantics and throw
/// out_of_range on huge digit strings — both have bitten CLI paths before.)
bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Strict finite-double parse: whole string, no trailing junk.
bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Parse an optional unsigned-integer flag; absent leaves `out` untouched.
/// Returns false after a one-line diagnostic on a malformed value.
bool parse_u64_flag(const std::map<std::string, std::string>& flags,
                    const char* name, std::uint64_t* out,
                    bool require_positive = false) {
  const auto it = flags.find(name);
  if (it == flags.end()) return true;
  std::uint64_t v = 0;
  if (!parse_u64(it->second, &v) || (require_positive && v == 0)) {
    std::fprintf(stderr,
                 "selcache: flag '--%s' expects a %s integer, got '%s'\n",
                 name, require_positive ? "positive" : "non-negative",
                 it->second.c_str());
    return false;
  }
  *out = v;
  return true;
}

std::optional<core::MachineConfig> machine_by_name(const std::string& n) {
  return core::machine_by_name(n);
}

std::optional<core::Version> version_by_name(const std::string& n) {
  if (n.empty() || n == "base") return core::Version::Base;
  if (n == "purehw") return core::Version::PureHardware;
  if (n == "puresw") return core::Version::PureSoftware;
  if (n == "combined") return core::Version::Combined;
  if (n == "selective") return core::Version::Selective;
  return std::nullopt;
}

std::optional<hw::SchemeKind> scheme_by_name(const std::string& n) {
  if (n.empty() || n == "bypass") return hw::SchemeKind::Bypass;
  if (n == "victim") return hw::SchemeKind::Victim;
  if (n == "none") return hw::SchemeKind::None;
  return std::nullopt;
}

const workloads::WorkloadInfo* workload_by_name(const std::string& n) {
  for (const auto& w : workloads::all_workloads())
    if (w.name == n) return &w;
  return nullptr;
}

int cmd_list() {
  std::printf("workloads (13, Table 2 order):\n");
  for (const auto& w : workloads::all_workloads())
    std::printf("  %-10s %-9s (paper: %.1fM instr, L1 %.2f%%, L2 %.2f%%)\n",
                w.name.c_str(), to_string(w.category),
                w.paper_instructions_m, w.paper_l1_miss, w.paper_l2_miss);
  std::printf("machines: base memlat l2size l1size l2assoc l1assoc\n");
  std::printf("versions: base purehw puresw combined selective\n");
  std::printf("schemes:  bypass victim none\n");
  return 0;
}

int cmd_run(const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(flags.count("workload")
                                       ? flags.at("workload")
                                       : "");
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto version =
      version_by_name(flags.count("version") ? flags.at("version") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (w == nullptr || !machine || !version || !scheme) return usage();

  core::RunOptions opt;
  opt.scheme = *scheme;
  if (flags.count("threshold") &&
      !parse_double(flags.at("threshold"), &opt.optimize.threshold)) {
    std::fprintf(stderr,
                 "selcache: flag '--threshold' expects a number, got '%s'\n",
                 flags.at("threshold").c_str());
    return 2;
  }

  const core::RunResult r = core::run_version(*w, *machine, *version, opt);
  std::printf("%s / %s / %s / %s\n", w->name.c_str(),
              machine->name.c_str(), to_string(*version),
              hw::to_string(*scheme));
  std::printf("  cycles        %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("  instructions  %llu\n",
              static_cast<unsigned long long>(r.instructions));
  std::printf("  L1 miss       %.2f%%\n", 100.0 * r.l1_miss_rate);
  std::printf("  L2 miss       %.2f%%\n", 100.0 * r.l2_miss_rate);
  std::printf("  toggles       %llu\n",
              static_cast<unsigned long long>(r.toggles));
  if (flags.count("stats"))
    for (const auto& [k, v] : r.stats.all())
      std::printf("  %-32s %llu\n", k.c_str(),
                  static_cast<unsigned long long>(v));
  return 0;
}

/// Parse --epoch into `out` (positive integer). Returns false (after a
/// diagnostic) on a malformed value; leaves `out` untouched when absent.
bool parse_epoch_flag(const std::map<std::string, std::string>& flags,
                      std::uint64_t* out) {
  return parse_u64_flag(flags, "epoch", out, /*require_positive=*/true);
}

/// `selcache trace WORKLOAD VERSION` — run one traced simulation and render
/// its phase timeline; optionally serialize events/metrics/CSV to files.
int cmd_trace(const std::string& wname, const std::string& vname,
              const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(wname);
  if (w == nullptr) {
    std::fprintf(stderr, "selcache: unknown workload '%s'\n", wname.c_str());
    return 2;
  }
  const auto version = version_by_name(vname);
  if (!version) {
    std::fprintf(stderr, "selcache: unknown version '%s'\n", vname.c_str());
    return 2;
  }
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !scheme) return usage();

  core::RunOptions opt;
  opt.scheme = *scheme;
  if (!parse_epoch_flag(flags, &opt.trace_epoch)) return 2;

  trace::Recording recording;
  const core::RunResult r =
      core::run_version(*w, *machine, *version, opt, &recording);

  const trace::SimTag tag{w->name, core::version_key(*version)};
  if (flags.count("events-out") &&
      !core::write_text_file(flags.at("events-out"),
                             trace::events_jsonl(recording, tag))) {
    std::fprintf(stderr, "selcache: cannot write %s\n",
                 flags.at("events-out").c_str());
    return 2;
  }
  if (flags.count("metrics-out") &&
      !core::write_text_file(flags.at("metrics-out"),
                             trace::metrics_jsonl(recording, tag))) {
    std::fprintf(stderr, "selcache: cannot write %s\n",
                 flags.at("metrics-out").c_str());
    return 2;
  }
  const auto rows = trace::build_timeline(recording);
  if (flags.count("csv-out") &&
      !core::write_text_file(flags.at("csv-out"),
                             trace::timeline_csv_header() +
                                 trace::timeline_csv(rows, tag.workload,
                                                     tag.version))) {
    std::fprintf(stderr, "selcache: cannot write %s\n",
                 flags.at("csv-out").c_str());
    return 2;
  }

  std::printf("%s", trace::timeline_table(w->name + " / " + tag.version +
                                              " (" + machine->name + ", " +
                                              hw::to_string(*scheme) + ")",
                                          rows)
                        .c_str());
  std::printf("%zu epochs (length %llu), %zu events, %llu cycles\n",
              recording.epochs.size(),
              static_cast<unsigned long long>(opt.trace_epoch),
              recording.events.size(),
              static_cast<unsigned long long>(r.cycles));
  return 0;
}

/// Serialize a batch of trace captures into DIR/{events.jsonl,
/// metrics.jsonl, timeline.csv}. Captures must already be in fixed
/// (workload, version) order — concatenation preserves it, which keeps the
/// files bit-identical across thread counts.
int write_trace_dir(const std::vector<core::TraceCapture>& traces,
                    const std::string& dir_flag) {
  const std::filesystem::path dir = dir_flag;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "selcache: cannot create directory %s: %s\n",
                 dir.string().c_str(), ec.message().c_str());
    return 2;
  }
  std::string events, metrics, csv = trace::timeline_csv_header();
  for (const auto& c : traces) {
    const trace::SimTag tag{c.workload, core::version_key(c.version)};
    events += trace::events_jsonl(c.recording, tag);
    metrics += trace::metrics_jsonl(c.recording, tag);
    csv += trace::timeline_csv(trace::build_timeline(c.recording),
                               tag.workload, tag.version);
  }
  const auto emit = [&dir](const char* file, const std::string& content) {
    const std::string path = (dir / file).string();
    if (core::write_text_file(path, content)) return true;
    std::fprintf(stderr, "selcache: cannot write %s\n", path.c_str());
    return false;
  };
  if (!emit("events.jsonl", events) || !emit("metrics.jsonl", metrics) ||
      !emit("timeline.csv", csv))
    return 2;
  std::printf("phase traces: %zu recordings -> %s\n", traces.size(),
              dir.string().c_str());
  return 0;
}

/// Parse --threads into `par` (non-negative integer). Returns false after a
/// diagnostic on a malformed value.
bool parse_threads_flag(const std::map<std::string, std::string>& flags,
                        core::ParallelSweepOptions* par) {
  std::uint64_t t = par->num_threads;
  if (!parse_u64_flag(flags, "threads", &t)) return false;
  if (t > 4096) {
    std::fprintf(stderr,
                 "selcache: flag '--threads' out of range (max 4096), "
                 "got '%s'\n",
                 flags.at("threads").c_str());
    return false;
  }
  par->num_threads = static_cast<unsigned>(t);
  return true;
}

/// Parse --batch (ops per decoded replay batch; 0 = classic streaming
/// replay) and apply --no-simd (force the scalar probe kernels). Returns
/// false after a diagnostic on a malformed --batch value.
bool parse_engine_flags(const std::map<std::string, std::string>& flags,
                        core::RunOptions* opt) {
  std::uint64_t b = opt->batch;
  if (!parse_u64_flag(flags, "batch", &b)) return false;
  if (b > 0xffffffffULL) {
    std::fprintf(stderr,
                 "selcache: flag '--batch' out of range (max 2^32-1), "
                 "got '%s'\n",
                 flags.at("batch").c_str());
    return false;
  }
  opt->batch = static_cast<std::uint32_t>(b);
  if (flags.count("no-simd")) memsys::kernels::force_scalar(true);
  return true;
}

/// Parse the fault-campaign flags shared by faultsim and sweep/suite into
/// a FaultConfig + DegradePolicy + watchdog. Returns false after a one-line
/// diagnostic.
bool parse_fault_common(const std::map<std::string, std::string>& flags,
                        fault::FaultConfig* cfg, hw::DegradePolicy* degrade,
                        std::uint64_t* watchdog) {
  if (flags.count("fault-kind")) {
    const auto k = fault::fault_kind_by_name(flags.at("fault-kind"));
    if (!k) {
      std::fprintf(stderr,
                   "selcache: unknown fault kind '%s' (kinds: counter-flip"
                   " counter-reset toggle-drop toggle-dup toggle-reorder"
                   " entry-invalidate task-crash)\n",
                   flags.at("fault-kind").c_str());
      return false;
    }
    cfg->kind = *k;
    cfg->rate = 0.1;  // sensible default; --fault-rate overrides
  }
  if (flags.count("fault-rate")) {
    if (!parse_double(flags.at("fault-rate"), &cfg->rate) || cfg->rate < 0.0 ||
        cfg->rate > 1.0) {
      std::fprintf(stderr,
                   "selcache: flag '--fault-rate' expects a probability in"
                   " [0,1], got '%s'\n",
                   flags.at("fault-rate").c_str());
      return false;
    }
  }
  if (!parse_u64_flag(flags, "fault-seed", &cfg->seed)) return false;
  if (!parse_u64_flag(flags, "fault-budget", &degrade->fault_budget))
    return false;
  if (flags.count("integrity-checks")) degrade->integrity_checks = true;
  if (!parse_u64_flag(flags, "watchdog-accesses", watchdog)) return false;
  return true;
}

/// Parse the sweep/suite resilience flags. `*active` comes back true when
/// the resilient engine should run (--inject-faults, or a watchdog alone).
bool parse_sweep_fault_flags(const std::map<std::string, std::string>& flags,
                             core::FaultSweepOptions* fopt, bool* active) {
  if (!parse_fault_common(flags, &fopt->fault, &fopt->degrade,
                          &fopt->watchdog_accesses))
    return false;
  std::uint64_t retries = fopt->max_retries;
  if (!parse_u64_flag(flags, "max-retries", &retries)) return false;
  if (retries > 100) {
    std::fprintf(stderr,
                 "selcache: flag '--max-retries' out of range (max 100)\n");
    return false;
  }
  fopt->max_retries = static_cast<std::uint32_t>(retries);
  const bool inject = flags.count("inject-faults") > 0;
  if (!inject && fopt->fault.kind != fault::FaultKind::None) {
    std::fprintf(stderr,
                 "selcache: fault flags require '--inject-faults'\n");
    return false;
  }
  if (inject && fopt->fault.kind == fault::FaultKind::None) {
    std::fprintf(stderr,
                 "selcache: '--inject-faults' requires '--fault-kind'\n");
    return false;
  }
  *active = inject || fopt->watchdog_accesses > 0;
  return true;
}

/// Print the per-cell outcome ledger of a resilient sweep and serialize it
/// where asked. Failed cells do NOT fail the process — quarantining them is
/// the point — so this only returns nonzero on I/O errors.
int emit_failure_report(const fault::FailureReport& report,
                        const std::map<std::string, std::string>& flags) {
  std::printf("fault report: %zu cells, %zu degraded, %zu failed\n",
              report.cells.size(), report.degraded_cells(),
              report.failed_cells());
  std::printf("%s", report.table().c_str());
  if (flags.count("failures-out") &&
      !core::write_text_file(flags.at("failures-out"), report.csv())) {
    std::fprintf(stderr, "selcache: cannot write %s\n",
                 flags.at("failures-out").c_str());
    return 2;
  }
  if (flags.count("failures-jsonl") &&
      !core::write_text_file(flags.at("failures-jsonl"), report.jsonl())) {
    std::fprintf(stderr, "selcache: cannot write %s\n",
                 flags.at("failures-jsonl").c_str());
    return 2;
  }
  return 0;
}

/// `selcache faultsim WORKLOAD VERSION` — run one simulation under a fault
/// campaign and report how far it degraded; with --rates, sweep the rate
/// axis and print one degradation row per rate (the EXPERIMENTS table).
int cmd_faultsim(const std::string& wname, const std::string& vname,
                 const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(wname);
  if (w == nullptr) {
    std::fprintf(stderr, "selcache: unknown workload '%s'\n", wname.c_str());
    return 2;
  }
  const auto version = version_by_name(vname);
  if (!version) {
    std::fprintf(stderr, "selcache: unknown version '%s'\n", vname.c_str());
    return 2;
  }
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !scheme) return usage();

  core::RunOptions opt;
  opt.scheme = *scheme;
  if (!parse_fault_common(flags, &opt.fault, &opt.degrade,
                          &opt.watchdog_accesses))
    return 2;
  if (opt.fault.kind == fault::FaultKind::None &&
      opt.watchdog_accesses == 0) {
    std::fprintf(stderr,
                 "selcache: 'faultsim' expects '--fault-kind' (or"
                 " '--watchdog-accesses')\n");
    return 2;
  }

  if (flags.count("rates")) {
    // Rate sweep: same seed at every point, so the table is reproducible
    // and each point differs only by the Bernoulli threshold.
    std::vector<double> rates;
    std::string list = flags.at("rates");
    for (std::size_t pos = 0; pos <= list.size();) {
      const std::size_t comma = list.find(',', pos);
      const std::string item =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      double r = 0.0;
      if (!parse_double(item, &r) || r < 0.0 || r > 1.0) {
        std::fprintf(stderr,
                     "selcache: flag '--rates' expects comma-separated"
                     " probabilities in [0,1], got '%s'\n",
                     item.c_str());
        return 2;
      }
      rates.push_back(r);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    TextTable t({"rate", "cycles", "L1 miss%", "toggles", "injected",
                 "degradations", "status"});
    for (double rate : rates) {
      opt.fault.rate = rate;
      try {
        const core::RunResult r =
            core::run_version(*w, *machine, *version, opt);
        t.add_row({TextTable::num(rate, 4),
                   std::to_string(static_cast<unsigned long long>(r.cycles)),
                   TextTable::num(100.0 * r.l1_miss_rate),
                   std::to_string(r.toggles),
                   std::to_string(r.faults_injected),
                   std::to_string(r.degradations),
                   r.degradations > 0 ? "degraded" : "ok"});
      } catch (const std::exception& e) {
        t.add_row({TextTable::num(rate, 4), "-", "-", "-", "-", "-",
                   std::string("failed: ") + e.what()});
      }
    }
    std::printf("%s / %s / %s faults (seed %llu)\n%s", w->name.c_str(),
                vname.c_str(), fault::to_string(opt.fault.kind),
                static_cast<unsigned long long>(opt.fault.seed),
                t.str().c_str());
    return 0;
  }

  try {
    const core::RunResult r = core::run_version(*w, *machine, *version, opt);
    std::printf("%s / %s / %s / %s faults (rate %g, seed %llu)\n",
                w->name.c_str(), vname.c_str(), hw::to_string(*scheme),
                fault::to_string(opt.fault.kind), opt.fault.rate,
                static_cast<unsigned long long>(opt.fault.seed));
    std::printf("  cycles        %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("  L1 miss       %.2f%%   L2 miss %.2f%%\n",
                100.0 * r.l1_miss_rate, 100.0 * r.l2_miss_rate);
    std::printf("  toggles       %llu\n",
                static_cast<unsigned long long>(r.toggles));
    std::printf("  faults        %llu injected, %llu degradation%s%s\n",
                static_cast<unsigned long long>(r.faults_injected),
                static_cast<unsigned long long>(r.degradations),
                r.degradations == 1 ? "" : "s",
                r.degradations > 0 ? " (safe mode)" : "");
    if (flags.count("stats"))
      for (const auto& [k, v] : r.stats.all())
        std::printf("  %-32s %llu\n", k.c_str(),
                    static_cast<unsigned long long>(v));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selcache: faultsim run failed: %s\n", e.what());
    return 1;
  }
}

int cmd_tape(const std::string& wname, const std::string& vname,
             const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(wname);
  if (w == nullptr) {
    std::fprintf(stderr, "selcache: unknown workload '%s'\n", wname.c_str());
    return 2;
  }
  const auto version = version_by_name(vname);
  if (!version) {
    std::fprintf(stderr, "selcache: unknown version '%s'\n", vname.c_str());
    return 2;
  }
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !scheme) return usage();

  core::RunOptions opt;
  opt.scheme = *scheme;
  core::RunResult r;
  const tape::Tape t = core::record_tape(*w, *machine, *version, opt, &r);
  const double accesses = static_cast<double>(t.stats.data_accesses());
  std::printf("%s / %s tape: %llu bytes, %llu data accesses"
              " (%.3f bytes/access)\n",
              w->name.c_str(), core::version_key(*version),
              static_cast<unsigned long long>(t.bytes.size()),
              static_cast<unsigned long long>(t.stats.data_accesses()),
              accesses > 0 ? static_cast<double>(t.bytes.size()) / accesses
                           : 0.0);
  std::printf("  recording run: %llu cycles, L1 miss %.2f%%\n",
              static_cast<unsigned long long>(r.cycles),
              100.0 * r.l1_miss_rate);
  if (flags.count("stat")) {
    // Decoded-op histogram: the exact call stream the batched multi-replay
    // engine feeds each machine point, and how many fan-out batches the
    // default batch size cuts it into (the numbers kDefaultBatchOps was
    // sized from).
    struct CountingSink {
      std::uint64_t loads = 0, stores = 0, ifetches = 0, branches = 0,
                    computes = 0, toggles = 0;
      void load(Addr, bool) { ++loads; }
      void store(Addr) { ++stores; }
      void touch_code(Addr, std::uint32_t) { ++ifetches; }
      void branch(Addr, bool) { ++branches; }
      void compute(std::uint64_t) { ++computes; }
      void toggle(bool, std::int32_t) { ++toggles; }
    } c;
    tape::replay_into(t, c);
    const std::uint64_t total = c.loads + c.stores + c.ifetches +
                                c.branches + c.computes + c.toggles;
    const auto pct = [total](std::uint64_t n) {
      return total > 0 ? 100.0 * static_cast<double>(n) /
                             static_cast<double>(total)
                       : 0.0;
    };
    std::printf("  decoded ops: %llu total\n",
                static_cast<unsigned long long>(total));
    std::printf("    load    %12llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(c.loads), pct(c.loads));
    std::printf("    store   %12llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(c.stores), pct(c.stores));
    std::printf("    ifetch  %12llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(c.ifetches), pct(c.ifetches));
    std::printf("    branch  %12llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(c.branches), pct(c.branches));
    std::printf("    compute %12llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(c.computes), pct(c.computes));
    std::printf("    toggle  %12llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(c.toggles), pct(c.toggles));
    const std::uint64_t batches =
        (total + tape::kDefaultBatchOps - 1) / tape::kDefaultBatchOps;
    std::printf("  batches: %llu of up to %u ops (default --batch %u)\n",
                static_cast<unsigned long long>(batches),
                tape::kDefaultBatchOps, tape::kDefaultBatchOps);
  }
  if (flags.count("out")) {
    if (!tape::save_tape(t, flags.at("out"))) {
      std::fprintf(stderr, "selcache: cannot write %s\n",
                   flags.at("out").c_str());
      return 2;
    }
    std::printf("  saved to %s\n", flags.at("out").c_str());
  }
  return 0;
}

/// The tape cache a store-enabled sweep records into / replays from.
tape::TapeCache& sweep_tape_cache(const core::RunOptions& opt) {
  return opt.tape_cache != nullptr ? *opt.tape_cache
                                   : tape::TapeCache::global();
}

/// Open the persistent result store requested by --store/--store-readonly/
/// --store-clear into `opt`. Returns the owning handle (nullptr when no
/// store was requested); sets *ok=false after a one-line diagnostic on
/// misuse or an un-creatable directory. Preloads persisted tapes when the
/// sweep replays tapes, so figure-style warm runs skip recording too.
std::unique_ptr<store::ResultStore> open_store_flags(
    const std::map<std::string, std::string>& flags, core::RunOptions* opt,
    bool* ok) {
  *ok = true;
  const bool read_only = flags.count("store-readonly") > 0;
  const bool clear = flags.count("store-clear") > 0;
  if (!flags.count("store")) {
    if (read_only || clear) {
      std::fprintf(stderr,
                   "selcache: '--store-readonly'/'--store-clear' require"
                   " '--store DIR'\n");
      *ok = false;
    }
    return nullptr;
  }
  if (read_only && clear) {
    std::fprintf(stderr,
                 "selcache: '--store-readonly' and '--store-clear' are"
                 " mutually exclusive\n");
    *ok = false;
    return nullptr;
  }
  try {
    auto s = std::make_unique<store::ResultStore>(
        flags.at("store"), store::ResultStore::Options{.read_only = read_only});
    if (clear) s->clear();
    if (opt->reuse_tape) s->preload_tapes(sweep_tape_cache(*opt));
    opt->result_store = s.get();
    return s;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selcache: %s\n", e.what());
    *ok = false;
    return nullptr;
  }
}

/// Persist freshly recorded tapes and report the store's hit/miss ledger.
/// Accounting goes to stderr: stdout must stay byte-identical between a
/// cold and a warm run.
void finish_store(store::ResultStore* s, const core::RunOptions& opt) {
  if (s == nullptr) return;
  std::size_t tapes = 0;
  if (opt.reuse_tape) tapes = s->persist_tapes(sweep_tape_cache(opt));
  const store::StoreCounters c = s->counters();
  std::fprintf(stderr,
               "store: %llu hits, %llu misses (%llu corrupt), %llu cells"
               " written, %zu tapes persisted -> %s\n",
               static_cast<unsigned long long>(c.hits),
               static_cast<unsigned long long>(c.misses),
               static_cast<unsigned long long>(c.corrupt),
               static_cast<unsigned long long>(c.writes), tapes,
               s->dir().c_str());
}

/// `selcache store ACTION --store DIR` — inspect or prune a store.
int cmd_store(const std::string& action,
              const std::map<std::string, std::string>& flags) {
  if (!flags.count("store")) {
    std::fprintf(stderr, "selcache: 'store' expects '--store DIR'\n");
    return 2;
  }
  std::optional<store::ResultStore> s;
  try {
    s.emplace(flags.at("store"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selcache: %s\n", e.what());
    return 2;
  }
  if (action == "stats") {
    std::uint64_t cells = 0, tapes = 0, bytes = 0;
    for (const auto& e : s->entries()) {
      bytes += e.bytes;
      (e.path.size() > 5 && e.path.rfind(".cell") == e.path.size() - 5
           ? cells
           : tapes)++;
    }
    std::printf("%s: %llu cells, %llu tapes, %llu bytes\n",
                s->dir().c_str(), static_cast<unsigned long long>(cells),
                static_cast<unsigned long long>(tapes),
                static_cast<unsigned long long>(bytes));
    return 0;
  }
  if (action == "ls") {
    for (const auto& e : s->entries())
      std::printf("%10llu  %s  %s\n",
                  static_cast<unsigned long long>(e.bytes),
                  std::filesystem::path(e.path).filename().string().c_str(),
                  e.key.empty() ? "<unreadable>" : e.key.c_str());
    return 0;
  }
  if (action == "gc") {
    if (!flags.count("max-bytes")) {
      std::fprintf(stderr, "selcache: 'store gc' expects '--max-bytes N'\n");
      return 2;
    }
    std::uint64_t max_bytes = 0;
    if (!parse_u64_flag(flags, "max-bytes", &max_bytes)) return 2;
    const std::size_t removed = s->gc(max_bytes);
    std::printf("gc: removed %zu files, %llu bytes remain in %s\n", removed,
                static_cast<unsigned long long>(s->total_bytes()),
                s->dir().c_str());
    return 0;
  }
  std::fprintf(stderr,
               "selcache: unknown store action '%s' (actions: stats ls"
               " gc)\n",
               action.c_str());
  return 2;
}

/// One sweep's stdout block: the header line plus the four evaluated
/// versions. Shared by the plain, resilient, and checkpointed paths so a
/// resumed run is byte-identical to an uninterrupted one.
void print_sweep_row(const core::ImprovementRow& row,
                     const std::string& machine_name, hw::SchemeKind scheme) {
  std::printf("%s on %s (%s scheme): base %llu cycles\n", row.benchmark.c_str(),
              machine_name.c_str(), hw::to_string(scheme),
              static_cast<unsigned long long>(row.base_cycles));
  for (core::Version v : core::kEvaluatedVersions)
    std::printf("  %-14s %+7.2f%%\n", to_string(v), row.pct.at(v));
}

/// Write the figure rows to --csv-out / --jsonl-out when asked (atomic
/// writes; same serializers for fresh and resumed runs).
int emit_figure_files(const std::vector<core::ImprovementRow>& rows,
                      const std::string& csv_out,
                      const std::string& jsonl_out) {
  if (!csv_out.empty() &&
      !core::write_text_file(csv_out, core::figure_csv(rows))) {
    std::fprintf(stderr, "selcache: cannot write %s\n", csv_out.c_str());
    return 2;
  }
  if (!jsonl_out.empty() &&
      !core::write_text_file(jsonl_out, core::figure_jsonl(rows))) {
    std::fprintf(stderr, "selcache: cannot write %s\n", jsonl_out.c_str());
    return 2;
  }
  return 0;
}

/// Parse the checkpoint-engine flags shared by --run-dir sweeps/suites and
/// `resume`. Returns false after a one-line diagnostic.
bool parse_checkpoint_options(const std::map<std::string, std::string>& flags,
                              run::CheckpointOptions* copts) {
  core::ParallelSweepOptions par;
  if (!parse_threads_flag(flags, &par)) return false;
  copts->threads = par.num_threads;
  if (!parse_u64_flag(flags, "deadline-ms", &copts->run_deadline_ms))
    return false;
  if (!parse_u64_flag(flags, "cell-deadline-ms", &copts->cell_deadline_ms))
    return false;
  std::uint64_t retries = copts->cell_retries;
  if (!parse_u64_flag(flags, "cell-retries", &retries)) return false;
  if (retries > 100) {
    std::fprintf(stderr,
                 "selcache: flag '--cell-retries' out of range (max 100)\n");
    return false;
  }
  copts->cell_retries = static_cast<std::uint32_t>(retries);
  if (!parse_u64_flag(flags, "retry-backoff-ms", &copts->retry_backoff_ms))
    return false;
  return true;
}

/// Report a checkpointed run's outcome: print the figure for a completed
/// run (byte-identical to the uncheckpointed path), a resume hint for a
/// suspended one. Accounting goes to stderr, mirroring the store rule.
int finish_checkpoint(const std::string& run_dir, const run::RunSpec& spec,
                      const run::CheckpointOutcome& out) {
  if (!out.error.empty()) {
    std::fprintf(stderr, "selcache: %s\n", out.error.c_str());
    return 2;
  }
  if (out.suspended) {
    const std::uint64_t settled =
        out.cells_done + out.cells_from_store + out.cells_quarantined;
    std::fprintf(stderr,
                 "selcache: run %s suspended (%llu/%zu cells settled);"
                 " resume with 'selcache resume %s'\n",
                 out.id.c_str(), static_cast<unsigned long long>(settled),
                 out.cells.size(), run_dir.c_str());
    // A recorded signal gets its conventional code; otherwise the
    // suspension came from --deadline-ms (the `timeout` convention).
    const int sig = support::SignalGuard::exit_code();
    return sig != 0 ? sig : 124;
  }

  const auto machine = core::machine_by_name(spec.machine);
  const auto scheme = scheme_by_name(spec.scheme);
  if (!machine || !scheme || out.rows.empty()) {
    std::fprintf(stderr, "selcache: run %s produced no result\n",
                 out.id.c_str());
    return 2;
  }
  if (spec.kind == "sweep") {
    print_sweep_row(out.rows.front(), machine->name, *scheme);
  } else {
    std::printf("%s", core::format_figure(machine->name + " (" +
                                              hw::to_string(*scheme) + ")",
                                          out.rows)
                          .c_str());
  }
  const int rc = emit_figure_files(out.rows, spec.csv_out, spec.jsonl_out);
  if (rc != 0) return rc;
  std::fprintf(stderr,
               "run %s: %llu cells simulated, %llu from ledger, %llu"
               " quarantined, %llu failed attempts -> %s\n",
               out.id.c_str(),
               static_cast<unsigned long long>(out.cells_done),
               static_cast<unsigned long long>(out.cells_from_store),
               static_cast<unsigned long long>(out.cells_quarantined),
               static_cast<unsigned long long>(out.failed_attempts),
               run_dir.c_str());
  return 0;
}

/// The checkpointed execution path behind `sweep/suite --run-dir`.
/// `w` is null for a suite.
int cmd_checkpointed(const std::string& kind,
                     const workloads::WorkloadInfo* w,
                     const core::MachineConfig& machine,
                     hw::SchemeKind scheme,
                     const std::map<std::string, std::string>& flags) {
  // The run directory owns its ledger, store, and retry policy; features
  // that perturb results (faults, watchdogs) or attach per-run sinks
  // (tracing, an external store) are incompatible by design.
  static const char* kIncompatible[] = {
      "inject-faults", "fault-kind",   "fault-rate",     "fault-seed",
      "fault-budget",  "integrity-checks", "watchdog-accesses",
      "max-retries",   "failures-out", "failures-jsonl", "trace-dir",
      "store",         "store-readonly", "store-clear"};
  for (const char* f : kIncompatible) {
    if (flags.count(f)) {
      std::fprintf(stderr,
                   "selcache: '--run-dir' is incompatible with '--%s'"
                   " (checkpointed runs own their store and ledger)\n",
                   f);
      return 2;
    }
  }

  run::RunSpec spec;
  spec.kind = kind;
  spec.workload = w != nullptr ? w->name : "";
  spec.machine = flags.count("machine") ? flags.at("machine") : "base";
  spec.scheme = flags.count("scheme") ? flags.at("scheme") : "bypass";
  spec.reuse_tape = flags.count("reuse-tape") > 0;
  if (flags.count("csv-out")) spec.csv_out = flags.at("csv-out");
  if (flags.count("jsonl-out")) spec.jsonl_out = flags.at("jsonl-out");
  core::RunOptions base;
  base.scheme = scheme;
  base.reuse_tape = spec.reuse_tape;
  spec.machine_fp = core::machine_fingerprint(machine);
  spec.stream_fp = core::stream_fingerprint(base);

  run::CheckpointOptions copts;
  if (!parse_checkpoint_options(flags, &copts)) return 2;
  support::SignalGuard guard;
  copts.stop = support::SignalGuard::token();
  const run::CheckpointOutcome out =
      run::run_checkpointed(flags.at("run-dir"), spec, copts);
  return finish_checkpoint(flags.at("run-dir"), spec, out);
}

/// `selcache resume RUN_DIR` — pick a checkpointed run back up (or, with
/// --status, just report where it stands).
int cmd_resume(const std::string& run_dir,
               const std::map<std::string, std::string>& flags) {
  const run::RunStatus st = run::inspect_run(run_dir);
  if (!st.error.empty()) {
    std::fprintf(stderr, "selcache: %s\n", st.error.c_str());
    return 2;
  }
  if (flags.count("status")) {
    std::printf("run %s: %s%s%s machine=%s scheme=%s\n", st.id.c_str(),
                st.spec.kind.c_str(),
                st.spec.workload.empty() ? "" : " ",
                st.spec.workload.c_str(), st.spec.machine.c_str(),
                st.spec.scheme.c_str());
    std::size_t done = 0;
    for (const auto& c : st.cells) {
      if (c.status == "done") ++done;
      std::printf("  %-12s %-10s %-12s attempts=%u%s%s\n", c.workload.c_str(),
                  c.version.c_str(), c.status.c_str(), c.attempts,
                  c.reason.empty() ? "" : "  ", c.reason.c_str());
    }
    std::printf("state: %s (%zu/%zu cells done)%s\n",
                st.complete     ? "complete"
                : st.suspended  ? "suspended"
                                : "in progress",
                done, st.cells.size(),
                st.torn_tail ? "  [torn journal tail dropped]" : "");
    return 0;
  }

  run::CheckpointOptions copts;
  if (!parse_checkpoint_options(flags, &copts)) return 2;
  support::SignalGuard guard;
  copts.stop = support::SignalGuard::token();
  const run::CheckpointOutcome out = run::resume_checkpointed(run_dir, copts);
  return finish_checkpoint(run_dir, st.spec, out);
}

int cmd_sweep(const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(flags.count("workload")
                                       ? flags.at("workload")
                                       : "");
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (w == nullptr || !machine || !scheme) return usage();

  if (flags.count("run-dir"))
    return cmd_checkpointed("sweep", w, *machine, *scheme, flags);

  core::RunOptions opt;
  opt.scheme = *scheme;
  opt.reuse_tape = flags.count("reuse-tape") > 0;
  if (!parse_epoch_flag(flags, &opt.trace_epoch)) return 2;
  if (!parse_engine_flags(flags, &opt)) return 2;
  core::ParallelSweepOptions par;
  if (!parse_threads_flag(flags, &par)) return 2;
  core::FaultSweepOptions fopt;
  bool faulted = false;
  if (!parse_sweep_fault_flags(flags, &fopt, &faulted)) return 2;
  bool store_ok = true;
  const auto rstore = open_store_flags(flags, &opt, &store_ok);
  if (!store_ok) return 2;
  std::vector<core::TraceCapture> traces;
  const bool tracing = flags.count("trace-dir") > 0;
  core::ImprovementRow row;
  int rc = 0;
  if (faulted) {
    const core::ResilientSweep rs = core::improvements_for_resilient(
        *w, *machine, opt, par, fopt, tracing ? &traces : nullptr);
    row = rs.rows.front();
    print_sweep_row(row, machine->name, *scheme);
    // Flush ordering is deterministic: traces first, then the failure
    // ledger — a ledger row must never exist without the trace data it
    // points at. Both are attempted even if the first fails; the first
    // error wins.
    if (tracing) rc = write_trace_dir(traces, flags.at("trace-dir"));
    const int frc = emit_failure_report(rs.report, flags);
    if (rc == 0) rc = frc;
  } else {
    row = core::improvements_for(*w, *machine, opt, par,
                                 tracing ? &traces : nullptr);
    print_sweep_row(row, machine->name, *scheme);
    if (tracing) rc = write_trace_dir(traces, flags.at("trace-dir"));
  }
  finish_store(rstore.get(), opt);
  const int erc = emit_figure_files(
      {row}, flags.count("csv-out") ? flags.at("csv-out") : "",
      flags.count("jsonl-out") ? flags.at("jsonl-out") : "");
  return rc != 0 ? rc : erc;
}

/// Run every requested (workload, version) product through the optimizer
/// with after-each-stage verification plus final structural / marker /
/// legality certification. Diagnostics accumulate into `master` with the
/// product name prefixed onto each location. Returns the product count.
std::size_t verify_matrix(const std::vector<const workloads::WorkloadInfo*>& ws,
                          const std::vector<core::Version>& vs,
                          verify::Report& master) {
  std::size_t products = 0;
  for (const auto* w : ws) {
    for (core::Version v : vs) {
      transform::TransformLog log;
      verify::Report report;
      transform::OptimizeOptions opt;
      verify::enable_pipeline_verification(opt, log, report);
      const ir::Program product = core::prepare_program(w->build(), v, opt);
      verify::verify_program(product, &log, report);
      ++products;
      for (const auto& d : report.diagnostics()) {
        master.set_pass(d.pass);
        master.add(d.severity, d.rule,
                   w->name + "/" + core::version_key(v) +
                       (d.location.empty() ? "" : "/" + d.location),
                   d.message);
      }
    }
  }
  return products;
}

int cmd_suite(const std::map<std::string, std::string>& flags) {
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !scheme) return usage();
  core::RunOptions opt;
  opt.scheme = *scheme;
  opt.reuse_tape = flags.count("reuse-tape") > 0;
  core::ParallelSweepOptions par;
  if (!parse_threads_flag(flags, &par)) return 2;
  if (!parse_epoch_flag(flags, &opt.trace_epoch)) return 2;
  if (!parse_engine_flags(flags, &opt)) return 2;
  if (flags.count("verify-pipeline")) {
    std::vector<const workloads::WorkloadInfo*> ws;
    for (const auto& w : workloads::all_workloads()) ws.push_back(&w);
    const std::vector<core::Version> vs(core::kAllVersions.begin(),
                                        core::kAllVersions.end());
    verify::Report master;
    const std::size_t products = verify_matrix(ws, vs, master);
    if (!master.empty()) {
      std::fprintf(stderr, "pipeline verification failed (%zu products):\n%s",
                   products, master.str().c_str());
      return 1;
    }
    std::printf("pipeline verification: %zu products clean\n", products);
  }
  if (flags.count("run-dir"))
    return cmd_checkpointed("suite", nullptr, *machine, *scheme, flags);
  core::FaultSweepOptions fopt;
  bool faulted = false;
  if (!parse_sweep_fault_flags(flags, &fopt, &faulted)) return 2;
  bool store_ok = true;
  const auto rstore = open_store_flags(flags, &opt, &store_ok);
  if (!store_ok) return 2;
  std::vector<core::TraceCapture> traces;
  const bool tracing = flags.count("trace-dir") > 0;
  std::vector<core::ImprovementRow> rows;
  int rc = 0;
  if (faulted) {
    core::ResilientSweep rs = core::sweep_suite_resilient(
        *machine, opt, par, fopt, tracing ? &traces : nullptr);
    rows = std::move(rs.rows);
    std::printf("%s", core::format_figure(
                          machine->name + " (" + hw::to_string(*scheme) + ")",
                          rows)
                          .c_str());
    // Same deterministic flush ordering as cmd_sweep: trace data lands
    // before the failure ledger that references it, and both writes are
    // attempted even when the first fails.
    if (tracing) rc = write_trace_dir(traces, flags.at("trace-dir"));
    const int frc = emit_failure_report(rs.report, flags);
    if (rc == 0) rc = frc;
  } else {
    rows = core::sweep_suite(*machine, opt, par, tracing ? &traces : nullptr);
    std::printf("%s", core::format_figure(
                          machine->name + " (" + hw::to_string(*scheme) + ")",
                          rows)
                          .c_str());
    if (tracing) rc = write_trace_dir(traces, flags.at("trace-dir"));
  }
  finish_store(rstore.get(), opt);
  const int erc = emit_figure_files(
      rows, flags.count("csv-out") ? flags.at("csv-out") : "",
      flags.count("jsonl-out") ? flags.at("jsonl-out") : "");
  return rc != 0 ? rc : erc;
}

int cmd_show(const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(flags.count("workload")
                                       ? flags.at("workload")
                                       : "");
  if (w == nullptr) return usage();
  ir::Program p = w->build();
  if (flags.count("optimized") || flags.count("marked")) {
    transform::OptimizeOptions opt;
    opt.insert_markers = flags.count("marked") > 0;
    transform::optimize_program(p, opt);
  }
  std::printf("%s", ir::print(p).c_str());
  return 0;
}

/// `selcache verify` — static certification without simulating anything.
/// With FILE.loop: parse and verify that program (as-is, or one pipeline
/// product when --version is given). Without: sweep the workload matrix,
/// optionally narrowed by --workload / --version. Exit 1 on diagnostics.
int cmd_verify(const std::string& file,
               const std::map<std::string, std::string>& flags) {
  verify::Report master;
  std::size_t products = 0;

  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "selcache: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string src = text.str();
    std::optional<ir::Program> parsed;
    try {
      parsed.emplace(ir::parse_program(src));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "selcache: cannot parse %s: %s\n", file.c_str(),
                   e.what());
      return 2;
    }
    if (flags.count("version")) {
      const auto version = version_by_name(flags.at("version"));
      if (!version) return usage();
      const workloads::WorkloadInfo info{
          parsed->name(), file, workloads::Category::Mixed,
          [src] { return ir::parse_program(src); }, 0, 0, 0};
      products = verify_matrix({&info}, {*version}, master);
    } else {
      verify::verify_program(*parsed, nullptr, master);
      products = 1;
    }
  } else {
    std::vector<const workloads::WorkloadInfo*> ws;
    if (flags.count("workload")) {
      const auto* w = workload_by_name(flags.at("workload"));
      if (w == nullptr) {
        std::fprintf(stderr, "selcache: unknown workload '%s'\n",
                     flags.at("workload").c_str());
        return 2;
      }
      ws.push_back(w);
    } else {
      for (const auto& w : workloads::all_workloads()) ws.push_back(&w);
    }
    std::vector<core::Version> vs;
    if (flags.count("version")) {
      const auto version = version_by_name(flags.at("version"));
      if (!version) return usage();
      vs.push_back(*version);
    } else {
      vs.assign(core::kAllVersions.begin(), core::kAllVersions.end());
    }
    products = verify_matrix(ws, vs, master);
  }

  if (flags.count("csv")) {
    std::printf("%s", master.csv().c_str());
  } else if (master.empty()) {
    std::printf("verified %zu program product%s: no diagnostics\n", products,
                products == 1 ? "" : "s");
  } else {
    std::printf("verified %zu program product%s: %zu error%s, %zu warning%s\n%s",
                products, products == 1 ? "" : "s", master.errors(),
                master.errors() == 1 ? "" : "s", master.warnings(),
                master.warnings() == 1 ? "" : "s", master.str().c_str());
  }
  return master.empty() ? 0 : 1;
}

}  // namespace

int cmd_run_file(const std::string& path,
                 const std::map<std::string, std::string>& flags) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "selcache: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::optional<ir::Program> parsed;
  try {
    parsed.emplace(ir::parse_program(text.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selcache: cannot parse %s: %s\n", path.c_str(),
                 e.what());
    return 2;
  }
  const std::string name = parsed->name();

  // Wrap the parsed program in a workload whose builder re-parses the text
  // (the runner clones per version).
  const std::string src = text.str();
  workloads::WorkloadInfo info{name, path, workloads::Category::Mixed,
                               [src] { return ir::parse_program(src); },
                               0, 0, 0};
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto version =
      version_by_name(flags.count("version") ? flags.at("version") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !version || !scheme) return usage();
  core::RunOptions opt;
  opt.scheme = *scheme;
  const core::RunResult r = core::run_version(info, *machine, *version, opt);
  std::printf("%s (%s) / %s / %s\n", name.c_str(), path.c_str(),
              to_string(*version), hw::to_string(*scheme));
  std::printf("  cycles        %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("  instructions  %llu\n",
              static_cast<unsigned long long>(r.instructions));
  std::printf("  L1 miss       %.2f%%   L2 miss %.2f%%   toggles %llu\n",
              100.0 * r.l1_miss_rate, 100.0 * r.l2_miss_rate,
              static_cast<unsigned long long>(r.toggles));
  return 0;
}

int cmd_trace_record(const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(flags.count("workload")
                                       ? flags.at("workload")
                                       : "");
  const auto version =
      version_by_name(flags.count("version") ? flags.at("version") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (w == nullptr || !version || !scheme || !flags.count("out"))
    return usage();

  const core::MachineConfig m = core::base_machine();
  ir::Program product =
      core::prepare_program(w->build(), *version, transform::OptimizeOptions{});
  memsys::Hierarchy hierarchy(m.hierarchy);
  auto hw_scheme = core::make_scheme(*scheme, m);
  hierarchy.attach_hw(hw_scheme.get());
  hw::Controller controller(hw_scheme.get());
  controller.force(core::hw_always_on(*version));
  cpu::TimingModel cpu(m.cpu, hierarchy, controller);
  codegen::Trace trace;
  cpu.set_trace_sink(&trace);
  codegen::DataEnv env(product);
  codegen::TraceEngine engine(product, env, cpu);
  engine.run();
  if (!codegen::save_trace(trace, flags.at("out"))) {
    std::fprintf(stderr, "cannot write %s\n", flags.at("out").c_str());
    return 2;
  }
  std::printf("recorded %zu events (%llu instructions, %llu cycles) -> %s\n",
              trace.size(),
              static_cast<unsigned long long>(cpu.instructions()),
              static_cast<unsigned long long>(cpu.cycles()),
              flags.at("out").c_str());
  return 0;
}

int cmd_trace_replay(const std::string& path,
                     const std::map<std::string, std::string>& flags) {
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !scheme) return usage();
  codegen::Trace trace;
  try {
    trace = codegen::load_trace(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selcache: cannot load trace %s: %s\n", path.c_str(),
                 e.what());
    return 2;
  }
  memsys::Hierarchy hierarchy(machine->hierarchy);
  auto hw_scheme = core::make_scheme(*scheme, *machine);
  hierarchy.attach_hw(hw_scheme.get());
  hw::Controller controller(hw_scheme.get());
  cpu::TimingModel cpu(machine->cpu, hierarchy, controller);
  codegen::replay_trace(trace, cpu);
  std::printf("%s on %s: %llu cycles, %llu instructions, L1 miss %.2f%%, "
              "L2 miss %.2f%%\n",
              path.c_str(), machine->name.c_str(),
              static_cast<unsigned long long>(cpu.cycles()),
              static_cast<unsigned long long>(cpu.instructions()),
              100.0 * hierarchy.l1_miss_rate(),
              100.0 * hierarchy.l2_miss_rate());
  return 0;
}


/// Shared setup for the predict commands: locality options from a machine's
/// cache geometry.
locality::LocalityOptions locality_options(const core::MachineConfig& m) {
  locality::LocalityOptions lopt;
  lopt.l1 = m.hierarchy.l1d;
  lopt.l2 = m.hierarchy.l2;
  return lopt;
}

int cmd_predict(const std::string& wname, const std::string& vname,
                const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(wname);
  const auto version = version_by_name(vname);
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  if (w == nullptr || !version || !machine) return usage();

  transform::OptimizeOptions oopt;
  if (flags.count("threshold") &&
      !parse_double(flags.at("threshold"), &oopt.threshold)) {
    std::fprintf(stderr,
                 "selcache: flag '--threshold' expects a number, got '%s'\n",
                 flags.at("threshold").c_str());
    return 2;
  }
  locality::LocalityOptions lopt = locality_options(*machine);
  if (flags.count("capacity-fraction")) {
    if (!parse_double(flags.at("capacity-fraction"),
                      &lopt.capacity_fraction) ||
        lopt.capacity_fraction <= 0.0) {
      std::fprintf(stderr,
                   "selcache: flag '--capacity-fraction' expects a positive"
                   " number, got '%s'\n",
                   flags.at("capacity-fraction").c_str());
      return 2;
    }
  }
  if (flags.count("predict-classify")) {
    locality::PredictorOptions popt;
    popt.locality = lopt;
    popt.dynamic_threshold = oopt.threshold;
    oopt.method_predictor = locality::make_method_predictor(popt);
    oopt.method_predictor_fingerprint =
        locality::method_predictor_fingerprint(popt);
  }

  const ir::Program product = core::prepare_program(w->build(), *version, oopt);
  const locality::ProgramPrediction pred = locality::predict(product, lopt);

  if (!flags.count("check")) {
    // Static-only: no simulation happens on this path.
    std::fputs(flags.count("csv") ? locality::prediction_csv(pred).c_str()
                                  : locality::prediction_str(pred).c_str(),
               stdout);
    return 0;
  }

  locality::MeasureOptions mopt;
  mopt.hierarchy = machine->hierarchy;
  mopt.cpu = machine->cpu;
  const locality::MeasuredProfile meas =
      locality::measure_program(product, mopt);
  verify::Report report;
  locality::crosscheck(product, pred, meas, report);
  if (flags.count("csv")) {
    std::fputs(locality::comparison_csv(pred, meas).c_str(), stdout);
  } else {
    std::fputs(locality::prediction_str(pred).c_str(), stdout);
    std::fputs(locality::comparison_str(pred, meas).c_str(), stdout);
  }
  if (!report.empty()) std::fputs(report.str().c_str(), stdout);
  std::printf("SP cross-check: %zu error(s), %zu warning(s)\n",
              report.errors(), report.warnings());
  return report.ok() ? 0 : 1;
}

int cmd_predict_matrix(const std::map<std::string, std::string>& flags) {
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  if (!machine) return usage();
  std::vector<const workloads::WorkloadInfo*> ws;
  if (flags.count("workload")) {
    const auto* w = workload_by_name(flags.at("workload"));
    if (w == nullptr) return usage();
    ws.push_back(w);
  } else {
    for (const auto& w : workloads::all_workloads()) ws.push_back(&w);
  }
  const locality::LocalityOptions lopt = locality_options(*machine);
  locality::MeasureOptions mopt;
  mopt.hierarchy = machine->hierarchy;
  mopt.cpu = machine->cpu;

  struct Cell {
    core::Version version;
    bool analyzable = false;
    double pred_ratio = 0.0;
    double meas_ratio = 0.0;
  };
  const bool csv = flags.count("csv") > 0;
  TextTable table({"workload", "version", "verdict", "analyzable_frac",
                   "pred_l1_ratio", "meas_l1_ratio", "abs_err", "sp"});
  if (csv)
    std::printf(
        "workload,version,category,verdict,analyzable_frac,pred_l1_ratio,"
        "meas_l1_ratio,abs_err,sp_diags\n");
  std::size_t sp_total = 0, analyzable_cells = 0, cells = 0;
  double abs_err_sum = 0.0;
  std::string mismatches;
  for (const auto* w : ws) {
    std::vector<Cell> row_cells;
    for (core::Version v : core::kAllVersions) {
      const ir::Program product =
          core::prepare_program(w->build(), v, transform::OptimizeOptions{});
      const locality::ProgramPrediction pred =
          locality::predict(product, lopt);
      const locality::MeasuredProfile meas =
          locality::measure_program(product, mopt);
      verify::Report report;
      locality::crosscheck(product, pred, meas, report);
      sp_total += report.diagnostics().size();
      ++cells;

      Cell c{v};
      c.meas_ratio = meas.l1d_miss_ratio();
      const auto ratio = pred.l1_miss_ratio();
      c.analyzable =
          pred.verdict(lopt.coverage_floor) == locality::Verdict::Analyzable &&
          pred.total_accesses_exact && ratio.has_value();
      if (c.analyzable) {
        c.pred_ratio = *ratio;
        abs_err_sum += std::abs(c.pred_ratio - c.meas_ratio);
        ++analyzable_cells;
      }
      row_cells.push_back(c);

      const std::string verdict =
          c.analyzable ? "analyzable" : "non-analyzable";
      if (csv) {
        std::printf("%s,%s,%s,%s,%.6f,%s,%.6f,%s,%zu\n", w->name.c_str(),
                    core::version_key(v), to_string(w->category),
                    verdict.c_str(), pred.analyzable_fraction(),
                    c.analyzable ? TextTable::num(c.pred_ratio, 6).c_str()
                                 : "-",
                    c.meas_ratio,
                    c.analyzable
                        ? TextTable::num(
                              std::abs(c.pred_ratio - c.meas_ratio), 6)
                              .c_str()
                        : "-",
                    report.diagnostics().size());
      } else {
        table.add_row(
            {w->name, core::version_key(v), verdict,
             TextTable::num(pred.analyzable_fraction(), 3),
             c.analyzable ? TextTable::num(c.pred_ratio, 4) : "-",
             TextTable::num(c.meas_ratio, 4),
             c.analyzable
                 ? TextTable::num(std::abs(c.pred_ratio - c.meas_ratio), 4)
                 : "-",
             std::to_string(report.diagnostics().size())});
      }
    }
    // Ranking concordance: for every version pair whose *measured* ratios
    // differ meaningfully, the prediction must order them the same way.
    for (std::size_t a = 0; a < row_cells.size(); ++a)
      for (std::size_t b = a + 1; b < row_cells.size(); ++b) {
        const Cell& ca = row_cells[a];
        const Cell& cb = row_cells[b];
        if (!ca.analyzable || !cb.analyzable) continue;
        const double md = ca.meas_ratio - cb.meas_ratio;
        if (std::abs(md) < 1e-4) continue;
        const double pd = ca.pred_ratio - cb.pred_ratio;
        if ((md > 0) != (pd > 0))
          mismatches += "  " + w->name + ": " +
                        core::version_key(ca.version) + " vs " +
                        core::version_key(cb.version) + "\n";
      }
  }
  if (!csv) std::fputs(table.str().c_str(), stdout);
  std::printf("cells: %zu  analyzable: %zu  sp_diagnostics: %zu\n", cells,
              analyzable_cells, sp_total);
  if (analyzable_cells > 0)
    std::printf("MAE(L1D miss ratio) over analyzable cells: %.4f\n",
                abs_err_sum / static_cast<double>(analyzable_cells));
  if (mismatches.empty())
    std::printf("version ranking: concordant with simulation\n");
  else
    std::printf("version ranking MISMATCHES:\n%s", mismatches.c_str());
  return sp_total == 0 && mismatches.empty() ? 0 : 1;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  static const std::map<std::string, CommandSpec> kSpecs = {
      {"list", {"list", {}, {}}},
      {"run",
       {"run", {"workload", "machine", "version", "scheme", "threshold"},
        {"stats"}}},
      {"sweep",
       {"sweep",
        {"workload", "machine", "scheme", "threads", "trace-dir", "epoch",
         "batch", "fault-kind", "fault-rate", "fault-seed", "fault-budget",
         "watchdog-accesses", "max-retries", "failures-out", "failures-jsonl",
         "store", "run-dir", "deadline-ms", "cell-deadline-ms",
         "cell-retries", "retry-backoff-ms", "csv-out", "jsonl-out"},
        {"inject-faults", "integrity-checks", "reuse-tape", "no-simd",
         "store-readonly", "store-clear"}}},
      {"suite",
       {"suite",
        {"machine", "scheme", "threads", "trace-dir", "epoch", "batch",
         "fault-kind", "fault-rate", "fault-seed", "fault-budget",
         "watchdog-accesses", "max-retries", "failures-out", "failures-jsonl",
         "store", "run-dir", "deadline-ms", "cell-deadline-ms",
         "cell-retries", "retry-backoff-ms", "csv-out", "jsonl-out"},
        {"verify-pipeline", "inject-faults", "integrity-checks", "reuse-tape",
         "no-simd", "store-readonly", "store-clear"}}},
      {"store", {"store", {"store", "max-bytes"}, {}}},
      {"resume",
       {"resume",
        {"threads", "deadline-ms", "cell-deadline-ms", "cell-retries",
         "retry-backoff-ms"},
        {"status"}}},
      {"faultsim",
       {"faultsim",
        {"machine", "scheme", "fault-kind", "fault-rate", "fault-seed",
         "fault-budget", "watchdog-accesses", "rates"},
        {"integrity-checks", "stats"}}},
      {"show", {"show", {"workload"}, {"optimized", "marked"}}},
      {"run-file", {"run-file", {"machine", "version", "scheme"}, {}}},
      {"trace",
       {"trace",
        {"machine", "scheme", "epoch", "events-out", "metrics-out",
         "csv-out"},
        {}}},
      {"trace-record",
       {"trace-record", {"workload", "out", "version", "scheme"}, {}}},
      {"trace-replay", {"trace-replay", {"machine", "scheme"}, {}}},
      {"tape", {"tape", {"machine", "scheme", "out"}, {"stat"}}},
      {"verify", {"verify", {"workload", "version"}, {"csv"}}},
      {"predict",
       {"predict", {"machine", "threshold", "capacity-fraction"},
        {"csv", "check", "predict-classify"}}},
      {"predict-matrix",
       {"predict-matrix", {"machine", "workload"}, {"csv"}}},
  };
  const auto spec_it = kSpecs.find(cmd);
  if (spec_it == kSpecs.end()) {
    std::fprintf(stderr,
                 "selcache: unknown command '%s' (run 'selcache' with no"
                 " arguments for usage)\n",
                 cmd.c_str());
    return 2;
  }
  const CommandSpec& spec = spec_it->second;

  // trace-replay / run-file take a required positional; verify an optional
  // one; trace takes two (WORKLOAD VERSION). Flags start after any
  // positionals.
  std::string positional, positional2;
  int flag_start = 2;
  const bool requires_file = cmd == "trace-replay" || cmd == "run-file";
  const bool accepts_file = requires_file || cmd == "verify";
  if (accepts_file && argc > 2 &&
      std::string(argv[2]).rfind("--", 0) != 0) {
    positional = argv[2];
    flag_start = 3;
  }
  if (requires_file && positional.empty()) {
    std::fprintf(stderr, "selcache: '%s' expects a FILE argument\n",
                 cmd.c_str());
    return 2;
  }
  if (cmd == "store") {
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "selcache: 'store' expects an ACTION (stats ls gc)\n");
      return 2;
    }
    positional = argv[2];
    flag_start = 3;
  }
  if (cmd == "resume") {
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "selcache: 'resume' expects a RUN_DIR argument\n");
      return 2;
    }
    positional = argv[2];
    flag_start = 3;
  }
  if (cmd == "trace" || cmd == "faultsim" || cmd == "tape" ||
      cmd == "predict") {
    if (argc < 4 || std::string(argv[2]).rfind("--", 0) == 0 ||
        std::string(argv[3]).rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "selcache: '%s' expects WORKLOAD and VERSION"
                   " arguments\n",
                   cmd.c_str());
      return 2;
    }
    positional = argv[2];
    positional2 = argv[3];
    flag_start = 4;
  }

  bool ok = true;
  const auto flags = parse_flags(argc, argv, flag_start, spec, &ok);
  if (!ok) return 2;

  if (cmd == "list") return cmd_list();
  if (cmd == "run") return cmd_run(flags);
  if (cmd == "sweep") return cmd_sweep(flags);
  if (cmd == "suite") return cmd_suite(flags);
  if (cmd == "show") return cmd_show(flags);
  if (cmd == "run-file") return cmd_run_file(positional, flags);
  if (cmd == "trace") return cmd_trace(positional, positional2, flags);
  if (cmd == "faultsim") return cmd_faultsim(positional, positional2, flags);
  if (cmd == "trace-record") return cmd_trace_record(flags);
  if (cmd == "trace-replay") return cmd_trace_replay(positional, flags);
  if (cmd == "tape") return cmd_tape(positional, positional2, flags);
  if (cmd == "store") return cmd_store(positional, flags);
  if (cmd == "resume") return cmd_resume(positional, flags);
  if (cmd == "predict") return cmd_predict(positional, positional2, flags);
  if (cmd == "predict-matrix") return cmd_predict_matrix(flags);
  return cmd_verify(positional, flags);
}
