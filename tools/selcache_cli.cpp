// selcache — command-line driver for the simulator.
//
//   selcache list                               # workloads & machines
//   selcache run --workload Swim [--machine base] [--version selective]
//                [--scheme bypass] [--threshold 0.5] [--stats]
//   selcache sweep --workload Swim [--machine base] [--scheme bypass]
//   selcache suite [--machine base] [--scheme bypass] [--threads N]
//   selcache show --workload Swim [--optimized] [--marked]
//   selcache run-file PROGRAM.loop [--machine M] [--version V] [--scheme S]
//   selcache trace WORKLOAD VERSION [--machine M] [--scheme S] [--epoch N]
//                [--events-out FILE] [--metrics-out FILE] [--csv-out FILE]
//   selcache trace-record --workload NAME --out FILE [--version V]
//   selcache trace-replay FILE [--machine M] [--scheme S]
//   selcache verify [FILE.loop] [--workload NAME] [--version V] [--csv]
//
// Exit code 0 on success, 1 when verification reports diagnostics, 2 on
// usage errors. Unknown subcommands and malformed flags get a one-line
// diagnostic on stderr.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/marker_elimination.h"
#include <fstream>

#include "codegen/trace_engine.h"
#include "codegen/trace_io.h"
#include "core/report.h"
#include "core/runner.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "trace/jsonl.h"
#include "trace/timeline.h"
#include "transform/pipeline.h"
#include "verify/verifier.h"

using namespace selcache;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  selcache list\n"
               "  selcache run   --workload NAME [--machine M] [--version V]"
               " [--scheme S] [--threshold T] [--stats]\n"
               "  selcache sweep --workload NAME [--machine M] [--scheme S]"
               " [--threads N]\n"
               "                 [--trace-dir DIR] [--epoch N]\n"
               "  selcache suite [--machine M] [--scheme S] [--threads N]"
               " [--verify-pipeline] [--trace-dir DIR] [--epoch N]\n"
               "  selcache show  --workload NAME [--optimized] [--marked]\n"
               "  selcache run-file FILE.loop [--machine M] [--version V]"
               " [--scheme S]\n"
               "  selcache trace WORKLOAD VERSION [--machine M] [--scheme S]"
               " [--epoch N]\n"
               "                 [--events-out F] [--metrics-out F]"
               " [--csv-out F]\n"
               "  selcache trace-record --workload NAME --out FILE"
               " [--version V] [--scheme S]\n"
               "  selcache trace-replay FILE [--machine M] [--scheme S]\n"
               "  selcache verify [FILE.loop] [--workload NAME] [--version V]"
               " [--csv]\n"
               "machines: base memlat l2size l1size l2assoc l1assoc\n"
               "versions: base purehw puresw combined selective\n"
               "schemes:  bypass victim none\n");
  return 2;
}

/// Per-command flag allowlist: anything else is a malformed invocation and
/// gets a one-line diagnostic instead of the full usage dump.
struct CommandSpec {
  const char* name;
  std::set<std::string> value_flags;
  std::set<std::string> bool_flags;
};

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start,
                                               const CommandSpec& spec,
                                               bool* ok) {
  std::map<std::string, std::string> flags;
  *ok = true;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "selcache: unexpected argument '%s' for '%s'\n",
                   arg.c_str(), spec.name);
      *ok = false;
      return flags;
    }
    const std::string a = arg.substr(2);
    if (spec.bool_flags.count(a)) {
      flags[a] = "1";
    } else if (spec.value_flags.count(a)) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "selcache: flag '--%s' expects a value\n",
                     a.c_str());
        *ok = false;
        return flags;
      }
      flags[a] = argv[++i];
    } else {
      std::fprintf(stderr, "selcache: unknown flag '--%s' for '%s'\n",
                   a.c_str(), spec.name);
      *ok = false;
      return flags;
    }
  }
  return flags;
}

std::optional<core::MachineConfig> machine_by_name(const std::string& n) {
  if (n.empty() || n == "base") return core::base_machine();
  if (n == "memlat") return core::higher_mem_latency();
  if (n == "l2size") return core::larger_l2();
  if (n == "l1size") return core::larger_l1();
  if (n == "l2assoc") return core::higher_l2_assoc();
  if (n == "l1assoc") return core::higher_l1_assoc();
  return std::nullopt;
}

std::optional<core::Version> version_by_name(const std::string& n) {
  if (n.empty() || n == "base") return core::Version::Base;
  if (n == "purehw") return core::Version::PureHardware;
  if (n == "puresw") return core::Version::PureSoftware;
  if (n == "combined") return core::Version::Combined;
  if (n == "selective") return core::Version::Selective;
  return std::nullopt;
}

std::optional<hw::SchemeKind> scheme_by_name(const std::string& n) {
  if (n.empty() || n == "bypass") return hw::SchemeKind::Bypass;
  if (n == "victim") return hw::SchemeKind::Victim;
  if (n == "none") return hw::SchemeKind::None;
  return std::nullopt;
}

const workloads::WorkloadInfo* workload_by_name(const std::string& n) {
  for (const auto& w : workloads::all_workloads())
    if (w.name == n) return &w;
  return nullptr;
}

int cmd_list() {
  std::printf("workloads (13, Table 2 order):\n");
  for (const auto& w : workloads::all_workloads())
    std::printf("  %-10s %-9s (paper: %.1fM instr, L1 %.2f%%, L2 %.2f%%)\n",
                w.name.c_str(), to_string(w.category),
                w.paper_instructions_m, w.paper_l1_miss, w.paper_l2_miss);
  std::printf("machines: base memlat l2size l1size l2assoc l1assoc\n");
  std::printf("versions: base purehw puresw combined selective\n");
  std::printf("schemes:  bypass victim none\n");
  return 0;
}

int cmd_run(const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(flags.count("workload")
                                       ? flags.at("workload")
                                       : "");
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto version =
      version_by_name(flags.count("version") ? flags.at("version") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (w == nullptr || !machine || !version || !scheme) return usage();

  core::RunOptions opt;
  opt.scheme = *scheme;
  if (flags.count("threshold"))
    opt.optimize.threshold = std::stod(flags.at("threshold"));

  const core::RunResult r = core::run_version(*w, *machine, *version, opt);
  std::printf("%s / %s / %s / %s\n", w->name.c_str(),
              machine->name.c_str(), to_string(*version),
              hw::to_string(*scheme));
  std::printf("  cycles        %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("  instructions  %llu\n",
              static_cast<unsigned long long>(r.instructions));
  std::printf("  L1 miss       %.2f%%\n", 100.0 * r.l1_miss_rate);
  std::printf("  L2 miss       %.2f%%\n", 100.0 * r.l2_miss_rate);
  std::printf("  toggles       %llu\n",
              static_cast<unsigned long long>(r.toggles));
  if (flags.count("stats"))
    for (const auto& [k, v] : r.stats.all())
      std::printf("  %-32s %llu\n", k.c_str(),
                  static_cast<unsigned long long>(v));
  return 0;
}

/// Parse --epoch into `out` (positive integer). Returns false (after a
/// diagnostic) on a malformed value; leaves `out` untouched when absent.
bool parse_epoch_flag(const std::map<std::string, std::string>& flags,
                      std::uint64_t* out) {
  if (!flags.count("epoch")) return true;
  const std::string& e = flags.at("epoch");
  if (e.empty() || e.find_first_not_of("0123456789") != std::string::npos ||
      std::stoull(e) == 0) {
    std::fprintf(stderr,
                 "selcache: flag '--epoch' expects a positive integer, "
                 "got '%s'\n",
                 e.c_str());
    return false;
  }
  *out = std::stoull(e);
  return true;
}

/// `selcache trace WORKLOAD VERSION` — run one traced simulation and render
/// its phase timeline; optionally serialize events/metrics/CSV to files.
int cmd_trace(const std::string& wname, const std::string& vname,
              const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(wname);
  if (w == nullptr) {
    std::fprintf(stderr, "selcache: unknown workload '%s'\n", wname.c_str());
    return 2;
  }
  const auto version = version_by_name(vname);
  if (!version) {
    std::fprintf(stderr, "selcache: unknown version '%s'\n", vname.c_str());
    return 2;
  }
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !scheme) return usage();

  core::RunOptions opt;
  opt.scheme = *scheme;
  if (!parse_epoch_flag(flags, &opt.trace_epoch)) return 2;

  trace::Recording recording;
  const core::RunResult r =
      core::run_version(*w, *machine, *version, opt, &recording);

  const trace::SimTag tag{w->name, core::version_key(*version)};
  if (flags.count("events-out") &&
      !core::write_text_file(flags.at("events-out"),
                             trace::events_jsonl(recording, tag))) {
    std::fprintf(stderr, "selcache: cannot write %s\n",
                 flags.at("events-out").c_str());
    return 2;
  }
  if (flags.count("metrics-out") &&
      !core::write_text_file(flags.at("metrics-out"),
                             trace::metrics_jsonl(recording, tag))) {
    std::fprintf(stderr, "selcache: cannot write %s\n",
                 flags.at("metrics-out").c_str());
    return 2;
  }
  const auto rows = trace::build_timeline(recording);
  if (flags.count("csv-out") &&
      !core::write_text_file(flags.at("csv-out"),
                             trace::timeline_csv_header() +
                                 trace::timeline_csv(rows, tag.workload,
                                                     tag.version))) {
    std::fprintf(stderr, "selcache: cannot write %s\n",
                 flags.at("csv-out").c_str());
    return 2;
  }

  std::printf("%s", trace::timeline_table(w->name + " / " + tag.version +
                                              " (" + machine->name + ", " +
                                              hw::to_string(*scheme) + ")",
                                          rows)
                        .c_str());
  std::printf("%zu epochs (length %llu), %zu events, %llu cycles\n",
              recording.epochs.size(),
              static_cast<unsigned long long>(opt.trace_epoch),
              recording.events.size(),
              static_cast<unsigned long long>(r.cycles));
  return 0;
}

/// Serialize a batch of trace captures into DIR/{events.jsonl,
/// metrics.jsonl, timeline.csv}. Captures must already be in fixed
/// (workload, version) order — concatenation preserves it, which keeps the
/// files bit-identical across thread counts.
int write_trace_dir(const std::vector<core::TraceCapture>& traces,
                    const std::string& dir_flag) {
  const std::filesystem::path dir = dir_flag;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "selcache: cannot create directory %s: %s\n",
                 dir.string().c_str(), ec.message().c_str());
    return 2;
  }
  std::string events, metrics, csv = trace::timeline_csv_header();
  for (const auto& c : traces) {
    const trace::SimTag tag{c.workload, core::version_key(c.version)};
    events += trace::events_jsonl(c.recording, tag);
    metrics += trace::metrics_jsonl(c.recording, tag);
    csv += trace::timeline_csv(trace::build_timeline(c.recording),
                               tag.workload, tag.version);
  }
  const auto emit = [&dir](const char* file, const std::string& content) {
    const std::string path = (dir / file).string();
    if (core::write_text_file(path, content)) return true;
    std::fprintf(stderr, "selcache: cannot write %s\n", path.c_str());
    return false;
  };
  if (!emit("events.jsonl", events) || !emit("metrics.jsonl", metrics) ||
      !emit("timeline.csv", csv))
    return 2;
  std::printf("phase traces: %zu recordings -> %s\n", traces.size(),
              dir.string().c_str());
  return 0;
}

/// Parse --threads into `par` (non-negative integer). Returns false after a
/// diagnostic on a malformed value.
bool parse_threads_flag(const std::map<std::string, std::string>& flags,
                        core::ParallelSweepOptions* par) {
  if (!flags.count("threads")) return true;
  const std::string& t = flags.at("threads");
  if (t.empty() || t.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr,
                 "selcache: flag '--threads' expects a non-negative "
                 "integer, got '%s'\n",
                 t.c_str());
    return false;
  }
  par->num_threads = static_cast<unsigned>(std::stoul(t));
  return true;
}

int cmd_sweep(const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(flags.count("workload")
                                       ? flags.at("workload")
                                       : "");
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (w == nullptr || !machine || !scheme) return usage();

  core::RunOptions opt;
  opt.scheme = *scheme;
  if (!parse_epoch_flag(flags, &opt.trace_epoch)) return 2;
  core::ParallelSweepOptions par;
  if (!parse_threads_flag(flags, &par)) return 2;
  std::vector<core::TraceCapture> traces;
  const bool tracing = flags.count("trace-dir") > 0;
  const core::ImprovementRow row = core::improvements_for(
      *w, *machine, opt, par, tracing ? &traces : nullptr);
  std::printf("%s on %s (%s scheme): base %llu cycles\n", w->name.c_str(),
              machine->name.c_str(), hw::to_string(*scheme),
              static_cast<unsigned long long>(row.base_cycles));
  for (core::Version v : core::kEvaluatedVersions)
    std::printf("  %-14s %+7.2f%%\n", to_string(v), row.pct.at(v));
  if (tracing) return write_trace_dir(traces, flags.at("trace-dir"));
  return 0;
}

/// Run every requested (workload, version) product through the optimizer
/// with after-each-stage verification plus final structural / marker /
/// legality certification. Diagnostics accumulate into `master` with the
/// product name prefixed onto each location. Returns the product count.
std::size_t verify_matrix(const std::vector<const workloads::WorkloadInfo*>& ws,
                          const std::vector<core::Version>& vs,
                          verify::Report& master) {
  std::size_t products = 0;
  for (const auto* w : ws) {
    for (core::Version v : vs) {
      transform::TransformLog log;
      verify::Report report;
      transform::OptimizeOptions opt;
      verify::enable_pipeline_verification(opt, log, report);
      const ir::Program product = core::prepare_program(w->build(), v, opt);
      verify::verify_program(product, &log, report);
      ++products;
      for (const auto& d : report.diagnostics()) {
        master.set_pass(d.pass);
        master.add(d.severity, d.rule,
                   w->name + "/" + core::version_key(v) +
                       (d.location.empty() ? "" : "/" + d.location),
                   d.message);
      }
    }
  }
  return products;
}

int cmd_suite(const std::map<std::string, std::string>& flags) {
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !scheme) return usage();
  core::RunOptions opt;
  opt.scheme = *scheme;
  core::ParallelSweepOptions par;
  if (!parse_threads_flag(flags, &par)) return 2;
  if (!parse_epoch_flag(flags, &opt.trace_epoch)) return 2;
  if (flags.count("verify-pipeline")) {
    std::vector<const workloads::WorkloadInfo*> ws;
    for (const auto& w : workloads::all_workloads()) ws.push_back(&w);
    const std::vector<core::Version> vs(core::kAllVersions.begin(),
                                        core::kAllVersions.end());
    verify::Report master;
    const std::size_t products = verify_matrix(ws, vs, master);
    if (!master.empty()) {
      std::fprintf(stderr, "pipeline verification failed (%zu products):\n%s",
                   products, master.str().c_str());
      return 1;
    }
    std::printf("pipeline verification: %zu products clean\n", products);
  }
  std::vector<core::TraceCapture> traces;
  const bool tracing = flags.count("trace-dir") > 0;
  const auto rows =
      core::sweep_suite(*machine, opt, par, tracing ? &traces : nullptr);
  std::printf("%s", core::format_figure(
                        machine->name + " (" + hw::to_string(*scheme) + ")",
                        rows)
                        .c_str());
  if (tracing) return write_trace_dir(traces, flags.at("trace-dir"));
  return 0;
}

int cmd_show(const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(flags.count("workload")
                                       ? flags.at("workload")
                                       : "");
  if (w == nullptr) return usage();
  ir::Program p = w->build();
  if (flags.count("optimized") || flags.count("marked")) {
    transform::OptimizeOptions opt;
    opt.insert_markers = flags.count("marked") > 0;
    transform::optimize_program(p, opt);
  }
  std::printf("%s", ir::print(p).c_str());
  return 0;
}

/// `selcache verify` — static certification without simulating anything.
/// With FILE.loop: parse and verify that program (as-is, or one pipeline
/// product when --version is given). Without: sweep the workload matrix,
/// optionally narrowed by --workload / --version. Exit 1 on diagnostics.
int cmd_verify(const std::string& file,
               const std::map<std::string, std::string>& flags) {
  verify::Report master;
  std::size_t products = 0;

  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "selcache: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string src = text.str();
    std::optional<ir::Program> parsed;
    try {
      parsed.emplace(ir::parse_program(src));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "selcache: cannot parse %s: %s\n", file.c_str(),
                   e.what());
      return 2;
    }
    if (flags.count("version")) {
      const auto version = version_by_name(flags.at("version"));
      if (!version) return usage();
      const workloads::WorkloadInfo info{
          parsed->name(), file, workloads::Category::Mixed,
          [src] { return ir::parse_program(src); }, 0, 0, 0};
      products = verify_matrix({&info}, {*version}, master);
    } else {
      verify::verify_program(*parsed, nullptr, master);
      products = 1;
    }
  } else {
    std::vector<const workloads::WorkloadInfo*> ws;
    if (flags.count("workload")) {
      const auto* w = workload_by_name(flags.at("workload"));
      if (w == nullptr) {
        std::fprintf(stderr, "selcache: unknown workload '%s'\n",
                     flags.at("workload").c_str());
        return 2;
      }
      ws.push_back(w);
    } else {
      for (const auto& w : workloads::all_workloads()) ws.push_back(&w);
    }
    std::vector<core::Version> vs;
    if (flags.count("version")) {
      const auto version = version_by_name(flags.at("version"));
      if (!version) return usage();
      vs.push_back(*version);
    } else {
      vs.assign(core::kAllVersions.begin(), core::kAllVersions.end());
    }
    products = verify_matrix(ws, vs, master);
  }

  if (flags.count("csv")) {
    std::printf("%s", master.csv().c_str());
  } else if (master.empty()) {
    std::printf("verified %zu program product%s: no diagnostics\n", products,
                products == 1 ? "" : "s");
  } else {
    std::printf("verified %zu program product%s: %zu error%s, %zu warning%s\n%s",
                products, products == 1 ? "" : "s", master.errors(),
                master.errors() == 1 ? "" : "s", master.warnings(),
                master.warnings() == 1 ? "" : "s", master.str().c_str());
  }
  return master.empty() ? 0 : 1;
}

}  // namespace

int cmd_run_file(const std::string& path,
                 const std::map<std::string, std::string>& flags) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  ir::Program parsed = ir::parse_program(text.str());
  const std::string name = parsed.name();

  // Wrap the parsed program in a workload whose builder re-parses the text
  // (the runner clones per version).
  const std::string src = text.str();
  workloads::WorkloadInfo info{name, path, workloads::Category::Mixed,
                               [src] { return ir::parse_program(src); },
                               0, 0, 0};
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto version =
      version_by_name(flags.count("version") ? flags.at("version") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !version || !scheme) return usage();
  core::RunOptions opt;
  opt.scheme = *scheme;
  const core::RunResult r = core::run_version(info, *machine, *version, opt);
  std::printf("%s (%s) / %s / %s\n", name.c_str(), path.c_str(),
              to_string(*version), hw::to_string(*scheme));
  std::printf("  cycles        %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("  instructions  %llu\n",
              static_cast<unsigned long long>(r.instructions));
  std::printf("  L1 miss       %.2f%%   L2 miss %.2f%%   toggles %llu\n",
              100.0 * r.l1_miss_rate, 100.0 * r.l2_miss_rate,
              static_cast<unsigned long long>(r.toggles));
  return 0;
}

int cmd_trace_record(const std::map<std::string, std::string>& flags) {
  const auto* w = workload_by_name(flags.count("workload")
                                       ? flags.at("workload")
                                       : "");
  const auto version =
      version_by_name(flags.count("version") ? flags.at("version") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (w == nullptr || !version || !scheme || !flags.count("out"))
    return usage();

  const core::MachineConfig m = core::base_machine();
  ir::Program product =
      core::prepare_program(w->build(), *version, transform::OptimizeOptions{});
  memsys::Hierarchy hierarchy(m.hierarchy);
  auto hw_scheme = core::make_scheme(*scheme, m);
  hierarchy.attach_hw(hw_scheme.get());
  hw::Controller controller(hw_scheme.get());
  controller.force(core::hw_always_on(*version));
  cpu::TimingModel cpu(m.cpu, hierarchy, controller);
  codegen::Trace trace;
  cpu.set_trace_sink(&trace);
  codegen::DataEnv env(product);
  codegen::TraceEngine engine(product, env, cpu);
  engine.run();
  if (!codegen::save_trace(trace, flags.at("out"))) {
    std::fprintf(stderr, "cannot write %s\n", flags.at("out").c_str());
    return 2;
  }
  std::printf("recorded %zu events (%llu instructions, %llu cycles) -> %s\n",
              trace.size(),
              static_cast<unsigned long long>(cpu.instructions()),
              static_cast<unsigned long long>(cpu.cycles()),
              flags.at("out").c_str());
  return 0;
}

int cmd_trace_replay(const std::string& path,
                     const std::map<std::string, std::string>& flags) {
  const auto machine =
      machine_by_name(flags.count("machine") ? flags.at("machine") : "");
  const auto scheme =
      scheme_by_name(flags.count("scheme") ? flags.at("scheme") : "");
  if (!machine || !scheme) return usage();
  const codegen::Trace trace = codegen::load_trace(path);
  memsys::Hierarchy hierarchy(machine->hierarchy);
  auto hw_scheme = core::make_scheme(*scheme, *machine);
  hierarchy.attach_hw(hw_scheme.get());
  hw::Controller controller(hw_scheme.get());
  cpu::TimingModel cpu(machine->cpu, hierarchy, controller);
  codegen::replay_trace(trace, cpu);
  std::printf("%s on %s: %llu cycles, %llu instructions, L1 miss %.2f%%, "
              "L2 miss %.2f%%\n",
              path.c_str(), machine->name.c_str(),
              static_cast<unsigned long long>(cpu.cycles()),
              static_cast<unsigned long long>(cpu.instructions()),
              100.0 * hierarchy.l1_miss_rate(),
              100.0 * hierarchy.l2_miss_rate());
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  static const std::map<std::string, CommandSpec> kSpecs = {
      {"list", {"list", {}, {}}},
      {"run",
       {"run", {"workload", "machine", "version", "scheme", "threshold"},
        {"stats"}}},
      {"sweep",
       {"sweep",
        {"workload", "machine", "scheme", "threads", "trace-dir", "epoch"},
        {}}},
      {"suite",
       {"suite", {"machine", "scheme", "threads", "trace-dir", "epoch"},
        {"verify-pipeline"}}},
      {"show", {"show", {"workload"}, {"optimized", "marked"}}},
      {"run-file", {"run-file", {"machine", "version", "scheme"}, {}}},
      {"trace",
       {"trace",
        {"machine", "scheme", "epoch", "events-out", "metrics-out",
         "csv-out"},
        {}}},
      {"trace-record",
       {"trace-record", {"workload", "out", "version", "scheme"}, {}}},
      {"trace-replay", {"trace-replay", {"machine", "scheme"}, {}}},
      {"verify", {"verify", {"workload", "version"}, {"csv"}}},
  };
  const auto spec_it = kSpecs.find(cmd);
  if (spec_it == kSpecs.end()) {
    std::fprintf(stderr,
                 "selcache: unknown command '%s' (run 'selcache' with no"
                 " arguments for usage)\n",
                 cmd.c_str());
    return 2;
  }
  const CommandSpec& spec = spec_it->second;

  // trace-replay / run-file take a required positional; verify an optional
  // one; trace takes two (WORKLOAD VERSION). Flags start after any
  // positionals.
  std::string positional, positional2;
  int flag_start = 2;
  const bool requires_file = cmd == "trace-replay" || cmd == "run-file";
  const bool accepts_file = requires_file || cmd == "verify";
  if (accepts_file && argc > 2 &&
      std::string(argv[2]).rfind("--", 0) != 0) {
    positional = argv[2];
    flag_start = 3;
  }
  if (requires_file && positional.empty()) {
    std::fprintf(stderr, "selcache: '%s' expects a FILE argument\n",
                 cmd.c_str());
    return 2;
  }
  if (cmd == "trace") {
    if (argc < 4 || std::string(argv[2]).rfind("--", 0) == 0 ||
        std::string(argv[3]).rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "selcache: 'trace' expects WORKLOAD and VERSION"
                   " arguments\n");
      return 2;
    }
    positional = argv[2];
    positional2 = argv[3];
    flag_start = 4;
  }

  bool ok = true;
  const auto flags = parse_flags(argc, argv, flag_start, spec, &ok);
  if (!ok) return 2;

  if (cmd == "list") return cmd_list();
  if (cmd == "run") return cmd_run(flags);
  if (cmd == "sweep") return cmd_sweep(flags);
  if (cmd == "suite") return cmd_suite(flags);
  if (cmd == "show") return cmd_show(flags);
  if (cmd == "run-file") return cmd_run_file(positional, flags);
  if (cmd == "trace") return cmd_trace(positional, positional2, flags);
  if (cmd == "trace-record") return cmd_trace_record(flags);
  if (cmd == "trace-replay") return cmd_trace_replay(positional, flags);
  return cmd_verify(positional, flags);
}
