// Figure 9: L1-associativity axis. The paper's point is 8-way; the sweep
// traces the whole axis via record-once/replay-many tapes.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace selcache;
  const auto fopt = bench::parse_figure_options(argc, argv);
  std::vector<bench::SweepPoint> points;
  for (unsigned ways : {1u, 2u, 4u, 8u}) {
    core::MachineConfig m = core::higher_l1_assoc();
    m.hierarchy.l1d.assoc = ways;
    m.name = "L1 " + std::to_string(ways) + "-way";
    points.push_back(
        {m, "Figure 9: L1 associativity " + std::to_string(ways) +
                " (bypass scheme)" + (ways == 8 ? " [paper point]" : "")});
  }
  return bench::run_figure_sweep(std::move(points), hw::SchemeKind::Bypass,
                                 fopt);
}
