// Figure 9: higher L1 associativity (8) — % improvement in execution cycles over this configuration's
// base run, four versions x 13 benchmarks, cache-bypassing scheme.
#include "figure_common.h"

int main() {
  return selcache::bench::run_figure(selcache::core::higher_l1_assoc(),
                                     "Figure 9: higher L1 associativity (8) (bypass scheme)");
}
