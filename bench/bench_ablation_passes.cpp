// Ablation: contribution of each software pass (§3.2) to the Pure Software
// improvement, measured by disabling one pass at a time on the regular
// benchmarks (where the software pipeline does its work).
#include <cstdio>

#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

namespace {

double sw_improvement(const workloads::WorkloadInfo& w,
                      const transform::OptimizeOptions& opt) {
  const core::MachineConfig machine = core::base_machine();
  const auto base = core::run_version(w, machine, core::Version::Base);
  core::RunOptions ro;
  ro.optimize = opt;
  const auto sw =
      core::run_version(w, machine, core::Version::PureSoftware, ro);
  return improvement_pct(base.cycles, sw.cycles);
}

}  // namespace

int main() {
  TextTable t({"Benchmark", "all passes", "-interchange", "-layout",
               "-tiling", "-unroll&jam", "-scalar repl."});

  for (const char* name : {"Swim", "Mgrid", "Vpenta", "Adi", "Chaos",
                           "TPC-D,Q1"}) {
    const auto& w = workloads::workload(name);
    transform::OptimizeOptions all;
    std::vector<std::string> row{w.name,
                                 TextTable::num(sw_improvement(w, all))};
    for (int drop = 0; drop < 5; ++drop) {
      transform::OptimizeOptions opt;
      if (drop == 0) opt.enable_interchange = false;
      if (drop == 1) opt.enable_layout_selection = false;
      if (drop == 2) opt.enable_tiling = false;
      if (drop == 3) opt.enable_unroll_jam = false;
      if (drop == 4) opt.enable_scalar_replacement = false;
      row.push_back(TextTable::num(sw_improvement(w, opt)));
    }
    t.add_row(std::move(row));
  }

  std::printf("== Ablation: per-pass contribution to Pure Software ==\n%s"
              "Each column disables one pass; the drop from 'all passes'\n"
              "is that pass's contribution on that benchmark.\n",
              t.str().c_str());
  return 0;
}
