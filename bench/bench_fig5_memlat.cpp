// Figure 5: memory-latency axis. The paper's point is 200 cycles; the sweep
// traces the whole axis, recording each (workload, version) cell's trace
// tape at the first point and replaying it for the rest.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace selcache;
  const auto fopt = bench::parse_figure_options(argc, argv);
  std::vector<bench::SweepPoint> points;
  for (unsigned lat : {100u, 150u, 200u, 300u}) {
    core::MachineConfig m = core::higher_mem_latency();
    m.hierarchy.mem.access_latency = lat;
    m.name = "Mem. Lat. " + std::to_string(lat);
    points.push_back(
        {m, "Figure 5: memory latency " + std::to_string(lat) +
                " cycles (bypass scheme)" +
                (lat == 200 ? " [paper point]" : "")});
  }
  return bench::run_figure_sweep(std::move(points), hw::SchemeKind::Bypass,
                                 fopt);
}
