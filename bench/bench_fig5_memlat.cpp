// Figure 5: larger memory latency (200 cycles) — % improvement in execution cycles over this configuration's
// base run, four versions x 13 benchmarks, cache-bypassing scheme.
#include "figure_common.h"

int main() {
  return selcache::bench::run_figure(selcache::core::higher_mem_latency(),
                                     "Figure 5: larger memory latency (200 cycles) (bypass scheme)");
}
