// Figure 7: L1D-size axis. The paper's point is 64K; the sweep traces the
// whole axis via record-once/replay-many tapes.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace selcache;
  const auto fopt = bench::parse_figure_options(argc, argv);
  std::vector<bench::SweepPoint> points;
  for (unsigned kb : {16u, 32u, 64u, 128u}) {
    core::MachineConfig m = core::larger_l1();
    m.hierarchy.l1d.size_bytes = std::uint64_t{kb} * 1024;
    m.name = "L1D " + std::to_string(kb) + "K";
    points.push_back(
        {m, "Figure 7: L1 size " + std::to_string(kb) + "K (bypass scheme)" +
                (kb == 64 ? " [paper point]" : "")});
  }
  return bench::run_figure_sweep(std::move(points), hw::SchemeKind::Bypass,
                                 fopt);
}
