// Figure 7: larger L1 size (64K) — % improvement in execution cycles over this configuration's
// base run, four versions x 13 benchmarks, cache-bypassing scheme.
#include "figure_common.h"

int main() {
  return selcache::bench::run_figure(selcache::core::larger_l1(),
                                     "Figure 7: larger L1 size (64K) (bypass scheme)");
}
