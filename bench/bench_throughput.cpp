// Engine-throughput benchmark: simulated accesses/second for the full
// 13-benchmark DATE-2003 sweep — serial vs. the parallel experiment engine,
// interpreted vs. the trace-tape record/replay path, vectorized vs. scalar
// probe kernels, and per-point vs. shared-decode multi-config replay.
//
//   bench_throughput [--threads N] [--out FILE] [--scheme bypass|victim]
//
// Reports wall-clock, simulated-accesses/second, the parallel speedup, the
// probe-kernel (SIMD vs forced-scalar) speedup measured in-process, the tape
// record/replay throughput plus encoded density, the batched multi-config
// replay throughput over a 4-point memory-latency axis (per-point replay vs
// shared decode), and the persistent result store's cold-fill vs warm-serve
// suite times. Verifies every pass is bit-identical to the serial
// interpreted one, and writes a JSON baseline (default
// results/BENCH_throughput.json) that tools/check_bench_regression.py
// compares future runs against.
//
// Every timing section records the worker-thread count it actually used;
// `hardware_threads` reports the host so the regression checker can skip
// parallel-speedup comparisons on single-core machines.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/report.h"
#include "core/runner.h"
#include "memsys/probe_kernels.h"
#include "store/store.h"
#include "support/thread_pool.h"
#include "tape/cache.h"

namespace {

using selcache::core::ImprovementRow;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t total_accesses(const std::vector<ImprovementRow>& rows) {
  std::uint64_t n = 0;
  for (const auto& r : rows) n += r.accesses;
  return n;
}

bool identical(const std::vector<ImprovementRow>& a,
               const std::vector<ImprovementRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].benchmark != b[i].benchmark || a[i].category != b[i].category ||
        a[i].base_cycles != b[i].base_cycles || a[i].pct != b[i].pct ||
        a[i].accesses != b[i].accesses ||
        a[i].stats.all() != b[i].stats.all())
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 8;
  std::string out = "results/BENCH_throughput.json";
  selcache::hw::SchemeKind scheme = selcache::hw::SchemeKind::Bypass;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--scheme") == 0 && i + 1 < argc) {
      scheme = std::strcmp(argv[++i], "victim") == 0
                   ? selcache::hw::SchemeKind::Victim
                   : selcache::hw::SchemeKind::Bypass;
    } else {
      std::fprintf(stderr,
                   "usage: bench_throughput [--threads N] [--out FILE]"
                   " [--scheme bypass|victim]\n");
      return 2;
    }
  }

  const unsigned hw_threads =
      selcache::support::ThreadPool::hardware_threads();
  const selcache::core::MachineConfig machine = selcache::core::base_machine();
  selcache::core::RunOptions opt;
  opt.scheme = scheme;

  std::printf("engine throughput: full 13-benchmark sweep, scheme=%s\n",
              selcache::hw::to_string(scheme));
  std::printf("host: %u hardware thread(s), probe kernels: %s\n", hw_threads,
              selcache::memsys::kernels::active_kernel());

  auto t0 = std::chrono::steady_clock::now();
  const auto serial_rows = selcache::core::sweep_suite(machine, opt);
  const double serial_s = seconds_since(t0);
  const std::uint64_t accesses = total_accesses(serial_rows);
  const double serial_aps = static_cast<double>(accesses) / serial_s;
  std::printf("serial:    %6.2fs  %12.0f accesses/s  (%s kernels)\n",
              serial_s, serial_aps,
              selcache::memsys::kernels::active_kernel());

  // Probe-kernel A/B in ONE process: force the scalar fallback, repeat the
  // serial sweep, restore the startup selection. In-process comparison
  // avoids most of the host noise a pair of separate runs would carry.
  selcache::memsys::kernels::force_scalar(true);
  t0 = std::chrono::steady_clock::now();
  const auto scalar_rows = selcache::core::sweep_suite(machine, opt);
  const double scalar_s = seconds_since(t0);
  selcache::memsys::kernels::force_scalar(false);
  const double scalar_aps = static_cast<double>(accesses) / scalar_s;
  const double simd_speedup = scalar_s > 0 ? scalar_s / serial_s : 0.0;
  std::printf("scalar:    %6.2fs  %12.0f accesses/s  (simd probe: %.2fx)\n",
              scalar_s, scalar_aps, simd_speedup);

  t0 = std::chrono::steady_clock::now();
  const auto parallel_rows = selcache::core::sweep_suite(
      machine, opt, selcache::core::ParallelSweepOptions{.num_threads = threads});
  const double parallel_s = seconds_since(t0);
  const double parallel_aps = static_cast<double>(accesses) / parallel_s;
  const double speedup = serial_s / parallel_s;
  std::printf("%2u threads:%6.2fs  %12.0f accesses/s  (%.2fx)\n", threads,
              parallel_s, parallel_aps, speedup);

  // Tape phases: one serial sweep that records every (workload, version)
  // cell into a fresh cache, then one that replays all 65 tapes. Replay
  // throughput over interpreted throughput is the record-once/replay-many
  // win each extra machine point of a figure sweep enjoys.
  selcache::tape::TapeCache cache;
  selcache::core::RunOptions taped = opt;
  taped.reuse_tape = true;
  taped.tape_cache = &cache;

  t0 = std::chrono::steady_clock::now();
  const auto recorded_rows = selcache::core::sweep_suite(machine, taped);
  const double record_s = seconds_since(t0);
  const double record_aps = static_cast<double>(accesses) / record_s;
  std::printf("tape rec:  %6.2fs  %12.0f accesses/s  (%zu tapes)\n", record_s,
              record_aps, cache.size());

  t0 = std::chrono::steady_clock::now();
  const auto replayed_rows = selcache::core::sweep_suite(machine, taped);
  const double replay_s = seconds_since(t0);
  const double replay_aps = static_cast<double>(accesses) / replay_s;
  const double replay_speedup = serial_s / replay_s;
  std::printf("tape play: %6.2fs  %12.0f accesses/s  (%.2fx vs interpret)\n",
              replay_s, replay_aps, replay_speedup);

  const double tape_bytes_per_access =
      cache.total_data_accesses() == 0
          ? 0.0
          : static_cast<double>(cache.total_bytes()) /
                static_cast<double>(cache.total_data_accesses());
  std::printf("tape size: %.1f MB total, %.2f bytes/recorded access\n",
              static_cast<double>(cache.total_bytes()) / (1024.0 * 1024.0),
              tape_bytes_per_access);

  // Multi-config replay phases over a 4-point memory-latency axis (the
  // fig5_memlat shape), all points served from the tapes recorded above:
  // the classic loop replays each cell once PER POINT; the shared-decode
  // engine decodes each cell once and fans the batches out to all points.
  std::vector<selcache::core::MachineConfig> axis;
  for (unsigned lat : {100u, 150u, 200u, 300u}) {
    selcache::core::MachineConfig m = selcache::core::higher_mem_latency();
    m.hierarchy.mem.access_latency = lat;
    m.name = "memlat" + std::to_string(lat);
    axis.push_back(m);
  }
  // Cell-level fan-out only helps with real cores; record what we used.
  const unsigned mr_threads = hw_threads > 1 ? threads : 1;
  const selcache::core::ParallelSweepOptions mr_par{.num_threads = mr_threads};
  const std::uint64_t axis_accesses =
      accesses * static_cast<std::uint64_t>(axis.size());

  t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<ImprovementRow>> per_point_rows;
  for (const auto& m : axis)
    per_point_rows.push_back(selcache::core::sweep_suite(m, taped, mr_par));
  const double per_point_s = seconds_since(t0);
  std::printf("axis x%zu per-point:     %6.2fs  %12.0f accesses/s\n",
              axis.size(), per_point_s,
              static_cast<double>(axis_accesses) / per_point_s);

  t0 = std::chrono::steady_clock::now();
  const auto shared_rows =
      selcache::core::sweep_axis_shared_decode(axis, taped, mr_par);
  const double shared_s = seconds_since(t0);
  const double multi_replay_aps =
      static_cast<double>(axis_accesses) / shared_s;
  const double shared_speedup = shared_s > 0 ? per_point_s / shared_s : 0.0;
  std::printf("axis x%zu shared-decode: %6.2fs  %12.0f accesses/s  "
              "(%.2fx vs per-point)\n",
              axis.size(), shared_s, multi_replay_aps, shared_speedup);

  bool multi_replay_identical = shared_rows.size() == axis.size();
  for (std::size_t i = 0; multi_replay_identical && i < axis.size(); ++i)
    multi_replay_identical = identical(per_point_rows[i], shared_rows[i]);

  // Store phases: one sweep that fills a fresh on-disk result store (cold),
  // then one that serves every cell from it (warm). Warm over cold is the
  // incremental-sweep win a repeated suite run enjoys across processes.
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "selcache_bench_store")
          .string();
  selcache::store::ResultStore rstore(store_dir);
  rstore.clear();
  selcache::core::RunOptions stored = opt;
  stored.result_store = &rstore;

  t0 = std::chrono::steady_clock::now();
  const auto store_cold_rows = selcache::core::sweep_suite(machine, stored);
  const double store_cold_s = seconds_since(t0);
  std::printf("store cold:%6.2fs  (%llu cells written)\n", store_cold_s,
              static_cast<unsigned long long>(rstore.counters().writes));

  t0 = std::chrono::steady_clock::now();
  const auto store_warm_rows = selcache::core::sweep_suite(machine, stored);
  const double store_warm_s = seconds_since(t0);
  const auto sc = rstore.counters();
  std::printf("store warm:%6.2fs  (%llu hits, %llu misses, %.1fx vs cold)\n",
              store_warm_s, static_cast<unsigned long long>(sc.hits),
              static_cast<unsigned long long>(sc.misses),
              store_warm_s > 0 ? store_cold_s / store_warm_s : 0.0);
  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);

  const bool deterministic = identical(serial_rows, scalar_rows) &&
                             identical(serial_rows, parallel_rows) &&
                             identical(serial_rows, recorded_rows) &&
                             identical(serial_rows, replayed_rows) &&
                             identical(serial_rows, store_cold_rows) &&
                             identical(serial_rows, store_warm_rows) &&
                             multi_replay_identical;
  std::printf("determinism: scalar + parallel + tape + multi-replay + store "
              "rows %s serial rows\n",
              deterministic ? "IDENTICAL to" : "DIFFER from");

  char json[4096];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"benchmark\": \"bench_throughput\",\n"
                "  \"scheme\": \"%s\",\n"
                "  \"workloads\": %zu,\n"
                "  \"hardware_threads\": %u,\n"
                "  \"threads\": %u,\n"
                "  \"simulated_accesses\": %llu,\n"
                "  \"simd_probe\": \"%s\",\n"
                "  \"simd_probe_speedup\": %.3f,\n"
                "  \"serial_seconds\": %.3f,\n"
                "  \"serial_accesses_per_sec\": %.0f,\n"
                "  \"serial_threads_used\": 1,\n"
                "  \"scalar_serial_seconds\": %.3f,\n"
                "  \"scalar_serial_accesses_per_sec\": %.0f,\n"
                "  \"parallel_seconds\": %.3f,\n"
                "  \"parallel_accesses_per_sec\": %.0f,\n"
                "  \"parallel_threads_used\": %u,\n"
                "  \"speedup\": %.3f,\n"
                "  \"tape_record_accesses_per_sec\": %.0f,\n"
                "  \"tape_replay_accesses_per_sec\": %.0f,\n"
                "  \"tape_bytes_per_access\": %.3f,\n"
                "  \"multi_replay_points\": %zu,\n"
                "  \"multi_replay_threads_used\": %u,\n"
                "  \"multi_replay_accesses_per_sec\": %.0f,\n"
                "  \"fig5_per_point_seconds\": %.3f,\n"
                "  \"fig5_shared_decode_seconds\": %.3f,\n"
                "  \"fig5_shared_decode_speedup\": %.3f,\n"
                "  \"store_cold_suite_seconds\": %.3f,\n"
                "  \"store_warm_suite_seconds\": %.3f,\n"
                "  \"deterministic\": %s\n"
                "}\n",
                selcache::hw::to_string(scheme), serial_rows.size(),
                hw_threads, threads,
                static_cast<unsigned long long>(accesses),
                selcache::memsys::kernels::active_kernel(), simd_speedup,
                serial_s, serial_aps, scalar_s, scalar_aps, parallel_s,
                parallel_aps, threads, speedup, record_aps, replay_aps,
                tape_bytes_per_access, axis.size(), mr_threads,
                multi_replay_aps, per_point_s, shared_s, shared_speedup,
                store_cold_s, store_warm_s, deterministic ? "true" : "false");
  if (!selcache::core::write_text_file(out, json)) {
    std::fprintf(stderr, "warning: could not write %s\n", out.c_str());
  } else {
    std::printf("baseline -> %s\n", out.c_str());
  }
  return deterministic ? 0 : 1;
}
