// Figure 4: % improvement in execution cycles over the base configuration,
// four versions x 13 benchmarks, cache-bypassing hardware scheme.
#include "figure_common.h"

int main(int argc, char** argv) {
  const auto fopt = selcache::bench::parse_figure_options(argc, argv);
  return selcache::bench::run_figure(
      selcache::core::base_machine(),
      "Figure 4: base configuration (bypass scheme)",
      selcache::hw::SchemeKind::Bypass, fopt);
}
