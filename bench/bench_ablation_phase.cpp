// Ablation: the phase-change pathology (§5.1). "History information is
// useful as long as the program is within the same phase ... If this phase
// is not long enough, the hardware optimization actually increases the
// execution cycles for the current phase."
//
// Microbenchmark: a program sweeps fresh rows of two arrays in alternating
// phases; total work is fixed while the phase length varies. We report the
// overhead of keeping the bypass mechanism always ON (relative to OFF) for
// two MAT configurations: the default fast-adapting one (small counters,
// eviction punishment) and a slow-adapting one (large counters, no
// punishment, rare decay) that clings to stale phase history.
#include <cstdio>

#include "codegen/trace_engine.h"
#include "core/versions.h"
#include "hw/bypass_scheme.h"
#include "ir/builder.h"
#include "support/table.h"

using namespace selcache;

namespace {

ir::Program phase_program(std::int64_t rows_per_phase, std::int64_t phases) {
  ir::ProgramBuilder b("phases");
  constexpr std::int64_t kCols = 512;  // 4 KB rows; windows exceed L1
  const auto A = b.array("A", {512, kCols});
  const auto B = b.array("B", {512, kCols});
  const auto p = b.begin_loop("p", 0, phases);
  for (int which = 0; which < 2; ++which) {
    const auto arr = which == 0 ? A : B;
    // Each phase re-sweeps its (fresh) window several times: within-phase
    // reuse is what stale bypassing destroys.
    b.begin_loop(which == 0 ? "ra" : "rb", 0, 4);
    const auto i = b.begin_loop(which == 0 ? "ia" : "ib",
                                ir::x(p) * rows_per_phase,
                                ir::x(p) * rows_per_phase + rows_per_phase);
    const auto j = b.begin_loop(which == 0 ? "ja" : "jb", 0, kCols);
    b.stmt({ir::load_array(arr, {b.sub(i), b.sub(j)}),
            ir::store_array(arr, {b.sub(i), b.sub(j)})},
           2);
    b.end_loop();
    b.end_loop();
    b.end_loop();
  }
  b.end_loop();
  return b.finish();
}

Cycle run(const ir::Program& p, bool hw_on, bool slow_mat) {
  const core::MachineConfig m = core::base_machine();
  memsys::Hierarchy h(m.hierarchy);
  hw::BypassSchemeConfig cfg;
  cfg.sldt.block_size = m.hierarchy.l1d.block_size;
  cfg.buffer_block_size = m.hierarchy.l1d.block_size;
  if (slow_mat) {
    cfg.mat.counter_max = 4095;
    cfg.mat.decay_interval = 4 * 1024 * 1024;
    cfg.punish_on_eviction = false;
  }
  hw::BypassScheme scheme(cfg);
  h.attach_hw(&scheme);
  hw::Controller ctl(&scheme);
  ctl.force(hw_on);
  cpu::TimingModel cpu(m.cpu, h, ctl);
  codegen::DataEnv env(p);
  codegen::TraceEngine eng(p, env, cpu);
  eng.run();
  return cpu.cycles();
}

double overhead_pct(const ir::Program& p, bool slow_mat) {
  const double off = static_cast<double>(run(p, false, slow_mat));
  const double on = static_cast<double>(run(p, true, slow_mat));
  return 100.0 * (on - off) / off;
}

}  // namespace

int main() {
  TextTable t({"Rows/phase", "Phase [KB]", "Overhead, adaptive MAT [%]",
               "Overhead, sticky MAT [%]"});
  // Total work held constant: rows_per_phase * phases = 512.
  for (std::int64_t rows : {8, 32, 128, 512}) {
    const std::int64_t phases = 512 / rows;
    const ir::Program p = phase_program(rows, phases);
    t.add_row({std::to_string(rows), std::to_string(rows * 4),
               TextTable::num(overhead_pct(p, false)),
               TextTable::num(overhead_pct(p, true))});
  }
  std::printf("== Ablation: phase length vs. always-on bypass overhead "
              "(section 5.1) ==\n%s"
              "A MAT that clings to stale history (sticky) punishes short\n"
              "phases hardest — the effect the paper blames for the naive\n"
              "combined version\'s losses; an adaptive MAT shrinks but does\n"
              "not remove it. Selective ON/OFF avoids it entirely.\n",
              t.str().c_str());
  return 0;
}
