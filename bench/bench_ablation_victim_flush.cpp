// Ablation: the §5.2 victim-cache scenario. "Assume that there is a nest
// that contains two 'for loops', one of them being larger than the other.
// When we run the hardware for both of the loops, the smaller for loop will
// be able to evict the elements in the victim cache from the larger for
// loop. ... if we turn the victim cache off for the small loop, the elements
// of the large loop will remain in the victim cache, reducing the amount of
// conflict misses."
//
// We build exactly that nest: a large conflict-heavy loop and a small loop,
// and compare victim-cache hit counts and cycles with the mechanism always
// on vs. switched off around the small loop.
#include <cstdio>

#include "codegen/trace_engine.h"
#include "core/versions.h"
#include "hw/victim_scheme.h"
#include "ir/builder.h"
#include "support/table.h"

using namespace selcache;

namespace {

/// big_loop: walks 3 arrays whose blocks collide in a few L1 sets (conflict
/// misses the 64-entry victim cache can catch on the next outer iteration).
/// small_loop: streams a scratch buffer, flushing the victim cache when the
/// mechanism stays on.
ir::Program nest(bool toggles) {
  ir::ProgramBuilder b("victim_flush");
  // Five arrays exactly one L1 way (8 KB) apart: A[4i], B[4i], ... all map
  // to the same set, needing 5 ways in a 4-way cache — one conflict victim
  // per touched set, re-referenced on the next outer iteration. 48 touched
  // sets keep the overflow within the 64-entry victim cache.
  const auto A = b.array("A", {1024});
  const auto B = b.array("B", {1024});
  const auto C = b.array("C", {1024});
  const auto D = b.array("D", {1024});
  const auto E = b.array("E", {1024});
  const auto scratch = b.array("scratch", {262144});  // 2 MB stream

  b.begin_loop("outer", 0, 400);
  if (toggles) b.toggle(true);
  {
    const auto i = b.begin_loop("big", 0, 48);
    b.stmt({ir::load_array(A, {b.sub(ir::x(i) * 4)}),
            ir::load_array(B, {b.sub(ir::x(i) * 4)}),
            ir::load_array(C, {b.sub(ir::x(i) * 4)}),
            ir::load_array(D, {b.sub(ir::x(i) * 4)}),
            ir::store_array(E, {b.sub(ir::x(i) * 4)})},
           2);
    b.end_loop();
  }
  if (toggles) b.toggle(false);
  {
    // The small loop streams FRESH scratch data every outer iteration: its
    // evictions are never re-referenced, so capturing them in the victim
    // cache (always-on) only flushes the big loop's useful victims.
    const auto outer_var = ir::Var{0};
    const auto k = b.begin_loop("small", ir::x(outer_var) * 512,
                                ir::x(outer_var) * 512 + 512);
    b.stmt({ir::load_array(scratch, {b.sub(k)})}, 1);
    b.end_loop();
  }
  b.end_loop();
  return b.finish();
}

struct Outcome {
  Cycle cycles;
  std::uint64_t victim_hits;
};

Outcome run(bool toggles, bool force_on) {
  const ir::Program p = nest(toggles);
  const core::MachineConfig m = core::base_machine();
  memsys::Hierarchy h(m.hierarchy);
  auto scheme = core::make_scheme(hw::SchemeKind::Victim, m);
  h.attach_hw(scheme.get());
  hw::Controller ctl(scheme.get());
  ctl.force(force_on);
  cpu::TimingModel cpu(m.cpu, h, ctl);
  codegen::DataEnv env(p);
  codegen::TraceEngine eng(p, env, cpu);
  eng.run();
  StatSet s;
  h.export_stats(s);
  return {cpu.cycles(), s.get("victim_l1.hits")};
}

}  // namespace

int main() {
  const Outcome off = run(/*toggles=*/false, /*force_on=*/false);
  const Outcome combined = run(/*toggles=*/false, /*force_on=*/true);
  const Outcome selective = run(/*toggles=*/true, /*force_on=*/false);

  TextTable t({"Configuration", "Cycles", "L1-victim hits",
               "vs. no victim [%]"});
  const auto pct = [&](Cycle c) {
    return TextTable::num(improvement_pct(off.cycles, c));
  };
  t.add_row({"no victim cache", TextTable::count(off.cycles), "0", "0.00"});
  t.add_row({"always on (combined)", TextTable::count(combined.cycles),
             TextTable::count(combined.victim_hits), pct(combined.cycles)});
  t.add_row({"off around small loop (selective)",
             TextTable::count(selective.cycles),
             TextTable::count(selective.victim_hits), pct(selective.cycles)});

  std::printf("== Ablation: small-loop victim-cache flush (section 5.2) "
              "==\n%s"
              "Turning the mechanism off for the small loop preserves the\n"
              "large loop's victims: more victim hits, fewer cycles.\n",
              t.str().c_str());
  return 0;
}
