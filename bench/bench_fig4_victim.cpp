// Figure 4 companion: same base configuration under the victim-cache
// hardware scheme.
#include "figure_common.h"

int main(int argc, char** argv) {
  const auto fopt = selcache::bench::parse_figure_options(argc, argv);
  return selcache::bench::run_figure(selcache::core::base_machine(),
                                     "victim check",
                                     selcache::hw::SchemeKind::Victim, fopt);
}
