#include "figure_common.h"
int main() {
  return selcache::bench::run_figure(selcache::core::base_machine(),
      "victim check", selcache::hw::SchemeKind::Victim);
}
