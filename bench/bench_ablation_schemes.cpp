// Ablation: rank the hardware mechanisms — the paper's two (bypassing,
// victim caching) plus the extension schemes (stream prefetcher, composite
// bypass+victim) — under always-on and selective operation, averaged over
// the 13-benchmark suite on the base machine.
#include <cstdio>

#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

int main() {
  TextTable t({"Scheme", "Pure HW avg [%]", "Combined avg [%]",
               "Selective avg [%]"});
  for (hw::SchemeKind k :
       {hw::SchemeKind::Bypass, hw::SchemeKind::Victim,
        hw::SchemeKind::Prefetch, hw::SchemeKind::Composite}) {
    core::RunOptions opt;
    opt.scheme = k;
    const auto rows = core::sweep_suite(core::base_machine(), opt);
    t.add_row({hw::to_string(k),
               TextTable::num(core::average_improvement(
                   rows, core::Version::PureHardware)),
               TextTable::num(core::average_improvement(
                   rows, core::Version::Combined)),
               TextTable::num(core::average_improvement(
                   rows, core::Version::Selective))});
    std::fprintf(stderr, "  [schemes] %s done\n", hw::to_string(k));
  }
  std::printf("== Ablation: hardware scheme comparison (base config, "
              "13-benchmark averages) ==\n%s"
              "'prefetch' and 'bypass+victim' are extensions beyond the "
              "paper's two schemes.\n",
              t.str().c_str());
  return 0;
}
