// Ablation: redundant ON/OFF elimination (Figure 2(b) -> 2(c)). Reports,
// per benchmark, how many markers region detection inserts, how many the
// elimination pass removes, and how many activate/deactivate instructions
// execute at run time with and without the pass.
#include <cstdio>

#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

int main() {
  const core::MachineConfig machine = core::base_machine();
  TextTable t({"Benchmark", "Inserted", "Eliminated", "Final",
               "Toggles run (raw)", "Toggles run (clean)", "Cycle delta"});

  for (const auto& w : workloads::all_workloads()) {
    // Static counts from the pipeline report.
    ir::Program p = w.build();
    transform::OptimizeOptions opt;
    opt.insert_markers = true;
    const auto rep = transform::optimize_program(p, opt);

    // Dynamic counts with and without elimination.
    core::RunOptions raw;
    raw.optimize.insert_markers = true;
    raw.optimize.eliminate_markers = false;
    const auto r_raw =
        core::run_version(w, machine, core::Version::Selective, raw);
    const auto r_clean =
        core::run_version(w, machine, core::Version::Selective);

    const double delta = improvement_pct(r_raw.cycles, r_clean.cycles);
    t.add_row({w.name, std::to_string(rep.markers_inserted),
               std::to_string(rep.markers_eliminated),
               std::to_string(rep.markers_final),
               TextTable::count(r_raw.toggles),
               TextTable::count(r_clean.toggles),
               TextTable::num(delta, 3) + "%"});
  }

  std::printf("== Ablation: redundant activate/deactivate elimination ==\n%s"
              "'Toggles run' counts executed ON/OFF instructions; the cycle\n"
              "delta is what the cleanup is worth at run time (positive =\n"
              "elimination is faster).\n",
              t.str().c_str());
  return 0;
}
