// Figure 6: larger L2 size (1 MB) — % improvement in execution cycles over this configuration's
// base run, four versions x 13 benchmarks, cache-bypassing scheme.
#include "figure_common.h"

int main() {
  return selcache::bench::run_figure(selcache::core::larger_l2(),
                                     "Figure 6: larger L2 size (1 MB) (bypass scheme)");
}
