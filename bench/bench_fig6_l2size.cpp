// Figure 6: L2-size axis. The paper's point is 1 MB; the sweep traces the
// whole axis via record-once/replay-many tapes.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace selcache;
  const auto fopt = bench::parse_figure_options(argc, argv);
  std::vector<bench::SweepPoint> points;
  for (unsigned kb : {256u, 512u, 1024u, 2048u}) {
    core::MachineConfig m = core::larger_l2();
    m.hierarchy.l2.size_bytes = std::uint64_t{kb} * 1024;
    m.name = "L2 " + std::to_string(kb) + "K";
    points.push_back(
        {m, "Figure 6: L2 size " + std::to_string(kb) + "K (bypass scheme)" +
                (kb == 1024 ? " [paper point]" : "")});
  }
  return bench::run_figure_sweep(std::move(points), hw::SchemeKind::Bypass,
                                 fopt);
}
