// Google-benchmark microbenchmarks for the simulator substrate itself:
// how fast the building blocks run on the host. Useful when sizing larger
// experiments (the figure benches simulate ~50M instructions per sweep).
#include <benchmark/benchmark.h>

#include "codegen/trace_engine.h"
#include "hw/bypass_scheme.h"
#include "hw/victim_scheme.h"
#include "ir/builder.h"
#include "support/rng.h"

using namespace selcache;

namespace {

void BM_CacheAccess(benchmark::State& state) {
  memsys::Cache c(memsys::CacheConfig{.name = "c",
                                      .size_bytes = 32 * 1024,
                                      .assoc = static_cast<std::uint32_t>(
                                          state.range(0)),
                                      .block_size = 32,
                                      .latency = 2});
  Rng rng(1);
  std::vector<Addr> addrs(4096);
  for (auto& a : addrs) a = rng.below(1 << 20);
  std::size_t k = 0;
  for (auto _ : state) {
    const Addr a = addrs[k++ & 4095];
    if (!c.access(a, false)) c.fill(a, false);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4)->Arg(8);

void BM_MatTouch(benchmark::State& state) {
  hw::Mat mat(hw::MatConfig{});
  Rng rng(2);
  std::vector<Addr> addrs(4096);
  for (auto& a : addrs) a = rng.below(1 << 22);
  std::size_t k = 0;
  for (auto _ : state) mat.touch(addrs[k++ & 4095]);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MatTouch);

void BM_VictimCacheChurn(benchmark::State& state) {
  memsys::VictimCache vc("v", 64, 32);
  Rng rng(3);
  for (auto _ : state) {
    const Addr a = rng.below(1 << 16) * 32;
    if (!vc.extract(a)) vc.insert(a, false);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VictimCacheChurn);

void BM_HierarchyAccess(benchmark::State& state) {
  memsys::Hierarchy h((memsys::HierarchyConfig()));
  Rng rng(4);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        h.access(rng.below(1 << 22), memsys::AccessKind::Load));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HierarchyAccess);

void BM_TraceEngineStencil(benchmark::State& state) {
  ir::ProgramBuilder b("bench");
  const auto A = b.array("A", {64, 64});
  const auto i = b.begin_loop("i", 0, 64);
  const auto j = b.begin_loop("j", 0, 64);
  b.stmt({ir::load_array(A, {b.sub(i), b.sub(j)}),
          ir::store_array(A, {b.sub(i), b.sub(j)})},
         2);
  b.end_loop();
  b.end_loop();
  const ir::Program p = b.finish();

  memsys::Hierarchy h((memsys::HierarchyConfig()));
  hw::Controller ctl(nullptr);
  cpu::TimingModel cpu(cpu::CpuConfig{}, h, ctl);
  codegen::DataEnv env(p);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    codegen::TraceEngine eng(p, env, cpu);
    eng.run();
    instrs = cpu.instructions();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
  state.counters["instr_total"] = static_cast<double>(instrs);
}
BENCHMARK(BM_TraceEngineStencil);

}  // namespace

BENCHMARK_MAIN();
