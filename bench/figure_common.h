// Shared driver for the figure/table benches: run the 13-benchmark suite on
// one machine configuration and print the paper-style improvement table.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/report.h"
#include "core/runner.h"

namespace selcache::bench {

inline int run_figure(const core::MachineConfig& machine,
                      const std::string& title,
                      hw::SchemeKind scheme = hw::SchemeKind::Bypass) {
  const auto t0 = std::chrono::steady_clock::now();
  core::RunOptions opt;
  opt.scheme = scheme;
  const auto rows = core::sweep_suite(machine, opt);
  const auto dt = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::printf("%s", core::format_machine(machine).c_str());
  std::printf("%s", core::format_figure(title, rows).c_str());
  std::printf("(simulated in %.1fs, scheme=%s)\n\n", dt,
              hw::to_string(scheme));

  // Optional plotting output: SELCACHE_CSV_DIR=<dir> writes one CSV per
  // figure, named after the title's leading word(s).
  if (const char* dir = std::getenv("SELCACHE_CSV_DIR")) {
    std::string slug;
    for (char c : title) {
      if (c == ':') break;
      slug.push_back(isalnum(static_cast<unsigned char>(c))
                         ? static_cast<char>(tolower(c))
                         : '_');
    }
    const std::string path = std::string(dir) + "/" + slug + ".csv";
    if (!core::write_text_file(path, core::figure_csv(rows)))
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
  return 0;
}

}  // namespace selcache::bench
