// Shared driver for the figure/table benches: run the 13-benchmark suite on
// one machine configuration — or a whole axis of them — and print the
// paper-style improvement table per point.
//
// Every figure bench accepts the same flags (strict — unknown flags exit 2):
//   --threads N       worker threads for the (workload, version) fan-out
//                     (default: SELCACHE_THREADS env, else serial)
//   --no-reuse-tape   interpret every point instead of record-once/
//                     replay-many (the default records each (workload,
//                     version) cell at the first machine point and replays
//                     the tape for every other point)
//   --max-points N    truncate a sweep axis to its first N points (smoke
//                     tests / CI)
//   --store DIR       persistent result store: cells already in DIR are
//                     loaded instead of simulated; new cells (and tapes)
//                     are written back for the next run
//   --store-readonly  consult the store but never write to it
//   --store-clear     empty the store before the run (cold-start baseline)
//   --batch N         ops per decoded batch for the shared-decode engine
//                     (default tape::kDefaultBatchOps). A multi-point taped
//                     axis then decodes each cell's tape ONCE and fans the
//                     batches out to every machine point. 0 restores the
//                     classic per-point replay loop.
//   --no-simd         force the scalar probe kernels (same results, no
//                     vectorized tag compare) — see memsys/probe_kernels.h
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/runner.h"
#include "memsys/probe_kernels.h"
#include "store/store.h"
#include "support/signal_guard.h"
#include "tape/cache.h"
#include "tape/multi_replayer.h"

namespace selcache::bench {

struct FigureOptions {
  unsigned threads = 0;     ///< 0 = serial
  bool reuse_tape = true;   ///< record-once / replay-many across points
  int max_points = -1;      ///< -1 = all points of a sweep axis
  std::string store_dir;    ///< empty = no persistent store
  bool store_readonly = false;
  bool store_clear = false;
  /// Ops per decoded batch for the shared-decode axis engine; 0 = classic
  /// per-point replay (decode each cell's tape once per machine point).
  std::uint32_t batch = tape::kDefaultBatchOps;
};

/// Parse the shared figure-bench flags; exits(2) on anything unrecognized.
inline FigureOptions parse_figure_options(int argc, char** argv) {
  FigureOptions f;
  if (const char* env = std::getenv("SELCACHE_THREADS"))
    f.threads = static_cast<unsigned>(std::atoi(env));
  const auto usage = [&argv]() {
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--no-reuse-tape]"
                 " [--max-points N] [--store DIR] [--store-readonly]"
                 " [--store-clear] [--batch N] [--no-simd]\n",
                 argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      f.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--no-reuse-tape") == 0) {
      f.reuse_tape = false;
    } else if (std::strcmp(argv[i], "--max-points") == 0 && i + 1 < argc) {
      f.max_points = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      f.store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--store-readonly") == 0) {
      f.store_readonly = true;
    } else if (std::strcmp(argv[i], "--store-clear") == 0) {
      f.store_clear = true;
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      // Strict: a batch size that does not parse as a plain number must
      // fail loudly, not silently become 0 (which flips the engine).
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v > 0xffffffffUL) usage();
      f.batch = static_cast<std::uint32_t>(v);
    } else if (std::strcmp(argv[i], "--no-simd") == 0) {
      memsys::kernels::force_scalar(true);
    } else {
      usage();
    }
  }
  if (f.store_dir.empty() && (f.store_readonly || f.store_clear)) {
    std::fprintf(stderr,
                 "%s: --store-readonly / --store-clear require --store DIR\n",
                 argv[0]);
    std::exit(2);
  }
  if (f.store_readonly && f.store_clear) {
    std::fprintf(stderr,
                 "%s: --store-readonly and --store-clear are exclusive\n",
                 argv[0]);
    std::exit(2);
  }
  return f;
}

/// One machine point of a sweep axis.
struct SweepPoint {
  core::MachineConfig machine;
  std::string title;  ///< full figure title printed above this point's table
};

namespace detail {

inline void maybe_write_csv(const std::string& title,
                            const std::vector<core::ImprovementRow>& rows) {
  // Optional plotting output: SELCACHE_CSV_DIR=<dir> writes one CSV per
  // figure point, named after the title's leading word(s).
  const char* dir = std::getenv("SELCACHE_CSV_DIR");
  if (dir == nullptr) return;
  std::string slug;
  for (char c : title) {
    if (c == ':') break;
    slug.push_back(isalnum(static_cast<unsigned char>(c))
                       ? static_cast<char>(tolower(c))
                       : '_');
  }
  const std::string path = std::string(dir) + "/" + slug + ".csv";
  if (!core::write_text_file(path, core::figure_csv(rows)))
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
}

}  // namespace detail

/// Run the full suite over every machine point of one axis. With
/// fopt.reuse_tape (the default) the 13x5 cell tapes are recorded at the
/// first point and replayed — bit-identically — for every later point, so
/// an N-point axis pays the IR pipeline once, not N times.
inline int run_figure_sweep(std::vector<SweepPoint> points,
                            hw::SchemeKind scheme, const FigureOptions& fopt) {
  if (fopt.max_points >= 0 &&
      static_cast<std::size_t>(fopt.max_points) < points.size())
    points.resize(static_cast<std::size_t>(fopt.max_points));

  tape::TapeCache cache;
  core::RunOptions opt;
  opt.scheme = scheme;
  // A single-point run has nothing to replay, so skip the recording cost.
  opt.reuse_tape = fopt.reuse_tape && points.size() > 1;
  opt.tape_cache = &cache;

  // Persistent store: cells already on disk are loaded instead of simulated,
  // and persisted tapes make even the cold cells replay-from-disk. A warm
  // store turns a whole figure run into pure load + formatting.
  std::unique_ptr<store::ResultStore> rstore;
  if (!fopt.store_dir.empty()) {
    try {
      rstore = std::make_unique<store::ResultStore>(
          fopt.store_dir,
          store::ResultStore::Options{.read_only = fopt.store_readonly});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot open store: %s\n", e.what());
      return 2;
    }
    if (fopt.store_clear) rstore->clear();
    // Tapes persisted by an earlier run mean no cell needs the IR pipeline:
    // when every point's tapes are preloaded, "recorded" below is really
    // replayed-from-disk.
    if (opt.reuse_tape) rstore->preload_tapes(cache);
    opt.result_store = rstore.get();
  }
  const core::ParallelSweepOptions par{.num_threads = fopt.threads};

  // Graceful shutdown: a SIGINT/SIGTERM mid-axis finishes nothing torn —
  // the current machine point is abandoned between points, tapes and store
  // cells already persisted stay valid (a rerun serves them as hits), and
  // the process exits with the conventional 128+signo code.
  support::SignalGuard guard;

  const auto sweep_t0 = std::chrono::steady_clock::now();

  // Shared-decode engine (the default for taped multi-point axes): every
  // (workload, version) cell's tape is decoded ONCE and its batches fan out
  // to all machine points, instead of a full decode per point. The tables
  // are bit-identical to the per-point loop below (same rows, same store
  // cells); only the timing footers differ — and the figure equivalence
  // test strips those before diffing.
  if (opt.reuse_tape && points.size() > 1 && fopt.batch > 0) {
    opt.batch = fopt.batch;
    std::vector<core::MachineConfig> machines;
    machines.reserve(points.size());
    for (const SweepPoint& p : points) machines.push_back(p.machine);
    const auto all_rows = core::sweep_axis_shared_decode(machines, opt, par);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::printf("%s", core::format_machine(points[i].machine).c_str());
      std::printf("%s", core::format_figure(points[i].title,
                                            all_rows[i]).c_str());
      std::printf("\n");
      detail::maybe_write_csv(points[i].title, all_rows[i]);
    }
    const auto total = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - sweep_t0)
                           .count();
    std::printf("axis total: %zu machine points in %.1fs "
                "(shared-decode, batch=%u, kernels=%s)\n",
                points.size(), total, fopt.batch,
                memsys::kernels::active_kernel());
    if (rstore != nullptr) {
      std::size_t persisted = rstore->persist_tapes(cache);
      const auto c = rstore->counters();
      std::fprintf(stderr,
                   "store: %llu hits, %llu misses (%llu corrupt), %llu cells"
                   " written, %zu tapes persisted -> %s\n",
                   static_cast<unsigned long long>(c.hits),
                   static_cast<unsigned long long>(c.misses),
                   static_cast<unsigned long long>(c.corrupt),
                   static_cast<unsigned long long>(c.writes), persisted,
                   rstore->dir().c_str());
    }
    return 0;
  }

  for (std::size_t i = 0; i < points.size(); ++i) {
    if (support::SignalGuard::stop_requested()) {
      std::fprintf(stderr,
                   "interrupted after %zu of %zu machine points; persisted "
                   "store entries stay valid for the next run\n",
                   i, points.size());
      if (rstore != nullptr && opt.reuse_tape) rstore->persist_tapes(cache);
      return support::SignalGuard::exit_code();
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto rows = core::sweep_suite(points[i].machine, opt, par);
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::printf("%s", core::format_machine(points[i].machine).c_str());
    std::printf("%s", core::format_figure(points[i].title, rows).c_str());
    const char* mode = !opt.reuse_tape ? "interpreted"
                       : i == 0        ? "recorded"
                                       : "replayed";
    std::printf("(simulated in %.1fs, scheme=%s, %s)\n\n", dt,
                hw::to_string(scheme), mode);
    detail::maybe_write_csv(points[i].title, rows);
  }
  const auto total = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sweep_t0)
                         .count();
  if (points.size() > 1)
    std::printf("axis total: %zu machine points in %.1fs%s\n",
                points.size(), total,
                fopt.reuse_tape ? " (record-once/replay-many)" : "");
  if (rstore != nullptr) {
    std::size_t persisted = 0;
    if (opt.reuse_tape) persisted = rstore->persist_tapes(cache);
    const auto c = rstore->counters();
    // Stats go to stderr so stdout stays byte-identical cold vs warm.
    std::fprintf(stderr,
                 "store: %llu hits, %llu misses (%llu corrupt), %llu cells"
                 " written, %zu tapes persisted -> %s\n",
                 static_cast<unsigned long long>(c.hits),
                 static_cast<unsigned long long>(c.misses),
                 static_cast<unsigned long long>(c.corrupt),
                 static_cast<unsigned long long>(c.writes), persisted,
                 rstore->dir().c_str());
  }
  return 0;
}

/// Single-point figure (Figure 4 and the ablations).
inline int run_figure(const core::MachineConfig& machine,
                      const std::string& title,
                      hw::SchemeKind scheme = hw::SchemeKind::Bypass,
                      const FigureOptions& fopt = {}) {
  return run_figure_sweep({{machine, title}}, scheme, fopt);
}

}  // namespace selcache::bench
