// Table 2: benchmark characteristics under the base configuration —
// instructions executed, L1/L2 miss rates, plus the conflict-miss share the
// text of §4.2 quotes (53–72%).
#include <cstdio>

#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

int main() {
  const core::MachineConfig machine = core::base_machine();
  core::RunOptions opt;
  opt.classify_misses = true;

  TextTable t({"Benchmark", "Category", "Instrs (sim)", "Paper (M, x50)",
               "L1 Miss [%]", "paper", "L2 Miss [%]", "paper",
               "Conflict [%]"});
  for (const auto& w : workloads::all_workloads()) {
    const core::RunResult r =
        core::run_version(w, machine, core::Version::Base, opt);
    t.add_row({w.name, to_string(w.category), TextTable::count(r.instructions),
               TextTable::num(w.paper_instructions_m / 50.0, 2) + "M",
               TextTable::num(100.0 * r.l1_miss_rate),
               TextTable::num(w.paper_l1_miss),
               TextTable::num(100.0 * r.l2_miss_rate),
               TextTable::num(w.paper_l2_miss),
               TextTable::num(100.0 * r.conflict_share)});
  }
  std::printf("== Table 2: benchmark characteristics (base config) ==\n%s\n",
              t.str().c_str());
  std::printf("Workloads are scaled ~1/50 from the paper's instruction "
              "counts; see EXPERIMENTS.md.\n");
  return 0;
}
