// Diagnostic: dump the full counter set for one (workload, version, scheme)
// run. Not part of the paper reproduction — a debugging/verification aid.
//
//   bench_inspect [workload] [version] [scheme]
//   bench_inspect Li PureHardware bypass
#include <cstdio>
#include <cstring>

#include "core/runner.h"

using namespace selcache;

int main(int argc, char** argv) {
  const std::string wname = argc > 1 ? argv[1] : "Li";
  const std::string vname = argc > 2 ? argv[2] : "PureHardware";
  const std::string sname = argc > 3 ? argv[3] : "bypass";

  core::Version v = core::Version::Base;
  if (vname == "PureHardware") v = core::Version::PureHardware;
  else if (vname == "PureSoftware") v = core::Version::PureSoftware;
  else if (vname == "Combined") v = core::Version::Combined;
  else if (vname == "Selective") v = core::Version::Selective;

  core::RunOptions opt;
  opt.scheme = sname == "victim" ? hw::SchemeKind::Victim
                                 : hw::SchemeKind::Bypass;

  const auto& w = workloads::workload(wname);
  const core::RunResult base =
      core::run_version(w, core::base_machine(), core::Version::Base, opt);
  const core::RunResult r =
      core::run_version(w, core::base_machine(), v, opt);

  std::printf("%s / %s / %s: %llu cycles (base %llu, %+.2f%%)\n",
              wname.c_str(), vname.c_str(), sname.c_str(),
              static_cast<unsigned long long>(r.cycles),
              static_cast<unsigned long long>(base.cycles),
              improvement_pct(base.cycles, r.cycles));
  for (const auto& [k, val] : r.stats.all())
    std::printf("  %-32s %llu\n", k.c_str(),
                static_cast<unsigned long long>(val));
  return 0;
}
