// Table 3: average improvements of every version over the Base run, for the
// six machine configurations and both hardware schemes — the paper's summary
// table. Paper values are printed alongside for direct comparison.
#include <chrono>
#include <cstdio>

#include "core/report.h"
#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

namespace {

struct PaperRow {
  const char* name;
  double pure_sw, bypass, comb_bypass, sel_bypass;
  double victim, comb_victim, sel_victim;
};

// Table 3 of the paper, verbatim.
constexpr PaperRow kPaper[] = {
    {"Base Confg.", 16.12, 5.07, 17.37, 24.98, 1.38, 16.45, 23.82},
    {"Higher Mem. Lat.", 15.82, 7.69, 17.66, 26.07, 4.52, 16.24, 24.88},
    {"Larger L2 Size", 14.81, 4.75, 15.79, 22.25, 0.80, 14.05, 20.10},
    {"Larger L1 Size", 17.42, 4.94, 17.04, 24.17, 1.16, 16.45, 22.55},
    {"Higher L2 Asc.", 14.05, 4.82, 15.00, 21.22, 0.92, 13.12, 19.39},
    {"Higher L1 Asc.", 13.96, 3.96, 14.51, 20.93, 2.14, 12.06, 19.21},
};

std::string cell(double measured, double paper) {
  return TextTable::num(measured) + " (" + TextTable::num(paper) + ")";
}

}  // namespace

int main() {
  const auto t0 = std::chrono::steady_clock::now();

  TextTable t({"Experiment", "Pure Software", "Cache Bypass",
               "Combined (byp)", "Selective (byp)", "Victim Caches",
               "Combined (vic)", "Selective (vic)"});

  const auto& machines = core::all_machines();
  for (std::size_t k = 0; k < machines.size(); ++k) {
    core::RunOptions bypass;
    bypass.scheme = hw::SchemeKind::Bypass;
    const auto byp_rows = core::sweep_suite(machines[k], bypass);

    core::RunOptions victim;
    victim.scheme = hw::SchemeKind::Victim;
    const auto vic_rows = core::sweep_suite(machines[k], victim);

    const auto avg = [](const std::vector<core::ImprovementRow>& rows,
                        core::Version v) {
      return core::average_improvement(rows, v);
    };
    const PaperRow& pr = kPaper[k];
    t.add_row({machines[k].name,
               cell(avg(byp_rows, core::Version::PureSoftware), pr.pure_sw),
               cell(avg(byp_rows, core::Version::PureHardware), pr.bypass),
               cell(avg(byp_rows, core::Version::Combined), pr.comb_bypass),
               cell(avg(byp_rows, core::Version::Selective), pr.sel_bypass),
               cell(avg(vic_rows, core::Version::PureHardware), pr.victim),
               cell(avg(vic_rows, core::Version::Combined), pr.comb_victim),
               cell(avg(vic_rows, core::Version::Selective), pr.sel_victim)});
    std::fprintf(stderr, "  [table3] %s done\n", machines[k].name.c_str());
  }

  const auto dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("== Table 3: average improvements, measured (paper) ==\n%s",
              t.str().c_str());
  std::printf("(simulated in %.1fs; every cell averages the 13-benchmark "
              "suite)\n", dt);
  return 0;
}
