// Ablation: sensitivity of the Selective version to the §2.3 method-
// selection threshold. §4.1: "after extensive experimentation ... a
// threshold value of 0.5 was selected ... however, this threshold was not
// so critical, because in all the benchmarks, if a code region contains
// irregular (regular) access, it consists mainly of irregular (regular)
// accesses (between 90% and 100%)".
#include <cstdio>

#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

int main() {
  const double thresholds[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  const core::MachineConfig machine = core::base_machine();

  TextTable t({"Benchmark", "t=0.1", "t=0.3", "t=0.5", "t=0.7", "t=0.9"});
  std::vector<double> sums(5, 0.0);
  for (const auto& w : workloads::all_workloads()) {
    const core::RunResult base =
        core::run_version(w, machine, core::Version::Base);
    std::vector<std::string> row{w.name};
    for (std::size_t k = 0; k < 5; ++k) {
      core::RunOptions opt;
      opt.optimize.threshold = thresholds[k];
      const core::RunResult sel =
          core::run_version(w, machine, core::Version::Selective, opt);
      const double pct = improvement_pct(base.cycles, sel.cycles);
      sums[k] += pct;
      row.push_back(TextTable::num(pct));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg{"AVERAGE"};
  for (double s : sums) avg.push_back(TextTable::num(s / 13.0));
  t.add_row(std::move(avg));

  std::printf("== Ablation: method-selection threshold (Selective, bypass, "
              "base config) ==\n%s"
              "Expected (paper, section 4.1): averages change little across "
              "thresholds\nbecause regions are 90-100%% uniform.\n",
              t.str().c_str());
  return 0;
}
