// Extension figure: cache-size sensitivity curve. Figures 7/9 of the paper
// probe single points (64K, 8-way); this sweep traces the whole curve —
// Selective improvement vs. L1 size for one benchmark of each category —
// showing where the software optimizations saturate and where the hardware
// mechanism stops mattering.
#include <cstdio>

#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

int main() {
  const std::uint64_t sizes[] = {8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024,
                                 128 * 1024};
  TextTable t({"Benchmark", "L1=8K", "L1=16K", "L1=32K", "L1=64K",
               "L1=128K"});

  for (const char* name : {"Perl", "Vpenta", "Chaos"}) {
    const auto& w = workloads::workload(name);
    std::vector<std::string> row{name};
    for (std::uint64_t size : sizes) {
      core::MachineConfig m = core::base_machine();
      m.hierarchy.l1d.size_bytes = size;
      const core::RunResult base =
          core::run_version(w, m, core::Version::Base);
      const core::RunResult sel =
          core::run_version(w, m, core::Version::Selective);
      row.push_back(TextTable::num(improvement_pct(base.cycles, sel.cycles)));
    }
    t.add_row(std::move(row));
  }

  std::printf("== Extension: Selective improvement vs. L1 size (bypass "
              "scheme) ==\n%s"
              "Each cell is %% improvement over that machine's own base run "
              "(one benchmark\nper category: irregular / regular / mixed).\n",
              t.str().c_str());
  return 0;
}
