// Figure 8: L2-associativity axis. The paper's point is 8-way; the sweep
// traces the whole axis via record-once/replay-many tapes.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace selcache;
  const auto fopt = bench::parse_figure_options(argc, argv);
  std::vector<bench::SweepPoint> points;
  for (unsigned ways : {2u, 4u, 8u, 16u}) {
    core::MachineConfig m = core::higher_l2_assoc();
    m.hierarchy.l2.assoc = ways;
    m.name = "L2 " + std::to_string(ways) + "-way";
    points.push_back(
        {m, "Figure 8: L2 associativity " + std::to_string(ways) +
                " (bypass scheme)" + (ways == 8 ? " [paper point]" : "")});
  }
  return bench::run_figure_sweep(std::move(points), hw::SchemeKind::Bypass,
                                 fopt);
}
