// Extension: memory-system energy per version (after the paper's reference
// [2] on energy behavior of memory-resident data). Locality optimization
// saves energy as well as time; the selective scheme keeps the savings of
// both worlds.
#include <cstdio>

#include "core/energy.h"
#include "core/runner.h"
#include "support/table.h"

using namespace selcache;

int main() {
  const core::MachineConfig machine = core::base_machine();
  TextTable t({"Benchmark", "Version", "L1 [uJ]", "L2 [uJ]", "Mem [uJ]",
               "Total [uJ]", "vs Base [%]"});

  for (const char* name : {"Perl", "Vpenta", "Chaos", "TPC-D,Q1"}) {
    const auto& w = workloads::workload(name);
    const core::RunResult base =
        core::run_version(w, machine, core::Version::Base);
    const double base_total = core::estimate_energy(base.stats).total();
    const auto add = [&](const char* vname, const core::RunResult& r) {
      const core::EnergyBreakdown e = core::estimate_energy(r.stats);
      t.add_row({name, vname, TextTable::num(e.l1 / 1000.0),
                 TextTable::num(e.l2 / 1000.0),
                 TextTable::num(e.memory / 1000.0),
                 TextTable::num(e.total() / 1000.0),
                 TextTable::num(100.0 * (base_total - e.total()) /
                                base_total)});
    };
    add("Base", base);
    for (core::Version v : core::kEvaluatedVersions)
      add(to_string(v), core::run_version(w, machine, v));
  }

  std::printf("== Extension: memory-system energy per version (base "
              "config, bypass scheme) ==\n%s"
              "Costs are first-order per-event estimates (core/energy.h); "
              "relative\ncomparisons are the point, not absolute joules.\n",
              t.str().c_str());
  return 0;
}
