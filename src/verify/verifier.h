// Entry points tying the three analyzer families together and wiring them
// into the transform pipeline.
//
// Two usage modes:
//
//   * Post-hoc: run verify_program() on any (possibly optimized) Program,
//     optionally with the TransformLog the pipeline recorded, and inspect
//     the Report.
//
//   * In-pipeline: call enable_pipeline_verification() on the
//     OptimizeOptions before optimize_program(); the pipeline then records
//     every transform into the given log and re-runs the structural and
//     marker verifiers after every stage (region marking, fusion, the
//     per-band loop transforms, layout selection, marker elimination), so a
//     broken intermediate state is caught at the stage that introduced it.
#pragma once

#include "transform/pipeline.h"
#include "verify/diagnostics.h"
#include "verify/legality.h"
#include "verify/markers.h"
#include "verify/structural.h"

namespace selcache::verify {

struct VerifyOptions {
  MarkerCheckOptions markers{};
};

/// Run structural + marker + legality analyzers over `p`. `log` may be
/// null: the legality family then only certifies hoisted statements.
/// Returns the number of diagnostics added.
std::size_t verify_program(const ir::Program& p,
                           const transform::TransformLog* log, Report& report,
                           const VerifyOptions& opt = {});

/// Arm `opt` so optimize_program() records transforms into `log` and
/// re-verifies IR invariants after each stage, reporting into `report`
/// with pass labels "after:<stage>". Both `log` and `report` must outlive
/// every optimize_program() call using `opt`.
void enable_pipeline_verification(transform::OptimizeOptions& opt,
                                  transform::TransformLog& log,
                                  Report& report);

}  // namespace selcache::verify
