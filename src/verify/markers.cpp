#include "verify/markers.h"

#include "analysis/marker_elimination.h"

namespace selcache::verify {

using analysis::HwState;
using analysis::meet;
using ir::LoopNode;
using ir::Node;
using ir::NodeKind;
using ir::ToggleNode;

namespace {

/// Abstract execution: entry state -> exit state (no diagnostics). Mirrors
/// the dataflow of analysis::eliminate_redundant_markers.
HwState simulate(const std::vector<std::unique_ptr<Node>>& body, HwState in) {
  for (const auto& n : body) {
    switch (n->kind) {
      case NodeKind::Toggle:
        in = static_cast<const ToggleNode&>(*n).on ? HwState::On
                                                   : HwState::Off;
        break;
      case NodeKind::Loop: {
        const auto& loop = static_cast<const LoopNode&>(*n);
        const HwState body_in = meet(in, simulate(loop.body, in));
        in = meet(in, simulate(loop.body, body_in));
        break;
      }
      case NodeKind::Stmt:
        break;
    }
  }
  return in;
}

struct MarkerWalk {
  const ir::Program& p;
  Report& r;
  MarkerCheckOptions opt;
  LocationStack loc;
  std::size_t added = 0;

  void diag(Severity s, const char* rule, std::string msg) {
    r.add(s, rule, loc.str(), std::move(msg));
    ++added;
  }

  HwState check_scope(const std::vector<std::unique_ptr<Node>>& body,
                      HwState in) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      const Node& n = *body[i];
      switch (n.kind) {
        case NodeKind::Toggle: {
          const bool on = static_cast<const ToggleNode&>(n).on;
          if (opt.expect_minimal && i + 1 < body.size() &&
              body[i + 1]->kind == NodeKind::Toggle)
            diag(Severity::Warning, "MK-REDUNDANT",
                 "adjacent toggle pair should have been eliminated");
          const HwState target = on ? HwState::On : HwState::Off;
          if (in == target)
            diag(Severity::Error, on ? "MK-DOUBLE-ON" : "MK-DOUBLE-OFF",
                 on ? "activate while the mechanism is already active"
                    : "deactivate while the mechanism is already inactive");
          in = target;
          break;
        }
        case NodeKind::Loop: {
          const auto& loop = static_cast<const LoopNode&>(n);
          const std::string name = loop.var < p.var_names().size()
                                       ? p.var_names()[loop.var]
                                       : "#" + std::to_string(loop.var);
          loc.push("loop " + name);
          const HwState one_pass = simulate(loop.body, in);
          if (in != HwState::Unknown && one_pass != HwState::Unknown &&
              one_pass != in)
            diag(Severity::Error, "MK-LOOP-UNBALANCED",
                 "loop body enters with the mechanism " +
                     std::string(in == HwState::On ? "active" : "inactive") +
                     " but exits with it " +
                     (one_pass == HwState::On ? "active" : "inactive") +
                     " — the back edge re-enters in the wrong mode");
          const HwState body_in = meet(in, one_pass);
          const HwState exit = check_scope(loop.body, body_in);
          in = meet(in, exit);
          loc.pop();
          break;
        }
        case NodeKind::Stmt:
          break;
      }
    }
    return in;
  }
};

}  // namespace

std::size_t verify_markers(const ir::Program& p, Report& r,
                           const MarkerCheckOptions& opt) {
  MarkerWalk walk{p, r, opt, {}, 0};
  // The machine starts with the mechanism off (region-detection contract).
  const HwState final_state = walk.check_scope(p.top(), HwState::Off);
  if (final_state == HwState::On)
    walk.diag(Severity::Error, "MK-UNCLOSED",
              "program exits with the mechanism active (unmatched activate)");
  else if (final_state == HwState::Unknown)
    walk.diag(Severity::Warning, "MK-UNCLOSED",
              "program may exit with the mechanism active on some path");
  return walk.added;
}

}  // namespace selcache::verify
