#include "verify/verifier.h"

#include <cstring>

namespace selcache::verify {

std::size_t verify_program(const ir::Program& p,
                           const transform::TransformLog* log, Report& report,
                           const VerifyOptions& opt) {
  std::size_t added = 0;
  report.set_pass("structural");
  added += verify_structure(p, report);
  report.set_pass("markers");
  added += verify_markers(p, report, opt.markers);
  report.set_pass("legality");
  static const transform::TransformLog kEmptyLog;
  added += verify_legality(p, log != nullptr ? *log : kEmptyLog, report);
  return added;
}

void enable_pipeline_verification(transform::OptimizeOptions& opt,
                                  transform::TransformLog& log,
                                  Report& report) {
  opt.log = &log;
  opt.after_stage = [&report](const char* stage, const ir::Program& p) {
    report.set_pass(std::string("after:") + stage);
    verify_structure(p, report);
    // Redundant adjacent pairs are only a defect once the elimination pass
    // has run (the final "markers" stage); earlier stages see the raw
    // insertion output.
    MarkerCheckOptions mk;
    mk.expect_minimal = std::strcmp(stage, "markers") == 0;
    verify_markers(p, report, mk);
  };
}

}  // namespace selcache::verify
