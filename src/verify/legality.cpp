#include "verify/legality.h"

#include <algorithm>
#include <optional>

#include "analysis/dependence.h"

namespace selcache::verify {

using ir::LoopNode;
using ir::Node;
using ir::NodeKind;
using ir::Reference;
using ir::StmtNode;
using transform::TransformKind;
using transform::TransformRecord;

namespace {

/// The perfectly nested chain of loops from `root` inward (root first).
std::vector<const LoopNode*> const_band(const LoopNode& root) {
  std::vector<const LoopNode*> band{&root};
  const LoopNode* cur = &root;
  while (cur->body.size() == 1 && cur->body[0]->kind == NodeKind::Loop) {
    cur = static_cast<const LoopNode*>(cur->body[0].get());
    band.push_back(cur);
  }
  return band;
}

std::optional<std::int64_t> const_trip(const LoopNode& l) {
  if (!l.lower.is_constant() || !l.upper.is_constant() || l.step <= 0)
    return std::nullopt;
  const std::int64_t span = l.upper.constant_term() - l.lower.constant_term();
  return span <= 0 ? std::nullopt
                   : std::optional((span + l.step - 1) / l.step);
}

/// Oriented cross-loop alias solver for fusion certification, derived
/// directly from the subscript equations (independent of the transform's own
/// guard). For affine, uniformly generated single-variable subscripts it
/// solves c*t_a + k_a = c*t_b + k_b for the iteration offset d = t_b - t_a.
/// d < 0 means the consuming iteration of the second loop would run before
/// its producer once the bodies interleave — fusion was illegal.
struct OrientedAlias {
  bool analyzable = false;
  std::optional<std::int64_t> offset;  // engaged iff the refs can alias
};

OrientedAlias oriented_alias(const Reference& x, ir::VarId va,
                             const Reference& y, ir::VarId vb) {
  OrientedAlias out;
  const auto* ax = std::get_if<Reference::Array>(&x.target);
  const auto* ay = std::get_if<Reference::Array>(&y.target);
  if (ax == nullptr || ay == nullptr) return out;
  if (ax->id != ay->id) {
    out.analyzable = true;
    return out;
  }
  if (ax->subs.size() != ay->subs.size()) return out;

  std::optional<std::int64_t> d;
  for (std::size_t k = 0; k < ax->subs.size(); ++k) {
    const auto* sx = std::get_if<ir::Subscript::Affine>(&ax->subs[k].value);
    const auto* sy = std::get_if<ir::Subscript::Affine>(&ay->subs[k].value);
    if (sx == nullptr || sy == nullptr) return out;
    for (const auto& [v, c] : sx->expr.coeffs())
      if (v != va && c != 0) return out;
    for (const auto& [v, c] : sy->expr.coeffs())
      if (v != vb && c != 0) return out;
    const std::int64_t cx = sx->expr.coeff(va);
    if (cx != sy->expr.coeff(vb)) return out;
    const std::int64_t delta =
        sx->expr.constant_term() - sy->expr.constant_term();
    if (cx == 0) {
      if (delta != 0) {
        out.analyzable = true;
        return out;  // distinct constant planes: no alias
      }
      continue;
    }
    if (delta % cx != 0) {
      out.analyzable = true;
      return out;  // no integral iteration pair
    }
    const std::int64_t dk = delta / cx;
    if (d.has_value() && *d != dk) {
      out.analyzable = true;
      return out;  // dimensions demand different offsets: no alias
    }
    d = dk;
  }
  out.analyzable = true;
  out.offset = d.value_or(0);
  return out;
}

struct LegalityLint {
  const ir::Program& p;
  Report& r;
  std::size_t added = 0;

  void diag(const char* rule, const std::string& site, std::string msg) {
    r.add(Severity::Error, rule, site, std::move(msg));
    ++added;
  }

  std::string var_name(ir::VarId v) const {
    return v < p.var_names().size() ? p.var_names()[v]
                                    : "#" + std::to_string(v);
  }

  const LoopNode* record_loop(const TransformRecord& rec, const Node* n) {
    if (n == nullptr || n->kind != NodeKind::Loop) {
      diag("TL-RECORD", rec.site, "transform record carries no pre-image loop");
      return nullptr;
    }
    return static_cast<const LoopNode*>(n);
  }

  void check_interchange(const TransformRecord& rec) {
    const LoopNode* pre = record_loop(rec, rec.pre_image.get());
    if (pre == nullptr) return;
    const auto band = const_band(*pre);
    if (rec.perm.size() != band.size() ||
        rec.band_vars.size() != band.size()) {
      diag("TL-RECORD", rec.site,
           "interchange record arity mismatch: band has " +
               std::to_string(band.size()) + " loops, permutation has " +
               std::to_string(rec.perm.size()));
      return;
    }
    std::vector<bool> seen(band.size(), false);
    for (std::size_t k : rec.perm) {
      if (k >= band.size() || seen[k]) {
        diag("TL-RECORD", rec.site, "recorded permutation is not a bijection");
        return;
      }
      seen[k] = true;
    }
    const auto deps = analysis::collect_dependences(*pre, rec.band_vars);
    if (!analysis::permutation_legal(deps, rec.perm))
      diag("TL-INTERCHANGE", rec.site,
           deps.unknown
               ? "band contains unanalyzable dependences; only the identity "
                 "order was legal"
               : "recorded permutation makes a dependence vector "
                 "lexicographically negative");
  }

  void check_tiling(const TransformRecord& rec) {
    const LoopNode* pre = record_loop(rec, rec.pre_image.get());
    if (pre == nullptr) return;
    const auto band = const_band(*pre);
    if (band.size() < 2) {
      diag("TL-RECORD", rec.site, "tiling pre-image is not a loop pair");
      return;
    }
    std::vector<ir::VarId> vars;
    vars.reserve(band.size());
    for (const auto* l : band) vars.push_back(l->var);
    const auto deps = analysis::collect_dependences(*pre, vars);
    if (deps.unknown) {
      diag("TL-TILE", rec.site,
           "tiled band contains unanalyzable dependences");
    } else {
      for (const auto& dep : deps.deps)
        if (dep.distance[0] < 0 || dep.distance[1] < 0) {
          diag("TL-TILE", rec.site,
               "tiled loop pair is not fully permutable (distance " +
                   std::to_string(dep.distance[0]) + ", " +
                   std::to_string(dep.distance[1]) + ")");
          break;
        }
    }
    const auto t0 = const_trip(*band[0]);
    const auto t1 = const_trip(*band[1]);
    if (rec.tile_outer > 0 && t0 && *t0 % rec.tile_outer != 0)
      diag("TL-TILE", rec.site,
           "outer tile size " + std::to_string(rec.tile_outer) +
               " does not divide trip count " + std::to_string(*t0));
    if (rec.tile_inner > 0 && t1 && *t1 % rec.tile_inner != 0)
      diag("TL-TILE", rec.site,
           "inner tile size " + std::to_string(rec.tile_inner) +
               " does not divide trip count " + std::to_string(*t1));
  }

  void check_unroll_jam(const TransformRecord& rec) {
    const LoopNode* pre = record_loop(rec, rec.pre_image.get());
    if (pre == nullptr) return;
    const auto band = const_band(*pre);
    if (band.size() < 2 || rec.factor < 2) {
      diag("TL-RECORD", rec.site, "unroll-jam record needs a loop pair and "
                                  "a factor >= 2");
      return;
    }
    const LoopNode& outer = *band[band.size() - 2];
    const LoopNode& inner = *band[band.size() - 1];
    const std::vector<ir::VarId> vars{outer.var, inner.var};
    const auto deps = analysis::collect_dependences(outer, vars);
    if (deps.unknown) {
      diag("TL-UNROLL", rec.site,
           "unroll-jammed pair contains unanalyzable dependences");
    } else {
      for (const auto& dep : deps.deps)
        if (dep.distance[0] < 0 || dep.distance[1] < 0) {
          diag("TL-UNROLL", rec.site,
               "unroll-jammed pair is not fully permutable (distance " +
                   std::to_string(dep.distance[0]) + ", " +
                   std::to_string(dep.distance[1]) + ")");
          break;
        }
    }
    const auto trips = const_trip(outer);
    if (!trips || *trips % rec.factor != 0)
      diag("TL-UNROLL-DIV", rec.site,
           "factor " + std::to_string(rec.factor) +
               " does not divide the unrolled loop's trip count" +
               (trips ? " " + std::to_string(*trips) : " (non-constant)"));
  }

  void check_fusion(const TransformRecord& rec) {
    const LoopNode* a = record_loop(rec, rec.pre_image.get());
    const LoopNode* b = record_loop(rec, rec.pre_image_b.get());
    if (a == nullptr || b == nullptr) return;
    if (!a->lower.is_constant() || !a->upper.is_constant() ||
        !b->lower.is_constant() || !b->upper.is_constant() ||
        a->lower.constant_term() != b->lower.constant_term() ||
        a->upper.constant_term() != b->upper.constant_term() ||
        a->step != b->step) {
      diag("TL-FUSE-BOUNDS", rec.site,
           "fused loops did not share constant bounds and step");
      return;
    }
    std::vector<const Reference*> ra, rb;
    ir::collect_refs(*a, ra);
    ir::collect_refs(*b, rb);
    for (const auto* x : ra) {
      for (const auto* y : rb) {
        if (!x->is_write && !y->is_write) continue;
        if (x->is_pointer() || y->is_pointer() || x->is_field() ||
            y->is_field()) {
          diag("TL-FUSION", rec.site,
               "fused bodies share an opaque (pointer/field) reference pair");
          return;
        }
        if (x->is_scalar() || y->is_scalar()) {
          if (x->is_scalar() && y->is_scalar() &&
              std::get<Reference::Scalar>(x->target).id ==
                  std::get<Reference::Scalar>(y->target).id) {
            const auto id = std::get<Reference::Scalar>(x->target).id;
            const std::string name = id < p.scalars().size()
                                         ? p.scalars()[id].name
                                         : "#" + std::to_string(id);
            diag("TL-FUSION", rec.site,
                 "scalar '" + name +
                     "' carries a value across the fused loop boundary");
            return;
          }
          continue;
        }
        const OrientedAlias oa = oriented_alias(*x, a->var, *y, b->var);
        if (!oa.analyzable) {
          diag("TL-FUSION", rec.site,
               "unanalyzable cross-loop reference pair on a shared array");
          return;
        }
        if (oa.offset.has_value() && *oa.offset < 0) {
          diag("TL-FUSION", rec.site,
               "backward cross-loop dependence (offset " +
                   std::to_string(*oa.offset) +
                   "): the second body consumes a value its producer has "
                   "not yet written");
          return;
        }
      }
    }
  }

  /// Certify hoisted prologue/epilogue statements: a reference hoisted out
  /// of a loop must not use that loop's induction variable.
  void check_hoists(const std::vector<std::unique_ptr<Node>>& body,
                    LocationStack& loc) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (body[i]->kind == NodeKind::Loop) {
        const auto& loop = static_cast<const LoopNode&>(*body[i]);
        loc.push("loop " + var_name(loop.var));
        check_hoists(loop.body, loc);
        loc.pop();
        continue;
      }
      if (body[i]->kind != NodeKind::Stmt) continue;
      const auto& stmt = static_cast<const StmtNode&>(*body[i]).stmt;
      const LoopNode* hoisted_from = nullptr;
      if (stmt.label == "hoist_pre" && i + 1 < body.size() &&
          body[i + 1]->kind == NodeKind::Loop)
        hoisted_from = static_cast<const LoopNode*>(body[i + 1].get());
      else if (stmt.label == "hoist_post" && i > 0 &&
               body[i - 1]->kind == NodeKind::Loop)
        hoisted_from = static_cast<const LoopNode*>(body[i - 1].get());
      if (hoisted_from == nullptr) continue;
      for (const auto& ref : stmt.refs)
        if (ref.uses(hoisted_from->var)) {
          loc.push("stmt '" + stmt.label + "'");
          diag("TL-HOIST", loc.str(),
               "hoisted reference still uses loop variable '" +
                   var_name(hoisted_from->var) + "'");
          loc.pop();
          break;
        }
    }
  }
};

}  // namespace

std::size_t verify_legality(const ir::Program& p,
                            const transform::TransformLog& log, Report& r) {
  LegalityLint lint{p, r, 0};
  for (const auto& rec : log.records) {
    switch (rec.kind) {
      case TransformKind::Interchange: lint.check_interchange(rec); break;
      case TransformKind::Tiling: lint.check_tiling(rec); break;
      case TransformKind::UnrollJam: lint.check_unroll_jam(rec); break;
      case TransformKind::Fusion: lint.check_fusion(rec); break;
    }
  }
  LocationStack loc;
  lint.check_hoists(p.top(), loc);
  return lint.added;
}

}  // namespace selcache::verify
