// IR structural verifier (analyzer family SV-*).
//
// Checks that a Program is well-formed independent of how it was produced:
// loop headers are sane (positive step, declared induction variable, no
// shadowing, bounds closed over enclosing variables), every reference names
// a declared array/scalar/pool with subscript arity matching the array rank,
// subscripts are closed over the enclosing loop variables, and statements
// respect an SSA-ish single-definition discipline for scalars (at most one
// store to a given scalar per statement — the form scalar replacement and
// the workload builders emit).
//
// Rules (E = error, W = warning):
//   SV-LOOP-VAR         E  induction variable not declared in the program
//   SV-LOOP-SHADOW      E  induction variable rebinds an enclosing loop's
//   SV-LOOP-STEP        E  non-positive loop step
//   SV-BOUND-VAR        E  loop bound references a variable not in scope
//   SV-LOOP-EMPTY       W  loop with an empty body
//   SV-TRIP-ZERO        W  constant bounds with upper <= lower
//   SV-REF-ARRAY        E  reference to an undeclared array
//   SV-REF-SCALAR       E  reference to an undeclared scalar
//   SV-REF-POOL         E  reference to an undeclared pool
//   SV-SUB-RANK         E  subscript count != declared array rank
//   SV-SUB-VAR          E  subscript references a variable not in scope
//   SV-SUB-INDEX-ARRAY  E  indexed subscript names an undeclared index array
//   SV-SCALAR-MULTIDEF  E  two stores to the same scalar in one statement
//   SV-STMT-EMPTY       W  statement with no references and no compute ops
#pragma once

#include "ir/program.h"
#include "verify/diagnostics.h"

namespace selcache::verify {

/// Run all structural rules over `p`. Returns the number of diagnostics
/// added to `r` (all severities).
std::size_t verify_structure(const ir::Program& p, Report& r);

}  // namespace selcache::verify
