// Marker / region checker (analyzer family MK-*).
//
// Certifies the activate/deactivate (ON/OFF) instrumentation produced by
// analysis/region_detection and cleaned by analysis/marker_elimination: the
// program starts in software mode, every activate is eventually matched by a
// deactivate, no toggle re-asserts the state already in force, and no loop
// body changes the hardware state across an iteration (the back edge would
// re-enter in the wrong mode). With `expect_minimal` (the state after
// redundant-marker elimination) adjacent toggle pairs — which the
// elimination pass is guaranteed to remove — are also flagged.
//
// Rules (E = error, W = warning):
//   MK-DOUBLE-ON         E  activate while the mechanism is already active
//   MK-DOUBLE-OFF        E  deactivate while already inactive
//   MK-UNCLOSED          E  program exits with the mechanism active
//   MK-LOOP-UNBALANCED   E  loop body entry/exit hardware states differ
//   MK-REDUNDANT         W  adjacent toggle pair survived elimination
#pragma once

#include "ir/program.h"
#include "verify/diagnostics.h"

namespace selcache::verify {

struct MarkerCheckOptions {
  /// The program has been through redundant-marker elimination; adjacent
  /// toggle pairs are then reported as MK-REDUNDANT. Disable when verifying
  /// between insertion and elimination (pipeline after-stage hooks).
  bool expect_minimal = true;
};

/// Run all marker rules over `p`. Returns the number of diagnostics added.
std::size_t verify_markers(const ir::Program& p, Report& r,
                           const MarkerCheckOptions& opt = {});

}  // namespace selcache::verify
