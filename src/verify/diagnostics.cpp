#include "verify/diagnostics.h"

#include <sstream>

#include "support/table.h"

namespace selcache::verify {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

void Report::add(Diagnostic d) {
  if (d.pass.empty()) d.pass = pass_;
  diags_.push_back(std::move(d));
}

void Report::add(Severity s, std::string rule, std::string location,
                 std::string message) {
  Diagnostic d;
  d.severity = s;
  d.rule = std::move(rule);
  d.pass = pass_;
  d.location = std::move(location);
  d.message = std::move(message);
  diags_.push_back(std::move(d));
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == s) ++n;
  return n;
}

std::string Report::str() const {
  if (diags_.empty()) return "no diagnostics\n";
  TextTable t({"severity", "rule", "pass", "location", "message"});
  for (const auto& d : diags_)
    t.add_row({to_string(d.severity), d.rule, d.pass, d.location, d.message});
  return t.str();
}

std::string Report::csv() const {
  std::ostringstream os;
  os << "severity,rule,pass,location,message\n";
  for (const auto& d : diags_)
    os << to_string(d.severity) << ',' << csv_field(d.rule) << ','
       << csv_field(d.pass) << ',' << csv_field(d.location) << ','
       << csv_field(d.message) << '\n';
  return os.str();
}

std::string LocationStack::str() const {
  std::string out;
  for (const auto& s : segments_) {
    if (!out.empty()) out += '/';
    out += s;
  }
  return out.empty() ? "<top>" : out;
}

}  // namespace selcache::verify
