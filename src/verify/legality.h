// Transformation-legality linter (analyzer family TL-*).
//
// Re-derives, from first principles, whether each transformation the
// pipeline recorded in a TransformLog was legal: the dependence analysis is
// re-run on the recorded pre-image and the recorded parameters (permutation,
// tile pair, unroll factor) are checked against it. This intentionally does
// not reuse the transforms' own legality guards — the point is an
// independent certificate, the way polyhedral frameworks gate transforms on
// a separate dependence-preservation check.
//
// Scalar replacement leaves no pre-image; its hoisted prologue/epilogue
// statements ("hoist_pre"/"hoist_post") are instead certified structurally:
// a hoisted reference must be invariant in the loop it was hoisted out of.
//
// Rules (all errors):
//   TL-INTERCHANGE   recorded permutation violates a pre-image dependence
//   TL-TILE          tiled loop pair was not fully permutable
//   TL-UNROLL        unroll-jammed pair was not fully permutable
//   TL-UNROLL-DIV    unroll factor does not divide the pre-image trip count
//   TL-FUSION        fused bodies carry a backward cross-loop dependence
//   TL-FUSE-BOUNDS   fused loops had different bounds or steps
//   TL-HOIST         hoisted reference uses the hoisted-out loop's variable
//   TL-RECORD        malformed transform record (internal consistency)
#pragma once

#include "ir/program.h"
#include "transform/transform_log.h"
#include "verify/diagnostics.h"

namespace selcache::verify {

/// Certify every record in `log` against its pre-image and check the
/// hoisted statements of `p`. Returns the number of diagnostics added.
std::size_t verify_legality(const ir::Program& p,
                            const transform::TransformLog& log, Report& r);

}  // namespace selcache::verify
