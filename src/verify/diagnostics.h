// Diagnostics for the static verification subsystem.
//
// Every analyzer reports findings as Diagnostic records carrying a severity,
// a stable rule ID (the taxonomy is documented in DESIGN.md §"Static
// verification"), the pipeline pass that produced the IR under scrutiny, and
// an IR location path such as "loop j/loop i/stmt 'update'". A Report
// collects diagnostics across analyzers and renders them as an aligned text
// table or CSV (same support-layer formatting the bench harness uses).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace selcache::verify {

enum class Severity { Note, Warning, Error };

const char* to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string rule;      ///< stable rule ID, e.g. "SV-SUB-RANK"
  std::string pass;      ///< producing context, e.g. "structural" or "after:fusion"
  std::string location;  ///< IR path, e.g. "loop j/loop i/stmt 'update'"
  std::string message;
};

class Report {
 public:
  /// Context label stamped on subsequently added diagnostics (the analyzer
  /// or pipeline stage being verified).
  void set_pass(std::string pass) { pass_ = std::move(pass); }
  const std::string& pass() const { return pass_; }

  void add(Diagnostic d);
  void add(Severity s, std::string rule, std::string location,
           std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::Error); }
  std::size_t warnings() const { return count(Severity::Warning); }
  bool empty() const { return diags_.empty(); }
  /// No errors (warnings/notes do not fail verification).
  bool ok() const { return errors() == 0; }

  /// Aligned text table (severity | rule | pass | location | message).
  std::string str() const;
  /// CSV with a header row; fields containing separators are quoted.
  std::string csv() const;

 private:
  std::string pass_;
  std::vector<Diagnostic> diags_;
};

/// Builds "loop i/stmt 'update'"-style IR paths while an analyzer walks the
/// tree. push/pop segments around each scope; str() joins with '/'.
class LocationStack {
 public:
  void push(std::string segment) { segments_.push_back(std::move(segment)); }
  void pop() { segments_.pop_back(); }
  std::string str() const;

 private:
  std::vector<std::string> segments_;
};

}  // namespace selcache::verify
