#include "verify/structural.h"

#include <functional>
#include <set>

namespace selcache::verify {

using ir::AffineExpr;
using ir::LoopNode;
using ir::Node;
using ir::NodeKind;
using ir::Program;
using ir::Reference;
using ir::StmtNode;
using ir::Subscript;

namespace {

struct StructuralWalk {
  const Program& p;
  Report& r;
  LocationStack loc;
  /// Variables bound by the enclosing loops, in nesting order.
  std::vector<ir::VarId> scope;
  std::size_t added = 0;

  void diag(Severity s, const char* rule, std::string msg) {
    r.add(s, rule, loc.str(), std::move(msg));
    ++added;
  }

  bool in_scope(ir::VarId v) const {
    for (ir::VarId s : scope)
      if (s == v) return true;
    return false;
  }

  std::string var_name(ir::VarId v) const {
    if (v < p.var_names().size()) return p.var_names()[v];
    return "<var#" + std::to_string(v) + ">";
  }

  /// Every variable an affine expression mentions must be bound by an
  /// enclosing loop.
  void check_expr_closed(const AffineExpr& e, const char* rule,
                         const std::string& what) {
    for (const auto& [v, c] : e.coeffs()) {
      if (c == 0) continue;
      if (v >= p.var_names().size()) {
        diag(Severity::Error, rule,
             what + " references undeclared variable #" + std::to_string(v));
      } else if (!in_scope(v)) {
        diag(Severity::Error, rule,
             what + " references variable '" + var_name(v) +
                 "' not bound by any enclosing loop");
      }
    }
  }

  void check_subscript(const Subscript& sub, std::size_t dim) {
    const std::string what = "subscript #" + std::to_string(dim);
    std::visit(
        [&](const auto& s) {
          using T = std::decay_t<decltype(s)>;
          if constexpr (std::is_same_v<T, Subscript::Affine>) {
            check_expr_closed(s.expr, "SV-SUB-VAR", what);
          } else if constexpr (std::is_same_v<T, Subscript::Product> ||
                               std::is_same_v<T, Subscript::Divide>) {
            check_expr_closed(s.lhs, "SV-SUB-VAR", what);
            check_expr_closed(s.rhs, "SV-SUB-VAR", what);
          } else {  // Indexed
            if (s.index_array >= p.arrays().size())
              diag(Severity::Error, "SV-SUB-INDEX-ARRAY",
                   what + " indexes through undeclared array #" +
                       std::to_string(s.index_array));
            check_expr_closed(s.index, "SV-SUB-VAR", what);
          }
        },
        sub.value);
  }

  void check_reference(const Reference& ref) {
    std::visit(
        [&](const auto& t) {
          using T = std::decay_t<decltype(t)>;
          if constexpr (std::is_same_v<T, Reference::Scalar>) {
            if (t.id >= p.scalars().size())
              diag(Severity::Error, "SV-REF-SCALAR",
                   "reference to undeclared scalar #" + std::to_string(t.id));
          } else if constexpr (std::is_same_v<T, Reference::Array>) {
            if (t.id >= p.arrays().size()) {
              diag(Severity::Error, "SV-REF-ARRAY",
                   "reference to undeclared array #" + std::to_string(t.id));
            } else if (t.subs.size() != p.array(t.id).dims.size()) {
              diag(Severity::Error, "SV-SUB-RANK",
                   "array '" + p.array(t.id).name + "' has rank " +
                       std::to_string(p.array(t.id).dims.size()) +
                       " but is subscripted with " +
                       std::to_string(t.subs.size()) + " dimension(s)");
            }
            for (std::size_t d = 0; d < t.subs.size(); ++d)
              check_subscript(t.subs[d], d);
          } else if constexpr (std::is_same_v<T, Reference::Pointer>) {
            if (t.pool >= p.pools().size())
              diag(Severity::Error, "SV-REF-POOL",
                   "pointer chase through undeclared pool #" +
                       std::to_string(t.pool));
          } else {  // Field
            if (t.pool >= p.pools().size())
              diag(Severity::Error, "SV-REF-POOL",
                   "field access into undeclared pool #" +
                       std::to_string(t.pool));
            check_subscript(t.element, 0);
          }
        },
        ref.target);
  }

  void check_stmt(const StmtNode& sn) {
    const ir::Stmt& stmt = sn.stmt;
    loc.push(stmt.label.empty() ? "stmt" : "stmt '" + stmt.label + "'");
    if (stmt.refs.empty() && stmt.compute_ops == 0)
      diag(Severity::Warning, "SV-STMT-EMPTY",
           "statement has no references and no compute ops");
    std::set<ir::ScalarId> written;
    for (const auto& ref : stmt.refs) {
      check_reference(ref);
      if (ref.is_write && ref.is_scalar()) {
        const auto id = std::get<Reference::Scalar>(ref.target).id;
        if (!written.insert(id).second)
          diag(Severity::Error, "SV-SCALAR-MULTIDEF",
               "scalar '" +
                   (id < p.scalars().size() ? p.scalars()[id].name
                                            : "#" + std::to_string(id)) +
                   "' is defined more than once in a single statement");
      }
    }
    loc.pop();
  }

  void check_loop(const LoopNode& loop) {
    loc.push("loop " + var_name(loop.var));
    if (loop.var == ir::kInvalidVar || loop.var >= p.var_names().size())
      diag(Severity::Error, "SV-LOOP-VAR",
           "loop induction variable #" + std::to_string(loop.var) +
               " is not declared");
    else if (in_scope(loop.var))
      diag(Severity::Error, "SV-LOOP-SHADOW",
           "induction variable '" + var_name(loop.var) +
               "' rebinds an enclosing loop's variable");
    if (loop.step <= 0)
      diag(Severity::Error, "SV-LOOP-STEP",
           "loop step " + std::to_string(loop.step) + " must be positive");
    check_expr_closed(loop.lower, "SV-BOUND-VAR", "lower bound");
    check_expr_closed(loop.upper, "SV-BOUND-VAR", "upper bound");
    if (loop.lower.is_constant() && loop.upper.is_constant() &&
        loop.upper.constant_term() <= loop.lower.constant_term())
      diag(Severity::Warning, "SV-TRIP-ZERO",
           "constant bounds [" + std::to_string(loop.lower.constant_term()) +
               ", " + std::to_string(loop.upper.constant_term()) +
               ") give a zero-trip loop");
    if (loop.body.empty())
      diag(Severity::Warning, "SV-LOOP-EMPTY", "loop body is empty");

    scope.push_back(loop.var);
    walk(loop.body);
    scope.pop_back();
    loc.pop();
  }

  void walk(const std::vector<std::unique_ptr<Node>>& body) {
    for (const auto& n : body) {
      switch (n->kind) {
        case NodeKind::Loop:
          check_loop(static_cast<const LoopNode&>(*n));
          break;
        case NodeKind::Stmt:
          check_stmt(static_cast<const StmtNode&>(*n));
          break;
        case NodeKind::Toggle:
          break;  // marker analyzer's territory
      }
    }
  }
};

}  // namespace

std::size_t verify_structure(const Program& p, Report& r) {
  StructuralWalk walk{p, r, {}, {}, 0};
  walk.walk(p.top());
  return walk.added;
}

}  // namespace selcache::verify
