#include "trace/timeline.h"

#include <cstdio>

#include "support/table.h"

namespace selcache::trace {

std::vector<TimelineRow> build_timeline(const Recording& rec) {
  std::vector<TimelineRow> rows;
  rows.reserve(rec.epochs.size());

  // Region / ON-OFF state is carried forward across epochs; events are in
  // emission order, each stamped with the epoch it fell into.
  std::size_t cursor = 0;
  std::int32_t region = -1;
  bool hw_on = false;

  for (const EpochRecord& er : rec.epochs) {
    TimelineRow row;
    row.epoch = er.index;
    row.start_access = er.start_access;
    row.end_access = er.end_access;
    row.l1d_hits = er.deltas.get("l1d.hits");
    row.l1d_misses = er.deltas.get("l1d.misses");
    row.l1d_fills = er.deltas.get("l1d.fills");
    row.bypasses = er.deltas.get("bypass.bypasses");
    row.mat_decays = er.deltas.get("mat.decays");
    row.promotions =
        er.deltas.get("victim_l1.hits") + er.deltas.get("victim_l2.hits");

    for (; cursor < rec.events.size() && rec.events[cursor].epoch <= er.index;
         ++cursor) {
      const Event& e = rec.events[cursor];
      if (e.kind == EventKind::Degradation) {
        // Safe-mode demotion: the hardware is off from here on, whatever
        // later markers say (the controller ignores them once degraded).
        hw_on = false;
        region = -1;
        continue;
      }
      if (e.kind != EventKind::Toggle) continue;
      ++row.toggles;
      hw_on = e.on;
      if (e.on) region = e.region;
    }
    row.region = region;
    row.hw_on = hw_on;
    rows.push_back(row);
  }
  return rows;
}

std::string timeline_table(const std::string& title,
                           const std::vector<TimelineRow>& rows) {
  TextTable t({"epoch", "accesses", "region", "hw", "L1D miss%", "bypass%",
               "toggles", "decays", "promos"});
  for (const TimelineRow& r : rows) {
    char span[64];
    std::snprintf(span, sizeof(span), "%llu-%llu",
                  static_cast<unsigned long long>(r.start_access),
                  static_cast<unsigned long long>(r.end_access));
    t.add_row({std::to_string(r.epoch), span,
               r.region < 0 ? "-" : std::to_string(r.region),
               r.hw_on ? "on" : "off",
               TextTable::num(100.0 * r.l1d_miss_rate()),
               TextTable::num(100.0 * r.bypass_fraction()),
               std::to_string(r.toggles), std::to_string(r.mat_decays),
               std::to_string(r.promotions)});
  }
  return title + "\n" + t.str();
}

std::string timeline_csv_header() {
  return "workload,version,epoch,start_access,end_access,region,hw_on,"
         "l1d_hits,l1d_misses,l1d_fills,bypasses,l1d_miss_rate,"
         "bypass_fraction,toggles,mat_decays,promotions\n";
}

// Workload names can contain delimiters ("TPC-D,Q6"); fields go through
// the shared selcache::csv_field (support/table.h).

std::string timeline_csv(const std::vector<TimelineRow>& rows,
                         const std::string& workload,
                         const std::string& version) {
  std::string out;
  const std::string wl = csv_field(workload);
  for (const TimelineRow& r : rows) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s,%s,%llu,%llu,%llu,%d,%d,%llu,%llu,%llu,%llu,%.6f,%.6f,%llu,"
        "%llu,%llu\n",
        wl.c_str(), version.c_str(),
        static_cast<unsigned long long>(r.epoch),
        static_cast<unsigned long long>(r.start_access),
        static_cast<unsigned long long>(r.end_access), r.region,
        r.hw_on ? 1 : 0, static_cast<unsigned long long>(r.l1d_hits),
        static_cast<unsigned long long>(r.l1d_misses),
        static_cast<unsigned long long>(r.l1d_fills),
        static_cast<unsigned long long>(r.bypasses), r.l1d_miss_rate(),
        r.bypass_fraction(), static_cast<unsigned long long>(r.toggles),
        static_cast<unsigned long long>(r.mat_decays),
        static_cast<unsigned long long>(r.promotions));
    out += buf;
  }
  return out;
}

}  // namespace selcache::trace
