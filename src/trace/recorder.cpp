#include "trace/recorder.h"

#include "support/check.h"

namespace selcache::trace {

Recorder::Recorder(TraceSink& sink, std::uint64_t epoch_length)
    : sink_(sink), epoch_length_(epoch_length) {
  SELCACHE_CHECK(epoch_length_ > 0);
}

void Recorder::register_source(std::function<void(StatSet&)> exporter) {
  sources_.push_back(std::move(exporter));
}

void Recorder::snapshot() {
  StatSet cum;
  for (const auto& src : sources_) src(cum);

  EpochRecord rec;
  rec.index = epochs_emitted_;
  rec.start_access = epoch_start_;
  rec.end_access = accesses_;
  rec.deltas = cum.delta_from(prev_);

  prev_ = std::move(cum);
  epoch_start_ = accesses_;
  ++epochs_emitted_;
  sink_.on_epoch(rec);
}

void Recorder::finish() {
  // Emit the tail even when no access landed in it: end-of-run counter
  // movement (e.g. drains) still belongs to some epoch.
  if (accesses_ > epoch_start_ || epochs_emitted_ == 0) snapshot();
}

}  // namespace selcache::trace
