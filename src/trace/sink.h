// TraceSink — where the Recorder delivers epoch snapshots and events.
//
// The simulator never formats output on the hot path: it records into an
// in-memory Recording (MemorySink), and serialization to JSONL/CSV happens
// after the run. This is also what makes the parallel sweep deterministic:
// each (workload, version) task owns a private Recording, and the engine
// concatenates them in fixed task order after all futures resolve.
#pragma once

#include <vector>

#include "support/stats.h"
#include "trace/event.h"

namespace selcache::trace {

/// One epoch's worth of counter movement. `deltas` holds per-interval
/// differences of the (cumulative) component counters, so a counter like
/// `mat.decays` reads as "decays during this epoch", not "decays so far".
struct EpochRecord {
  std::uint64_t index = 0;         ///< epoch number, 0-based
  std::uint64_t start_access = 0;  ///< first demand access covered
  std::uint64_t end_access = 0;    ///< one past the last access covered
  StatSet deltas;

  bool operator==(const EpochRecord& o) const {
    return index == o.index && start_access == o.start_access &&
           end_access == o.end_access && deltas.all() == o.deltas.all();
  }
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& e) = 0;
  virtual void on_epoch(const EpochRecord& r) = 0;
};

/// The full phase-resolved record of one simulation.
struct Recording {
  std::vector<Event> events;
  std::vector<EpochRecord> epochs;

  bool operator==(const Recording&) const = default;
};

/// Collects into a caller-owned Recording.
class MemorySink final : public TraceSink {
 public:
  explicit MemorySink(Recording& out) : out_(out) {}
  void on_event(const Event& e) override { out_.events.push_back(e); }
  void on_epoch(const EpochRecord& r) override { out_.epochs.push_back(r); }

 private:
  Recording& out_;
};

}  // namespace selcache::trace
