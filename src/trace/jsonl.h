// JSONL serialization of a Recording — one self-describing JSON object per
// line, so phase profiles stream into jq / pandas without a schema file.
//
// Formatting is fully deterministic: counters are integers, map iteration
// is lexicographic (StatSet is an ordered map), and lines follow recording
// order. The parallel sweep concatenates per-task serializations in fixed
// task order, which is what makes `suite --trace-dir` bit-identical across
// thread counts.
#pragma once

#include <string>

#include "trace/sink.h"

namespace selcache::trace {

/// Identifies which simulation a line came from when recordings are merged.
struct SimTag {
  std::string workload;
  std::string version;
};

/// One line per Event:
///   {"workload":"Swim","version":"selective","kind":"toggle","epoch":3,
///    "access":31200,"on":true,"region":2}
/// Memory-side kinds carry "addr" and "level" instead of "on"/"region".
std::string events_jsonl(const Recording& rec, const SimTag& tag);

/// One line per EpochRecord:
///   {"workload":"Swim","version":"selective","epoch":3,"start":30000,
///    "end":40000,"metrics":{"l1d.hits":9120,...}}
/// All metric values are per-epoch deltas (cumulative counters are
/// difference-encoded by the Recorder).
std::string metrics_jsonl(const Recording& rec, const SimTag& tag);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

}  // namespace selcache::trace
