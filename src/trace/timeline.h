// Timeline post-pass: fold a Recording into one row per epoch with the
// phase metrics the paper's argument lives on — miss rate, bypass fraction,
// toggle count, and which region held the hardware mechanism. This is the
// table you look at to see a uniform region flip between compiler-friendly
// and irregular phases, instead of a single end-of-run number.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/sink.h"

namespace selcache::trace {

struct TimelineRow {
  std::uint64_t epoch = 0;
  std::uint64_t start_access = 0;
  std::uint64_t end_access = 0;
  /// Region whose ON marker last fired at or before the end of this epoch
  /// (-1 = none / marker without provenance).
  std::int32_t region = -1;
  /// Hardware mechanism active at the end of this epoch.
  bool hw_on = false;

  // Per-epoch deltas.
  std::uint64_t l1d_hits = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1d_fills = 0;
  std::uint64_t bypasses = 0;
  std::uint64_t toggles = 0;     ///< ON/OFF instructions executed this epoch
  std::uint64_t mat_decays = 0;
  std::uint64_t promotions = 0;  ///< victim-cache promotions (L1 + L2)

  double l1d_miss_rate() const {
    const std::uint64_t n = l1d_hits + l1d_misses;
    return n == 0 ? 0.0 : static_cast<double>(l1d_misses) /
                              static_cast<double>(n);
  }
  /// Fraction of L1D fill decisions that bypassed the cache.
  double bypass_fraction() const {
    const std::uint64_t n = l1d_fills + bypasses;
    return n == 0 ? 0.0 : static_cast<double>(bypasses) /
                              static_cast<double>(n);
  }
};

/// One row per epoch, region state threaded through the toggle events.
std::vector<TimelineRow> build_timeline(const Recording& rec);

/// Human-readable table (support::TextTable formatting).
std::string timeline_table(const std::string& title,
                           const std::vector<TimelineRow>& rows);

/// CSV header shared by timeline_csv() emissions.
std::string timeline_csv_header();

/// CSV rows (no header) tagged with workload/version, `%.6f` rates so the
/// output is bit-stable across platforms and thread counts.
std::string timeline_csv(const std::vector<TimelineRow>& rows,
                         const std::string& workload,
                         const std::string& version);

}  // namespace selcache::trace
