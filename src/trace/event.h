// Structured trace events — the discrete half of the observability layer.
//
// The simulator's aggregate counters answer "how many"; events answer
// "when". Each event is stamped by the Recorder with the demand-access
// index and the epoch it fell into, so a post-pass can line events up
// against the per-epoch counter deltas (see recorder.h) and reconstruct
// phase behavior: which region toggled the hardware on, when the MAT
// decayed, which fills were bypassed, which victims were promoted.
#pragma once

#include <cstdint>

#include "support/types.h"

namespace selcache::trace {

enum class EventKind : std::uint8_t {
  Toggle,           ///< ON/OFF instruction executed (region = source region)
  MatDecay,         ///< periodic MAT counter halving swept the table
  BypassDecision,   ///< a fill was redirected to the bypass buffer
  VictimPromotion,  ///< a victim-cache hit promoted a block back
  Degradation,      ///< controller demoted to safe mode (addr = reason code)
};

inline const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Toggle: return "toggle";
    case EventKind::MatDecay: return "mat_decay";
    case EventKind::BypassDecision: return "bypass";
    case EventKind::VictimPromotion: return "victim_promotion";
    case EventKind::Degradation: return "degradation";
  }
  return "?";
}

struct Event {
  EventKind kind = EventKind::Toggle;
  /// Demand-access index at which the event occurred (stamped by Recorder).
  std::uint64_t access = 0;
  /// Epoch the event fell into (stamped by Recorder).
  std::uint64_t epoch = 0;
  /// Block / word address for memory-side events; 0 for toggles and decays.
  Addr addr = 0;
  /// Source region id for toggles (-1 = marker without region provenance).
  std::int32_t region = -1;
  /// Toggle direction (true = ON); unused for other kinds.
  bool on = false;
  /// Cache level for memory-side events: 0 = L1D, 1 = L1I, 2 = L2.
  std::uint8_t level = 0;

  bool operator==(const Event&) const = default;
};

}  // namespace selcache::trace
