// Epoch-based metrics recorder — the continuous half of the observability
// layer.
//
// Components register snapshot sources (their export_stats), the memory
// hierarchy calls note_access() once per completed demand access, and every
// `epoch_length` accesses the recorder snapshots all sources, delta-encodes
// them against the previous snapshot, and emits an EpochRecord. Cumulative
// counters (mat.decays, l1d.misses, ...) therefore come out per-interval,
// which is the whole point: phase behavior is invisible in end-of-run
// aggregates.
//
// Hot-path contract: a simulation without a recorder pays exactly one
// `pointer != nullptr` branch per access / per event site. All snapshot
// work happens only at epoch boundaries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "trace/sink.h"

namespace selcache::trace {

class Recorder {
 public:
  /// `epoch_length` = demand accesses per epoch (> 0).
  Recorder(TraceSink& sink, std::uint64_t epoch_length);

  /// Register a cumulative-counter source; `exporter` adds the component's
  /// counters into the passed StatSet (the export_stats idiom).
  void register_source(std::function<void(StatSet&)> exporter);

  /// One demand access completed. Emits an epoch snapshot at boundaries.
  void note_access() {
    ++accesses_;
    if (accesses_ - epoch_start_ >= epoch_length_) snapshot();
  }

  /// Record a discrete event; the recorder stamps access index and epoch.
  void event(Event e) {
    e.access = accesses_;
    e.epoch = epochs_emitted_;
    sink_.on_event(e);
  }

  /// Flush the final (possibly partial) epoch. Call once, after the run.
  void finish();

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t epoch_length() const { return epoch_length_; }

 private:
  void snapshot();

  TraceSink& sink_;
  std::uint64_t epoch_length_;
  std::uint64_t accesses_ = 0;
  std::uint64_t epoch_start_ = 0;    ///< first access of the open epoch
  std::uint64_t epochs_emitted_ = 0;
  std::vector<std::function<void(StatSet&)>> sources_;
  StatSet prev_;  ///< cumulative counters at the last snapshot
};

}  // namespace selcache::trace
