#include "trace/jsonl.h"

#include <cstdio>

namespace selcache::trace {

namespace {

const char* level_name(std::uint8_t level) {
  switch (level) {
    case 0: return "l1d";
    case 1: return "l1i";
    case 2: return "l2";
  }
  return "?";
}

void append_tag(std::string& out, const SimTag& tag) {
  out += "{\"workload\":\"";
  out += json_escape(tag.workload);
  out += "\",\"version\":\"";
  out += json_escape(tag.version);
  out += "\"";
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string events_jsonl(const Recording& rec, const SimTag& tag) {
  std::string out;
  for (const Event& e : rec.events) {
    append_tag(out, tag);
    out += ",\"kind\":\"";
    out += to_string(e.kind);
    out += "\"";
    append_u64(out, "epoch", e.epoch);
    append_u64(out, "access", e.access);
    switch (e.kind) {
      case EventKind::Toggle: {
        out += e.on ? ",\"on\":true" : ",\"on\":false";
        char buf[32];
        std::snprintf(buf, sizeof(buf), ",\"region\":%d", e.region);
        out += buf;
        break;
      }
      case EventKind::MatDecay:
        break;
      case EventKind::Degradation:
        // addr carries the hw::DegradeReason code; name it for readers.
        out += ",\"reason\":\"";
        out += e.addr == 2 ? "integrity" : "fault_budget";
        out += "\"";
        break;
      case EventKind::BypassDecision:
      case EventKind::VictimPromotion:
        append_u64(out, "addr", e.addr);
        out += ",\"level\":\"";
        out += level_name(e.level);
        out += "\"";
        break;
    }
    out += "}\n";
  }
  return out;
}

std::string metrics_jsonl(const Recording& rec, const SimTag& tag) {
  std::string out;
  for (const EpochRecord& r : rec.epochs) {
    append_tag(out, tag);
    append_u64(out, "epoch", r.index);
    append_u64(out, "start", r.start_access);
    append_u64(out, "end", r.end_access);
    out += ",\"metrics\":{";
    bool first = true;
    for (const auto& [k, v] : r.deltas.all()) {
      if (v == 0) continue;  // epochs are sparse; zero deltas carry no info
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += json_escape(k);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "\":%llu",
                    static_cast<unsigned long long>(v));
      out += buf;
    }
    out += "}}\n";
  }
  return out;
}

}  // namespace selcache::trace
