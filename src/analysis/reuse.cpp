#include "analysis/reuse.h"

namespace selcache::analysis {

namespace {

/// Index of the fastest-varying (contiguous) dimension under `layout`.
std::size_t fastest_dim(const ir::ArrayDecl& a) {
  return a.layout == ir::Layout::RowMajor ? a.dims.size() - 1 : 0;
}

}  // namespace

ReuseKind ref_reuse(const ir::Program& p, const ir::Reference& r,
                    ir::VarId v) {
  const auto* arr = std::get_if<ir::Reference::Array>(&r.target);
  if (arr == nullptr) return ReuseKind::None;

  const ir::ArrayDecl& decl = p.array(arr->id);
  bool any_use = false;
  bool only_fastest = true;
  std::int64_t fastest_coeff = 0;
  const std::size_t fd = fastest_dim(decl);

  for (std::size_t d = 0; d < arr->subs.size(); ++d) {
    const auto* aff = std::get_if<ir::Subscript::Affine>(&arr->subs[d].value);
    if (aff == nullptr) {
      // Non-affine subscripts defeat static reuse analysis.
      if (arr->subs[d].uses(v)) return ReuseKind::None;
      continue;
    }
    const std::int64_t c = aff->expr.coeff(v);
    if (c != 0) {
      any_use = true;
      if (d == fd) {
        fastest_coeff = c;
      } else {
        only_fastest = false;
      }
    }
  }

  if (!any_use) return ReuseKind::Temporal;
  if (only_fastest && (fastest_coeff == 1 || fastest_coeff == -1))
    return ReuseKind::Spatial;
  return ReuseKind::None;
}

ReuseScore loop_reuse(const ir::Program& p,
                      const std::vector<const ir::Reference*>& refs,
                      ir::VarId v) {
  ReuseScore s;
  for (const auto* r : refs) {
    if (!r->is_array()) continue;
    switch (ref_reuse(p, *r, v)) {
      case ReuseKind::Temporal: ++s.temporal; break;
      case ReuseKind::Spatial: ++s.spatial; break;
      case ReuseKind::None: ++s.none; break;
    }
  }
  return s;
}

}  // namespace selcache::analysis
