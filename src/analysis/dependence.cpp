#include "analysis/dependence.h"
#include <algorithm>

namespace selcache::analysis {

std::optional<Dependence> ref_dependence(const ir::Reference& a,
                                         const ir::Reference& b,
                                         const std::vector<ir::VarId>& vars,
                                         bool* analyzable) {
  *analyzable = true;
  const auto* aa = std::get_if<ir::Reference::Array>(&a.target);
  const auto* bb = std::get_if<ir::Reference::Array>(&b.target);
  if (aa == nullptr || bb == nullptr || aa->id != bb->id) return std::nullopt;
  if (aa->subs.size() != bb->subs.size()) {
    *analyzable = false;
    return std::nullopt;
  }

  // Accumulate per-variable distances; every dimension must agree.
  std::vector<std::optional<std::int64_t>> dist(vars.size());
  for (std::size_t d = 0; d < aa->subs.size(); ++d) {
    const auto* sa = std::get_if<ir::Subscript::Affine>(&aa->subs[d].value);
    const auto* sb = std::get_if<ir::Subscript::Affine>(&bb->subs[d].value);
    if (sa == nullptr || sb == nullptr) {
      *analyzable = false;
      return std::nullopt;
    }
    // Uniform generation: identical variable parts required.
    for (std::size_t k = 0; k < vars.size(); ++k)
      if (sa->expr.coeff(vars[k]) != sb->expr.coeff(vars[k])) {
        *analyzable = false;
        return std::nullopt;
      }
    // Separability: at most one band variable per dimension.
    ir::VarId dim_var = ir::kInvalidVar;
    std::int64_t coeff = 0;
    for (std::size_t k = 0; k < vars.size(); ++k) {
      const std::int64_t c = sa->expr.coeff(vars[k]);
      if (c != 0) {
        if (dim_var != ir::kInvalidVar) {
          *analyzable = false;  // coupled subscript (i+j)
          return std::nullopt;
        }
        dim_var = vars[k];
        coeff = c;
      }
    }
    const std::int64_t delta =
        sa->expr.constant_term() - sb->expr.constant_term();
    if (dim_var == ir::kInvalidVar) {
      if (delta != 0) return std::nullopt;  // constant dims differ: no dep
      continue;
    }
    if (delta % coeff != 0) return std::nullopt;  // GCD test: no solution
    const std::int64_t dk = delta / coeff;
    const std::size_t k =
        static_cast<std::size_t>(std::find(vars.begin(), vars.end(), dim_var) -
                                 vars.begin());
    if (dist[k].has_value() && *dist[k] != dk) return std::nullopt;
    dist[k] = dk;
  }

  Dependence dep;
  dep.distance.resize(vars.size(), 0);
  bool all_zero = true;
  for (std::size_t k = 0; k < vars.size(); ++k) {
    dep.distance[k] = dist[k].value_or(0);
    if (dep.distance[k] != 0) all_zero = false;
  }
  if (all_zero) return std::nullopt;  // loop-independent: no ordering limit
  // Canonicalize to a lexicographically positive vector (a dependence and
  // its reverse constrain reordering identically).
  if (!lexicographically_nonnegative(dep.distance))
    for (auto& v : dep.distance) v = -v;
  return dep;
}

DependenceSet collect_dependences(const ir::Node& root,
                                  const std::vector<ir::VarId>& vars) {
  std::vector<const ir::Reference*> refs;
  ir::collect_refs(root, refs);

  DependenceSet out;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t j = i; j < refs.size(); ++j) {
      if (!refs[i]->is_write && !refs[j]->is_write) continue;
      // Only array-vs-array pairs constrain loop reordering; scalars are
      // registers after scalar replacement and pools are hardware-region
      // territory.
      if (!refs[i]->is_array() || !refs[j]->is_array()) continue;
      bool analyzable = true;
      if (auto dep = ref_dependence(*refs[i], *refs[j], vars, &analyzable))
        out.deps.push_back(std::move(*dep));
      if (!analyzable) {
        const auto& ai = std::get<ir::Reference::Array>(refs[i]->target);
        const auto& aj = std::get<ir::Reference::Array>(refs[j]->target);
        if (ai.id == aj.id) out.unknown = true;
      }
    }
  }
  return out;
}

bool lexicographically_nonnegative(const std::vector<std::int64_t>& d) {
  for (auto v : d) {
    if (v > 0) return true;
    if (v < 0) return false;
  }
  return true;  // zero vector
}

bool permutation_legal(const DependenceSet& deps,
                       const std::vector<std::size_t>& perm) {
  if (deps.unknown) {
    // Only the identity is safely legal.
    for (std::size_t k = 0; k < perm.size(); ++k)
      if (perm[k] != k) return false;
    return true;
  }
  for (const auto& dep : deps.deps) {
    std::vector<std::int64_t> permuted(perm.size());
    for (std::size_t k = 0; k < perm.size(); ++k)
      permuted[k] = dep.distance[perm[k]];
    if (!lexicographically_nonnegative(permuted)) return false;
  }
  return true;
}

}  // namespace selcache::analysis
