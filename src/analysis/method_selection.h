// Per-loop optimization-method selection (§2.3): if the ratio of analyzable
// references to total references meets the threshold, the compiler optimizes
// the loop; otherwise the hardware mechanism handles it at run time.
#pragma once

#include <functional>
#include <optional>

#include "analysis/classify.h"

namespace selcache::analysis {

enum class Method { Hardware, Compiler };

inline const char* to_string(Method m) {
  return m == Method::Hardware ? "hardware" : "compiler";
}

/// Paper §4.1: "a threshold value of 0.5 was selected".
inline constexpr double kDefaultThreshold = 0.5;

/// How loops are assigned to the compiler or the hardware. The default
/// (empty predictor) is the paper's static-count heuristic; a predictor —
/// e.g. locality::make_method_predictor, which weights references by
/// predicted dynamic access counts — can override the decision for
/// innermost loops. A predictor returning nullopt falls back to the
/// heuristic for that loop, so installing one degrades gracefully.
struct MethodPolicy {
  double threshold = kDefaultThreshold;
  std::function<std::optional<Method>(const ir::LoopNode&)> loop_predictor;
};

/// Decide the method for a loop from the references in its whole subtree.
Method select_method(const ir::LoopNode& loop,
                     double threshold = kDefaultThreshold);
/// Policy-driven variant: consults policy.loop_predictor first (innermost
/// decisions only — see region_detection).
Method select_method(const ir::LoopNode& loop, const MethodPolicy& policy);

/// Decide for a bare statement (the "imaginary loop that iterates once"
/// treatment of §2.2 for statements sandwiched between nests). Statements
/// have no loop prediction, so the policy variant uses the heuristic with
/// the policy's threshold.
Method select_method(const ir::Stmt& stmt,
                     double threshold = kDefaultThreshold);
Method select_method(const ir::Stmt& stmt, const MethodPolicy& policy);

}  // namespace selcache::analysis
