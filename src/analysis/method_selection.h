// Per-loop optimization-method selection (§2.3): if the ratio of analyzable
// references to total references meets the threshold, the compiler optimizes
// the loop; otherwise the hardware mechanism handles it at run time.
#pragma once

#include "analysis/classify.h"

namespace selcache::analysis {

enum class Method { Hardware, Compiler };

inline const char* to_string(Method m) {
  return m == Method::Hardware ? "hardware" : "compiler";
}

/// Paper §4.1: "a threshold value of 0.5 was selected".
inline constexpr double kDefaultThreshold = 0.5;

/// Decide the method for a loop from the references in its whole subtree.
Method select_method(const ir::LoopNode& loop,
                     double threshold = kDefaultThreshold);

/// Decide for a bare statement (the "imaginary loop that iterates once"
/// treatment of §2.2 for statements sandwiched between nests).
Method select_method(const ir::Stmt& stmt,
                     double threshold = kDefaultThreshold);

}  // namespace selcache::analysis
