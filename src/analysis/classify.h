// Reference classification (§2.3): analyzable (compile-time optimizable)
// vs. non-analyzable references.
//
// Analyzable:    scalars (A), affine array references (B[i], C[i+j][k-1]).
// Non-analyzable: non-affine subscripts (D[i*i], E[i/j], F[3][i*j]),
//                 indexed/subscripted references (G[IP[j]+2]),
//                 pointer references (*H[i], *I),
//                 struct constructs (J.field, K->field).
#pragma once

#include "ir/program.h"

namespace selcache::analysis {

bool is_analyzable(const ir::Reference& r);

struct RefCounts {
  std::size_t analyzable = 0;
  std::size_t total = 0;

  /// Ratio of analyzable references; 1.0 for reference-free code (nothing
  /// for the hardware to do — treat as compiler-friendly).
  double ratio() const {
    return total == 0 ? 1.0
                      : static_cast<double>(analyzable) /
                            static_cast<double>(total);
  }

  RefCounts& operator+=(const RefCounts& o) {
    analyzable += o.analyzable;
    total += o.total;
    return *this;
  }
};

/// Counts over every reference in the subtree rooted at `n`.
RefCounts count_refs(const ir::Node& n);

/// Counts over a bare statement.
RefCounts count_refs(const ir::Stmt& s);

}  // namespace selcache::analysis
