// Data-dependence testing for loop-transformation legality.
//
// Restricted to the *separable, uniformly generated* affine case: each
// subscript dimension of both references must be `c*v + k` with the SAME
// c*v part, so the dependence distance per loop variable is the constant
// subscript difference divided by the coefficient. That covers the stencil
// and streaming kernels our workloads use; anything else (coupled
// subscripts, differing coefficients, non-affine) is reported as UNKNOWN and
// treated conservatively by the transforms.
#pragma once

#include <optional>
#include <vector>

#include "ir/program.h"

namespace selcache::analysis {

/// Distance vector over an ordered band of loop variables. distances[k] is
/// the dependence distance carried by band variable k.
struct Dependence {
  std::vector<std::int64_t> distance;
};

struct DependenceSet {
  std::vector<Dependence> deps;
  /// True when at least one reference pair could not be analyzed; the
  /// transforms must then assume any reordering is illegal.
  bool unknown = false;
};

/// Dependence between two affine array references (same array) under the
/// band `vars`. Returns nullopt when independent, a Dependence when a
/// constant-distance dependence exists, and sets *analyzable=false when the
/// pair is outside the solvable class.
std::optional<Dependence> ref_dependence(const ir::Reference& a,
                                         const ir::Reference& b,
                                         const std::vector<ir::VarId>& vars,
                                         bool* analyzable);

/// All dependences among the references in the subtree rooted at `root`,
/// restricted to pairs where at least one reference writes.
DependenceSet collect_dependences(const ir::Node& root,
                                  const std::vector<ir::VarId>& vars);

/// Is a dependence vector lexicographically non-negative?
bool lexicographically_nonnegative(const std::vector<std::int64_t>& d);

/// Would permuting the band by `perm` (perm[k] = index of the old loop that
/// moves to position k) keep every dependence lexicographically
/// non-negative?
bool permutation_legal(const DependenceSet& deps,
                       const std::vector<std::size_t>& perm);

}  // namespace selcache::analysis
