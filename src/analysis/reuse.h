// Temporal / spatial reuse analysis (after Wolf & Lam [13]), restricted to
// the separable-affine case our IR generates.
//
// For a loop variable v and an affine array reference:
//   * TEMPORAL reuse w.r.t. v: no subscript mentions v — successive v
//     iterations touch the same element (e.g. U[j] inside loop i).
//   * SPATIAL reuse w.r.t. v: only the fastest-varying dimension (under the
//     array's current layout) mentions v, with |coefficient| == 1 —
//     successive iterations touch adjacent elements.
//   * otherwise NONE (column-order walks, large strides).
//
// The interchange transform uses these counts to choose the loop with the
// most reuse as the innermost (§3.2: "the locality optimizations in general
// try to put as much of the available reuse as possible into the innermost
// loop positions").
#pragma once

#include "ir/program.h"

namespace selcache::analysis {

enum class ReuseKind { None, Spatial, Temporal };

/// Reuse of one affine array reference w.r.t. loop variable `v`.
ReuseKind ref_reuse(const ir::Program& p, const ir::Reference& r, ir::VarId v);

struct ReuseScore {
  std::size_t temporal = 0;
  std::size_t spatial = 0;
  std::size_t none = 0;

  /// Weighted benefit of making this loop innermost. Temporal reuse
  /// (register/cache-line residency every iteration) dominates spatial.
  double score() const {
    return 2.0 * static_cast<double>(temporal) +
           1.0 * static_cast<double>(spatial);
  }
};

/// Score loop variable `v` over all affine array references in `refs`.
ReuseScore loop_reuse(const ir::Program& p,
                      const std::vector<const ir::Reference*>& refs,
                      ir::VarId v);

}  // namespace selcache::analysis
