// Redundant activate/deactivate elimination (Figure 2(b) -> 2(c)).
//
// An ON/OFF instruction is redundant when the hardware flag is already in
// the requested state on EVERY execution path reaching it. The pass runs a
// forward dataflow over the region tree with the three-point lattice
// {Off, On, Unknown}: loop bodies meet their entry state with their own exit
// state (a body may re-enter from the back edge), and a loop's exit state is
// the meet of its entry (zero iterations) and body exit. Toggles whose known
// incoming state equals their target are removed; the walk repeats until a
// fixpoint since each removal can expose the next (OFF-ON pairs collapse
// pairwise).
#pragma once

#include "ir/program.h"

namespace selcache::analysis {

enum class HwState { Off, On, Unknown };

inline HwState meet(HwState a, HwState b) {
  return a == b ? a : HwState::Unknown;
}

/// Remove redundant toggles; returns how many were removed.
std::size_t eliminate_redundant_markers(ir::Program& p);

/// Count remaining ToggleNodes (diagnostics / tests).
std::size_t count_markers(const ir::Program& p);

}  // namespace selcache::analysis
