// Region detection (§2.2): partition a program into uniform regions, each
// preferring either the hardware or the compiler optimization, and mark
// hardware regions with activate/deactivate (ON/OFF) instructions.
//
// The algorithm works innermost -> outermost (Figure 2):
//   * an innermost loop is decided by its references (§2.3);
//   * a loop whose child loops all agree inherits their method — references
//     inside it but outside the children are optimized the same way;
//   * a loop whose children disagree becomes a MIXED region: no unique
//     method; we switch between techniques as its constituent loops are
//     encountered;
//   * statements sandwiched between sibling nests inside a mixed region are
//     treated as an imaginary single-iteration loop and decided by their own
//     references.
//
// Marker insertion assumes the program starts in software mode (hardware
// OFF) and brackets every hardware region with ON ... OFF. The resulting
// markers can be redundant (e.g. OFF immediately followed by ON); the
// separate marker-elimination pass (Figure 2(b) -> 2(c)) removes those.
#pragma once

#include <cstdint>
#include <map>

#include "analysis/method_selection.h"

namespace selcache::analysis {

enum class RegionDecision { Hardware, Compiler, Mixed };

inline const char* to_string(RegionDecision d) {
  switch (d) {
    case RegionDecision::Hardware: return "hardware";
    case RegionDecision::Compiler: return "compiler";
    case RegionDecision::Mixed: return "mixed";
  }
  return "?";
}

struct RegionAnalysis {
  /// Per-loop decision, filled bottom-up.
  std::map<const ir::LoopNode*, RegionDecision> decisions;
  /// Loops (outermost of each compiler region) the software optimizer
  /// should transform.
  std::vector<ir::LoopNode*> compiler_roots;
  std::size_t markers_inserted = 0;
  /// Next static region id to hand out; also the count of hardware regions
  /// bracketed by marker insertion (ids are sequential from 0).
  std::int32_t regions_assigned = 0;

  RegionDecision decision(const ir::LoopNode& l) const {
    auto it = decisions.find(&l);
    return it == decisions.end() ? RegionDecision::Compiler : it->second;
  }
};

/// Analyze only: compute per-loop decisions without touching the program.
RegionAnalysis analyze_regions(ir::Program& p,
                               double threshold = kDefaultThreshold);
/// Policy-driven variant: the policy's predictor (if any) decides innermost
/// loops; everything above stays the Figure 2 bottom-up propagation. With a
/// default-constructed policy this is bit-identical to the threshold form.
RegionAnalysis analyze_regions(ir::Program& p, const MethodPolicy& policy);

/// Analyze and insert ON/OFF ToggleNodes around hardware regions.
/// Run eliminate_redundant_markers() afterwards to obtain Figure 2(c).
RegionAnalysis detect_and_mark(ir::Program& p,
                               double threshold = kDefaultThreshold);
RegionAnalysis detect_and_mark(ir::Program& p, const MethodPolicy& policy);

}  // namespace selcache::analysis
