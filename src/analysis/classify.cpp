#include "analysis/classify.h"

namespace selcache::analysis {

bool is_analyzable(const ir::Reference& r) {
  return std::visit(
      [](const auto& t) {
        using T = std::decay_t<decltype(t)>;
        if constexpr (std::is_same_v<T, ir::Reference::Scalar>) {
          return true;
        } else if constexpr (std::is_same_v<T, ir::Reference::Array>) {
          for (const auto& s : t.subs)
            if (!s.is_affine()) return false;
          return true;
        } else {
          // Pointer and struct-field references are never analyzable.
          return false;
        }
      },
      r.target);
}

RefCounts count_refs(const ir::Stmt& s) {
  RefCounts c;
  for (const auto& r : s.refs) {
    ++c.total;
    if (is_analyzable(r)) ++c.analyzable;
  }
  return c;
}

RefCounts count_refs(const ir::Node& n) {
  RefCounts c;
  if (n.kind == ir::NodeKind::Stmt) {
    c += count_refs(static_cast<const ir::StmtNode&>(n).stmt);
  } else if (n.kind == ir::NodeKind::Loop) {
    for (const auto& child : static_cast<const ir::LoopNode&>(n).body)
      c += count_refs(*child);
  }
  return c;
}

}  // namespace selcache::analysis
