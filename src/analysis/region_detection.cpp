#include "analysis/region_detection.h"

namespace selcache::analysis {

using ir::LoopNode;
using ir::Node;
using ir::NodeKind;
using ir::StmtNode;
using ir::ToggleNode;

namespace {

/// Bottom-up decision for one loop (Figure 2 walk, steps 1-7).
RegionDecision decide(LoopNode& loop, const MethodPolicy& policy,
                      RegionAnalysis& out) {
  std::vector<RegionDecision> child_decisions;
  for (auto& child : loop.body)
    if (child->kind == NodeKind::Loop)
      child_decisions.push_back(
          decide(static_cast<LoopNode&>(*child), policy, out));

  RegionDecision d;
  if (child_decisions.empty()) {
    // Innermost loop: decided by its own references (§2.3) — or, when the
    // policy carries a locality predictor, by predicted dynamic behavior.
    d = select_method(loop, policy) == Method::Compiler
            ? RegionDecision::Compiler
            : RegionDecision::Hardware;
  } else {
    // Propagate a unanimous child method to the enclosing loop; references
    // directly inside this loop are swept along with it (§2.2, steps 2-3).
    bool all_same = true;
    for (const auto& c : child_decisions)
      if (c != child_decisions.front()) all_same = false;
    if (all_same && child_decisions.front() != RegionDecision::Mixed) {
      d = child_decisions.front();
    } else {
      d = RegionDecision::Mixed;
    }
  }
  out.decisions[&loop] = d;
  return d;
}

/// Insert ON/OFF markers into a mixed scope: hardware subtrees are
/// bracketed; compiler subtrees are recorded as roots for the optimizer;
/// mixed loops recurse.
void mark_scope(std::vector<std::unique_ptr<Node>>& body,
                const MethodPolicy& policy, RegionAnalysis& out) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    Node& n = *body[i];
    if (n.kind == NodeKind::Stmt) {
      // Sandwiched statement: imaginary one-iteration loop (§2.2, end).
      if (select_method(static_cast<StmtNode&>(n).stmt, policy) ==
          Method::Hardware) {
        const std::int32_t region = out.regions_assigned++;
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(i),
                    std::make_unique<ToggleNode>(true, region));
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(i + 2),
                    std::make_unique<ToggleNode>(false, region));
        out.markers_inserted += 2;
        i += 2;
      }
      continue;
    }
    if (n.kind != NodeKind::Loop) continue;
    auto& loop = static_cast<LoopNode&>(n);
    switch (out.decisions.at(&loop)) {
      case RegionDecision::Hardware: {
        const std::int32_t region = out.regions_assigned++;
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(i),
                    std::make_unique<ToggleNode>(true, region));
        body.insert(body.begin() + static_cast<std::ptrdiff_t>(i + 2),
                    std::make_unique<ToggleNode>(false, region));
        out.markers_inserted += 2;
        i += 2;
        break;
      }
      case RegionDecision::Compiler:
        out.compiler_roots.push_back(&loop);
        break;
      case RegionDecision::Mixed:
        mark_scope(loop.body, policy, out);
        break;
    }
  }
}

void collect_compiler_roots(std::vector<std::unique_ptr<Node>>& body,
                            RegionAnalysis& out) {
  for (auto& n : body) {
    if (n->kind != NodeKind::Loop) continue;
    auto& loop = static_cast<LoopNode&>(*n);
    switch (out.decisions.at(&loop)) {
      case RegionDecision::Compiler:
        out.compiler_roots.push_back(&loop);
        break;
      case RegionDecision::Mixed:
        collect_compiler_roots(loop.body, out);
        break;
      case RegionDecision::Hardware:
        break;
    }
  }
}

}  // namespace

RegionAnalysis analyze_regions(ir::Program& p, double threshold) {
  return analyze_regions(p, MethodPolicy{threshold, {}});
}

RegionAnalysis analyze_regions(ir::Program& p, const MethodPolicy& policy) {
  RegionAnalysis out;
  for (auto& n : p.top())
    if (n->kind == NodeKind::Loop)
      decide(static_cast<LoopNode&>(*n), policy, out);
  collect_compiler_roots(p.top(), out);
  return out;
}

RegionAnalysis detect_and_mark(ir::Program& p, double threshold) {
  return detect_and_mark(p, MethodPolicy{threshold, {}});
}

RegionAnalysis detect_and_mark(ir::Program& p, const MethodPolicy& policy) {
  RegionAnalysis out;
  for (auto& n : p.top())
    if (n->kind == NodeKind::Loop)
      decide(static_cast<LoopNode&>(*n), policy, out);
  // The program's top level behaves like a mixed region that starts in
  // software mode.
  mark_scope(p.top(), policy, out);
  return out;
}

}  // namespace selcache::analysis
