#include "analysis/method_selection.h"

namespace selcache::analysis {

Method select_method(const ir::LoopNode& loop, double threshold) {
  return count_refs(loop).ratio() >= threshold ? Method::Compiler
                                               : Method::Hardware;
}

Method select_method(const ir::LoopNode& loop, const MethodPolicy& policy) {
  if (policy.loop_predictor) {
    if (auto m = policy.loop_predictor(loop)) return *m;
  }
  return select_method(loop, policy.threshold);
}

Method select_method(const ir::Stmt& stmt, double threshold) {
  return count_refs(stmt).ratio() >= threshold ? Method::Compiler
                                               : Method::Hardware;
}

Method select_method(const ir::Stmt& stmt, const MethodPolicy& policy) {
  return select_method(stmt, policy.threshold);
}

}  // namespace selcache::analysis
