#include "analysis/method_selection.h"

namespace selcache::analysis {

Method select_method(const ir::LoopNode& loop, double threshold) {
  return count_refs(loop).ratio() >= threshold ? Method::Compiler
                                               : Method::Hardware;
}

Method select_method(const ir::Stmt& stmt, double threshold) {
  return count_refs(stmt).ratio() >= threshold ? Method::Compiler
                                               : Method::Hardware;
}

}  // namespace selcache::analysis
