#include "analysis/marker_elimination.h"

namespace selcache::analysis {

using ir::LoopNode;
using ir::Node;
using ir::NodeKind;
using ir::ToggleNode;

namespace {

/// Abstract execution without modification: entry state -> exit state.
HwState simulate(const std::vector<std::unique_ptr<Node>>& body, HwState in) {
  for (const auto& n : body) {
    switch (n->kind) {
      case NodeKind::Toggle:
        in = static_cast<const ToggleNode&>(*n).on ? HwState::On
                                                   : HwState::Off;
        break;
      case NodeKind::Loop: {
        const auto& loop = static_cast<const LoopNode&>(*n);
        HwState body_in = in;
        const HwState one_pass = simulate(loop.body, body_in);
        body_in = meet(body_in, one_pass);  // back-edge re-entry
        const HwState exit = simulate(loop.body, body_in);
        in = meet(in, exit);  // zero-or-more iterations
        break;
      }
      case NodeKind::Stmt:
        break;
    }
  }
  return in;
}

/// One removal sweep; returns exit state, counts removals.
HwState sweep(std::vector<std::unique_ptr<Node>>& body, HwState in,
              std::size_t& removed) {
  for (std::size_t i = 0; i < body.size();) {
    Node& n = *body[i];
    switch (n.kind) {
      case NodeKind::Toggle: {
        // Peephole: a toggle immediately followed by another toggle has no
        // observable effect — the later one decides the state and nothing
        // executes in between. This is what collapses the OFF;ON pair
        // between two adjacent hardware nests (Figure 2(b) -> 2(c)).
        if (i + 1 < body.size() && body[i + 1]->kind == NodeKind::Toggle) {
          body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
          ++removed;
          continue;
        }
        const HwState target =
            static_cast<ToggleNode&>(n).on ? HwState::On : HwState::Off;
        if (in == target) {
          body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
          ++removed;
          continue;  // same index now holds the next node
        }
        in = target;
        break;
      }
      case NodeKind::Loop: {
        auto& loop = static_cast<LoopNode&>(n);
        HwState body_in = in;
        const HwState one_pass = simulate(loop.body, body_in);
        body_in = meet(body_in, one_pass);
        const HwState exit = sweep(loop.body, body_in, removed);
        in = meet(in, exit);
        break;
      }
      case NodeKind::Stmt:
        break;
    }
    ++i;
  }
  return in;
}

}  // namespace

std::size_t eliminate_redundant_markers(ir::Program& p) {
  std::size_t total = 0;
  while (true) {
    std::size_t removed = 0;
    // The machine starts with the mechanism off.
    sweep(p.top(), HwState::Off, removed);
    total += removed;
    if (removed == 0) break;
  }
  return total;
}

std::size_t count_markers(const ir::Program& p) {
  std::size_t n = 0;
  p.visit([&](const Node& node) {
    if (node.kind == NodeKind::Toggle) ++n;
  });
  return n;
}

}  // namespace selcache::analysis
