// Victim-caching hardware scheme (§3.1, after Jouppi [10]): fully-
// associative victim caches next to L1D (64 entries) and L2 (512 entries),
// per §4.1. When the scheme is toggled OFF, evictions are not captured and
// misses are not serviced from the victim caches — but their contents
// persist, which is what makes the selective version profitable in the
// small-loop/large-loop scenario of §5.2.
#pragma once

#include "memsys/hw_hooks.h"
#include "memsys/victim_cache.h"

namespace selcache::hw {

struct VictimSchemeConfig {
  std::uint32_t l1_entries = 64;
  std::uint32_t l2_entries = 512;
  std::uint32_t l1_block_size = 32;
  std::uint32_t l2_block_size = 128;
  Cycle swap_latency = 1;  ///< extra cycles for a victim-cache swap
};

class VictimScheme final : public memsys::HwScheme {
 public:
  explicit VictimScheme(VictimSchemeConfig cfg);

  std::string_view name() const override { return "victim"; }

  void set_trace(trace::Recorder* rec) override { trace_ = rec; }
  void set_fault(fault::Injector* inj) override {
    l1v_.set_fault(inj, fault::BufferSite::L1Victim);
    l2v_.set_fault(inj, fault::BufferSite::L2Victim);
  }
  bool check_integrity() const override {
    return l1v_.check_integrity() && l2v_.check_integrity();
  }
  void on_access(memsys::Level level, Addr addr, bool is_write,
                 bool hit) override;
  std::optional<AuxHit> service_miss(memsys::Level level, Addr addr,
                                     bool is_write) override;
  memsys::FillDecision fill_decision(memsys::Level level, Addr addr,
                                     std::optional<Addr> victim) override;
  void on_bypassed(memsys::Level level, Addr addr, bool is_write) override;
  void on_eviction(memsys::Level level, Addr block_addr, bool dirty) override;
  std::uint32_t fetch_width(memsys::Level level, Addr addr) override;
  void export_stats(StatSet& out) const override;

  const memsys::VictimCache& l1_victims() const { return l1v_; }
  const memsys::VictimCache& l2_victims() const { return l2v_; }

 private:
  VictimSchemeConfig cfg_;
  memsys::VictimCache l1v_;
  memsys::VictimCache l2v_;
  trace::Recorder* trace_ = nullptr;
};

}  // namespace selcache::hw
