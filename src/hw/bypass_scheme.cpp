#include "hw/bypass_scheme.h"

#include "support/check.h"
#include "trace/recorder.h"

namespace selcache::hw {

using memsys::FillDecision;
using memsys::Level;

BypassScheme::BypassScheme(BypassSchemeConfig cfg)
    : cfg_(cfg),
      mat_(cfg.mat),
      sldt_(cfg.sldt),
      buffer_(cfg.buffer_entries, cfg.buffer_block_size) {}

void BypassScheme::set_trace(trace::Recorder* rec) {
  trace_ = rec;
  mat_.set_trace(rec);
}

void BypassScheme::on_access(Level level, Addr addr, bool /*is_write*/,
                             bool /*hit*/) {
  if (level != Level::L1D) return;
  mat_.touch(addr);
  sldt_.note(addr);
}

std::optional<memsys::HwScheme::AuxHit> BypassScheme::service_miss(
    Level level, Addr addr, bool is_write) {
  if (level != Level::L1D) return std::nullopt;
  if (!buffer_.access(addr, is_write)) return std::nullopt;
  // Served out of the bypass buffer: no promotion into L1 — that is the
  // whole point of bypassing (keep the low-frequency data out of the cache).
  return AuxHit{.extra_latency = cfg_.buffer_hit_extra,
                .promote = false,
                .dirty = false};
}

FillDecision BypassScheme::fill_decision(Level level, Addr addr,
                                         std::optional<Addr> victim) {
  if (level != Level::L1D) return FillDecision::Fill;
  if (!victim.has_value()) return FillDecision::Fill;  // free way: no conflict
  const double incoming = static_cast<double>(mat_.frequency(addr));
  const double resident = static_cast<double>(mat_.frequency(*victim));
  if (resident >= static_cast<double>(cfg_.min_victim_freq) &&
      resident >= incoming * cfg_.bypass_bias) {
    ++bypasses_;
    if (trace_ != nullptr)
      trace_->event({.kind = trace::EventKind::BypassDecision,
                     .addr = addr,
                     .level = static_cast<std::uint8_t>(level)});
    return FillDecision::Bypass;
  }
  return FillDecision::Fill;
}

void BypassScheme::on_bypassed(Level level, Addr addr, bool is_write) {
  SELCACHE_CHECK(level == Level::L1D);
  buffer_.insert(addr, is_write);
}

void BypassScheme::on_eviction(Level level, Addr block_addr,
                               bool /*dirty*/) {
  // Losing a replacement costs MAT standing (after [8]).
  if (cfg_.punish_on_eviction && level == Level::L1D)
    mat_.punish(block_addr);
}

std::uint32_t BypassScheme::fetch_width(Level level, Addr addr) {
  if (level != Level::L1D) return 1;
  if (sldt_.spatial(addr)) {
    ++widened_;
    return 2;
  }
  return 1;
}

void BypassScheme::export_stats(StatSet& out) const {
  mat_.export_stats(out);
  sldt_.export_stats(out);
  buffer_.export_stats(out);
  out.add("bypass.bypasses", bypasses_);
  out.add("bypass.widened_fetches", widened_);
}

}  // namespace selcache::hw
