// Composite hardware scheme: cache bypassing + victim caching at once.
//
// The paper evaluates the two mechanisms separately; the composite answers
// the natural follow-up ("what if a design shipped both?"): the MAT decides
// fills, the bypass buffer serves bypassed data, and the victim caches
// capture whatever the cache does evict. Used by the scheme-comparison
// ablation.
#pragma once

#include "hw/bypass_scheme.h"
#include "hw/victim_scheme.h"

namespace selcache::hw {

struct CompositeSchemeConfig {
  BypassSchemeConfig bypass{};
  VictimSchemeConfig victim{};
};

class CompositeScheme final : public memsys::HwScheme {
 public:
  explicit CompositeScheme(CompositeSchemeConfig cfg);

  std::string_view name() const override { return "bypass+victim"; }

  void set_trace(trace::Recorder* rec) override {
    bypass_.set_trace(rec);
    victim_.set_trace(rec);
  }
  void set_fault(fault::Injector* inj) override {
    bypass_.set_fault(inj);
    victim_.set_fault(inj);
  }
  bool check_integrity() const override {
    return bypass_.check_integrity() && victim_.check_integrity();
  }
  void on_access(memsys::Level level, Addr addr, bool is_write,
                 bool hit) override;
  std::optional<AuxHit> service_miss(memsys::Level level, Addr addr,
                                     bool is_write) override;
  memsys::FillDecision fill_decision(memsys::Level level, Addr addr,
                                     std::optional<Addr> victim) override;
  void on_bypassed(memsys::Level level, Addr addr, bool is_write) override;
  void on_eviction(memsys::Level level, Addr block_addr, bool dirty) override;
  std::uint32_t fetch_width(memsys::Level level, Addr addr) override;
  void export_stats(StatSet& out) const override;

  const BypassScheme& bypass() const { return bypass_; }
  const VictimScheme& victim() const { return victim_; }

 private:
  BypassScheme bypass_;
  VictimScheme victim_;
};

}  // namespace selcache::hw
