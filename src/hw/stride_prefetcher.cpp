#include "hw/stride_prefetcher.h"

#include "support/check.h"

namespace selcache::hw {

using memsys::FillDecision;
using memsys::Level;

StridePrefetcher::StridePrefetcher(StridePrefetcherConfig cfg) : cfg_(cfg) {
  SELCACHE_CHECK(cfg_.streams > 0);
  SELCACHE_CHECK(cfg_.block_size > 0);
  table_.resize(cfg_.streams);
}

StridePrefetcher::Stream* StridePrefetcher::find(Addr frame) {
  for (auto& s : table_)
    if (s.valid && s.next_frame == frame) return &s;
  return nullptr;
}

StridePrefetcher::Stream* StridePrefetcher::allocate() {
  Stream* lru = &table_[0];
  for (auto& s : table_) {
    if (!s.valid) return &s;
    if (s.lru < lru->lru) lru = &s;
  }
  return lru;
}

void StridePrefetcher::on_access(Level level, Addr addr, bool /*is_write*/,
                                 bool hit) {
  if (level != Level::L1D || hit) return;
  const Addr f = frame_of(addr);
  if (Stream* s = find(f)) {
    // The miss continues a tracked stream.
    s->next_frame = f + 1;
    if (s->hits < cfg_.confirm) {
      ++s->hits;
      if (s->hits == cfg_.confirm) ++confirmed_;  // transition, once
    }
    s->lru = ++stamp_;
    return;
  }
  // New potential stream starting at this miss.
  Stream* s = allocate();
  s->valid = true;
  s->next_frame = f + 1;
  s->hits = 0;
  s->lru = ++stamp_;
}

std::optional<memsys::HwScheme::AuxHit> StridePrefetcher::service_miss(
    Level /*level*/, Addr /*addr*/, bool /*is_write*/) {
  return std::nullopt;  // prefetching has no auxiliary data store
}

FillDecision StridePrefetcher::fill_decision(Level /*level*/, Addr /*addr*/,
                                             std::optional<Addr> /*victim*/) {
  return FillDecision::Fill;
}

void StridePrefetcher::on_bypassed(Level /*level*/, Addr /*addr*/,
                                   bool /*is_write*/) {
  SELCACHE_CHECK_MSG(false, "prefetcher never bypasses");
}

void StridePrefetcher::on_eviction(Level /*level*/, Addr /*block_addr*/,
                                   bool /*dirty*/) {}

std::uint32_t StridePrefetcher::fetch_width(Level level, Addr addr) {
  if (level != Level::L1D) return 1;
  const Addr f = frame_of(addr);
  // Widen when this miss belongs to a confirmed stream (the tracked entry
  // now expects f+1, meaning f just confirmed it).
  for (const auto& s : table_)
    if (s.valid && s.next_frame == f + 1 && s.hits >= cfg_.confirm) {
      ++widened_;
      return cfg_.degree;
    }
  return 1;
}

void StridePrefetcher::export_stats(StatSet& out) const {
  out.add("prefetch.confirmed_streams", confirmed_);
  out.add("prefetch.widened_fetches", widened_);
}

}  // namespace selcache::hw
