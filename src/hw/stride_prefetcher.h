// Stream-based hardware prefetcher — the third class of hardware locality
// mechanism §1.1 surveys ("hardware prefetching mechanisms"). Not evaluated
// in the paper's tables; provided so the selective framework can drive it
// and the scheme-comparison ablation can rank it against bypassing and
// victim caching.
//
// A small table of stream entries tracks recent miss addresses. Two misses
// at consecutive blocks confirm a stream; confirmed streams widen the
// L2->L1 fetch (same transfer-cost accounting as the SLDT's variable-size
// fetching).
#pragma once

#include <vector>

#include "memsys/hw_hooks.h"

namespace selcache::hw {

struct StridePrefetcherConfig {
  std::uint32_t streams = 16;        ///< tracked concurrent streams
  std::uint32_t block_size = 32;
  std::uint32_t confirm = 2;         ///< consecutive hits to confirm
  std::uint32_t degree = 2;          ///< blocks fetched once confirmed
};

class StridePrefetcher final : public memsys::HwScheme {
 public:
  explicit StridePrefetcher(StridePrefetcherConfig cfg);

  std::string_view name() const override { return "prefetch"; }

  void on_access(memsys::Level level, Addr addr, bool is_write,
                 bool hit) override;
  std::optional<AuxHit> service_miss(memsys::Level level, Addr addr,
                                     bool is_write) override;
  memsys::FillDecision fill_decision(memsys::Level level, Addr addr,
                                     std::optional<Addr> victim) override;
  void on_bypassed(memsys::Level level, Addr addr, bool is_write) override;
  void on_eviction(memsys::Level level, Addr block_addr, bool dirty) override;
  std::uint32_t fetch_width(memsys::Level level, Addr addr) override;
  void export_stats(StatSet& out) const override;

  std::uint64_t confirmed_streams() const { return confirmed_; }

 private:
  struct Stream {
    Addr next_frame = 0;       ///< expected next block frame
    std::uint32_t hits = 0;    ///< consecutive confirmations
    bool valid = false;
    std::uint64_t lru = 0;
  };

  Addr frame_of(Addr a) const { return a / cfg_.block_size; }
  Stream* find(Addr frame);
  Stream* allocate();

  StridePrefetcherConfig cfg_;
  std::vector<Stream> table_;
  std::uint64_t stamp_ = 0;
  std::uint64_t confirmed_ = 0;
  std::uint64_t widened_ = 0;
};

}  // namespace selcache::hw
