// Cache-bypassing hardware scheme (§3.1, after Johnson & Hwu [8,9]):
// MAT-driven selective caching + SLDT-driven variable-size fetching + bypass
// buffer. Operates on the L1 data cache.
#pragma once

#include "hw/bypass_buffer.h"
#include "hw/mat.h"
#include "hw/sldt.h"
#include "memsys/hw_hooks.h"

namespace selcache::hw {

struct BypassSchemeConfig {
  MatConfig mat{};
  SldtConfig sldt{};
  /// The paper sizes the buffer as "64 double words" (512 B); we hold whole
  /// L1 blocks so a bypassed stream keeps its spatial locality: 512 B /
  /// 32 B blocks = 16 entries.
  std::uint32_t buffer_entries = 16;
  std::uint32_t buffer_block_size = 32;
  /// Bypass only on strong evidence: the victim's macro-block frequency
  /// must be at least bias x the incoming block's AND above a floor.
  /// Without the margin, frequency noise under uniform access degenerates
  /// into coin-flip bypassing that only destroys locality.
  double bypass_bias = 1.5;
  std::uint32_t min_victim_freq = 4;
  /// Decrement the evicted block's macro-block counter (after [8]); turning
  /// this off slows MAT adaptation — stale phase state persists longer.
  bool punish_on_eviction = true;
  Cycle buffer_hit_extra = 0;  ///< extra cycles on a bypass-buffer hit
};

class BypassScheme final : public memsys::HwScheme {
 public:
  explicit BypassScheme(BypassSchemeConfig cfg);

  std::string_view name() const override { return "bypass"; }

  void set_trace(trace::Recorder* rec) override;
  void set_fault(fault::Injector* inj) override {
    mat_.set_fault(inj);
    sldt_.set_fault(inj);
    buffer_.set_fault(inj);
  }
  bool check_integrity() const override {
    return mat_.check_integrity() && sldt_.check_integrity();
  }
  void on_access(memsys::Level level, Addr addr, bool is_write,
                 bool hit) override;
  std::optional<AuxHit> service_miss(memsys::Level level, Addr addr,
                                     bool is_write) override;
  memsys::FillDecision fill_decision(memsys::Level level, Addr addr,
                                     std::optional<Addr> victim) override;
  void on_bypassed(memsys::Level level, Addr addr, bool is_write) override;
  void on_eviction(memsys::Level level, Addr block_addr, bool dirty) override;
  std::uint32_t fetch_width(memsys::Level level, Addr addr) override;
  void export_stats(StatSet& out) const override;

  const Mat& mat() const { return mat_; }
  const Sldt& sldt() const { return sldt_; }
  const BypassBuffer& buffer() const { return buffer_; }
  std::uint64_t bypasses() const { return bypasses_; }
  std::uint64_t widened_fetches() const { return widened_; }

 private:
  BypassSchemeConfig cfg_;
  Mat mat_;
  Sldt sldt_;
  BypassBuffer buffer_;
  trace::Recorder* trace_ = nullptr;
  std::uint64_t bypasses_ = 0;
  std::uint64_t widened_ = 0;
};

}  // namespace selcache::hw
