// Memory Access Table (Johnson & Hwu, ISCA 1997 [8]).
//
// Memory is divided into macro-blocks (1 KB in the paper, §4.1); the MAT is
// a tagged table of saturating access-frequency counters, one per resident
// macro-block. The cache controller consults it on every fill: if the
// incoming block's macro-block is accessed less frequently than the
// would-be victim's, the incoming block BYPASSES the cache (it is served via
// a small bypass buffer instead), keeping the hot block resident.
//
// Counters decay (halve) every `decay_interval` accesses so the table can
// track phase changes — slowly. That lag is precisely the pathology §5.1 of
// the DATE'03 paper identifies: after a phase change the stale counters
// cause useful new-phase blocks to be bypassed until the table re-learns.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitutil.h"
#include "support/saturating.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::trace {
class Recorder;
}

namespace selcache::fault {
class Injector;
}

namespace selcache::hw {

struct MatConfig {
  std::uint32_t entries = 4096;          ///< table entries (paper: 4096)
  std::uint32_t macro_block_size = 1024; ///< bytes per macro-block (paper: 1 KB)
  std::uint32_t counter_max = 255;       ///< saturating counter ceiling
  std::uint64_t decay_interval = 262144; ///< halve all counters every N touches
};

class Mat {
 public:
  explicit Mat(MatConfig cfg);

  /// Record one access to the macro-block containing `addr`. Inline: runs
  /// once per data access while the scheme is on; the decay check is a mask
  /// for the shipped power-of-two interval.
  void touch(Addr addr) {
    const Addr mb = macro_block(addr);
    Entry& e = table_[index_of(mb)];
    if (!e.valid || e.tag != mb) {
      // Direct-mapped replacement: the evicted macro-block's history is
      // lost; the newcomer starts from scratch.
      if (e.valid) ++replacements_;
      e.valid = true;
      e.tag = mb;
      e.count.reset(0);
    }
    e.count.increment();
    if (fault_ != nullptr) touch_fault(e);
    // Count every touch (the energy model charges per table update) even
    // when periodic decay is disabled.
    ++touches_;
    const bool decay_due =
        decay_mask_ != 0
            ? (touches_ & decay_mask_) == 0
            : (cfg_.decay_interval != 0 &&
               touches_ % cfg_.decay_interval == 0);
    if (decay_due) decay_sweep();
  }

  /// Penalize the macro-block whose cache block was just evicted ([8]
  /// adjusts the loser of a replacement decision downward so streams that
  /// keep losing cache space lose MAT standing too).
  void punish(Addr addr, std::uint32_t by = 1);

  /// Current frequency estimate for the macro-block containing `addr`.
  /// A macro-block not resident in the table counts as frequency 0.
  std::uint32_t frequency(Addr addr) const {
    const Addr mb = macro_block(addr);
    const Entry& e = table_[index_of(mb)];
    return (e.valid && e.tag == mb) ? e.count.value() : 0;
  }

  /// Reset all entries (not normally used at run time; tests only).
  void clear();

  const MatConfig& config() const { return cfg_; }
  std::uint64_t touches() const { return touches_; }
  std::uint64_t replacements() const { return replacements_; }
  std::uint64_t decays() const { return decays_; }
  void export_stats(StatSet& out) const;

  /// Attach (non-owning) a phase-trace recorder; decay sweeps become
  /// discrete events. nullptr detaches.
  void set_trace(trace::Recorder* rec) { trace_ = rec; }

  /// Attach (non-owning) a fault injector; counter updates become
  /// corruption opportunities. nullptr detaches.
  void set_fault(fault::Injector* inj) { fault_ = inj; }

  /// Cheap invariant sweep used by the controller's integrity checks: every
  /// valid entry's counter is within its ceiling and the entry is stored in
  /// the slot its tag hashes to. Holds by construction in an un-faulted
  /// run; an injected bit-flip can break either.
  bool check_integrity() const;

 private:
  struct Entry {
    Addr tag = 0;  ///< macro-block number
    bool valid = false;
    SaturatingCounter<std::uint32_t> count;
  };

  Addr macro_block(Addr addr) const {
    return mb_pow2_ ? (addr >> mb_shift_) : (addr / cfg_.macro_block_size);
  }
  std::uint32_t index_of(Addr mb) const {
    return static_cast<std::uint32_t>(entries_pow2_ ? (mb & entry_mask_)
                                                    : (mb % cfg_.entries));
  }

  /// Out-of-line slow paths of touch().
  void touch_fault(Entry& e);
  void decay_sweep();

  MatConfig cfg_;
  std::uint64_t decay_mask_ = 0;  ///< decay_interval-1 when pow2, else 0
  unsigned mb_shift_ = 0;   ///< log2(macro_block_size) when mb_pow2_
  bool mb_pow2_ = false;
  Addr entry_mask_ = 0;     ///< entries-1 when entries_pow2_
  bool entries_pow2_ = false;
  std::vector<Entry> table_;
  trace::Recorder* trace_ = nullptr;
  fault::Injector* fault_ = nullptr;
  std::uint64_t touches_ = 0;
  std::uint64_t replacements_ = 0;
  std::uint64_t decays_ = 0;
};

}  // namespace selcache::hw
