// Run-time ON/OFF controller for the hardware optimization mechanism.
//
// The ISA extension of §4.1 adds activate/deactivate instructions; at
// execution time each one flips a flag that gates the attached HwScheme.
// The controller also implements the redundancy semantics the compiler
// relies on (an activate while already active is a no-op but still costs an
// instruction slot — which is why the compiler eliminates redundant markers).
#pragma once

#include <cstdint>

#include "memsys/hw_hooks.h"
#include "trace/recorder.h"

namespace selcache::hw {

enum class SchemeKind { None, Bypass, Victim, Prefetch, Composite };

inline const char* to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::None: return "none";
    case SchemeKind::Bypass: return "bypass";
    case SchemeKind::Victim: return "victim";
    case SchemeKind::Prefetch: return "prefetch";
    case SchemeKind::Composite: return "bypass+victim";
  }
  return "?";
}

class Controller {
 public:
  /// `scheme` may be null (machine without the hardware mechanism).
  explicit Controller(memsys::HwScheme* scheme) : scheme_(scheme) {}

  /// Execute an activate (ON) or deactivate (OFF) instruction. `region` is
  /// the static source-region id the marker belongs to (-1 when unknown,
  /// e.g. hand-written toggles in tests).
  void toggle(bool on, std::int32_t region = -1) {
    ++toggles_executed_;
    if (scheme_ == nullptr) return;
    if (scheme_->active() != on) ++effective_toggles_;
    scheme_->set_active(on);
    if (trace_ != nullptr)
      trace_->event({.kind = trace::EventKind::Toggle,
                     .region = region,
                     .on = on});
  }

  /// Force the scheme on for the entire run (PureHardware / Combined
  /// versions) or off (Base / PureSoftware). Emits a synthetic Toggle event
  /// (region -1) when a recorder is attached so timelines know the run's
  /// initial state.
  void force(bool on) {
    if (scheme_ != nullptr) scheme_->set_active(on);
    if (trace_ != nullptr && scheme_ != nullptr)
      trace_->event(
          {.kind = trace::EventKind::Toggle, .region = -1, .on = on});
  }

  /// Attach (non-owning) a phase-trace recorder; nullptr detaches.
  void set_trace(trace::Recorder* rec) { trace_ = rec; }

  bool active() const { return scheme_ != nullptr && scheme_->active(); }
  memsys::HwScheme* scheme() const { return scheme_; }

  std::uint64_t toggles_executed() const { return toggles_executed_; }
  std::uint64_t effective_toggles() const { return effective_toggles_; }

  void export_stats(StatSet& out) const {
    out.add("controller.toggles_executed", toggles_executed_);
    out.add("controller.effective_toggles", effective_toggles_);
  }

 private:
  memsys::HwScheme* scheme_;
  trace::Recorder* trace_ = nullptr;
  std::uint64_t toggles_executed_ = 0;
  std::uint64_t effective_toggles_ = 0;
};

}  // namespace selcache::hw
