// Run-time ON/OFF controller for the hardware optimization mechanism.
//
// The ISA extension of §4.1 adds activate/deactivate instructions; at
// execution time each one flips a flag that gates the attached HwScheme.
// The controller also implements the redundancy semantics the compiler
// relies on (an activate while already active is a no-op but still costs an
// instruction slot — which is why the compiler eliminates redundant markers).
//
// Robustness: the controller is also where the fault layer meets the
// architecture. Markers pass through an optional fault::Injector (drop /
// duplicate / reorder), and an optional DegradePolicy arms cheap run-time
// self-checks — when the injected-fault budget is exceeded or a scheme
// invariant breaks, the controller DEMOTES to safe mode: the hardware
// scheme is forced off, later markers are ignored, and a structured
// Degradation trace event records the demotion. Results from a degraded run
// are those of a plain cache, never of silently corrupted tables.
#pragma once

#include <cstdint>

#include "memsys/hw_hooks.h"
#include "trace/recorder.h"

namespace selcache::fault {
class Injector;
}

namespace selcache::hw {

enum class SchemeKind { None, Bypass, Victim, Prefetch, Composite };

inline const char* to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::None: return "none";
    case SchemeKind::Bypass: return "bypass";
    case SchemeKind::Victim: return "victim";
    case SchemeKind::Prefetch: return "prefetch";
    case SchemeKind::Composite: return "bypass+victim";
  }
  return "?";
}

/// Why the controller demoted to safe mode.
enum class DegradeReason : std::uint8_t { None = 0, FaultBudget = 1,
                                          IntegrityCheck = 2 };

inline const char* to_string(DegradeReason r) {
  switch (r) {
    case DegradeReason::None: return "none";
    case DegradeReason::FaultBudget: return "fault_budget";
    case DegradeReason::IntegrityCheck: return "integrity";
  }
  return "?";
}

/// When (and whether) the controller self-checks and demotes. Default:
/// disarmed — zero cost beyond one predictable branch per data access.
struct DegradePolicy {
  /// Demote once the attached injector reports more than this many injected
  /// faults (0 = no budget).
  std::uint64_t fault_budget = 0;
  /// Run HwScheme::check_integrity() periodically and demote on failure.
  bool integrity_checks = false;
  /// Data accesses between periodic checks (amortizes the table sweeps).
  std::uint64_t check_interval = 4096;

  bool armed() const { return fault_budget > 0 || integrity_checks; }
};

class Controller {
 public:
  /// `scheme` may be null (machine without the hardware mechanism).
  explicit Controller(memsys::HwScheme* scheme) : scheme_(scheme) {}

  /// Execute an activate (ON) or deactivate (OFF) instruction. `region` is
  /// the static source-region id the marker belongs to (-1 when unknown,
  /// e.g. hand-written toggles in tests). With a fault injector attached
  /// the marker may be dropped, duplicated or reordered before it takes
  /// effect; in safe mode it still costs its slot but is ignored.
  void toggle(bool on, std::int32_t region = -1) {
    ++toggles_executed_;
    if (fault_ == nullptr && !degraded_) {
      apply_toggle(on, region);
      return;
    }
    faulted_toggle(on, region);
  }

  /// Force the scheme on for the entire run (PureHardware / Combined
  /// versions) or off (Base / PureSoftware). Emits a synthetic Toggle event
  /// (region -1) when a recorder is attached so timelines know the run's
  /// initial state. A degraded controller refuses to re-enable.
  void force(bool on) {
    if (degraded_ && on) return;
    if (scheme_ != nullptr) scheme_->set_active(on);
    if (trace_ != nullptr && scheme_ != nullptr)
      trace_->event(
          {.kind = trace::EventKind::Toggle, .region = -1, .on = on});
  }

  /// Per-data-access heartbeat (called from the timing model). Disarmed or
  /// already-degraded controllers return after one branch.
  void tick() {
    if (!armed_ || degraded_) return;
    if (++accesses_since_check_ < policy_.check_interval) return;
    accesses_since_check_ = 0;
    run_checks();
  }

  /// Attach (non-owning) a phase-trace recorder; nullptr detaches.
  void set_trace(trace::Recorder* rec) { trace_ = rec; }

  /// Attach (non-owning) a fault injector at the marker-delivery boundary;
  /// nullptr detaches. The injector is also what the fault budget counts.
  void set_fault(fault::Injector* inj) { fault_ = inj; }

  /// Arm (or disarm, with a default-constructed policy) degradation.
  void set_degrade_policy(const DegradePolicy& policy) {
    policy_ = policy;
    armed_ = policy.armed();
  }

  bool active() const { return scheme_ != nullptr && scheme_->active(); }
  memsys::HwScheme* scheme() const { return scheme_; }

  bool degraded() const { return degraded_; }
  DegradeReason degrade_reason() const { return reason_; }

  std::uint64_t toggles_executed() const { return toggles_executed_; }
  std::uint64_t effective_toggles() const { return effective_toggles_; }
  std::uint64_t degradations() const { return degradations_; }

  void export_stats(StatSet& out) const {
    out.add("controller.toggles_executed", toggles_executed_);
    out.add("controller.effective_toggles", effective_toggles_);
    // Degradation keys only exist when the policy is armed, so un-faulted
    // runs keep their stat/JSONL output byte-identical to earlier builds.
    if (armed_) {
      out.add("controller.degradations", degradations_);
      out.add("controller.safe_mode", degraded_ ? 1 : 0);
    }
  }

 private:
  void apply_toggle(bool on, std::int32_t region) {
    if (scheme_ == nullptr) return;
    if (scheme_->active() != on) ++effective_toggles_;
    scheme_->set_active(on);
    if (trace_ != nullptr)
      trace_->event({.kind = trace::EventKind::Toggle,
                     .region = region,
                     .on = on});
  }

  // Cold path bodies (controller.cpp): marker delivery through the
  // injector, self-checks, and the demotion itself.
  void faulted_toggle(bool on, std::int32_t region);
  void run_checks();
  void demote(DegradeReason reason);

  memsys::HwScheme* scheme_;
  trace::Recorder* trace_ = nullptr;
  fault::Injector* fault_ = nullptr;
  DegradePolicy policy_{};
  bool armed_ = false;
  bool degraded_ = false;
  DegradeReason reason_ = DegradeReason::None;
  std::uint64_t accesses_since_check_ = 0;
  std::uint64_t toggles_executed_ = 0;
  std::uint64_t effective_toggles_ = 0;
  std::uint64_t degradations_ = 0;
};

}  // namespace selcache::hw
