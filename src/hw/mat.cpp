#include "hw/mat.h"

#include "fault/injector.h"
#include "support/check.h"
#include "trace/recorder.h"

namespace selcache::hw {

Mat::Mat(MatConfig cfg) : cfg_(cfg) {
  SELCACHE_CHECK(cfg_.entries > 0);
  SELCACHE_CHECK(cfg_.macro_block_size > 0);
  mb_pow2_ = is_pow2(cfg_.macro_block_size);
  if (mb_pow2_) mb_shift_ = log2_exact(cfg_.macro_block_size);
  entries_pow2_ = is_pow2(cfg_.entries);
  if (entries_pow2_) entry_mask_ = cfg_.entries - 1;
  if (cfg_.decay_interval != 0 && is_pow2(cfg_.decay_interval))
    decay_mask_ = cfg_.decay_interval - 1;
  table_.resize(cfg_.entries);
  for (Entry& e : table_)
    e.count = SaturatingCounter<std::uint32_t>(cfg_.counter_max, 0);
}

void Mat::touch_fault(Entry& e) {
  if (auto raw = fault_->corrupt_counter(e.count.value(), cfg_.counter_max,
                                         fault::CounterSite::Mat))
    e.count.corrupt(*raw);
}

void Mat::decay_sweep() {
  ++decays_;
  for (Entry& t : table_) t.count.decay();
  if (trace_ != nullptr) trace_->event({.kind = trace::EventKind::MatDecay});
}

void Mat::punish(Addr addr, std::uint32_t by) {
  const Addr mb = macro_block(addr);
  Entry& e = table_[index_of(mb)];
  if (e.valid && e.tag == mb) e.count.decrement(by);
}

void Mat::clear() {
  for (Entry& e : table_) {
    e.valid = false;
    e.count.reset(0);
  }
  touches_ = 0;
}

bool Mat::check_integrity() const {
  for (std::uint32_t i = 0; i < table_.size(); ++i) {
    const Entry& e = table_[i];
    if (!e.valid) continue;
    if (e.count.value() > cfg_.counter_max) return false;
    if (index_of(e.tag) != i) return false;
  }
  return true;
}

void Mat::export_stats(StatSet& out) const {
  out.add("mat.touches", touches_);
  out.add("mat.replacements", replacements_);
  out.add("mat.decays", decays_);
}

}  // namespace selcache::hw
