// Spatial Locality Detection Table (Johnson, Merten & Hwu, MICRO 1997 [9]).
//
// Tracks, per macro-block, whether accesses exhibit spatial locality: an
// access whose neighboring cache block was touched recently is a *spatial
// hit* and increments the macro-block's Spatial Counter; an isolated access
// decrements it. When the counter is in its upper half the cache controller
// fetches a larger unit (two blocks instead of one) on a fill.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitutil.h"
#include "support/saturating.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::fault {
class Injector;
}

namespace selcache::hw {

struct SldtConfig {
  std::uint32_t entries = 256;           ///< recently-touched-block window
  std::uint32_t block_size = 32;         ///< cache-block granularity
  std::uint32_t macro_block_size = 1024; ///< counter granularity (as MAT)
  std::uint32_t counter_entries = 1024;  ///< spatial-counter table size
  std::uint32_t counter_max = 15;
  std::uint32_t counter_initial = 8;     ///< start neutral-positive
};

class Sldt {
 public:
  explicit Sldt(SldtConfig cfg);

  /// Observe an access; updates the recent-block window and the spatial
  /// counter of the enclosing macro-block. Inline: this runs once per data
  /// access while the scheme is on, and with the shipped power-of-two
  /// geometry every table index is a shift/mask (no division).
  void note(Addr addr) {
    const Addr f = frame_of(addr);
    auto& ctr = counters_[counter_index(macro_of(addr))];
    // A spatial hit: either neighbor block was touched within the window.
    if (in_window(f - 1) || in_window(f + 1)) {
      ++spatial_hits_;
      ctr.increment();
    } else if (!in_window(f)) {
      // Re-touching the same block is neutral; a genuinely isolated touch
      // decays the spatial expectation.
      ++spatial_misses_;
      ctr.decrement();
    }
    if (fault_ != nullptr) note_fault(ctr);
    insert_window(f);
  }

  /// Does the macro-block containing `addr` currently exhibit spatial
  /// locality (counter in upper half)?
  bool spatial(Addr addr) const {
    return counters_[counter_index(macro_of(addr))].upper_half();
  }

  std::uint64_t spatial_hits() const { return spatial_hits_; }
  std::uint64_t spatial_misses() const { return spatial_misses_; }
  void export_stats(StatSet& out) const;

  /// Attach (non-owning) a fault injector; spatial-counter updates become
  /// corruption opportunities. nullptr detaches.
  void set_fault(fault::Injector* inj) { fault_ = inj; }

  /// Invariant sweep for the controller's integrity checks: every spatial
  /// counter is within its ceiling.
  bool check_integrity() const;

 private:
  struct WindowEntry {
    Addr frame = 0;
    bool valid = false;
  };

  Addr frame_of(Addr addr) const {
    return block_pow2_ ? (addr >> block_shift_) : (addr / cfg_.block_size);
  }
  Addr macro_of(Addr addr) const {
    return macro_pow2_ ? (addr >> macro_shift_)
                       : (addr / cfg_.macro_block_size);
  }
  std::size_t window_index(Addr frame) const {
    return window_pow2_ ? (frame & window_mask_) : (frame % cfg_.entries);
  }
  std::size_t counter_index(Addr mb) const {
    return counters_pow2_ ? (mb & counter_mask_)
                          : (mb % cfg_.counter_entries);
  }
  bool in_window(Addr frame) const {
    const WindowEntry& e = window_[window_index(frame)];
    return e.valid && e.frame == frame;
  }
  void insert_window(Addr frame) {
    WindowEntry& e = window_[window_index(frame)];
    e.valid = true;
    e.frame = frame;
  }
  /// Out-of-line fault hook (fault campaigns never ride the fast path).
  void note_fault(SaturatingCounter<std::uint32_t>& ctr);

  SldtConfig cfg_;
  unsigned block_shift_ = 0, macro_shift_ = 0;
  bool block_pow2_ = false, macro_pow2_ = false;
  bool window_pow2_ = false, counters_pow2_ = false;
  Addr window_mask_ = 0, counter_mask_ = 0;
  std::vector<WindowEntry> window_;               ///< direct-mapped by frame
  std::vector<SaturatingCounter<std::uint32_t>> counters_;  ///< by macro-block
  fault::Injector* fault_ = nullptr;
  std::uint64_t spatial_hits_ = 0;
  std::uint64_t spatial_misses_ = 0;
};

}  // namespace selcache::hw
