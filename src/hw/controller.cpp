#include "hw/controller.h"

#include "fault/injector.h"

namespace selcache::hw {

void Controller::faulted_toggle(bool on, std::int32_t region) {
  if (degraded_) return;  // safe mode: markers cost their slot, do nothing
  if (fault_ == nullptr) {
    apply_toggle(on, region);
  } else {
    bool delivered[2];
    const int n = fault_->transform_toggle(on, delivered);
    for (int i = 0; i < n; ++i) apply_toggle(delivered[i], region);
  }
  // Markers are rare relative to accesses; every one that reaches the
  // controller is also a self-check point (phase boundaries are where a
  // demotion matters most).
  if (armed_) run_checks();
}

void Controller::run_checks() {
  if (degraded_) return;
  if (policy_.fault_budget > 0 && fault_ != nullptr &&
      fault_->injected() > policy_.fault_budget) {
    demote(DegradeReason::FaultBudget);
    return;
  }
  if (policy_.integrity_checks && scheme_ != nullptr &&
      !scheme_->check_integrity())
    demote(DegradeReason::IntegrityCheck);
}

void Controller::demote(DegradeReason reason) {
  degraded_ = true;
  reason_ = reason;
  ++degradations_;
  if (scheme_ != nullptr) scheme_->set_active(false);
  if (trace_ != nullptr)
    trace_->event({.kind = trace::EventKind::Degradation,
                   .addr = static_cast<Addr>(reason),
                   .region = -1,
                   .on = false});
}

}  // namespace selcache::hw
