#include "hw/controller.h"

// Header-only today; TU anchors the target.
namespace selcache::hw {}
