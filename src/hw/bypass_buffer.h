// Bypass buffer: a tiny fully-associative cache of double words that holds
// data the MAT decided not to cache. §4.1: "The bypass buffer is a fully-
// associative cache with 64 double words and uses LRU replacement."
#pragma once

#include <list>
#include <unordered_map>

#include "support/bitutil.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::fault {
class Injector;
}

namespace selcache::hw {

class BypassBuffer {
 public:
  explicit BypassBuffer(std::uint32_t entries = 64,
                        std::uint32_t word_size = 8);

  /// Look up the double word containing `addr`; refreshes LRU on hit and
  /// merges dirtiness on a write hit.
  bool access(Addr addr, bool is_write);

  /// Insert the double word containing `addr` (after a bypassed fill).
  /// The LRU entry is displaced when full; displaced dirty words count as
  /// writebacks.
  void insert(Addr addr, bool dirty);

  bool probe(Addr addr) const;

  std::uint32_t occupancy() const {
    return static_cast<std::uint32_t>(lru_.size());
  }
  std::uint32_t capacity() const { return entries_; }
  const HitMiss& stats() const { return stats_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t invalidated() const { return invalidated_; }
  void export_stats(StatSet& out) const;

  /// Attach (non-owning) a fault injector; each insert becomes an
  /// opportunity to silently lose the LRU entry (dirty data and all —
  /// that is the fault). nullptr detaches.
  void set_fault(fault::Injector* inj) { fault_ = inj; }

 private:
  Addr word_of(Addr addr) const {
    return word_pow2_ ? (addr >> word_shift_) : (addr / word_size_);
  }

  std::uint32_t entries_;
  std::uint32_t word_size_;
  unsigned word_shift_ = 0;  ///< log2(word_size) when word_pow2_
  bool word_pow2_ = false;
  std::list<std::pair<Addr, bool>> lru_;  ///< front = MRU; (word, dirty)
  std::unordered_map<Addr, std::list<std::pair<Addr, bool>>::iterator> index_;
  fault::Injector* fault_ = nullptr;
  HitMiss stats_;
  std::uint64_t writebacks_ = 0;
  std::uint64_t invalidated_ = 0;
};

}  // namespace selcache::hw
