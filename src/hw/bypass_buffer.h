// Bypass buffer: a tiny fully-associative cache of double words that holds
// data the MAT decided not to cache. §4.1: "The bypass buffer is a fully-
// associative cache with 64 double words and uses LRU replacement."
//
// Stored as a flat array with monotonic LRU stamps (MRU = max stamp, LRU =
// min stamp): at 64 entries a linear scan is cheaper than the hash-map +
// linked-list it replaced, and the buffer does no allocation after
// construction. The observable behavior (hit/miss, dirty merging, which
// word is displaced, writeback and fault-invalidation counts) is identical
// to an MRU-at-front list.
#pragma once

#include <vector>

#include "support/bitutil.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::fault {
class Injector;
}

namespace selcache::hw {

class BypassBuffer {
 public:
  explicit BypassBuffer(std::uint32_t entries = 64,
                        std::uint32_t word_size = 8);

  /// Look up the double word containing `addr`; refreshes LRU on hit and
  /// merges dirtiness on a write hit.
  bool access(Addr addr, bool is_write) {
    const Addr w = word_of(addr);
    for (Entry& e : slots_) {
      if (e.valid && e.word == w) {
        e.dirty = e.dirty || is_write;
        e.stamp = ++stamp_;
        stats_.record(true);
        return true;
      }
    }
    stats_.record(false);
    return false;
  }

  /// Insert the double word containing `addr` (after a bypassed fill).
  /// The LRU entry is displaced when full; displaced dirty words count as
  /// writebacks.
  void insert(Addr addr, bool dirty);

  bool probe(Addr addr) const {
    const Addr w = word_of(addr);
    for (const Entry& e : slots_)
      if (e.valid && e.word == w) return true;
    return false;
  }

  std::uint32_t occupancy() const { return live_; }
  std::uint32_t capacity() const { return entries_; }
  const HitMiss& stats() const { return stats_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t invalidated() const { return invalidated_; }
  void export_stats(StatSet& out) const;

  /// Attach (non-owning) a fault injector; each insert becomes an
  /// opportunity to silently lose the LRU entry (dirty data and all —
  /// that is the fault). nullptr detaches.
  void set_fault(fault::Injector* inj) { fault_ = inj; }

 private:
  struct Entry {
    Addr word = 0;
    std::uint64_t stamp = 0;
    bool dirty = false;
    bool valid = false;
  };

  Addr word_of(Addr addr) const {
    return word_pow2_ ? (addr >> word_shift_) : (addr / word_size_);
  }

  /// The valid entry with the minimum stamp; requires live_ > 0.
  Entry& lru_entry();

  std::uint32_t entries_;
  std::uint32_t word_size_;
  unsigned word_shift_ = 0;  ///< log2(word_size) when word_pow2_
  bool word_pow2_ = false;
  std::vector<Entry> slots_;
  std::uint32_t live_ = 0;
  std::uint64_t stamp_ = 0;
  fault::Injector* fault_ = nullptr;
  HitMiss stats_;
  std::uint64_t writebacks_ = 0;
  std::uint64_t invalidated_ = 0;
};

}  // namespace selcache::hw
