#include "hw/sldt.h"

#include "fault/injector.h"
#include "support/check.h"

namespace selcache::hw {

Sldt::Sldt(SldtConfig cfg) : cfg_(cfg) {
  SELCACHE_CHECK(cfg_.entries > 0);
  SELCACHE_CHECK(cfg_.block_size > 0);
  SELCACHE_CHECK(cfg_.counter_entries > 0);
  block_pow2_ = is_pow2(cfg_.block_size);
  if (block_pow2_) block_shift_ = log2_exact(cfg_.block_size);
  macro_pow2_ = is_pow2(cfg_.macro_block_size);
  if (macro_pow2_) macro_shift_ = log2_exact(cfg_.macro_block_size);
  window_pow2_ = is_pow2(cfg_.entries);
  if (window_pow2_) window_mask_ = cfg_.entries - 1;
  counters_pow2_ = is_pow2(cfg_.counter_entries);
  if (counters_pow2_) counter_mask_ = cfg_.counter_entries - 1;
  window_.resize(cfg_.entries);
  counters_.assign(cfg_.counter_entries,
                   SaturatingCounter<std::uint32_t>(cfg_.counter_max,
                                                    cfg_.counter_initial));
}

void Sldt::note_fault(SaturatingCounter<std::uint32_t>& ctr) {
  if (auto raw = fault_->corrupt_counter(ctr.value(), cfg_.counter_max,
                                         fault::CounterSite::Sldt))
    ctr.corrupt(*raw);
}

bool Sldt::check_integrity() const {
  for (const auto& ctr : counters_)
    if (ctr.value() > cfg_.counter_max) return false;
  return true;
}

void Sldt::export_stats(StatSet& out) const {
  out.add("sldt.spatial_hits", spatial_hits_);
  out.add("sldt.spatial_misses", spatial_misses_);
}

}  // namespace selcache::hw
