#include "hw/sldt.h"

#include "fault/injector.h"
#include "support/check.h"

namespace selcache::hw {

Sldt::Sldt(SldtConfig cfg) : cfg_(cfg) {
  SELCACHE_CHECK(cfg_.entries > 0);
  SELCACHE_CHECK(cfg_.block_size > 0);
  SELCACHE_CHECK(cfg_.counter_entries > 0);
  window_.resize(cfg_.entries);
  counters_.assign(cfg_.counter_entries,
                   SaturatingCounter<std::uint32_t>(cfg_.counter_max,
                                                    cfg_.counter_initial));
}

bool Sldt::in_window(Addr frame) const {
  const WindowEntry& e = window_[frame % cfg_.entries];
  return e.valid && e.frame == frame;
}

void Sldt::insert_window(Addr frame) {
  WindowEntry& e = window_[frame % cfg_.entries];
  e.valid = true;
  e.frame = frame;
}

void Sldt::note(Addr addr) {
  const Addr f = frame_of(addr);
  auto& ctr = counters_[macro_of(addr) % cfg_.counter_entries];
  // A spatial hit: either neighbor block was touched within the window.
  if (in_window(f - 1) || in_window(f + 1)) {
    ++spatial_hits_;
    ctr.increment();
  } else if (!in_window(f)) {
    // Re-touching the same block is neutral; a genuinely isolated touch
    // decays the spatial expectation.
    ++spatial_misses_;
    ctr.decrement();
  }
  if (fault_ != nullptr) {
    if (auto raw = fault_->corrupt_counter(ctr.value(), cfg_.counter_max,
                                           fault::CounterSite::Sldt))
      ctr.corrupt(*raw);
  }
  insert_window(f);
}

bool Sldt::check_integrity() const {
  for (const auto& ctr : counters_)
    if (ctr.value() > cfg_.counter_max) return false;
  return true;
}

bool Sldt::spatial(Addr addr) const {
  return counters_[macro_of(addr) % cfg_.counter_entries].upper_half();
}

void Sldt::export_stats(StatSet& out) const {
  out.add("sldt.spatial_hits", spatial_hits_);
  out.add("sldt.spatial_misses", spatial_misses_);
}

}  // namespace selcache::hw
