#include "hw/victim_scheme.h"

#include "support/check.h"
#include "trace/recorder.h"

namespace selcache::hw {

using memsys::FillDecision;
using memsys::Level;

VictimScheme::VictimScheme(VictimSchemeConfig cfg)
    : cfg_(cfg),
      l1v_("victim_l1", cfg.l1_entries, cfg.l1_block_size),
      l2v_("victim_l2", cfg.l2_entries, cfg.l2_block_size) {}

void VictimScheme::on_access(Level /*level*/, Addr /*addr*/, bool /*is_write*/,
                             bool /*hit*/) {
  // Victim caching keeps no access-frequency state.
}

std::optional<memsys::HwScheme::AuxHit> VictimScheme::service_miss(
    Level level, Addr addr, bool /*is_write*/) {
  memsys::VictimCache& vc = (level == Level::L1D) ? l1v_ : l2v_;
  if (level != Level::L1D && level != Level::L2) return std::nullopt;
  if (auto dirty = vc.extract(addr)) {
    // Classic swap: the block is promoted back into the main cache, and the
    // hierarchy will hand us the displaced block via on_eviction.
    if (trace_ != nullptr)
      trace_->event({.kind = trace::EventKind::VictimPromotion,
                     .addr = addr,
                     .level = static_cast<std::uint8_t>(level)});
    return AuxHit{.extra_latency = cfg_.swap_latency,
                  .promote = true,
                  .dirty = *dirty};
  }
  return std::nullopt;
}

FillDecision VictimScheme::fill_decision(Level /*level*/, Addr /*addr*/,
                                         std::optional<Addr> /*victim*/) {
  return FillDecision::Fill;  // victim caching never bypasses
}

void VictimScheme::on_bypassed(Level /*level*/, Addr /*addr*/,
                               bool /*is_write*/) {
  SELCACHE_CHECK_MSG(false, "victim scheme never bypasses");
}

void VictimScheme::on_eviction(Level level, Addr block_addr, bool dirty) {
  if (level == Level::L1D) {
    l1v_.insert(block_addr, dirty);
  } else if (level == Level::L2) {
    l2v_.insert(block_addr, dirty);
  }
}

std::uint32_t VictimScheme::fetch_width(Level /*level*/, Addr /*addr*/) {
  return 1;
}

void VictimScheme::export_stats(StatSet& out) const {
  l1v_.export_stats(out);
  l2v_.export_stats(out);
}

}  // namespace selcache::hw
