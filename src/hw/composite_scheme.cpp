#include "hw/composite_scheme.h"

namespace selcache::hw {

using memsys::FillDecision;
using memsys::Level;

CompositeScheme::CompositeScheme(CompositeSchemeConfig cfg)
    : bypass_(cfg.bypass), victim_(cfg.victim) {
  // The sub-schemes are always consulted through the composite, which is
  // gated by the controller; keep them permanently active internally.
  bypass_.set_active(true);
  victim_.set_active(true);
}

void CompositeScheme::on_access(Level level, Addr addr, bool is_write,
                                bool hit) {
  bypass_.on_access(level, addr, is_write, hit);
  victim_.on_access(level, addr, is_write, hit);
}

std::optional<memsys::HwScheme::AuxHit> CompositeScheme::service_miss(
    Level level, Addr addr, bool is_write) {
  // The bypass buffer is closest to the core; the victim cache backs it.
  if (auto aux = bypass_.service_miss(level, addr, is_write)) return aux;
  return victim_.service_miss(level, addr, is_write);
}

FillDecision CompositeScheme::fill_decision(Level level, Addr addr,
                                            std::optional<Addr> victim) {
  return bypass_.fill_decision(level, addr, victim);
}

void CompositeScheme::on_bypassed(Level level, Addr addr, bool is_write) {
  bypass_.on_bypassed(level, addr, is_write);
}

void CompositeScheme::on_eviction(Level level, Addr block_addr, bool dirty) {
  victim_.on_eviction(level, block_addr, dirty);
}

std::uint32_t CompositeScheme::fetch_width(Level level, Addr addr) {
  return std::max(bypass_.fetch_width(level, addr),
                  victim_.fetch_width(level, addr));
}

void CompositeScheme::export_stats(StatSet& out) const {
  bypass_.export_stats(out);
  victim_.export_stats(out);
}

}  // namespace selcache::hw
