#include "hw/bypass_buffer.h"

#include "fault/injector.h"
#include "support/check.h"

namespace selcache::hw {

BypassBuffer::BypassBuffer(std::uint32_t entries, std::uint32_t word_size)
    : entries_(entries), word_size_(word_size) {
  SELCACHE_CHECK(entries_ > 0);
  SELCACHE_CHECK(word_size_ > 0);
  word_pow2_ = is_pow2(word_size_);
  if (word_pow2_) word_shift_ = log2_exact(word_size_);
  slots_.resize(entries_);
}

BypassBuffer::Entry& BypassBuffer::lru_entry() {
  Entry* lru = nullptr;
  for (Entry& e : slots_)
    if (e.valid && (lru == nullptr || e.stamp < lru->stamp)) lru = &e;
  return *lru;
}

void BypassBuffer::insert(Addr addr, bool dirty) {
  if (fault_ != nullptr && live_ > 0 &&
      fault_->should_invalidate(fault::BufferSite::BypassBuffer)) {
    // Silent loss: the LRU word vanishes without a writeback — exactly the
    // data-loss hazard a faulted buffer introduces.
    lru_entry().valid = false;
    --live_;
    ++invalidated_;
  }
  // One pass resolves all three outcomes: refresh a matching word, take the
  // first free slot, or displace the minimum-stamp (LRU) word.
  const Addr w = word_of(addr);
  Entry* free_slot = nullptr;
  Entry* lru = nullptr;
  for (Entry& e : slots_) {
    if (e.valid) {
      if (e.word == w) {
        e.dirty = e.dirty || dirty;
        e.stamp = ++stamp_;
        return;
      }
      if (lru == nullptr || e.stamp < lru->stamp) lru = &e;
    } else if (free_slot == nullptr) {
      free_slot = &e;
    }
  }
  Entry* slot = free_slot;
  if (slot == nullptr) {
    // Full: displace the least recently used word.
    slot = lru;
    if (slot->dirty) ++writebacks_;
  } else {
    ++live_;
  }
  slot->valid = true;
  slot->word = w;
  slot->dirty = dirty;
  slot->stamp = ++stamp_;
}

void BypassBuffer::export_stats(StatSet& out) const {
  out.add("bypass_buffer.hits", stats_.hits);
  out.add("bypass_buffer.misses", stats_.misses);
  out.add("bypass_buffer.writebacks", writebacks_);
  // Fault-only key: kept out of un-faulted runs so their stat/JSONL output
  // stays byte-identical to the pre-fault-layer format.
  if (fault_ != nullptr) out.add("bypass_buffer.invalidated", invalidated_);
}

}  // namespace selcache::hw
