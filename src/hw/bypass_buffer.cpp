#include "hw/bypass_buffer.h"

#include "fault/injector.h"
#include "support/check.h"

namespace selcache::hw {

BypassBuffer::BypassBuffer(std::uint32_t entries, std::uint32_t word_size)
    : entries_(entries), word_size_(word_size) {
  SELCACHE_CHECK(entries_ > 0);
  SELCACHE_CHECK(word_size_ > 0);
  word_pow2_ = is_pow2(word_size_);
  if (word_pow2_) word_shift_ = log2_exact(word_size_);
}

bool BypassBuffer::access(Addr addr, bool is_write) {
  auto it = index_.find(word_of(addr));
  if (it == index_.end()) {
    stats_.record(false);
    return false;
  }
  stats_.record(true);
  it->second->second = it->second->second || is_write;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void BypassBuffer::insert(Addr addr, bool dirty) {
  if (fault_ != nullptr && !lru_.empty() &&
      fault_->should_invalidate(fault::BufferSite::BypassBuffer)) {
    // Silent loss: the LRU word vanishes without a writeback — exactly the
    // data-loss hazard a faulted buffer introduces.
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++invalidated_;
  }
  const Addr w = word_of(addr);
  if (auto it = index_.find(w); it != index_.end()) {
    it->second->second = it->second->second || dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() == entries_) {
    if (lru_.back().second) ++writebacks_;
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(w, dirty);
  index_[w] = lru_.begin();
}

bool BypassBuffer::probe(Addr addr) const {
  return index_.find(word_of(addr)) != index_.end();
}

void BypassBuffer::export_stats(StatSet& out) const {
  out.add("bypass_buffer.hits", stats_.hits);
  out.add("bypass_buffer.misses", stats_.misses);
  out.add("bypass_buffer.writebacks", writebacks_);
  // Fault-only key: kept out of un-faulted runs so their stat/JSONL output
  // stays byte-identical to the pre-fault-layer format.
  if (fault_ != nullptr) out.add("bypass_buffer.invalidated", invalidated_);
}

}  // namespace selcache::hw
