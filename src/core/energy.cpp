#include "core/energy.h"

namespace selcache::core {

EnergyBreakdown estimate_energy(const StatSet& s, const EnergyParams& p) {
  EnergyBreakdown e;
  const auto hits_misses = [&s](const std::string& prefix) {
    return s.get(prefix + ".hits") + s.get(prefix + ".misses");
  };

  e.l1 = p.l1_access * static_cast<double>(hits_misses("l1d") +
                                           hits_misses("l1i"));
  e.l2 = p.l2_access * static_cast<double>(hits_misses("l2"));
  e.memory = p.memory_access * static_cast<double>(s.get("mem.reads"));
  e.tlb = p.tlb_access * static_cast<double>(hits_misses("dtlb") +
                                             hits_misses("itlb"));
  // MAT energy is charged per table UPDATE (mat.touches = one per L1D
  // access while the scheme is active), not per bypass outcome: a scheme
  // that touches the table a million times but never bypasses still spent
  // that energy. (Earlier revisions used bypass.bypasses as a proxy, which
  // under-counted by orders of magnitude and went to zero for well-cached
  // phases.)
  e.aux = p.victim_probe * static_cast<double>(hits_misses("victim_l1") +
                                               hits_misses("victim_l2")) +
          p.bypass_probe * static_cast<double>(hits_misses("bypass_buffer")) +
          p.mat_touch * static_cast<double>(s.get("mat.touches")) +
          p.toggle * static_cast<double>(s.get("controller.toggles_executed"));
  e.core = p.instruction * static_cast<double>(s.get("cpu.instructions"));
  return e;
}

}  // namespace selcache::core
