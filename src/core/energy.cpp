#include "core/energy.h"

namespace selcache::core {

EnergyBreakdown estimate_energy(const StatSet& s, const EnergyParams& p) {
  EnergyBreakdown e;
  const auto hits_misses = [&s](const std::string& prefix) {
    return s.get(prefix + ".hits") + s.get(prefix + ".misses");
  };

  e.l1 = p.l1_access * static_cast<double>(hits_misses("l1d") +
                                           hits_misses("l1i"));
  e.l2 = p.l2_access * static_cast<double>(hits_misses("l2"));
  e.memory = p.memory_access * static_cast<double>(s.get("mem.reads"));
  e.tlb = p.tlb_access * static_cast<double>(hits_misses("dtlb") +
                                             hits_misses("itlb"));
  e.aux = p.victim_probe * static_cast<double>(hits_misses("victim_l1") +
                                               hits_misses("victim_l2")) +
          p.bypass_probe * static_cast<double>(hits_misses("bypass_buffer")) +
          p.mat_touch * static_cast<double>(s.get("bypass.bypasses")) +
          p.toggle * static_cast<double>(s.get("controller.toggles_executed"));
  e.core = p.instruction * static_cast<double>(s.get("cpu.instructions"));
  return e;
}

}  // namespace selcache::core
