#include "core/runner.h"

#include <array>
#include <future>
#include <optional>

#include "codegen/trace_engine.h"
#include "support/thread_pool.h"
#include "trace/recorder.h"

namespace selcache::core {

namespace {

std::uint64_t l1_accesses(const RunResult& r) {
  return r.stats.get("l1d.hits") + r.stats.get("l1d.misses") +
         r.stats.get("l1i.hits") + r.stats.get("l1i.misses");
}

/// Assemble one figure row from the five per-version results. Shared by the
/// serial and parallel paths so their outputs are bit-identical.
ImprovementRow make_row(const workloads::WorkloadInfo& w,
                        const std::array<RunResult, 5>& results) {
  ImprovementRow row;
  row.benchmark = w.name;
  row.category = w.category;
  row.base_cycles = results[0].cycles;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i) {
    const Version v = kAllVersions[i];
    if (v != Version::Base)
      row.pct[v] = improvement_pct(row.base_cycles, results[i].cycles);
    row.accesses += l1_accesses(results[i]);
    row.stats.merge(results[i].stats, std::string(version_key(v)) + ".");
  }
  return row;
}

}  // namespace

const char* version_key(Version v) {
  switch (v) {
    case Version::Base: return "base";
    case Version::PureHardware: return "purehw";
    case Version::PureSoftware: return "puresw";
    case Version::Combined: return "combined";
    case Version::Selective: return "selective";
  }
  return "?";
}

RunResult run_version(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt,
                      trace::Recording* trace_out) {
  // 1. Code product (§4.4).
  const ir::Program base = w.build();
  ir::Program product = prepare_program(base, v, opt.optimize);

  // 2. Machine: hierarchy + scheme + controller + timing model.
  memsys::HierarchyConfig hcfg = m.hierarchy;
  hcfg.classify_misses = opt.classify_misses;
  memsys::Hierarchy hierarchy(hcfg);
  std::unique_ptr<memsys::HwScheme> scheme =
      v == Version::Base || v == Version::PureSoftware
          ? nullptr
          : make_scheme(opt.scheme, m);
  hierarchy.attach_hw(scheme.get());
  hw::Controller controller(scheme.get());

  // Optional phase tracing: attach a recorder BEFORE forcing the initial
  // scheme state, so the timeline starts with the synthetic Toggle event
  // that documents it. The recorder and its sink live on this task's stack:
  // a parallel sweep never shares trace state between tasks.
  std::optional<trace::MemorySink> sink;
  std::optional<trace::Recorder> rec;
  if (trace_out != nullptr) {
    sink.emplace(*trace_out);
    rec.emplace(*sink, opt.trace_epoch);
    rec->register_source(
        [&hierarchy](StatSet& s) { hierarchy.export_stats(s); });
    hierarchy.set_trace(&*rec);
    if (scheme != nullptr) scheme->set_trace(&*rec);
    controller.set_trace(&*rec);
  }
  controller.force(hw_always_on(v));  // Selective starts OFF; toggles drive it
  cpu::TimingModel cpu(m.cpu, hierarchy, controller);
  if (rec) {
    rec->register_source([&cpu](StatSet& s) { cpu.export_stats(s); });
    rec->register_source(
        [&controller](StatSet& s) { controller.export_stats(s); });
  }

  // 3. Execute.
  codegen::DataEnv env(product, {.seed = opt.data_seed});
  codegen::TraceEngine engine(product, env, cpu);
  engine.run();
  if (rec) rec->finish();

  // 4. Collect.
  RunResult r;
  r.cycles = cpu.cycles();
  r.instructions = cpu.instructions();
  r.l1_miss_rate = hierarchy.l1_miss_rate();
  r.l2_miss_rate = hierarchy.l2_miss_rate();
  if (const auto* c = hierarchy.classifier()) r.conflict_share =
      c->conflict_share();
  r.toggles = controller.toggles_executed();
  hierarchy.export_stats(r.stats);
  cpu.export_stats(r.stats);
  controller.export_stats(r.stats);
  return r;
}

namespace {

/// Append one workload's five recordings to `traces` in kAllVersions order
/// (the trace half of the determinism contract).
void append_captures(const workloads::WorkloadInfo& w,
                     std::array<trace::Recording, 5>& recs,
                     std::vector<TraceCapture>* traces) {
  if (traces == nullptr) return;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i)
    traces->push_back({w.name, kAllVersions[i], std::move(recs[i])});
}

}  // namespace

ImprovementRow improvements_for(const workloads::WorkloadInfo& w,
                                const MachineConfig& m, const RunOptions& opt,
                                const ParallelSweepOptions& par,
                                std::vector<TraceCapture>* traces) {
  std::array<RunResult, 5> results;
  std::array<trace::Recording, 5> recs;
  const bool tracing = traces != nullptr;
  if (par.num_threads > 1) {
    support::ThreadPool pool(par.num_threads);
    std::array<std::future<RunResult>, 5> futures;
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      futures[i] = pool.submit(
          [&w, &m, v = kAllVersions[i], &opt,
           tr = tracing ? &recs[i] : nullptr] {
            return run_version(w, m, v, opt, tr);
          });
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      results[i] = futures[i].get();
  } else {
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      results[i] = run_version(w, m, kAllVersions[i], opt,
                               tracing ? &recs[i] : nullptr);
  }
  append_captures(w, recs, traces);
  return make_row(w, results);
}

std::vector<ImprovementRow> sweep_suite(const MachineConfig& m,
                                        const RunOptions& opt,
                                        const ParallelSweepOptions& par,
                                        std::vector<TraceCapture>* traces) {
  const auto& suite = workloads::all_workloads();
  std::vector<ImprovementRow> rows;
  rows.reserve(suite.size());

  if (par.num_threads <= 1) {
    for (const auto& w : suite)
      rows.push_back(improvements_for(w, m, opt, {}, traces));
    return rows;
  }

  // Fan out every (workload, version) pair as one task — 13x5 independent
  // simulations, each owning its full machine state. Futures are collected
  // in submission order, so assembly below is deterministic no matter how
  // the pool schedules the work. Trace recordings follow the same contract:
  // each task writes its own pre-allocated slot; captures are appended in
  // (workload, version) order afterwards.
  support::ThreadPool pool(par.num_threads);
  std::vector<std::array<std::future<RunResult>, 5>> futures(suite.size());
  std::vector<std::array<trace::Recording, 5>> recs(
      traces != nullptr ? suite.size() : 0);
  for (std::size_t wi = 0; wi < suite.size(); ++wi)
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
      futures[wi][vi] = pool.submit(
          [&w = suite[wi], &m, v = kAllVersions[vi], &opt,
           tr = traces != nullptr ? &recs[wi][vi] : nullptr] {
            return run_version(w, m, v, opt, tr);
          });

  for (std::size_t wi = 0; wi < suite.size(); ++wi) {
    std::array<RunResult, 5> results;
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
      results[vi] = futures[wi][vi].get();
    rows.push_back(make_row(suite[wi], results));
    if (traces != nullptr) append_captures(suite[wi], recs[wi], traces);
  }
  return rows;
}

double average_improvement(const std::vector<ImprovementRow>& rows, Version v,
                           const workloads::Category* filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& row : rows) {
    if (filter != nullptr && row.category != *filter) continue;
    auto it = row.pct.find(v);
    if (it == row.pct.end()) continue;
    sum += it->second;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace selcache::core
