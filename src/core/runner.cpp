#include "core/runner.h"

#include <array>
#include <future>
#include <optional>

#include "codegen/trace_engine.h"
#include "fault/injector.h"
#include "support/thread_pool.h"
#include "trace/recorder.h"

namespace selcache::core {

namespace {

std::uint64_t l1_accesses(const RunResult& r) {
  return r.stats.get("l1d.hits") + r.stats.get("l1d.misses") +
         r.stats.get("l1i.hits") + r.stats.get("l1i.misses");
}

/// Assemble one figure row from the five per-version results. Shared by the
/// serial and parallel paths so their outputs are bit-identical.
ImprovementRow make_row(const workloads::WorkloadInfo& w,
                        const std::array<RunResult, 5>& results) {
  ImprovementRow row;
  row.benchmark = w.name;
  row.category = w.category;
  row.base_cycles = results[0].cycles;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i) {
    const Version v = kAllVersions[i];
    if (v != Version::Base)
      row.pct[v] = improvement_pct(row.base_cycles, results[i].cycles);
    row.accesses += l1_accesses(results[i]);
    row.stats.merge(results[i].stats, std::string(version_key(v)) + ".");
  }
  return row;
}

}  // namespace

const char* version_key(Version v) {
  switch (v) {
    case Version::Base: return "base";
    case Version::PureHardware: return "purehw";
    case Version::PureSoftware: return "puresw";
    case Version::Combined: return "combined";
    case Version::Selective: return "selective";
  }
  return "?";
}

RunResult run_version(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt,
                      trace::Recording* trace_out) {
  // 1. Code product (§4.4).
  const ir::Program base = w.build();
  ir::Program product = prepare_program(base, v, opt.optimize);

  // 2. Machine: hierarchy + scheme + controller + timing model.
  memsys::HierarchyConfig hcfg = m.hierarchy;
  hcfg.classify_misses = opt.classify_misses;
  memsys::Hierarchy hierarchy(hcfg);
  std::unique_ptr<memsys::HwScheme> scheme =
      v == Version::Base || v == Version::PureSoftware
          ? nullptr
          : make_scheme(opt.scheme, m);
  hierarchy.attach_hw(scheme.get());
  hw::Controller controller(scheme.get());

  // Optional fault campaign: the injector lives on this task's stack like
  // the trace recorder, and attaching it is the only thing that makes any
  // fault hook non-null. Without it this function compiles down to the
  // pre-fault-layer simulation.
  std::optional<fault::Injector> injector;
  if (opt.fault.enabled() || opt.watchdog_accesses > 0) {
    injector.emplace(opt.fault, opt.watchdog_accesses);
    hierarchy.set_fault(&*injector);
    if (scheme != nullptr) scheme->set_fault(&*injector);
    controller.set_fault(&*injector);
  }
  if (opt.degrade.armed()) controller.set_degrade_policy(opt.degrade);

  // Optional phase tracing: attach a recorder BEFORE forcing the initial
  // scheme state, so the timeline starts with the synthetic Toggle event
  // that documents it. The recorder and its sink live on this task's stack:
  // a parallel sweep never shares trace state between tasks.
  std::optional<trace::MemorySink> sink;
  std::optional<trace::Recorder> rec;
  if (trace_out != nullptr) {
    sink.emplace(*trace_out);
    rec.emplace(*sink, opt.trace_epoch);
    rec->register_source(
        [&hierarchy](StatSet& s) { hierarchy.export_stats(s); });
    hierarchy.set_trace(&*rec);
    if (scheme != nullptr) scheme->set_trace(&*rec);
    controller.set_trace(&*rec);
  }
  controller.force(hw_always_on(v));  // Selective starts OFF; toggles drive it
  cpu::TimingModel cpu(m.cpu, hierarchy, controller);
  if (rec) {
    rec->register_source([&cpu](StatSet& s) { cpu.export_stats(s); });
    rec->register_source(
        [&controller](StatSet& s) { controller.export_stats(s); });
    if (injector)
      rec->register_source(
          [&inj = *injector](StatSet& s) { inj.export_stats(s); });
  }

  // 3. Execute.
  codegen::DataEnv env(product, {.seed = opt.data_seed});
  codegen::TraceEngine engine(product, env, cpu);
  engine.run();
  if (rec) rec->finish();

  // 4. Collect.
  RunResult r;
  r.cycles = cpu.cycles();
  r.instructions = cpu.instructions();
  r.l1_miss_rate = hierarchy.l1_miss_rate();
  r.l2_miss_rate = hierarchy.l2_miss_rate();
  if (const auto* c = hierarchy.classifier()) r.conflict_share =
      c->conflict_share();
  r.toggles = controller.toggles_executed();
  r.degradations = controller.degradations();
  hierarchy.export_stats(r.stats);
  cpu.export_stats(r.stats);
  controller.export_stats(r.stats);
  if (injector) {
    r.faults_injected = injector->injected();
    injector->export_stats(r.stats);
  }
  return r;
}

namespace {

/// Append one workload's five recordings to `traces` in kAllVersions order
/// (the trace half of the determinism contract).
void append_captures(const workloads::WorkloadInfo& w,
                     std::array<trace::Recording, 5>& recs,
                     std::vector<TraceCapture>* traces) {
  if (traces == nullptr) return;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i)
    traces->push_back({w.name, kAllVersions[i], std::move(recs[i])});
}

}  // namespace

ImprovementRow improvements_for(const workloads::WorkloadInfo& w,
                                const MachineConfig& m, const RunOptions& opt,
                                const ParallelSweepOptions& par,
                                std::vector<TraceCapture>* traces) {
  std::array<RunResult, 5> results;
  std::array<trace::Recording, 5> recs;
  const bool tracing = traces != nullptr;
  if (par.num_threads > 1) {
    support::ThreadPool pool(par.num_threads);
    std::array<std::future<RunResult>, 5> futures;
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      futures[i] = pool.submit(
          [&w, &m, v = kAllVersions[i], &opt,
           tr = tracing ? &recs[i] : nullptr] {
            return run_version(w, m, v, opt, tr);
          });
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      results[i] = futures[i].get();
  } else {
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      results[i] = run_version(w, m, kAllVersions[i], opt,
                               tracing ? &recs[i] : nullptr);
  }
  append_captures(w, recs, traces);
  return make_row(w, results);
}

std::vector<ImprovementRow> sweep_suite(const MachineConfig& m,
                                        const RunOptions& opt,
                                        const ParallelSweepOptions& par,
                                        std::vector<TraceCapture>* traces) {
  const auto& suite = workloads::all_workloads();
  std::vector<ImprovementRow> rows;
  rows.reserve(suite.size());

  if (par.num_threads <= 1) {
    for (const auto& w : suite)
      rows.push_back(improvements_for(w, m, opt, {}, traces));
    return rows;
  }

  // Fan out every (workload, version) pair as one task — 13x5 independent
  // simulations, each owning its full machine state. Futures are collected
  // in submission order, so assembly below is deterministic no matter how
  // the pool schedules the work. Trace recordings follow the same contract:
  // each task writes its own pre-allocated slot; captures are appended in
  // (workload, version) order afterwards.
  support::ThreadPool pool(par.num_threads);
  std::vector<std::array<std::future<RunResult>, 5>> futures(suite.size());
  std::vector<std::array<trace::Recording, 5>> recs(
      traces != nullptr ? suite.size() : 0);
  for (std::size_t wi = 0; wi < suite.size(); ++wi)
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
      futures[wi][vi] = pool.submit(
          [&w = suite[wi], &m, v = kAllVersions[vi], &opt,
           tr = traces != nullptr ? &recs[wi][vi] : nullptr] {
            return run_version(w, m, v, opt, tr);
          });

  for (std::size_t wi = 0; wi < suite.size(); ++wi) {
    std::array<RunResult, 5> results;
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
      results[vi] = futures[wi][vi].get();
    rows.push_back(make_row(suite[wi], results));
    if (traces != nullptr) append_captures(suite[wi], recs[wi], traces);
  }
  return rows;
}

namespace {

/// One guarded (workload, version) cell of a resilient sweep.
struct CellRun {
  std::optional<RunResult> result;  ///< nullopt when all attempts failed
  fault::CellOutcome outcome;
  trace::Recording recording;  ///< from the successful attempt (if any)
};

/// Run one cell with retry. Catches everything a simulation can throw —
/// injected crashes, watchdog kills, internal check failures — so the
/// caller's sweep loop never unwinds. Each attempt reseeds the injector
/// deterministically and records into a fresh Recording, so a failed
/// attempt leaves no partial trace behind.
CellRun run_cell_guarded(const workloads::WorkloadInfo& w,
                         const MachineConfig& m, std::size_t vi,
                         const RunOptions& base_opt,
                         const FaultSweepOptions& fopt, bool want_trace) {
  const Version v = kAllVersions[vi];
  CellRun cell;
  cell.outcome.workload = w.name;
  cell.outcome.version = version_key(v);
  for (std::uint32_t attempt = 0;; ++attempt) {
    RunOptions opt = base_opt;
    opt.fault = fopt.fault;
    opt.fault.seed = fault::task_seed(fopt.fault.seed, w.name,
                                      static_cast<std::uint32_t>(vi), attempt);
    opt.watchdog_accesses = fopt.watchdog_accesses;
    opt.degrade = fopt.degrade;
    cell.outcome.fault_seed = opt.fault.seed;
    cell.outcome.attempts = attempt + 1;
    trace::Recording rec;
    try {
      RunResult r = run_version(w, m, v, opt, want_trace ? &rec : nullptr);
      cell.outcome.status = r.degradations > 0
                                ? fault::CellOutcome::Status::Degraded
                                : fault::CellOutcome::Status::Ok;
      cell.outcome.faults_injected = r.faults_injected;
      cell.outcome.degradations = r.degradations;
      cell.outcome.error.clear();
      cell.result = std::move(r);
      cell.recording = std::move(rec);
      return cell;
    } catch (const std::exception& e) {
      cell.outcome.status = fault::CellOutcome::Status::Failed;
      cell.outcome.error = e.what();
      cell.outcome.faults_injected = 0;
      cell.outcome.degradations = 0;
      if (attempt >= fopt.max_retries) return cell;
    } catch (...) {
      cell.outcome.status = fault::CellOutcome::Status::Failed;
      cell.outcome.error = "unknown exception";
      cell.outcome.faults_injected = 0;
      cell.outcome.degradations = 0;
      if (attempt >= fopt.max_retries) return cell;
    }
  }
}

/// make_row over possibly-missing per-version results. A quarantined cell
/// contributes 0.0 improvement (figure tables always render a full row);
/// the FailureReport tells readers which numbers to trust.
ImprovementRow make_row_partial(
    const workloads::WorkloadInfo& w,
    const std::array<std::optional<RunResult>, 5>& results) {
  ImprovementRow row;
  row.benchmark = w.name;
  row.category = w.category;
  row.base_cycles = results[0] ? results[0]->cycles : 0;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i) {
    const Version v = kAllVersions[i];
    if (v != Version::Base)
      row.pct[v] = results[0] && results[i]
                       ? improvement_pct(row.base_cycles, results[i]->cycles)
                       : 0.0;
    if (results[i]) {
      row.accesses += l1_accesses(*results[i]);
      row.stats.merge(results[i]->stats, std::string(version_key(v)) + ".");
    }
  }
  return row;
}

/// Shared body of the resilient entry points: guard every (workload,
/// version) cell, then assemble rows / report / captures in fixed order so
/// the whole ResilientSweep is bit-identical at any thread count.
ResilientSweep run_resilient(
    const std::vector<const workloads::WorkloadInfo*>& suite,
    const MachineConfig& m, const RunOptions& opt,
    const ParallelSweepOptions& par, const FaultSweepOptions& fopt,
    std::vector<TraceCapture>* traces) {
  const bool tracing = traces != nullptr;
  std::vector<std::array<CellRun, 5>> cells(suite.size());

  if (par.num_threads > 1) {
    support::ThreadPool pool(par.num_threads);
    std::vector<std::array<std::future<CellRun>, 5>> futures(suite.size());
    for (std::size_t wi = 0; wi < suite.size(); ++wi)
      for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
        futures[wi][vi] =
            pool.submit([w = suite[wi], &m, vi, &opt, &fopt, tracing] {
              return run_cell_guarded(*w, m, vi, opt, fopt, tracing);
            });
    for (std::size_t wi = 0; wi < suite.size(); ++wi)
      for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
        cells[wi][vi] = futures[wi][vi].get();
  } else {
    for (std::size_t wi = 0; wi < suite.size(); ++wi)
      for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
        cells[wi][vi] = run_cell_guarded(*suite[wi], m, vi, opt, fopt,
                                         tracing);
  }

  ResilientSweep out;
  out.rows.reserve(suite.size());
  out.report.cells.reserve(suite.size() * kAllVersions.size());
  for (std::size_t wi = 0; wi < suite.size(); ++wi) {
    std::array<std::optional<RunResult>, 5> results;
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi) {
      results[vi] = std::move(cells[wi][vi].result);
      out.report.cells.push_back(std::move(cells[wi][vi].outcome));
    }
    out.rows.push_back(make_row_partial(*suite[wi], results));
    if (tracing)
      for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
        traces->push_back({suite[wi]->name, kAllVersions[vi],
                           std::move(cells[wi][vi].recording)});
  }
  return out;
}

}  // namespace

ResilientSweep improvements_for_resilient(const workloads::WorkloadInfo& w,
                                          const MachineConfig& m,
                                          const RunOptions& opt,
                                          const ParallelSweepOptions& par,
                                          const FaultSweepOptions& fopt,
                                          std::vector<TraceCapture>* traces) {
  return run_resilient({&w}, m, opt, par, fopt, traces);
}

ResilientSweep sweep_suite_resilient(const MachineConfig& m,
                                     const RunOptions& opt,
                                     const ParallelSweepOptions& par,
                                     const FaultSweepOptions& fopt,
                                     std::vector<TraceCapture>* traces) {
  const auto& suite = workloads::all_workloads();
  std::vector<const workloads::WorkloadInfo*> ptrs;
  ptrs.reserve(suite.size());
  for (const auto& w : suite) ptrs.push_back(&w);
  return run_resilient(ptrs, m, opt, par, fopt, traces);
}

double average_improvement(const std::vector<ImprovementRow>& rows, Version v,
                           const workloads::Category* filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& row : rows) {
    if (filter != nullptr && row.category != *filter) continue;
    auto it = row.pct.find(v);
    if (it == row.pct.end()) continue;
    sum += it->second;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace selcache::core
