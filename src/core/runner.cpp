#include "core/runner.h"

#include "codegen/trace_engine.h"

namespace selcache::core {

RunResult run_version(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt) {
  // 1. Code product (§4.4).
  const ir::Program base = w.build();
  ir::Program product = prepare_program(base, v, opt.optimize);

  // 2. Machine: hierarchy + scheme + controller + timing model.
  memsys::HierarchyConfig hcfg = m.hierarchy;
  hcfg.classify_misses = opt.classify_misses;
  memsys::Hierarchy hierarchy(hcfg);
  std::unique_ptr<memsys::HwScheme> scheme =
      v == Version::Base || v == Version::PureSoftware
          ? nullptr
          : make_scheme(opt.scheme, m);
  hierarchy.attach_hw(scheme.get());
  hw::Controller controller(scheme.get());
  controller.force(hw_always_on(v));  // Selective starts OFF; toggles drive it
  cpu::TimingModel cpu(m.cpu, hierarchy, controller);

  // 3. Execute.
  codegen::DataEnv env(product, {.seed = opt.data_seed});
  codegen::TraceEngine engine(product, env, cpu);
  engine.run();

  // 4. Collect.
  RunResult r;
  r.cycles = cpu.cycles();
  r.instructions = cpu.instructions();
  r.l1_miss_rate = hierarchy.l1_miss_rate();
  r.l2_miss_rate = hierarchy.l2_miss_rate();
  if (const auto* c = hierarchy.classifier()) r.conflict_share =
      c->conflict_share();
  r.toggles = controller.toggles_executed();
  hierarchy.export_stats(r.stats);
  cpu.export_stats(r.stats);
  controller.export_stats(r.stats);
  return r;
}

ImprovementRow improvements_for(const workloads::WorkloadInfo& w,
                                const MachineConfig& m,
                                const RunOptions& opt) {
  ImprovementRow row;
  row.benchmark = w.name;
  row.category = w.category;
  const RunResult base = run_version(w, m, Version::Base, opt);
  row.base_cycles = base.cycles;
  for (Version v : kEvaluatedVersions) {
    const RunResult r = run_version(w, m, v, opt);
    row.pct[v] = improvement_pct(base.cycles, r.cycles);
  }
  return row;
}

std::vector<ImprovementRow> sweep_suite(const MachineConfig& m,
                                        const RunOptions& opt) {
  std::vector<ImprovementRow> rows;
  for (const auto& w : workloads::all_workloads())
    rows.push_back(improvements_for(w, m, opt));
  return rows;
}

double average_improvement(const std::vector<ImprovementRow>& rows, Version v,
                           const workloads::Category* filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& row : rows) {
    if (filter != nullptr && row.category != *filter) continue;
    auto it = row.pct.find(v);
    if (it == row.pct.end()) continue;
    sum += it->second;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace selcache::core
