#include "core/runner.h"

#include <array>
#include <bit>
#include <cstdio>
#include <exception>
#include <future>
#include <optional>

#include "codegen/trace_engine.h"
#include "fault/injector.h"
#include "store/store.h"
#include "support/fingerprint.h"
#include "support/thread_pool.h"
#include "tape/cache.h"
#include "tape/multi_replayer.h"
#include "tape/recording_model.h"
#include "tape/replayer.h"
#include "trace/recorder.h"

namespace selcache::core {

namespace {

std::uint64_t l1_accesses(const RunResult& r) {
  return r.stats.get("l1d.hits") + r.stats.get("l1d.misses") +
         r.stats.get("l1i.hits") + r.stats.get("l1i.misses");
}

}  // namespace

/// Assemble one figure row from the five per-version results. Shared by the
/// serial, parallel, and checkpoint paths so their outputs are bit-identical.
ImprovementRow make_improvement_row(const workloads::WorkloadInfo& w,
                                    const std::array<RunResult, 5>& results) {
  ImprovementRow row;
  row.benchmark = w.name;
  row.category = w.category;
  row.base_cycles = results[0].cycles;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i) {
    const Version v = kAllVersions[i];
    if (v != Version::Base)
      row.pct[v] = improvement_pct(row.base_cycles, results[i].cycles);
    row.accesses += l1_accesses(results[i]);
    row.stats.merge(results[i].stats, std::string(version_key(v)) + ".");
  }
  return row;
}

const char* version_key(Version v) {
  switch (v) {
    case Version::Base: return "base";
    case Version::PureHardware: return "purehw";
    case Version::PureSoftware: return "puresw";
    case Version::Combined: return "combined";
    case Version::Selective: return "selective";
  }
  return "?";
}

namespace {

memsys::HierarchyConfig hierarchy_config(const MachineConfig& m,
                                         const RunOptions& opt) {
  memsys::HierarchyConfig hcfg = m.hierarchy;
  hcfg.classify_misses = opt.classify_misses;
  return hcfg;
}

/// All mutable machine state one simulation owns: hierarchy + scheme +
/// controller + timing model, with the optional fault injector and phase
/// recorder attached. Shared by the interpret, record, and replay paths so
/// a replayed run reconstructs *exactly* the machine an interpreted run
/// would see (attachment and source-registration order are part of the
/// bit-identical contract — the recorder is attached BEFORE the initial
/// force() so the timeline starts with the synthetic Toggle event, and the
/// stat sources register in hierarchy, cpu, controller, injector order).
struct Simulation {
  memsys::Hierarchy hierarchy;
  std::unique_ptr<memsys::HwScheme> scheme;
  hw::Controller controller;
  std::optional<fault::Injector> injector;
  std::optional<trace::MemorySink> sink;
  std::optional<trace::Recorder> rec;
  cpu::TimingModel cpu;

  Simulation(const MachineConfig& m, Version v, const RunOptions& opt,
             trace::Recording* trace_out)
      : hierarchy(hierarchy_config(m, opt)),
        scheme(v == Version::Base || v == Version::PureSoftware
                   ? nullptr
                   : make_scheme(opt.scheme, m)),
        controller(scheme.get()),
        cpu(m.cpu, hierarchy, controller) {
    hierarchy.attach_hw(scheme.get());
    // Optional run supervision (stop token / wall-clock deadline): exports
    // no stats and changes no results — only adds exit paths — so it is
    // invisible to the tape and store eligibility rules.
    if (opt.run_guard != nullptr) hierarchy.set_run_guard(opt.run_guard);

    // Optional fault campaign: the injector lives on this task's stack like
    // the trace recorder, and attaching it is the only thing that makes any
    // fault hook non-null. Without it this simulation compiles down to the
    // pre-fault-layer machine.
    if (opt.fault.enabled() || opt.watchdog_accesses > 0) {
      injector.emplace(opt.fault, opt.watchdog_accesses);
      hierarchy.set_fault(&*injector);
      if (scheme != nullptr) scheme->set_fault(&*injector);
      controller.set_fault(&*injector);
    }
    if (opt.degrade.armed()) controller.set_degrade_policy(opt.degrade);

    // Optional phase tracing. The recorder and its sink live on this task's
    // stack: a parallel sweep never shares trace state between tasks.
    if (trace_out != nullptr) {
      sink.emplace(*trace_out);
      rec.emplace(*sink, opt.trace_epoch);
      rec->register_source(
          [this](StatSet& s) { hierarchy.export_stats(s); });
      hierarchy.set_trace(&*rec);
      if (scheme != nullptr) scheme->set_trace(&*rec);
      controller.set_trace(&*rec);
    }
    controller.force(hw_always_on(v));  // Selective starts OFF; toggles drive
    if (rec) {
      rec->register_source([this](StatSet& s) { cpu.export_stats(s); });
      rec->register_source(
          [this](StatSet& s) { controller.export_stats(s); });
      if (injector)
        rec->register_source(
            [this](StatSet& s) { injector->export_stats(s); });
    }
  }

  /// Finish the phase recording (if any) and harvest the run's results.
  RunResult collect() {
    if (rec) rec->finish();
    RunResult r;
    r.cycles = cpu.cycles();
    r.instructions = cpu.instructions();
    r.l1_miss_rate = hierarchy.l1_miss_rate();
    r.l2_miss_rate = hierarchy.l2_miss_rate();
    if (const auto* c = hierarchy.classifier())
      r.conflict_share = c->conflict_share();
    r.toggles = controller.toggles_executed();
    r.degradations = controller.degradations();
    hierarchy.export_stats(r.stats);
    cpu.export_stats(r.stats);
    controller.export_stats(r.stats);
    if (injector) {
      r.faults_injected = injector->injected();
      injector->export_stats(r.stats);
    }
    return r;
  }
};

constexpr auto fnv1a = fnv1a_u64;  // shared fold (support/fingerprint.h)

}  // namespace

/// Hash of every RunOptions field the recorded stream depends on. The
/// machine and scheme are deliberately excluded (the stream is invariant
/// under both: geometry only changes the hierarchy's response, and the
/// scheme never feeds back into address generation); the verification
/// hooks (log / after_stage) observe the pipeline without changing its
/// output, so they are excluded too.
std::uint64_t stream_fingerprint(const RunOptions& opt) {
  const transform::OptimizeOptions& o = opt.optimize;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, opt.data_seed);
  h = fnv1a(h, std::bit_cast<std::uint64_t>(o.threshold));
  h = fnv1a(h, static_cast<std::uint64_t>(o.tiling.tile));
  h = fnv1a(h, static_cast<std::uint64_t>(o.tiling.min_tile));
  h = fnv1a(h, o.tiling.cache_bytes);
  h = fnv1a(h, o.unroll);
  std::uint64_t bits = 0;
  for (bool b : {o.enable_fusion, o.enable_interchange, o.enable_tiling,
                 o.enable_unroll_jam, o.enable_scalar_replacement,
                 o.enable_layout_selection, o.insert_markers,
                 o.eliminate_markers,
                 static_cast<bool>(o.method_predictor)})
    bits = (bits << 1) | (b ? 1 : 0);
  h = fnv1a(h, bits);
  // A method predictor reshapes the marked program, so its configuration
  // fingerprint is part of the stream identity.
  return fnv1a(h, o.method_predictor_fingerprint);
}

/// Fingerprint of every machine parameter a simulation's outputs depend
/// on. Scheme *configurations* are pure functions of (kind, machine) — see
/// make_scheme — so hashing the kind plus these fields covers them too.
std::uint64_t machine_fingerprint(const MachineConfig& m) {
  std::uint64_t h = kFnv1aOffset;
  for (const memsys::CacheConfig* c :
       {&m.hierarchy.l1d, &m.hierarchy.l1i, &m.hierarchy.l2}) {
    h = fnv1a(h, c->size_bytes);
    h = fnv1a(h, c->assoc);
    h = fnv1a(h, c->block_size);
    h = fnv1a(h, c->latency);
  }
  for (const memsys::TlbConfig* t : {&m.hierarchy.dtlb, &m.hierarchy.itlb}) {
    h = fnv1a(h, t->entries);
    h = fnv1a(h, t->assoc);
    h = fnv1a(h, t->page_size);
    h = fnv1a(h, t->miss_penalty);
  }
  h = fnv1a(h, m.hierarchy.mem.access_latency);
  h = fnv1a(h, m.hierarchy.mem.bus_width);
  h = fnv1a(h, m.cpu.issue_width);
  h = fnv1a(h, m.cpu.ruu_entries);
  h = fnv1a(h, m.cpu.lsq_entries);
  h = fnv1a(h, m.cpu.memory_ports);
  h = fnv1a(h, m.cpu.bimodal_entries);
  h = fnv1a(h, m.cpu.mispredict_penalty);
  h = fnv1a(h, m.cpu.overlap_bandwidth_cycles);
  h = fnv1a(h, m.cpu.toggle_latency);
  h = fnv1a(h, m.cpu.model_ifetch ? 1 : 0);
  return h;
}

namespace {

/// Is this run allowed on the tape path? Fault campaigns and watchdogs
/// perturb or truncate the run midstream, so they always interpret.
bool tape_eligible(const RunOptions& opt) {
  return opt.reuse_tape && !opt.fault.enabled() && opt.watchdog_accesses == 0;
}

/// Is this run allowed on the persistent-store path? Stored results carry
/// no fault/degradation counters and no trace recording, so any of those
/// features forces a live simulation.
bool store_eligible(const RunOptions& opt, const trace::Recording* trace_out) {
  return opt.result_store != nullptr && trace_out == nullptr &&
         !opt.fault.enabled() && opt.watchdog_accesses == 0 &&
         !opt.degrade.armed();
}

store::StoredResult to_stored(const RunResult& r) {
  // faults_injected / degradations are structurally 0 on the store path
  // (store_eligible excludes every run that could set them).
  return {.cycles = r.cycles,
          .instructions = r.instructions,
          .l1_miss_rate = r.l1_miss_rate,
          .l2_miss_rate = r.l2_miss_rate,
          .conflict_share = r.conflict_share,
          .toggles = r.toggles,
          .stats = r.stats};
}

RunResult from_stored(const store::StoredResult& s) {
  RunResult r;
  r.cycles = s.cycles;
  r.instructions = s.instructions;
  r.l1_miss_rate = s.l1_miss_rate;
  r.l2_miss_rate = s.l2_miss_rate;
  r.conflict_share = s.conflict_share;
  r.toggles = s.toggles;
  r.stats = s.stats;
  return r;
}

}  // namespace

std::string tape_key(const workloads::WorkloadInfo& w, Version v,
                     const RunOptions& opt) {
  char fp[17];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(stream_fingerprint(opt)));
  return w.name + "/" + version_key(v) + "/" + fp;
}

std::string store_key(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt) {
  char fp[40];
  std::snprintf(fp, sizeof(fp), "%016llx/%016llx",
                static_cast<unsigned long long>(machine_fingerprint(m)),
                static_cast<unsigned long long>(stream_fingerprint(opt)));
  // Readable prefix (workload/version/scheme) + machine and stream
  // fingerprints + the 3C flag (it adds classifier counters to the
  // StatSet) + the store format version, which invalidates everything at
  // once when the encoding or this derivation changes.
  return w.name + "/" + version_key(v) + "/" + hw::to_string(opt.scheme) +
         "/" + fp + (opt.classify_misses ? "/3c" : "/-") + "/s" +
         std::to_string(store::kStoreFormatVersion);
}

tape::Tape record_tape(const workloads::WorkloadInfo& w,
                       const MachineConfig& m, Version v,
                       const RunOptions& opt, RunResult* result,
                       trace::Recording* trace_out) {
  SELCACHE_CHECK_MSG(!opt.fault.enabled() && opt.watchdog_accesses == 0,
                     "cannot record a tape under a fault campaign");
  // Code product (§4.4), then the instrumented interpretation: the
  // RecordingTimingModel shim tees every timing-model call into the tape
  // builder while the real model simulates, so the recording run's results
  // are ordinary simulation results.
  const ir::Program base = w.build();
  ir::Program product = prepare_program(base, v, opt.optimize);
  Simulation sim(m, v, opt, trace_out);
  codegen::DataEnv env(product, {.seed = opt.data_seed});
  tape::TapeBuilder builder;
  tape::RecordingTimingModel shim(sim.cpu, builder);
  codegen::BasicTraceEngine<tape::RecordingTimingModel> engine(product, env,
                                                               shim);
  engine.run();
  RunResult r = sim.collect();  // always: finishes the phase recording too
  if (result != nullptr) *result = std::move(r);
  return builder.take();
}

RunResult replay_tape(const tape::Tape& t, const MachineConfig& m, Version v,
                      const RunOptions& opt, trace::Recording* trace_out) {
  Simulation sim(m, v, opt, trace_out);
  if (opt.batch > 0) {
    // Batched decode loop: same op stream, delivered batch by batch.
    const std::vector<cpu::TimingModel*> sinks{&sim.cpu};
    tape::multi_replay(t, sinks, /*pool=*/nullptr, opt.batch);
  } else {
    tape::TapeReplayer::replay(t, sim.cpu);
  }
  return sim.collect();
}

std::vector<RunResult> multi_replay_tape(
    const tape::Tape& t, const std::vector<MachineConfig>& machines, Version v,
    const RunOptions& opt, const ParallelSweepOptions& par,
    const std::vector<trace::Recording*>* traces) {
  SELCACHE_CHECK_MSG(traces == nullptr || traces->size() == machines.size(),
                     "multi_replay_tape: traces/machines size mismatch");
  // One full Simulation per machine point: each owns all mutable state, so
  // the fan-out below never shares anything but the immutable batch.
  std::vector<std::unique_ptr<Simulation>> sims;
  sims.reserve(machines.size());
  std::vector<cpu::TimingModel*> sinks;
  sinks.reserve(machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    sims.push_back(std::make_unique<Simulation>(
        machines[i], v, opt, traces != nullptr ? (*traces)[i] : nullptr));
    sinks.push_back(&sims.back()->cpu);
  }
  if (par.num_threads > 1 && machines.size() > 1) {
    SELCACHE_CHECK_MSG(opt.run_guard == nullptr,
                       "multi_replay_tape: a RunGuard is not thread-safe "
                       "across the parallel fan-out");
    support::ThreadPool pool(par.num_threads);
    tape::multi_replay(t, sinks, &pool, opt.batch);
  } else {
    tape::multi_replay(t, sinks, nullptr, opt.batch);
  }
  std::vector<RunResult> out;
  out.reserve(sims.size());
  for (auto& s : sims) out.push_back(s->collect());
  return out;
}

RunResult run_version(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt,
                      trace::Recording* trace_out) {
  // Persistent-store fast path: a hit reconstructs the whole RunResult
  // from disk and skips simulation entirely (including the tape path — a
  // stored result is strictly cheaper than a replay). A miss falls through
  // to whichever execution path applies and persists its result.
  const bool stored = store_eligible(opt, trace_out);
  std::string skey;
  if (stored) {
    skey = store_key(w, m, v, opt);
    if (std::optional<store::StoredResult> hit = opt.result_store->load(skey))
      return from_stored(*hit);
  }

  RunResult result = [&]() -> RunResult {
    if (tape_eligible(opt)) {
      tape::TapeCache& cache = opt.tape_cache != nullptr
                                   ? *opt.tape_cache
                                   : tape::TapeCache::global();
      // First run for this key records (and its results are used directly —
      // the recording run IS the interpreted run); every later run replays.
      std::optional<RunResult> recorded;
      const tape::TapeCache::TapePtr t =
          cache.get_or_record(tape_key(w, v, opt), [&] {
            RunResult r;
            tape::Tape fresh = record_tape(w, m, v, opt, &r, trace_out);
            recorded = std::move(r);
            return fresh;
          });
      if (recorded) return std::move(*recorded);
      return replay_tape(*t, m, v, opt, trace_out);
    }

    // Plain interpretation: code product (§4.4), machine, execute, collect.
    const ir::Program base = w.build();
    ir::Program product = prepare_program(base, v, opt.optimize);
    Simulation sim(m, v, opt, trace_out);
    codegen::DataEnv env(product, {.seed = opt.data_seed});
    codegen::TraceEngine engine(product, env, sim.cpu);
    engine.run();
    return sim.collect();
  }();

  if (stored) opt.result_store->save(skey, to_stored(result));
  return result;
}

namespace {

/// Append one workload's five recordings to `traces` in kAllVersions order
/// (the trace half of the determinism contract).
void append_captures(const workloads::WorkloadInfo& w,
                     std::array<trace::Recording, 5>& recs,
                     std::vector<TraceCapture>* traces) {
  if (traces == nullptr) return;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i)
    traces->push_back({w.name, kAllVersions[i], std::move(recs[i])});
}

}  // namespace

ImprovementRow improvements_for(const workloads::WorkloadInfo& w,
                                const MachineConfig& m, const RunOptions& opt,
                                const ParallelSweepOptions& par,
                                std::vector<TraceCapture>* traces) {
  std::array<RunResult, 5> results;
  std::array<trace::Recording, 5> recs;
  const bool tracing = traces != nullptr;
  if (par.num_threads > 1) {
    support::ThreadPool pool(par.num_threads);
    std::array<std::future<RunResult>, 5> futures;
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      futures[i] = pool.submit(
          [&w, &m, v = kAllVersions[i], &opt,
           tr = tracing ? &recs[i] : nullptr] {
            return run_version(w, m, v, opt, tr);
          });
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      results[i] = futures[i].get();
  } else {
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      results[i] = run_version(w, m, kAllVersions[i], opt,
                               tracing ? &recs[i] : nullptr);
  }
  append_captures(w, recs, traces);
  return make_improvement_row(w, results);
}

std::vector<ImprovementRow> sweep_suite(const MachineConfig& m,
                                        const RunOptions& opt,
                                        const ParallelSweepOptions& par,
                                        std::vector<TraceCapture>* traces) {
  const auto& suite = workloads::all_workloads();
  std::vector<ImprovementRow> rows;
  rows.reserve(suite.size());

  if (par.num_threads <= 1) {
    for (const auto& w : suite)
      rows.push_back(improvements_for(w, m, opt, {}, traces));
    return rows;
  }

  // Fan out every (workload, version) pair as one task — 13x5 independent
  // simulations, each owning its full machine state. Futures are collected
  // in submission order, so assembly below is deterministic no matter how
  // the pool schedules the work. Trace recordings follow the same contract:
  // each task writes its own pre-allocated slot; captures are appended in
  // (workload, version) order afterwards.
  support::ThreadPool pool(par.num_threads);
  std::vector<std::array<std::future<RunResult>, 5>> futures(suite.size());
  std::vector<std::array<trace::Recording, 5>> recs(
      traces != nullptr ? suite.size() : 0);
  for (std::size_t wi = 0; wi < suite.size(); ++wi)
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
      futures[wi][vi] = pool.submit(
          [&w = suite[wi], &m, v = kAllVersions[vi], &opt,
           tr = traces != nullptr ? &recs[wi][vi] : nullptr] {
            return run_version(w, m, v, opt, tr);
          });

  for (std::size_t wi = 0; wi < suite.size(); ++wi) {
    std::array<RunResult, 5> results;
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
      results[vi] = futures[wi][vi].get();
    rows.push_back(make_improvement_row(suite[wi], results));
    if (traces != nullptr) append_captures(suite[wi], recs[wi], traces);
  }
  return rows;
}

namespace {

/// One (workload, version) cell of a shared-decode axis sweep: results for
/// every machine point from ONE decode of the cell's tape. Store hits are
/// served per point; the tape is recorded at the first un-served point (the
/// recording run IS that point's simulation, exactly as in run_version);
/// every remaining point rides the multi-replay fan-out. Fresh results are
/// persisted under the same store keys run_version would use.
void run_cell_shared_decode(const workloads::WorkloadInfo& w, Version v,
                            const std::vector<MachineConfig>& machines,
                            const RunOptions& opt,
                            std::vector<RunResult>& out) {
  const std::size_t np = machines.size();
  out.resize(np);
  const bool stored = store_eligible(opt, nullptr);
  std::vector<std::string> skeys(np);
  std::vector<std::size_t> pending;
  pending.reserve(np);
  for (std::size_t pi = 0; pi < np; ++pi) {
    if (stored) {
      skeys[pi] = store_key(w, machines[pi], v, opt);
      if (std::optional<store::StoredResult> hit =
              opt.result_store->load(skeys[pi])) {
        out[pi] = from_stored(*hit);
        continue;
      }
    }
    pending.push_back(pi);
  }
  if (pending.empty()) return;

  tape::TapeCache& cache =
      opt.tape_cache != nullptr ? *opt.tape_cache : tape::TapeCache::global();
  std::optional<RunResult> recorded;
  const std::size_t rec_pi = pending.front();
  const tape::TapeCache::TapePtr t =
      cache.get_or_record(tape_key(w, v, opt), [&] {
        RunResult r;
        tape::Tape fresh = record_tape(w, machines[rec_pi], v, opt, &r,
                                       /*trace_out=*/nullptr);
        recorded = std::move(r);
        return fresh;
      });

  std::vector<std::size_t> replayed;
  replayed.reserve(pending.size());
  if (recorded) {
    out[rec_pi] = std::move(*recorded);
    for (std::size_t pi : pending)
      if (pi != rec_pi) replayed.push_back(pi);
  } else {
    replayed = pending;  // tape existed (preloaded / earlier cell of a rerun)
  }
  if (!replayed.empty()) {
    std::vector<MachineConfig> ms;
    ms.reserve(replayed.size());
    for (std::size_t pi : replayed) ms.push_back(machines[pi]);
    // Serial fan-out inside the cell: axis-level parallelism (one task per
    // cell) already saturates the pool, and interleaving on one thread
    // keeps every simulation's call order trivially deterministic.
    std::vector<RunResult> rr = multi_replay_tape(*t, ms, v, opt, {});
    for (std::size_t i = 0; i < replayed.size(); ++i)
      out[replayed[i]] = std::move(rr[i]);
  }
  if (stored)
    for (std::size_t pi : pending)
      opt.result_store->save(skeys[pi], to_stored(out[pi]));
}

}  // namespace

std::vector<std::vector<ImprovementRow>> sweep_axis_shared_decode(
    const std::vector<MachineConfig>& machines, const RunOptions& opt,
    const ParallelSweepOptions& par) {
  SELCACHE_CHECK_MSG(tape_eligible(opt) && !opt.degrade.armed(),
                     "sweep_axis_shared_decode needs a tape-eligible run "
                     "(reuse_tape, no faults/watchdog/degrade)");
  const auto& suite = workloads::all_workloads();
  const std::size_t nw = suite.size();
  const std::size_t nv = kAllVersions.size();

  // cells[wi][vi][pi]: every result of the whole axis, computed cell-major
  // (one decode per cell) and assembled point-major below in fixed order —
  // the same rows per-point sweep_suite calls would build.
  std::vector<std::vector<std::vector<RunResult>>> cells(
      nw, std::vector<std::vector<RunResult>>(nv));

  if (par.num_threads > 1) {
    support::ThreadPool pool(par.num_threads);
    std::vector<std::future<void>> done;
    done.reserve(nw * nv);
    for (std::size_t wi = 0; wi < nw; ++wi)
      for (std::size_t vi = 0; vi < nv; ++vi)
        done.push_back(pool.submit([&, wi, vi] {
          run_cell_shared_decode(suite[wi], kAllVersions[vi], machines, opt,
                                 cells[wi][vi]);
        }));
    std::exception_ptr err;
    for (auto& f : done) {
      try {
        f.get();
      } catch (...) {
        if (err == nullptr) err = std::current_exception();
      }
    }
    if (err != nullptr) std::rethrow_exception(err);
  } else {
    for (std::size_t wi = 0; wi < nw; ++wi)
      for (std::size_t vi = 0; vi < nv; ++vi)
        run_cell_shared_decode(suite[wi], kAllVersions[vi], machines, opt,
                               cells[wi][vi]);
  }

  std::vector<std::vector<ImprovementRow>> rows(machines.size());
  for (std::size_t pi = 0; pi < machines.size(); ++pi) {
    rows[pi].reserve(nw);
    for (std::size_t wi = 0; wi < nw; ++wi) {
      std::array<RunResult, 5> results;
      for (std::size_t vi = 0; vi < nv; ++vi)
        results[vi] = std::move(cells[wi][vi][pi]);
      rows[pi].push_back(make_improvement_row(suite[wi], results));
    }
  }
  return rows;
}

namespace {

/// One guarded (workload, version) cell of a resilient sweep.
struct CellRun {
  std::optional<RunResult> result;  ///< nullopt when all attempts failed
  fault::CellOutcome outcome;
  trace::Recording recording;  ///< from the successful attempt (if any)
};

/// Run one cell with retry. Catches everything a simulation can throw —
/// injected crashes, watchdog kills, internal check failures — so the
/// caller's sweep loop never unwinds. Each attempt reseeds the injector
/// deterministically and records into a fresh Recording, so a failed
/// attempt leaves no partial trace behind.
CellRun run_cell_guarded(const workloads::WorkloadInfo& w,
                         const MachineConfig& m, std::size_t vi,
                         const RunOptions& base_opt,
                         const FaultSweepOptions& fopt, bool want_trace) {
  const Version v = kAllVersions[vi];
  CellRun cell;
  cell.outcome.workload = w.name;
  cell.outcome.version = version_key(v);
  for (std::uint32_t attempt = 0;; ++attempt) {
    RunOptions opt = base_opt;
    opt.fault = fopt.fault;
    opt.fault.seed = fault::task_seed(fopt.fault.seed, w.name,
                                      static_cast<std::uint32_t>(vi), attempt);
    opt.watchdog_accesses = fopt.watchdog_accesses;
    opt.degrade = fopt.degrade;
    cell.outcome.fault_seed = opt.fault.seed;
    cell.outcome.attempts = attempt + 1;
    trace::Recording rec;
    try {
      RunResult r = run_version(w, m, v, opt, want_trace ? &rec : nullptr);
      cell.outcome.status = r.degradations > 0
                                ? fault::CellOutcome::Status::Degraded
                                : fault::CellOutcome::Status::Ok;
      cell.outcome.faults_injected = r.faults_injected;
      cell.outcome.degradations = r.degradations;
      cell.outcome.error.clear();
      cell.result = std::move(r);
      cell.recording = std::move(rec);
      return cell;
    } catch (const std::exception& e) {
      cell.outcome.status = fault::CellOutcome::Status::Failed;
      cell.outcome.error = e.what();
      cell.outcome.faults_injected = 0;
      cell.outcome.degradations = 0;
      if (attempt >= fopt.max_retries) return cell;
    } catch (...) {
      cell.outcome.status = fault::CellOutcome::Status::Failed;
      cell.outcome.error = "unknown exception";
      cell.outcome.faults_injected = 0;
      cell.outcome.degradations = 0;
      if (attempt >= fopt.max_retries) return cell;
    }
  }
}

/// make_row over possibly-missing per-version results. A quarantined cell
/// contributes 0.0 improvement (figure tables always render a full row);
/// the FailureReport tells readers which numbers to trust.
ImprovementRow make_row_partial(
    const workloads::WorkloadInfo& w,
    const std::array<std::optional<RunResult>, 5>& results) {
  ImprovementRow row;
  row.benchmark = w.name;
  row.category = w.category;
  row.base_cycles = results[0] ? results[0]->cycles : 0;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i) {
    const Version v = kAllVersions[i];
    if (v != Version::Base)
      row.pct[v] = results[0] && results[i]
                       ? improvement_pct(row.base_cycles, results[i]->cycles)
                       : 0.0;
    if (results[i]) {
      row.accesses += l1_accesses(*results[i]);
      row.stats.merge(results[i]->stats, std::string(version_key(v)) + ".");
    }
  }
  return row;
}

/// Shared body of the resilient entry points: guard every (workload,
/// version) cell, then assemble rows / report / captures in fixed order so
/// the whole ResilientSweep is bit-identical at any thread count.
ResilientSweep run_resilient(
    const std::vector<const workloads::WorkloadInfo*>& suite,
    const MachineConfig& m, const RunOptions& opt,
    const ParallelSweepOptions& par, const FaultSweepOptions& fopt,
    std::vector<TraceCapture>* traces) {
  const bool tracing = traces != nullptr;
  std::vector<std::array<CellRun, 5>> cells(suite.size());

  if (par.num_threads > 1) {
    support::ThreadPool pool(par.num_threads);
    std::vector<std::array<std::future<CellRun>, 5>> futures(suite.size());
    for (std::size_t wi = 0; wi < suite.size(); ++wi)
      for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
        futures[wi][vi] =
            pool.submit([w = suite[wi], &m, vi, &opt, &fopt, tracing] {
              return run_cell_guarded(*w, m, vi, opt, fopt, tracing);
            });
    for (std::size_t wi = 0; wi < suite.size(); ++wi)
      for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
        cells[wi][vi] = futures[wi][vi].get();
  } else {
    for (std::size_t wi = 0; wi < suite.size(); ++wi)
      for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
        cells[wi][vi] = run_cell_guarded(*suite[wi], m, vi, opt, fopt,
                                         tracing);
  }

  ResilientSweep out;
  out.rows.reserve(suite.size());
  out.report.cells.reserve(suite.size() * kAllVersions.size());
  for (std::size_t wi = 0; wi < suite.size(); ++wi) {
    std::array<std::optional<RunResult>, 5> results;
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi) {
      results[vi] = std::move(cells[wi][vi].result);
      out.report.cells.push_back(std::move(cells[wi][vi].outcome));
    }
    out.rows.push_back(make_row_partial(*suite[wi], results));
    if (tracing)
      for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
        traces->push_back({suite[wi]->name, kAllVersions[vi],
                           std::move(cells[wi][vi].recording)});
  }
  return out;
}

}  // namespace

ResilientSweep improvements_for_resilient(const workloads::WorkloadInfo& w,
                                          const MachineConfig& m,
                                          const RunOptions& opt,
                                          const ParallelSweepOptions& par,
                                          const FaultSweepOptions& fopt,
                                          std::vector<TraceCapture>* traces) {
  return run_resilient({&w}, m, opt, par, fopt, traces);
}

ResilientSweep sweep_suite_resilient(const MachineConfig& m,
                                     const RunOptions& opt,
                                     const ParallelSweepOptions& par,
                                     const FaultSweepOptions& fopt,
                                     std::vector<TraceCapture>* traces) {
  const auto& suite = workloads::all_workloads();
  std::vector<const workloads::WorkloadInfo*> ptrs;
  ptrs.reserve(suite.size());
  for (const auto& w : suite) ptrs.push_back(&w);
  return run_resilient(ptrs, m, opt, par, fopt, traces);
}

double average_improvement(const std::vector<ImprovementRow>& rows, Version v,
                           const workloads::Category* filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& row : rows) {
    if (filter != nullptr && row.category != *filter) continue;
    auto it = row.pct.find(v);
    if (it == row.pct.end()) continue;
    sum += it->second;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace selcache::core
