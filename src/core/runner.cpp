#include "core/runner.h"

#include <array>
#include <future>

#include "codegen/trace_engine.h"
#include "support/thread_pool.h"

namespace selcache::core {

namespace {

std::uint64_t l1_accesses(const RunResult& r) {
  return r.stats.get("l1d.hits") + r.stats.get("l1d.misses") +
         r.stats.get("l1i.hits") + r.stats.get("l1i.misses");
}

/// Assemble one figure row from the five per-version results. Shared by the
/// serial and parallel paths so their outputs are bit-identical.
ImprovementRow make_row(const workloads::WorkloadInfo& w,
                        const std::array<RunResult, 5>& results) {
  ImprovementRow row;
  row.benchmark = w.name;
  row.category = w.category;
  row.base_cycles = results[0].cycles;
  for (std::size_t i = 0; i < kAllVersions.size(); ++i) {
    const Version v = kAllVersions[i];
    if (v != Version::Base)
      row.pct[v] = improvement_pct(row.base_cycles, results[i].cycles);
    row.accesses += l1_accesses(results[i]);
    row.stats.merge(results[i].stats, std::string(version_key(v)) + ".");
  }
  return row;
}

}  // namespace

const char* version_key(Version v) {
  switch (v) {
    case Version::Base: return "base";
    case Version::PureHardware: return "purehw";
    case Version::PureSoftware: return "puresw";
    case Version::Combined: return "combined";
    case Version::Selective: return "selective";
  }
  return "?";
}

RunResult run_version(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt) {
  // 1. Code product (§4.4).
  const ir::Program base = w.build();
  ir::Program product = prepare_program(base, v, opt.optimize);

  // 2. Machine: hierarchy + scheme + controller + timing model.
  memsys::HierarchyConfig hcfg = m.hierarchy;
  hcfg.classify_misses = opt.classify_misses;
  memsys::Hierarchy hierarchy(hcfg);
  std::unique_ptr<memsys::HwScheme> scheme =
      v == Version::Base || v == Version::PureSoftware
          ? nullptr
          : make_scheme(opt.scheme, m);
  hierarchy.attach_hw(scheme.get());
  hw::Controller controller(scheme.get());
  controller.force(hw_always_on(v));  // Selective starts OFF; toggles drive it
  cpu::TimingModel cpu(m.cpu, hierarchy, controller);

  // 3. Execute.
  codegen::DataEnv env(product, {.seed = opt.data_seed});
  codegen::TraceEngine engine(product, env, cpu);
  engine.run();

  // 4. Collect.
  RunResult r;
  r.cycles = cpu.cycles();
  r.instructions = cpu.instructions();
  r.l1_miss_rate = hierarchy.l1_miss_rate();
  r.l2_miss_rate = hierarchy.l2_miss_rate();
  if (const auto* c = hierarchy.classifier()) r.conflict_share =
      c->conflict_share();
  r.toggles = controller.toggles_executed();
  hierarchy.export_stats(r.stats);
  cpu.export_stats(r.stats);
  controller.export_stats(r.stats);
  return r;
}

ImprovementRow improvements_for(const workloads::WorkloadInfo& w,
                                const MachineConfig& m, const RunOptions& opt,
                                const ParallelSweepOptions& par) {
  std::array<RunResult, 5> results;
  if (par.num_threads > 1) {
    support::ThreadPool pool(par.num_threads);
    std::array<std::future<RunResult>, 5> futures;
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      futures[i] = pool.submit(
          [&w, &m, v = kAllVersions[i], &opt] { return run_version(w, m, v, opt); });
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      results[i] = futures[i].get();
  } else {
    for (std::size_t i = 0; i < kAllVersions.size(); ++i)
      results[i] = run_version(w, m, kAllVersions[i], opt);
  }
  return make_row(w, results);
}

std::vector<ImprovementRow> sweep_suite(const MachineConfig& m,
                                        const RunOptions& opt,
                                        const ParallelSweepOptions& par) {
  const auto& suite = workloads::all_workloads();
  std::vector<ImprovementRow> rows;
  rows.reserve(suite.size());

  if (par.num_threads <= 1) {
    for (const auto& w : suite) rows.push_back(improvements_for(w, m, opt));
    return rows;
  }

  // Fan out every (workload, version) pair as one task — 13x5 independent
  // simulations, each owning its full machine state. Futures are collected
  // in submission order, so assembly below is deterministic no matter how
  // the pool schedules the work.
  support::ThreadPool pool(par.num_threads);
  std::vector<std::array<std::future<RunResult>, 5>> futures(suite.size());
  for (std::size_t wi = 0; wi < suite.size(); ++wi)
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
      futures[wi][vi] = pool.submit([&w = suite[wi], &m, v = kAllVersions[vi],
                                     &opt] { return run_version(w, m, v, opt); });

  for (std::size_t wi = 0; wi < suite.size(); ++wi) {
    std::array<RunResult, 5> results;
    for (std::size_t vi = 0; vi < kAllVersions.size(); ++vi)
      results[vi] = futures[wi][vi].get();
    rows.push_back(make_row(suite[wi], results));
  }
  return rows;
}

double average_improvement(const std::vector<ImprovementRow>& rows, Version v,
                           const workloads::Category* filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& row : rows) {
    if (filter != nullptr && row.category != *filter) continue;
    auto it = row.pct.find(v);
    if (it == row.pct.end()) continue;
    sum += it->second;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace selcache::core
