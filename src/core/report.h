// Paper-style report formatting for the bench harness.
#pragma once

#include <string>

#include "core/runner.h"

namespace selcache::core {

/// Figures 4-9 as text: one row per benchmark, one column per version, plus
/// per-category and overall averages.
std::string format_figure(const std::string& title,
                          const std::vector<ImprovementRow>& rows);

/// Table 1 (machine parameters) as text.
std::string format_machine(const MachineConfig& m);

/// Figures 4-9 as CSV (benchmark,category,pure_hw,pure_sw,combined,
/// selective) — for plotting the paper's bar charts.
std::string figure_csv(const std::vector<ImprovementRow>& rows);

/// Write `content` to `path`; returns false (and leaves no partial file
/// guarantee) on I/O failure.
/// Write `content` to `path` crash-safely: the bytes land in a `.tmp`
/// sibling first and are atomically renamed into place, so readers never
/// observe a truncated file. Returns false (and cleans up the sibling) on
/// any I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace selcache::core
