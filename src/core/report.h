// Paper-style report formatting for the bench harness.
#pragma once

#include <string>

#include "core/runner.h"
#include "support/io.h"

namespace selcache::core {

/// Figures 4-9 as text: one row per benchmark, one column per version, plus
/// per-category and overall averages.
std::string format_figure(const std::string& title,
                          const std::vector<ImprovementRow>& rows);

/// Table 1 (machine parameters) as text.
std::string format_machine(const MachineConfig& m);

/// Figures 4-9 as CSV (benchmark,category,pure_hw,pure_sw,combined,
/// selective) — for plotting the paper's bar charts.
std::string figure_csv(const std::vector<ImprovementRow>& rows);

/// Figures 4-9 as JSONL: one object per benchmark row, fields matching the
/// CSV columns. The run-ledger e2e harness byte-diffs this (and the CSV)
/// between interrupted-and-resumed and uninterrupted sweeps.
std::string figure_jsonl(const std::vector<ImprovementRow>& rows);

/// Write `content` to `path` crash-safely (unique `.tmp` sibling + atomic
/// rename via support::write_file_atomic), so readers never observe a
/// truncated file. The returned status carries the failing stage and errno
/// text; on failure the sibling is cleaned up and the target keeps its old
/// contents.
support::WriteStatus write_text_file_status(const std::string& path,
                                            const std::string& content);

/// Boolean convenience wrapper around write_text_file_status for callers
/// that only branch on success.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace selcache::core
