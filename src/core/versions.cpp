#include "core/versions.h"

#include <algorithm>

#include "hw/bypass_scheme.h"
#include "hw/composite_scheme.h"
#include "hw/stride_prefetcher.h"
#include "hw/victim_scheme.h"

namespace selcache::core {

ir::Program prepare_program(const ir::Program& base_program, Version v,
                            const transform::OptimizeOptions& opt) {
  ir::Program p = base_program.clone();
  switch (v) {
    case Version::Base:
    case Version::PureHardware:
      return p;
    case Version::PureSoftware:
    case Version::Combined: {
      transform::OptimizeOptions o = opt;
      o.insert_markers = false;
      transform::optimize_program(p, o);
      return p;
    }
    case Version::Selective: {
      transform::OptimizeOptions o = opt;
      o.insert_markers = true;
      transform::optimize_program(p, o);
      return p;
    }
  }
  return p;
}

std::unique_ptr<memsys::HwScheme> make_scheme(hw::SchemeKind kind,
                                              const MachineConfig& m) {
  switch (kind) {
    case hw::SchemeKind::None:
      return nullptr;
    case hw::SchemeKind::Bypass: {
      hw::BypassSchemeConfig cfg;
      cfg.sldt.block_size = m.hierarchy.l1d.block_size;
      cfg.buffer_block_size = m.hierarchy.l1d.block_size;
      cfg.buffer_entries = std::max(1u, 512u / m.hierarchy.l1d.block_size);
      return std::make_unique<hw::BypassScheme>(cfg);
    }
    case hw::SchemeKind::Victim: {
      hw::VictimSchemeConfig cfg;
      cfg.l1_block_size = m.hierarchy.l1d.block_size;
      cfg.l2_block_size = m.hierarchy.l2.block_size;
      return std::make_unique<hw::VictimScheme>(cfg);
    }
    case hw::SchemeKind::Prefetch: {
      hw::StridePrefetcherConfig cfg;
      cfg.block_size = m.hierarchy.l1d.block_size;
      return std::make_unique<hw::StridePrefetcher>(cfg);
    }
    case hw::SchemeKind::Composite: {
      hw::CompositeSchemeConfig cfg;
      cfg.bypass.sldt.block_size = m.hierarchy.l1d.block_size;
      cfg.bypass.buffer_block_size = m.hierarchy.l1d.block_size;
      cfg.bypass.buffer_entries =
          std::max(1u, 512u / m.hierarchy.l1d.block_size);
      cfg.victim.l1_block_size = m.hierarchy.l1d.block_size;
      cfg.victim.l2_block_size = m.hierarchy.l2.block_size;
      return std::make_unique<hw::CompositeScheme>(cfg);
    }
  }
  return nullptr;
}

}  // namespace selcache::core
