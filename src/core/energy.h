// First-order memory-system energy accounting — an extension analysis in
// the spirit of the paper's reference [2] (An et al., "Analyzing energy
// behavior of spatial access methods for memory-resident data").
//
// Energy is estimated from the run's event counters with per-event costs
// (defaults are CACTI-era 0.18um-class ballparks, normalized so relative
// comparisons are meaningful; absolute joules are not the point). The
// selective scheme's fewer lower-level accesses translate directly into
// energy savings here.
//
// Counter exclusivity (why the sum below does not double-count): an L1D
// miss is serviced by EXACTLY ONE of (a) the bypass buffer
// (bypass_buffer.hits), (b) the L1 victim cache (victim_l1.hits), or
// (c) an L2 probe — the hierarchy's aux-service path returns before the L2
// is touched, so l2.hits + l2.misses already excludes (a) and (b):
//   l2.hits + l2.misses ==
//       l1d.misses + l1i.misses - bypass_buffer.hits - victim_l1.hits
// Likewise an L2 miss is filled from EXACTLY ONE of the L2 victim cache
// (victim_l2.hits) or memory:
//   mem.reads == l2.misses - victim_l2.hits
// Each tier is therefore charged once per event that actually reached it.
#pragma once

#include "support/stats.h"

namespace selcache::core {

struct EnergyParams {
  // nJ per event.
  double l1_access = 0.5;
  double l2_access = 2.5;
  double memory_access = 30.0;
  double tlb_access = 0.05;
  double victim_probe = 0.3;   ///< fully associative, small
  double bypass_probe = 0.2;
  double mat_touch = 0.02;     ///< small table update
  double toggle = 0.01;
  double instruction = 0.08;   ///< core energy per issued instruction
};

struct EnergyBreakdown {
  double l1 = 0, l2 = 0, memory = 0, tlb = 0, aux = 0, core = 0;
  double total() const { return l1 + l2 + memory + tlb + aux + core; }
};

/// Estimate energy (nJ) from an exported StatSet (Hierarchy + CPU + scheme
/// counters, as produced by RunResult::stats).
EnergyBreakdown estimate_energy(const StatSet& stats,
                                const EnergyParams& p = {});

}  // namespace selcache::core
