// The simulated versions of §4.3 and the code products of §4.4.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/machine_config.h"
#include "hw/controller.h"
#include "ir/program.h"
#include "transform/pipeline.h"

namespace selcache::core {

enum class Version {
  Base,          ///< base code, hardware off (the 100% reference)
  PureHardware,  ///< base code, hardware always on
  PureSoftware,  ///< optimized code, hardware off
  Combined,      ///< optimized code, hardware always on
  Selective      ///< optimized code + ON/OFF markers (this paper)
};

inline const char* to_string(Version v) {
  switch (v) {
    case Version::Base: return "Base";
    case Version::PureHardware: return "Pure Hardware";
    case Version::PureSoftware: return "Pure Software";
    case Version::Combined: return "Combined";
    case Version::Selective: return "Selective";
  }
  return "?";
}

/// The four versions Figures 4-9 compare against Base, in plot order.
inline const Version kEvaluatedVersions[] = {
    Version::PureHardware, Version::PureSoftware, Version::Combined,
    Version::Selective};

/// Base plus the four evaluated versions, in simulation order — the product
/// set the runner simulates and the static verifier sweeps.
inline constexpr std::array<Version, 5> kAllVersions = {
    Version::Base, Version::PureHardware, Version::PureSoftware,
    Version::Combined, Version::Selective};

/// Derive the code product a version runs from the base program (§4.4).
/// Base/PureHardware: base code. PureSoftware/Combined: optimized code.
/// Selective: optimized code + markers.
ir::Program prepare_program(const ir::Program& base_program, Version v,
                            const transform::OptimizeOptions& opt);

/// Does this version force the hardware scheme on for the whole run?
inline bool hw_always_on(Version v) {
  return v == Version::PureHardware || v == Version::Combined;
}

/// Build the hardware scheme for a machine (geometry-matched buffers).
std::unique_ptr<memsys::HwScheme> make_scheme(hw::SchemeKind kind,
                                              const MachineConfig& m);

}  // namespace selcache::core
