#include "core/report.h"

#include <sstream>

#include "support/table.h"

namespace selcache::core {

std::string format_figure(const std::string& title,
                          const std::vector<ImprovementRow>& rows) {
  TextTable t({"Benchmark", "Category", "Pure HW", "Pure SW", "Combined",
               "Selective"});
  for (const auto& row : rows) {
    t.add_row({row.benchmark, to_string(row.category),
               TextTable::num(row.pct.at(Version::PureHardware)),
               TextTable::num(row.pct.at(Version::PureSoftware)),
               TextTable::num(row.pct.at(Version::Combined)),
               TextTable::num(row.pct.at(Version::Selective))});
  }

  std::ostringstream os;
  os << "== " << title << " ==\n" << t.str();

  TextTable avg({"Average over", "Pure HW", "Pure SW", "Combined",
                 "Selective"});
  const auto add_avg = [&](const std::string& label,
                           const workloads::Category* f) {
    avg.add_row({label,
                 TextTable::num(average_improvement(rows,
                                                    Version::PureHardware, f)),
                 TextTable::num(average_improvement(rows,
                                                    Version::PureSoftware, f)),
                 TextTable::num(average_improvement(rows, Version::Combined,
                                                    f)),
                 TextTable::num(average_improvement(rows, Version::Selective,
                                                    f))});
  };
  const workloads::Category reg = workloads::Category::Regular;
  const workloads::Category irr = workloads::Category::Irregular;
  const workloads::Category mix = workloads::Category::Mixed;
  add_avg("all 13", nullptr);
  add_avg("regular", &reg);
  add_avg("irregular", &irr);
  add_avg("mixed", &mix);
  os << avg.str();
  return os.str();
}

std::string figure_csv(const std::vector<ImprovementRow>& rows) {
  std::ostringstream os;
  os << "benchmark,category,pure_hw,pure_sw,combined,selective\n";
  for (const auto& row : rows) {
    os << row.benchmark << ',' << to_string(row.category) << ','
       << TextTable::num(row.pct.at(Version::PureHardware)) << ','
       << TextTable::num(row.pct.at(Version::PureSoftware)) << ','
       << TextTable::num(row.pct.at(Version::Combined)) << ','
       << TextTable::num(row.pct.at(Version::Selective)) << '\n';
  }
  return os.str();
}

std::string figure_jsonl(const std::vector<ImprovementRow>& rows) {
  std::ostringstream os;
  for (const auto& row : rows) {
    os << "{\"benchmark\":\"" << row.benchmark << "\",\"category\":\""
       << to_string(row.category) << "\",\"pure_hw\":"
       << TextTable::num(row.pct.at(Version::PureHardware)) << ",\"pure_sw\":"
       << TextTable::num(row.pct.at(Version::PureSoftware)) << ",\"combined\":"
       << TextTable::num(row.pct.at(Version::Combined)) << ",\"selective\":"
       << TextTable::num(row.pct.at(Version::Selective)) << "}\n";
  }
  return os.str();
}

support::WriteStatus write_text_file_status(const std::string& path,
                                            const std::string& content) {
  return support::write_file_atomic(path, content);
}

bool write_text_file(const std::string& path, const std::string& content) {
  return write_text_file_status(path, content).ok();
}

std::string format_machine(const MachineConfig& m) {
  const auto& h = m.hierarchy;
  TextTable t({"Parameter", "Value"});
  const auto cache_str = [](const memsys::CacheConfig& c) {
    return std::to_string(c.size_bytes / 1024) + "K, " +
           std::to_string(c.assoc) + "-way, " +
           std::to_string(c.block_size) + "B blocks, " +
           std::to_string(c.latency) + "-cycle";
  };
  t.add_row({"Issue width", std::to_string(m.cpu.issue_width)});
  t.add_row({"L1 (data)", cache_str(h.l1d)});
  t.add_row({"L1 (instruction)", cache_str(h.l1i)});
  t.add_row({"L2", cache_str(h.l2)});
  t.add_row({"Memory access time",
             std::to_string(h.mem.access_latency) + " cycles"});
  t.add_row({"Memory bus width", std::to_string(h.mem.bus_width) + " bytes"});
  t.add_row({"Memory ports", std::to_string(m.cpu.memory_ports)});
  t.add_row({"RUU entries", std::to_string(m.cpu.ruu_entries)});
  t.add_row({"LSQ entries", std::to_string(m.cpu.lsq_entries)});
  t.add_row({"Branch prediction",
             "bi-modal with " + std::to_string(m.cpu.bimodal_entries) +
                 " entries"});
  t.add_row({"TLB (data)", std::to_string(h.dtlb.entries) + " entries, " +
                               std::to_string(h.dtlb.assoc) + "-way"});
  t.add_row({"TLB (instruction)",
             std::to_string(h.itlb.entries) + " entries, " +
                 std::to_string(h.itlb.assoc) + "-way"});
  return "== " + m.name + " ==\n" + t.str();
}

}  // namespace selcache::core
