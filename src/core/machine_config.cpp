#include "core/machine_config.h"

namespace selcache::core {

MachineConfig base_machine() {
  MachineConfig m;
  m.name = "Base Confg.";
  // HierarchyConfig / CpuConfig defaults already encode Table 1.
  return m;
}

MachineConfig higher_mem_latency() {
  MachineConfig m = base_machine();
  m.name = "Higher Mem. Lat.";
  m.hierarchy.mem.access_latency = 200;
  return m;
}

MachineConfig larger_l2() {
  MachineConfig m = base_machine();
  m.name = "Larger L2 Size";
  m.hierarchy.l2.size_bytes = 1024 * 1024;
  return m;
}

MachineConfig larger_l1() {
  MachineConfig m = base_machine();
  m.name = "Larger L1 Size";
  m.hierarchy.l1d.size_bytes = 64 * 1024;
  return m;
}

MachineConfig higher_l2_assoc() {
  MachineConfig m = base_machine();
  m.name = "Higher L2 Asc.";
  m.hierarchy.l2.assoc = 8;
  return m;
}

MachineConfig higher_l1_assoc() {
  MachineConfig m = base_machine();
  m.name = "Higher L1 Asc.";
  m.hierarchy.l1d.assoc = 8;
  return m;
}

const std::vector<MachineConfig>& all_machines() {
  static const std::vector<MachineConfig> kAll = {
      base_machine(),    higher_mem_latency(), larger_l2(),
      larger_l1(),       higher_l2_assoc(),    higher_l1_assoc(),
  };
  return kAll;
}

std::optional<MachineConfig> machine_by_name(const std::string& n) {
  if (n.empty() || n == "base") return base_machine();
  if (n == "memlat") return higher_mem_latency();
  if (n == "l2size") return larger_l2();
  if (n == "l1size") return larger_l1();
  if (n == "l2assoc") return higher_l2_assoc();
  if (n == "l1assoc") return higher_l1_assoc();
  return std::nullopt;
}

}  // namespace selcache::core
