// Machine configurations: the Table 1 baseline and the five variations
// evaluated in §5 (Figures 5-9 / Table 3 rows).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cpu/timing_model.h"
#include "memsys/hierarchy.h"

namespace selcache::core {

struct MachineConfig {
  std::string name;
  memsys::HierarchyConfig hierarchy;
  cpu::CpuConfig cpu;
};

/// Table 1: 4-wide, 32K/4/32B L1s @2, 512K/4/128B L2 @10, 100-cycle memory,
/// 8B bus, 2 ports, RUU 64, LSQ 32, bimodal 2048.
MachineConfig base_machine();
MachineConfig higher_mem_latency();  ///< Figure 5: memory 200 cycles
MachineConfig larger_l2();           ///< Figure 6: L2 = 1 MB
MachineConfig larger_l1();           ///< Figure 7: L1D = 64 KB
MachineConfig higher_l2_assoc();     ///< Figure 8: L2 8-way
MachineConfig higher_l1_assoc();     ///< Figure 9: L1 8-way

/// Table 3 row order.
const std::vector<MachineConfig>& all_machines();

/// Lookup by the stable CLI short id (base, memlat, l2size, l1size,
/// l2assoc, l1assoc; "" = base). The run ledger journals this id, so it is
/// part of the resume contract — ids never change meaning.
std::optional<MachineConfig> machine_by_name(const std::string& n);

}  // namespace selcache::core
