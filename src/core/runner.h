// Experiment runner: execute (workload x machine x version x scheme) and
// report cycles, miss rates, and improvement over the Base version.
#pragma once

#include <map>

#include "core/versions.h"
#include "workloads/registry.h"

namespace selcache::core {

struct RunOptions {
  hw::SchemeKind scheme = hw::SchemeKind::Bypass;
  transform::OptimizeOptions optimize{};
  bool classify_misses = false;  ///< maintain the 3C shadow (Table 2 column)
  std::uint64_t data_seed = 0x5e1c4c4eULL;
};

struct RunResult {
  Cycle cycles = 0;
  InstrCount instructions = 0;
  double l1_miss_rate = 0.0;  ///< combined L1 (data + instruction), Table 2
  double l2_miss_rate = 0.0;
  double conflict_share = 0.0;  ///< of classified L1D misses (if enabled)
  std::uint64_t toggles = 0;
  StatSet stats;
};

/// Simulate one version of one workload on one machine.
RunResult run_version(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt = {});

/// Improvements (%) of the four evaluated versions over Base for one
/// workload on one machine — one bar group of Figures 4-9.
struct ImprovementRow {
  std::string benchmark;
  workloads::Category category = workloads::Category::Mixed;
  Cycle base_cycles = 0;
  /// Keyed by version; percent improvement in execution cycles over Base.
  std::map<Version, double> pct;
};

ImprovementRow improvements_for(const workloads::WorkloadInfo& w,
                                const MachineConfig& m,
                                const RunOptions& opt = {});

/// Whole-suite sweep (all 13 benchmarks) for one machine+scheme.
std::vector<ImprovementRow> sweep_suite(const MachineConfig& m,
                                        const RunOptions& opt = {});

/// Average of a version's improvement across rows, optionally filtered by
/// category (nullptr = all).
double average_improvement(const std::vector<ImprovementRow>& rows, Version v,
                           const workloads::Category* filter = nullptr);

}  // namespace selcache::core
