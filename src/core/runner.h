// Experiment runner: execute (workload x machine x version x scheme) and
// report cycles, miss rates, and improvement over the Base version.
//
// The engine has two execution modes with one determinism contract:
// every (workload, version) simulation owns all of its mutable state
// (Hierarchy, HwScheme, Controller, TimingModel, DataEnv), so the parallel
// fan-out runs the exact same per-simulation code as the serial loop and
// merges results in fixed workload order — the output is bit-identical to
// a serial sweep, regardless of thread count or scheduling.
#pragma once

#include <array>
#include <map>

#include "core/versions.h"
#include "fault/fault.h"
#include "fault/report.h"
#include "tape/tape.h"
#include "trace/sink.h"
#include "workloads/registry.h"

namespace selcache::tape {
class TapeCache;
}

namespace selcache::store {
class ResultStore;
}

namespace selcache::support {
class RunGuard;
}

namespace selcache::core {

struct RunOptions {
  hw::SchemeKind scheme = hw::SchemeKind::Bypass;
  transform::OptimizeOptions optimize{};
  bool classify_misses = false;  ///< maintain the 3C shadow (Table 2 column)
  std::uint64_t data_seed = 0x5e1c4c4eULL;
  /// Epoch length (demand accesses per metrics snapshot) when a trace
  /// recording is requested; ignored otherwise.
  std::uint64_t trace_epoch = 10000;
  /// Fault campaign for this run. Default (kind None, rate 0) means no
  /// injector is built and every fault hook stays nullptr — the run is
  /// bit-identical to a pre-fault-layer simulation.
  fault::FaultConfig fault{};
  /// Abort the run (fault::WatchdogExceeded) after this many hierarchy
  /// accesses; 0 disables the watchdog.
  std::uint64_t watchdog_accesses = 0;
  /// Controller self-check policy; default-disarmed.
  hw::DegradePolicy degrade{};
  /// Record-once / replay-many: serve this run from a trace tape when one
  /// exists for its (workload, version, stream-fingerprint) key, recording
  /// it on first use. Replay is bit-identical to interpretation, so machine
  /// sweeps over a fixed cell matrix pay the IR pipeline once per cell.
  /// Fault-armed runs (a fault campaign or an access watchdog) always fall
  /// back to plain interpretation and never touch the cache.
  bool reuse_tape = false;
  /// Cache consulted by reuse_tape; nullptr = the process-global cache.
  tape::TapeCache* tape_cache = nullptr;
  /// Ops per decoded batch for batched tape replay (tape::MultiReplayer).
  /// 0 = classic streaming replay (decode and simulate fused, one pass).
  /// Any value selects the batched decode loop for replay_tape and the
  /// shared-decode sweep engines; the op stream each simulation sees is
  /// identical either way, so results are bit-identical at any batch size.
  std::uint32_t batch = 0;
  /// Persistent result store consulted before simulating and updated after
  /// (nullptr = no store). A hit skips the whole simulation — program
  /// construction, pipeline, interpretation — and reconstructs the
  /// RunResult from disk, bit-identical to a fresh run. Fault-armed,
  /// watchdog-armed, degrade-armed, and traced runs bypass the store
  /// (mirroring the tape rule: their outputs are not pure functions of the
  /// cell key, or carry a recording the store does not).
  store::ResultStore* result_store = nullptr;
  /// Run-supervision guard polled once per hierarchy access (nullptr = no
  /// supervision). Unlike the fault injector it exports no stats and never
  /// perturbs results, so it does NOT affect tape or store eligibility —
  /// it only adds two exit paths (support::RunSuspended on the run's stop
  /// token, support::CellDeadlineExceeded on the cell's wall clock). Not
  /// thread-safe: give each parallel task its own guard.
  support::RunGuard* run_guard = nullptr;
};

/// How to schedule the independent simulations of a sweep.
struct ParallelSweepOptions {
  /// Worker threads for the (workload, version) fan-out. 0 or 1 = run
  /// serially on the calling thread (no pool is created).
  unsigned num_threads = 0;
};

struct RunResult {
  Cycle cycles = 0;
  InstrCount instructions = 0;
  double l1_miss_rate = 0.0;  ///< combined L1 (data + instruction), Table 2
  double l2_miss_rate = 0.0;
  double conflict_share = 0.0;  ///< of classified L1D misses (if enabled)
  std::uint64_t toggles = 0;
  std::uint64_t faults_injected = 0;  ///< 0 unless a fault campaign ran
  std::uint64_t degradations = 0;     ///< safe-mode demotions (0 or 1)
  StatSet stats;
};

/// Simulate one version of one workload on one machine. When `trace_out` is
/// non-null the run records a phase trace into it (epoch metrics every
/// opt.trace_epoch accesses plus discrete toggle/decay/bypass/promotion
/// events); pass nullptr for an untraced run at full speed.
RunResult run_version(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt = {},
                      trace::Recording* trace_out = nullptr);

/// TapeCache key for one run: workload, version, plus a fingerprint of
/// everything else the recorded stream depends on (data seed, optimization
/// pipeline settings). The machine is deliberately absent — the stream is
/// machine-invariant, which is what makes record-once/replay-many sweeps
/// possible.
std::string tape_key(const workloads::WorkloadInfo& w, Version v,
                     const RunOptions& opt);

/// Persistent-store key for one cell: workload, version, scheme, a
/// fingerprint of every machine parameter, the stream fingerprint (data
/// seed + optimization pipeline + method-predictor configuration), the
/// miss-classification flag, and the store format version. Unlike
/// tape_key, the machine IS part of the identity — a stored result is the
/// response of one machine to the stream, not the stream itself.
std::string store_key(const workloads::WorkloadInfo& w, const MachineConfig& m,
                      Version v, const RunOptions& opt);

/// Record one (workload, version) trace tape by running an instrumented
/// interpretation on machine `m`. The recording run is a bona fide
/// simulation: pass `result` / `trace_out` to keep its results. Must not be
/// called with a fault campaign or watchdog armed (the tape would capture a
/// truncated or perturbed stream); run_version enforces the same rule by
/// falling back to interpretation.
tape::Tape record_tape(const workloads::WorkloadInfo& w,
                       const MachineConfig& m, Version v,
                       const RunOptions& opt = {}, RunResult* result = nullptr,
                       trace::Recording* trace_out = nullptr);

/// Replay a recorded tape on machine `m` as version `v`, reconstructing the
/// machine exactly as run_version would and driving it with the tape
/// instead of the IR. Bit-identical to the interpreted run for any machine.
/// With opt.batch > 0 the tape is decoded through the batched loop
/// (tape::MultiReplayer) instead of the fused streaming replayer.
RunResult replay_tape(const tape::Tape& t, const MachineConfig& m, Version v,
                      const RunOptions& opt = {},
                      trace::Recording* trace_out = nullptr);

/// Replay one tape across N machine configurations with a SINGLE decode:
/// the tape expands once into op batches, and every batch drives one
/// Simulation per machine before the next batch is decoded. Results are in
/// machines order and bit-identical to N separate replay_tape calls — at
/// any par.num_threads (each simulation is driven by one task at a time, in
/// strict tape order) and any opt.batch. `traces` (optional) supplies one
/// Recording* per machine (entries may be nullptr); traced simulations
/// record exactly what a solo traced replay would. With par.num_threads > 1
/// opt.run_guard must be nullptr (a RunGuard is not thread-safe, and here
/// it would be polled by every machine's simulation concurrently).
std::vector<RunResult> multi_replay_tape(
    const tape::Tape& t, const std::vector<MachineConfig>& machines, Version v,
    const RunOptions& opt = {}, const ParallelSweepOptions& par = {},
    const std::vector<trace::Recording*>* traces = nullptr);

/// One (workload, version) phase-trace recording from a sweep.
struct TraceCapture {
  std::string workload;
  Version version = Version::Base;
  trace::Recording recording;
};

/// Improvements (%) of the four evaluated versions over Base for one
/// workload on one machine — one bar group of Figures 4-9.
struct ImprovementRow {
  std::string benchmark;
  workloads::Category category = workloads::Category::Mixed;
  Cycle base_cycles = 0;
  /// Keyed by version; percent improvement in execution cycles over Base.
  std::map<Version, double> pct;
  /// Simulated L1 (data + instruction) demand accesses summed over all five
  /// versions — the work metric for engine-throughput benchmarks.
  std::uint64_t accesses = 0;
  /// Per-version simulator counters, merged with a "<version>." prefix
  /// (e.g. "selective.l1d.misses"). Part of the determinism contract.
  StatSet stats;
};

/// Assemble one figure row from the five per-version results (kAllVersions
/// order). This is the exact row constructor the sweep engines use, exposed
/// so the checkpoint engine can rebuild rows from per-cell results (stored
/// or fresh) and stay bit-identical to an uninterrupted sweep.
ImprovementRow make_improvement_row(const workloads::WorkloadInfo& w,
                                    const std::array<RunResult, 5>& results);

/// Fingerprint of every RunOptions field the recorded access stream depends
/// on (data seed + optimization pipeline + method-predictor config). One
/// input of the run-ledger RunId.
std::uint64_t stream_fingerprint(const RunOptions& opt);

/// Fingerprint of every machine parameter a simulation's outputs depend on.
/// The other machine-side input of the run-ledger RunId.
std::uint64_t machine_fingerprint(const MachineConfig& m);

/// When `traces` is non-null, every per-version run is traced and its
/// recording appended in fixed version order (the determinism contract
/// extends to traces: each task records privately; captures are appended
/// in kAllVersions order regardless of scheduling).
ImprovementRow improvements_for(const workloads::WorkloadInfo& w,
                                const MachineConfig& m,
                                const RunOptions& opt = {},
                                const ParallelSweepOptions& par = {},
                                std::vector<TraceCapture>* traces = nullptr);

/// Whole-suite sweep (all 13 benchmarks) for one machine+scheme. With
/// par.num_threads > 1 the 13x5 independent simulations fan out over a
/// worker pool; results are merged in workload order and are bit-identical
/// to the serial sweep. `traces` (optional) collects per-(workload, version)
/// recordings in (workload, version) order — also bit-identical across
/// thread counts.
std::vector<ImprovementRow> sweep_suite(const MachineConfig& m,
                                        const RunOptions& opt = {},
                                        const ParallelSweepOptions& par = {},
                                        std::vector<TraceCapture>* traces = nullptr);

/// Whole-AXIS sweep with shared decode: the full suite over every machine
/// point of a figure axis, decoding each (workload, version) cell's tape
/// ONCE and fanning the batches out to one simulation per pending machine
/// point (tape::MultiReplayer) instead of re-decoding per point. Returns
/// rows[point] exactly as `machines.size()` sweep_suite calls would — same
/// rows, same stats, same store cells — just cheaper. Requires a
/// tape-eligible configuration (opt.reuse_tape set, no fault campaign or
/// watchdog, opt.degrade disarmed). The persistent store (if attached) is
/// consulted per (cell, point) before simulating and updated after, like
/// run_version. With par.num_threads > 1 the 13x5 cells fan out over a
/// worker pool (each cell multi-replays its points on one thread); results
/// merge in fixed (workload, version, point) order — bit-identical to the
/// serial engine and to per-point sweep_suite at any thread count.
std::vector<std::vector<ImprovementRow>> sweep_axis_shared_decode(
    const std::vector<MachineConfig>& machines, const RunOptions& opt = {},
    const ParallelSweepOptions& par = {});

/// Controls for a failure-isolated ("resilient") sweep: the fault campaign
/// applied to every cell, how often a failed cell is retried, and the
/// degradation policy armed in each controller.
struct FaultSweepOptions {
  /// Per-cell fault campaign. `fault.seed` is the SWEEP-level base seed;
  /// each (workload, version, attempt) derives its own injector seed via
  /// fault::task_seed, so results are reproducible at any thread count and
  /// every retry sees a fresh but deterministic fault stream.
  fault::FaultConfig fault{};
  /// Re-attempts after a failed cell (attempts = max_retries + 1).
  std::uint32_t max_retries = 1;
  /// Per-cell access watchdog (0 = off).
  std::uint64_t watchdog_accesses = 0;
  /// Degradation policy armed in every cell's controller.
  hw::DegradePolicy degrade{};
};

/// Result of a resilient sweep: the usual figure rows plus the per-cell
/// outcome ledger. A failed cell contributes 0.0 improvement to its row
/// (and nothing to its stats); the FailureReport is the source of truth
/// for which cells are valid.
struct ResilientSweep {
  std::vector<ImprovementRow> rows;
  fault::FailureReport report;
};

/// Failure-isolated version of improvements_for: each (workload, version)
/// cell runs guarded, so an injected crash, watchdog kill, or any other
/// exception fails only that cell. Never throws for per-cell failures.
ResilientSweep improvements_for_resilient(
    const workloads::WorkloadInfo& w, const MachineConfig& m,
    const RunOptions& opt, const ParallelSweepOptions& par,
    const FaultSweepOptions& fopt,
    std::vector<TraceCapture>* traces = nullptr);

/// Failure-isolated version of sweep_suite. Rows, FailureReport, and trace
/// captures are merged in fixed (workload, version) order — bit-identical
/// for any par.num_threads, like the un-faulted engine.
ResilientSweep sweep_suite_resilient(
    const MachineConfig& m, const RunOptions& opt,
    const ParallelSweepOptions& par, const FaultSweepOptions& fopt,
    std::vector<TraceCapture>* traces = nullptr);

/// Average of a version's improvement across rows, optionally filtered by
/// category (nullptr = all).
double average_improvement(const std::vector<ImprovementRow>& rows, Version v,
                           const workloads::Category* filter = nullptr);

/// Stable lowercase key for stat prefixes ("base", "purehw", "puresw",
/// "combined", "selective").
const char* version_key(Version v);

}  // namespace selcache::core
