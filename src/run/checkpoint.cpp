#include "run/checkpoint.h"

#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>

#include "store/store.h"
#include "support/fingerprint.h"
#include "support/io.h"
#include "support/run_guard.h"
#include "support/thread_pool.h"
#include "tape/cache.h"

namespace selcache::run {

namespace fs = std::filesystem;

namespace {

std::string journal_path(const std::string& run_dir) {
  return (fs::path(run_dir) / "journal.wal").string();
}

std::string store_dir(const std::string& run_dir) {
  return (fs::path(run_dir) / "store").string();
}

std::string ledger_path(const std::string& run_dir) {
  return (fs::path(run_dir) / "cells.csv").string();
}

std::optional<hw::SchemeKind> scheme_by_short_name(const std::string& n) {
  for (hw::SchemeKind k :
       {hw::SchemeKind::None, hw::SchemeKind::Bypass, hw::SchemeKind::Victim,
        hw::SchemeKind::Prefetch, hw::SchemeKind::Composite})
    if (n == hw::to_string(k)) return k;
  if (n.empty()) return hw::SchemeKind::Bypass;
  return std::nullopt;
}

/// Content fingerprint of one cell result — journaled with the `done`
/// record and re-verified against the stored result on resume, so a store
/// entry that drifted from what the journal promised degrades to a re-run
/// instead of silently changing the output.
std::uint64_t result_fingerprint(const core::RunResult& r) {
  std::uint64_t h = kFnv1aOffset;
  h = fnv1a_u64(h, r.cycles);
  h = fnv1a_u64(h, r.instructions);
  h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(r.l1_miss_rate));
  h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(r.l2_miss_rate));
  h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(r.conflict_share));
  h = fnv1a_u64(h, r.toggles);
  for (const auto& [k, v] : r.stats.all()) {
    h = fnv1a_str(h, k);
    h = fnv1a_u64(h, v);
  }
  return h;
}

core::RunResult from_stored(const store::StoredResult& s) {
  core::RunResult r;
  r.cycles = s.cycles;
  r.instructions = s.instructions;
  r.l1_miss_rate = s.l1_miss_rate;
  r.l2_miss_rate = s.l2_miss_rate;
  r.conflict_share = s.conflict_share;
  r.toggles = s.toggles;
  r.stats = s.stats;
  return r;
}

/// Crash hook for the kill-resume test harness: SELCACHE_CRASH_AFTER_CELLS=N
/// raises SIGKILL immediately after the N-th `done` record of this process
/// is journaled (and therefore durable). Parsed once per execute().
struct CrashHook {
  std::uint64_t after = 0;  ///< 0 = disarmed
  std::atomic<std::uint64_t> done{0};

  CrashHook() {
    const char* env = std::getenv("SELCACHE_CRASH_AFTER_CELLS");
    if (env != nullptr && *env != '\0') after = std::strtoull(env, nullptr, 10);
  }

  void tick() {
    if (after == 0) return;
    if (done.fetch_add(1, std::memory_order_relaxed) + 1 == after)
      std::raise(SIGKILL);
  }
};

/// What the journal already knows about one cell.
struct CellHistory {
  std::uint32_t attempts = 0;  ///< `started` records seen
  bool done = false;
  bool quarantined = false;
  std::uint64_t done_fp = 0;
  std::string reason;
};

/// Outcome of executing (or skipping) one cell in this process.
struct CellExec {
  enum class State { Done, Stored, Quarantined, Suspended, Pending };
  State state = State::Pending;
  std::optional<core::RunResult> result;
  std::uint32_t attempts = 0;  ///< attempts made by THIS call
  std::uint32_t failed = 0;    ///< failed attempts by THIS call
  std::string reason;
};

std::string cell_name(const workloads::WorkloadInfo& w, std::size_t vi) {
  return w.name + "/" + core::version_key(core::kAllVersions[vi]);
}

/// Everything one execute() call shares across cell tasks.
struct Engine {
  const RunSpec& spec;
  const CheckpointOptions& opts;
  core::MachineConfig machine;
  core::RunOptions base_opt;
  std::vector<const workloads::WorkloadInfo*> suite;
  std::unique_ptr<store::ResultStore> store;
  std::unique_ptr<JournalWriter> journal;
  tape::TapeCache tapes;
  CrashHook crash;
  std::atomic<bool> journal_failed{false};
  bool has_run_deadline = false;
  support::RunGuard::Clock::time_point run_deadline{};

  Engine(const RunSpec& s, const CheckpointOptions& o) : spec(s), opts(o) {}

  bool append(const JournalRecord& rec) {
    if (journal->append(rec)) return true;
    journal_failed.store(true, std::memory_order_relaxed);
    return false;
  }

  bool stop_requested() const {
    if (opts.stop != nullptr &&
        opts.stop->load(std::memory_order_relaxed) != 0)
      return true;
    return has_run_deadline &&
           support::RunGuard::Clock::now() > run_deadline;
  }

  CellExec run_cell(std::size_t wi, std::size_t vi,
                    std::uint32_t attempts_base) {
    const workloads::WorkloadInfo& w = *suite[wi];
    const core::Version v = core::kAllVersions[vi];
    const std::string cell = cell_name(w, vi);
    CellExec out;
    for (std::uint32_t attempt = 0; attempt <= opts.cell_retries; ++attempt) {
      if (attempt > 0 && opts.retry_backoff_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(retry_backoff_delay_ms(
                opts.retry_backoff_ms, w.name, vi, attempts_base + attempt)));
      // Suspend at the attempt boundary too, so a stop raised while this
      // task was backing off never starts another multi-second simulation.
      if (stop_requested()) {
        out.state = CellExec::State::Suspended;
        return out;
      }
      ++out.attempts;
      append(JournalRecord("started")
                 .add("cell", cell)
                 .add("attempt", std::uint64_t{attempts_base + attempt})
                 .add("seed", base_opt.data_seed));
      support::RunGuard guard(opts.stop);
      guard.arm_cell_deadline(opts.cell_deadline_ms);
      if (has_run_deadline) guard.arm_run_deadline(run_deadline);
      core::RunOptions opt = base_opt;
      opt.run_guard = &guard;
      try {
        core::RunResult r = core::run_version(w, machine, v, opt);
        append(JournalRecord("done")
                   .add("cell", cell)
                   .add("fp", result_fingerprint(r))
                   .add("attempt", std::uint64_t{attempts_base + attempt}));
        crash.tick();
        out.state = CellExec::State::Done;
        out.result = std::move(r);
        return out;
      } catch (const support::RunSuspended&) {
        // No record: the cell simply never finished. Resume re-plans it.
        out.state = CellExec::State::Suspended;
        return out;
      } catch (const std::exception& e) {
        out.reason = e.what();
      } catch (...) {
        out.reason = "unknown exception";
      }
      ++out.failed;
      append(JournalRecord("failed")
                 .add("cell", cell)
                 .add("attempt", std::uint64_t{attempts_base + attempt})
                 .add("reason", out.reason));
    }
    append(JournalRecord("quarantined")
               .add("cell", cell)
               .add("reason", out.reason));
    out.state = CellExec::State::Quarantined;
    return out;
  }
};

/// cells.csv: the human-readable status ledger, rewritten atomically at
/// every suspend/finish so an operator can see where a run stands without
/// decoding the journal.
void flush_ledger(const std::string& run_dir,
                  const std::vector<CellOutcome>& cells) {
  std::string csv = "workload,version,status,attempts,reason\n";
  for (const CellOutcome& c : cells) {
    std::string reason = c.reason;
    for (char& ch : reason)
      if (ch == ',' || ch == '\n' || ch == '\r') ch = ' ';
    csv += c.workload + "," + c.version + "," + c.status + "," +
           std::to_string(c.attempts) + "," + reason + "\n";
  }
  support::write_file_atomic(ledger_path(run_dir), csv);
}

CheckpointOutcome execute(const std::string& run_dir, const RunSpec& spec,
                          const CheckpointOptions& opts,
                          const JournalReadResult& existing) {
  CheckpointOutcome out;
  out.id = run_id(spec);

  Engine eng(spec, opts);

  const std::optional<core::MachineConfig> m =
      core::machine_by_name(spec.machine);
  if (!m) {
    out.error = "unknown machine '" + spec.machine + "'";
    return out;
  }
  eng.machine = *m;
  const std::optional<hw::SchemeKind> scheme =
      scheme_by_short_name(spec.scheme);
  if (!scheme) {
    out.error = "unknown scheme '" + spec.scheme + "'";
    return out;
  }

  if (spec.kind == "sweep") {
    try {
      eng.suite.push_back(&workloads::workload(spec.workload));
    } catch (const std::exception&) {
      out.error = "unknown workload '" + spec.workload + "'";
      return out;
    }
  } else if (spec.kind == "suite") {
    for (const auto& w : workloads::all_workloads()) eng.suite.push_back(&w);
  } else {
    out.error = "unknown run kind '" + spec.kind + "'";
    return out;
  }

  std::error_code ec;
  fs::create_directories(run_dir, ec);
  if (ec) {
    out.error = "cannot create run directory: " + ec.message();
    return out;
  }
  try {
    eng.store = std::make_unique<store::ResultStore>(store_dir(run_dir));
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }

  eng.base_opt.scheme = *scheme;
  eng.base_opt.reuse_tape = spec.reuse_tape;
  eng.base_opt.tape_cache = &eng.tapes;
  eng.base_opt.result_store = eng.store.get();
  if (spec.reuse_tape) eng.store->preload_tapes(eng.tapes);

  eng.journal = std::make_unique<JournalWriter>(journal_path(run_dir));
  if (!eng.journal->ok()) {
    out.error = "cannot open journal: " + eng.journal->last_error();
    return out;
  }
  if (opts.run_deadline_ms > 0) {
    eng.has_run_deadline = true;
    eng.run_deadline = support::RunGuard::Clock::now() +
                       std::chrono::milliseconds(opts.run_deadline_ms);
  }

  // Replay history (attempt counts, done fingerprints, quarantines) from
  // the existing journal, or lay down the header + plan for a fresh run.
  const std::size_t n_cells = eng.suite.size() * core::kAllVersions.size();
  std::vector<CellHistory> history(n_cells);
  auto cell_index = [&](const std::string& name) -> std::size_t {
    for (std::size_t wi = 0; wi < eng.suite.size(); ++wi)
      for (std::size_t vi = 0; vi < core::kAllVersions.size(); ++vi)
        if (cell_name(*eng.suite[wi], vi) == name)
          return wi * core::kAllVersions.size() + vi;
    return n_cells;  // unknown cell (foreign journal line): ignored
  };

  if (existing.records.empty()) {
    eng.append(to_record(spec));
    for (std::size_t wi = 0; wi < eng.suite.size(); ++wi)
      for (std::size_t vi = 0; vi < core::kAllVersions.size(); ++vi)
        eng.append(JournalRecord("planned")
                       .add("cell", cell_name(*eng.suite[wi], vi)));
  } else {
    for (const JournalRecord& rec : existing.records) {
      const std::string* cell = rec.find("cell");
      if (cell == nullptr) continue;
      const std::size_t i = cell_index(*cell);
      if (i >= n_cells) continue;
      if (rec.type == "started") ++history[i].attempts;
      if (rec.type == "done") {
        history[i].done = true;
        history[i].done_fp = rec.get_u64("fp");
      }
      if (rec.type == "failed") history[i].reason = rec.get("reason");
      if (rec.type == "quarantined") {
        history[i].quarantined = true;
        history[i].reason = rec.get("reason");
      }
    }
  }

  // Settle every cell: trusted `done` results load from the store; the
  // rest (planned, started-but-unfinished, done-but-unverifiable) re-run.
  std::vector<CellExec> cells(n_cells);
  std::vector<std::size_t> pending;
  for (std::size_t wi = 0; wi < eng.suite.size(); ++wi) {
    for (std::size_t vi = 0; vi < core::kAllVersions.size(); ++vi) {
      const std::size_t i = wi * core::kAllVersions.size() + vi;
      if (history[i].quarantined) {
        cells[i].state = CellExec::State::Quarantined;
        cells[i].reason = history[i].reason;
        continue;
      }
      if (history[i].done) {
        const std::string key = core::store_key(
            *eng.suite[wi], eng.machine, core::kAllVersions[vi], eng.base_opt);
        if (std::optional<store::StoredResult> hit = eng.store->load(key)) {
          core::RunResult r = from_stored(*hit);
          if (result_fingerprint(r) == history[i].done_fp) {
            cells[i].state = CellExec::State::Stored;
            cells[i].result = std::move(r);
            continue;
          }
        }
        // The journal promised a result the store cannot substantiate
        // (lost, torn, or drifted file). The cell re-runs.
      }
      pending.push_back(i);
    }
  }

  // Execute pending cells. Both paths submit/iterate in fixed cell order
  // and merge results by index, so scheduling never affects the output.
  bool suspended = false;
  if (opts.threads > 1 && pending.size() > 1) {
    support::ThreadPool pool(opts.threads);
    std::vector<std::future<CellExec>> futures;
    futures.reserve(pending.size());
    for (const std::size_t i : pending)
      futures.push_back(pool.submit([&eng, i, n = core::kAllVersions.size(),
                                     a = history[i].attempts] {
        return eng.run_cell(i / n, i % n, a);
      }));
    for (std::size_t fi = 0; fi < futures.size(); ++fi) {
      try {
        cells[pending[fi]] = futures[fi].get();
      } catch (const std::future_error&) {
        // Dropped by request_stop() before it ran: still pending.
        cells[pending[fi]].state = CellExec::State::Pending;
      }
      if (cells[pending[fi]].state == CellExec::State::Suspended &&
          !suspended) {
        suspended = true;
        // First suspension observed: cancel everything still queued. Cells
        // already running finish or unwind on their own guard; their
        // futures below resolve normally or as Suspended.
        pool.request_stop();
      }
    }
  } else {
    for (const std::size_t i : pending) {
      if (suspended || eng.stop_requested()) {
        cells[i].state = suspended ? CellExec::State::Pending
                                   : CellExec::State::Suspended;
        if (!suspended) suspended = true;
        continue;
      }
      cells[i] = eng.run_cell(i / core::kAllVersions.size(),
                              i % core::kAllVersions.size(),
                              history[i].attempts);
      if (cells[i].state == CellExec::State::Suspended) suspended = true;
    }
  }

  // Tally + outcome ledger in fixed (workload, version) order.
  bool all_terminal = true;
  for (std::size_t wi = 0; wi < eng.suite.size(); ++wi) {
    for (std::size_t vi = 0; vi < core::kAllVersions.size(); ++vi) {
      const std::size_t i = wi * core::kAllVersions.size() + vi;
      const CellExec& c = cells[i];
      CellOutcome o;
      o.workload = eng.suite[wi]->name;
      o.version = core::version_key(core::kAllVersions[vi]);
      o.attempts = history[i].attempts + c.attempts;
      o.reason = c.reason;
      out.failed_attempts += c.failed;
      switch (c.state) {
        case CellExec::State::Done:
          o.status = "done";
          ++out.cells_done;
          break;
        case CellExec::State::Stored:
          o.status = "stored";
          ++out.cells_from_store;
          break;
        case CellExec::State::Quarantined:
          o.status = "quarantined";
          ++out.cells_quarantined;
          break;
        default:
          o.status = "pending";
          all_terminal = false;
          break;
      }
      out.cells.push_back(std::move(o));
    }
  }

  if (spec.reuse_tape) eng.store->persist_tapes(eng.tapes);

  out.suspended = suspended || (!all_terminal && eng.stop_requested());
  out.complete = all_terminal && !out.suspended;
  if (out.suspended) {
    eng.append(JournalRecord("suspended")
                   .add("cells_done", out.cells_done)
                   .add("cells_from_store", out.cells_from_store));
  } else if (out.complete) {
    eng.append(JournalRecord("complete")
                   .add("cells_done", out.cells_done)
                   .add("cells_from_store", out.cells_from_store)
                   .add("cells_quarantined", out.cells_quarantined));
  }
  flush_ledger(run_dir, out.cells);

  // Rows only for a finished run: a suspended sweep has no figure yet (the
  // whole point is that `resume` produces it later, byte-identical).
  if (out.complete) {
    out.rows.reserve(eng.suite.size());
    for (std::size_t wi = 0; wi < eng.suite.size(); ++wi) {
      std::array<std::optional<core::RunResult>, 5> partial;
      std::array<core::RunResult, 5> full;
      bool have_all = true;
      for (std::size_t vi = 0; vi < core::kAllVersions.size(); ++vi) {
        CellExec& c = cells[wi * core::kAllVersions.size() + vi];
        if (c.result) {
          full[vi] = *c.result;
          partial[vi] = std::move(c.result);
        } else {
          have_all = false;
        }
      }
      // The full-row constructor is the one the plain sweep engines use —
      // that shared code path is what makes resumed output byte-identical.
      // Rows with quarantined cells render 0.0 for the missing versions
      // (same convention as the resilient engine); byte-equality against
      // an uninterrupted run is only claimed for quarantine-free runs.
      if (have_all) {
        out.rows.push_back(core::make_improvement_row(*eng.suite[wi], full));
      } else {
        core::ImprovementRow row;
        row.benchmark = eng.suite[wi]->name;
        row.category = eng.suite[wi]->category;
        row.base_cycles = partial[0] ? partial[0]->cycles : 0;
        for (std::size_t vi = 0; vi < core::kAllVersions.size(); ++vi) {
          const core::Version v = core::kAllVersions[vi];
          if (v != core::Version::Base)
            row.pct[v] = partial[0] && partial[vi]
                             ? improvement_pct(row.base_cycles,
                                               partial[vi]->cycles)
                             : 0.0;
          if (partial[vi]) {
            row.stats.merge(partial[vi]->stats,
                            std::string(core::version_key(v)) + ".");
          }
        }
        out.rows.push_back(std::move(row));
      }
    }
  }

  if (eng.journal_failed.load(std::memory_order_relaxed))
    out.error = "journal append failed: " + eng.journal->last_error();
  return out;
}

}  // namespace

std::uint64_t retry_backoff_delay_ms(std::uint64_t base_ms,
                                     const std::string& workload,
                                     std::size_t version_index,
                                     std::uint32_t attempt) {
  if (base_ms == 0 || attempt == 0) return 0;
  // Bounded exponential: cap the exponent so a long retry history cannot
  // overflow into a multi-hour sleep.
  const std::uint32_t exp = attempt - 1 < 6 ? attempt - 1 : 6;
  std::uint64_t h = kFnv1aOffset;
  h = fnv1a_str(h, workload);
  h = fnv1a_u64(h, version_index);
  h = fnv1a_u64(h, attempt);
  return base_ms * (std::uint64_t{1} << exp) + h % base_ms;
}

CheckpointOutcome run_checkpointed(const std::string& run_dir,
                                   const RunSpec& spec,
                                   const CheckpointOptions& opts) {
  const JournalReadResult existing = read_journal(journal_path(run_dir));
  if (!existing.records.empty()) {
    // The directory already holds a run: only continue if it is THIS run.
    const std::optional<RunSpec> prior = from_record(existing.records.front());
    CheckpointOutcome bad;
    if (!prior) {
      bad.error = "run directory has a journal but no usable run header";
      return bad;
    }
    if (run_id(*prior) != run_id(spec)) {
      bad.error = "run directory belongs to a different run (journal id " +
                  run_id(*prior) + ", requested " + run_id(spec) + ")";
      return bad;
    }
  }
  return execute(run_dir, spec, opts, existing);
}

CheckpointOutcome resume_checkpointed(const std::string& run_dir,
                                      const CheckpointOptions& opts) {
  const JournalReadResult existing = read_journal(journal_path(run_dir));
  CheckpointOutcome bad;
  if (existing.records.empty()) {
    bad.error = "no journal found in '" + run_dir + "'";
    return bad;
  }
  const std::optional<RunSpec> spec = from_record(existing.records.front());
  if (!spec) {
    bad.error = "journal header is missing or fails its id check";
    return bad;
  }
  return execute(run_dir, *spec, opts, existing);
}

RunStatus inspect_run(const std::string& run_dir) {
  RunStatus st;
  const JournalReadResult j = read_journal(journal_path(run_dir));
  if (j.records.empty()) {
    st.error = "no journal found in '" + run_dir + "'";
    return st;
  }
  const std::optional<RunSpec> spec = from_record(j.records.front());
  if (!spec) {
    st.error = "journal header is missing or fails its id check";
    return st;
  }
  st.spec = *spec;
  st.id = run_id(*spec);
  st.torn_tail = j.torn_tail;
  st.bytes_dropped = j.bytes_dropped;

  // Fold records into per-cell status, preserving first-seen (plan) order.
  std::vector<std::string> order;
  std::vector<CellOutcome> cells;
  auto slot = [&](const std::string& name) -> CellOutcome& {
    for (std::size_t i = 0; i < order.size(); ++i)
      if (order[i] == name) return cells[i];
    order.push_back(name);
    CellOutcome o;
    const std::size_t sep = name.rfind('/');
    o.workload = sep == std::string::npos ? name : name.substr(0, sep);
    o.version = sep == std::string::npos ? "" : name.substr(sep + 1);
    o.status = "planned";
    cells.push_back(std::move(o));
    return cells.back();
  };
  for (const JournalRecord& rec : j.records) {
    if (rec.type == "suspended") st.suspended = true;
    if (rec.type == "complete") st.complete = true;
    const std::string* cell = rec.find("cell");
    if (cell == nullptr) continue;
    CellOutcome& o = slot(*cell);
    if (rec.type == "started") {
      ++o.attempts;
      o.status = "started";
    } else if (rec.type == "done") {
      o.status = "done";
    } else if (rec.type == "failed") {
      o.status = "failed";
      o.reason = rec.get("reason");
    } else if (rec.type == "quarantined") {
      o.status = "quarantined";
      o.reason = rec.get("reason");
    }
  }
  st.cells = std::move(cells);
  return st;
}

}  // namespace selcache::run
