#include "run/journal.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/fingerprint.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace selcache::run {

namespace {

/// Bytes that must be escaped in keys/values: the payload separators (TAB,
/// '='), the escape char itself, and line breaks (journals stay greppable
/// line-by-line even though the frame is binary).
bool needs_escape(char c) {
  return c == '%' || c == '\t' || c == '\n' || c == '\r' || c == '=';
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (needs_escape(c)) {
      static const char* hex = "0123456789ABCDEF";
      out += '%';
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += hex[static_cast<unsigned char>(c) & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Unescape; false on a malformed %-sequence.
bool unescape(const std::string& s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      *out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) return false;
    const int hi = hex_nibble(s[i + 1]);
    const int lo = hex_nibble(s[i + 2]);
    if (hi < 0 || lo < 0) return false;
    *out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return true;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr std::size_t kFrameHeader = 4 + 8;  // u32 length + u64 checksum

/// Sanity cap on one record's payload; anything larger is framing
/// corruption, not a real record (the largest legitimate record is a
/// failure reason of a few hundred bytes).
constexpr std::uint32_t kMaxPayload = 1 << 20;

}  // namespace

JournalRecord& JournalRecord::add(const std::string& key,
                                  std::uint64_t value) {
  return add(key, std::to_string(value));
}

const std::string* JournalRecord::find(const std::string& key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

std::string JournalRecord::get(const std::string& key,
                               const std::string& dflt) const {
  const std::string* v = find(key);
  return v != nullptr ? *v : dflt;
}

std::uint64_t JournalRecord::get_u64(const std::string& key,
                                     std::uint64_t dflt) const {
  const std::string* v = find(key);
  if (v == nullptr || v->empty() ||
      v->find_first_not_of("0123456789") != std::string::npos)
    return dflt;
  return std::strtoull(v->c_str(), nullptr, 10);
}

std::string encode_record(const JournalRecord& rec) {
  std::string payload = escape(rec.type);
  for (const auto& [k, v] : rec.fields) {
    payload += '\t';
    payload += escape(k);
    payload += '=';
    payload += escape(v);
  }
  return payload;
}

bool decode_record(const std::string& payload, JournalRecord* out) {
  out->type.clear();
  out->fields.clear();
  std::size_t pos = 0;
  bool first = true;
  while (pos <= payload.size()) {
    const std::size_t tab = payload.find('\t', pos);
    const std::string tok = payload.substr(
        pos, tab == std::string::npos ? std::string::npos : tab - pos);
    if (first) {
      if (tok.empty() || !unescape(tok, &out->type)) return false;
      first = false;
    } else {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) return false;
      std::string k, v;
      if (!unescape(tok.substr(0, eq), &k) ||
          !unescape(tok.substr(eq + 1), &v))
        return false;
      out->fields.emplace_back(std::move(k), std::move(v));
    }
    if (tab == std::string::npos) break;
    pos = tab + 1;
  }
  return !first;
}

JournalWriter::JournalWriter(const std::string& path, bool sync_each)
    : sync_each_(sync_each) {
  f_ = std::fopen(path.c_str(), "ab");
  if (f_ == nullptr)
    error_ = "open: " + std::string(std::strerror(errno));
}

JournalWriter::~JournalWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

bool JournalWriter::append(const JournalRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_ == nullptr) return false;
  const std::string payload = encode_record(rec);
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u64(frame, fnv1a_bytes(kFnv1aOffset, payload.data(), payload.size()));
  frame += payload;

  errno = 0;
  if (std::fwrite(frame.data(), 1, frame.size(), f_) != frame.size()) {
    error_ = "write: " + std::string(std::strerror(errno));
    return false;
  }
  if (std::fflush(f_) != 0) {
    error_ = "flush: " + std::string(std::strerror(errno));
    return false;
  }
#ifndef _WIN32
  // The write-ahead contract: a record acknowledged here survives SIGKILL.
  if (sync_each_ && ::fsync(::fileno(f_)) != 0) {
    error_ = "fsync: " + std::string(std::strerror(errno));
    return false;
  }
#endif
  return true;
}

std::string JournalWriter::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

JournalReadResult read_journal(const std::string& path) {
  JournalReadResult out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // no journal: zero records
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t pos = 0;
  while (pos < data.size()) {
    // A frame that does not fully fit, fails its checksum, or does not
    // decode is the torn tail if nothing follows it — expected after a
    // kill mid-append — and corruption otherwise.
    bool intact = false;
    std::size_t next = pos;
    if (pos + kFrameHeader <= data.size()) {
      const std::uint32_t len = get_u32(p + pos);
      const std::uint64_t want = get_u64(p + pos + 4);
      if (len <= kMaxPayload && pos + kFrameHeader + len <= data.size()) {
        const char* payload = data.data() + pos + kFrameHeader;
        if (fnv1a_bytes(kFnv1aOffset, payload, len) == want) {
          JournalRecord rec;
          if (decode_record(std::string(payload, len), &rec)) {
            out.records.push_back(std::move(rec));
            next = pos + kFrameHeader + len;
            intact = true;
          }
        }
      }
    }
    if (!intact) {
      out.bytes_dropped = data.size() - pos;
      out.torn_tail = true;
      // Distinguish a torn tail (kill mid-append: the remainder is shorter
      // than or equal to one frame attempt) from mid-file corruption. We
      // cannot re-synchronize reliably — frames are not self-delimiting —
      // so everything from here on is dropped either way; `corrupt` just
      // records that the drop was larger than one plausible frame.
      if (pos + kFrameHeader <= data.size()) {
        const std::uint32_t len = get_u32(p + pos);
        if (len <= kMaxPayload && pos + kFrameHeader + len < data.size())
          out.corrupt = true;
      }
      break;
    }
    pos = next;
  }
  return out;
}

}  // namespace selcache::run
