#include "run/spec.h"

#include <cstdio>

#include "support/fingerprint.h"

namespace selcache::run {

namespace {

std::uint64_t spec_fingerprint(const RunSpec& spec) {
  std::uint64_t h = kFnv1aOffset;
  h = fnv1a_u64(h, kRunFormatVersion);
  h = fnv1a_str(h, spec.kind);
  h = fnv1a_str(h, spec.workload);
  h = fnv1a_str(h, spec.machine);
  h = fnv1a_str(h, spec.scheme);
  h = fnv1a_u64(h, spec.reuse_tape ? 1 : 0);
  // Output paths are NOT part of the identity: the same run written to a
  // different CSV path is still the same run. Only inputs that change the
  // simulated bytes participate.
  h = fnv1a_u64(h, spec.machine_fp);
  h = fnv1a_u64(h, spec.stream_fp);
  return h;
}

}  // namespace

std::string run_id(const RunSpec& spec) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(spec_fingerprint(spec)));
  return buf;
}

JournalRecord to_record(const RunSpec& spec) {
  JournalRecord rec("run");
  rec.add("id", run_id(spec))
      .add("format", static_cast<std::uint64_t>(kRunFormatVersion))
      .add("kind", spec.kind)
      .add("workload", spec.workload)
      .add("machine", spec.machine)
      .add("scheme", spec.scheme)
      .add("reuse_tape", spec.reuse_tape ? std::string("1") : std::string("0"))
      .add("csv_out", spec.csv_out)
      .add("jsonl_out", spec.jsonl_out)
      .add("machine_fp", spec.machine_fp)
      .add("stream_fp", spec.stream_fp);
  return rec;
}

std::optional<RunSpec> from_record(const JournalRecord& rec) {
  if (rec.type != "run") return std::nullopt;
  RunSpec spec;
  spec.kind = rec.get("kind");
  spec.workload = rec.get("workload");
  spec.machine = rec.get("machine", "base");
  spec.scheme = rec.get("scheme", "bypass");
  spec.reuse_tape = rec.get("reuse_tape") == "1";
  spec.csv_out = rec.get("csv_out");
  spec.jsonl_out = rec.get("jsonl_out");
  spec.machine_fp = rec.get_u64("machine_fp");
  spec.stream_fp = rec.get_u64("stream_fp");
  // The embedded id must match the recomputed one: a hand-edited header or
  // a journal from a different format version is rejected, not resumed.
  if (rec.get("id") != run_id(spec)) return std::nullopt;
  if (rec.get_u64("format") != kRunFormatVersion) return std::nullopt;
  return spec;
}

}  // namespace selcache::run
