// Checkpointed sweep engine: executes a RunSpec's cell matrix under a
// write-ahead journal so the run can be killed — SIGKILL included — at any
// point and resumed to the byte-identical output of an uninterrupted run.
//
// A cell is one (workload, version) simulation. Its lifecycle is journaled
// as planned -> started(attempt, seed) -> done(result fingerprint) |
// failed(attempt, reason) | quarantined(reason), with run-level records
// around it (run header, suspended, complete). The journal records
// TRANSITIONS; the run directory's result store holds the cell RESULTS
// (the same store core::run_version already consults), so:
//
//   * a `done` record whose stored result round-trips with a matching
//     fingerprint is trusted and never re-simulated;
//   * a `done` record whose result is missing or mismatched (store file
//     lost, torn, or edited) degrades to a re-run — the journal is a
//     promise about history, the store is re-verified every resume;
//   * everything else (planned/started/failed) re-plans the cell.
//
// Suspension: the engine polls a stop token (typically a SignalGuard's)
// and an optional whole-run deadline at access granularity via
// support::RunGuard. A trip abandons the in-flight cells (RunSuspended
// unwinds them; their partial state is task-local), drains the pool
// cooperatively, appends a `suspended` record, flushes the cells.csv
// ledger, and returns with outcome.suspended set. Nothing torn is left
// behind: every artifact goes through the atomic writer, and the journal
// reader drops a torn tail by design.
//
// Failure: a cell attempt that throws anything else (injected crash,
// internal check, cell wall-clock deadline) is retried up to
// opts.cell_retries times with bounded exponential backoff and
// deterministic seed-derived jitter, then quarantined. Quarantined cells
// contribute 0.0 improvement to their row, mirroring the resilient sweep
// engine's convention.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.h"
#include "run/spec.h"

namespace selcache::run {

struct CheckpointOptions {
  unsigned threads = 0;  ///< 0/1 = serial, N = worker pool
  /// Whole-run wall-clock budget (0 = none). Expiry suspends the run at a
  /// cell boundary, exactly like a signal; `resume` picks it back up.
  std::uint64_t run_deadline_ms = 0;
  /// Per-cell wall-clock soft deadline (0 = none). Expiry fails the
  /// ATTEMPT (retried, then quarantined), not the run.
  std::uint64_t cell_deadline_ms = 0;
  std::uint32_t cell_retries = 1;  ///< attempts = cell_retries + 1
  /// Base for retry backoff: delay before attempt k (k >= 1) is
  /// base * 2^(k-1) plus deterministic jitter in [0, base). 0 = no wait.
  std::uint64_t retry_backoff_ms = 0;
  /// External stop token (nonzero = suspend); typically
  /// support::SignalGuard::token(). May be null.
  const std::atomic<int>* stop = nullptr;
};

/// Terminal state of one cell after execute().
struct CellOutcome {
  std::string workload;
  std::string version;      ///< core::version_key string
  std::string status;       ///< done | stored | quarantined | pending
  std::uint32_t attempts = 0;
  std::string reason;       ///< last failure reason (quarantined cells)
};

struct CheckpointOutcome {
  /// Non-empty = the run could not execute at all (unusable journal, spec
  /// mismatch, unwritable run directory). Cell failures are NOT errors.
  std::string error;

  std::vector<core::ImprovementRow> rows;  ///< fixed workload order
  bool suspended = false;  ///< stopped at a cell boundary; resume to finish
  bool complete = false;   ///< every cell reached done|quarantined

  std::string id;  ///< the run's content fingerprint (run_id(spec))
  std::vector<CellOutcome> cells;  ///< fixed (workload, version) order
  std::uint64_t cells_done = 0;        ///< simulated to completion this call
  std::uint64_t cells_from_store = 0;  ///< trusted done records (resume)
  std::uint64_t cells_quarantined = 0;
  std::uint64_t failed_attempts = 0;
};

/// Deterministic backoff before retry attempt `attempt` (1-based; attempt 0
/// is the first try and never waits): base * 2^(attempt-1), exponent capped,
/// plus seed-derived jitter in [0, base) so parallel retries de-correlate
/// without a global RNG. Exposed for tests.
std::uint64_t retry_backoff_delay_ms(std::uint64_t base_ms,
                                     const std::string& workload,
                                     std::size_t version_index,
                                     std::uint32_t attempt);

/// Execute (or resume) the run described by `spec` in `run_dir`. Creates
/// the directory, journal, and result store on first use; on a non-empty
/// journal it validates the header against `spec` (id mismatch = error)
/// and continues from the journaled state.
CheckpointOutcome run_checkpointed(const std::string& run_dir,
                                   const RunSpec& spec,
                                   const CheckpointOptions& opts);

/// Execute (or resume) whatever run `run_dir`'s journal describes — the
/// `selcache resume` entry point. Fails if there is no usable header.
CheckpointOutcome resume_checkpointed(const std::string& run_dir,
                                      const CheckpointOptions& opts);

/// Read-only journal inspection for `selcache resume --status`.
struct RunStatus {
  std::string error;  ///< non-empty = no usable journal
  RunSpec spec;
  std::string id;
  std::vector<CellOutcome> cells;  ///< status: done|started|failed|planned|quarantined
  bool suspended = false;  ///< last run-level event was a suspension
  bool complete = false;
  bool torn_tail = false;
  std::uint64_t bytes_dropped = 0;
};

RunStatus inspect_run(const std::string& run_dir);

}  // namespace selcache::run
