// Append-only, checksummed write-ahead journal for run ledgers.
//
// The journal is the source of truth for a checkpointed run: one record per
// cell-state transition (planned -> started -> done|failed|quarantined),
// plus run-level records (run header, suspended, complete). It follows the
// store's crash-safe discipline, adapted from rewrite-whole-file to
// append-only:
//
//   * every append is framed [u32 length][u64 FNV-1a checksum][payload] and
//     fsync'd before the writer reports success, so an acknowledged record
//     survives SIGKILL;
//   * the reader tolerates a torn tail: a final record whose frame is
//     truncated or whose checksum mismatches is detected by the
//     length+checksum pair and DROPPED, never mis-parsed — everything
//     before it is trusted. A torn frame mid-file (not the tail) marks the
//     journal corrupt from that point on; records before it are still
//     returned.
//
// Payloads are text: `type<TAB>key=value<TAB>key=value`, with %-escaping
// for the five bytes that would break framing or parsing (%, TAB, LF, CR,
// '='). Text keeps journals greppable; the binary frame keeps them safe.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace selcache::run {

/// One journal record: a type tag plus ordered key=value fields.
struct JournalRecord {
  std::string type;
  std::vector<std::pair<std::string, std::string>> fields;

  JournalRecord() = default;
  explicit JournalRecord(std::string t) : type(std::move(t)) {}

  JournalRecord& add(const std::string& key, const std::string& value) {
    fields.emplace_back(key, value);
    return *this;
  }
  JournalRecord& add(const std::string& key, std::uint64_t value);

  /// First value for `key`, or nullptr.
  const std::string* find(const std::string& key) const;
  /// find() with a default for optional fields.
  std::string get(const std::string& key, const std::string& dflt = "") const;
  /// Parsed unsigned field; `dflt` when absent or malformed.
  std::uint64_t get_u64(const std::string& key, std::uint64_t dflt = 0) const;
};

/// Serialize / parse one record payload (exposed for tests). parse returns
/// false on a malformed payload (empty, or a field without '=').
std::string encode_record(const JournalRecord& rec);
bool decode_record(const std::string& payload, JournalRecord* out);

/// Appending half. Thread-safe: append() serializes internally, so parallel
/// cell tasks can journal their own transitions.
class JournalWriter {
 public:
  /// Opens `path` for appending (creating it if absent). `sync_each` fsyncs
  /// after every record — the write-ahead contract; tests may turn it off.
  explicit JournalWriter(const std::string& path, bool sync_each = true);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// False when the file could not be opened; append() then always fails.
  bool ok() const { return f_ != nullptr; }

  /// Frame, write, flush, fsync. Returns false (and records last_error)
  /// when any step fails — the caller decides whether that is fatal.
  bool append(const JournalRecord& rec);

  std::string last_error() const;

 private:
  mutable std::mutex mu_;
  std::FILE* f_ = nullptr;
  std::string error_;
  bool sync_each_;
};

/// Result of replaying a journal file.
struct JournalReadResult {
  std::vector<JournalRecord> records;  ///< every intact record, in order
  bool torn_tail = false;   ///< final record truncated/corrupt and dropped
  bool corrupt = false;     ///< corruption before the tail (suffix dropped)
  std::uint64_t bytes_dropped = 0;  ///< bytes after the last intact record
};

/// Replay `path`. A missing file reads as zero records (not an error) —
/// callers distinguish "no journal" via records.empty().
JournalReadResult read_journal(const std::string& path);

}  // namespace selcache::run
