// Run identity: what a checkpointed invocation IS, independent of how many
// threads execute it or how many times it is interrupted and resumed.
//
// The RunSpec captures every input that shapes the run's output — the cell
// matrix (kind + workload), the machine and scheme (by their stable CLI
// short ids), the tape-reuse flag, and the output paths the CLI will write.
// The RunId is an FNV-1a fingerprint over the spec plus the machine/stream
// fingerprints core already derives for the result store, so two
// invocations get the same id exactly when an uninterrupted run of either
// would produce byte-identical output.
//
// The spec is journaled as the run's first record and checked on resume: a
// RUN_DIR whose journal disagrees with its recomputed id (edited spec,
// mismatched store) is rejected instead of quietly producing a franken-run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "run/journal.h"

namespace selcache::run {

struct RunSpec {
  std::string kind;      ///< "sweep" (one workload) or "suite" (all 13)
  std::string workload;  ///< workload name; empty for a suite
  std::string machine = "base";   ///< CLI short id (base, memlat, ...)
  std::string scheme = "bypass";  ///< CLI short id (bypass, victim, none)
  bool reuse_tape = false;
  std::string csv_out;    ///< --csv-out path ("" = none)
  std::string jsonl_out;  ///< --jsonl-out path ("" = none)
  std::uint64_t machine_fp = 0;  ///< core::machine_fingerprint
  std::uint64_t stream_fp = 0;   ///< core::stream_fingerprint
};

/// Journal format version; part of the RunId, so a format change orphans
/// old run dirs loudly (id mismatch) instead of mis-resuming them.
inline constexpr std::uint32_t kRunFormatVersion = 1;

/// 16-hex-digit content fingerprint of the spec.
std::string run_id(const RunSpec& spec);

/// The spec as the run's journal header record (type "run").
JournalRecord to_record(const RunSpec& spec);

/// Rebuild a spec from a journal header; nullopt if `rec` is not a "run"
/// record or the embedded id does not match the recomputed one.
std::optional<RunSpec> from_record(const JournalRecord& rec);

}  // namespace selcache::run
