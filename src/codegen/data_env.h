// Data environment: the simulated address space for one program run.
//
// Allocates every declared array, scalar and pool at deterministic
// addresses, synthesizes index-array contents and pointer-chase orders from
// a seeded RNG, and holds the mutable traversal state (current node of each
// pointer pool). Two program variants (base vs. optimized) build separate
// environments — their layouts differ by design.
#pragma once

#include <vector>

#include "codegen/layout.h"
#include "support/rng.h"

namespace selcache::codegen {

struct DataEnvOptions {
  std::uint64_t seed = 0x5e1c4c4eULL;
  Addr data_base = 0x10000000;   ///< arrays/pools allocated upward from here
  Addr page_align = 4096;        ///< allocation alignment
};

class DataEnv {
 public:
  DataEnv(const ir::Program& p, DataEnvOptions opt = {});

  // ---- addresses ----------------------------------------------------------
  const ArrayLayout& array_layout(ir::ArrayId a) const {
    return layouts_.at(a);
  }
  Addr scalar_addr(ir::ScalarId s) const { return scalar_addrs_.at(s); }
  /// Address of field `field_offset` of record `index` (wrapped mod count).
  Addr record_addr(ir::PoolId pool, std::int64_t index,
                   std::uint32_t field_offset) const;

  // ---- index-array contents -----------------------------------------------
  /// Value of index array `a` at flattened position `pos` (wrapped).
  std::int64_t index_value(ir::ArrayId a, std::int64_t pos) const;

  // ---- pointer chasing ----------------------------------------------------
  /// Advance pool `pool`'s walk one node; returns the new node's address
  /// plus `field_offset`.
  Addr chase_next(ir::PoolId pool, std::uint32_t field_offset);

  /// Reset all traversal cursors (not the synthesized contents).
  void reset_walks();

  /// Total allocated bytes (diagnostics; drives working-set documentation).
  std::uint64_t total_footprint() const { return next_free_ - opt_.data_base; }

 private:
  Addr allocate(std::uint64_t bytes);

  const ir::Program& prog_;
  DataEnvOptions opt_;
  Addr next_free_;
  std::vector<ArrayLayout> layouts_;
  std::vector<Addr> scalar_addrs_;
  std::vector<Addr> pool_bases_;
  std::vector<std::vector<std::int64_t>> index_contents_;  ///< per array
  std::vector<std::vector<std::uint32_t>> pool_next_;      ///< per pool
  std::vector<std::uint32_t> pool_cursor_;
};

}  // namespace selcache::codegen
