#include "codegen/layout.h"

#include "support/check.h"

namespace selcache::codegen {

ArrayLayout::ArrayLayout(const ir::ArrayDecl& decl, Addr base)
    : base_(base),
      dims_(decl.dims),
      elem_size_(decl.elem_size),
      layout_(decl.layout) {
  SELCACHE_CHECK(!dims_.empty());
  strides_.assign(dims_.size(), 1);
  if (layout_ == ir::Layout::RowMajor) {
    // Fastest dim is the last; padding extends its extent.
    std::int64_t stride = 1;
    for (std::size_t d = dims_.size(); d-- > 0;) {
      strides_[d] = stride;
      const std::int64_t extent =
          dims_[d] + (d == dims_.size() - 1 ? decl.pad_elems : 0);
      stride *= extent;
    }
    footprint_ = static_cast<std::uint64_t>(stride) * elem_size_;
  } else {
    // Column-major: fastest dim is the first.
    std::int64_t stride = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      strides_[d] = stride;
      const std::int64_t extent = dims_[d] + (d == 0 ? decl.pad_elems : 0);
      stride *= extent;
    }
    footprint_ = static_cast<std::uint64_t>(stride) * elem_size_;
  }
}

Addr ArrayLayout::element_addr(std::span<const std::int64_t> indices) const {
  SELCACHE_CHECK_MSG(indices.size() == dims_.size(),
                     "subscript arity mismatch");
  std::int64_t offset = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    std::int64_t idx = indices[d] % dims_[d];
    if (idx < 0) idx += dims_[d];
    offset += idx * strides_[d];
  }
  return base_ + static_cast<Addr>(offset) * elem_size_;
}

}  // namespace selcache::codegen
