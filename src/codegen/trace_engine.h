// Trace engine: executes an IR program, driving the CPU timing model (and
// through it the memory hierarchy) with the instruction/memory stream the
// program denotes. This is the "run the binary under SimpleScalar" step of
// the paper's methodology (§4.4) — our binary is the IR.
//
// Per loop iteration the engine issues: the body, one index-update compute
// op, and the back-edge branch (predicted by the bimodal table). Statements
// issue their I-fetches, compute ops and references in order. Indexed
// subscripts first load the index array element (an address-generating
// load), then perform the dependent gather/scatter. Pointer references walk
// the pool's next-chain with fully serialized (dependent) loads. Toggle
// nodes execute the activate/deactivate instruction.
#pragma once

#include "codegen/data_env.h"
#include "cpu/timing_model.h"

namespace selcache::codegen {

class TraceEngine {
 public:
  TraceEngine(const ir::Program& p, DataEnv& env, cpu::TimingModel& cpu);

  /// Execute the whole program once.
  void run();

  /// Dynamic counts (diagnostics).
  std::uint64_t loads_executed() const { return loads_; }
  std::uint64_t stores_executed() const { return stores_; }
  std::uint64_t iterations_executed() const { return iterations_; }

 private:
  /// Upper bound on array rank for the stack-allocated subscript buffer
  /// (synthetic workloads use at most 3 dimensions).
  static constexpr std::size_t kMaxDims = 8;

  void exec_body(const std::vector<std::unique_ptr<ir::Node>>& body);
  void exec_loop(const ir::LoopNode& loop);
  void exec_stmt(const ir::Stmt& stmt);
  /// Evaluate one subscript; emits the index-array load for Indexed
  /// subscripts and reports whether the enclosing access is now
  /// address-dependent.
  std::int64_t eval_subscript(const ir::Subscript& s, bool* dependent);
  void exec_ref(const ir::Reference& r);

  const ir::Program& prog_;
  DataEnv& env_;
  cpu::TimingModel& cpu_;
  std::vector<std::int64_t> vars_;
  std::uint64_t loads_ = 0, stores_ = 0, iterations_ = 0;
};

}  // namespace selcache::codegen
