// Trace engine: executes an IR program, driving the CPU timing model (and
// through it the memory hierarchy) with the instruction/memory stream the
// program denotes. This is the "run the binary under SimpleScalar" step of
// the paper's methodology (§4.4) — our binary is the IR.
//
// Per loop iteration the engine issues: the body, one index-update compute
// op, and the back-edge branch (predicted by the bimodal table). Statements
// issue their I-fetches, compute ops and references in order. Indexed
// subscripts first load the index array element (an address-generating
// load), then perform the dependent gather/scatter. Pointer references walk
// the pool's next-chain with fully serialized (dependent) loads. Toggle
// nodes execute the activate/deactivate instruction.
//
// The engine is a template over the CPU it drives so the tape layer can
// interpose its RecordingTimingModel shim (same six entry points as
// cpu::TimingModel) with zero overhead on the plain path. `TraceEngine`
// remains the cpu::TimingModel instantiation every existing caller uses.
#pragma once

#include <array>
#include <span>

#include "codegen/data_env.h"
#include "cpu/timing_model.h"
#include "support/check.h"

namespace selcache::codegen {

template <typename Cpu>
class BasicTraceEngine {
 public:
  BasicTraceEngine(const ir::Program& p, DataEnv& env, Cpu& cpu)
      : prog_(p), env_(env), cpu_(cpu) {
    vars_.assign(p.var_names().size(), 0);
  }

  /// Execute the whole program once.
  void run() {
    env_.reset_walks();
    exec_body(prog_.top());
  }

  /// Dynamic counts (diagnostics).
  std::uint64_t loads_executed() const { return loads_; }
  std::uint64_t stores_executed() const { return stores_; }
  std::uint64_t iterations_executed() const { return iterations_; }

 private:
  /// Upper bound on array rank for the stack-allocated subscript buffer
  /// (synthetic workloads use at most 3 dimensions).
  static constexpr std::size_t kMaxDims = 8;

  void exec_body(const std::vector<std::unique_ptr<ir::Node>>& body) {
    for (const auto& n : body) {
      switch (n->kind) {
        case ir::NodeKind::Loop:
          exec_loop(static_cast<const ir::LoopNode&>(*n));
          break;
        case ir::NodeKind::Stmt:
          exec_stmt(static_cast<const ir::StmtNode&>(*n).stmt);
          break;
        case ir::NodeKind::Toggle: {
          const auto& t = static_cast<const ir::ToggleNode&>(*n);
          cpu_.toggle(t.on, t.region);
          break;
        }
      }
    }
  }

  void exec_loop(const ir::LoopNode& loop) {
    const std::int64_t lo = loop.lower.eval(vars_);
    const std::int64_t hi = loop.upper.eval(vars_);
    for (std::int64_t v = lo; v < hi; v += loop.step) {
      vars_[loop.var] = v;
      ++iterations_;
      exec_body(loop.body);
      // Loop overhead: index update + back-edge branch (taken except when
      // falling out).
      cpu_.compute(1);
      cpu_.branch(loop.code_addr, /*taken=*/v + loop.step < hi);
    }
  }

  /// Evaluate one subscript; emits the index-array load for Indexed
  /// subscripts and reports whether the enclosing access is now
  /// address-dependent.
  std::int64_t eval_subscript(const ir::Subscript& s, bool* dependent) {
    return std::visit(
        [&](const auto& sub) -> std::int64_t {
          using T = std::decay_t<decltype(sub)>;
          if constexpr (std::is_same_v<T, ir::Subscript::Affine>) {
            return sub.expr.eval(vars_);
          } else if constexpr (std::is_same_v<T, ir::Subscript::Product>) {
            return sub.lhs.eval(vars_) * sub.rhs.eval(vars_);
          } else if constexpr (std::is_same_v<T, ir::Subscript::Divide>) {
            const std::int64_t d = sub.rhs.eval(vars_);
            const std::int64_t n = sub.lhs.eval(vars_);
            return d == 0 ? n : n / d;
          } else {
            // Indexed: load the index element, then the consumer access is
            // address-dependent on it.
            const std::int64_t pos = sub.index.eval(vars_);
            const auto& layout = env_.array_layout(sub.index_array);
            const std::int64_t idx[1] = {pos};
            cpu_.load(layout.element_addr(idx));
            ++loads_;
            *dependent = true;
            return env_.index_value(sub.index_array, pos) + sub.offset;
          }
        },
        s.value);
  }

  void exec_ref(const ir::Reference& r) {
    std::visit(
        [&](const auto& t) {
          using T = std::decay_t<decltype(t)>;
          if constexpr (std::is_same_v<T, ir::Reference::Scalar>) {
            const Addr a = env_.scalar_addr(t.id);
            r.is_write ? cpu_.store(a) : cpu_.load(a);
          } else if constexpr (std::is_same_v<T, ir::Reference::Array>) {
            bool dependent = false;
            // Hot path: a fixed-size index buffer keeps the per-reference
            // subscript evaluation allocation-free.
            std::array<std::int64_t, kMaxDims> idx;
            SELCACHE_CHECK(t.subs.size() <= kMaxDims);
            for (std::size_t d = 0; d < t.subs.size(); ++d)
              idx[d] = eval_subscript(t.subs[d], &dependent);
            const Addr a = env_.array_layout(t.id).element_addr(
                std::span<const std::int64_t>(idx.data(), t.subs.size()));
            if (r.is_write) {
              cpu_.store(a);
            } else {
              cpu_.load(a, dependent);
            }
          } else if constexpr (std::is_same_v<T, ir::Reference::Pointer>) {
            const Addr a = env_.chase_next(t.pool, t.field_offset);
            // Following the link: the address came from the previous load.
            if (r.is_write) {
              cpu_.store(a);
            } else {
              cpu_.load(a, /*dependent=*/true);
            }
          } else {
            bool dependent = false;
            const std::int64_t e = eval_subscript(t.element, &dependent);
            const Addr a = env_.record_addr(t.pool, e, t.field_offset);
            if (r.is_write) {
              cpu_.store(a);
            } else {
              cpu_.load(a, dependent);
            }
          }
        },
        r.target);
    r.is_write ? ++stores_ : ++loads_;
  }

  void exec_stmt(const ir::Stmt& stmt) {
    cpu_.touch_code(stmt.code_addr, stmt.instruction_count());
    for (const auto& r : stmt.refs) exec_ref(r);
    if (stmt.compute_ops > 0) cpu_.compute(stmt.compute_ops);
  }

  const ir::Program& prog_;
  DataEnv& env_;
  Cpu& cpu_;
  std::vector<std::int64_t> vars_;
  std::uint64_t loads_ = 0, stores_ = 0, iterations_ = 0;
};

/// The plain engine every simulation path uses.
using TraceEngine = BasicTraceEngine<cpu::TimingModel>;

extern template class BasicTraceEngine<cpu::TimingModel>;

}  // namespace selcache::codegen
