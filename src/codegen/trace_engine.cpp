#include "codegen/trace_engine.h"

#include <array>
#include <span>

#include "support/check.h"

namespace selcache::codegen {

using ir::LoopNode;
using ir::Node;
using ir::NodeKind;
using ir::Reference;
using ir::StmtNode;
using ir::Subscript;
using ir::ToggleNode;

TraceEngine::TraceEngine(const ir::Program& p, DataEnv& env,
                         cpu::TimingModel& cpu)
    : prog_(p), env_(env), cpu_(cpu) {
  vars_.assign(p.var_names().size(), 0);
}

void TraceEngine::run() {
  env_.reset_walks();
  exec_body(prog_.top());
}

void TraceEngine::exec_body(const std::vector<std::unique_ptr<Node>>& body) {
  for (const auto& n : body) {
    switch (n->kind) {
      case NodeKind::Loop:
        exec_loop(static_cast<const LoopNode&>(*n));
        break;
      case NodeKind::Stmt:
        exec_stmt(static_cast<const StmtNode&>(*n).stmt);
        break;
      case NodeKind::Toggle: {
        const auto& t = static_cast<const ToggleNode&>(*n);
        cpu_.toggle(t.on, t.region);
        break;
      }
    }
  }
}

void TraceEngine::exec_loop(const LoopNode& loop) {
  const std::int64_t lo = loop.lower.eval(vars_);
  const std::int64_t hi = loop.upper.eval(vars_);
  for (std::int64_t v = lo; v < hi; v += loop.step) {
    vars_[loop.var] = v;
    ++iterations_;
    exec_body(loop.body);
    // Loop overhead: index update + back-edge branch (taken except when
    // falling out).
    cpu_.compute(1);
    cpu_.branch(loop.code_addr, /*taken=*/v + loop.step < hi);
  }
}

std::int64_t TraceEngine::eval_subscript(const Subscript& s, bool* dependent) {
  return std::visit(
      [&](const auto& sub) -> std::int64_t {
        using T = std::decay_t<decltype(sub)>;
        if constexpr (std::is_same_v<T, Subscript::Affine>) {
          return sub.expr.eval(vars_);
        } else if constexpr (std::is_same_v<T, Subscript::Product>) {
          return sub.lhs.eval(vars_) * sub.rhs.eval(vars_);
        } else if constexpr (std::is_same_v<T, Subscript::Divide>) {
          const std::int64_t d = sub.rhs.eval(vars_);
          const std::int64_t n = sub.lhs.eval(vars_);
          return d == 0 ? n : n / d;
        } else {
          // Indexed: load the index element, then the consumer access is
          // address-dependent on it.
          const std::int64_t pos = sub.index.eval(vars_);
          const auto& layout = env_.array_layout(sub.index_array);
          const std::int64_t idx[1] = {pos};
          cpu_.load(layout.element_addr(idx));
          ++loads_;
          *dependent = true;
          return env_.index_value(sub.index_array, pos) + sub.offset;
        }
      },
      s.value);
}

void TraceEngine::exec_ref(const Reference& r) {
  std::visit(
      [&](const auto& t) {
        using T = std::decay_t<decltype(t)>;
        if constexpr (std::is_same_v<T, Reference::Scalar>) {
          const Addr a = env_.scalar_addr(t.id);
          r.is_write ? cpu_.store(a) : cpu_.load(a);
        } else if constexpr (std::is_same_v<T, Reference::Array>) {
          bool dependent = false;
          // Hot path: a fixed-size index buffer keeps the per-reference
          // subscript evaluation allocation-free.
          std::array<std::int64_t, kMaxDims> idx;
          SELCACHE_CHECK(t.subs.size() <= kMaxDims);
          for (std::size_t d = 0; d < t.subs.size(); ++d)
            idx[d] = eval_subscript(t.subs[d], &dependent);
          const Addr a = env_.array_layout(t.id).element_addr(
              std::span<const std::int64_t>(idx.data(), t.subs.size()));
          if (r.is_write) {
            cpu_.store(a);
          } else {
            cpu_.load(a, dependent);
          }
        } else if constexpr (std::is_same_v<T, Reference::Pointer>) {
          const Addr a = env_.chase_next(t.pool, t.field_offset);
          // Following the link: the address came from the previous load.
          if (r.is_write) {
            cpu_.store(a);
          } else {
            cpu_.load(a, /*dependent=*/true);
          }
        } else {
          bool dependent = false;
          const std::int64_t e = eval_subscript(t.element, &dependent);
          const Addr a = env_.record_addr(t.pool, e, t.field_offset);
          if (r.is_write) {
            cpu_.store(a);
          } else {
            cpu_.load(a, dependent);
          }
        }
      },
      r.target);
  r.is_write ? ++stores_ : ++loads_;
}

void TraceEngine::exec_stmt(const ir::Stmt& stmt) {
  cpu_.touch_code(stmt.code_addr, stmt.instruction_count());
  for (const auto& r : stmt.refs) exec_ref(r);
  if (stmt.compute_ops > 0) cpu_.compute(stmt.compute_ops);
}

}  // namespace selcache::codegen
