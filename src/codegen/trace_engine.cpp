#include "codegen/trace_engine.h"

namespace selcache::codegen {

// The cpu::TimingModel instantiation is compiled once here; other
// instantiations (the tape recorder's shim) are implicit at their use site.
template class BasicTraceEngine<cpu::TimingModel>;

}  // namespace selcache::codegen
