// Array address mapping: dimensions x layout x padding -> byte addresses.
#pragma once

#include <span>
#include <vector>

#include "ir/program.h"
#include "support/types.h"

namespace selcache::codegen {

class ArrayLayout {
 public:
  ArrayLayout(const ir::ArrayDecl& decl, Addr base);

  /// Byte address of the element at `indices`. Out-of-range indices wrap
  /// into [0, dim) — synthetic workloads use boundary offsets (j+1 at the
  /// last iteration) whose exact target does not matter, only its locality.
  Addr element_addr(std::span<const std::int64_t> indices) const;

  Addr base() const { return base_; }
  std::uint64_t footprint_bytes() const { return footprint_; }
  ir::Layout layout() const { return layout_; }

 private:
  Addr base_;
  std::vector<std::int64_t> dims_;
  /// Per-dimension element stride under the chosen layout (incl. padding).
  std::vector<std::int64_t> strides_;
  std::uint32_t elem_size_;
  ir::Layout layout_;
  std::uint64_t footprint_;
};

}  // namespace selcache::codegen
