#include "codegen/data_env.h"

#include "support/bitutil.h"

namespace selcache::codegen {

DataEnv::DataEnv(const ir::Program& p, DataEnvOptions opt)
    : prog_(p), opt_(opt), next_free_(opt.data_base) {
  Rng rng(opt_.seed);

  // Arrays: page-aligned sequential allocation. Power-of-two footprints
  // landing at page boundaries collide in the cache index bits — the
  // realistic source of the conflict misses the paper's mechanisms target.
  layouts_.reserve(p.arrays().size());
  for (const auto& a : p.arrays()) {
    ArrayLayout layout(a, next_free_);
    next_free_ = align_up(next_free_ + layout.footprint_bytes(),
                          opt_.page_align);
    layouts_.push_back(layout);
  }

  // Scalars: packed into a globals region (they share cache lines, as the
  // .data segment of a real binary would).
  Addr scalar_base = allocate(8ull * std::max<std::size_t>(
                                         1, p.scalars().size()));
  for (std::size_t s = 0; s < p.scalars().size(); ++s)
    scalar_addrs_.push_back(scalar_base + 8 * s);

  // Pools.
  for (const auto& pool : p.pools()) {
    pool_bases_.push_back(
        allocate(static_cast<std::uint64_t>(pool.count) * pool.elem_size));
    std::vector<std::uint32_t> next;
    if (pool.kind == ir::PoolDecl::Kind::PointerChase) {
      const auto n = static_cast<std::uint32_t>(pool.count);
      if (pool.shuffled) {
        // A random Hamiltonian cycle: heap-allocated list whose traversal
        // order no prefetcher can follow.
        Rng prng = rng.fork(pool_bases_.size());
        std::vector<std::uint32_t> order = prng.permutation(n);
        next.assign(n, 0);
        for (std::uint32_t k = 0; k < n; ++k)
          next[order[k]] = order[(k + 1) % n];
      } else {
        // Freshly allocated list: traversal order == address order.
        next.resize(n);
        for (std::uint32_t k = 0; k < n; ++k) next[k] = (k + 1) % n;
      }
    }
    pool_next_.push_back(std::move(next));
    pool_cursor_.push_back(0);
  }

  // Index-array contents.
  index_contents_.resize(p.arrays().size());
  for (std::size_t a = 0; a < p.arrays().size(); ++a) {
    const auto& decl = p.arrays()[a];
    if (decl.content == ir::ArrayDecl::Content::None) continue;
    const std::int64_t n = decl.elements();
    const std::int64_t range =
        decl.content_range > 0 ? decl.content_range : n;
    Rng arng = rng.fork(0x1000 + a);
    auto& vals = index_contents_[a];
    vals.resize(static_cast<std::size_t>(n));
    switch (decl.content) {
      case ir::ArrayDecl::Content::Identity:
        for (std::int64_t k = 0; k < n; ++k) vals[k] = k % range;
        break;
      case ir::ArrayDecl::Content::Permutation: {
        auto perm = arng.permutation(static_cast<std::uint32_t>(n));
        for (std::int64_t k = 0; k < n; ++k)
          vals[k] = static_cast<std::int64_t>(perm[k]) % range;
        break;
      }
      case ir::ArrayDecl::Content::Uniform:
        for (std::int64_t k = 0; k < n; ++k)
          vals[k] = static_cast<std::int64_t>(
              arng.below(static_cast<std::uint64_t>(range)));
        break;
      case ir::ArrayDecl::Content::Zipf:
        for (std::int64_t k = 0; k < n; ++k)
          vals[k] = static_cast<std::int64_t>(
              arng.zipf(static_cast<std::uint64_t>(range),
                        decl.content_param));
        break;
      case ir::ArrayDecl::Content::Mesh: {
        // Clustered irregularity: mostly near-neighbor jumps with
        // occasional long hops — unstructured-mesh connectivity (Chaos).
        std::int64_t cur = 0;
        const std::int64_t hop =
            std::max<std::int64_t>(2, static_cast<std::int64_t>(
                                          decl.content_param));
        for (std::int64_t k = 0; k < n; ++k) {
          if (arng.chance(0.1)) {
            cur = static_cast<std::int64_t>(
                arng.below(static_cast<std::uint64_t>(range)));
          } else {
            cur = (cur + arng.range(-hop, hop) + range) % range;
          }
          vals[k] = cur;
        }
        break;
      }
      case ir::ArrayDecl::Content::None:
        break;
    }
  }
}

Addr DataEnv::allocate(std::uint64_t bytes) {
  const Addr base = next_free_;
  next_free_ = align_up(next_free_ + std::max<std::uint64_t>(bytes, 1),
                        opt_.page_align);
  return base;
}

Addr DataEnv::record_addr(ir::PoolId pool, std::int64_t index,
                          std::uint32_t field_offset) const {
  const auto& decl = prog_.pool(pool);
  std::int64_t idx = index % decl.count;
  if (idx < 0) idx += decl.count;
  return pool_bases_.at(pool) +
         static_cast<Addr>(idx) * decl.elem_size + field_offset;
}

std::int64_t DataEnv::index_value(ir::ArrayId a, std::int64_t pos) const {
  const auto& vals = index_contents_.at(a);
  SELCACHE_CHECK_MSG(!vals.empty(),
                     prog_.array(a).name + " has no synthesized contents");
  std::int64_t p = pos % static_cast<std::int64_t>(vals.size());
  if (p < 0) p += static_cast<std::int64_t>(vals.size());
  return vals[static_cast<std::size_t>(p)];
}

Addr DataEnv::chase_next(ir::PoolId pool, std::uint32_t field_offset) {
  const auto& decl = prog_.pool(pool);
  SELCACHE_CHECK_MSG(decl.kind == ir::PoolDecl::Kind::PointerChase,
                     decl.name + " is not a chase pool");
  std::uint32_t& cur = pool_cursor_.at(pool);
  cur = pool_next_.at(pool)[cur];
  return pool_bases_.at(pool) + static_cast<Addr>(cur) * decl.elem_size +
         field_offset;
}

void DataEnv::reset_walks() {
  for (auto& c : pool_cursor_) c = 0;
}

}  // namespace selcache::codegen
