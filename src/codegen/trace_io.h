// Trace capture and replay.
//
// The timing model can tee every event driven through it (computes, memory
// references with their dependence flags, branches, toggles, I-fetch
// groups) into a flat trace; the trace can be saved, reloaded and replayed
// into any machine configuration. Replaying a trace reproduces the original
// run's timing exactly — useful for machine-configuration sweeps without
// re-interpreting the IR, and for exporting workloads to other tools.
//
//   cpu::TimingModel model(cfg, hierarchy, controller);
//   codegen::Trace trace;
//   model.set_trace_sink(&trace);          // record
//   engine.run();
//   codegen::save_trace(trace, "run.sctrace");
//   ...
//   codegen::replay_trace(codegen::load_trace("run.sctrace"), other_model);
#pragma once

#include <string>
#include <vector>

#include "cpu/timing_model.h"

namespace selcache::codegen {

using cpu::TraceEvent;
using Trace = cpu::Trace;

/// Drive a timing model with a previously captured trace.
void replay_trace(const Trace& trace, cpu::TimingModel& cpu);

/// Binary round-trip (fixed-width little-endian records with a versioned
/// header). save returns false on I/O failure; load throws
/// std::logic_error on malformed input.
bool save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

}  // namespace selcache::codegen
