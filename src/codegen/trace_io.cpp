#include "codegen/trace_io.h"

#include <cstring>
#include <fstream>

#include "support/check.h"
#include "support/io.h"

namespace selcache::codegen {

void replay_trace(const Trace& trace, cpu::TimingModel& cpu) {
  for (const TraceEvent& e : trace) {
    switch (e.kind) {
      case TraceEvent::Kind::Compute:
        cpu.compute(e.value);
        break;
      case TraceEvent::Kind::Load:
        cpu.load(e.addr, (e.flags & 1) != 0);
        break;
      case TraceEvent::Kind::Store:
        cpu.store(e.addr);
        break;
      case TraceEvent::Kind::Branch:
        cpu.branch(e.addr, (e.flags & 1) != 0);
        break;
      case TraceEvent::Kind::Toggle:
        // `value` carries region + 1 (0 = unattributed); see TraceEvent.
        cpu.toggle((e.flags & 1) != 0,
                   static_cast<std::int32_t>(e.value) - 1);
        break;
      case TraceEvent::Kind::Ifetch:
        cpu.touch_code(e.addr, e.value);
        break;
    }
  }
}

namespace {
constexpr char kMagic[8] = {'S', 'C', 'T', 'R', 'A', 'C', 'E', '1'};

struct Record {
  std::uint8_t kind;
  std::uint8_t flags;
  std::uint16_t pad = 0;
  std::uint32_t value;
  std::uint64_t addr;
};
static_assert(sizeof(Record) == 16, "stable on-disk layout");
}  // namespace

bool save_trace(const Trace& trace, const std::string& path) {
  // Serialize into memory, then write through the hardened atomic writer
  // (unique .tmp sibling + rename, every OS step checked) — a killed or
  // out-of-space run never leaves a truncated trace that load_trace rejects.
  std::string data;
  data.reserve(sizeof(kMagic) + sizeof(std::uint64_t) +
               trace.size() * sizeof(Record));
  data.append(kMagic, sizeof(kMagic));
  const std::uint64_t n = trace.size();
  data.append(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const TraceEvent& e : trace) {
    Record r{static_cast<std::uint8_t>(e.kind), e.flags, 0, e.value, e.addr};
    data.append(reinterpret_cast<const char*>(&r), sizeof(r));
  }
  return support::write_file_atomic(path, data).ok();
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SELCACHE_CHECK_MSG(static_cast<bool>(in), "cannot open trace " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  SELCACHE_CHECK_MSG(in && std::memcmp(magic, kMagic, 8) == 0,
                     "bad trace magic in " + path);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  SELCACHE_CHECK_MSG(static_cast<bool>(in), "truncated trace header");

  Trace trace;
  trace.reserve(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    Record r;
    in.read(reinterpret_cast<char*>(&r), sizeof(r));
    SELCACHE_CHECK_MSG(static_cast<bool>(in), "truncated trace body");
    SELCACHE_CHECK_MSG(
        r.kind <= static_cast<std::uint8_t>(TraceEvent::Kind::Ifetch),
        "corrupt trace record kind");
    trace.push_back({static_cast<TraceEvent::Kind>(r.kind), r.flags, r.value,
                     r.addr});
  }
  return trace;
}

}  // namespace selcache::codegen
