// Persistent result store: on-disk, content-fingerprinted memoization of
// simulation cells, making every sweep incremental across processes.
//
// A cell is one (workload, version, machine, scheme, optimizer pipeline)
// simulation; its key is a readable string that embeds fingerprints of
// everything the result depends on plus a store format version (see
// core::store_key). Values are the cell's full StatSet snapshot and scalar
// results. The store also persists recorded trace tapes (tape::TapeCache
// entries) through the same directory, so figure benches replay from disk
// on their second run.
//
// Layout under the store directory:
//
//   cells/<fnv64(key)>.cell   one stored result (format below)
//   tapes/<fnv64(key)>.tape   one recorded tape (tape::save_tape format)
//   tapes/<fnv64(key)>.key    the tape's cache key (one line, text)
//
// ## Trust contract
//
// The store NEVER turns disk state into an error on the read path: a
// missing, truncated, mis-sized, checksum-mismatched, or key-collided
// entry is a miss (the cell re-simulates and is rewritten). Writes are
// crash-safe: a unique .tmp sibling is written and fsync-free atomically
// renamed over the target, so readers only ever observe whole files.
// Entries embed their full key and a checksum over the payload; loads
// verify both, so a hash-collision between two keys' file names degrades
// to a miss, never to a wrong result.
//
// Fault-armed, watchdog-armed, and degrade-armed runs bypass the store
// entirely (mirroring the tape rule): their results are functions of the
// injected perturbation, not of the cell key.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/io.h"
#include "support/stats.h"
#include "tape/cache.h"

namespace selcache::store {

/// Bump when the entry encoding, the key derivation, or anything else that
/// would make old entries stale changes. Part of core::store_key, so a
/// version bump invalidates every existing cell at once.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// One memoized cell result: the scalar outputs plus the full counter
/// snapshot core::RunResult carries for store-eligible runs. (Fault and
/// degradation counters are absent by construction — fault-armed runs
/// never touch the store.)
struct StoredResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double l1_miss_rate = 0.0;
  double l2_miss_rate = 0.0;
  double conflict_share = 0.0;
  std::uint64_t toggles = 0;
  StatSet stats;
};

/// Hit/miss/write accounting for one store handle's lifetime. `corrupt`
/// counts loads that found a file but rejected it (also counted in
/// `misses` — corruption is a miss, never an error). `write_errors` counts
/// saves the filesystem rejected (ENOSPC/EIO/...): correctness-neutral (the
/// cell re-simulates next run) but never silent — see last_write_error().
struct StoreCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t write_errors = 0;
};

class ResultStore {
 public:
  struct Options {
    /// Serve hits but never write (warm CI lanes against a shared store).
    bool read_only = false;
  };

  /// Opens (creating if needed) the store rooted at `dir`. Throws only for
  /// a directory that cannot be created — never for bad entry contents.
  /// (Two overloads, not a default argument: a `= {}` default for a nested
  /// aggregate with member initializers is ill-formed inside the enclosing
  /// class.)
  explicit ResultStore(std::string dir);
  ResultStore(std::string dir, Options opt);

  const std::string& dir() const { return dir_; }
  bool read_only() const { return opt_.read_only; }

  /// The stored result for `key`, or nullopt on miss (absent or rejected).
  std::optional<StoredResult> load(const std::string& key);

  /// Persist `r` under `key` (no-op when read-only). Crash-safe; a lost
  /// race with a concurrent writer of the same key is harmless (both write
  /// the same bytes for the same key).
  void save(const std::string& key, const StoredResult& r);

  /// Load every readable tape in the store into `cache` (corrupt tape
  /// files are skipped). Returns the number of tapes inserted.
  std::size_t preload_tapes(tape::TapeCache& cache);

  /// Write every finished tape of `cache` not already on disk (no-op when
  /// read-only). Returns the number of tapes written.
  std::size_t persist_tapes(const tape::TapeCache& cache);

  /// One on-disk entry (cell or tape) for `ls` / `gc`.
  struct Entry {
    std::string path;   ///< absolute file path
    std::string key;    ///< embedded cell key, or the tape's cache key
    std::uint64_t bytes = 0;
    std::int64_t mtime = 0;  ///< seconds-resolution modification time
  };

  /// All entries, sorted by path (deterministic for reporting). Unreadable
  /// entries list with an empty key.
  std::vector<Entry> entries() const;

  std::uint64_t total_bytes() const;

  /// Delete oldest-first (by mtime, then path) until the store holds at
  /// most `max_bytes`. Returns the number of files removed. Tapes and
  /// their .key sidecars are removed together.
  std::size_t gc(std::uint64_t max_bytes);

  /// Remove every entry (the directory itself stays).
  void clear();

  /// This handle's hit/miss/write counters (thread-safe snapshot).
  StoreCounters counters() const;

  /// "stage: errno text" of the most recent failed write (empty if none) —
  /// the diagnostic companion of counters().write_errors.
  std::string last_write_error() const;

 private:
  std::string cell_path(const std::string& key) const;
  void count(std::uint64_t StoreCounters::* field);
  void note_write(const support::WriteStatus& st);

  std::string dir_;
  Options opt_;
  mutable std::mutex mu_;  ///< guards counters_ (file ops are lock-free)
  StoreCounters counters_;
  std::string last_write_error_;
};

}  // namespace selcache::store
