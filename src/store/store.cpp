#include "store/store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "support/check.h"
#include "support/fingerprint.h"
#include "support/io.h"
#include "tape/tape.h"

namespace fs = std::filesystem;

namespace selcache::store {

namespace {

constexpr char kCellMagic[8] = {'S', 'C', 'S', 'T', 'O', 'R', 'E', '1'};

// -- little-endian byte-buffer codec ----------------------------------------
// Explicit byte order so entries are portable; the reader is fully bounds-
// checked and reports any malformation as decode failure (-> miss).

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// Bounds-checked reader. Every get_* reports failure through ok; callers
/// check once at the end (reads after a failure return zeros).
struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  bool ensure(std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) ok = false;
    return ok;
  }
  std::uint32_t get_u32() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p++) << (8 * i);
    return v;
  }
  std::uint64_t get_u64() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p++) << (8 * i);
    return v;
  }
  std::string get_str() {
    const std::uint32_t n = get_u32();
    if (!ensure(n)) return {};
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }
};

std::uint64_t bits_of(double d) {
  std::uint64_t v = 0;
  static_assert(sizeof(v) == sizeof(d));
  std::memcpy(&v, &d, sizeof(v));
  return v;
}

double double_of(std::uint64_t v) {
  double d = 0;
  std::memcpy(&d, &v, sizeof(d));
  return d;
}

/// Serialize one entry payload (everything the checksum covers). The key
/// is embedded so a filename-hash collision is detected at load time.
std::string encode_payload(const std::string& key, const StoredResult& r) {
  std::string p;
  put_str(p, key);
  put_u64(p, r.cycles);
  put_u64(p, r.instructions);
  put_u64(p, bits_of(r.l1_miss_rate));
  put_u64(p, bits_of(r.l2_miss_rate));
  put_u64(p, bits_of(r.conflict_share));
  put_u64(p, r.toggles);
  put_u64(p, r.stats.all().size());
  for (const auto& [k, v] : r.stats.all()) {
    put_str(p, k);
    put_u64(p, v);
  }
  return p;
}

/// Decode a payload previously produced by encode_payload. Returns nullopt
/// on any malformation, including an embedded key that is not `want_key`.
std::optional<StoredResult> decode_payload(const std::string& payload,
                                           const std::string& want_key) {
  Reader rd{reinterpret_cast<const std::uint8_t*>(payload.data()),
            reinterpret_cast<const std::uint8_t*>(payload.data()) +
                payload.size()};
  if (rd.get_str() != want_key) return std::nullopt;
  StoredResult r;
  r.cycles = rd.get_u64();
  r.instructions = rd.get_u64();
  r.l1_miss_rate = double_of(rd.get_u64());
  r.l2_miss_rate = double_of(rd.get_u64());
  r.conflict_share = double_of(rd.get_u64());
  r.toggles = rd.get_u64();
  const std::uint64_t n = rd.get_u64();
  // Counter count is bounded by the remaining bytes (each costs >= 12), so
  // a corrupt huge count fails here instead of looping.
  if (!rd.ok || n > payload.size() / 12 + 1) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = rd.get_str();
    const std::uint64_t v = rd.get_u64();
    if (!rd.ok) return std::nullopt;
    r.stats.counter(name) = v;
  }
  if (!rd.ok || rd.p != rd.end) return std::nullopt;
  return r;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t key_hash(const std::string& key) {
  return fnv1a_str(kFnv1aOffset, key);
}

/// Whole-file read; nullopt on any I/O trouble.
std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in && !in.eof()) return std::nullopt;
  return data;
}

std::int64_t mtime_seconds(const fs::path& p) {
  std::error_code ec;
  const auto t = fs::last_write_time(p, ec);
  if (ec) return 0;
  return std::chrono::duration_cast<std::chrono::seconds>(
             t.time_since_epoch())
      .count();
}

std::uint64_t file_bytes(const fs::path& p) {
  std::error_code ec;
  const auto n = fs::file_size(p, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

/// First line of a tape .key sidecar (the tape's cache key), or empty.
std::string read_key_sidecar(const fs::path& p) {
  std::ifstream in(p);
  std::string key;
  if (!in || !std::getline(in, key)) return {};
  return key;
}

}  // namespace

ResultStore::ResultStore(std::string dir)
    : ResultStore(std::move(dir), Options{}) {}

ResultStore::ResultStore(std::string dir, Options opt)
    : dir_(std::move(dir)), opt_(opt) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "cells", ec);
  SELCACHE_CHECK_MSG(!ec, "cannot create store directory " + dir_);
  fs::create_directories(fs::path(dir_) / "tapes", ec);
  SELCACHE_CHECK_MSG(!ec, "cannot create store directory " + dir_);
}

std::string ResultStore::cell_path(const std::string& key) const {
  return (fs::path(dir_) / "cells" / (hex16(key_hash(key)) + ".cell"))
      .string();
}

void ResultStore::count(std::uint64_t StoreCounters::* field) {
  std::lock_guard<std::mutex> lock(mu_);
  ++(counters_.*field);
}

StoreCounters ResultStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::optional<StoredResult> ResultStore::load(const std::string& key) {
  const std::optional<std::string> data = read_file(cell_path(key));
  if (!data) {  // absent: a plain miss, not corruption
    count(&StoreCounters::misses);
    return std::nullopt;
  }
  // Header: magic, format version, payload length, payload checksum. Any
  // mismatch — truncation, stale version, bad checksum, wrong embedded
  // key — rejects the entry as a miss. Never throws.
  Reader rd{reinterpret_cast<const std::uint8_t*>(data->data()),
            reinterpret_cast<const std::uint8_t*>(data->data()) +
                data->size()};
  std::optional<StoredResult> result;
  if (rd.ensure(sizeof(kCellMagic)) &&
      std::memcmp(rd.p, kCellMagic, sizeof(kCellMagic)) == 0) {
    rd.p += sizeof(kCellMagic);
    const std::uint32_t version = rd.get_u32();
    const std::uint64_t payload_size = rd.get_u64();
    const std::uint64_t checksum = rd.get_u64();
    if (rd.ok && version == kStoreFormatVersion &&
        payload_size == static_cast<std::uint64_t>(rd.end - rd.p)) {
      const std::string payload(reinterpret_cast<const char*>(rd.p),
                                static_cast<std::size_t>(payload_size));
      if (fnv1a_bytes(kFnv1aOffset, payload.data(), payload.size()) ==
          checksum)
        result = decode_payload(payload, key);
    }
  }
  if (!result) {
    count(&StoreCounters::corrupt);
    count(&StoreCounters::misses);
    return std::nullopt;
  }
  count(&StoreCounters::hits);
  return result;
}

void ResultStore::save(const std::string& key, const StoredResult& r) {
  if (opt_.read_only) return;
  const std::string payload = encode_payload(key, r);
  std::string data(kCellMagic, sizeof(kCellMagic));
  put_u32(data, kStoreFormatVersion);
  put_u64(data, payload.size());
  put_u64(data, fnv1a_bytes(kFnv1aOffset, payload.data(), payload.size()));
  data += payload;
  note_write(support::write_file_atomic(cell_path(key), data));
}

void ResultStore::note_write(const support::WriteStatus& st) {
  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) {
    ++counters_.writes;
  } else {
    // A failed write is a non-event for correctness (the cell simply
    // re-simulates next time) but never a silent one: it is counted and its
    // stage+errno text retained for diagnostics.
    ++counters_.write_errors;
    last_write_error_ = st.message();
  }
}

std::string ResultStore::last_write_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_write_error_;
}

std::size_t ResultStore::preload_tapes(tape::TapeCache& cache) {
  std::vector<fs::path> sidecars;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(fs::path(dir_) / "tapes", ec))
    if (e.path().extension() == ".key") sidecars.push_back(e.path());
  std::sort(sidecars.begin(), sidecars.end());

  std::size_t loaded = 0;
  for (const fs::path& kp : sidecars) {
    const std::string key = read_key_sidecar(kp);
    if (key.empty()) continue;
    fs::path tp = kp;
    tp.replace_extension(".tape");
    // A corrupt or truncated tape file is a miss: skip it; the cell will
    // re-record and persist_tapes will rewrite it.
    try {
      tape::Tape t = tape::load_tape(tp.string());
      bool recorded = false;
      cache.get_or_record(
          key, [&t] { return std::move(t); }, &recorded);
      if (recorded) ++loaded;
    } catch (const std::exception&) {
      continue;
    }
  }
  return loaded;
}

std::size_t ResultStore::persist_tapes(const tape::TapeCache& cache) {
  if (opt_.read_only) return 0;
  std::size_t written = 0;
  for (const auto& [key, tp] : cache.snapshot()) {
    const std::string stem =
        (fs::path(dir_) / "tapes" / hex16(key_hash(key))).string();
    std::error_code ec;
    // The .key sidecar is written last, so its presence implies a complete
    // pair; a crash between the two leaves an orphan .tape that is simply
    // rewritten next time.
    if (fs::exists(stem + ".key", ec)) continue;
    const support::WriteStatus tape_st =
        tape::save_tape_status(*tp, stem + ".tape");
    if (!tape_st.ok()) {
      note_write(tape_st);
      continue;
    }
    const support::WriteStatus key_st =
        support::write_file_atomic(stem + ".key", key + "\n");
    note_write(key_st);
    if (key_st.ok()) ++written;
  }
  return written;
}

std::vector<ResultStore::Entry> ResultStore::entries() const {
  std::vector<Entry> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(fs::path(dir_) / "cells", ec)) {
    if (e.path().extension() != ".cell") continue;
    Entry ent;
    ent.path = e.path().string();
    ent.bytes = file_bytes(e.path());
    ent.mtime = mtime_seconds(e.path());
    // Best-effort key extraction (header + payload prefix); unreadable
    // entries list with an empty key rather than being hidden.
    if (const auto data = read_file(ent.path);
        data && data->size() > sizeof(kCellMagic) + 20 &&
        std::memcmp(data->data(), kCellMagic, sizeof(kCellMagic)) == 0) {
      Reader rd{reinterpret_cast<const std::uint8_t*>(data->data()) +
                    sizeof(kCellMagic) + 20,
                reinterpret_cast<const std::uint8_t*>(data->data()) +
                    data->size()};
      std::string key = rd.get_str();
      if (rd.ok) ent.key = std::move(key);
    }
    out.push_back(std::move(ent));
  }
  for (const auto& e : fs::directory_iterator(fs::path(dir_) / "tapes", ec)) {
    if (e.path().extension() != ".tape") continue;
    Entry ent;
    ent.path = e.path().string();
    ent.bytes = file_bytes(e.path());
    ent.mtime = mtime_seconds(e.path());
    fs::path kp = e.path();
    kp.replace_extension(".key");
    ent.key = read_key_sidecar(kp);
    out.push_back(std::move(ent));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.path < b.path; });
  return out;
}

std::uint64_t ResultStore::total_bytes() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries()) total += e.bytes;
  return total;
}

std::size_t ResultStore::gc(std::uint64_t max_bytes) {
  std::vector<Entry> ents = entries();
  std::uint64_t total = 0;
  for (const Entry& e : ents) total += e.bytes;
  // Oldest first; path tiebreak keeps eviction order deterministic when a
  // whole store was written within one mtime granule.
  std::sort(ents.begin(), ents.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
  });
  std::size_t removed = 0;
  for (const Entry& e : ents) {
    if (total <= max_bytes) break;
    std::error_code ec;
    if (!fs::remove(e.path, ec) || ec) continue;
    total -= e.bytes;
    ++removed;
    fs::path p(e.path);
    if (p.extension() == ".tape") {
      p.replace_extension(".key");
      if (fs::remove(p, ec) && !ec) ++removed;
    }
  }
  return removed;
}

void ResultStore::clear() {
  std::error_code ec;
  for (const char* sub : {"cells", "tapes"})
    for (const auto& e : fs::directory_iterator(fs::path(dir_) / sub, ec))
      fs::remove(e.path(), ec);
}

}  // namespace selcache::store
