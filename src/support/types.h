// Fundamental type aliases shared by every subsystem.
#pragma once

#include <cstdint>

namespace selcache {

/// Byte address in the simulated machine's physical address space.
using Addr = std::uint64_t;

/// Simulated processor cycles.
using Cycle = std::uint64_t;

/// Count of simulated (macro-)instructions.
using InstrCount = std::uint64_t;

}  // namespace selcache
