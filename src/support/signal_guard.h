// Graceful-shutdown signal handling for long sweeps.
//
// A SignalGuard installs SIGINT/SIGTERM handlers for its lifetime. The
// handlers do the only async-signal-safe thing possible — record the signal
// number in a static atomic — and the run engine polls `stop_requested()`
// at cell boundaries (and, through support::RunGuard, at hierarchy-access
// granularity), so an interrupted sweep finishes or abandons in-flight
// cells cleanly, journals a `suspended` record, flushes partial artifacts
// through the atomic writers, and exits with the conventional 128+signo
// code (130 for SIGINT, 143 for SIGTERM) instead of dying mid-write.
//
// One guard at a time: the class is a scoped singleton (nested guards are a
// programming error and assert). The destructor restores the previous
// handlers, so library users — tests in particular — can scope it tightly.
#pragma once

#include <atomic>

namespace selcache::support {

class SignalGuard {
 public:
  /// Installs the SIGINT/SIGTERM handlers. No-ops on platforms without
  /// sigaction (the stop flag then simply never fires).
  SignalGuard();
  /// Restores the previously installed handlers.
  ~SignalGuard();

  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  /// Has a guarded signal arrived? (Sticky until reset().)
  static bool stop_requested() { return signal_number() != 0; }

  /// The first guarded signal received (SIGINT/SIGTERM), or 0.
  static int signal_number() {
    return signo_.load(std::memory_order_relaxed);
  }

  /// Conventional exit code for the received signal: 128+signo (130 for
  /// SIGINT, 143 for SIGTERM); 0 when no signal arrived.
  static int exit_code();

  /// The stop flag as a pollable token — the same atomic the handlers set,
  /// nonzero meaning stop. Stable for the process lifetime, so it can be
  /// handed to RunGuard/ThreadPool consumers that outlive the guard.
  static const std::atomic<int>* token() { return &signo_; }

  /// Record a signal. Async-signal-safe; only the first call sticks. Public
  /// for the extern "C" handler and for tests that simulate a delivery.
  static void note_signal(int signo) {
    int expected = 0;
    signo_.compare_exchange_strong(expected, signo,
                                   std::memory_order_relaxed);
  }

  /// Clear a recorded signal (tests; a second run in one process).
  static void reset() { signo_.store(0, std::memory_order_relaxed); }

 private:
  static std::atomic<int> signo_;  ///< 0 = no signal yet
  struct Saved;
  Saved* saved_;  ///< previous sigaction state (pimpl keeps <csignal> out)
};

}  // namespace selcache::support
