// ASCII table formatting for the benchmark harness.
//
// The benches print the same rows the paper's tables/figures report; this
// keeps that output aligned and diff-friendly (fixed column widths, stable
// number formatting).
#pragma once

#include <string>
#include <vector>

namespace selcache {

/// RFC-4180 CSV field encoding, shared by every CSV writer in the tree
/// (failure reports, phase timelines, locality tables, diagnostics).
/// Quotes the field — doubling embedded quotes — when it contains a comma,
/// a quote, a CR or LF, or leading/trailing whitespace (which RFC 4180
/// declares significant; quoting keeps lax parsers from trimming it).
std::string csv_field(const std::string& s);

class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 2);
  /// Format an integer count with thousands separators (1,234,567).
  static std::string count(unsigned long long v);

  /// Render with box-drawing rules and a header separator.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace selcache
