// ASCII table formatting for the benchmark harness.
//
// The benches print the same rows the paper's tables/figures report; this
// keeps that output aligned and diff-friendly (fixed column widths, stable
// number formatting).
#pragma once

#include <string>
#include <vector>

namespace selcache {

class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 2);
  /// Format an integer count with thousands separators (1,234,567).
  static std::string count(unsigned long long v);

  /// Render with box-drawing rules and a header separator.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace selcache
