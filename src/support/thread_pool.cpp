#include "support/thread_pool.h"

#include <algorithm>

namespace selcache::support {

std::function<void(std::size_t)>& ThreadPool::spawn_fault_hook() {
  static std::function<void(std::size_t)> hook;
  return hook;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      if (auto& hook = spawn_fault_hook()) hook(i);
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A failed spawn leaves i running workers; destroying their joinable
    // std::threads would std::terminate. Stop and join them, then let the
    // caller see the original exception.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::request_stop() {
  std::deque<std::function<void()>> discarded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_.store(true, std::memory_order_relaxed);
    // Swap the queue out and destroy it outside the lock: dropping a task
    // destroys its packaged_task, which resolves the task's future with
    // broken_promise — and that may run arbitrary shared-state teardown.
    discarded.swap(queue_);
  }
  cv_.notify_all();
}

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-before-exit: stop_ alone is not enough to leave while work
      // remains, so destruction completes every submitted task.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // submit() wraps every callable in a packaged_task, which captures its
    // exception in the future — so nothing should throw here. The backstop
    // keeps a misbehaving raw entry from unwinding off the worker thread
    // (which would std::terminate the process mid-sweep).
    try {
      task();
    } catch (...) {
      stray_exceptions_.fetch_add(1);
    }
  }
}

}  // namespace selcache::support
