#include "support/thread_pool.h"

#include <algorithm>

namespace selcache::support {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-before-exit: stop_ alone is not enough to leave while work
      // remains, so destruction completes every submitted task.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace selcache::support
