// Hardened atomic file writer shared by every on-disk artifact producer
// (reports, traces, tapes, store cells, run journals).
//
// Contract: the target path either keeps its old contents or atomically
// gains the complete new contents — never a truncated file. Every OS-level
// step (open, write, flush, optional fsync, rename) is checked; a failure
// at any of them removes the .tmp sibling, reports a structured error
// (errno text + the stage that failed), and leaves the target untouched.
// ENOSPC/EIO therefore surface as counted, diagnosable errors instead of
// silently-truncated output.
//
// A process-global fault hook lets tests simulate a failing filesystem at
// any stage without needing a real full disk — the writer-hardening
// regression tests (io_test.cpp) and the failing-FS store tests use it.
#pragma once

#include <functional>
#include <string>

namespace selcache::support {

/// Outcome of one atomic write. `ok()` — or operator bool — is the whole
/// truth; `stage`/`error` describe the first failing step for diagnostics.
struct WriteStatus {
  /// Which step failed: "" (success), "open", "write", "flush", "fsync",
  /// "rename", or "fault-hook" (simulated failure).
  std::string stage;
  /// strerror(errno) text captured at the failing step (or the hook's
  /// stage name for simulated failures). Empty on success.
  std::string error;

  bool ok() const { return stage.empty(); }
  explicit operator bool() const { return ok(); }
  /// "stage: error" for one-line diagnostics; empty on success.
  std::string message() const;
};

struct WriteOptions {
  /// fsync the .tmp file before the rename. Required for write-ahead data
  /// (the run journal); optional for rewritable artifacts (reports, store
  /// cells), where the atomic rename alone already prevents torn reads.
  bool sync = false;
};

/// Write `data` to `path` via a unique .tmp sibling + atomic rename.
/// Returns the structured status; on failure the .tmp is removed and the
/// target keeps its previous contents (or stays absent).
WriteStatus write_file_atomic(const std::string& path, const std::string& data,
                              const WriteOptions& opt = {});

/// Test/fault-injection hook: consulted before each stage of every atomic
/// write with (path, stage); returning true makes that stage fail as if the
/// filesystem did. Stages fire in order: "open", "write", "flush", "fsync"
/// (only when opt.sync), "rename". Process-global and unsynchronized — set
/// only from single-threaded test setup and reset to nullptr after.
std::function<bool(const std::string& path, const char* stage)>&
write_fault_hook();

}  // namespace selcache::support
