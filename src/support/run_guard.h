// Cooperative run supervision at simulation-access granularity.
//
// A RunGuard is attached (non-owning, nullptr-gated — the same pattern as
// the trace recorder and fault injector) to memsys::Hierarchy and polled
// once per demand access. It watches two things the fault layer's
// access-count watchdog cannot:
//
//   * a run-wide stop token (the SignalGuard's atomic, or a whole-run
//     deadline expressed as a token flipped by the engine) — tripping it
//     throws RunSuspended, abandoning the in-flight cell so the sweep can
//     suspend at a cell boundary; and
//   * a per-cell wall-clock soft deadline — tripping it throws
//     CellDeadlineExceeded, which the checkpoint engine treats like a
//     failed attempt (retried with deterministic backoff, then
//     quarantined).
//
// The fast path is one decrement-and-branch per access; the wall clock is
// only consulted every `check_period` accesses, so an armed guard costs
// nothing measurable and an unarmed (nullptr) hierarchy is bit-identical
// to the pre-guard code.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace selcache::support {

/// Thrown out of Hierarchy::access when the run's stop token trips. The
/// in-flight cell's (fully task-local) state unwinds; the cell stays
/// un-done in the journal and is re-planned on resume.
class RunSuspended : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown out of Hierarchy::access when a cell outlives its wall-clock
/// soft deadline. Complements the fault layer's deterministic access-count
/// watchdog with a real-time bound.
class CellDeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RunGuard {
 public:
  using Clock = std::chrono::steady_clock;

  /// `stop` may be null (no suspension source); nonzero *stop = suspend.
  /// `check_period` is how many accesses pass between wall-clock reads.
  explicit RunGuard(const std::atomic<int>* stop,
                    std::uint64_t check_period = 4096)
      : stop_(stop),
        period_(check_period == 0 ? 1 : check_period),
        countdown_(period_) {}

  /// Arm the per-cell wall-clock deadline, `ms` from now (0 disarms).
  void arm_cell_deadline(std::uint64_t ms) {
    has_deadline_ = ms > 0;
    if (has_deadline_)
      deadline_ = Clock::now() + std::chrono::milliseconds(ms);
  }

  /// Arm the whole-run deadline (an absolute time point, shared across all
  /// cells of the run). Expiring throws RunSuspended — the run suspends at
  /// a cell boundary exactly as a signal would — NOT CellDeadlineExceeded,
  /// which would burn the cell's retry budget for a run-level event.
  void arm_run_deadline(Clock::time_point when) {
    has_run_deadline_ = true;
    run_deadline_ = when;
  }

  /// Per-access poll; called from Hierarchy::access. Throws RunSuspended /
  /// CellDeadlineExceeded — never mutates simulator state first.
  void poll() {
    if (--countdown_ != 0) return;
    countdown_ = period_;
    slow_poll();
  }

 private:
  void slow_poll();  ///< out of line: atomic load + optional clock read

  const std::atomic<int>* stop_;
  const std::uint64_t period_;
  std::uint64_t countdown_;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  bool has_run_deadline_ = false;
  Clock::time_point run_deadline_{};
};

}  // namespace selcache::support
