// FNV-1a 64-bit fingerprinting, shared by every layer that needs a stable
// content hash (tape keys, the persistent result store, entry checksums).
//
// FNV-1a is not cryptographic — it is a fast, endian-independent,
// well-distributed hash whose value is part of on-disk formats, so the
// byte-at-a-time fold below must never change. Multi-byte integers are
// folded little-endian (low byte first) regardless of host order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace selcache {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnv1aPrime;
}

/// Fold a 64-bit value low byte first (fixed width: hashing 1 then 2 is
/// distinct from hashing 0x201).
inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) h = fnv1a_byte(h, (v >> (8 * i)) & 0xFF);
  return h;
}

inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) h = fnv1a_byte(h, p[i]);
  return h;
}

/// Length-prefixed string fold, so consecutive strings can't alias across
/// their boundary ("ab","c" vs "a","bc").
inline std::uint64_t fnv1a_str(std::uint64_t h, std::string_view s) {
  h = fnv1a_u64(h, s.size());
  return fnv1a_bytes(h, s.data(), s.size());
}

}  // namespace selcache
