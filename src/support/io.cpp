#include "support/io.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace selcache::support {

std::string WriteStatus::message() const {
  if (ok()) return {};
  return stage + ": " + (error.empty() ? "unknown error" : error);
}

std::function<bool(const std::string&, const char*)>& write_fault_hook() {
  static std::function<bool(const std::string&, const char*)> hook;
  return hook;
}

namespace {

WriteStatus fail(const char* stage, const char* detail = nullptr) {
  WriteStatus s;
  s.stage = stage;
  s.error = detail != nullptr ? detail
            : errno != 0     ? std::strerror(errno)
                             : "unknown error";
  return s;
}

/// One Bernoulli consult of the fault hook; true = simulate failure here.
bool hook_fires(const std::string& path, const char* stage) {
  auto& hook = write_fault_hook();
  return hook && hook(path, stage);
}

}  // namespace

WriteStatus write_file_atomic(const std::string& path, const std::string& data,
                              const WriteOptions& opt) {
  // Unique .tmp sibling: concurrent writers of the same target never stomp
  // each other's temporary, and a lost rename race is harmless.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      path + ".tmp" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed));

  errno = 0;
  if (hook_fires(path, "open")) return fail("open", "injected fault");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return fail("open");

  const auto cleanup_fail = [&](const char* stage,
                                const char* detail = nullptr) {
    WriteStatus s = fail(stage, detail);
    std::fclose(f);
    std::remove(tmp.c_str());
    return s;
  };

  if (hook_fires(path, "write")) return cleanup_fail("write", "injected fault");
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), f) != data.size())
    return cleanup_fail("write");

  // fflush pushes libc buffers to the kernel and is where ENOSPC on a full
  // filesystem typically surfaces for buffered writes.
  if (hook_fires(path, "flush")) return cleanup_fail("flush", "injected fault");
  if (std::fflush(f) != 0) return cleanup_fail("flush");

#ifndef _WIN32
  if (opt.sync) {
    if (hook_fires(path, "fsync"))
      return cleanup_fail("fsync", "injected fault");
    if (::fsync(::fileno(f)) != 0) return cleanup_fail("fsync");
  }
#endif

  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return fail("flush");  // close flushes the last buffer; treat alike
  }

  errno = 0;
  if (hook_fires(path, "rename")) {
    std::remove(tmp.c_str());
    return fail("rename", "injected fault");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    WriteStatus s = fail("rename");
    std::remove(tmp.c_str());
    return s;
  }
  return {};
}

}  // namespace selcache::support
