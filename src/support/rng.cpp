#include "support/rng.h"

#include <cmath>

namespace selcache {

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
  for (std::uint32_t i = n; i > 1; --i) {
    std::uint32_t j = static_cast<std::uint32_t>(below(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

std::uint64_t Rng::zipf(std::uint64_t n, double theta) {
  if (n == 0) return 0;
  if (theta <= 0.0) return below(n);
  // Inverse-CDF approximation via the continuous Zipf distribution:
  //   F(x) ~ (x/n)^(1-theta)  for theta < 1.
  // Accurate enough for workload skew; avoids per-call harmonic sums.
  double u = uniform();
  double exponent = 1.0 / (1.0 - std::min(theta, 0.99));
  double x = std::pow(u, exponent) * static_cast<double>(n);
  std::uint64_t k = static_cast<std::uint64_t>(x);
  return k >= n ? n - 1 : k;
}

}  // namespace selcache
