// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (irregular address generators,
// synthetic table contents, pointer pools) draws from SplitMix64 streams so
// that runs are bit-reproducible given a seed. std::mt19937 is avoided in hot
// paths: SplitMix64 is ~4x faster and has no warm-up transient.
#pragma once

#include <cstdint>
#include <vector>

namespace selcache {

/// SplitMix64 generator (Steele, Lea, Flood 2014). Passes BigCrush when used
/// as a 64-bit stream; more than adequate for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent stream for a named sub-component.
  Rng fork(std::uint64_t salt) {
    return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL));
  }

  /// Random permutation of {0, 1, ..., n-1} (Fisher–Yates).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

  /// Zipf-like skewed index in [0, n): rank ~ 1/(k+1)^theta. Used for
  /// hot/cold working-set synthesis (TPC-C non-uniform access, Perl symbol
  /// tables). theta = 0 degenerates to uniform.
  std::uint64_t zipf(std::uint64_t n, double theta);

 private:
  std::uint64_t state_;
};

}  // namespace selcache
