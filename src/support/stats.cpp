#include "support/stats.h"

// StatSet is header-only today; this TU anchors the library and is the home
// for any future out-of-line statistics (histograms, quantile sketches).
namespace selcache {}
