// Named statistics registry.
//
// Every simulator component owns a StatSet; the hierarchy/runner merge them
// into experiment reports. Counters are plain uint64 — no atomics, the
// simulator is single-threaded by design (deterministic replay).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "support/check.h"

namespace selcache {

/// A hit/miss pair with derived rates.
struct HitMiss {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t accesses() const { return hits + misses; }
  /// Miss rate in [0,1]; 0 when no accesses were made.
  double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) /
                                 static_cast<double>(accesses());
  }
  double hit_rate() const { return accesses() == 0 ? 0.0 : 1.0 - miss_rate(); }

  void record(bool hit) { hit ? ++hits : ++misses; }
  void reset() { hits = misses = 0; }

  HitMiss& operator+=(const HitMiss& o) {
    hits += o.hits;
    misses += o.misses;
    return *this;
  }
};

/// Ordered map of named counters. Order is lexicographic so report output is
/// stable across runs and platforms.
class StatSet {
 public:
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }

  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  bool has(const std::string& name) const {
    return counters_.find(name) != counters_.end();
  }

  void add(const std::string& name, std::uint64_t v) { counters_[name] += v; }

  /// Sum `other`'s counters into this set under `prefix`. Correct for
  /// combining *independent* sets (e.g. one per version, distinct prefixes).
  /// WRONG for repeated snapshots of one live component: merging the same
  /// component twice under one prefix re-adds its cumulative totals and
  /// double-counts everything since the first merge — use merge_snapshot().
  void merge(const StatSet& other, const std::string& prefix = "") {
    for (const auto& [k, v] : other.counters_) counters_[prefix + k] += v;
  }

  /// Merge a *cumulative* snapshot of a live component: only the movement
  /// since the previous merge_snapshot() of the same prefix is added, so
  /// epoch-style repeated merges accumulate deltas instead of re-adding
  /// totals. After any number of snapshots, get(prefix + k) equals the
  /// component's latest cumulative value.
  void merge_snapshot(const StatSet& cumulative, const std::string& prefix = "") {
    for (const auto& [k, v] : cumulative.counters_) {
      std::uint64_t& seen = snapshot_seen_[prefix + k];
      // Saturating counters can be reset/cleared between snapshots; treat a
      // backwards move as no new movement rather than underflowing.
      if (v > seen) counters_[prefix + k] += v - seen;
      seen = v;
    }
  }

  /// Per-interval difference against an earlier cumulative snapshot of the
  /// same counters (missing keys in `prev` count as 0). Counters that moved
  /// backwards (component reset) report 0 for the interval.
  StatSet delta_from(const StatSet& prev) const {
    StatSet d;
    for (const auto& [k, v] : counters_) {
      const std::uint64_t before = prev.get(k);
      d.counters_[k] = v > before ? v - before : 0;
    }
    return d;
  }

  void reset() {
    counters_.clear();
    snapshot_seen_.clear();
  }

  const std::map<std::string, std::uint64_t>& all() const { return counters_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
  /// Last cumulative value seen per prefixed key by merge_snapshot().
  std::map<std::string, std::uint64_t> snapshot_seen_;
};

/// Times improvement_pct() was handed a zero-cycle baseline (degenerate
/// workload, e.g. an empty trace). Atomic: parallel sweeps call
/// improvement_pct from worker threads.
inline std::atomic<std::uint64_t>& improvement_pct_degenerate_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Percentage improvement of `candidate` over `baseline` in execution cycles:
/// positive means candidate is faster. Matches the paper's Figures 4-9 metric.
/// A zero-cycle baseline (degenerate zero-access workload) yields 0.0 and
/// bumps improvement_pct_degenerate_count() instead of crashing the sweep.
inline double improvement_pct(std::uint64_t baseline_cycles,
                              std::uint64_t candidate_cycles) {
  if (baseline_cycles == 0) {
    improvement_pct_degenerate_count().fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  return 100.0 *
         (static_cast<double>(baseline_cycles) -
          static_cast<double>(candidate_cycles)) /
         static_cast<double>(baseline_cycles);
}

}  // namespace selcache
