// Named statistics registry.
//
// Every simulator component owns a StatSet; the hierarchy/runner merge them
// into experiment reports. Counters are plain uint64 — no atomics, the
// simulator is single-threaded by design (deterministic replay).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/check.h"

namespace selcache {

/// A hit/miss pair with derived rates.
struct HitMiss {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t accesses() const { return hits + misses; }
  /// Miss rate in [0,1]; 0 when no accesses were made.
  double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) /
                                 static_cast<double>(accesses());
  }
  double hit_rate() const { return accesses() == 0 ? 0.0 : 1.0 - miss_rate(); }

  void record(bool hit) { hit ? ++hits : ++misses; }
  void reset() { hits = misses = 0; }

  HitMiss& operator+=(const HitMiss& o) {
    hits += o.hits;
    misses += o.misses;
    return *this;
  }
};

/// Ordered map of named counters. Order is lexicographic so report output is
/// stable across runs and platforms.
class StatSet {
 public:
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }

  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  bool has(const std::string& name) const {
    return counters_.find(name) != counters_.end();
  }

  void add(const std::string& name, std::uint64_t v) { counters_[name] += v; }

  void merge(const StatSet& other, const std::string& prefix = "") {
    for (const auto& [k, v] : other.counters_) counters_[prefix + k] += v;
  }

  void reset() { counters_.clear(); }

  const std::map<std::string, std::uint64_t>& all() const { return counters_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// Percentage improvement of `candidate` over `baseline` in execution cycles:
/// positive means candidate is faster. Matches the paper's Figures 4-9 metric.
inline double improvement_pct(std::uint64_t baseline_cycles,
                              std::uint64_t candidate_cycles) {
  SELCACHE_CHECK(baseline_cycles > 0);
  return 100.0 *
         (static_cast<double>(baseline_cycles) -
          static_cast<double>(candidate_cycles)) /
         static_cast<double>(baseline_cycles);
}

}  // namespace selcache
