// Small bit-manipulation helpers for cache indexing.
#pragma once

#include <bit>
#include <cstdint>

#include "support/check.h"
#include "support/types.h"

namespace selcache {

/// True iff v is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Round v up to the next multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Extract the block-frame number of an address for a given block size.
constexpr Addr block_of(Addr a, std::uint64_t block_size) {
  return a / block_size;
}

/// First byte address of the block containing `a`.
constexpr Addr block_base(Addr a, std::uint64_t block_size) {
  return a - (a % block_size);
}

}  // namespace selcache
