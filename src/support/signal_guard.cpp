#include "support/signal_guard.h"

#include "support/check.h"

#ifndef _WIN32
#include <csignal>
#endif

namespace selcache::support {

std::atomic<int> SignalGuard::signo_{0};

int SignalGuard::exit_code() {
  const int s = signal_number();
  return s == 0 ? 0 : 128 + s;
}

#ifndef _WIN32

struct SignalGuard::Saved {
  struct sigaction prev_int;
  struct sigaction prev_term;
};

namespace {

bool g_installed = false;  ///< scoped-singleton check (main thread only)

extern "C" void selcache_signal_handler(int signo) {
  // Only the first signal is recorded: a second Ctrl-C during the graceful
  // drain must not overwrite the code the process is about to exit with.
  SignalGuard::note_signal(signo);
}

}  // namespace

SignalGuard::SignalGuard() : saved_(new Saved{}) {
  SELCACHE_CHECK_MSG(!g_installed, "nested SignalGuard");
  g_installed = true;
  struct sigaction sa = {};
  sa.sa_handler = selcache_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see EINTR
  sigaction(SIGINT, &sa, &saved_->prev_int);
  sigaction(SIGTERM, &sa, &saved_->prev_term);
}

SignalGuard::~SignalGuard() {
  sigaction(SIGINT, &saved_->prev_int, nullptr);
  sigaction(SIGTERM, &saved_->prev_term, nullptr);
  g_installed = false;
  delete saved_;
}

#else  // _WIN32: no sigaction; the guard is inert.

struct SignalGuard::Saved {};
SignalGuard::SignalGuard() : saved_(nullptr) {}
SignalGuard::~SignalGuard() { delete saved_; }

#endif

}  // namespace selcache::support
