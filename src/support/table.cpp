#include "support/table.h"

#include <iomanip>
#include <sstream>

#include "support/check.h"

namespace selcache {

std::string csv_field(const std::string& s) {
  const bool edge_ws =
      !s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                     s.back() == ' ' || s.back() == '\t');
  if (!edge_ws && s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SELCACHE_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  SELCACHE_CHECK_MSG(cells.size() == headers_.size(),
                     "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string TextTable::count(unsigned long long v) {
  std::string raw = std::to_string(v);
  std::string out;
  int c = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    width[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  auto rule = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t i = 0; i < cells.size(); ++i)
      os << ' ' << std::left << std::setw(static_cast<int>(width[i]))
         << cells[i] << " |";
    return os.str() + "\n";
  };

  std::string out = rule() + line(headers_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

}  // namespace selcache
