// Lightweight precondition checking.
//
// SELCACHE_CHECK is always on (simulator correctness beats raw speed; the
// checks that survive in hot paths are branch-predictable). Violations throw
// std::logic_error so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace selcache::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace selcache::detail

#define SELCACHE_CHECK(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::selcache::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define SELCACHE_CHECK_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr))                                                          \
      ::selcache::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
