#include "support/run_guard.h"

namespace selcache::support {

void RunGuard::slow_poll() {
  if (stop_ != nullptr && stop_->load(std::memory_order_relaxed) != 0)
    throw RunSuspended("run suspended (stop token tripped)");
  if (!has_deadline_ && !has_run_deadline_) return;
  const auto now = Clock::now();
  if (has_run_deadline_ && now > run_deadline_)
    throw RunSuspended("run suspended (run deadline expired)");
  if (has_deadline_ && now > deadline_)
    throw CellDeadlineExceeded("cell wall-clock deadline exceeded");
}

}  // namespace selcache::support
