// Saturating counters — the basic state element of the MAT, SLDT and the
// bimodal branch predictor.
#pragma once

#include <cstdint>

#include "support/check.h"

namespace selcache {

/// An n-valued saturating up/down counter in [0, max].
template <typename T = std::uint32_t>
class SaturatingCounter {
 public:
  constexpr SaturatingCounter() = default;
  constexpr SaturatingCounter(T max, T initial) : max_(max), value_(initial) {
    SELCACHE_CHECK(initial <= max);
  }

  constexpr void increment(T by = 1) {
    value_ = (max_ - value_ < by) ? max_ : value_ + by;
  }

  constexpr void decrement(T by = 1) { value_ = (value_ < by) ? 0 : value_ - by; }

  /// Halve the counter — used for periodic MAT decay so that stale phases
  /// eventually lose their frequency advantage.
  constexpr void decay() { value_ /= 2; }

  constexpr void reset(T v = 0) { value_ = v > max_ ? max_ : v; }

  constexpr T value() const { return value_; }
  constexpr T max() const { return max_; }
  constexpr bool saturated() const { return value_ == max_; }

  /// For 2-bit predictor-style use: true when in the upper half of the range.
  constexpr bool upper_half() const { return value_ > max_ / 2; }

 private:
  T max_ = 3;
  T value_ = 0;
};

using Counter2Bit = SaturatingCounter<std::uint8_t>;

}  // namespace selcache
